package mltcp_test

import (
	"testing"

	"mltcp"
	"mltcp/internal/sim"
)

func TestFacadeAggressiveness(t *testing.T) {
	f := mltcp.DefaultAggressiveness()
	if got := f.Eval(1); got != 2.0 {
		t.Errorf("DefaultAggressiveness F(1) = %v, want 2", got)
	}
	lin := mltcp.LinearAggressiveness(2, 0.5)
	if got := lin.Eval(0.5); got != 1.5 {
		t.Errorf("LinearAggressiveness(2,0.5)(0.5) = %v, want 1.5", got)
	}
	if got := len(mltcp.PaperAggressivenessFunctions()); got != 6 {
		t.Errorf("PaperAggressivenessFunctions returned %d, want 6", got)
	}
}

func TestFacadeConstruction(t *testing.T) {
	m := mltcp.NewMLTCPReno(1_000_000, 100*sim.Millisecond)
	if m.Name() != "mltcp-reno" {
		t.Errorf("Name = %q", m.Name())
	}
	w := mltcp.Wrap(mltcp.NewCubicCC(), mltcp.DefaultAggressiveness(),
		mltcp.NewTracker(1000, sim.Second))
	if w.Name() != "mltcp-cubic" {
		t.Errorf("Name = %q", w.Name())
	}
	l := mltcp.NewLearner(0, 0)
	if l.Learned() {
		t.Error("fresh learner claims learned")
	}
	wl := mltcp.Wrap(mltcp.NewDCTCPCC(), mltcp.DefaultAggressiveness(), l)
	if wl.Name() != "mltcp-dctcp" {
		t.Errorf("Name = %q", wl.Name())
	}
	if mltcp.NewRenoCC().Name() != "reno" {
		t.Error("NewRenoCC")
	}
}
