package mltcp_test

// One benchmark per paper figure/claim plus ablations of the design
// decisions DESIGN.md calls out. Each benchmark regenerates its experiment
// end to end and reports the headline quantity with b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation in one command. Absolute times are
// simulator throughput, not the paper's wall-clock numbers; the reported
// custom metrics are the quantities to compare with the paper.

import (
	"context"
	"testing"

	"mltcp/internal/analysis"
	"mltcp/internal/backend"
	"mltcp/internal/collective"
	"mltcp/internal/config"
	"mltcp/internal/core"
	"mltcp/internal/experiments"
	"mltcp/internal/fluid"
	"mltcp/internal/multires"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// BenchmarkFig1TrafficPatterns regenerates the isolated job demand traces.
func BenchmarkFig1TrafficPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1()
		if len(res.Demand) != 4 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig2aCentralized reports the centralized schedule's worst job
// slowdown (paper: 1.0 — every job at its ideal iteration time).
func BenchmarkFig2aCentralized(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2Centralized()
		worst = 0
		for _, j := range res.Jobs {
			if j.Slowdown > worst {
				worst = j.Slowdown
			}
		}
	}
	b.ReportMetric(worst, "worst-slowdown")
}

// BenchmarkFig2bSRPT reports J1's slowdown under pFabric-style SRPT
// (paper: 1.5×).
func BenchmarkFig2bSRPT(b *testing.B) {
	var j1 float64
	for i := 0; i < b.N; i++ {
		j1 = experiments.Fig2SRPT().Jobs[0].Slowdown
	}
	b.ReportMetric(j1, "J1-slowdown")
}

// BenchmarkFig2cMLTCP reports MLTCP's worst steady-state slowdown and the
// convergence iteration (paper: within 5% of optimal, ~20 iterations).
func BenchmarkFig2cMLTCP(b *testing.B) {
	var worst float64
	var conv int
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2MLTCP()
		worst = 0
		for _, j := range res.Jobs {
			if j.Slowdown > worst {
				worst = j.Slowdown
			}
		}
		conv = res.ConvergedAt
	}
	b.ReportMetric(worst, "worst-slowdown")
	b.ReportMetric(float64(conv), "converged-at-iter")
}

// BenchmarkFig3AggressivenessFunctions reports how many of the six
// functions converge (paper: the four increasing ones).
func BenchmarkFig3AggressivenessFunctions(b *testing.B) {
	var converged int
	for i := 0; i < b.N; i++ {
		res := experiments.Fig3()
		converged = 0
		for fi := range res.Functions {
			s := res.IterTimeMS[fi]
			if s[len(s)-1] <= res.IdealMS*1.03 {
				converged++
			}
		}
	}
	b.ReportMetric(float64(converged), "functions-converged")
}

// BenchmarkFig4SixJobs reports the tail iteration-time speedup over Reno
// (paper: 1.59×).
func BenchmarkFig4SixJobs(b *testing.B) {
	var tail float64
	for i := 0; i < b.N; i++ {
		tail = experiments.Fig4().TailSpeedup
	}
	b.ReportMetric(tail, "p99-speedup")
}

// BenchmarkFig5LossFunction reports where the loss minimum falls relative
// to T/2 (paper: exactly T/2 for a = 1/2).
func BenchmarkFig5LossFunction(b *testing.B) {
	var minDelta float64
	for i := 0; i < b.N; i++ {
		minDelta = experiments.Fig5().MinDeltaSec
	}
	b.ReportMetric(minDelta, "loss-min-delta-s")
}

// BenchmarkFig6Sliding reports the iteration at which two jobs' phases
// become disjoint (paper: a few iterations).
func BenchmarkFig6Sliding(b *testing.B) {
	var at int
	for i := 0; i < b.N; i++ {
		at = experiments.Fig6().InterleavedAt
	}
	b.ReportMetric(float64(at), "interleaved-at-iter")
}

// BenchmarkNoiseBound reports the worst ratio of measured steady-state
// error std to the §4 bound 2σ(1+I/S) (paper: <= 1).
func BenchmarkNoiseBound(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := experiments.NoiseBound(2)
		worst = 0
		for k := range res.SigmaMS {
			if r := res.MeasuredMS[k] / res.BoundMS[k]; r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "measured/bound")
}

// BenchmarkFairnessExponent reports the fitted throughput-vs-loss exponents
// and MLTCP's bandwidth advantage (§5: Reno 1/√p; MLTCP claims more at the
// same p without starving legacy flows).
func BenchmarkFairnessExponent(b *testing.B) {
	var res experiments.FairnessResult
	for i := 0; i < b.N; i++ {
		res = experiments.FairnessWithHorizon(30 * sim.Second)
	}
	b.ReportMetric(res.RenoExponent, "reno-exponent")
	b.ReportMetric(res.MLTCPExponent, "mltcp-exponent")
	b.ReportMetric(res.AdvantageRatio, "advantage-ratio")
	b.ReportMetric(res.ShareRatio, "coexist-share-ratio")
}

// BenchmarkMultiResource reports the iteration-time improvement from
// progress-weighted CPU allocation (§5's generalization).
func BenchmarkMultiResource(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		run := func(agg *core.AggFunc) sim.Time {
			var tasks []*multires.Task
			for k := 0; k < 3; k++ {
				tasks = append(tasks, &multires.Task{
					Name: "t", WorkUnits: 3.2, IdleTime: 800 * sim.Millisecond,
					StartOffset: sim.Time(k) * 10 * sim.Millisecond, Agg: agg,
				})
			}
			multires.NewScheduler(8, tasks).Run(120 * sim.Second)
			return tasks[0].AvgIterTime(20)
		}
		fair := run(nil)
		agg := core.Default()
		weighted := run(&agg)
		improvement = fair.Seconds() / weighted.Seconds()
	}
	b.ReportMetric(improvement, "iter-speedup")
}

// BenchmarkBackendComparison runs the canonical two-job scenario through
// both backends from the same config.Scenario and reports each fidelity's
// worst steady-state slowdown plus the cross-fidelity gaps — the headline
// numbers of the fidelity-agnostic backend seam (CI runs this on every
// push as a cross-fidelity sanity check).
func BenchmarkBackendComparison(b *testing.B) {
	var cf *experiments.CrossFidelityResult
	for i := 0; i < b.N; i++ {
		var err error
		cf, err = experiments.CrossFidelityCanonical(context.Background(), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := func(r *backend.Result) float64 {
		var w float64
		for _, j := range r.Jobs {
			if s := j.Slowdown(20); s > w {
				w = s
			}
		}
		return w
	}
	b.ReportMetric(worst(cf.Fluid), "fluid-worst-slowdown")
	b.ReportMetric(worst(cf.Packet), "packet-worst-slowdown")
	b.ReportMetric(cf.MaxSlowdownGap, "slowdown-gap")
	b.ReportMetric(cf.OverlapGap, "overlap-gap")
}

// BenchmarkTelemetryOverhead measures the telemetry subsystem's cost on a
// packet-level run: baseline (no recorder — the nil fast path every
// untraced run takes), discard (full event construction into a dropping
// sink), and buffer (events retained and metrics aggregated, as under
// mltcpsim -trace). baseline vs the pre-telemetry revision bounds the
// nil-check tax; baseline vs buffer is the price of tracing.
func BenchmarkTelemetryOverhead(b *testing.B) {
	scn := &config.Scenario{
		Name:        "telemetry-overhead",
		Policy:      "mltcp",
		DurationSec: 20,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
	run := func(b *testing.B, ctx context.Context) {
		for i := 0; i < b.N; i++ {
			if _, err := (&backend.Packet{}).Run(ctx, scn, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("discard", func(b *testing.B) {
		rec := telemetry.New(telemetry.Discard, telemetry.Options{})
		run(b, telemetry.WithRecorder(context.Background(), rec))
	})
	b.Run("buffer", func(b *testing.B) {
		rec, buf, _ := telemetry.NewBuffered(telemetry.Options{})
		run(b, telemetry.WithRecorder(context.Background(), rec))
		b.ReportMetric(float64(buf.Len())/float64(b.N), "events/run")
	})
}

// --- Ablations ---

// BenchmarkAblationPacketVsFluid runs the same two-job MLTCP convergence at
// both fidelities and reports each steady-state slowdown; agreement
// validates the fluid weighted-share abstraction.
func BenchmarkAblationPacketVsFluid(b *testing.B) {
	var packetSlow, fluidSlow float64
	for i := 0; i < b.N; i++ {
		pl := experiments.PacketLevel(2, experiments.MLTCPRenoFactory(400*sim.Millisecond),
			"mltcp-reno", 60*sim.Second, 0)
		packetSlow = pl.SteadyAvg[0].Seconds() / pl.Ideal.Seconds()

		agg := core.Default()
		jobs := []*fluid.Job{
			{Spec: workload.Spec{Name: "J1", Profile: workload.GPT2}, Agg: &agg},
			{Spec: workload.Spec{Name: "J2", Profile: workload.GPT2, StartOffset: 10 * sim.Millisecond}, Agg: &agg},
		}
		s := fluid.New(fluid.Config{Capacity: experiments.LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
		s.Run(60 * sim.Second)
		fluidSlow = jobs[0].AvgIterTime(20).Seconds() / workload.GPT2.IdealIterTime(experiments.LinkCapacity).Seconds()
	}
	b.ReportMetric(packetSlow, "packet-slowdown")
	b.ReportMetric(fluidSlow, "fluid-slowdown")
}

// BenchmarkAblationMLTCPBase compares MLTCP wrapped around Reno vs CUBIC at
// packet level (§6: other schemes are augmented the same way).
func BenchmarkAblationMLTCPBase(b *testing.B) {
	var reno, cubic float64
	for i := 0; i < b.N; i++ {
		r := experiments.PacketLevel(2, experiments.MLTCPRenoFactory(400*sim.Millisecond),
			"mltcp-reno", 60*sim.Second, 0)
		c := experiments.PacketLevel(2, experiments.MLTCPCubicFactory(400*sim.Millisecond),
			"mltcp-cubic", 60*sim.Second, 0)
		reno = r.SteadyAvg[0].Seconds() / r.Ideal.Seconds()
		cubic = c.SteadyAvg[0].Seconds() / c.Ideal.Seconds()
	}
	b.ReportMetric(reno, "mltcp-reno-slowdown")
	b.ReportMetric(cubic, "mltcp-cubic-slowdown")
}

// BenchmarkAblationLearnedParams compares given vs auto-learned
// TOTAL_BYTES/COMP_TIME.
func BenchmarkAblationLearnedParams(b *testing.B) {
	var given, learned float64
	for i := 0; i < b.N; i++ {
		g := experiments.PacketLevel(2, experiments.MLTCPRenoFactory(400*sim.Millisecond),
			"mltcp-reno", 60*sim.Second, 0)
		l := experiments.PacketLevel(2, experiments.MLTCPRenoLearnedFactory(100*sim.Millisecond),
			"mltcp-reno-learned", 60*sim.Second, 0)
		given = g.SteadyAvg[0].Seconds() / g.Ideal.Seconds()
		learned = l.SteadyAvg[0].Seconds() / l.Ideal.Seconds()
	}
	b.ReportMetric(given, "given-slowdown")
	b.ReportMetric(learned, "learned-slowdown")
}

// BenchmarkAblationSlopeIntercept sweeps Equation 2's parameters and
// reports the analytic gradient-descent convergence iteration for each,
// relative to the paper's defaults.
func BenchmarkAblationSlopeIntercept(b *testing.B) {
	params := []struct{ slope, intercept float64 }{
		{0.5, 0.25}, {1.0, 0.25}, {1.75, 0.25}, {3.0, 0.25}, {1.75, 0.05}, {1.75, 1.0},
	}
	var defaultIters float64
	for i := 0; i < b.N; i++ {
		for _, pc := range params {
			p := analysis.Params{Slope: pc.slope, Intercept: pc.intercept,
				Alpha: 1.0 / 9, Period: 1800 * sim.Millisecond}
			traj := p.Descend(20*sim.Millisecond, 200)
			it := p.ConvergenceIteration(traj, sim.Millisecond)
			if pc.slope == core.DefaultSlope && pc.intercept == core.DefaultIntercept {
				defaultIters = float64(it)
			}
		}
	}
	b.ReportMetric(defaultIters, "default-converge-iters")
}

// BenchmarkEngineThroughput measures raw simulator event throughput, the
// substrate cost every experiment pays.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := sim.New()
	var step sim.Handler
	n := 0
	step = func(e *sim.Engine) {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	b.ResetTimer()
	eng.At(0, step)
	eng.Run()
}

// BenchmarkEngineScheduling exercises the timer wheel's hot operations —
// reschedule (the RTO/pacing pattern), schedule+cancel churn, and
// cascade-heavy far-future spreads. All must stay at 0 allocs/op: the
// engine's free list is the foundation of the hot-path alloc budget.
func BenchmarkEngineScheduling(b *testing.B) {
	b.Run("reschedule", func(b *testing.B) {
		e := sim.New()
		n := 0
		var tm *sim.Timer
		tm = sim.NewTimer(e, func(*sim.Engine) {
			n++
			if n < b.N {
				tm.Reset(sim.Millisecond)
			}
		})
		b.ResetTimer()
		tm.Reset(sim.Millisecond)
		e.Run()
	})
	b.Run("schedule-cancel", func(b *testing.B) {
		e := sim.New()
		fn := sim.Handler(func(*sim.Engine) {})
		var ids [64]sim.EventID
		for i := 0; i < b.N; i++ {
			for k := range ids {
				ids[k] = e.After(sim.Time(k+1)*1000, fn)
			}
			for k := range ids {
				e.Cancel(ids[k])
			}
		}
	})
	b.Run("cascade", func(b *testing.B) {
		e := sim.New()
		fn := sim.Handler(func(*sim.Engine) {})
		r := sim.NewRNG(1)
		delays := make([]sim.Time, 256)
		for i := range delays {
			delays[i] = sim.Time(r.Uint64() & (1<<44 - 1))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if e.Now() > sim.Time(1)<<60 {
				e = sim.New() // keep now+delay clear of int64 overflow
			}
			for _, d := range delays {
				e.After(d, fn)
			}
			e.Run()
		}
	})
}

// BenchmarkMultiBottleneck reports the long job's slowdown in the
// parking-lot chain (extension beyond the paper's single bottleneck).
func BenchmarkMultiBottleneck(b *testing.B) {
	var long float64
	for i := 0; i < b.N; i++ {
		res := experiments.MultiBottleneck(
			experiments.MLTCPRenoFactory(400*sim.Millisecond), 90*sim.Second)
		long = res.SteadyAvg[0].Seconds() / res.Ideal.Seconds()
	}
	b.ReportMetric(long, "long-job-slowdown")
}

// BenchmarkMultiJobGradientDescent reports the analytic N-job descent's
// convergence iteration (§5's higher-dimensional gradient view).
func BenchmarkMultiJobGradientDescent(b *testing.B) {
	m := analysis.MultiParams{
		Params: analysis.DefaultParams(1.0/9, 1800*sim.Millisecond),
		N:      3,
	}
	var conv int
	for i := 0; i < b.N; i++ {
		offs := []sim.Time{0, 15 * sim.Millisecond, 30 * sim.Millisecond}
		traj := m.DescendMulti(offs, 150)
		conv = m.ConvergenceIterationMulti(traj, sim.Millisecond)
	}
	b.ReportMetric(float64(conv), "converged-at-iter")
}

// BenchmarkCollectiveRing reports the steady-state slowdown of two
// 2-worker ring-allreduce MLTCP jobs sharing the bottleneck — the paper's
// testbed arrangement run through a real collective layer.
func BenchmarkCollectiveRing(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
			HostPairs: 2, HostRate: 5 * units.Gbps, BottleneckRate: 500 * units.Mbps,
			HostDelay: 10 * sim.Microsecond, BottleneckDelay: 30 * sim.Microsecond,
		})
		sel := collective.DefaultSelector(400 * sim.Millisecond)
		mk := func(pair int, base netsim.FlowID) *collective.Job {
			ring := collective.NewRing(eng, []*netsim.Host{net.Left[pair], net.Right[pair]},
				base, 12_500_000, sel.Factory(collective.ClassTraining),
				tcp.Config{DisableSlowStartAfterIdle: true})
			ring.Pipelined(true)
			return &collective.Job{Ring: ring, Compute: 1600 * sim.Millisecond}
		}
		j1, j2 := mk(0, 1), mk(1, 100)
		j1.Start(eng, 0, 1)
		j2.Start(eng, 10*sim.Millisecond, 2)
		eng.RunUntil(220 * sim.Second)
		n := len(j1.IterDurations)
		slow = j1.AvgIterTime(n-10).Seconds() / 1.81
	}
	b.ReportMetric(slow, "steady-slowdown-vs-ideal")
}

// BenchmarkSweepSerialVsParallel runs the slope/intercept ablation grid
// serially and on a worker per CPU. On a multi-core machine the parallel
// variant's ns/op drops toward serial/cores — the internal/harness speedup
// that keeps growing sweeps from growing wall-clock time. Both report the
// same deterministic results (asserted by the determinism tests).
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pts := experiments.SlopeInterceptSweepWorkers(10*sim.Millisecond, 1); len(pts) != 7 {
				b.Fatal("bad result")
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if pts := experiments.SlopeInterceptSweepWorkers(10*sim.Millisecond, 0); len(pts) != 7 {
				b.Fatal("bad result")
			}
		}
	})
}

// BenchmarkFCTGridParallel runs the full scheme × load FCT matrix through
// the harness at one worker per CPU — the heaviest grid in the suite and
// the one that gains most from the pool.
func BenchmarkFCTGridParallel(b *testing.B) {
	var grid []experiments.FCTGridPoint
	for i := 0; i < b.N; i++ {
		grid = experiments.FCTGrid(nil, []float64{0.4, 0.6}, 10*sim.Second, 42, 0)
	}
	b.ReportMetric(float64(len(grid)), "grid-cells")
}

// BenchmarkScalability reports the centralized optimizer's wall time and
// MLTCP's convergence iteration at the largest swept job count.
func BenchmarkScalability(b *testing.B) {
	var pts []experiments.ScalabilityPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.Scalability(nil)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(float64(last.N), "jobs")
	b.ReportMetric(last.OptimizerWall.Seconds()*1e6, "optimizer-µs")
	b.ReportMetric(float64(last.MLTCPConvergedAt), "mltcp-converged-at")
}

// BenchmarkFCTBaselines reports the canonical short-flow FCT ordering on
// conventional websearch traffic, validating the pFabric/DCTCP baselines.
func BenchmarkFCTBaselines(b *testing.B) {
	var reno, dctcp, pfabric float64
	for i := 0; i < b.N; i++ {
		reno = experiments.RunFCT(experiments.FCTReno, 0.6, 20*sim.Second, 42).ShortMeanMS
		dctcp = experiments.RunFCT(experiments.FCTDCTCP, 0.6, 20*sim.Second, 42).ShortMeanMS
		pfabric = experiments.RunFCT(experiments.FCTPFabric, 0.6, 20*sim.Second, 42).ShortMeanMS
	}
	b.ReportMetric(reno, "reno-short-ms")
	b.ReportMetric(dctcp, "dctcp-short-ms")
	b.ReportMetric(pfabric, "pfabric-short-ms")
}

// BenchmarkMixedTraffic reports MLTCP jobs' steady slowdown with 10%
// conventional background traffic sharing the bottleneck.
func BenchmarkMixedTraffic(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := experiments.MixedTraffic(0.10, 60*sim.Second, 9)
		worst = 0
		for _, s := range res.JobSteady {
			if v := s.Seconds() / res.JobIdeal.Seconds(); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "worst-job-slowdown")
}

// BenchmarkAblationBarrierVsPipelined compares the collective layer's two
// synchronization modes on one isolated 2-worker job: strict per-step
// barriers vs NCCL-style pipelined streaming.
func BenchmarkAblationBarrierVsPipelined(b *testing.B) {
	run := func(pipelined bool) float64 {
		eng := sim.New()
		net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
			HostPairs: 1, HostRate: 5 * units.Gbps, BottleneckRate: 500 * units.Mbps,
			HostDelay: 10 * sim.Microsecond, BottleneckDelay: 30 * sim.Microsecond,
			BottleneckQueue: func() netsim.Queue {
				return netsim.NewDropTail(512 * netsim.DefaultMTU)
			},
		})
		sel := collective.DefaultSelector(400 * sim.Millisecond)
		ring := collective.NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]},
			1, 12_500_000, sel.Factory(collective.ClassTraining),
			tcp.Config{DisableSlowStartAfterIdle: true})
		ring.Pipelined(pipelined)
		j := &collective.Job{Ring: ring, Compute: 1600 * sim.Millisecond}
		j.Start(eng, 0, 1)
		eng.RunUntil(40 * sim.Second)
		return j.AvgIterTime(3).Seconds()
	}
	var barrier, pipelined float64
	for i := 0; i < b.N; i++ {
		barrier = run(false)
		pipelined = run(true)
	}
	b.ReportMetric(barrier, "barrier-iter-s")
	b.ReportMetric(pipelined, "pipelined-iter-s")
}

// BenchmarkNoiseRobustness reports the centralized-vs-MLTCP slowdown gap
// under 40ms compute noise (the deployability argument quantified).
func BenchmarkNoiseRobustness(b *testing.B) {
	var central, ml float64
	for i := 0; i < b.N; i++ {
		pts := experiments.NoiseRobustness([]sim.Time{40 * sim.Millisecond}, 300*sim.Second)
		central = pts[0].CentralizedSlowdown
		ml = pts[0].MLTCPSlowdown
	}
	b.ReportMetric(central, "centralized-slowdown")
	b.ReportMetric(ml, "mltcp-slowdown")
}

// BenchmarkChurn reports per-scheme mean slowdown under job churn.
func BenchmarkChurn(b *testing.B) {
	agg := core.Default()
	var ml, reno, srpt float64
	for i := 0; i < b.N; i++ {
		ml = experiments.Churn("mltcp", fluid.WeightedShare{}, &agg, 6, 60, 3).MeanSlowdown
		reno = experiments.Churn("reno", fluid.WeightedShare{}, nil, 6, 60, 3).MeanSlowdown
		srpt = experiments.Churn("srpt", fluid.SRPT{}, nil, 6, 60, 3).MeanSlowdown
	}
	b.ReportMetric(ml, "mltcp-mean-slowdown")
	b.ReportMetric(reno, "reno-mean-slowdown")
	b.ReportMetric(srpt, "srpt-mean-slowdown")
}
