// Command mltcp-lint runs the repo's custom static-analysis suite
// (internal/lint): simdeterminism, simunits, telemetryemit,
// registryname, seedflow, hotcall, and concguard — the invariants
// behind the byte-identical-replay contract that generic linters
// cannot see. The suite is interprocedural: per-function facts
// (allocates, usesWallClock, rngSource, spawnsGoroutine) are computed
// bottom-up over the call graph and carried across package boundaries —
// in memory when standalone, through vet's vetx facts channel as a
// vettool.
//
// Standalone:
//
//	mltcp-lint ./...
//	mltcp-lint -list
//
// As a vet tool (shares go vet's caching and package graph):
//
//	go build -o bin/mltcp-lint ./cmd/mltcp-lint
//	go vet -vettool=bin/mltcp-lint ./...
//
// Findings are suppressed line by line with a justified marker:
//
//	//lint:allow <analyzer> <reason...>
//
// Exit status: 0 clean, 1 driver error, 2+ findings (vet convention).
package main

import (
	"flag"
	"fmt"
	"os"

	"mltcp/internal/lint"
)

func main() {
	// `go vet` speaks its own protocol: a -V=full version query or a
	// single pkg.cfg argument. Detect it before flag parsing so the
	// standalone flags don't interfere.
	if args := os.Args[1:]; lint.VettoolArgs(args) {
		os.Exit(lint.VettoolMain("mltcp-lint", args, lint.Analyzers(), os.Stdout, os.Stderr))
	}

	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mltcp-lint [-list] packages...\n       go vet -vettool=$(command -v mltcp-lint) packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%s\n\t%s\n\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	diags, err := lint.Run("", patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mltcp-lint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}
