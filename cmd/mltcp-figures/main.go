// Command mltcp-figures regenerates every figure and claim from the
// paper's evaluation. Each figure prints its data series as a table or CSV
// plus an ASCII chart, so results can be inspected in a terminal or piped
// into a plotting tool.
//
// Usage:
//
//	mltcp-figures -fig all        # everything
//	mltcp-figures -fig 2c         # one panel
//	mltcp-figures -fig 3 -csv     # CSV series on stdout
//
// Figures: 1, 2a, 2b, 2c, 3, 4, 5, 6, noise, fairness, multires, sweep,
// scale, fct, mixed, robust, churn, compare, hetero, cluster, learned.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/core"
	"mltcp/internal/experiments"
	"mltcp/internal/fluid"
	"mltcp/internal/learn"
	"mltcp/internal/multires"
	"mltcp/internal/report"
	"mltcp/internal/sim"
	"mltcp/internal/svgplot"
	"mltcp/internal/telemetry"
	"mltcp/internal/trace"
)

var (
	figFlag  = flag.String("fig", "all", "figure to regenerate (see -fig help for the list)")
	csvFlag  = flag.Bool("csv", false, "emit CSV series instead of tables/charts")
	svgDir   = flag.String("svgdir", "", "also write each figure as an SVG file into this directory")
	reportF  = flag.String("report", "", "write a full Markdown paper-vs-measured report to this file and exit")
	workers  = flag.Int("workers", 0, "worker goroutines for grid figures (sweep, scale, fct, robust); 0 = one per CPU")
	scenario = flag.String("scenario", "examples/scenarios/hetero.json", "scenario file for the hetero figure")
)

// saveSVG writes a chart into -svgdir (no-op when unset).
func saveSVG(name string, chart *svgplot.Chart) {
	if *svgDir == "" {
		return
	}
	if err := os.MkdirAll(*svgDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(filepath.Join(*svgDir, name+".svg"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := chart.Render(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", f.Name())
}

func toSVGSeries(ts []trace.Series) []svgplot.Series {
	out := make([]svgplot.Series, len(ts))
	for i, s := range ts {
		out[i] = svgplot.Series{Name: s.Name, Y: s.Values}
	}
	return out
}

func main() {
	flag.Parse()
	if *reportF != "" {
		f, err := os.Create(*reportF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.Generate(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *reportF)
		return
	}
	figs := map[string]func(){
		"1":        fig1,
		"2a":       func() { fig2(experiments.Fig2Centralized()) },
		"2b":       func() { fig2(experiments.Fig2SRPT()) },
		"2c":       func() { fig2(experiments.Fig2MLTCP()) },
		"3":        fig3,
		"4":        fig4,
		"5":        fig5,
		"6":        fig6,
		"noise":    noise,
		"fairness": fairness,
		"multires": multiRes,
		"sweep":    sweep,
		"scale":    scale,
		"fct":      fct,
		"mixed":    mixed,
		"robust":   robust,
		"churn":    churn,
		"compare":  compare,
		"hetero":   hetero,
		"cluster":  cluster,
		"learned":  learned,
	}
	var keys []string
	for k := range figs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if *figFlag == "all" {
		for _, k := range keys {
			fmt.Printf("\n===== Figure/claim %s =====\n", k)
			figs[k]()
		}
		return
	}
	fn, ok := figs[*figFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q (valid: %s, all)\n",
			*figFlag, strings.Join(keys, ", "))
		os.Exit(2)
	}
	fn()
}

func fig1() {
	res := experiments.Fig1()
	var series []trace.Series
	xs := make([]float64, len(res.Demand[0]))
	for i := range xs {
		xs[i] = (sim.Time(i) * res.Bucket).Seconds()
	}
	for i, name := range res.Names {
		vals := make([]float64, len(res.Demand[i]))
		for k, r := range res.Demand[i] {
			vals[k] = float64(r) / 1e9
		}
		series = append(series, trace.Series{Name: name, Values: vals})
	}
	if *csvFlag {
		trace.WriteCSV(os.Stdout, "time_s", xs, series...)
		return
	}
	for _, s := range series {
		fmt.Print(trace.Chart("Fig 1: "+s.Name+" isolated demand (Gbps)", 72, 8, s))
	}
}

func fig2(res experiments.Fig2Result) {
	fmt.Printf("Fig 2 (%s): steady-state iteration times\n", res.Scheme)
	var rows [][]string
	for _, j := range res.Jobs {
		rows = append(rows, []string{
			j.Name,
			fmt.Sprintf("%.3f", j.AvgIter.Seconds()),
			fmt.Sprintf("%.3f", j.Ideal.Seconds()),
			fmt.Sprintf("%.2f×", j.Slowdown),
		})
	}
	fmt.Print(trace.Table([]string{"job", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
	if res.ConvergedAt >= 0 {
		fmt.Printf("converged to within 5%% of ideal at iteration %d\n", res.ConvergedAt)
	}
	if *csvFlag {
		var series []trace.Series
		n := 0
		for _, j := range res.Jobs {
			bw := res.Bandwidth[j.Name]
			vals := make([]float64, len(bw))
			for i, r := range bw {
				vals[i] = float64(r) / 1e9
			}
			if len(vals) > n {
				n = len(vals)
			}
			series = append(series, trace.Series{Name: j.Name + "_gbps", Values: vals})
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = (sim.Time(i) * res.Bucket).Seconds()
		}
		trace.WriteCSV(os.Stdout, "time_s", xs, series...)
		return
	}
	var series []trace.Series
	for _, j := range res.Jobs {
		bw := res.Bandwidth[j.Name]
		n := len(bw)
		if n > 200 {
			bw = bw[n-200:] // show the converged window
		}
		vals := make([]float64, len(bw))
		for i, r := range bw {
			vals[i] = float64(r) / 1e9
		}
		series = append(series, trace.Series{Name: j.Name, Values: vals})
	}
	fmt.Print(trace.Chart("bandwidth allocation, last 10s (Gbps)", 100, 10, series...))
	saveSVG("fig2-"+res.Scheme, &svgplot.Chart{
		Title:  "Fig 2 (" + res.Scheme + "): bandwidth allocation, last 10s",
		XLabel: "bucket (50ms)", YLabel: "Gbps",
		Series: toSVGSeries(series),
	})
}

func fig3() {
	res := experiments.Fig3()
	var series []trace.Series
	for i, name := range res.Functions {
		series = append(series, trace.Series{Name: name, Values: res.IterTimeMS[i]})
	}
	if *csvFlag {
		xs := make([]float64, experiments.Fig3Iterations)
		for i := range xs {
			xs[i] = float64(i)
		}
		trace.WriteCSV(os.Stdout, "iteration", xs, series...)
		return
	}
	fmt.Printf("Fig 3: avg iteration time (ms) vs iteration number; ideal = %.0fms\n", res.IdealMS)
	fmt.Print(trace.Chart("aggressiveness functions", 100, 12, series...))
	saveSVG("fig3", &svgplot.Chart{
		Title: "Fig 3: aggressiveness functions", XLabel: "iteration", YLabel: "avg iteration (ms)",
		Series: toSVGSeries(series),
	})
	for i, name := range res.Functions {
		last := res.IterTimeMS[i][len(res.IterTimeMS[i])-1]
		fmt.Printf("  %s: final %.0fms (%+.1f%% vs ideal)\n", name, last, (last/res.IdealMS-1)*100)
	}
}

func fig4() {
	res := experiments.Fig4()
	fmt.Printf("Fig 4: six GPT-2 jobs — tail (p99) iteration-time speedup %.2f×, median %.2f×\n",
		res.TailSpeedup, res.MedianSpeedup)
	if *csvFlag {
		var xs []float64
		var reno, ml trace.Series
		reno.Name, ml.Name = "reno_cdf", "mltcp_cdf"
		for _, p := range res.RenoCDF {
			xs = append(xs, p.Value)
			reno.Values = append(reno.Values, p.Fraction)
		}
		for _, p := range res.MLTCPCDF {
			ml.Values = append(ml.Values, p.Fraction)
		}
		trace.WriteCSV(os.Stdout, "iter_ms", xs, reno, ml)
		return
	}
	renoVals := make([]float64, len(res.RenoCDF))
	for i, p := range res.RenoCDF {
		renoVals[i] = p.Value
	}
	mlVals := make([]float64, len(res.MLTCPCDF))
	for i, p := range res.MLTCPCDF {
		mlVals[i] = p.Value
	}
	fmt.Print(trace.Chart("Fig 4c: iteration time (ms), sorted (CDF x-axis)", 100, 10,
		trace.Series{Name: "reno", Values: renoVals},
		trace.Series{Name: "mltcp", Values: mlVals}))
	renoCDF := svgplot.Series{Name: "reno"}
	for _, pt := range res.RenoCDF {
		renoCDF.X = append(renoCDF.X, pt.Value)
		renoCDF.Y = append(renoCDF.Y, pt.Fraction)
	}
	mlCDF := svgplot.Series{Name: "mltcp"}
	for _, pt := range res.MLTCPCDF {
		mlCDF.X = append(mlCDF.X, pt.Value)
		mlCDF.Y = append(mlCDF.Y, pt.Fraction)
	}
	saveSVG("fig4c", &svgplot.Chart{
		Title: "Fig 4c: CDF of iteration times", XLabel: "iteration time (ms)", YLabel: "CDF",
		Series: []svgplot.Series{renoCDF, mlCDF},
	})
}

func fig5() {
	res := experiments.Fig5()
	if *csvFlag {
		trace.WriteCSV(os.Stdout, "delta_s", res.DeltaSec, trace.Series{Name: "loss", Values: res.Loss})
		return
	}
	fmt.Printf("Fig 5c: MLTCP loss function (a=1/2, T=%.1fs); minimum at Δ=%.2fs (T/2=%.2fs)\n",
		res.Params.Period.Seconds(), res.MinDeltaSec, res.Params.Period.Seconds()/2)
	fmt.Print(trace.Chart("Loss(Δ)", 90, 12, trace.Series{Name: "loss", Values: res.Loss}))
	saveSVG("fig5c", &svgplot.Chart{
		Title: "Fig 5c: MLTCP loss function (a=1/2)", XLabel: "Δ (s)", YLabel: "Loss",
		Series: []svgplot.Series{{Name: "loss", X: res.DeltaSec, Y: res.Loss}},
	})
}

func fig6() {
	res := experiments.Fig6()
	fmt.Printf("Fig 6: two GPT-2 jobs sliding into interleaving; disjoint from iteration %d\n", res.InterleavedAt)
	if *csvFlag {
		xs := make([]float64, len(res.DeltaSec))
		for i := range xs {
			xs[i] = float64(i)
		}
		trace.WriteCSV(os.Stdout, "iteration", xs,
			trace.Series{Name: "delta_s", Values: res.DeltaSec})
		return
	}
	fmt.Print(trace.Chart("start-time difference Δ (s) per iteration; comm duration "+
		fmt.Sprintf("%.2fs", res.CommDurSec), 90, 10,
		trace.Series{Name: "delta", Values: res.DeltaSec}))
	saveSVG("fig6", &svgplot.Chart{
		Title: "Fig 6: sliding into interleaving", XLabel: "iteration", YLabel: "Δ (s)",
		Series: []svgplot.Series{{Name: "delta", Y: res.DeltaSec}},
	})
}

func noise() {
	res := experiments.NoiseBound(3)
	fmt.Println("§4 noise bound: steady-state error std vs 2σ(1+I/S)")
	var rows [][]string
	for i := range res.SigmaMS {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", res.SigmaMS[i]),
			fmt.Sprintf("%.1f", res.MeasuredMS[i]),
			fmt.Sprintf("%.1f", res.BoundMS[i]),
		})
	}
	fmt.Print(trace.Table([]string{"σ (ms)", "measured (ms)", "bound (ms)"}, rows))
}

func fairness() {
	res := experiments.Fairness()
	fmt.Println("§5 fairness: single-flow goodput vs loss probability (Mbps)")
	var rows [][]string
	for i, p := range res.LossProbs {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p),
			fmt.Sprintf("%.1f", res.RenoMbps[i]),
			fmt.Sprintf("%.1f", res.MLTCPMbps[i]),
		})
	}
	fmt.Print(trace.Table([]string{"loss p", "reno", "mltcp-reno"}, rows))
	fmt.Printf("fitted exponents: reno %.2f, mltcp %.2f; advantage ratio %.2f×\n",
		res.RenoExponent, res.MLTCPExponent, res.AdvantageRatio)
	fmt.Printf("coexistence: mltcp/reno share %.2f×; reno at %.0f%% of fair half (not starved)\n",
		res.ShareRatio, res.RenoShareOfFair*100)
}

func multiRes() {
	agg := core.Default()
	mk := func(name string, off sim.Time, a *core.AggFunc) *multires.Task {
		return &multires.Task{Name: name, WorkUnits: 3.2, IdleTime: 800 * sim.Millisecond, StartOffset: off, Agg: a}
	}
	run := func(a *core.AggFunc) []*multires.Task {
		tasks := []*multires.Task{mk("t1", 0, a), mk("t2", 10*sim.Millisecond, a), mk("t3", 20*sim.Millisecond, a)}
		multires.NewScheduler(8, tasks).Run(120 * sim.Second)
		return tasks
	}
	fmt.Println("§5 multi-resource: three CPU tasks (3.2 core-s work + 0.8s idle on 8 cores; ideal iteration 1.2s)")
	var rows [][]string
	fair := run(nil)
	prog := run(&agg)
	for i := range fair {
		rows = append(rows, []string{
			fair[i].Name,
			fmt.Sprintf("%.3f", fair[i].AvgIterTime(20).Seconds()),
			fmt.Sprintf("%.3f", prog[i].AvgIterTime(20).Seconds()),
		})
	}
	fmt.Print(trace.Table([]string{"task", "fair share (s)", "progress-weighted (s)"}, rows))
}

func sweep() {
	pts := experiments.SlopeInterceptSweepWorkers(10*sim.Millisecond, *workers)
	fmt.Println("ablation: Equation 2 constants vs convergence (3 GPT-2 jobs, 10ms noise)")
	var rows [][]string
	for _, p := range pts {
		conv := fmt.Sprintf("%d", p.ConvergedAt)
		if p.ConvergedAt < 0 {
			conv = "never"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", p.Slope),
			fmt.Sprintf("%.2f", p.Intercept),
			conv,
			fmt.Sprintf("%.3f", p.SteadySlowdown),
		})
	}
	fmt.Print(trace.Table([]string{"slope", "intercept", "converged at", "steady slowdown"}, rows))
}

func scale() {
	pts := experiments.ScalabilityWorkers(nil, *workers)
	fmt.Println("scalability: centralized optimizer cost vs MLTCP distributed convergence")
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N),
			p.OptimizerWall.Round(time.Microsecond).String(),
			fmt.Sprintf("%v", p.OptimizerInterleaved),
			fmt.Sprintf("%d", p.MLTCPConvergedAt),
			fmt.Sprintf("%.3f", p.MLTCPSlowdown),
		})
	}
	fmt.Print(trace.Table([]string{"jobs", "optimizer wall", "interleaved", "mltcp converged at", "mltcp slowdown"}, rows))
}

func fct() {
	fmt.Println("baseline validation: flow completion times on websearch traffic (load 0.6)")
	var rows [][]string
	grid := experiments.FCTGrid(nil, []float64{0.6}, 20*sim.Second, 42, *workers)
	for _, r := range grid {
		rows = append(rows, []string{
			r.Scheme,
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%.1f", r.ShortMeanMS),
			fmt.Sprintf("%.1f", r.ShortP99MS),
			fmt.Sprintf("%.0f", r.LargeMeanMS),
		})
	}
	fmt.Print(trace.Table([]string{"scheme", "flows", "short mean (ms)", "short p99 (ms)", "large mean (ms)"}, rows))
}

func mixed() {
	const mixedSeed = 9 // root seed for the background-traffic arrival process
	res := experiments.MixedTraffic(0.10, 60*sim.Second, mixedSeed)
	fmt.Println("mixed traffic: 2 MLTCP jobs + 10% websearch background on one bottleneck")
	fmt.Printf("  job steady iterations: %.3fs / %.3fs (no-contention ideal %.3fs)\n",
		res.JobSteady[0].Seconds(), res.JobSteady[1].Seconds(), res.JobIdeal.Seconds())
	fmt.Printf("  background: %d/%d flows completed, short-flow mean FCT %.1fms\n",
		res.BackgroundCompleted, res.BackgroundStarted, res.BackgroundShortMeanMS)
}

func robust() {
	pts := experiments.NoiseRobustnessWorkers(nil, 0, *workers)
	fmt.Println("robustness: static centralized schedule vs MLTCP under compute noise")
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.SigmaMS),
			fmt.Sprintf("%.3f", p.CentralizedSlowdown),
			fmt.Sprintf("%.3f", p.MLTCPSlowdown),
		})
	}
	fmt.Print(trace.Table([]string{"sigma (ms)", "centralized slowdown", "mltcp slowdown"}, rows))
}

func churn() {
	fmt.Println("job churn: 1 GPT-3 + 5 GPT-2 jobs arriving over 60s, 60 iterations each")
	agg := core.Default()
	var rows [][]string
	const churnSeed = 3 // shared root seed: identical arrival pattern across schemes
	for _, c := range []experiments.ChurnResult{
		experiments.Churn("mltcp", fluid.WeightedShare{}, &agg, 6, 60, churnSeed),
		experiments.Churn("reno", fluid.WeightedShare{}, nil, 6, 60, churnSeed),
		experiments.Churn("srpt", fluid.SRPT{Label: "pfabric"}, nil, 6, 60, churnSeed),
	} {
		rows = append(rows, []string{
			c.Scheme,
			fmt.Sprintf("%d", c.Jobs),
			fmt.Sprintf("%.3f", c.MeanSlowdown),
			fmt.Sprintf("%.3f", c.P95Slowdown),
			fmt.Sprintf("%.3f", c.MaxSlowdown),
		})
	}
	fmt.Print(trace.Table([]string{"scheme", "jobs done", "mean slowdown", "p95", "worst"}, rows))
}

// hetero runs the heterogeneous example scenario (-scenario) on the packet
// backend with telemetry enabled, prints the traced summary, and renders
// the per-flow congestion-window evolution from the trace events. It skips
// gracefully when the scenario file is absent (e.g. -fig all from outside
// the repo root).
func hetero() {
	f, err := os.Open(*scenario)
	if err != nil {
		fmt.Printf("hetero: scenario %s not found, skipping (run from the repo root or pass -scenario)\n", *scenario)
		return
	}
	scn, err := config.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := (&backend.Packet{}).Run(ctx, &scn, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("hetero: %s traced end-to-end on the packet backend (%d events)\n",
		scn.Name, buf.Len())
	var rows [][]string
	for _, j := range res.Jobs {
		rows = append(rows, []string{
			j.Name,
			fmt.Sprintf("%d", j.Iterations()),
			fmt.Sprintf("%.3f", j.SteadyIter(10).Seconds()),
			fmt.Sprintf("%.3f", j.Ideal.Seconds()),
			fmt.Sprintf("%.2f×", j.Slowdown(10)),
		})
	}
	fmt.Print(trace.Table([]string{"job", "iters", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
	fmt.Printf("overlap=%.3f interleaved-at=%d retransmits=%d drops=%d\n",
		res.OverlapScore, res.InterleavedAt,
		reg.Counter("tcp.retransmits").Value(), reg.Counter("net.drops").Value())

	// Per-flow cwnd evolution from the trace's cwnd events.
	cwnd := map[int][]float64{}
	for _, e := range buf.Events() {
		if e.Kind == telemetry.KindCwnd {
			cwnd[e.Flow] = append(cwnd[e.Flow], e.V0)
		}
	}
	var flows []int
	for fl := range cwnd {
		flows = append(flows, fl)
	}
	sort.Ints(flows)
	var series []trace.Series
	for _, fl := range flows {
		name := fmt.Sprintf("flow %d", fl)
		if fl-1 < len(res.Jobs) {
			name = res.Jobs[fl-1].Name
		}
		series = append(series, trace.Series{Name: name, Values: cwnd[fl]})
	}
	fmt.Print(trace.Chart("cwnd evolution (packets)", 100, 10, series...))
	saveSVG("hetero-cwnd", &svgplot.Chart{
		Title:  "Heterogeneous scenario: per-flow cwnd from telemetry trace",
		XLabel: "cwnd sample (50ms min spacing)", YLabel: "cwnd (packets)",
		Series: toSVGSeries(series),
	})
}

// cluster runs the standard 100-job Poisson fat-tree trace — the
// cluster-scale setting where per-bottleneck self-interleaving has to add
// up to a fabric-wide effect — once per scheme and reports the pairwise
// overlap split by whether the two jobs share a fabric link. MLTCP should
// drive the shared-pair overlap below plain reno's; disjoint pairs never
// contend and serve as the control group.
func cluster() {
	scn := experiments.ClusterScenario(experiments.ClusterOpts{Seed: 11})
	var rows [][]string
	for pi, policy := range []string{"mltcp", "reno"} {
		s := *scn
		s.Policy = policy
		res, err := (&backend.Fluid{}).Run(context.Background(), &s, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c := res.Cluster
		if pi == 0 {
			fmt.Printf("cluster: %s — %d jobs on %s (%d racks, %d links)\n",
				scn.Name, len(res.Jobs), c.Topology, c.Racks, c.Links)
		}
		departed := 0
		for i, j := range res.Jobs {
			if j.Iterations() >= s.Jobs[i].Iters {
				departed++
			}
		}
		rows = append(rows, []string{
			policy,
			fmt.Sprintf("%d", c.SharingPairs),
			fmt.Sprintf("%.3f", c.SharedOverlap),
			fmt.Sprintf("%d", c.DisjointPairs),
			fmt.Sprintf("%.3f", c.DisjointOverlap),
			fmt.Sprintf("%d/%d", departed, len(res.Jobs)),
		})
	}
	fmt.Print(trace.Table([]string{"scheme", "sharing pairs", "shared overlap",
		"disjoint pairs", "disjoint overlap", "departed"}, rows))
}

// compare runs the canonical two-job scenario at both fidelities through
// the backend interface and prints their agreement — the cross-fidelity
// validation of the fluid weighted-share abstraction.
func compare() {
	fmt.Println("cross-fidelity: canonical 2×GPT-2 MLTCP scenario, fluid vs packet backend")
	res, err := experiments.CrossFidelityCanonical(context.Background(), 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rows [][]string
	for i := range res.Fluid.Jobs {
		rows = append(rows, []string{
			res.Fluid.Jobs[i].Name,
			fmt.Sprintf("%.3f", res.Fluid.Jobs[i].Slowdown(20)),
			fmt.Sprintf("%.3f", res.Packet.Jobs[i].Slowdown(20)),
			fmt.Sprintf("%.4f", res.SlowdownGap[i]),
			fmt.Sprintf("%.5f", res.BytesPerIterGap[i]),
		})
	}
	fmt.Print(trace.Table([]string{"job", "fluid slowdown", "packet slowdown", "gap", "bytes gap"}, rows))
	fmt.Printf("overlap score: fluid %.3f, packet %.3f (gap %.3f); interleaved at iter %d vs %d\n",
		res.Fluid.OverlapScore, res.Packet.OverlapScore, res.OverlapGap,
		res.Fluid.InterleavedAt, res.Packet.InterleavedAt)
}

// learned evaluates the learned backend against the fluid simulation on
// its tracked scenarios (the canonical 2×GPT-2 dumbbell and the quick
// cluster trace) — the third-fidelity analogue of compare — and renders
// the predicted-vs-simulated per-job slowdown scatter.
func learned() {
	fmt.Println("learned backend: predicted vs fluid-simulated steady-state slowdowns")
	cmps, err := experiments.LearnedEval(context.Background(), nil, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	type pt struct{ exact, pred float64 }
	var pts []pt
	var rows [][]string
	for _, c := range cmps {
		for i := range c.Exact.Jobs {
			e := c.Exact.Jobs[i].Slowdown(learn.SteadySkip)
			p := c.Learned.Jobs[i].Slowdown(learn.SteadySkip)
			pts = append(pts, pt{e, p})
			rows = append(rows, []string{
				c.Scenario,
				c.Exact.Jobs[i].Name,
				fmt.Sprintf("%.3f", e),
				fmt.Sprintf("%.3f", p),
				fmt.Sprintf("%.4f", c.RelErr[i]),
			})
		}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].exact < pts[b].exact })
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	lo, hi := 0.0, 1.0
	for i, p := range pts {
		xs[i], ys[i] = p.exact, p.pred
		if i == 0 || p.exact < lo {
			lo = p.exact
		}
		if p.exact > hi {
			hi = p.exact
		}
		if p.pred > hi {
			hi = p.pred
		}
	}
	if *csvFlag {
		trace.WriteCSV(os.Stdout, "fluid_slowdown", xs,
			trace.Series{Name: "learned_slowdown", Values: ys})
		return
	}
	fmt.Print(trace.Table([]string{"scenario", "job", "fluid", "learned", "rel err"}, rows))
	for _, c := range cmps {
		fmt.Printf("%s: mean err %.3f, max err %.3f, overlap gap %.3f\n",
			c.Scenario, c.MeanRelErr, c.MaxRelErr, c.OverlapGap)
	}
	fmt.Print(trace.Chart("predicted slowdown vs fluid (jobs sorted by fluid slowdown)", 90, 10,
		trace.Series{Name: "fluid", Values: xs},
		trace.Series{Name: "learned", Values: ys}))
	saveSVG("learned", &svgplot.Chart{
		Title:  "Learned backend: predicted vs simulated slowdown",
		XLabel: "fluid slowdown", YLabel: "predicted slowdown",
		Series: []svgplot.Series{
			{Name: "jobs", X: xs, Y: ys},
			{Name: "y=x", X: []float64{lo, hi}, Y: []float64{lo, hi}},
		},
	})
}
