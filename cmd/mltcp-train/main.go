// Command mltcp-train fits the learned backend's model from a corpus
// produced by mltcp-corpus. Training is pure Go and deterministic: the
// same (-corpus, -seed) writes a byte-identical model file. After
// training it evaluates the model's cross-fidelity error on the tracked
// scenarios (canonical 2×gpt2 and the quick cluster trace) against the
// fluid backend, optionally writing a JSON error report and failing when
// the mean error exceeds -maxerr.
//
// Examples:
//
//	mltcp-train -corpus corpus.jsonl -out internal/learn/models/default.json
//	mltcp-train -corpus corpus.jsonl -out model.json -report report.json -maxerr 0.10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mltcp/internal/backend"
	"mltcp/internal/experiments"
	"mltcp/internal/learn"
)

var (
	corpusFlag = flag.String("corpus", "corpus.jsonl", "input corpus (from mltcp-corpus)")
	outFlag    = flag.String("out", "model.json", "output model path")
	seedFlag   = flag.Uint64("seed", 1, "training seed (stump tie-breaking, feature subsampling)")
	roundsFlag = flag.Int("rounds", 0, "boosting rounds per head (0 = default)")
	lambdaFlag = flag.Float64("lambda", 0, "ridge regularization strength (0 = default)")
	reportFlag = flag.String("report", "", "write a JSON cross-fidelity error report to this path")
	maxErrFlag = flag.Float64("maxerr", 0, "fail (exit 1) when mean slowdown error on any tracked scenario exceeds this (0 = no gate)")
	evalFlag   = flag.Bool("eval", true, "evaluate cross-fidelity error after training")
)

// report is the JSON error report schema.
type report struct {
	Model     string           `json:"model"`
	Corpus    string           `json:"corpus"`
	Seed      uint64           `json:"seed"`
	Scenarios []scenarioErrors `json:"scenarios"`
}

type scenarioErrors struct {
	Scenario   string  `json:"scenario"`
	Jobs       int     `json:"jobs"`
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	OverlapGap float64 `json:"overlap_gap"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	f, err := os.Open(*corpusFlag)
	if err != nil {
		return err
	}
	h, runs, err := learn.ReadCorpus(f)
	f.Close()
	if err != nil {
		return err
	}
	m := learn.Train(h, runs, learn.TrainOpts{
		Seed:   *seedFlag,
		Rounds: *roundsFlag,
		Lambda: *lambdaFlag,
	})
	out, err := os.Create(*outFlag)
	if err != nil {
		return err
	}
	if err := m.Encode(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model: %d heads from %s -> %s\n", len(m.Heads), m.Corpus, *outFlag)
	if !*evalFlag {
		return nil
	}

	cmps, err := experiments.LearnedEval(context.Background(), &backend.Learned{Model: m}, 1)
	if err != nil {
		return err
	}
	rep := report{Model: *outFlag, Corpus: m.Corpus, Seed: m.Seed}
	failed := false
	for _, c := range cmps {
		fmt.Fprintf(os.Stderr, "eval: %-28s jobs=%-3d mean-err=%.3f max-err=%.3f overlap-gap=%.3f\n",
			c.Scenario, len(c.RelErr), c.MeanRelErr, c.MaxRelErr, c.OverlapGap)
		rep.Scenarios = append(rep.Scenarios, scenarioErrors{
			Scenario:   c.Scenario,
			Jobs:       len(c.RelErr),
			MeanRelErr: c.MeanRelErr,
			MaxRelErr:  c.MaxRelErr,
			OverlapGap: c.OverlapGap,
		})
		if *maxErrFlag > 0 && c.MeanRelErr > *maxErrFlag {
			failed = true
		}
	}
	if *reportFlag != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportFlag, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("mltcp-train: mean slowdown error exceeds -maxerr %.3f", *maxErrFlag)
	}
	return nil
}
