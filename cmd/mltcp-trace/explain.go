package main

import (
	"io"

	"mltcp/internal/diagnose"
	"mltcp/internal/telemetry"
)

// maxAttributedIters caps the per-iteration attribution table in the
// -explain text report.
const maxAttributedIters = 8

// explain renders the diagnose layer's view of the trace: the interleave
// verdict with its timeline and locked bands, followed by per-iteration
// bottleneck attribution. With asJSON, only the interleave report is
// emitted, as one stable JSON document.
func explain(w io.Writer, tr *telemetry.Trace, asJSON bool) error {
	rep, err := diagnose.Explain(tr)
	if err != nil {
		return err
	}
	if asJSON {
		_, err := w.Write(append(rep.AppendJSON(nil), '\n'))
		return err
	}
	if err := rep.WriteText(w, 0); err != nil {
		return err
	}
	if rep.Predicted {
		return nil
	}
	if _, err := io.WriteString(w, "\nbottleneck attribution:\n"); err != nil {
		return err
	}
	at, err := diagnose.Attribute(tr)
	if err != nil {
		return err
	}
	return at.WriteText(w, maxAttributedIters)
}
