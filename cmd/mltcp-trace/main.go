// Command mltcp-trace summarizes a JSONL telemetry trace written by
// `mltcpsim -trace`: the run manifest, per-flow iteration and congestion
// statistics, ASCII charts of congestion-window and queue-occupancy
// evolution, and the interleaving scores recomputed from the event
// stream with the backend's exact arithmetic — so a traced run's summary
// agrees with the untraced result.
//
// Examples:
//
//	mltcpsim -jobs gpt2,gpt2 -level packet -duration 60s -trace run.jsonl
//	mltcp-trace run.jsonl
//	mltcp-trace -flow 2 -events run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mltcp/internal/backend"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/trace"
)

var (
	flowFlag   = flag.Int("flow", 0, "restrict the per-flow sections to this flow ID (0 = all)")
	eventsFlag = flag.Bool("events", false, "also print the raw event counts per (kind, flow)")
	widthFlag  = flag.Int("width", 100, "chart width in columns")
	skipFlag   = flag.Int("skip", 20, "iterations to skip in steady-state averages")
	jsonFlag   = flag.Bool("json", false, "emit the summary as stable machine-readable JSON instead of text")
	explainFlag = flag.Bool("explain", false,
		"explain the run instead of summarizing it: interleave verdict, phase bands, and per-iteration bottleneck attribution (with -json, the interleave report as stable JSON)")
	promFlag = flag.Bool("prom", false,
		"emit the trace's metrics snapshot in Prometheus text exposition format")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mltcp-trace [flags] trace.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := telemetry.Read(f)
	if err != nil {
		return err
	}
	if *promFlag {
		return writeProm(os.Stdout, tr)
	}
	if *explainFlag {
		return explain(os.Stdout, tr, *jsonFlag)
	}

	res, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		return err
	}
	if *jsonFlag {
		return writeJSON(os.Stdout, tr, res, *skipFlag)
	}

	printManifest(tr.Manifest)
	if tr.Manifest.Predicted {
		fmt.Println("predicted run (learned backend): manifest-only trace — event-derived sections are empty")
	}
	fmt.Printf("interleaved-at=%d overlap=%.3f (recomputed from %d events)\n\n",
		res.InterleavedAt, res.OverlapScore, len(tr.Events))
	if c := res.Cluster; c != nil {
		fmt.Printf("cluster: topology=%s racks=%d links=%d sharing-pairs=%d (overlap %.3f) disjoint-pairs=%d (overlap %.3f)\n\n",
			c.Topology, c.Racks, c.Links, c.SharingPairs, c.SharedOverlap, c.DisjointPairs, c.DisjointOverlap)
	}

	printJobs(res)
	printCongestion(tr)
	printCharts(tr, res)
	printInterleaveEvolution(os.Stdout, res)
	if tr.Metrics != nil {
		printMetrics(tr.Metrics)
	}
	if *eventsFlag {
		printEventCounts(tr.Events)
	}
	return nil
}

func printManifest(m *telemetry.Manifest) {
	fmt.Printf("scenario=%s backend=%s policy=%s seed=%d capacity=%.3gGbps scale=%g duration=%v",
		m.Scenario, m.Backend, m.Policy, m.Seed, m.CapacityGbps, m.Scale, m.Duration())
	if m.Revision != "" {
		fmt.Printf(" revision=%.12s", m.Revision)
	}
	if m.Predicted {
		fmt.Printf(" predicted=true")
	}
	fmt.Println()
}

func printJobs(res *backend.Result) {
	var rows [][]string
	for _, j := range res.Jobs {
		rows = append(rows, []string{
			j.Name,
			j.Profile,
			fmt.Sprintf("%d", j.Iterations()),
			fmt.Sprintf("%.3f", j.SteadyIter(*skipFlag).Seconds()),
			fmt.Sprintf("%.3f", j.Ideal.Seconds()),
			fmt.Sprintf("%.2f×", j.Slowdown(*skipFlag)),
		})
	}
	fmt.Print(trace.Table(
		[]string{"job", "profile", "iters", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
	fmt.Println()
}

// flowStats aggregates the congestion-related events of one flow.
type flowStats struct {
	retx, rto, recoveries int
	cwndSamples           int
	lastCwnd              float64
	aggSamples            int
	lastRatio, lastFactor float64
}

// collectFlowStats aggregates the congestion-related events per flow,
// returning the stats map and the flow IDs in ascending order — shared
// by the text and -json renderings so both report the same numbers.
func collectFlowStats(events []telemetry.Event) (map[int]*flowStats, []int) {
	stats := map[int]*flowStats{}
	get := func(flow int) *flowStats {
		s, ok := stats[flow]
		if !ok {
			s = &flowStats{}
			stats[flow] = s
		}
		return s
	}
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindRetransmit:
			get(e.Flow).retx++
		case telemetry.KindRTO:
			get(e.Flow).rto++
		case telemetry.KindFastRecovery:
			get(e.Flow).recoveries++
		case telemetry.KindCwnd:
			s := get(e.Flow)
			s.cwndSamples++
			s.lastCwnd = e.V0
		case telemetry.KindAgg:
			s := get(e.Flow)
			s.aggSamples++
			s.lastRatio, s.lastFactor = e.V0, e.V1
		}
	}
	flows := make([]int, 0, len(stats))
	for f := range stats {
		flows = append(flows, f)
	}
	sort.Ints(flows)
	return stats, flows
}

func printCongestion(tr *telemetry.Trace) {
	stats, flows := collectFlowStats(tr.Events)
	if len(stats) == 0 {
		return
	}
	var rows [][]string
	for _, f := range flows {
		if *flowFlag != 0 && f != *flowFlag {
			continue
		}
		s := stats[f]
		rows = append(rows, []string{
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%d", s.retx),
			fmt.Sprintf("%d", s.rto),
			fmt.Sprintf("%d", s.recoveries),
			fmt.Sprintf("%d", s.cwndSamples),
			fmt.Sprintf("%.1f", s.lastCwnd),
			fmt.Sprintf("%.3f", s.lastFactor),
		})
	}
	fmt.Print(trace.Table(
		[]string{"flow", "retx", "rto", "recoveries", "cwnd samples", "final cwnd", "final F"}, rows))
	fmt.Println()
}

// downsample coarsens vals to at most n points by averaging runs.
func downsample(vals []float64, n int) []float64 {
	if len(vals) <= n {
		return vals
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(vals)/n, (i+1)*len(vals)/n
		var sum float64
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func printCharts(tr *telemetry.Trace, res *backend.Result) {
	cwnd := map[int][]float64{}
	var queue []float64
	for _, e := range tr.Events {
		switch e.Kind {
		case telemetry.KindCwnd:
			if *flowFlag == 0 || e.Flow == *flowFlag {
				cwnd[e.Flow] = append(cwnd[e.Flow], e.V0)
			}
		case telemetry.KindQueue:
			queue = append(queue, float64(e.N)/1e3)
		}
	}
	if len(cwnd) > 0 {
		flows := make([]int, 0, len(cwnd))
		for f := range cwnd {
			flows = append(flows, f)
		}
		sort.Ints(flows)
		var series []trace.Series
		for _, f := range flows {
			series = append(series, trace.Series{
				Name:   fmt.Sprintf("flow %d", f),
				Values: downsample(cwnd[f], *widthFlag),
			})
		}
		fmt.Print(trace.Chart("cwnd (packets)", *widthFlag, 10, series...))
		fmt.Println()
	}
	if len(queue) > 0 {
		fmt.Print(trace.Chart("bottleneck queue (KB)", *widthFlag, 8,
			trace.Series{Name: "queue", Values: downsample(queue, *widthFlag)}))
		fmt.Println()
	}
}

// printInterleaveEvolution shows how the overlap score evolves over the
// horizon: the fraction of communication time colliding with another job,
// per quarter of the run — the signature of MLTCP's emergent interleaving
// is this decaying toward zero. The closing line spells the convergence
// iteration out, with -1 rendered as "never" instead of a bare sentinel.
func printInterleaveEvolution(w io.Writer, res *backend.Result) {
	if res.Duration <= 0 || len(res.Jobs) < 2 {
		return
	}
	var rows [][]string
	const parts = 4
	for q := 0; q < parts; q++ {
		from := res.Duration * sim.Time(q) / parts
		until := res.Duration * sim.Time(q+1) / parts
		score := backend.OverlapScoreOf(res.Jobs, from, until)
		rows = append(rows, []string{
			fmt.Sprintf("%v–%v", from, until),
			fmt.Sprintf("%.3f", score),
		})
	}
	fmt.Fprint(w, trace.Table([]string{"window", "overlap"}, rows))
	if res.InterleavedAt < 0 {
		fmt.Fprintln(w, "interleaved-at: never (within horizon)")
	} else {
		fmt.Fprintf(w, "interleaved-at: iter %d\n", res.InterleavedAt)
	}
	fmt.Fprintln(w)
}

func printMetrics(s *telemetry.Snapshot) {
	var rows [][]string
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rows = append(rows, []string{n, fmt.Sprintf("%d", s.Counters[n])})
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		rows = append(rows, []string{n, fmt.Sprintf("n=%d mean=%.4g", h.Count, mean)})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Print(trace.Table([]string{"metric", "value"}, rows))
}

func printEventCounts(events []telemetry.Event) {
	type key struct {
		kind telemetry.Kind
		flow int
	}
	counts := map[key]int{}
	for _, e := range events {
		counts[key{e.Kind, e.Flow}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].flow < keys[j].flow
	})
	fmt.Println()
	var rows [][]string
	for _, k := range keys {
		rows = append(rows, []string{
			k.kind.String(), fmt.Sprintf("%d", k.flow), fmt.Sprintf("%d", counts[k]),
		})
	}
	fmt.Print(trace.Table([]string{"kind", "flow", "count"}, rows))
}
