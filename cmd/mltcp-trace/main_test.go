package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/telemetry"
)

func tracedScenario() *config.Scenario {
	return &config.Scenario{
		Name:        "cli-test",
		Policy:      "mltcp",
		DurationSec: 20,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
}

// writeTestTrace runs a short traced fluid scenario and writes its JSONL
// trace, returning the path and the run's result.
func writeTestTrace(t *testing.T) (string, *backend.Result) {
	t.Helper()
	scn := tracedScenario()
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := (&backend.Fluid{}).Run(ctx, scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, res
}

// TestRoundTrip pins the producer→file→consumer pipeline: a trace written
// by the backend decodes fully and ResultFromTrace reproduces the run's
// interleaving scores.
func TestRoundTrip(t *testing.T) {
	path, res := writeTestTrace(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := telemetry.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Manifest == nil || tr.Metrics == nil || len(tr.Events) == 0 {
		t.Fatalf("incomplete trace: manifest=%v metrics=%v events=%d",
			tr.Manifest != nil, tr.Metrics != nil, len(tr.Events))
	}
	if tr.Manifest.Backend != "fluid" || len(tr.Manifest.Jobs) != 2 {
		t.Fatalf("manifest %+v", tr.Manifest)
	}
	got, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		t.Fatal(err)
	}
	if got.InterleavedAt != res.InterleavedAt || got.OverlapScore != res.OverlapScore {
		t.Fatalf("scores from trace (%d, %v) != run (%d, %v)",
			got.InterleavedAt, got.OverlapScore, res.InterleavedAt, res.OverlapScore)
	}
	if n := tr.Metrics.Counters["job.iterations"]; n == 0 {
		t.Fatal("metrics line missing job.iterations")
	}
}

// TestRunSummarizes drives the CLI's run() over a real trace file.
func TestRunSummarizes(t *testing.T) {
	path, _ := writeTestTrace(t)
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

// TestLearnedTraceRoundTrip runs the checked-in learned-demo scenario on
// the learned backend with telemetry, writes the (manifest-only) trace,
// and asserts the CLI summarizes it without error in both text and -json
// modes — the predicted-trace analogue of TestRunSummarizes.
func TestLearnedTraceRoundTrip(t *testing.T) {
	f, err := os.Open(filepath.FromSlash("../../examples/scenarios/learned-demo.json"))
	if err != nil {
		t.Fatal(err)
	}
	scn, err := config.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	if _, err := (&backend.Learned{}).Run(ctx, &scn, 1); err != nil {
		t.Fatal(err)
	}
	if rec.Manifest() == nil || !rec.Manifest().Predicted {
		t.Fatalf("learned manifest not marked predicted: %+v", rec.Manifest())
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "learned.jsonl")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run(path); err != nil {
		t.Fatalf("text summary of predicted trace: %v", err)
	}

	tf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tr, err := telemetry.Read(tf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := writeJSON(&js, tr, res, *skipFlag); err != nil {
		t.Fatalf("-json summary of predicted trace: %v", err)
	}
	if !bytes.Contains(js.Bytes(), []byte(`"predicted":true`)) {
		t.Fatalf("JSON summary does not carry the predicted flag:\n%s", js.String())
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDownsample(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	got := downsample(vals, 3)
	want := []float64{1.5, 3.5, 5.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("downsample = %v, want %v", got, want)
		}
	}
	if out := downsample(vals, 10); len(out) != len(vals) {
		t.Fatal("short input should pass through")
	}
	if out := downsample(vals, len(vals)); len(out) != len(vals) {
		t.Fatal("n == len should pass through")
	}
	if out := downsample(vals, 1); len(out) != 1 || out[0] != 3.5 {
		t.Fatalf("downsample to one point = %v, want [3.5]", out)
	}
	if out := downsample(nil, 3); len(out) != 0 {
		t.Fatalf("empty input = %v, want empty", out)
	}
}
