package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/telemetry"
)

// summarize renders the -json summary of a test trace into memory.
func summarize(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := telemetry.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := writeJSON(&out, tr, res, *skipFlag); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestJSONSummaryStableAndComplete(t *testing.T) {
	path, res := writeTestTrace(t)
	first := summarize(t, path)
	second := summarize(t, path)
	if !bytes.Equal(first, second) {
		t.Fatal("equal traces summarized to different bytes")
	}
	if !json.Valid(first) {
		t.Fatalf("summary is not valid JSON: %s", first)
	}

	var doc struct {
		Kind             string              `json:"kind"`
		Schema           int                 `json:"schema"`
		Manifest         *telemetry.Manifest `json:"manifest"`
		Events           int                 `json:"events"`
		DroppedByLimiter int64               `json:"dropped_by_limiter"`
		InterleavedAt    int                 `json:"interleaved_at"`
		Overlap          float64             `json:"overlap"`
		Jobs          []struct {
			Flow         int     `json:"flow"`
			Name         string  `json:"name"`
			Profile      string  `json:"profile"`
			Iterations   int     `json:"iterations"`
			SteadyIterNS int64   `json:"steady_iter_ns"`
			IdealNS      int64   `json:"ideal_ns"`
			Slowdown     float64 `json:"slowdown"`
		} `json:"jobs"`
		OverlapQuarters []float64           `json:"overlap_quarters"`
		Metrics         *telemetry.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "trace-summary" || doc.Schema != summarySchema {
		t.Fatalf("header kind=%q schema=%d", doc.Kind, doc.Schema)
	}
	if doc.Manifest == nil || doc.Manifest.Scenario != "cli-test" {
		t.Fatalf("manifest %+v", doc.Manifest)
	}
	if doc.Events == 0 {
		t.Fatal("zero events reported")
	}
	if doc.InterleavedAt != res.InterleavedAt || doc.Overlap != res.OverlapScore {
		t.Fatalf("scores (%d, %v) != run (%d, %v)",
			doc.InterleavedAt, doc.Overlap, res.InterleavedAt, res.OverlapScore)
	}
	if len(doc.Jobs) != len(res.Jobs) {
		t.Fatalf("%d jobs, want %d", len(doc.Jobs), len(res.Jobs))
	}
	for i, j := range doc.Jobs {
		want := res.Jobs[i]
		if j.Name != want.Name || j.Profile != want.Profile {
			t.Fatalf("job %d identity %+v", i, j)
		}
		if j.Flow != i+1 {
			t.Fatalf("job %d flow %d", i, j.Flow)
		}
		if j.Iterations != want.Iterations() {
			t.Fatalf("job %d iterations %d, want %d", i, j.Iterations, want.Iterations())
		}
		// Durations cross the JSON boundary as integer nanoseconds, so
		// the decoded values are exact, not float round-trips.
		if j.SteadyIterNS != int64(want.SteadyIter(*skipFlag)) || j.IdealNS != int64(want.Ideal) {
			t.Fatalf("job %d durations %+v", i, j)
		}
		if j.Slowdown != want.Slowdown(*skipFlag) {
			t.Fatalf("job %d slowdown %v, want %v", i, j.Slowdown, want.Slowdown(*skipFlag))
		}
	}
	if len(doc.OverlapQuarters) != 4 {
		t.Fatalf("%d overlap quarters, want 4", len(doc.OverlapQuarters))
	}
	if doc.Metrics == nil || doc.Metrics.Counters["job.iterations"] == 0 {
		t.Fatalf("metrics snapshot missing or empty: %+v", doc.Metrics)
	}
}

// TestJSONClusterRoundTrip pins the -json rendering of topology runs: the
// cluster block round-trips the backend's ClusterResult exactly (floats
// use the shortest exact representation, so decoding is lossless), and
// dumbbell summaries omit the block entirely.
func TestJSONClusterRoundTrip(t *testing.T) {
	scn := &config.Scenario{
		Name:        "cli-cluster",
		Policy:      "mltcp",
		DurationSec: 20,
		Topology:    &config.Topology{Kind: config.KindFatTree, K: 4},
		Jobs: []config.Job{
			{Name: "A", Profile: "gpt2", SrcRack: "rack0", DstRack: "rack4"},
			{Name: "B", Profile: "gpt2", SrcRack: "rack0", DstRack: "rack4"},
			{Name: "C", Profile: "bert"},
		},
	}
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := (&backend.Fluid{}).Run(ctx, scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := telemetry.Write(&trace, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.jsonl")
	if err := os.WriteFile(path, trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	summary := summarize(t, path)
	var doc struct {
		Cluster *struct {
			Topology        string  `json:"topology"`
			Racks           int     `json:"racks"`
			Links           int     `json:"links"`
			SharingPairs    int     `json:"sharing_pairs"`
			DisjointPairs   int     `json:"disjoint_pairs"`
			SharedOverlap   float64 `json:"shared_overlap"`
			DisjointOverlap float64 `json:"disjoint_overlap"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(summary, &doc); err != nil {
		t.Fatal(err)
	}
	c := doc.Cluster
	if c == nil {
		t.Fatalf("topology summary has no cluster block: %s", summary)
	}
	want := res.Cluster
	if c.Topology != want.Topology || c.Racks != want.Racks || c.Links != want.Links ||
		c.SharingPairs != want.SharingPairs || c.DisjointPairs != want.DisjointPairs ||
		c.SharedOverlap != want.SharedOverlap || c.DisjointOverlap != want.DisjointOverlap {
		t.Fatalf("cluster block %+v does not round-trip %+v", c, want)
	}

	// Dumbbell runs must not grow the block.
	dumbbell, _ := writeTestTrace(t)
	if bytes.Contains(summarize(t, dumbbell), []byte(`"cluster"`)) {
		t.Fatal("dumbbell summary contains a cluster block")
	}
}

// TestRunJSONMode drives run() end to end with -json set.
func TestRunJSONMode(t *testing.T) {
	path, _ := writeTestTrace(t)
	*jsonFlag = true
	defer func() { *jsonFlag = false }()
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}
