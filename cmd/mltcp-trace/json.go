package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mltcp/internal/backend"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// summarySchema versions the -json summary document, bumped on any
// incompatible change to its field set.
const summarySchema = 1

// writeJSON emits the full summary — manifest, recomputed interleaving
// scores, per-job iteration and congestion tables, overlap per quarter,
// and the metrics snapshot — as one stable JSON document. It follows the
// encoder conventions of internal/telemetry/jsonl.go: hand-rolled fixed
// field order, durations as integer nanoseconds, floats in their
// shortest exact representation, sub-objects that already have a stable
// schema (manifest, metrics) embedded via encoding/json. Equal traces
// therefore serialize to equal bytes.
func writeJSON(w io.Writer, tr *telemetry.Trace, res *backend.Result, skip int) error {
	appendF := func(b []byte, v float64) []byte {
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}

	b := []byte(`{"kind":"trace-summary","schema":`)
	b = strconv.AppendInt(b, summarySchema, 10)

	mb, err := json.Marshal(tr.Manifest)
	if err != nil {
		return err
	}
	b = append(b, `,"manifest":`...)
	b = append(b, mb...)

	b = append(b, `,"events":`...)
	b = strconv.AppendInt(b, int64(len(tr.Events)), 10)
	// DroppedByLimiter is the recorder's sampling-limiter drop count,
	// flushed into the trace registry at write time (0 for traces
	// predating the counter).
	var dropped int64
	if tr.Metrics != nil {
		dropped = tr.Metrics.Counters[telemetry.LimiterDropsMetric]
	}
	b = append(b, `,"dropped_by_limiter":`...)
	b = strconv.AppendInt(b, dropped, 10)
	b = append(b, `,"interleaved_at":`...)
	b = strconv.AppendInt(b, int64(res.InterleavedAt), 10)
	b = append(b, `,"overlap":`...)
	b = appendF(b, res.OverlapScore)

	stats, _ := collectFlowStats(tr.Events)
	b = append(b, `,"jobs":[`...)
	for i := range res.Jobs {
		j := &res.Jobs[i]
		flow := 0
		if i < len(tr.Manifest.Jobs) {
			flow = tr.Manifest.Jobs[i].Flow
		}
		if i > 0 {
			b = append(b, ',')
		}
		nb, err := json.Marshal(j.Name)
		if err != nil {
			return err
		}
		pb, err := json.Marshal(j.Profile)
		if err != nil {
			return err
		}
		b = append(b, `{"flow":`...)
		b = strconv.AppendInt(b, int64(flow), 10)
		b = append(b, `,"name":`...)
		b = append(b, nb...)
		b = append(b, `,"profile":`...)
		b = append(b, pb...)
		b = append(b, `,"iterations":`...)
		b = strconv.AppendInt(b, int64(j.Iterations()), 10)
		b = append(b, `,"steady_iter_ns":`...)
		b = strconv.AppendInt(b, int64(j.SteadyIter(skip)), 10)
		b = append(b, `,"ideal_ns":`...)
		b = strconv.AppendInt(b, int64(j.Ideal), 10)
		b = append(b, `,"slowdown":`...)
		b = appendF(b, j.Slowdown(skip))
		if s, ok := stats[flow]; ok {
			b = append(b, `,"retx":`...)
			b = strconv.AppendInt(b, int64(s.retx), 10)
			b = append(b, `,"rto":`...)
			b = strconv.AppendInt(b, int64(s.rto), 10)
			b = append(b, `,"recoveries":`...)
			b = strconv.AppendInt(b, int64(s.recoveries), 10)
			b = append(b, `,"cwnd_samples":`...)
			b = strconv.AppendInt(b, int64(s.cwndSamples), 10)
			b = append(b, `,"final_cwnd":`...)
			b = appendF(b, s.lastCwnd)
			b = append(b, `,"final_factor":`...)
			b = appendF(b, s.lastFactor)
		}
		b = append(b, '}')
	}
	b = append(b, ']')

	b = append(b, `,"overlap_quarters":[`...)
	const parts = 4
	for q := sim.Time(0); q < parts; q++ {
		if q > 0 {
			b = append(b, ',')
		}
		b = appendF(b, backend.OverlapScoreOf(res.Jobs, res.Duration*q/parts, res.Duration*(q+1)/parts))
	}
	b = append(b, ']')

	if c := res.Cluster; c != nil {
		tb, err := json.Marshal(c.Topology)
		if err != nil {
			return err
		}
		b = append(b, `,"cluster":{"topology":`...)
		b = append(b, tb...)
		b = append(b, `,"racks":`...)
		b = strconv.AppendInt(b, int64(c.Racks), 10)
		b = append(b, `,"links":`...)
		b = strconv.AppendInt(b, int64(c.Links), 10)
		b = append(b, `,"sharing_pairs":`...)
		b = strconv.AppendInt(b, int64(c.SharingPairs), 10)
		b = append(b, `,"disjoint_pairs":`...)
		b = strconv.AppendInt(b, int64(c.DisjointPairs), 10)
		b = append(b, `,"shared_overlap":`...)
		b = appendF(b, c.SharedOverlap)
		b = append(b, `,"disjoint_overlap":`...)
		b = appendF(b, c.DisjointOverlap)
		b = append(b, '}')
	}

	if tr.Metrics != nil {
		sb, err := json.Marshal(tr.Metrics)
		if err != nil {
			return err
		}
		b = append(b, `,"metrics":`...)
		b = append(b, sb...)
	}
	b = append(b, '}', '\n')

	if !json.Valid(b) {
		return fmt.Errorf("mltcp-trace: internal error: summary is not valid JSON")
	}
	bw := bufio.NewWriter(w)
	bw.Write(b)
	return bw.Flush()
}
