package main

import (
	"io"
	"sort"

	"mltcp/internal/obs"
	"mltcp/internal/telemetry"
)

// writeProm renders the trace's metrics snapshot in Prometheus text
// exposition format: counters as mltcp_trace_<name>_total, gauges as
// mltcp_trace_<name>, histograms as full cumulative-bucket series.
// Metric names are sanitized onto the exposition grammar ("." → "_");
// families are emitted in sorted name order, so output is
// byte-deterministic.
func writeProm(w io.Writer, tr *telemetry.Trace) error {
	p := &obs.PromWriter{}
	if s := tr.Metrics; s != nil {
		names := make([]string, 0, len(s.Counters))
		for name := range s.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fam := "mltcp_trace_" + obs.SanitizePromName(name) + "_total"
			p.Family(fam, "counter", "Trace counter "+name+".")
			p.Value(fam, nil, float64(s.Counters[name]))
		}

		names = names[:0]
		for name := range s.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fam := "mltcp_trace_" + obs.SanitizePromName(name)
			p.Family(fam, "gauge", "Trace gauge "+name+".")
			p.Value(fam, nil, s.Gauges[name])
		}

		names = names[:0]
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := s.Histograms[name]
			fam := "mltcp_trace_" + obs.SanitizePromName(name)
			p.Family(fam, "histogram", "Trace histogram "+name+".")
			p.Histogram(fam, nil, h.Bounds, h.Counts, h.Count, h.Sum)
		}
	}
	_, err := p.WriteTo(w)
	return err
}
