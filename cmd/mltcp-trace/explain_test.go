package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/telemetry"
)

// readTestTrace decodes the trace file written by writeTestTrace.
func readTestTrace(t *testing.T, path string) *telemetry.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := telemetry.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestExplainText pins the -explain rendering: interleave verdict first,
// then bottleneck attribution, both derived from the same trace.
func TestExplainText(t *testing.T) {
	path, res := writeTestTrace(t)
	tr := readTestTrace(t, path)
	var out bytes.Buffer
	if err := explain(&out, tr, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"scenario: cli-test", "verdict:", "bottleneck attribution"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain text missing %q:\n%s", want, text)
		}
	}
	if res.InterleavedAt >= 0 && !strings.Contains(text, "interleaved at iter") {
		t.Fatalf("converged run's verdict does not say so:\n%s", text)
	}

	// Byte-deterministic across invocations.
	var again bytes.Buffer
	if err := explain(&again, tr, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("explain text differs across invocations of the same trace")
	}
}

// TestExplainJSON pins the -explain -json output: exactly the interleave
// report as one newline-terminated stable JSON document.
func TestExplainJSON(t *testing.T) {
	path, _ := writeTestTrace(t)
	tr := readTestTrace(t, path)
	var out bytes.Buffer
	if err := explain(&out, tr, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out.Bytes(), []byte(`{"kind":"interleave-report","schema":1,`)) {
		t.Fatalf("unexpected JSON header: %.80s", out.String())
	}
	if !bytes.HasSuffix(out.Bytes(), []byte("}\n")) {
		t.Fatal("JSON report is not newline-terminated")
	}
}

// TestRunExplainMode drives run() end to end with -explain set, in both
// text and JSON forms.
func TestRunExplainMode(t *testing.T) {
	path, _ := writeTestTrace(t)
	*explainFlag = true
	defer func() { *explainFlag = false }()
	if err := run(path); err != nil {
		t.Fatal(err)
	}
	*jsonFlag = true
	defer func() { *jsonFlag = false }()
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

// TestWriteProm pins the -prom rendering: the trace's counters surface as
// sanitized *_total families and the output ends with a newline.
func TestWriteProm(t *testing.T) {
	path, _ := writeTestTrace(t)
	tr := readTestTrace(t, path)
	var out bytes.Buffer
	if err := writeProm(&out, tr); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE mltcp_trace_job_iterations_total counter",
		"mltcp_trace_job_iterations_total ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prom output missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("prom output does not end with a newline")
	}

	// A metrics-less (predicted) trace renders as empty exposition, not
	// an error.
	var empty bytes.Buffer
	if err := writeProm(&empty, &telemetry.Trace{Manifest: tr.Manifest}); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("metrics-less trace produced output: %q", empty.String())
	}
}

// TestRunPromMode drives run() end to end with -prom set.
func TestRunPromMode(t *testing.T) {
	path, _ := writeTestTrace(t)
	*promFlag = true
	defer func() { *promFlag = false }()
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

// TestJSONSummaryDroppedByLimiter pins the dropped_by_limiter counter in
// the -json summary: present (as 0) when the recorder never dropped, and
// reflecting the flushed counter when it did.
func TestJSONSummaryDroppedByLimiter(t *testing.T) {
	path, res := writeTestTrace(t)
	tr := readTestTrace(t, path)
	var out bytes.Buffer
	if err := writeJSON(&out, tr, res, *skipFlag); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"dropped_by_limiter":0`)) {
		t.Fatalf("summary missing zero dropped_by_limiter:\n%s", out.String())
	}

	tr.Metrics.Counters[telemetry.LimiterDropsMetric] = 7
	out.Reset()
	if err := writeJSON(&out, tr, res, *skipFlag); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"dropped_by_limiter":7`)) {
		t.Fatalf("summary does not surface the flushed drop counter:\n%s", out.String())
	}
}

// TestInterleaveEvolutionNeverConverged pins the closing line of the
// evolution table when the run never interleaved: the -1 sentinel is
// spelled out instead of printed raw.
func TestInterleaveEvolutionNeverConverged(t *testing.T) {
	_, res := writeTestTrace(t)
	never := *res
	never.InterleavedAt = -1
	var out bytes.Buffer
	printInterleaveEvolution(&out, &never)
	if !strings.Contains(out.String(), "interleaved-at: never (within horizon)") {
		t.Fatalf("never-converged run not spelled out:\n%s", out.String())
	}
	if strings.Contains(out.String(), "-1") {
		t.Fatalf("raw -1 sentinel leaked into output:\n%s", out.String())
	}

	out.Reset()
	printInterleaveEvolution(&out, res)
	if res.InterleavedAt >= 0 && !strings.Contains(out.String(), "interleaved-at: iter ") {
		t.Fatalf("converged run missing iteration line:\n%s", out.String())
	}

	// Degenerate results (no duration, or a single job) print nothing.
	out.Reset()
	printInterleaveEvolution(&out, &backend.Result{})
	if out.Len() != 0 {
		t.Fatalf("empty result produced output: %q", out.String())
	}
}
