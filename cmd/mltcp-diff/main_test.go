package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/telemetry"
)

// writeSeededTrace runs a short traced fluid scenario at the given seed
// and writes its JSONL trace into dir.
func writeSeededTrace(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	scn := &config.Scenario{
		Name:        "diff-cli-test",
		Policy:      "mltcp",
		DurationSec: 20,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	if _, err := (&backend.Fluid{}).Run(ctx, scn, seed); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSameSeedIdentical pins the acceptance contract: two same-seed
// traces compare identical (exit 0) with byte-identical output across
// repeated invocations.
func TestSameSeedIdentical(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	b := writeSeededTrace(t, dir, "b.jsonl", 1)
	invoke := func() (int, string) {
		var out bytes.Buffer
		code, err := run(&out, a, b, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		return code, out.String()
	}
	code1, out1 := invoke()
	code2, out2 := invoke()
	if code1 != exitIdentical {
		t.Fatalf("exit = %d, want %d; output:\n%s", code1, exitIdentical, out1)
	}
	if code1 != code2 || out1 != out2 {
		t.Fatal("repeated invocations not byte-identical")
	}
	if !strings.Contains(out1, "class: identical") {
		t.Errorf("output missing class line:\n%s", out1)
	}
}

// TestSeedDriftDivergent: different seeds exit 2 with a seed-drift
// classification.
func TestSeedDriftDivergent(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	b := writeSeededTrace(t, dir, "b.jsonl", 2)
	var out bytes.Buffer
	code, err := run(&out, a, b, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitDivergent {
		t.Fatalf("exit = %d, want %d", code, exitDivergent)
	}
	if !strings.Contains(out.String(), "class: seed-drift") {
		t.Errorf("output missing seed-drift class:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "seed: 1 vs 2") {
		t.Errorf("output missing manifest seed diff:\n%s", out.String())
	}
}

// TestPerturbedTracePinpointsEvent: corrupting one event line in an
// otherwise identical trace must exit 2 and name exactly that event.
func TestPerturbedTracePinpointsEvent(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	raw, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	perturbedLine := ""
	for i, line := range lines {
		if strings.Contains(line, `"kind":"iter_end"`) && strings.Contains(line, `"iter":5`) {
			lines[i] = strings.Replace(line, `"iter":5`, `"iter":55`, 1)
			perturbedLine = lines[i]
			break
		}
	}
	if perturbedLine == "" {
		t.Fatal("fixture trace has no iter_end with iter 5")
	}
	b := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(b, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code, err := run(&out, a, b, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitDivergent {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, exitDivergent, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "first divergence:") {
		t.Fatalf("no divergence section:\n%s", text)
	}
	if !strings.Contains(text, perturbedLine) {
		t.Errorf("report does not quote the perturbed line %s:\n%s", perturbedLine, text)
	}
	if !strings.Contains(text, "iter: 5 vs 55") {
		t.Errorf("report does not decode the changed field:\n%s", text)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	b := writeSeededTrace(t, dir, "b.jsonl", 2)
	var out bytes.Buffer
	code, err := run(&out, a, b, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitDivergent {
		t.Fatalf("exit = %d, want %d", code, exitDivergent)
	}
	if !strings.HasPrefix(out.String(), `{"kind":"trace-diff","schema":1,`) {
		t.Errorf("JSON output header = %.60s", out.String())
	}
	if !strings.HasSuffix(out.String(), "}\n") {
		t.Error("JSON output not newline-terminated")
	}
}

func TestMissingFileErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	var out bytes.Buffer
	code, err := run(&out, a, filepath.Join(dir, "nope.jsonl"), 3, false)
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
}

func TestCorruptFileErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeSeededTrace(t, dir, "a.jsonl", 1)
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{cut off\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(&out, a, bad, 3, false)
	if err == nil || code != exitError {
		t.Fatalf("corrupt file: code=%d err=%v", code, err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error not line-numbered: %v", err)
	}
}
