// Command mltcp-diff structurally compares two JSONL telemetry traces.
// Instead of a byte diff, it aligns the traces by (kind, flow, link)
// stream, pinpoints the first-divergence event with both sides' decoded
// fields and a bounded context window, and classifies what diverged
// (seed drift, schema change, timing, share allocation, ...).
//
// Exit codes:
//
//	0 — identical: manifests, events, and metrics all equal
//	1 — equivalent: identical behaviour, manifests differ only in the
//	    build revision (two builds of the same tree)
//	2 — divergent: behaviour differs; the report pinpoints where
//	3 — error: unreadable or undecodable input
//
// Examples:
//
//	mltcpsim -jobs gpt2,gpt2 -seed 1 -trace a.jsonl
//	mltcpsim -jobs gpt2,gpt2 -seed 1 -trace b.jsonl
//	mltcp-diff a.jsonl b.jsonl            # exits 0
//	mltcp-diff -context 5 -json a.jsonl c.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mltcp/internal/diagnose"
	"mltcp/internal/telemetry"
)

var (
	contextFlag = flag.Int("context", diagnose.DefaultContext,
		"events of context shown on each side of the divergence")
	jsonFlag = flag.Bool("json", false,
		"emit the report as stable machine-readable JSON instead of text")
)

// Exit codes; see the command doc.
const (
	exitIdentical  = 0
	exitEquivalent = 1
	exitDivergent  = 2
	exitError      = 3
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mltcp-diff [flags] a.jsonl b.jsonl")
		flag.PrintDefaults()
		os.Exit(exitError)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *contextFlag, *jsonFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitError)
	}
	os.Exit(code)
}

// run compares the two trace files and writes the report, returning the
// process exit code.
func run(w io.Writer, pathA, pathB string, contextN int, asJSON bool) (int, error) {
	a, err := telemetry.ReadTrace(pathA)
	if err != nil {
		return exitError, err
	}
	b, err := telemetry.ReadTrace(pathB)
	if err != nil {
		return exitError, err
	}
	d := diagnose.Compare(a, b, diagnose.Options{Context: contextN})
	if asJSON {
		if _, err := w.Write(append(d.AppendJSON(nil), '\n')); err != nil {
			return exitError, err
		}
	} else if err := d.WriteText(w, pathA, pathB); err != nil {
		return exitError, err
	}
	switch {
	case d.Identical():
		return exitIdentical, nil
	case d.Equivalent():
		return exitEquivalent, nil
	}
	return exitDivergent, nil
}
