// Command mltcpsim runs one DNN-job scheduling scenario on a shared
// bottleneck and reports per-job iteration times, using either the fast
// fluid simulator or the packet-level TCP stack.
//
// Examples:
//
//	mltcpsim -jobs gpt3,gpt2,gpt2,gpt2 -policy mltcp
//	mltcpsim -jobs gpt2,gpt2,gpt2 -policy srpt -duration 60s
//	mltcpsim -jobs gpt2,gpt2 -level packet -policy mltcp -noise 20ms
//	mltcpsim -jobs gpt2,gpt2,gpt2,gpt2,gpt2,gpt2 -policy reno -chart
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mltcp/internal/config"
	"mltcp/internal/core"
	"mltcp/internal/experiments"
	"mltcp/internal/fluid"
	"mltcp/internal/harness"
	"mltcp/internal/metrics"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/trace"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

var (
	configFlag   = flag.String("config", "", "JSON scenario file (overrides -jobs/-policy/-gbps/-duration; fluid level)")
	jobsFlag     = flag.String("jobs", "gpt3,gpt2,gpt2,gpt2", "comma-separated profile names (gpt3, gpt2, bert, resnet50, vgg16, dlrm)")
	policyFlag   = flag.String("policy", "mltcp", "scheduling policy: mltcp, reno, srpt, pdq, las, pias, centralized")
	levelFlag    = flag.String("level", "fluid", "simulation fidelity: fluid or packet (packet supports mltcp/reno only)")
	durationFlag = flag.Duration("duration", 120*time.Second, "simulated time to run")
	staggerFlag  = flag.Duration("stagger", 10*time.Millisecond, "start-time stagger between jobs")
	noiseFlag    = flag.Duration("noise", 0, "std of Gaussian compute-time noise per iteration")
	gbpsFlag     = flag.Float64("gbps", 50, "bottleneck capacity in Gbps (fluid level)")
	chartFlag    = flag.Bool("chart", false, "print an ASCII bandwidth chart (fluid level)")
	skipFlag     = flag.Int("skip", 20, "iterations to skip in steady-state averages")
	runsFlag     = flag.Int("runs", 1, "seeded replicas of the scenario; >1 reports per-job stats across runs (fluid level)")
	seedFlag     = flag.Uint64("seed", 1, "base seed; replica r derives its jobs' noise streams from (seed, r)")
	workersFlag  = flag.Int("workers", 0, "worker goroutines for -runs replication; 0 = one per CPU")
)

func main() {
	flag.Parse()
	if *configFlag != "" {
		runConfig(*configFlag)
		return
	}
	profiles, err := parseJobs(*jobsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *levelFlag {
	case "fluid":
		runFluid(profiles)
	case "packet":
		runPacket(profiles)
	default:
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *levelFlag)
		os.Exit(2)
	}
}

func runConfig(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	scn, err := config.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	jobs := scn.BuildJobs()
	s := fluid.New(fluid.Config{Capacity: scn.Capacity(), Policy: scn.FluidPolicy()}, jobs)
	s.Run(scn.Duration())
	fmt.Printf("scenario=%s policy=%s capacity=%v duration=%v\n",
		scn.Name, scn.Policy, scn.Capacity(), scn.Duration())
	var rows [][]string
	for _, j := range jobs {
		ideal := j.Spec.Profile.IdealIterTime(scn.Capacity())
		skip := *skipFlag
		if n := len(j.IterDurations); skip >= n {
			skip = n / 2
		}
		avg := j.AvgIterTime(skip)
		rows = append(rows, []string{
			j.Spec.Label(),
			fmt.Sprintf("%d", j.Iterations()),
			fmt.Sprintf("%.3f", avg.Seconds()),
			fmt.Sprintf("%.3f", ideal.Seconds()),
			fmt.Sprintf("%.2f×", avg.Seconds()/ideal.Seconds()),
		})
	}
	fmt.Print(trace.Table([]string{"job", "iters", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
}

func parseJobs(s string) ([]workload.Profile, error) {
	known := workload.Profiles()
	var out []workload.Profile
	for _, name := range strings.Split(s, ",") {
		p, ok := known[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown profile %q (have gpt3, gpt2, bert, resnet50, vgg16, dlrm)", name)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no jobs given")
	}
	return out, nil
}

func runFluid(profiles []workload.Profile) {
	capacity := units.Rate(*gbpsFlag) * units.Gbps
	var agg *core.AggFunc
	policy := fluid.Policy(fluid.WeightedShare{})
	offsets := make([]sim.Time, len(profiles))
	for i := range offsets {
		offsets[i] = sim.Time(i) * sim.FromDuration(*staggerFlag)
	}

	switch *policyFlag {
	case "mltcp":
		f := core.Default()
		agg = &f
	case "reno":
	case "srpt":
		policy = fluid.SRPT{Label: "pfabric"}
	case "pdq":
		policy = fluid.SRPT{Label: "pdq"}
	case "las":
		policy = fluid.LAS{}
	case "pias":
		policy = fluid.PIAS{Thresholds: []int64{int64(100 * units.MB), int64(1000 * units.MB)}}
	case "centralized":
		shapes := make([]sched.Shape, len(profiles))
		for i, p := range profiles {
			shapes[i] = sched.ShapeOf(p, capacity)
		}
		res := sched.Optimize(shapes, sched.Options{Seed: 1})
		if !res.Interleaved {
			fmt.Printf("note: no fully interleaved schedule exists; residual overlap %v per hyperperiod\n", res.Overlap)
		}
		copy(offsets, res.Offsets)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policyFlag)
		os.Exit(2)
	}

	if *runsFlag > 1 {
		runReplicated(profiles, capacity, policy, agg, offsets)
		return
	}

	jobs := make([]*fluid.Job, len(profiles))
	for i, p := range profiles {
		jobs[i] = &fluid.Job{
			Spec: workload.Spec{
				Name:        fmt.Sprintf("J%d(%s)", i+1, p.Name),
				Profile:     p,
				StartOffset: offsets[i],
				NoiseStd:    sim.FromDuration(*noiseFlag),
				Seed:        uint64(i + 1),
			},
			Agg: agg,
		}
	}
	cfg := fluid.Config{Capacity: capacity, Policy: policy}
	if *chartFlag {
		cfg.TraceBucket = 50 * sim.Millisecond
	}
	s := fluid.New(cfg, jobs)
	s.Run(sim.FromDuration(*durationFlag))

	fmt.Printf("policy=%s capacity=%v duration=%v\n", *policyFlag, capacity, *durationFlag)
	var rows [][]string
	for _, j := range jobs {
		ideal := j.Spec.Profile.IdealIterTime(capacity)
		skip := *skipFlag
		if n := len(j.IterDurations); skip >= n {
			skip = n / 2 // short runs: average the second half
		}
		avg := j.AvgIterTime(skip)
		rows = append(rows, []string{
			j.Spec.Label(),
			fmt.Sprintf("%d", j.Iterations()),
			fmt.Sprintf("%.3f", avg.Seconds()),
			fmt.Sprintf("%.3f", ideal.Seconds()),
			fmt.Sprintf("%.2f×", avg.Seconds()/ideal.Seconds()),
		})
	}
	fmt.Print(trace.Table([]string{"job", "iters", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
	if *chartFlag {
		var series []trace.Series
		for _, j := range jobs {
			bw := s.Trace(j)
			n := len(bw)
			if n > 200 {
				bw = bw[n-200:]
			}
			vals := make([]float64, len(bw))
			for i, r := range bw {
				vals[i] = float64(r) / 1e9
			}
			series = append(series, trace.Series{Name: j.Spec.Label(), Values: vals})
		}
		fmt.Print(trace.Chart("bandwidth, last 10s (Gbps)", 100, 10, series...))
	}
}

// runReplicated fans *runsFlag seeded replicas of the fluid scenario over
// the worker pool. Replica r's jobs draw their compute-noise streams from
// seeds derived from (base seed, r), so the whole batch is reproducible:
// the same -seed prints the same table at any -workers value.
func runReplicated(profiles []workload.Profile, capacity units.Rate,
	policy fluid.Policy, agg *core.AggFunc, offsets []sim.Time) {
	type runStats struct {
		slowdown []float64
		iters    []int
	}
	cfg := harness.Config{Workers: *workersFlag, BaseSeed: *seedFlag}
	runs := harness.Map(context.Background(), cfg, *runsFlag, func(pt harness.Point) runStats {
		jobs := make([]*fluid.Job, len(profiles))
		for i, p := range profiles {
			jobs[i] = &fluid.Job{
				Spec: workload.Spec{
					Name:        fmt.Sprintf("J%d(%s)", i+1, p.Name),
					Profile:     p,
					StartOffset: offsets[i],
					NoiseStd:    sim.FromDuration(*noiseFlag),
					Seed:        sim.DeriveSeed(pt.Seed, uint64(i)),
				},
				Agg: agg,
			}
		}
		s := fluid.New(fluid.Config{Capacity: capacity, Policy: policy}, jobs)
		s.Run(sim.FromDuration(*durationFlag))
		st := runStats{slowdown: make([]float64, len(jobs)), iters: make([]int, len(jobs))}
		for i, j := range jobs {
			ideal := j.Spec.Profile.IdealIterTime(capacity)
			skip := *skipFlag
			if n := len(j.IterDurations); skip >= n {
				skip = n / 2
			}
			st.slowdown[i] = j.AvgIterTime(skip).Seconds() / ideal.Seconds()
			st.iters[i] = j.Iterations()
		}
		return st
	})

	fmt.Printf("policy=%s capacity=%v duration=%v runs=%d seed=%d\n",
		*policyFlag, capacity, *durationFlag, *runsFlag, *seedFlag)
	var rows [][]string
	for i, p := range profiles {
		var sl metrics.Series
		iters := 0
		for _, r := range runs {
			sl = append(sl, r.slowdown[i])
			iters += r.iters[i]
		}
		rows = append(rows, []string{
			fmt.Sprintf("J%d(%s)", i+1, p.Name),
			fmt.Sprintf("%d", iters/len(runs)),
			fmt.Sprintf("%.3f", sl.Mean()),
			fmt.Sprintf("%.3f", sl.Std()),
			fmt.Sprintf("%.3f", sl.Min()),
			fmt.Sprintf("%.3f", sl.Max()),
		})
	}
	fmt.Print(trace.Table([]string{"job", "avg iters", "mean slowdown", "std", "min", "max"}, rows))
}

func runPacket(profiles []workload.Profile) {
	if *runsFlag > 1 {
		fmt.Fprintln(os.Stderr, "note: -runs replication applies to -level fluid only; running a single packet-level simulation")
	}
	for _, p := range profiles {
		if p.Name != "gpt2" {
			fmt.Fprintln(os.Stderr, "packet level currently runs identical gpt2 jobs (scaled to a 500 Mbps bottleneck)")
			os.Exit(2)
		}
	}
	var res experiments.PacketLevelResult
	switch *policyFlag {
	case "mltcp":
		res = experiments.PacketLevel(len(profiles),
			experiments.MLTCPRenoFactory(400*sim.Millisecond), "mltcp-reno",
			sim.FromDuration(*durationFlag), sim.FromDuration(*noiseFlag))
	case "reno":
		res = experiments.PacketLevel(len(profiles),
			experiments.RenoFactory(), "reno",
			sim.FromDuration(*durationFlag), sim.FromDuration(*noiseFlag))
	default:
		fmt.Fprintf(os.Stderr, "packet level supports -policy mltcp or reno, not %q\n", *policyFlag)
		os.Exit(2)
	}
	fmt.Printf("packet-level cc=%s ideal=%v interleaved-at=%d\n", res.CC, res.Ideal, res.InterleavedAt)
	var rows [][]string
	for i, avg := range res.SteadyAvg {
		rows = append(rows, []string{
			fmt.Sprintf("J%d", i+1),
			fmt.Sprintf("%d", len(res.IterTimes[i])),
			fmt.Sprintf("%.3f", avg.Seconds()),
			fmt.Sprintf("%.2f×", avg.Seconds()/res.Ideal.Seconds()),
		})
	}
	fmt.Print(trace.Table([]string{"job", "iters", "steady iter (s)", "slowdown"}, rows))
}
