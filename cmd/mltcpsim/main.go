// Command mltcpsim runs one DNN-job scheduling scenario on a shared
// bottleneck and reports per-job iteration times. Scenarios come from a
// JSON file (-config) or from flags, and run at either fidelity through
// the same backend interface: -level fluid integrates the flow-level
// model, -level packet compiles the identical scenario onto the
// packet-level TCP stack (at the scenario's packet_scale, default 1/100).
// -runs/-seed/-workers replicate either fidelity across the harness pool.
//
// Examples:
//
//	mltcpsim -jobs gpt3,gpt2,gpt2,gpt2 -policy mltcp
//	mltcpsim -jobs gpt2,gpt2,gpt2 -policy srpt -duration 60s
//	mltcpsim -jobs gpt2,gpt2 -level packet -policy mltcp-cubic -noise 20ms
//	mltcpsim -config examples/scenarios/hetero.json -level packet -runs 8 -workers 4
//	mltcpsim -jobs gpt2,gpt2,gpt2,gpt2,gpt2,gpt2 -policy reno -chart
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/experiments"
	"mltcp/internal/metrics"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/trace"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

var (
	configFlag   = flag.String("config", "", "JSON scenario file (overrides -jobs/-policy/-gbps/-duration/-stagger/-noise)")
	jobsFlag     = flag.String("jobs", "gpt3,gpt2,gpt2,gpt2", "comma-separated profile names (gpt3, gpt2, bert, resnet50, vgg16, dlrm)")
	policyFlag   = flag.String("policy", "mltcp", "scheduling policy: a CC scheme (reno, cubic, dctcp, d2tcp, swift, mltcp[-reno|-cubic|-dctcp|-d2tcp|-swift]), a fluid-only discipline (srpt, pdq, las, pias), or centralized")
	levelFlag    = flag.String("level", "fluid", "simulation fidelity: fluid, packet, or learned (model prediction)")
	durationFlag = flag.Duration("duration", 120*time.Second, "simulated time to run")
	staggerFlag  = flag.Duration("stagger", 10*time.Millisecond, "start-time stagger between jobs")
	noiseFlag    = flag.Duration("noise", 0, "std of Gaussian compute-time noise per iteration")
	gbpsFlag     = flag.Float64("gbps", 50, "bottleneck capacity in Gbps")
	chartFlag    = flag.Bool("chart", false, "print an ASCII bandwidth chart (fluid level, single run)")
	skipFlag     = flag.Int("skip", 20, "iterations to skip in steady-state averages")
	runsFlag     = flag.Int("runs", 1, "seeded replicas of the scenario; >1 reports per-job stats across runs")
	seedFlag     = flag.Uint64("seed", 1, "base seed; replica r derives its jobs' noise streams from (seed, r)")
	workersFlag  = flag.Int("workers", 0, "worker goroutines for -runs replication; 0 = one per CPU")
	traceFlag    = flag.String("trace", "", "write a JSONL telemetry trace of the run to this file (single run only; summarize with mltcp-trace)")
)

func main() {
	flag.Parse()
	scn, err := loadScenario()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := pickBackend(*levelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *runsFlag > 1 {
		if *traceFlag != "" {
			fmt.Fprintln(os.Stderr, "-trace records a single run; drop -runs or set -runs 1")
			os.Exit(2)
		}
		if err := runReplicated(b, scn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := runOnce(b, scn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// loadScenario builds the scenario from -config, or from the job/policy
// flags when no file is given. Both paths produce the same config.Scenario
// type, so every fidelity and replication feature applies uniformly.
func loadScenario() (*config.Scenario, error) {
	if *configFlag != "" {
		f, err := os.Open(*configFlag)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		scn, err := config.Load(f)
		if err != nil {
			return nil, err
		}
		return &scn, nil
	}
	return scenarioFromFlags(*jobsFlag, *policyFlag, *gbpsFlag,
		*durationFlag, *staggerFlag, *noiseFlag)
}

// scenarioFromFlags translates the flag surface into a scenario.
func scenarioFromFlags(jobs, policy string, gbps float64,
	duration, stagger, noise time.Duration) (*config.Scenario, error) {
	profiles, err := parseJobs(jobs)
	if err != nil {
		return nil, err
	}
	staggerMS := units.DurationMS(stagger)
	scn := &config.Scenario{
		Name:         "cli",
		Policy:       policy,
		CapacityGbps: gbps,
		DurationSec:  duration.Seconds(),
		StaggerMS:    &staggerMS,
	}
	for i, p := range profiles {
		scn.Jobs = append(scn.Jobs, config.Job{
			Name:    fmt.Sprintf("J%d(%s)", i+1, p.Name),
			Profile: p.Name,
			NoiseMS: units.DurationMS(noise),
		})
	}
	if err := scn.Normalize(); err != nil {
		return nil, err
	}
	return scn, nil
}

func pickBackend(level string) (backend.Backend, error) {
	b, err := backend.New(level)
	if err != nil {
		return nil, fmt.Errorf("unknown level %q (valid: %s)",
			level, strings.Join(backend.Names(), ", "))
	}
	if fl, ok := b.(*backend.Fluid); ok && *chartFlag && *runsFlag == 1 {
		fl.TraceBucket = 50 * sim.Millisecond
	}
	return b, nil
}

func parseJobs(s string) ([]workload.Profile, error) {
	known := workload.Profiles()
	var out []workload.Profile
	for _, name := range strings.Split(s, ",") {
		p, ok := known[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown profile %q (valid: %s)",
				name, strings.Join(workload.Names(), ", "))
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no jobs given")
	}
	return out, nil
}

// runOnce runs a single replica at the chosen fidelity and prints the
// per-job table. With -trace, the run is recorded and written as JSONL.
func runOnce(b backend.Backend, scn *config.Scenario) error {
	ctx := context.Background()
	var rec *telemetry.Recorder
	var buf *telemetry.Buffer
	var reg *telemetry.Registry
	if *traceFlag != "" {
		rec, buf, reg = telemetry.NewBuffered(telemetry.Options{})
		ctx = telemetry.WithRecorder(ctx, rec)
	}
	res, err := b.Run(ctx, scn, *seedFlag)
	if err != nil {
		return err
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			return err
		}
		rec.FlushLimiterStats()
		if err := telemetry.Write(f, rec.Manifest(), buf.Events(), reg); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", buf.Len(), *traceFlag)
	}
	fmt.Printf("scenario=%s level=%s policy=%s capacity=%v duration=%v overlap=%.3f interleaved-at=%d\n",
		res.Scenario, res.Backend, res.Policy, res.Capacity, res.Duration, res.OverlapScore, res.InterleavedAt)
	if c := res.Cluster; c != nil {
		fmt.Printf("cluster: topology=%s racks=%d links=%d sharing-pairs=%d (overlap %.3f) disjoint-pairs=%d (overlap %.3f)\n",
			c.Topology, c.Racks, c.Links, c.SharingPairs, c.SharedOverlap, c.DisjointPairs, c.DisjointOverlap)
	}
	var rows [][]string
	for _, j := range res.Jobs {
		avg := j.SteadyIter(*skipFlag)
		rows = append(rows, []string{
			j.Name,
			fmt.Sprintf("%d", j.Iterations()),
			fmt.Sprintf("%.3f", avg.Seconds()),
			fmt.Sprintf("%.3f", j.Ideal.Seconds()),
			fmt.Sprintf("%.2f×", j.Slowdown(*skipFlag)),
		})
	}
	fmt.Print(trace.Table([]string{"job", "iters", "avg iter (s)", "ideal (s)", "slowdown"}, rows))
	if *chartFlag {
		printChart(res)
	}
	return nil
}

// printChart renders the fluid bandwidth trace (the packet backend has no
// bandwidth trace; its window dynamics are in JobResult.CwndTrace).
func printChart(res *backend.Result) {
	if res.Backend != backend.NameFluid {
		fmt.Fprintln(os.Stderr, "note: -chart renders fluid bandwidth traces; not available at -level packet")
		return
	}
	var series []trace.Series
	for _, j := range res.Jobs {
		bw := j.Bandwidth
		if n := len(bw); n > 200 {
			bw = bw[n-200:]
		}
		vals := make([]float64, len(bw))
		for k, r := range bw {
			vals[k] = r / 1e9
		}
		series = append(series, trace.Series{Name: j.Name, Values: vals})
	}
	fmt.Print(trace.Chart("bandwidth, last 10s (Gbps)", 100, 10, series...))
}

// runReplicated fans -runs seeded replicas over the harness pool — at
// either fidelity — and prints per-job statistics across runs.
func runReplicated(b backend.Backend, scn *config.Scenario) error {
	results, err := experiments.ScenarioGrid(context.Background(), b, scn,
		*runsFlag, *seedFlag, *workersFlag)
	if err != nil {
		return err
	}
	fmt.Printf("scenario=%s level=%s policy=%s capacity=%v duration=%v runs=%d seed=%d\n",
		results[0].Scenario, results[0].Backend, results[0].Policy,
		results[0].Capacity, results[0].Duration, *runsFlag, *seedFlag)
	var rows [][]string
	for i, j := range results[0].Jobs {
		var sl metrics.Series
		iters := 0
		for _, r := range results {
			sl = append(sl, r.Jobs[i].Slowdown(*skipFlag))
			iters += r.Jobs[i].Iterations()
		}
		rows = append(rows, []string{
			j.Name,
			fmt.Sprintf("%d", iters/len(results)),
			fmt.Sprintf("%.3f", sl.Mean()),
			fmt.Sprintf("%.3f", sl.Std()),
			fmt.Sprintf("%.3f", sl.Min()),
			fmt.Sprintf("%.3f", sl.Max()),
		})
	}
	fmt.Print(trace.Table([]string{"job", "avg iters", "mean slowdown", "std", "min", "max"}, rows))
	return nil
}
