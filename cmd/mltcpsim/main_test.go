package main

import (
	"testing"
)

func TestParseJobs(t *testing.T) {
	profiles, err := parseJobs("gpt3, gpt2 ,gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 || profiles[0].Name != "gpt3" || profiles[1].Name != "gpt2" {
		t.Errorf("parsed %v", profiles)
	}
}

func TestParseJobsUnknown(t *testing.T) {
	if _, err := parseJobs("gpt9"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := parseJobs(""); err == nil {
		t.Error("empty spec accepted")
	}
}
