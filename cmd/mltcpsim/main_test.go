package main

import (
	"testing"
	"time"
)

func TestParseJobs(t *testing.T) {
	profiles, err := parseJobs("gpt3, gpt2 ,gpt2")
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 || profiles[0].Name != "gpt3" || profiles[1].Name != "gpt2" {
		t.Errorf("parsed %v", profiles)
	}
}

func TestParseJobsUnknown(t *testing.T) {
	if _, err := parseJobs("gpt9"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := parseJobs(""); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestScenarioFromFlags(t *testing.T) {
	scn, err := scenarioFromFlags("gpt3,gpt2", "mltcp-cubic", 25,
		60*time.Second, 20*time.Millisecond, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Policy != "mltcp-cubic" || scn.CapacityGbps != 25 || scn.DurationSec != 60 {
		t.Errorf("scenario header: %+v", scn)
	}
	if len(scn.Jobs) != 2 || scn.Jobs[0].Profile != "gpt3" || scn.Jobs[1].Profile != "gpt2" {
		t.Errorf("jobs: %+v", scn.Jobs)
	}
	if scn.Jobs[0].NoiseMS != 5 {
		t.Errorf("noise_ms = %v, want 5", scn.Jobs[0].NoiseMS)
	}
	if scn.StaggerMS == nil || *scn.StaggerMS != 20 {
		t.Errorf("stagger_ms = %v, want 20", scn.StaggerMS)
	}
	specs := scn.Specs()
	if len(specs) != 2 || specs[1].StartOffset != specs[0].StartOffset+scn.Stagger() {
		t.Errorf("specs not staggered: %+v", specs)
	}
}

func TestScenarioFromFlagsRejects(t *testing.T) {
	if _, err := scenarioFromFlags("gpt9", "mltcp", 50, time.Second, 0, 0); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := scenarioFromFlags("gpt2", "bogus", 50, time.Second, 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPickBackend(t *testing.T) {
	for level, want := range map[string]string{"fluid": "fluid", "packet": "packet"} {
		b, err := pickBackend(level)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != want {
			t.Errorf("pickBackend(%s).Name() = %s", level, b.Name())
		}
	}
	if _, err := pickBackend("ns3"); err == nil {
		t.Error("unknown level accepted")
	}
}
