// Command mltcp-bench measures the simulator itself: it runs a pinned
// scenario suite (both fidelities, a cluster-scale fabric, and a
// harness sweep), collects
// self-metrics through internal/obs — events/sec, sim/wall ratio,
// allocs/op, peak heap, event-heap depth, worker utilization — together
// with convergence diagnostics recomputed from traces, and writes a
// schema-versioned BENCH.json. The compare mode diffs two BENCH.json
// files and exits nonzero past the regression gate, which is how CI
// holds the performance trajectory against bench/baseline.json.
//
// Examples:
//
//	mltcp-bench -out BENCH.json
//	mltcp-bench -quick -reps 1 -out /tmp/quick.json
//	mltcp-bench -cpuprofile cpu.pprof -memprofile heap.pprof
//	mltcp-bench compare -gate 0.20 -warn 0.10 bench/baseline.json BENCH.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mltcp/internal/obs"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "compare" {
		os.Exit(compareMain(args[1:]))
	}
	os.Exit(benchMain(args))
}

func benchMain(args []string) int {
	fs := flag.NewFlagSet("mltcp-bench", flag.ExitOnError)
	out := fs.String("out", "BENCH.json", "output path for the benchmark results")
	reps := fs.Int("reps", 3, "timed repetitions per suite point (min wall is the gated figure)")
	quick := fs.Bool("quick", false, "run the seconds-fast subset instead of the full suite")
	seed := fs.Uint64("seed", 1, "base seed for every suite scenario")
	workers := fs.Int("workers", 0, "harness pool size for sweep points (0 = one per CPU)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole suite to this path")
	memprofile := fs.String("memprofile", "", "write a post-suite heap profile to this path")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mltcp-bench [flags]  |  mltcp-bench compare [flags] old.json new.json")
		fs.PrintDefaults()
		return 2
	}

	if *cpuprofile != "" {
		prof, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer prof.Stop()
	}

	cfg := benchConfig{reps: *reps, seed: *seed, workers: *workers, quick: *quick}
	f, err := runSuite(context.Background(), cfg, func(name string) {
		fmt.Fprintf(os.Stderr, "bench: running %s\n", name)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	of, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := obs.WriteBench(of, f); err != nil {
		of.Close()
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := of.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	printSummary(f)
	fmt.Printf("wrote %s (%d points)\n", *out, len(f.Points))
	return 0
}

// printSummary renders the human-readable table next to the JSON file.
func printSummary(f *obs.BenchFile) {
	fmt.Printf("suite=%s %s gomaxprocs=%d", f.Suite, f.GoVersion, f.GOMAXPROCS)
	if f.Revision != "" {
		fmt.Printf(" revision=%s", f.Revision)
	}
	fmt.Println()
	fmt.Printf("%-26s %12s %14s %12s %12s %10s %s\n",
		"point", "wall(min)", "events/s", "sim/wall", "allocs/op", "peakheap", "interleave")
	for _, p := range f.Points {
		interleave := fmt.Sprintf("iter %d", p.InterleavedAt)
		if p.InterleavedAt < 0 {
			interleave = "never"
		}
		fmt.Printf("%-26s %12v %14.3g %12.1f %12d %10s %s\n",
			p.Name, time.Duration(p.WallNSMin).Round(time.Microsecond), p.EventsPerSec, p.SimWallRatio,
			p.AllocsPerOp, sizeOf(p.PeakHeapBytes), interleave)
	}
}

func sizeOf(bytes uint64) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(bytes)/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(bytes)/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(bytes)/(1<<10))
	}
	return fmt.Sprintf("%dB", bytes)
}

func compareMain(args []string) int {
	fs := flag.NewFlagSet("mltcp-bench compare", flag.ExitOnError)
	gate := fs.Float64("gate", 0.20, "fail on gated metrics regressing past this fraction")
	warn := fs.Float64("warn", 0.10, "warn on gated metrics regressing past this fraction")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mltcp-bench compare [flags] old.json new.json")
		fs.PrintDefaults()
		return 2
	}

	oldF, err := readBenchFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	newF, err := readBenchFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rep, err := obs.Compare(oldF, newF, *warn, *gate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	newByName := make(map[string]obs.BenchPoint, len(newF.Points))
	for _, p := range newF.Points {
		newByName[p.Name] = p
	}
	for _, name := range rep.NewPoints {
		// A new point has nothing to diff against, so print its figures with
		// their gating direction — the values the next baseline will hold.
		fmt.Printf("new point %s (no baseline; gates once baselined):\n", name)
		for _, mv := range obs.PointMetrics(newByName[name]) {
			dir := "lower is better"
			if mv.HigherIsBetter {
				dir = "higher is better"
			}
			if !mv.Gated {
				dir += ", informational"
			}
			fmt.Printf("  %s=%s (%s)\n", mv.Name, compact(mv.Value), dir)
		}
	}
	for _, d := range rep.Warnings {
		fmt.Printf("WARN %s %s: %s -> %s (%+.1f%%)\n",
			d.Point, d.Metric, compact(d.Old), compact(d.New), d.Change*100)
	}
	for _, d := range rep.Regressions {
		fmt.Printf("REGRESSION %s %s: %s -> %s (%+.1f%%, gate %.0f%%)\n",
			d.Point, d.Metric, compact(d.Old), compact(d.New), d.Change*100, *gate*100)
	}
	for _, name := range rep.MissingPoints {
		fmt.Printf("REGRESSION %s: point missing from %s\n", name, fs.Arg(1))
	}
	fmt.Printf("compared %d deltas: %d regressions, %d warnings\n",
		len(rep.Deltas), len(rep.Regressions)+len(rep.MissingPoints), len(rep.Warnings))
	if rep.Failed() {
		return 1
	}
	return 0
}

func readBenchFile(path string) (*obs.BenchFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadBench(f)
}

func compact(v float64) string { return fmt.Sprintf("%.4g", v) }
