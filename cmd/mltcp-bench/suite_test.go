package main

import (
	"testing"

	"mltcp/internal/obs"
)

// TestReduceRepSemantics pins the rep-summary rule for memory peaks:
// within one rep the figures are maxed across the rep's runs (a sweep rep
// holds all of them at once), and across reps the suite takes the min,
// identical to walls and alloc counts.
func TestReduceRepSemantics(t *testing.T) {
	rep1 := []obs.RunStats{
		{Events: 10, MaxHeapDepth: 4, PeakHeapBytes: 100},
		{Events: 20, MaxHeapDepth: 9, PeakHeapBytes: 700},
	}
	rep2 := []obs.RunStats{
		{Events: 10, MaxHeapDepth: 6, PeakHeapBytes: 300},
		{Events: 20, MaxHeapDepth: 5, PeakHeapBytes: 200},
	}

	ev1, d1, p1 := reduceRep(rep1)
	if ev1 != 30 || d1 != 9 || p1 != 700 {
		t.Fatalf("rep1 reduced to events=%d depth=%d peak=%d, want 30/9/700", ev1, d1, p1)
	}
	ev2, d2, p2 := reduceRep(rep2)
	if ev2 != 30 || d2 != 6 || p2 != 300 {
		t.Fatalf("rep2 reduced to events=%d depth=%d peak=%d, want 30/6/300", ev2, d2, p2)
	}

	// Across reps the recorded value is the min of the per-rep maxes —
	// NOT the max over all runs of all reps (which would be 9/700 here).
	if got := minInt([]int{d1, d2}); got != 6 {
		t.Fatalf("min-over-reps depth = %d, want 6", got)
	}
	if got := minUint64([]uint64{p1, p2}); got != 300 {
		t.Fatalf("min-over-reps peak = %d, want 300", got)
	}
}

func TestMinHelpersEmpty(t *testing.T) {
	if got := minInt(nil); got != 0 {
		t.Fatalf("minInt(nil) = %d, want 0", got)
	}
	if got := minUint64(nil); got != 0 {
		t.Fatalf("minUint64(nil) = %d, want 0", got)
	}
}
