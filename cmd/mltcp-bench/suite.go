package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/experiments"
	"mltcp/internal/obs"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// suitePoint is one pinned benchmark scenario. The suite is fixed so
// BENCH.json files from different revisions diff point-by-point.
type suitePoint struct {
	name        string
	backendName string
	scenario    *config.Scenario
	// sweepRuns, when positive, replicates the scenario that many times
	// across the harness worker pool and times the whole grid (measuring
	// harness overhead and worker utilization) instead of a single run.
	sweepRuns int
	// opsPerRep, when positive, runs the scenario that many times
	// back-to-back inside each timed rep and records per-op figures
	// (wall, events, allocs divided by the op count) — the testing.B
	// treatment for microsecond-scale points (the learned backend),
	// whose single-run wall is otherwise dominated by one-off allocator
	// warmup after the pre-rep GC. Mutually exclusive with sweepRuns.
	opsPerRep int
}

// scenario builds a suite scenario from a profile list.
func scenario(name string, durationSec float64, profiles ...string) *config.Scenario {
	scn := &config.Scenario{Name: name, Policy: "mltcp", DurationSec: durationSec}
	for i, p := range profiles {
		scn.Jobs = append(scn.Jobs, config.Job{Name: fmt.Sprintf("J%d", i+1), Profile: p})
	}
	return scn
}

// clusterPoint builds the cluster suite scenario: a Poisson job trace on
// a fat-tree fabric, the only point exercising the multi-bottleneck
// max-min allocator and the ECMP path compiler. The trace shape is
// pinned by the generator seed, so the point's event and allocation
// counts are as stable as the hand-written scenarios'.
func clusterPoint(o experiments.ClusterOpts) *config.Scenario {
	return experiments.ClusterScenario(o)
}

// fullSuite is the pinned scenario grid: all three fidelity tiers, job
// counts scaling 2→8, one mixed-model point, one cluster-scale fabric
// point, learned points mirroring the fluid canonical and cluster points
// (their speedup ratio is the learned tier's headline figure), and one
// harness sweep. Names are the comparison keys — renaming a point
// orphans its trajectory.
func fullSuite() []suitePoint {
	return []suitePoint{
		{name: "fluid/two-gpt2", backendName: backend.NameFluid,
			scenario: scenario("bench-fluid-two-gpt2", 120, "gpt2", "gpt2")},
		{name: "fluid/four-mix", backendName: backend.NameFluid,
			scenario: scenario("bench-fluid-four-mix", 120, "gpt3", "gpt2", "gpt2", "gpt2")},
		{name: "fluid/eight-gpt2", backendName: backend.NameFluid,
			scenario: scenario("bench-fluid-eight-gpt2", 250,
				"gpt2", "gpt2", "gpt2", "gpt2", "gpt2", "gpt2", "gpt2", "gpt2")},
		{name: "packet/two-gpt2", backendName: backend.NamePacket,
			scenario: scenario("bench-packet-two-gpt2", 20, "gpt2", "gpt2")},
		{name: "packet/four-gpt2", backendName: backend.NamePacket,
			scenario: scenario("bench-packet-four-gpt2", 20, "gpt2", "gpt2", "gpt2", "gpt2")},
		{name: "cluster/fattree8-100j", backendName: backend.NameFluid,
			scenario: clusterPoint(experiments.ClusterOpts{Seed: 11})},
		{name: "learned/two-gpt2", backendName: backend.NameLearned,
			scenario:  scenario("bench-learned-two-gpt2", 120, "gpt2", "gpt2"),
			opsPerRep: 32},
		{name: "learned/cluster-fattree8-100j", backendName: backend.NameLearned,
			scenario:  clusterPoint(experiments.ClusterOpts{Seed: 11}),
			opsPerRep: 8},
		{name: "sweep/fluid-two-gpt2-x8", backendName: backend.NameFluid,
			scenario:  scenario("bench-sweep-fluid-two-gpt2", 120, "gpt2", "gpt2"),
			sweepRuns: 8},
	}
}

// quickSuite is a seconds-fast subset with the same shape (both
// fidelities, a cluster fabric, and a sweep), used by -quick and the
// command's own tests.
func quickSuite() []suitePoint {
	return []suitePoint{
		{name: "fluid/two-gpt2", backendName: backend.NameFluid,
			scenario: scenario("bench-fluid-two-gpt2", 30, "gpt2", "gpt2")},
		{name: "packet/two-gpt2", backendName: backend.NamePacket,
			scenario: scenario("bench-packet-two-gpt2", 5, "gpt2", "gpt2")},
		{name: "cluster/fattree4-24j", backendName: backend.NameFluid,
			scenario: clusterPoint(experiments.ClusterOpts{
				Topology:          &config.Topology{Kind: config.KindFatTree, K: 4},
				Jobs:              24,
				ArrivalRatePerSec: 8,
				MeanIters:         8,
				DurationSec:       10,
				Seed:              11,
			})},
		{name: "learned/two-gpt2", backendName: backend.NameLearned,
			scenario:  scenario("bench-learned-two-gpt2", 30, "gpt2", "gpt2"),
			opsPerRep: 32},
		{name: "sweep/fluid-two-gpt2-x4", backendName: backend.NameFluid,
			scenario:  scenario("bench-sweep-fluid-two-gpt2", 30, "gpt2", "gpt2"),
			sweepRuns: 4},
	}
}

// benchConfig carries the run-mode flags into the suite runner.
type benchConfig struct {
	reps    int
	seed    uint64
	workers int
	quick   bool
}

// runSuite executes every suite point and assembles the BenchFile.
func runSuite(ctx context.Context, cfg benchConfig, progress func(string)) (*obs.BenchFile, error) {
	points := fullSuite()
	suiteName := "full"
	if cfg.quick {
		points = quickSuite()
		suiteName = "quick"
	}
	if cfg.reps < 1 {
		cfg.reps = 1
	}
	f := &obs.BenchFile{
		Schema:     obs.BenchSchema,
		Suite:      suiteName,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Revision:   telemetry.Revision(),
	}
	for _, pt := range points {
		if progress != nil {
			progress(pt.name)
		}
		bp, err := runBenchPoint(ctx, cfg, pt)
		if err != nil {
			return nil, fmt.Errorf("mltcp-bench: point %s: %w", pt.name, err)
		}
		f.Points = append(f.Points, *bp)
	}
	return f, nil
}

// runBenchPoint measures one suite point: a traced run for the
// convergence diagnostics, then reps timed runs under an obs collector
// for the performance figures.
func runBenchPoint(ctx context.Context, cfg benchConfig, pt suitePoint) (*obs.BenchPoint, error) {
	b, err := backend.New(pt.backendName)
	if err != nil {
		return nil, err
	}
	scn := pt.scenario
	bp := &obs.BenchPoint{
		Name:        pt.name,
		Backend:     pt.backendName,
		Jobs:        len(scn.Jobs),
		DurationSec: scn.DurationSec,
		Reps:        cfg.reps,
	}

	// Convergence diagnostics, recomputed from a trace (not the Result)
	// so the bench exercises the same decode path mltcp-trace ships. A
	// sweep point diagnoses its first replica's seed.
	seed := cfg.seed
	if pt.sweepRuns > 0 {
		seed = sim.DeriveSeed(cfg.seed, 0)
	}
	rec, buf, _ := telemetry.NewBuffered(telemetry.Options{})
	if _, err := b.Run(telemetry.WithRecorder(ctx, rec), scn, seed); err != nil {
		return nil, err
	}
	res, err := backend.ResultFromTrace(rec.Manifest(), buf.Events())
	if err != nil {
		return nil, err
	}
	bp.InterleavedAt = res.InterleavedAt
	for q := sim.Time(0); q < 4; q++ {
		bp.OverlapQuarters = append(bp.OverlapQuarters,
			backend.OverlapScoreOf(res.Jobs, res.Duration*q/4, res.Duration*(q+1)/4))
	}

	// Timed reps: telemetry off (measuring the simulator, not the trace
	// encoder), obs collector on, a GC before each rep so allocation
	// deltas are attributable to the rep.
	ops := pt.opsPerRep
	if ops < 1 {
		ops = 1
	}
	var walls []time.Duration
	var allocs, allocBytes, repPeakHeaps []uint64
	var repMaxDepths []int
	for r := 0; r < cfg.reps; r++ {
		runtime.GC()
		col := obs.NewCollector()
		rctx := obs.WithCollector(ctx, col)
		before := obs.ReadMem()
		sw := obs.StartTimer()
		if pt.sweepRuns > 0 {
			if _, err := experiments.ScenarioGrid(rctx, b, scn, pt.sweepRuns, cfg.seed, cfg.workers); err != nil {
				return nil, err
			}
		} else {
			for o := 0; o < ops; o++ {
				if _, err := b.Run(rctx, scn, cfg.seed); err != nil {
					return nil, err
				}
			}
		}
		wall := sw.Elapsed() / time.Duration(ops)
		after := obs.ReadMem()
		walls = append(walls, wall)
		allocs = append(allocs, (after.Mallocs-before.Mallocs)/uint64(ops))
		allocBytes = append(allocBytes, (after.TotalAllocBytes-before.TotalAllocBytes)/uint64(ops))

		repEvents, repDepth, repPeak := reduceRep(col.Runs())
		repEvents /= uint64(ops)
		repMaxDepths = append(repMaxDepths, repDepth)
		repPeakHeaps = append(repPeakHeaps, repPeak)
		bp.Events = repEvents // deterministic: identical every rep
		for _, ss := range col.Sweeps() {
			if u := ss.Utilization(); u > bp.WorkerUtilization {
				bp.WorkerUtilization = u
			}
		}
	}

	minW, meanW := summarizeWalls(walls)
	bp.WallNSMin = int64(minW)
	bp.WallNSMean = int64(meanW)
	if s := minW.Seconds(); s > 0 {
		bp.EventsPerSec = float64(bp.Events) / s
		ops := 1
		if pt.sweepRuns > 0 {
			ops = pt.sweepRuns
		}
		bp.SimWallRatio = scn.Duration().Seconds() * float64(ops) / s
	}
	// min strips scheduler and GC-timing noise, which only ever adds. The
	// memory peaks follow the same rule: each rep's figure is the max over
	// that rep's runs (a sweep has several), and the file records the min
	// over reps — previously these were max over every rep, so one rep
	// with a badly timed GC inflated the gated number for the revision.
	bp.AllocsPerOp = minUint64(allocs)
	bp.AllocBytesPerOp = minUint64(allocBytes)
	bp.PeakHeapBytes = minUint64(repPeakHeaps)
	bp.MaxHeapDepth = minInt(repMaxDepths)
	return bp, nil
}

// reduceRep collapses one rep's run stats (a sweep rep has several runs;
// a plain rep has one) into the rep's figures: total events, and the max
// heap depth / peak live heap across the rep's runs. Peaks are maxed
// within a rep — the rep really did hold that much at once — and then
// min-reduced across reps like every other gated metric, so GC timing in
// one rep cannot inflate the recorded number.
func reduceRep(runs []obs.RunStats) (events uint64, maxDepth int, peakHeap uint64) {
	for _, rs := range runs {
		events += rs.Events
		if rs.MaxHeapDepth > maxDepth {
			maxDepth = rs.MaxHeapDepth
		}
		if rs.PeakHeapBytes > peakHeap {
			peakHeap = rs.PeakHeapBytes
		}
	}
	return events, maxDepth, peakHeap
}

func summarizeWalls(walls []time.Duration) (minW, meanW time.Duration) {
	if len(walls) == 0 {
		return 0, 0
	}
	minW = walls[0]
	var sum time.Duration
	for _, w := range walls {
		if w < minW {
			minW = w
		}
		sum += w
	}
	return minW, sum / time.Duration(len(walls))
}

func minUint64(vs []uint64) uint64 {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

func minInt(vs []int) int {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}
