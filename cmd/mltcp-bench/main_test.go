package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/obs"
)

// runQuick runs the quick suite once per test binary; the measurements
// are shared across the tests below.
var quickFile *obs.BenchFile

func TestMain(m *testing.M) {
	f, err := runSuite(context.Background(), benchConfig{reps: 1, seed: 1, quick: true}, nil)
	if err != nil {
		panic(err)
	}
	quickFile = f
	os.Exit(m.Run())
}

func TestQuickSuiteShape(t *testing.T) {
	want := quickSuite()
	if len(quickFile.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(quickFile.Points), len(want))
	}
	if quickFile.Suite != "quick" || quickFile.Schema != obs.BenchSchema {
		t.Fatalf("file header %+v", quickFile)
	}
	for i, p := range quickFile.Points {
		if p.Name != want[i].name {
			t.Fatalf("point %d named %q, want %q", i, p.Name, want[i].name)
		}
		if p.Events == 0 {
			t.Errorf("%s: zero events", p.Name)
		}
		if p.WallNSMin <= 0 || p.WallNSMean < p.WallNSMin {
			t.Errorf("%s: wall min=%d mean=%d", p.Name, p.WallNSMin, p.WallNSMean)
		}
		if p.AllocsPerOp == 0 || p.AllocBytesPerOp == 0 {
			t.Errorf("%s: empty allocation figures %+v", p.Name, p)
		}
		if p.PeakHeapBytes == 0 {
			t.Errorf("%s: peak heap never sampled", p.Name)
		}
		if p.EventsPerSec <= 0 || p.SimWallRatio <= 0 {
			t.Errorf("%s: derived rates %v %v", p.Name, p.EventsPerSec, p.SimWallRatio)
		}
		if p.InterleavedAt < -1 {
			t.Errorf("%s: interleaved_at %d", p.Name, p.InterleavedAt)
		}
		if len(p.OverlapQuarters) != 4 {
			t.Errorf("%s: %d overlap quarters, want 4", p.Name, len(p.OverlapQuarters))
		}
		switch {
		case want[i].sweepRuns > 0:
			if p.WorkerUtilization <= 0 {
				t.Errorf("%s: sweep point with zero worker utilization", p.Name)
			}
		case p.Backend == backend.NamePacket:
			if p.MaxHeapDepth <= 0 {
				t.Errorf("%s: packet point with zero event-heap depth", p.Name)
			}
		}
	}
}

func TestQuickSuiteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.WriteBench(&buf, quickFile); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(quickFile, got) {
		t.Fatal("BENCH.json round trip diverged")
	}
}

func TestCompareSelfPasses(t *testing.T) {
	rep, err := obs.Compare(quickFile, quickFile, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("self-comparison regressed: %+v", rep.Regressions)
	}
}

func TestCompareMainExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f *obs.BenchFile) string {
		path := filepath.Join(dir, name)
		of, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteBench(of, f); err != nil {
			t.Fatal(err)
		}
		if err := of.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", quickFile)

	if code := compareMain([]string{base, base}); code != 0 {
		t.Fatalf("self-compare exited %d", code)
	}

	// A >20% allocation regression on one point must fail the gate.
	worse := *quickFile
	worse.Points = append([]obs.BenchPoint(nil), quickFile.Points...)
	worse.Points[0].AllocsPerOp = worse.Points[0].AllocsPerOp * 2
	if code := compareMain([]string{base, write("worse.json", &worse)}); code != 1 {
		t.Fatalf("2x allocs regression exited %d, want 1", code)
	}

	// A dropped suite point must fail the gate too.
	dropped := *quickFile
	dropped.Points = quickFile.Points[:len(quickFile.Points)-1]
	if code := compareMain([]string{base, write("dropped.json", &dropped)}); code != 1 {
		t.Fatalf("missing point exited %d, want 1", code)
	}

	if code := compareMain([]string{base, filepath.Join(dir, "absent.json")}); code != 1 {
		t.Fatalf("unreadable file exited %d, want 1", code)
	}
}

// A point present only in the new file must not gate, and its output must
// label each metric's regression direction so the reader knows how the
// figures will gate once baselined.
func TestCompareMainNewPointLabelsDirections(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f *obs.BenchFile) string {
		path := filepath.Join(dir, name)
		of, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteBench(of, f); err != nil {
			t.Fatal(err)
		}
		if err := of.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := *quickFile
	old.Points = quickFile.Points[:len(quickFile.Points)-1]
	base := write("base.json", &old)
	full := write("full.json", quickFile)

	stdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := compareMain([]string{base, full})
	os.Stdout = stdout
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("new point gated the comparison (exit %d):\n%s", code, buf.String())
	}
	out := buf.String()
	added := quickFile.Points[len(quickFile.Points)-1].Name
	if !strings.Contains(out, "new point "+added) {
		t.Fatalf("new point %s not reported:\n%s", added, out)
	}
	for _, want := range []string{
		"wall_ns_min=", "lower is better",
		"events_per_sec=", "higher is better, informational",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("new-point output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchMainQuickWritesFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite a second time")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	code := benchMain([]string{"-quick", "-reps", "1", "-out", out,
		"-cpuprofile", cpu, "-memprofile", heap})
	if code != 0 {
		t.Fatalf("benchMain exited %d", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := obs.ReadBench(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != len(quickSuite()) {
		t.Fatalf("wrote %d points, want %d", len(f.Points), len(quickSuite()))
	}
	for _, p := range []string{cpu, heap} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s not written: %v", p, err)
		}
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Fatal("BENCH.json missing trailing newline")
	}
}
