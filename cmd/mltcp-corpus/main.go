// Command mltcp-corpus generates a training corpus for the learned
// backend: it fans a scenario grid over the harness worker pool with an
// exact backend (fluid by default), extracts per-scenario feature vectors
// and simulated targets, and writes the versioned JSONL corpus that
// mltcp-train consumes. The output is byte-identical for the same
// (-grid, -backend, -seed) at any -workers value.
//
// Examples:
//
//	mltcp-corpus -grid quick -out corpus.jsonl
//	mltcp-corpus -grid full -seed 1 -workers 4 -out bench/corpus-full.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mltcp/internal/backend"
	"mltcp/internal/learn"
	"mltcp/internal/learn/gen"
)

var (
	gridFlag    = flag.String("grid", "quick", "scenario grid: "+strings.Join(gen.GridNames(), " or "))
	backendFlag = flag.String("backend", backend.NameFluid, "exact backend that produces the targets: "+strings.Join(backend.Names(), ", "))
	outFlag     = flag.String("out", "corpus.jsonl", "output corpus path (- for stdout)")
	seedFlag    = flag.Uint64("seed", 1, "base seed; grid scenario i runs with the derived seed (seed, i)")
	workersFlag = flag.Int("workers", 0, "worker goroutines; 0 = one per CPU")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	h, runs, err := gen.Generate(context.Background(), *gridFlag, *backendFlag, *seedFlag, *workersFlag)
	if err != nil {
		return err
	}
	out := os.Stdout
	if *outFlag != "-" {
		f, err := os.Create(*outFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := learn.WriteCorpus(out, h, runs); err != nil {
		return err
	}
	jobs := 0
	for _, r := range runs {
		jobs += len(r.Jobs)
	}
	fmt.Fprintf(os.Stderr, "corpus: grid=%s backend=%s seed=%d runs=%d job-examples=%d -> %s\n",
		h.Grid, h.Backend, h.Seed, len(runs), jobs, *outFlag)
	return nil
}
