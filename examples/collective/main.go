// Collective runs the paper's actual testbed arrangement end to end: two
// DNN jobs, each with two workers on opposite sides of the bottleneck,
// exchanging gradients by ring all-reduce over MLTCP-Reno TCP flows (the
// NCCL-over-TCP configuration §5's FAST-socket modification targets). Both
// jobs start almost together, collide, and slide into an interleaved
// schedule at the ideal iteration time.
package main

import (
	"fmt"

	"mltcp/internal/collective"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

func main() {
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})

	const (
		gradientBytes = 12_500_000 // per all-reduce, GPT-2-like at 1/100 scale
		compute       = 1600 * sim.Millisecond
	)

	// The traffic-class selector stands in for the modified NCCL FAST
	// socket plugin: training flows get MLTCP-Reno.
	selector := collective.DefaultSelector(400 * sim.Millisecond)

	mkJob := func(pair int, baseFlow netsim.FlowID) *collective.Job {
		ring := collective.NewRing(eng,
			[]*netsim.Host{net.Left[pair], net.Right[pair]},
			baseFlow, gradientBytes,
			selector.Factory(collective.ClassTraining),
			tcp.Config{DisableSlowStartAfterIdle: true})
		ring.Pipelined(true)
		return &collective.Job{Ring: ring, Compute: compute}
	}
	j1 := mkJob(0, 1)
	j2 := mkJob(1, 100)
	const seedJob1, seedJob2 = 1, 2 // distinct root seeds per job
	j1.Start(eng, 0, seedJob1)
	j2.Start(eng, 10*sim.Millisecond, seedJob2)

	eng.RunUntil(220 * sim.Second)

	fmt.Println("two 2-worker ring-allreduce jobs over one 500 Mbps bottleneck (MLTCP-Reno):")
	for i, j := range []*collective.Job{j1, j2} {
		n := len(j.IterDurations)
		fmt.Printf("  job %d: first iteration %.3fs -> steady %.3fs (%d all-reduces)\n",
			i+1, j.IterDurations[0].Seconds(), j.AvgIterTime(n-10).Seconds(), j.Ring.AllReduces)
	}
	fmt.Println("\nthe jobs start congested (~2.0s) and converge to the ~1.81s ideal —")
	fmt.Println("the same sliding MLTCP produces for single flows, through a real collective.")
}
