// Sixjobs reproduces Figure 4: six identical GPT-2-like jobs share a
// 50 Gbps bottleneck under TCP Reno and MLTCP-Reno. Under Reno every
// communication phase collides and iterations stretch to ~2.8 s; MLTCP
// interleaves them back to the 1.8 s ideal, a ~1.5-1.6× tail speedup.
package main

import (
	"fmt"

	"mltcp/internal/experiments"
	"mltcp/internal/metrics"
	"mltcp/internal/trace"
)

func main() {
	res := experiments.Fig4()

	fmt.Printf("six GPT-2 jobs, steady-state iteration-time distribution (ms):\n\n")
	var rows [][]string
	for _, q := range []float64{0.50, 0.90, 0.99} {
		rows = append(rows, []string{
			fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.0f", valueAt(res.RenoCDF, q)),
			fmt.Sprintf("%.0f", valueAt(res.MLTCPCDF, q)),
		})
	}
	fmt.Print(trace.Table([]string{"quantile", "reno (ms)", "mltcp (ms)"}, rows))
	fmt.Printf("\ntail (p99) speedup: %.2f×   median speedup: %.2f×\n", res.TailSpeedup, res.MedianSpeedup)
	fmt.Println("(the paper reports a 1.59× tail speedup on its testbed)")
}

// valueAt returns the smallest CDF value whose cumulative fraction reaches q.
func valueAt(cdf []metrics.CDFPoint, q float64) float64 {
	for _, p := range cdf {
		if p.Fraction >= q {
			return p.Value
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].Value
}
