// Multiresource demonstrates §5's generalization beyond the network:
// replacing bytes_ratio with job progress turns MLTCP's aggressiveness
// function into a CPU-core allocator. Three periodic tasks contend for an
// 8-core machine; fair sharing leaves their busy phases overlapped and
// iterations inflated, while progress-weighted allocation slides them into
// an interleaved schedule at the ideal iteration time.
package main

import (
	"fmt"

	"mltcp/internal/core"
	"mltcp/internal/multires"
	"mltcp/internal/sim"
	"mltcp/internal/trace"
)

func main() {
	const cores = 8.0
	build := func(agg *core.AggFunc) []*multires.Task {
		var tasks []*multires.Task
		for i := 0; i < 3; i++ {
			tasks = append(tasks, &multires.Task{
				Name:        fmt.Sprintf("task%d", i+1),
				WorkUnits:   3.2, // core-seconds per iteration (0.4s at full machine)
				IdleTime:    800 * sim.Millisecond,
				StartOffset: sim.Time(i) * 10 * sim.Millisecond,
				Agg:         agg,
			})
		}
		return tasks
	}

	fair := build(nil)
	multires.NewScheduler(cores, fair).Run(120 * sim.Second)

	agg := core.Default()
	weighted := build(&agg)
	multires.NewScheduler(cores, weighted).Run(120 * sim.Second)

	ideal := fair[0].IdealIterTime(cores)
	fmt.Printf("three tasks on %g cores; ideal iteration %.1fs\n\n", cores, ideal.Seconds())
	var rows [][]string
	for i := range fair {
		rows = append(rows, []string{
			fair[i].Name,
			fmt.Sprintf("%.3f", fair[i].AvgIterTime(20).Seconds()),
			fmt.Sprintf("%.3f", weighted[i].AvgIterTime(20).Seconds()),
		})
	}
	fmt.Print(trace.Table([]string{"task", "fair-share iter (s)", "progress-weighted iter (s)"}, rows))
	fmt.Println("\nprogress-weighted allocation (MLTCP's F applied to task progress)")
	fmt.Println("interleaves the busy phases, recovering the isolated iteration time.")
}
