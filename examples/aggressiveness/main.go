// Aggressiveness reproduces Figure 3: three GPT-2-like jobs compete under
// MLTCP with each of the paper's six bandwidth aggressiveness functions.
// The increasing functions F1–F4 all reach the interleaved state (iteration
// time falls to the 1.8 s ideal within ~20 iterations); the decreasing
// functions F5 and F6 violate requirement (ii) of §3.1 and never improve.
package main

import (
	"fmt"

	"mltcp/internal/experiments"
	"mltcp/internal/trace"
)

func main() {
	res := experiments.Fig3()

	var series []trace.Series
	for i, name := range res.Functions {
		series = append(series, trace.Series{Name: name, Values: res.IterTimeMS[i]})
	}
	fmt.Printf("avg iteration time (ms) by iteration number; ideal = %.0f ms\n", res.IdealMS)
	fmt.Print(trace.Chart("Figure 3: aggressiveness functions", 100, 14, series...))

	fmt.Println("\nfinal iteration time per function:")
	var rows [][]string
	for i, name := range res.Functions {
		s := res.IterTimeMS[i]
		last := s[len(s)-1]
		verdict := "converged"
		if last > res.IdealMS*1.05 {
			verdict = "did NOT converge (decreasing F)"
		}
		rows = append(rows, []string{name, fmt.Sprintf("%.0f", last), verdict})
	}
	fmt.Print(trace.Table([]string{"function", "final iter (ms)", "outcome"}, rows))
}
