// Fourjobs reproduces the paper's motivating comparison (§2, Figure 2): a
// GPT-3-like job and three GPT-2-like jobs share one 50 Gbps bottleneck
// under four schemes — plain fair sharing (Reno), pFabric-style SRPT, a
// Cassini-like centralized interleaving schedule, and MLTCP — and prints
// each job's steady-state iteration time against its ideal.
package main

import (
	"fmt"

	"mltcp/internal/experiments"
	"mltcp/internal/trace"
)

func main() {
	for _, run := range []func() experiments.Fig2Result{
		experiments.Fig2Reno,
		experiments.Fig2SRPT,
		experiments.Fig2Centralized,
		experiments.Fig2MLTCP,
	} {
		res := run()
		fmt.Printf("\n--- %s ---\n", res.Scheme)
		var rows [][]string
		for _, j := range res.Jobs {
			rows = append(rows, []string{
				j.Name,
				fmt.Sprintf("%.3f", j.AvgIter.Seconds()),
				fmt.Sprintf("%.3f", j.Ideal.Seconds()),
				fmt.Sprintf("%.2f×", j.Slowdown),
			})
		}
		fmt.Print(trace.Table([]string{"job", "steady iter (s)", "ideal (s)", "slowdown"}, rows))
		if res.Scheme == "mltcp-reno" && res.ConvergedAt >= 0 {
			fmt.Printf("MLTCP converged to within 5%% of the centralized optimum at iteration %d\n", res.ConvergedAt)
		}
	}
	fmt.Println("\nTakeaway: SRPT head-of-line-blocks the large job ~1.5×; MLTCP matches the")
	fmt.Println("centralized optimum (1.2s / 1.8s) with no controller, priorities, or switch support.")
}
