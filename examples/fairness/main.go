// Fairness demonstrates §5's coexistence claims at packet level: an
// MLTCP-Reno flow sharing a bottleneck with a legacy TCP Reno flow claims
// more than its fair share — because a flow deep into its iteration runs at
// F(bytes_ratio) ≈ 2× Reno's additive increase — but never starves it,
// since the aggressiveness function is bounded below by its intercept.
package main

import (
	"fmt"

	"mltcp/internal/experiments"
	"mltcp/internal/sim"
	"mltcp/internal/trace"
)

func main() {
	res := experiments.FairnessWithHorizon(30 * sim.Second)

	fmt.Println("single flow over a lossy 100 Mbps link (goodput, Mbps):")
	var rows [][]string
	for i, p := range res.LossProbs {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", p),
			fmt.Sprintf("%.1f", res.RenoMbps[i]),
			fmt.Sprintf("%.1f", res.MLTCPMbps[i]),
			fmt.Sprintf("%.2f×", res.MLTCPMbps[i]/res.RenoMbps[i]),
		})
	}
	fmt.Print(trace.Table([]string{"loss p", "reno", "mltcp-reno", "advantage"}, rows))
	fmt.Printf("\nfitted throughput-vs-loss exponents: reno %.2f (Mathis 1/√p), mltcp %.2f\n",
		res.RenoExponent, res.MLTCPExponent)

	fmt.Println("\ncoexistence on one clean bottleneck:")
	fmt.Printf("  mltcp claims %.2f× the reno flow's bandwidth\n", res.ShareRatio)
	fmt.Printf("  reno still achieves %.0f%% of its fair half-share — not starved\n",
		res.RenoShareOfFair*100)
}
