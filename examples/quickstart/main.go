// Quickstart: augment TCP Reno with MLTCP (Algorithm 1) and watch two DNN
// training jobs slide into an interleaved schedule on a shared bottleneck —
// the paper's core result, at packet level, in ~40 lines.
package main

import (
	"fmt"

	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

func main() {
	eng := sim.New()

	// A dumbbell: two sender hosts, two receivers, one 500 Mbps
	// bottleneck — a 1/100-scale version of the paper's testbed.
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})

	// Each job sends 12.5 MB per training iteration, then computes for
	// 1.6 s: the GPT-2-like shape, ideal iteration time 1.8 s.
	const iterBytes = 12_500_000
	const compute = 1600 * sim.Millisecond

	for i := 0; i < 2; i++ {
		i := i
		// MLTCP-Reno = plain Reno wrapped with the paper's default
		// aggressiveness function F(r) = 1.75·r + 0.25 and a
		// per-flow iteration tracker (Algorithm 1).
		cc := core.Wrap(tcp.NewReno(), core.Default(),
			core.NewTracker(iterBytes, 400*sim.Millisecond))
		flow := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i], cc, tcp.Config{})

		// Drive the DNN loop: send an iteration's gradients, compute,
		// repeat. Print each iteration's duration.
		var lastStart sim.Time
		iter := 0
		flow.Sender.Drained(func(now sim.Time) {
			eng.After(compute, func(e *sim.Engine) {
				iter++
				fmt.Printf("job %d iteration %2d: %8.3fs\n", i+1, iter, (e.Now() - lastStart).Seconds())
				lastStart = e.Now()
				flow.Sender.Write(iterBytes)
			})
		})
		eng.At(sim.Time(i)*10*sim.Millisecond, func(e *sim.Engine) {
			lastStart = e.Now()
			flow.Sender.Write(iterBytes)
		})
	}

	// Both jobs start (almost) together, so their communication phases
	// collide at first; MLTCP shifts them apart a little every iteration
	// until both reach the ideal 1.8 s.
	eng.RunUntil(30 * sim.Second)
}
