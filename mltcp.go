// Package mltcp is a Go reproduction of "MLTCP: A Distributed Technique to
// Approximate Centralized Flow Scheduling For Machine Learning" (HotNets
// 2024). MLTCP augments a congestion-control algorithm so that its
// additive-increase step is scaled by a bandwidth aggressiveness function
// F(bytes_ratio) of the fraction of the current training iteration's bytes
// already delivered; competing DNN jobs then slide, iteration by iteration,
// into the interleaved schedule a centralized scheduler (Cassini) would
// compute — with no controller, priority queues, or switch support.
//
// This root package is a thin facade over the implementation packages:
//
//   - internal/core — MLTCP itself: aggressiveness functions (Equation 2
//     and the six functions of Figure 3), the per-flow iteration tracker of
//     Algorithm 1, TOTAL_BYTES/COMP_TIME auto-learning, and the wrapper
//     that augments any base congestion control.
//   - internal/tcp — the transport substrate: an app-limited TCP sender and
//     receiver with Reno, CUBIC, and DCTCP congestion control.
//   - internal/netsim — the packet-level network: links, queue disciplines
//     (drop-tail, pFabric priority, PIAS bands, ECN), switches, topologies.
//   - internal/fluid — a fast flow-level simulator for convergence studies,
//     with SRPT/LAS/PIAS baseline policies.
//   - internal/sched — the Cassini-like centralized interleaving optimizer.
//   - internal/analysis — §4's Shift and Loss functions, gradient-descent
//     convergence, and the Gaussian-noise error bound.
//   - internal/workload, internal/metrics, internal/trace — job profiles,
//     statistics, and figure rendering.
//   - internal/experiments — one harness per paper figure, driven by
//     cmd/mltcp-figures and the benchmarks in this directory.
//   - internal/harness — the deterministic parallel sweep runner: fans
//     experiment grids across a worker pool with per-point seed streams
//     (SplitMix64-derived), so results are bit-for-bit identical at any
//     worker count.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	cc := mltcp.Wrap(mltcp.NewRenoCC(), mltcp.DefaultAggressiveness(),
//	    mltcp.NewTracker(totalBytes, compTime))
//	flow := tcp.NewFlow(eng, id, srcHost, dstHost, cc, tcp.Config{})
package mltcp

import (
	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// AggFunc is a bandwidth aggressiveness function (Equation 2 in the paper
// is the linear instance).
type AggFunc = core.AggFunc

// Tracker carries Algorithm 1's per-flow iteration state.
type Tracker = core.Tracker

// Learner infers TOTAL_BYTES and COMP_TIME from the ACK stream.
type Learner = core.Learner

// MLTCP is the congestion-control wrapper implementing the paper's
// technique over any base algorithm.
type MLTCP = core.MLTCP

// CongestionControl is the pluggable window-update interface (modeled on
// Linux's pluggable congestion modules).
type CongestionControl = tcp.CongestionControl

// DefaultAggressiveness returns F(r) = 1.75·r + 0.25, the paper's choice.
func DefaultAggressiveness() AggFunc { return core.Default() }

// LinearAggressiveness returns F(r) = slope·r + intercept (Equation 2).
func LinearAggressiveness(slope, intercept float64) AggFunc { return core.Linear(slope, intercept) }

// PaperAggressivenessFunctions returns the six functions of Figure 3.
func PaperAggressivenessFunctions() []AggFunc { return core.PaperFunctions() }

// NewTracker initializes Algorithm 1 with known per-iteration volume and
// the compute-gap threshold.
func NewTracker(totalBytes int64, compTime sim.Time) *Tracker {
	return core.NewTracker(totalBytes, compTime)
}

// NewLearner returns an auto-learning ratio source (0 values take
// defaults).
func NewLearner(gap sim.Time, observations int) *Learner { return core.NewLearner(gap, observations) }

// Wrap augments a base congestion control with MLTCP.
func Wrap(base CongestionControl, agg AggFunc, src core.RatioSource) *MLTCP {
	return core.Wrap(base, agg, src)
}

// NewMLTCPReno returns the paper's evaluated configuration: Reno wrapped
// with the default linear aggressiveness function and known parameters.
func NewMLTCPReno(totalBytes int64, compTime sim.Time) *MLTCP {
	return core.NewReno(totalBytes, compTime)
}

// NewRenoCC, NewCubicCC, NewDCTCPCC, and NewSwiftCC expose the base
// algorithms (loss-based, cubic, ECN-proportional, and delay-based).
func NewRenoCC() CongestionControl  { return tcp.NewReno() }
func NewCubicCC() CongestionControl { return tcp.NewCubic() }
func NewDCTCPCC() CongestionControl { return tcp.NewDCTCP() }
func NewSwiftCC() CongestionControl { return tcp.NewSwift() }
