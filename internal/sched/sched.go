// Package sched implements the centralized side of the paper's comparison:
// a Cassini-like interleaving scheduler that, given full knowledge of every
// job's period and communication demand, computes start-time offsets
// minimizing communication overlap on the shared bottleneck. Cassini solves
// this with an ILP on a centralized controller; here an exact sweep-line
// overlap cost plus coordinate descent with restarts finds the same optima
// for workshop-scale job counts — the point being precisely the one the
// paper makes: the centralized approach needs global demand knowledge and
// offline optimization, while MLTCP reaches the same schedule online.
package sched

import (
	"fmt"
	"sort"

	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Shape is the scheduler's view of one periodic job: its ideal period and
// the duration of its communication phase at full link rate.
type Shape struct {
	Name    string
	Period  sim.Time
	CommDur sim.Time
}

// ShapeOf derives a job's shape on a link of the given capacity.
func ShapeOf(p workload.Profile, capacity units.Rate) Shape {
	return Shape{
		Name:    p.Name,
		Period:  p.IdealIterTime(capacity),
		CommDur: capacity.TransmissionTime(int64(p.CommBytes)),
	}
}

func gcd(a, b sim.Time) sim.Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Hyperperiod returns the least common multiple of the shapes' periods.
func Hyperperiod(shapes []Shape) sim.Time {
	if len(shapes) == 0 {
		panic("sched: no shapes")
	}
	h := shapes[0].Period
	for _, s := range shapes[1:] {
		h = h / gcd(h, s.Period) * s.Period //lint:allow simunits LCM arithmetic: gcd divides h exactly, the quotient is a period count
	}
	return h
}

// Overlap computes the exact total pairwise communication overlap over one
// hyperperiod for the given offsets: for every instant, (number of
// communicating jobs − 1) integrated over time. Zero means a fully
// interleaved schedule.
func Overlap(shapes []Shape, offsets []sim.Time) sim.Time {
	if len(offsets) != len(shapes) {
		panic(fmt.Sprintf("sched: %d offsets for %d shapes", len(offsets), len(shapes)))
	}
	H := Hyperperiod(shapes)
	type edge struct {
		at sim.Time
		d  int
	}
	var edges []edge
	for i, s := range shapes {
		if s.CommDur <= 0 || s.CommDur > s.Period {
			panic(fmt.Sprintf("sched: shape %s has invalid comm duration %v (period %v)", s.Name, s.CommDur, s.Period))
		}
		o := offsets[i] % s.Period
		if o < 0 {
			o += s.Period
		}
		for start := o; start < H; start += s.Period {
			end := start + s.CommDur
			if end <= H {
				edges = append(edges, edge{start, +1}, edge{end, -1})
			} else {
				// Wrap around the hyperperiod boundary.
				edges = append(edges, edge{start, +1}, edge{H, -1})
				edges = append(edges, edge{0, +1}, edge{end - H, -1})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].d < edges[j].d // close before open at the same instant
	})
	var total sim.Time
	active := 0
	prev := sim.Time(0)
	for _, e := range edges {
		if active > 1 {
			total += sim.Time(active-1) * (e.at - prev)
		}
		prev = e.at
		active += e.d
	}
	return total
}

// Result is the outcome of an Optimize run.
type Result struct {
	// Offsets are the chosen start offsets, one per shape, with
	// Offsets[0] fixed at 0 (only relative phase matters).
	Offsets []sim.Time
	// Overlap is the residual communication overlap per hyperperiod.
	Overlap sim.Time
	// Interleaved reports whether the schedule is fully interleaved.
	Interleaved bool
}

// Options tunes the optimizer. The zero value uses sensible defaults.
type Options struct {
	// Grid is the offset granularity (default: gcd of comm durations,
	// floored at 10ms — enough to realize any tiling the durations
	// admit without an enormous search).
	Grid sim.Time
	// Restarts is the number of random restarts (default 8).
	Restarts int
	// Seed drives restart randomization.
	Seed uint64
}

// Optimize searches for offsets minimizing Overlap via coordinate descent
// on a grid with random restarts. For the paper's job counts (≤ ~8) this
// reliably finds zero-overlap schedules whenever they exist on the grid.
func Optimize(shapes []Shape, opt Options) Result {
	if len(shapes) == 0 {
		panic("sched: no shapes")
	}
	if opt.Grid == 0 {
		g := shapes[0].CommDur
		for _, s := range shapes[1:] {
			g = gcd(g, s.CommDur)
		}
		if g < 10*sim.Millisecond {
			g = 10 * sim.Millisecond
		}
		opt.Grid = g
	}
	if opt.Grid <= 0 {
		panic("sched: non-positive grid")
	}
	if opt.Restarts <= 0 {
		opt.Restarts = 8
	}
	rng := sim.NewRNG(opt.Seed)

	best := make([]sim.Time, len(shapes))
	bestCost := Overlap(shapes, best)
	for r := 0; r < opt.Restarts && bestCost > 0; r++ {
		offsets := make([]sim.Time, len(shapes))
		if r > 0 {
			for i := 1; i < len(offsets); i++ {
				steps := int(shapes[i].Period / opt.Grid)
				if steps > 0 {
					offsets[i] = sim.Time(rng.Intn(steps)) * opt.Grid
				}
			}
		}
		cost := descend(shapes, offsets, opt.Grid)
		if cost < bestCost {
			bestCost = cost
			copy(best, offsets)
		}
	}
	return Result{Offsets: best, Overlap: bestCost, Interleaved: bestCost == 0}
}

// descend runs coordinate descent in place and returns the final cost.
func descend(shapes []Shape, offsets []sim.Time, grid sim.Time) sim.Time {
	cost := Overlap(shapes, offsets)
	for improved := true; improved && cost > 0; {
		improved = false
		for i := 1; i < len(shapes); i++ { // offset 0 pinned
			bestO, bestC := offsets[i], cost
			for o := sim.Time(0); o < shapes[i].Period; o += grid {
				offsets[i] = o
				if c := Overlap(shapes, offsets); c < bestC {
					bestO, bestC = o, c
					improved = true
				}
			}
			offsets[i] = bestO
			cost = bestC
		}
	}
	return cost
}

// Feasible reports whether a fully interleaved schedule can exist at all:
// the total communication demand per hyperperiod must fit in it. This is
// necessary but not sufficient (the periodic structure can still make
// tiling impossible); Optimize decides the rest constructively.
func Feasible(shapes []Shape) bool {
	H := Hyperperiod(shapes)
	var busy sim.Time
	for _, s := range shapes {
		busy += s.CommDur * (H / s.Period) //lint:allow simunits H is an exact multiple of Period; the quotient is an iteration count
	}
	return busy <= H
}
