package sched

import (
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

const linkRate = 50 * units.Gbps

func fourJobShapes() []Shape {
	gpt3 := ShapeOf(workload.GPT3, linkRate)
	gpt2 := ShapeOf(workload.GPT2, linkRate)
	return []Shape{gpt3, gpt2, gpt2, gpt2}
}

func TestShapeOf(t *testing.T) {
	s := ShapeOf(workload.GPT3, linkRate)
	if s.Period != 1200*sim.Millisecond {
		t.Errorf("period = %v, want 1.2s", s.Period)
	}
	if s.CommDur != 400*sim.Millisecond {
		t.Errorf("comm = %v, want 400ms", s.CommDur)
	}
}

func TestHyperperiod(t *testing.T) {
	if got := Hyperperiod(fourJobShapes()); got != 3600*sim.Millisecond {
		t.Errorf("hyperperiod = %v, want 3.6s", got)
	}
	one := []Shape{{Name: "x", Period: sim.Second, CommDur: sim.Millisecond}}
	if got := Hyperperiod(one); got != sim.Second {
		t.Errorf("single-job hyperperiod = %v", got)
	}
}

func TestOverlapZeroForKnownTiling(t *testing.T) {
	// The hand-verified interleaving from the calibration: offsets
	// 0, 0.4, 1.0, 1.6 seconds.
	offsets := []sim.Time{0, 400 * sim.Millisecond, 1000 * sim.Millisecond, 1600 * sim.Millisecond}
	if got := Overlap(fourJobShapes(), offsets); got != 0 {
		t.Errorf("overlap = %v, want 0", got)
	}
}

func TestOverlapAllTogether(t *testing.T) {
	// Everyone starting at 0: during [0,0.2s] all 4 overlap (3 excess),
	// [0.2,0.4] only GPT-3 (0 excess)... compute exactly:
	// GPT-3 comm [0,.4)+k*1.2; GPT-2s comm [0,.2)+k*1.8 (all three identical).
	// Per hyperperiod 3.6s: [0,.2): 4 active (+3 excess × 0.2);
	// [1.8,2.0): 3 GPT-2 active (+2 × 0.2). Total = 0.6+0.4 = 1.0s.
	offsets := make([]sim.Time, 4)
	if got := Overlap(fourJobShapes(), offsets); got != 1000*sim.Millisecond {
		t.Errorf("overlap = %v, want 1s", got)
	}
}

func TestOverlapWrapAround(t *testing.T) {
	// A comm phase crossing the hyperperiod boundary must still be
	// counted. Two identical jobs, one offset so its phase wraps.
	shapes := []Shape{
		{Name: "a", Period: sim.Second, CommDur: 400 * sim.Millisecond},
		{Name: "b", Period: sim.Second, CommDur: 400 * sim.Millisecond},
	}
	// b starts at 0.9s: phase [0.9, 1.3) wraps to [0.9,1.0)+[0,0.3).
	// a's phase [0, 0.4): overlap = [0, 0.3) = 300ms.
	offsets := []sim.Time{0, 900 * sim.Millisecond}
	if got := Overlap(shapes, offsets); got != 300*sim.Millisecond {
		t.Errorf("overlap = %v, want 300ms", got)
	}
}

func TestOptimizeFindsInterleavingForPaperScenario(t *testing.T) {
	res := Optimize(fourJobShapes(), Options{Seed: 1})
	if !res.Interleaved {
		t.Fatalf("optimizer failed: residual overlap %v, offsets %v", res.Overlap, res.Offsets)
	}
	if res.Offsets[0] != 0 {
		t.Errorf("first offset = %v, want pinned 0", res.Offsets[0])
	}
	// Double-check with the exact overlap evaluator.
	if got := Overlap(fourJobShapes(), res.Offsets); got != 0 {
		t.Errorf("claimed interleaved but overlap = %v", got)
	}
}

func TestOptimizeSixGPT2Jobs(t *testing.T) {
	gpt2 := ShapeOf(workload.GPT2, linkRate)
	shapes := make([]Shape, 6)
	for i := range shapes {
		shapes[i] = gpt2
	}
	res := Optimize(shapes, Options{Seed: 2})
	if !res.Interleaved {
		t.Fatalf("6×GPT-2 (1.2s demand in 1.8s) should interleave; overlap %v", res.Overlap)
	}
}

func TestOptimizeInfeasiblePacking(t *testing.T) {
	// Two jobs whose combined demand exceeds the period can never
	// interleave; the optimizer should still minimize.
	shapes := []Shape{
		{Name: "a", Period: sim.Second, CommDur: 700 * sim.Millisecond},
		{Name: "b", Period: sim.Second, CommDur: 700 * sim.Millisecond},
	}
	res := Optimize(shapes, Options{Seed: 3})
	if res.Interleaved {
		t.Error("reported interleaved for an infeasible packing")
	}
	// Best case: overlap = 0.7+0.7-1.0 = 0.4s.
	if res.Overlap != 400*sim.Millisecond {
		t.Errorf("residual overlap = %v, want 400ms", res.Overlap)
	}
}

func TestFeasible(t *testing.T) {
	if !Feasible(fourJobShapes()) {
		t.Error("paper scenario reported infeasible")
	}
	over := []Shape{
		{Name: "a", Period: sim.Second, CommDur: 700 * sim.Millisecond},
		{Name: "b", Period: sim.Second, CommDur: 700 * sim.Millisecond},
	}
	if Feasible(over) {
		t.Error("overloaded scenario reported feasible")
	}
}

func TestFullyPackedCalibrationIsInfeasibleToTile(t *testing.T) {
	// The residue-class obstruction found during calibration: comm
	// durations 0.6/0.3s pass the necessary Feasible check (demand
	// exactly fills the hyperperiod) but admit no tiling, because a
	// 1.8s-periodic phase projects onto two residues 0.6s apart mod
	// 1.2s and the free residue band is only 0.6s wide.
	shapes := []Shape{
		{Name: "gpt3", Period: 1200 * sim.Millisecond, CommDur: 600 * sim.Millisecond},
		{Name: "gpt2a", Period: 1800 * sim.Millisecond, CommDur: 300 * sim.Millisecond},
		{Name: "gpt2b", Period: 1800 * sim.Millisecond, CommDur: 300 * sim.Millisecond},
		{Name: "gpt2c", Period: 1800 * sim.Millisecond, CommDur: 300 * sim.Millisecond},
	}
	if !Feasible(shapes) {
		t.Fatal("demand check should pass (exactly 100%)")
	}
	res := Optimize(shapes, Options{Grid: 50 * sim.Millisecond, Restarts: 12, Seed: 4})
	if res.Interleaved {
		t.Errorf("tiling should be impossible; got offsets %v", res.Offsets)
	}
}

func TestOverlapValidation(t *testing.T) {
	shapes := fourJobShapes()
	for name, fn := range map[string]func(){
		"offset-count": func() { Overlap(shapes, []sim.Time{0}) },
		"bad-comm": func() {
			Overlap([]Shape{{Name: "x", Period: sim.Second, CommDur: 2 * sim.Second}}, []sim.Time{0})
		},
		"empty": func() { Hyperperiod(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOptimizeNegativeOffsetNormalization(t *testing.T) {
	shapes := []Shape{
		{Name: "a", Period: sim.Second, CommDur: 100 * sim.Millisecond},
		{Name: "b", Period: sim.Second, CommDur: 100 * sim.Millisecond},
	}
	// Negative offsets are normalized modulo the period.
	got := Overlap(shapes, []sim.Time{0, -900 * sim.Millisecond})
	want := Overlap(shapes, []sim.Time{0, 100 * sim.Millisecond})
	if got != want {
		t.Errorf("negative offset overlap = %v, want %v", got, want)
	}
}

// Property: Overlap is invariant under translating every offset by the
// same amount (the schedule is periodic) and independent of job order.
func TestOverlapInvarianceProperty(t *testing.T) {
	shapes := fourJobShapes()
	if err := quickCheckOverlap(shapes); err != nil {
		t.Error(err)
	}
}

func quickCheckOverlap(shapes []Shape) error {
	prop := func(o2, o3, o4 uint16, shiftAmt uint16) bool {
		offsets := []sim.Time{
			0,
			sim.Time(o2%1800) * sim.Millisecond,
			sim.Time(o3%1800) * sim.Millisecond,
			sim.Time(o4%1800) * sim.Millisecond,
		}
		base := Overlap(shapes, offsets)

		// Translate all offsets by the same shift.
		shift := sim.Time(shiftAmt%3600) * sim.Millisecond
		shifted := make([]sim.Time, len(offsets))
		for i := range offsets {
			shifted[i] = offsets[i] + shift
		}
		if Overlap(shapes, shifted) != base {
			return false
		}

		// Swap two like-shaped jobs (GPT-2s at indices 1..3).
		swapped := append([]sim.Time(nil), offsets...)
		swapped[1], swapped[2] = swapped[2], swapped[1]
		return Overlap(shapes, swapped) == base
	}
	return quick.Check(prop, &quick.Config{MaxCount: 60})
}
