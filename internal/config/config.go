// Package config loads experiment scenarios from JSON, so cluster
// configurations can be versioned and replayed with cmd/mltcpsim -config
// instead of being encoded in flags.
package config

import (
	"encoding/json"
	"fmt"
	"io"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Scenario is one complete experiment description.
type Scenario struct {
	// Name labels the scenario in output.
	Name string `json:"name"`
	// CapacityGbps is the bottleneck rate (default 50).
	CapacityGbps float64 `json:"capacity_gbps"`
	// Policy is the scheduling scheme: mltcp, reno, srpt, pdq, las,
	// pias (default mltcp).
	Policy string `json:"policy"`
	// DurationSec is the simulated horizon (default 120).
	DurationSec float64 `json:"duration_sec"`
	// SlopeIntercept optionally overrides Equation 2's parameters for
	// mltcp policies ([slope, intercept]).
	SlopeIntercept []float64 `json:"slope_intercept,omitempty"`
	// Jobs lists the workload.
	Jobs []Job `json:"jobs"`
}

// Job describes one job (or a replicated group).
type Job struct {
	// Name labels the job; replicas get -1, -2... suffixes.
	Name string `json:"name"`
	// Profile names a built-in profile (gpt3, gpt2, ...). Leave empty
	// to use ComputeMS/CommMB.
	Profile string `json:"profile,omitempty"`
	// ComputeMS and CommMB define a custom profile.
	ComputeMS float64 `json:"compute_ms,omitempty"`
	CommMB    float64 `json:"comm_mb,omitempty"`
	// OffsetMS delays the first communication phase.
	OffsetMS float64 `json:"offset_ms,omitempty"`
	// NoiseMS is the compute-time noise std.
	NoiseMS float64 `json:"noise_ms,omitempty"`
	// Count replicates the job (default 1); replicas are staggered by
	// 10ms each beyond OffsetMS.
	Count int `json:"count,omitempty"`
	// Seed drives the job's noise stream (replicas add their index).
	Seed uint64 `json:"seed,omitempty"`
}

// Load parses and validates a scenario.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	if err := s.validate(); err != nil {
		return Scenario{}, err
	}
	s.applyDefaults()
	return s, nil
}

func (s *Scenario) applyDefaults() {
	if s.CapacityGbps == 0 {
		s.CapacityGbps = 50
	}
	if s.Policy == "" {
		s.Policy = "mltcp"
	}
	if s.DurationSec == 0 {
		s.DurationSec = 120
	}
}

func (s *Scenario) validate() error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("config: scenario %q has no jobs", s.Name)
	}
	if s.CapacityGbps < 0 || s.DurationSec < 0 {
		return fmt.Errorf("config: negative capacity or duration")
	}
	switch s.Policy {
	case "", "mltcp", "reno", "srpt", "pdq", "las", "pias":
	default:
		return fmt.Errorf("config: unknown policy %q", s.Policy)
	}
	if s.SlopeIntercept != nil && len(s.SlopeIntercept) != 2 {
		return fmt.Errorf("config: slope_intercept needs exactly [slope, intercept]")
	}
	known := workload.Profiles()
	for i, j := range s.Jobs {
		custom := j.ComputeMS > 0 || j.CommMB > 0
		if j.Profile == "" && !custom {
			return fmt.Errorf("config: job %d needs a profile or compute_ms+comm_mb", i)
		}
		if j.Profile != "" {
			if custom {
				return fmt.Errorf("config: job %d sets both profile and custom fields", i)
			}
			if _, ok := known[j.Profile]; !ok {
				return fmt.Errorf("config: job %d: unknown profile %q", i, j.Profile)
			}
		} else if j.ComputeMS < 0 || j.CommMB <= 0 {
			return fmt.Errorf("config: job %d: custom profile needs compute_ms >= 0 and comm_mb > 0", i)
		}
		if j.Count < 0 {
			return fmt.Errorf("config: job %d: negative count", i)
		}
	}
	return nil
}

// Capacity returns the bottleneck rate.
func (s Scenario) Capacity() units.Rate { return units.Rate(s.CapacityGbps) * units.Gbps }

// Duration returns the simulated horizon.
func (s Scenario) Duration() sim.Time { return sim.FromSeconds(s.DurationSec) }

// Agg returns the aggressiveness function for mltcp policies (nil for
// others).
func (s Scenario) Agg() *core.AggFunc {
	if s.Policy != "mltcp" {
		return nil
	}
	f := core.Default()
	if s.SlopeIntercept != nil {
		f = core.Linear(s.SlopeIntercept[0], s.SlopeIntercept[1])
	}
	return &f
}

// FluidPolicy returns the fluid sharing policy for the scenario.
func (s Scenario) FluidPolicy() fluid.Policy {
	switch s.Policy {
	case "srpt":
		return fluid.SRPT{Label: "pfabric"}
	case "pdq":
		return fluid.SRPT{Label: "pdq"}
	case "las":
		return fluid.LAS{}
	case "pias":
		return fluid.PIAS{Thresholds: []int64{int64(100 * units.MB), int64(1000 * units.MB)}}
	default: // mltcp and reno both share by CC weight
		return fluid.WeightedShare{}
	}
}

// BuildJobs expands the scenario into fluid jobs.
func (s Scenario) BuildJobs() []*fluid.Job {
	agg := s.Agg()
	known := workload.Profiles()
	var jobs []*fluid.Job
	for ji, j := range s.Jobs {
		count := j.Count
		if count == 0 {
			count = 1
		}
		prof, ok := known[j.Profile]
		if !ok {
			prof = workload.Profile{
				Name:        j.Name,
				ComputeTime: sim.FromSeconds(j.ComputeMS / 1000),
				CommBytes:   units.ByteCount(j.CommMB * 1e6),
			}
		}
		for c := 0; c < count; c++ {
			name := j.Name
			if name == "" {
				name = prof.Name
			}
			if count > 1 {
				name = fmt.Sprintf("%s-%d", name, c+1)
			}
			jobs = append(jobs, &fluid.Job{
				Spec: workload.Spec{
					Name:        name,
					Profile:     prof,
					StartOffset: sim.FromSeconds(j.OffsetMS/1000) + sim.Time(len(jobs))*10*sim.Millisecond,
					NoiseStd:    sim.FromSeconds(j.NoiseMS / 1000),
					Seed:        j.Seed + uint64(ji*100+c),
				},
				Agg: agg,
			})
		}
	}
	return jobs
}
