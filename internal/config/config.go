// Package config loads experiment scenarios from JSON, so cluster
// configurations can be versioned and replayed with cmd/mltcpsim -config
// instead of being encoded in flags. A Scenario is fidelity-agnostic: the
// same description runs on the fluid simulator or the packet-level TCP
// stack through internal/backend.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Scenario is one complete experiment description.
type Scenario struct {
	// Name labels the scenario in output.
	Name string `json:"name"`
	// CapacityGbps is the bottleneck rate (default 50).
	CapacityGbps float64 `json:"capacity_gbps"`
	// Policy is the scheduling scheme. Congestion-control policies (reno,
	// cubic, dctcp, d2tcp, swift, and their mltcp-wrapped variants mltcp,
	// mltcp-cubic, mltcp-dctcp, mltcp-d2tcp, mltcp-swift) run at either
	// fidelity; srpt, pdq, las, and pias are fluid-only in-network
	// disciplines; centralized applies the Cassini-style offset optimizer
	// at either fidelity. Default mltcp.
	Policy string `json:"policy"`
	// DurationSec is the simulated horizon (default 120).
	DurationSec float64 `json:"duration_sec"`
	// SlopeIntercept optionally overrides Equation 2's parameters for
	// mltcp policies ([slope, intercept]).
	SlopeIntercept []float64 `json:"slope_intercept,omitempty"`
	// StaggerMS is the automatic start-time stagger between successive
	// jobs, on top of each job's OffsetMS (nil = default 10ms; 0 disables).
	StaggerMS *float64 `json:"stagger_ms,omitempty"`
	// PacketScale shrinks the packet-level rendering of the scenario:
	// the bottleneck runs at CapacityGbps×PacketScale and byte volumes are
	// scaled likewise, preserving every iteration time while keeping packet
	// counts tractable (default 0.01, the paper-testbed 1/100 scale). The
	// fluid backend ignores it.
	PacketScale float64 `json:"packet_scale,omitempty"`
	// Topology optionally replaces the single bottleneck with a cluster
	// fabric (fat-tree or leaf-spine); jobs are then placed on racks and
	// rates come from the weighted max-min allocator. Fluid backend only.
	Topology *Topology `json:"topology,omitempty"`
	// Jobs lists the workload.
	Jobs []Job `json:"jobs"`
}

// Job describes one job (or a replicated group).
type Job struct {
	// Name labels the job; replicas get -1, -2... suffixes.
	Name string `json:"name"`
	// Profile names a built-in profile (gpt3, gpt2, ...). Leave empty
	// to use ComputeMS/CommMB.
	Profile string `json:"profile,omitempty"`
	// ComputeMS and CommMB define a custom profile.
	ComputeMS float64 `json:"compute_ms,omitempty"`
	CommMB    float64 `json:"comm_mb,omitempty"`
	// OffsetMS delays the first communication phase.
	OffsetMS float64 `json:"offset_ms,omitempty"`
	// NoiseMS is the compute-time noise std.
	NoiseMS float64 `json:"noise_ms,omitempty"`
	// Count replicates the job (default 1); replicas are staggered by
	// StaggerMS each beyond OffsetMS.
	Count int `json:"count,omitempty"`
	// Seed drives the job's noise stream (replicas add their index).
	Seed uint64 `json:"seed,omitempty"`
	// SrcRack and DstRack place the job's flow on the scenario topology
	// ("rack0", "rack1", ...). Set both or neither; unplaced jobs are
	// spread deterministically. Requires Topology.
	SrcRack string `json:"src_rack,omitempty"`
	DstRack string `json:"dst_rack,omitempty"`
	// Iters caps the job at that many training iterations, after which it
	// departs the fabric (0 = run for the whole horizon). This is what
	// lets trace-driven cluster scenarios model job completion.
	Iters int `json:"iters,omitempty"`
}

// ccPolicies maps every congestion-control policy name to its base
// algorithm and whether the MLTCP wrapper applies. These are the policies
// both backends understand.
var ccPolicies = map[string]struct {
	Base  string
	MLTCP bool
}{
	"reno":        {"reno", false},
	"cubic":       {"cubic", false},
	"dctcp":       {"dctcp", false},
	"d2tcp":       {"d2tcp", false},
	"swift":       {"swift", false},
	"mltcp":       {"reno", true},
	"mltcp-reno":  {"reno", true},
	"mltcp-cubic": {"cubic", true},
	"mltcp-dctcp": {"dctcp", true},
	"mltcp-d2tcp": {"d2tcp", true},
	"mltcp-swift": {"swift", true},
}

// fluidOnlyPolicies are in-network scheduling disciplines the packet
// backend does not implement.
var fluidOnlyPolicies = map[string]bool{
	"srpt": true, "pdq": true, "las": true, "pias": true,
}

// CCPolicyNames returns the congestion-control policy names both backends
// accept, in a stable order (for error messages and usage strings).
func CCPolicyNames() []string {
	return []string{"reno", "cubic", "dctcp", "d2tcp", "swift",
		"mltcp", "mltcp-reno", "mltcp-cubic", "mltcp-dctcp", "mltcp-d2tcp", "mltcp-swift"}
}

// FluidOnlyPolicyNames returns the fluid-only scheduling policies.
func FluidOnlyPolicyNames() []string { return []string{"srpt", "pdq", "las", "pias"} }

// PolicyNames returns every accepted policy name — congestion-control
// schemes, fluid-only disciplines, and "centralized" — in a stable order.
func PolicyNames() []string {
	return append(append(CCPolicyNames(), FluidOnlyPolicyNames()...), "centralized")
}

// Load parses and validates a scenario.
func Load(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("config: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Normalize validates the scenario and fills defaulted fields in place.
// Scenarios constructed in code (rather than via Load) must be normalized
// before use; backends call it on their private copy.
func (s *Scenario) Normalize() error {
	if err := s.validate(); err != nil {
		return err
	}
	s.applyDefaults()
	return nil
}

func (s *Scenario) applyDefaults() {
	if s.CapacityGbps == 0 {
		s.CapacityGbps = 50
	}
	if s.Policy == "" {
		s.Policy = "mltcp"
	}
	if s.DurationSec == 0 {
		s.DurationSec = 120
	}
	if s.PacketScale == 0 {
		s.PacketScale = 0.01
	}
}

func (s *Scenario) validate() error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("config: scenario %q has no jobs", s.Name)
	}
	if s.CapacityGbps < 0 || s.DurationSec < 0 {
		return fmt.Errorf("config: negative capacity or duration")
	}
	if _, cc := ccPolicies[s.Policy]; !cc && !fluidOnlyPolicies[s.Policy] &&
		s.Policy != "" && s.Policy != "centralized" {
		return fmt.Errorf("config: unknown policy %q (valid: %s)",
			s.Policy, strings.Join(PolicyNames(), ", "))
	}
	if s.SlopeIntercept != nil && len(s.SlopeIntercept) != 2 {
		return fmt.Errorf("config: slope_intercept needs exactly [slope, intercept]")
	}
	if s.StaggerMS != nil && *s.StaggerMS < 0 {
		return fmt.Errorf("config: negative stagger_ms")
	}
	if s.PacketScale < 0 || s.PacketScale > 1 {
		return fmt.Errorf("config: packet_scale %v outside (0, 1]", s.PacketScale)
	}
	if s.Topology != nil {
		if err := s.Topology.validate(); err != nil {
			return err
		}
		if fluidOnlyPolicies[s.Policy] {
			return fmt.Errorf("config: policy %q cannot run on a topology (valid: %s, centralized)",
				s.Policy, strings.Join(CCPolicyNames(), ", "))
		}
	}
	known := workload.Profiles()
	for i, j := range s.Jobs {
		custom := j.ComputeMS > 0 || j.CommMB > 0
		if j.Profile == "" && !custom {
			return fmt.Errorf("config: job %d needs a profile or compute_ms+comm_mb", i)
		}
		if j.Profile != "" {
			if custom {
				return fmt.Errorf("config: job %d sets both profile and custom fields", i)
			}
			if _, ok := known[j.Profile]; !ok {
				return fmt.Errorf("config: job %d: unknown profile %q", i, j.Profile)
			}
		} else if j.ComputeMS < 0 || j.CommMB <= 0 {
			return fmt.Errorf("config: job %d: custom profile needs compute_ms >= 0 and comm_mb > 0", i)
		}
		if j.Count < 0 {
			return fmt.Errorf("config: job %d: negative count", i)
		}
		if j.Iters < 0 {
			return fmt.Errorf("config: job %d: negative iters", i)
		}
		if (j.SrcRack == "") != (j.DstRack == "") {
			return fmt.Errorf("config: job %d: src_rack and dst_rack must be set together", i)
		}
		if j.SrcRack != "" {
			if s.Topology == nil {
				return fmt.Errorf("config: job %d places racks but the scenario has no topology", i)
			}
			for _, r := range []string{j.SrcRack, j.DstRack} {
				if _, ok := s.Topology.rackIndex(r); !ok {
					return fmt.Errorf("config: job %d: unknown rack %q (valid: %s)",
						i, r, strings.Join(s.Topology.RackNames(), ", "))
				}
			}
			if j.SrcRack == j.DstRack && s.Topology.hostsPerRack() < 2 {
				return fmt.Errorf("config: job %d: same-rack placement %q needs at least two hosts per rack",
					i, j.SrcRack)
			}
		}
	}
	return nil
}

// Capacity returns the bottleneck rate.
func (s Scenario) Capacity() units.Rate { return units.Rate(s.CapacityGbps) * units.Gbps }

// Duration returns the simulated horizon.
func (s Scenario) Duration() sim.Time { return sim.FromSeconds(s.DurationSec) }

// Stagger returns the automatic inter-job start stagger.
func (s Scenario) Stagger() sim.Time {
	if s.StaggerMS == nil {
		return 10 * sim.Millisecond
	}
	return sim.FromSeconds(*s.StaggerMS / 1000)
}

// Scale returns the packet-level scale factor (1/100 by default).
func (s Scenario) Scale() float64 {
	if s.PacketScale == 0 {
		return 0.01
	}
	return s.PacketScale
}

// CC resolves the scenario's policy as a congestion-control choice:
// the base algorithm name (reno, cubic, dctcp, d2tcp, swift) and whether
// the MLTCP wrapper applies. ok is false for non-CC policies (srpt, pdq,
// las, pias, centralized).
func (s Scenario) CC() (base string, mltcp, ok bool) {
	p, ok := ccPolicies[s.Policy]
	return p.Base, p.MLTCP, ok
}

// Centralized reports whether the scenario uses the offline offset
// optimizer instead of a distributed scheme.
func (s Scenario) Centralized() bool { return s.Policy == "centralized" }

// Agg returns the aggressiveness function for mltcp policies (nil for
// others).
func (s Scenario) Agg() *core.AggFunc {
	if p, ok := ccPolicies[s.Policy]; !ok || !p.MLTCP {
		return nil
	}
	f := core.Default()
	if s.SlopeIntercept != nil {
		f = core.Linear(s.SlopeIntercept[0], s.SlopeIntercept[1])
	}
	return &f
}

// FluidPolicy returns the fluid sharing policy for the scenario.
func (s Scenario) FluidPolicy() fluid.Policy {
	switch s.Policy {
	case "srpt":
		return fluid.SRPT{Label: "pfabric"}
	case "pdq":
		return fluid.SRPT{Label: "pdq"}
	case "las":
		return fluid.LAS{}
	case "pias":
		return fluid.PIAS{Thresholds: []int64{int64(100 * units.MB), int64(1000 * units.MB)}}
	default: // every CC policy (and centralized) shares by CC weight
		if s.Topology != nil {
			// On a fabric the weighted share generalizes to weighted
			// max-min across every link (bit-identical on a single link).
			return fluid.MaxMin{}
		}
		return fluid.WeightedShare{}
	}
}

// Specs expands the scenario's job list into backend-neutral workload
// specs: replica groups are unrolled, offsets accumulate the automatic
// stagger, and every spec gets a distinct seed. Both backends compile
// their jobs from this one expansion, so fidelities agree on the workload
// by construction.
func (s Scenario) Specs() []workload.Spec {
	stagger := s.Stagger()
	var specs []workload.Spec
	for ji, j := range s.Jobs {
		count := j.Count
		if count == 0 {
			count = 1
		}
		prof, ok := workload.ProfileByName(j.Profile)
		if !ok {
			prof = workload.Profile{
				Name:        j.Name,
				ComputeTime: sim.FromSeconds(j.ComputeMS / 1000),
				CommBytes:   units.ByteCount(j.CommMB * 1e6),
			}
		}
		for c := 0; c < count; c++ {
			name := j.Name
			if name == "" {
				name = prof.Name
			}
			if count > 1 {
				name = fmt.Sprintf("%s-%d", name, c+1)
			}
			specs = append(specs, workload.Spec{
				Name:          name,
				Profile:       prof,
				StartOffset:   sim.FromSeconds(j.OffsetMS/1000) + sim.Time(len(specs))*stagger,
				NoiseStd:      sim.FromSeconds(j.NoiseMS / 1000),
				Seed:          j.Seed + uint64(ji*100+c),
				MaxIterations: j.Iters,
			})
		}
	}
	return specs
}

// BuildJobs expands the scenario into fluid jobs.
func (s Scenario) BuildJobs() []*fluid.Job {
	agg := s.Agg()
	specs := s.Specs()
	jobs := make([]*fluid.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = &fluid.Job{Spec: spec, Agg: agg, MaxIterations: spec.MaxIterations}
	}
	return jobs
}
