package config

import (
	"fmt"
	"strings"

	"mltcp/internal/netsim"
	"mltcp/internal/units"
)

// Topology kind names — the registry every kind dispatch and validation
// error draws from.
const (
	KindFatTree   = "fattree"
	KindLeafSpine = "leafspine"
)

// TopologyKinds returns the accepted topology kinds in a stable order
// (for error messages and usage strings).
func TopologyKinds() []string { return []string{KindFatTree, KindLeafSpine} }

// Topology describes a cluster fabric for a scenario. Without one, a
// scenario runs on the classic single-bottleneck (dumbbell) model; with
// one, jobs are placed onto racks, routed over ECMP-selected paths, and
// allocated by the weighted max-min fluid model.
type Topology struct {
	// Kind selects the fabric family: "fattree" or "leafspine".
	Kind string `json:"kind"`
	// K is the fat-tree arity (even, >= 4): k pods, k²/2 racks, k³/4
	// hosts. fattree only.
	K int `json:"k,omitempty"`
	// Leaves, Spines, and HostsPerLeaf size a leaf-spine fabric.
	// leafspine only.
	Leaves       int `json:"leaves,omitempty"`
	Spines       int `json:"spines,omitempty"`
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`
	// LinkGbps is the switch-to-switch link rate (default: the
	// scenario's CapacityGbps).
	LinkGbps float64 `json:"link_gbps,omitempty"`
	// HostGbps is the host uplink rate (default: LinkGbps).
	HostGbps float64 `json:"host_gbps,omitempty"`
}

// validate checks the topology description in isolation.
func (t *Topology) validate() error {
	switch t.Kind {
	case KindFatTree:
		if t.K < 4 || t.K%2 != 0 {
			return fmt.Errorf("config: fat-tree k %d must be even and >= 4", t.K)
		}
		if t.Leaves != 0 || t.Spines != 0 || t.HostsPerLeaf != 0 {
			return fmt.Errorf("config: fattree topology takes k, not leaves/spines/hosts_per_leaf")
		}
	case KindLeafSpine:
		if t.Leaves < 1 || t.Spines < 1 || t.HostsPerLeaf < 1 {
			return fmt.Errorf("config: leafspine topology needs leaves, spines, hosts_per_leaf >= 1")
		}
		if t.K != 0 {
			return fmt.Errorf("config: leafspine topology takes leaves/spines/hosts_per_leaf, not k")
		}
		if t.Leaves == 1 && t.HostsPerLeaf == 1 {
			return fmt.Errorf("config: leafspine topology needs at least two hosts")
		}
	default:
		return fmt.Errorf("config: unknown topology kind %q (valid: %s)",
			t.Kind, strings.Join(TopologyKinds(), ", "))
	}
	if t.LinkGbps < 0 || t.HostGbps < 0 {
		return fmt.Errorf("config: negative topology link rate")
	}
	return nil
}

// Racks returns the number of racks the topology exposes for placement.
func (t *Topology) Racks() int {
	if t.Kind == KindFatTree {
		return t.K * t.K / 2
	}
	return t.Leaves
}

// hostsPerRack returns the number of hosts attached to each rack.
func (t *Topology) hostsPerRack() int {
	if t.Kind == KindFatTree {
		return t.K / 2
	}
	return t.HostsPerLeaf
}

// RackNames returns the placement names jobs may reference, "rack0"
// through "rack{N-1}" — the registry topology-placement validation errors
// list.
func (t *Topology) RackNames() []string {
	names := make([]string, t.Racks())
	for i := range names {
		names[i] = fmt.Sprintf("rack%d", i)
	}
	return names
}

// rackIndex resolves a placement name against the registry.
func (t *Topology) rackIndex(name string) (int, bool) {
	// Hand-rolled "rack%d" parse: this runs per job on the placement hot
	// path, where fmt.Sscanf costs more than the rest of Placements. Only
	// canonical spellings round-trip: digits only, no leading zeros.
	const prefix = "rack"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, false
	}
	digits := name[len(prefix):]
	if len(digits) > 1 && digits[0] == '0' {
		return 0, false
	}
	i := 0
	for k := 0; k < len(digits); k++ {
		c := digits[k]
		if c < '0' || c > '9' || i > t.Racks() {
			return 0, false
		}
		i = i*10 + int(c-'0')
	}
	if i >= t.Racks() {
		return 0, false
	}
	return i, true
}

// Build constructs the fabric graph. capacity is the scenario bottleneck
// rate, the default for both link tiers.
func (t *Topology) Build(capacity units.Rate) *netsim.Fabric {
	linkRate := capacity
	if t.LinkGbps > 0 {
		linkRate = units.Rate(t.LinkGbps) * units.Gbps
	}
	hostRate := linkRate
	if t.HostGbps > 0 {
		hostRate = units.Rate(t.HostGbps) * units.Gbps
	}
	if t.Kind == KindFatTree {
		return netsim.NewFatTree(t.K, hostRate, linkRate)
	}
	return netsim.NewLeafSpine(t.Leaves, t.Spines, t.HostsPerLeaf, hostRate, linkRate)
}

// Label returns the topology's display name ("fattree-8",
// "leafspine-6x3x4").
func (t *Topology) Label() string {
	if t.Kind == KindFatTree {
		return fmt.Sprintf("fattree-%d", t.K)
	}
	return fmt.Sprintf("leafspine-%dx%dx%d", t.Leaves, t.Spines, t.HostsPerLeaf)
}

// Placement is one expanded job's rack assignment, aligned index-by-index
// with Scenario.Specs().
type Placement struct {
	// SrcRack and DstRack are rack indices into the topology.
	SrcRack, DstRack int
}

// Placements expands the scenario's job list into rack placements, one
// per Specs() entry. Jobs with explicit src_rack/dst_rack keep them
// (replicas repeat the pair); unplaced jobs are spread deterministically:
// source racks round-robin, destinations half a fabric away, so
// auto-placed cluster scenarios exercise shared and disjoint bottlenecks
// without hand-written placement. Returns nil without a topology.
func (s Scenario) Placements() []Placement {
	if s.Topology == nil {
		return nil
	}
	racks := s.Topology.Racks()
	var out []Placement
	for _, j := range s.Jobs {
		count := j.Count
		if count == 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			i := len(out)
			var p Placement
			if j.SrcRack != "" {
				p.SrcRack, _ = s.Topology.rackIndex(j.SrcRack)
				p.DstRack, _ = s.Topology.rackIndex(j.DstRack)
			} else {
				p.SrcRack = i % racks
				p.DstRack = (i + racks/2) % racks
				if p.DstRack == p.SrcRack && racks > 1 {
					p.DstRack = (p.SrcRack + 1) % racks
				}
			}
			out = append(out, p)
		}
	}
	return out
}
