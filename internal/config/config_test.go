package config

import (
	"strings"
	"testing"

	"mltcp/internal/fluid"
	"mltcp/internal/sim"
	"mltcp/internal/units"
)

const fourJobScenario = `{
  "name": "fig2",
  "policy": "mltcp",
  "jobs": [
    {"name": "J1", "profile": "gpt3"},
    {"name": "J", "profile": "gpt2", "count": 3}
  ]
}`

func TestLoadDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(fourJobScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityGbps != 50 || s.DurationSec != 120 || s.Policy != "mltcp" {
		t.Errorf("defaults not applied: %+v", s)
	}
	if s.Capacity() != 50*units.Gbps {
		t.Errorf("Capacity() = %v", s.Capacity())
	}
	if s.Duration() != 120*sim.Second {
		t.Errorf("Duration() = %v", s.Duration())
	}
}

func TestBuildJobsExpansion(t *testing.T) {
	s, err := Load(strings.NewReader(fourJobScenario))
	if err != nil {
		t.Fatal(err)
	}
	jobs := s.BuildJobs()
	if len(jobs) != 4 {
		t.Fatalf("built %d jobs, want 4", len(jobs))
	}
	if jobs[0].Spec.Name != "J1" || jobs[1].Spec.Name != "J-1" || jobs[3].Spec.Name != "J-3" {
		t.Errorf("names: %s %s %s %s", jobs[0].Spec.Name, jobs[1].Spec.Name, jobs[2].Spec.Name, jobs[3].Spec.Name)
	}
	// MLTCP policy: every job carries the aggressiveness function.
	for _, j := range jobs {
		if j.Agg == nil {
			t.Errorf("job %s has no aggressiveness function under mltcp policy", j.Spec.Name)
		}
	}
	// Replicas are staggered.
	if jobs[1].Spec.StartOffset == jobs[2].Spec.StartOffset {
		t.Error("replicas share a start offset; symmetry would stall convergence")
	}
}

func TestCustomProfile(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "jobs": [{"name": "X", "compute_ms": 900, "comm_mb": 5625}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	jobs := s.BuildJobs()
	p := jobs[0].Spec.Profile
	if p.ComputeTime != 900*sim.Millisecond {
		t.Errorf("compute = %v", p.ComputeTime)
	}
	if p.CommBytes != units.ByteCount(5625*1e6) {
		t.Errorf("bytes = %v", p.CommBytes)
	}
}

func TestSlopeInterceptOverride(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "policy": "mltcp",
	  "slope_intercept": [3.0, 0.5],
	  "jobs": [{"profile": "gpt2"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	agg := s.Agg()
	if agg == nil {
		t.Fatal("nil agg")
	}
	if got := agg.Eval(1); got != 3.5 {
		t.Errorf("F(1) = %v, want 3.5", got)
	}
}

func TestFluidPolicyMapping(t *testing.T) {
	cases := map[string]string{
		"mltcp": "weighted-share",
		"reno":  "weighted-share",
		"srpt":  "pfabric",
		"pdq":   "pdq",
		"las":   "las",
		"pias":  "pias",
	}
	for policy, want := range cases {
		s, err := Load(strings.NewReader(`{"policy": "` + policy + `", "jobs": [{"profile": "gpt2"}]}`))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if got := s.FluidPolicy().Name(); got != want {
			t.Errorf("%s -> %s, want %s", policy, got, want)
		}
		if policy != "mltcp" && s.Agg() != nil {
			t.Errorf("%s: non-mltcp policy has an aggressiveness function", policy)
		}
	}
}

func TestLoadRejects(t *testing.T) {
	cases := map[string]string{
		"no-jobs":         `{"name": "x"}`,
		"unknown-policy":  `{"policy": "bogus", "jobs": [{"profile": "gpt2"}]}`,
		"unknown-profile": `{"jobs": [{"profile": "gpt9"}]}`,
		"both-kinds":      `{"jobs": [{"profile": "gpt2", "comm_mb": 5}]}`,
		"no-kind":         `{"jobs": [{"name": "x"}]}`,
		"bad-si":          `{"slope_intercept": [1], "jobs": [{"profile": "gpt2"}]}`,
		"unknown-field":   `{"bogus": 1, "jobs": [{"profile": "gpt2"}]}`,
		"bad-custom":      `{"jobs": [{"comm_mb": -1, "compute_ms": 10}]}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid scenario", name)
		}
	}
}

func TestPolicyNamesAllAccepted(t *testing.T) {
	names := append(append([]string{}, CCPolicyNames()...), FluidOnlyPolicyNames()...)
	names = append(names, "centralized")
	for _, policy := range names {
		if _, err := Load(strings.NewReader(`{"policy": "` + policy + `", "jobs": [{"profile": "gpt2"}]}`)); err != nil {
			t.Errorf("%s: rejected: %v", policy, err)
		}
	}
}

func TestUnknownPolicyErrorListsSupported(t *testing.T) {
	_, err := Load(strings.NewReader(`{"policy": "bbr", "jobs": [{"profile": "gpt2"}]}`))
	if err == nil {
		t.Fatal("accepted unknown policy")
	}
	msg := err.Error()
	for _, want := range []string{"bbr", "mltcp-swift", "srpt", "centralized"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
}

func TestCCResolution(t *testing.T) {
	cases := map[string]struct {
		base  string
		mltcp bool
		ok    bool
	}{
		"reno":        {"reno", false, true},
		"swift":       {"swift", false, true},
		"mltcp":       {"reno", true, true},
		"mltcp-dctcp": {"dctcp", true, true},
		"srpt":        {"", false, false},
		"centralized": {"", false, false},
	}
	for policy, want := range cases {
		s := Scenario{Policy: policy}
		base, mltcp, ok := s.CC()
		if ok != want.ok || (ok && (base != want.base || mltcp != want.mltcp)) {
			t.Errorf("%s: CC() = (%q, %v, %v), want (%q, %v, %v)",
				policy, base, mltcp, ok, want.base, want.mltcp, want.ok)
		}
		if got, want := s.Centralized(), policy == "centralized"; got != want {
			t.Errorf("%s: Centralized() = %v", policy, got)
		}
	}
	// Every mltcp-* policy carries an aggressiveness function.
	for _, policy := range CCPolicyNames() {
		s := Scenario{Policy: policy}
		if wantAgg := strings.HasPrefix(policy, "mltcp"); (s.Agg() != nil) != wantAgg {
			t.Errorf("%s: Agg() nil-ness wrong", policy)
		}
	}
}

func TestPacketScaleValidation(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"packet_scale": 1.5, "jobs": [{"profile": "gpt2"}]}`)); err == nil {
		t.Error("accepted packet_scale > 1")
	}
	if _, err := Load(strings.NewReader(`{"packet_scale": -0.1, "jobs": [{"profile": "gpt2"}]}`)); err == nil {
		t.Error("accepted negative packet_scale")
	}
	s, err := Load(strings.NewReader(`{"packet_scale": 0.5, "jobs": [{"profile": "gpt2"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale() != 0.5 {
		t.Errorf("Scale() = %v, want 0.5", s.Scale())
	}
	if got := (Scenario{}).Scale(); got != 0.01 {
		t.Errorf("default Scale() = %v, want 0.01", got)
	}
}

func TestStaggerValidation(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"stagger_ms": -1, "jobs": [{"profile": "gpt2"}]}`)); err == nil {
		t.Error("accepted negative stagger_ms")
	}
	s, err := Load(strings.NewReader(`{"stagger_ms": 0, "jobs": [{"profile": "gpt2", "count": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Stagger() != 0 {
		t.Errorf("explicit stagger_ms 0: Stagger() = %v, want 0", s.Stagger())
	}
	if got := (Scenario{}).Stagger(); got != 10*sim.Millisecond {
		t.Errorf("default Stagger() = %v, want 10ms", got)
	}
}

func TestSpecsExpansion(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "jobs": [
	    {"name": "G", "profile": "gpt2", "count": 2, "seed": 7},
	    {"name": "X", "compute_ms": 900, "comm_mb": 625, "offset_ms": 5}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	if len(specs) != 3 {
		t.Fatalf("expanded %d specs, want 3", len(specs))
	}
	// The stagger accumulates across groups: the custom job is the third
	// spec, so its offset is its own 5ms plus two staggers.
	if want := 5*sim.Millisecond + 2*s.Stagger(); specs[2].StartOffset != want {
		t.Errorf("custom job offset = %v, want %v", specs[2].StartOffset, want)
	}
	// Seeds are distinct across every spec.
	seen := map[uint64]string{}
	for _, spec := range specs {
		if prev, dup := seen[spec.Seed]; dup {
			t.Errorf("specs %s and %s share seed %d", prev, spec.Name, spec.Seed)
		}
		seen[spec.Seed] = spec.Name
	}
	if specs[2].Profile.ComputeTime != 900*sim.Millisecond ||
		specs[2].Profile.CommBytes != units.ByteCount(625*1e6) {
		t.Errorf("custom profile: %+v", specs[2].Profile)
	}
}

func TestScenarioEndToEnd(t *testing.T) {
	// A loaded scenario must actually run and reproduce the Fig. 2c
	// outcome.
	s, err := Load(strings.NewReader(fourJobScenario))
	if err != nil {
		t.Fatal(err)
	}
	jobs := s.BuildJobs()
	f := fluid.New(fluid.Config{Capacity: s.Capacity(), Policy: s.FluidPolicy()}, jobs)
	f.Run(s.Duration())
	for _, j := range jobs {
		ideal := j.Spec.Profile.IdealIterTime(s.Capacity())
		avg := j.AvgIterTime(30)
		if diff := avg.Seconds()/ideal.Seconds() - 1; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s: %v vs ideal %v", j.Spec.Name, avg, ideal)
		}
	}
}
