package config

import (
	"reflect"
	"strings"
	"testing"

	"mltcp/internal/units"
)

const clusterScenario = `{
  "name": "cluster",
  "policy": "mltcp",
  "topology": {"kind": "fattree", "k": 4},
  "jobs": [
    {"name": "A", "profile": "gpt3", "src_rack": "rack0", "dst_rack": "rack7", "iters": 40},
    {"name": "B", "profile": "gpt2", "count": 3}
  ]
}`

// TestTopologyRejects covers every malformed-topology branch; each case
// also asserts the error names what it should (in particular that
// registry-backed branches list the valid names).
func TestTopologyRejects(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		mention []string
	}{
		{
			"unknown-kind",
			`{"topology": {"kind": "torus", "k": 4}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"torus", "fattree", "leafspine"},
		},
		{
			"odd-k",
			`{"topology": {"kind": "fattree", "k": 5}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"even", ">= 4"},
		},
		{
			"small-k",
			`{"topology": {"kind": "fattree", "k": 2}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"even", ">= 4"},
		},
		{
			"fattree-with-leaves",
			`{"topology": {"kind": "fattree", "k": 4, "leaves": 3}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"fattree", "leaves"},
		},
		{
			"leafspine-missing-dims",
			`{"topology": {"kind": "leafspine", "leaves": 4}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"leafspine", "spines"},
		},
		{
			"leafspine-with-k",
			`{"topology": {"kind": "leafspine", "leaves": 4, "spines": 2, "hosts_per_leaf": 2, "k": 4}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"leafspine", "not k"},
		},
		{
			"leafspine-single-host",
			`{"topology": {"kind": "leafspine", "leaves": 1, "spines": 1, "hosts_per_leaf": 1}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"two hosts"},
		},
		{
			"negative-link-rate",
			`{"topology": {"kind": "fattree", "k": 4, "link_gbps": -1}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"negative"},
		},
		{
			"fluid-only-policy-on-topology",
			`{"policy": "srpt", "topology": {"kind": "fattree", "k": 4}, "jobs": [{"profile": "gpt2"}]}`,
			[]string{"srpt", "mltcp-swift", "centralized"},
		},
		{
			"unknown-rack",
			`{"topology": {"kind": "fattree", "k": 4}, "jobs": [{"profile": "gpt2", "src_rack": "rack99", "dst_rack": "rack0"}]}`,
			[]string{"rack99", "rack0", "rack7"},
		},
		{
			"malformed-rack-name",
			`{"topology": {"kind": "fattree", "k": 4}, "jobs": [{"profile": "gpt2", "src_rack": "tor3", "dst_rack": "rack0"}]}`,
			[]string{"tor3", "rack0", "rack7"},
		},
		{
			"src-without-dst",
			`{"topology": {"kind": "fattree", "k": 4}, "jobs": [{"profile": "gpt2", "src_rack": "rack0"}]}`,
			[]string{"together"},
		},
		{
			"placement-without-topology",
			`{"jobs": [{"profile": "gpt2", "src_rack": "rack0", "dst_rack": "rack1"}]}`,
			[]string{"no topology"},
		},
		{
			"same-rack-single-host",
			`{"topology": {"kind": "leafspine", "leaves": 4, "spines": 2, "hosts_per_leaf": 1}, "jobs": [{"profile": "gpt2", "src_rack": "rack1", "dst_rack": "rack1"}]}`,
			[]string{"two hosts per rack"},
		},
		{
			"negative-iters",
			`{"jobs": [{"profile": "gpt2", "iters": -3}]}`,
			[]string{"iters"},
		},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted invalid scenario", c.name)
			continue
		}
		for _, want := range c.mention {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, want)
			}
		}
	}
}

func TestTopologyRegistries(t *testing.T) {
	if got := TopologyKinds(); !reflect.DeepEqual(got, []string{"fattree", "leafspine"}) {
		t.Errorf("TopologyKinds() = %v", got)
	}
	ft := &Topology{Kind: KindFatTree, K: 4}
	if got := ft.Racks(); got != 8 {
		t.Errorf("fattree-4 racks = %d, want 8", got)
	}
	names := ft.RackNames()
	if len(names) != 8 || names[0] != "rack0" || names[7] != "rack7" {
		t.Errorf("RackNames() = %v", names)
	}
	ls := &Topology{Kind: KindLeafSpine, Leaves: 6, Spines: 3, HostsPerLeaf: 4}
	if got := ls.Racks(); got != 6 {
		t.Errorf("leafspine racks = %d, want 6", got)
	}
	if ft.Label() != "fattree-4" || ls.Label() != "leafspine-6x3x4" {
		t.Errorf("labels: %s, %s", ft.Label(), ls.Label())
	}
	// rackIndex is strict: no prefixes, suffixes, or out-of-range indices.
	for name, ok := range map[string]bool{
		"rack0": true, "rack7": true, "rack8": false, "rack-1": false,
		"rack07": false, "rack0x": false, "r0": false, "": false,
	} {
		if _, got := ft.rackIndex(name); got != ok {
			t.Errorf("rackIndex(%q) ok = %v, want %v", name, got, ok)
		}
	}
}

func TestTopologyBuild(t *testing.T) {
	s, err := Load(strings.NewReader(clusterScenario))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Topology.Build(s.Capacity())
	if f.Kind != "fattree-4" {
		t.Errorf("fabric kind = %s", f.Kind)
	}
	if got := len(f.Hosts()); got != 16 {
		t.Errorf("hosts = %d, want 16", got)
	}
	// Default rates come from the scenario capacity.
	if got := f.Links()[0].Capacity; got != 50*units.Gbps {
		t.Errorf("default link rate = %v, want 50 Gbps", got)
	}
	// Explicit overrides take precedence, host tier defaulting to link tier.
	ov := &Topology{Kind: KindLeafSpine, Leaves: 2, Spines: 2, HostsPerLeaf: 2, LinkGbps: 200, HostGbps: 100}
	fo := ov.Build(s.Capacity())
	if got := fo.Oversubscription(); got != 0.5 { //lint:allow simunits 2×100/(2×200) is exact in binary floating point
		t.Errorf("oversubscription = %v, want 0.5", got)
	}
}

func TestTopologyFluidPolicy(t *testing.T) {
	s, err := Load(strings.NewReader(clusterScenario))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FluidPolicy().Name(); got != "maxmin" {
		t.Errorf("topology FluidPolicy = %s, want maxmin", got)
	}
	if s.Agg() == nil {
		t.Error("mltcp on a topology lost its aggressiveness function")
	}
	// Without a topology the policy mapping is untouched.
	s.Topology = nil
	if got := s.FluidPolicy().Name(); got != "weighted-share" {
		t.Errorf("dumbbell FluidPolicy = %s, want weighted-share", got)
	}
}

func TestPlacements(t *testing.T) {
	s, err := Load(strings.NewReader(clusterScenario))
	if err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	got := s.Placements()
	if len(got) != len(specs) {
		t.Fatalf("%d placements for %d specs", len(got), len(specs))
	}
	// Explicit placement honored; replicas spread round-robin with the
	// destination half a fabric away.
	if got[0] != (Placement{SrcRack: 0, DstRack: 7}) {
		t.Errorf("explicit placement = %+v", got[0])
	}
	for i := 1; i < 4; i++ {
		want := Placement{SrcRack: i % 8, DstRack: (i + 4) % 8}
		if got[i] != want {
			t.Errorf("auto placement %d = %+v, want %+v", i, got[i], want)
		}
	}
	// Placements is a pure function of the scenario.
	if again := s.Placements(); !reflect.DeepEqual(got, again) {
		t.Error("Placements() not deterministic")
	}
	// Iters threads through to the spec.
	if specs[0].MaxIterations != 40 {
		t.Errorf("spec MaxIterations = %d, want 40", specs[0].MaxIterations)
	}
	if specs[1].MaxIterations != 0 {
		t.Errorf("uncapped spec MaxIterations = %d, want 0", specs[1].MaxIterations)
	}
	// No topology: no placements.
	if p := (Scenario{Jobs: s.Jobs}).Placements(); p != nil {
		t.Errorf("dumbbell Placements() = %v, want nil", p)
	}
}
