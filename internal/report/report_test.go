package report

import (
	"strings"
	"testing"

	"mltcp/internal/experiments"
	"mltcp/internal/sim"
)

func TestFormatFig2(t *testing.T) {
	res := experiments.Fig2Result{
		Scheme: "mltcp-reno",
		Jobs: []experiments.JobStats{
			{Name: "J1", AvgIter: 1200 * sim.Millisecond, Ideal: 1200 * sim.Millisecond, Slowdown: 1.0},
			{Name: "J2", AvgIter: 1800 * sim.Millisecond, Ideal: 1800 * sim.Millisecond, Slowdown: 1.0},
		},
		ConvergedAt: 11,
	}
	out := FormatFig2(res)
	for _, want := range []string{"### Figure 2 — mltcp-reno", "| J1 | 1.200 s | 1.200 s | 1.00× |",
		"iteration 11"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatFig2NoConvergenceLine(t *testing.T) {
	out := FormatFig2(experiments.Fig2Result{Scheme: "srpt", ConvergedAt: -1})
	if strings.Contains(out, "Converged") {
		t.Error("convergence line printed for ConvergedAt = -1")
	}
}

func TestFormatFig3(t *testing.T) {
	res := experiments.Fig3Result{
		Functions:  []string{"F1", "F5"},
		IterTimeMS: [][]float64{{2000, 1800}, {2200, 2200}},
		IdealMS:    1800,
	}
	out := FormatFig3(res)
	if !strings.Contains(out, "| F1 | 1800 ms | converged |") {
		t.Errorf("F1 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "| F5 | 2200 ms | did not converge |") {
		t.Errorf("F5 row wrong:\n%s", out)
	}
}

func TestFormatFig4Fig5Fig6(t *testing.T) {
	f4 := FormatFig4(experiments.Fig4Result{TailSpeedup: 1.52, MedianSpeedup: 1.38})
	if !strings.Contains(f4, "**1.52×**") {
		t.Errorf("fig4: %s", f4)
	}
	f5 := FormatFig5(experiments.Fig5())
	if !strings.Contains(f5, "0.90 s") {
		t.Errorf("fig5: %s", f5)
	}
	f6 := FormatFig6(experiments.Fig6Result{InterleavedAt: 11, DeltaSec: []float64{0.01, 0.5}})
	if !strings.Contains(f6, "iteration 11") || !strings.Contains(f6, "0.50 s") {
		t.Errorf("fig6: %s", f6)
	}
}

func TestFormatNoiseAndFairness(t *testing.T) {
	n := FormatNoise(experiments.NoiseResult{
		SigmaMS: []float64{10}, MeasuredMS: []float64{15.5}, BoundMS: []float64{22.9},
	})
	if !strings.Contains(n, "| 10 | 15.5 | 22.9 |") {
		t.Errorf("noise: %s", n)
	}
	f := FormatFairness(experiments.FairnessResult{
		LossProbs: []float64{0.002}, RenoMbps: []float64{33.3}, MLTCPMbps: []float64{47.7},
		RenoExponent: -0.49, MLTCPExponent: -0.47, AdvantageRatio: 1.45,
		ShareRatio: 1.36, RenoShareOfFair: 0.82,
	})
	for _, want := range []string{"| 0.002 | 33.3 | 47.7 |", "Reno -0.49", "1.45×", "82%"} {
		if !strings.Contains(f, want) {
			t.Errorf("fairness missing %q:\n%s", want, f)
		}
	}
}

func TestFormatFCT(t *testing.T) {
	out := FormatFCT([]experiments.FCTResult{{
		Scheme: "pfabric", Completed: 86, ShortMeanMS: 3.2, ShortP99MS: 12.4, LargeMeanMS: 2102,
	}})
	if !strings.Contains(out, "| pfabric | 86 | 3.2 | 12.4 | 2102 |") {
		t.Errorf("fct: %s", out)
	}
}

func TestMarkdownTableShape(t *testing.T) {
	out := table([]string{"a", "b"}, [][]string{{"1", "2"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if lines[1] != "| --- | --- |" {
		t.Errorf("separator = %q", lines[1])
	}
}

// TestFormatDeterministic locks in the determinism audit of this package:
// every formatter is a pure function of its result struct (no map
// iteration, no wall clock), so repeated calls must agree byte for byte.
func TestFormatDeterministic(t *testing.T) {
	fig2 := experiments.Fig2Result{
		Scheme: "mltcp-reno",
		Jobs: []experiments.JobStats{
			{Name: "J1", AvgIter: 1200 * sim.Millisecond, Ideal: 1200 * sim.Millisecond, Slowdown: 1.0},
			{Name: "J2", AvgIter: 1800 * sim.Millisecond, Ideal: 1500 * sim.Millisecond, Slowdown: 1.2},
		},
		ConvergedAt: 7,
	}
	noise := experiments.NoiseResult{
		SigmaMS:    []float64{10, 50},
		MeasuredMS: []float64{12.5, 61.25},
		BoundMS:    []float64{25.1, 125.5},
	}
	fct := []experiments.FCTResult{
		{Scheme: "reno", Completed: 812, ShortMeanMS: 3.2, ShortP99MS: 14.7, LargeMeanMS: 120},
		{Scheme: "dctcp", Completed: 820, ShortMeanMS: 2.1, ShortP99MS: 9.3, LargeMeanMS: 118},
	}
	renders := []func() string{
		func() string { return FormatFig2(fig2) },
		func() string { return FormatNoise(noise) },
		func() string { return FormatFCT(fct) },
	}
	for i, render := range renders {
		first := render()
		for rep := 0; rep < 5; rep++ {
			if got := render(); got != first {
				t.Errorf("renderer %d: output changed between calls:\nfirst:\n%s\nthen:\n%s", i, first, got)
			}
		}
	}
}
