// Package place compiles a scenario's expanded job specs onto its cluster
// fabric: rack placement, host-slot assignment, seeded ECMP path
// selection, and per-path bottleneck capacities. The compilation is a pure
// function of (scenario, seed) — the harness determinism contract extends
// to fabric placement — and is shared by every consumer that needs to know
// where flows land: the fluid backend renders the paths into its max-min
// network, and the learned backend derives shared-bottleneck features from
// them without importing the simulator.
package place

import (
	"mltcp/internal/config"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Cluster is a topology scenario's compiled placement: the fabric graph
// and one placed ECMP path per expanded job spec.
type Cluster struct {
	// Fab is the built fabric graph.
	Fab *netsim.Fabric
	// Placements[i] is spec i's rack assignment.
	Placements []config.Placement
	// Paths[i] is spec i's directed link IDs; PathNames the corresponding
	// link names; PathCaps the narrowest capacity along the path.
	Paths     [][]int
	PathNames [][]string
	PathCaps  []units.Rate
	// LinkCaps and LinkNames describe every fabric link by ID, in fabric
	// order — the inputs a link-indexed allocator needs.
	LinkCaps  []units.Rate
	LinkNames []string
}

// IdealCap returns the capacity job i's isolated iteration time is
// computed against: the narrowest link on its path, or the scenario
// bottleneck without a topology. Nil-safe so the dumbbell code path needs
// no branches.
func (c *Cluster) IdealCap(i int, fallback units.Rate) units.Rate {
	if c == nil {
		return fallback
	}
	return c.PathCaps[i]
}

// Compile places the expanded specs onto the scenario topology. Host
// slots within each rack are assigned round-robin in spec order, and each
// flow's ECMP choice derives from its run-scoped job seed
// (sim.DeriveSeed(sim.DeriveSeed(seed, spec.Seed), 1), matching the
// backend's per-job stream derivation), so two calls with equal arguments
// compile identical placements on any goroutine. Returns nil for
// non-topology scenarios.
func Compile(s *config.Scenario, specs []workload.Spec, seed uint64) *Cluster {
	if s.Topology == nil {
		return nil
	}
	fab := s.Topology.Build(s.Capacity())
	links := fab.Links()
	caps := make([]units.Rate, len(links))
	names := make([]string, len(links))
	for l, lk := range links {
		caps[l], names[l] = lk.Capacity, lk.Name
	}
	c := &Cluster{
		Fab:        fab,
		Placements: s.Placements(),
		Paths:      make([][]int, len(specs)),
		PathNames:  make([][]string, len(specs)),
		PathCaps:   make([]units.Rate, len(specs)),
		LinkCaps:   caps,
		LinkNames:  names,
	}
	srcSlot := make([]int, fab.Racks())
	dstSlot := make([]int, fab.Racks())
	for i, spec := range specs {
		p := c.Placements[i]
		srcHosts := fab.RackHosts(p.SrcRack)
		dstHosts := fab.RackHosts(p.DstRack)
		src := srcHosts[srcSlot[p.SrcRack]%len(srcHosts)]
		srcSlot[p.SrcRack]++
		dst := dstHosts[dstSlot[p.DstRack]%len(dstHosts)]
		dstSlot[p.DstRack]++
		if dst == src {
			// Same-rack placement: config validation guarantees at least
			// two hosts per rack, so the next slot is a different host.
			dst = dstHosts[dstSlot[p.DstRack]%len(dstHosts)]
			dstSlot[p.DstRack]++
		}
		choice := sim.DeriveSeed(sim.DeriveSeed(seed, spec.Seed), 1)
		c.Paths[i] = fab.Path(src, dst, choice)
		pn := make([]string, len(c.Paths[i]))
		narrow := caps[c.Paths[i][0]]
		for k, l := range c.Paths[i] {
			pn[k] = names[l]
			if caps[l] < narrow {
				narrow = caps[l]
			}
		}
		c.PathNames[i] = pn
		c.PathCaps[i] = narrow
	}
	return c
}
