// Package multires implements §5's generalization of MLTCP beyond the
// network: the aggressiveness function F(bytes_ratio) becomes F(progress)
// for any divisible resource (CPU cores in the paper's example). Periodic
// tasks alternate a resource phase — demanding WorkUnits of a shared
// resource with finite capacity — and an idle phase; the scheduler assigns
// each active task a share of the resource proportional to F(progress),
// which slides competing tasks into an interleaved schedule exactly as the
// network variant does.
package multires

import (
	"fmt"
	"math"

	"mltcp/internal/core"
	"mltcp/internal/sim"
)

// Task is one periodic resource consumer.
type Task struct {
	// Name labels the task.
	Name string
	// WorkUnits is the resource-time needed per iteration (e.g.
	// core-seconds).
	WorkUnits float64
	// IdleTime is the off-resource phase per iteration (e.g. the I/O or
	// network phase of a CPU-bound loop).
	IdleTime sim.Time
	// StartOffset delays the first resource phase.
	StartOffset sim.Time
	// Agg is the aggressiveness function; nil means plain fair sharing.
	Agg *core.AggFunc

	phase     int // 0 idle-before-start, 1 using, 2 idle
	remaining float64
	progress  float64
	wakeAt    sim.Time

	// PhaseStarts and PhaseEnds record each resource phase;
	// IterDurations[i] = PhaseStarts[i+1] − PhaseStarts[i].
	PhaseStarts   []sim.Time
	PhaseEnds     []sim.Time
	IterDurations []sim.Time
}

// Progress returns the completed fraction of the current resource phase.
func (t *Task) Progress() float64 {
	return math.Min(1, t.progress/t.WorkUnits)
}

// Weight returns F(progress), or 1 without an aggressiveness function.
func (t *Task) Weight() float64 {
	if t.Agg == nil {
		return 1
	}
	return t.Agg.Eval(t.Progress())
}

// IdealIterTime returns the task's iteration time with the whole resource
// to itself.
func (t *Task) IdealIterTime(capacity float64) sim.Time {
	return t.IdleTime + sim.FromSeconds(t.WorkUnits/capacity)
}

// AvgIterTime averages iteration durations after skipping the first skip.
func (t *Task) AvgIterTime(skip int) sim.Time {
	if skip >= len(t.IterDurations) {
		return 0
	}
	var sum sim.Time
	for _, d := range t.IterDurations[skip:] {
		sum += d
	}
	return sum / sim.Time(len(t.IterDurations)-skip)
}

// Scheduler runs tasks over one shared resource.
type Scheduler struct {
	capacity float64 // resource units per second (e.g. cores)
	step     sim.Time
	tasks    []*Task
	now      sim.Time
}

// NewScheduler creates a scheduler for a resource with the given capacity
// in units per second.
func NewScheduler(capacity float64, tasks []*Task) *Scheduler {
	if capacity <= 0 {
		panic("multires: capacity must be positive")
	}
	if len(tasks) == 0 {
		panic("multires: no tasks")
	}
	for _, t := range tasks {
		if t.WorkUnits <= 0 || t.IdleTime < 0 {
			panic(fmt.Sprintf("multires: task %s has invalid shape", t.Name))
		}
		t.phase = 0
		t.wakeAt = t.StartOffset
	}
	return &Scheduler{capacity: capacity, step: sim.Millisecond, tasks: tasks}
}

// Run advances to the given absolute time.
func (s *Scheduler) Run(until sim.Time) {
	for s.now < until {
		for _, t := range s.tasks {
			if t.phase != 1 && t.wakeAt <= s.now {
				t.phase = 1
				t.remaining = t.WorkUnits
				t.progress = 0
				t.PhaseStarts = append(t.PhaseStarts, s.now)
				if n := len(t.PhaseStarts); n >= 2 {
					t.IterDurations = append(t.IterDurations, t.PhaseStarts[n-1]-t.PhaseStarts[n-2])
				}
			}
		}
		var active []*Task
		var wsum float64
		for _, t := range s.tasks {
			if t.phase == 1 {
				active = append(active, t)
				wsum += t.Weight()
			}
		}
		dt := until - s.now
		if len(active) > 0 && s.step < dt {
			dt = s.step
		}
		for _, t := range s.tasks {
			if t.phase != 1 {
				if w := t.wakeAt - s.now; w > 0 && w < dt {
					dt = w
				}
			}
		}
		if len(active) == 0 {
			if dt < 1 {
				dt = 1
			}
			s.now += dt
			continue
		}
		// Constrain dt to the earliest completion.
		for _, t := range active {
			rate := s.capacity * t.Weight() / wsum
			if finish := sim.FromSeconds(t.remaining / rate); finish >= 1 && finish < dt {
				dt = finish
			}
		}
		if dt < 1 {
			dt = 1
		}
		for _, t := range active {
			rate := s.capacity * t.Weight() / wsum
			done := rate * dt.Seconds()
			if done >= t.remaining-1e-9 {
				done = t.remaining
			}
			t.remaining -= done
			t.progress += done
			if t.remaining <= 1e-9 {
				t.PhaseEnds = append(t.PhaseEnds, s.now+dt)
				t.phase = 2
				t.wakeAt = s.now + dt + t.IdleTime
			}
		}
		s.now += dt
	}
	s.now = until
}
