package multires

import (
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/sim"
)

func agg() *core.AggFunc {
	f := core.Default()
	return &f
}

// cpuTask: 8-core machine, task needs 3.2 core-seconds (0.4s at full
// machine) then idles 0.8s: ideal iteration 1.2s.
func cpuTask(name string, offset sim.Time, a *core.AggFunc) *Task {
	return &Task{
		Name:        name,
		WorkUnits:   3.2,
		IdleTime:    800 * sim.Millisecond,
		StartOffset: offset,
		Agg:         a,
	}
}

func TestIsolatedTaskIdealIteration(t *testing.T) {
	task := cpuTask("t1", 0, nil)
	s := NewScheduler(8, []*Task{task})
	s.Run(10 * sim.Second)
	ideal := task.IdealIterTime(8)
	if ideal != 1200*sim.Millisecond {
		t.Fatalf("ideal = %v, want 1.2s", ideal)
	}
	if len(task.IterDurations) < 4 {
		t.Fatalf("too few iterations: %d", len(task.IterDurations))
	}
	for i, d := range task.IterDurations {
		if d < ideal-2*sim.Millisecond || d > ideal+2*sim.Millisecond {
			t.Errorf("iteration %d = %v, want %v", i, d, ideal)
		}
	}
}

func TestProgressWeightedTasksInterleave(t *testing.T) {
	// §5: two tasks with a = 1/3 each; progress-based weights should
	// slide them apart until resource phases are disjoint, restoring
	// the ideal iteration time — the multi-resource analogue of Fig. 6.
	t1 := cpuTask("t1", 0, agg())
	t2 := cpuTask("t2", 10*sim.Millisecond, agg())
	s := NewScheduler(8, []*Task{t1, t2})
	s.Run(120 * sim.Second)
	ideal := t1.IdealIterTime(8)
	for _, task := range []*Task{t1, t2} {
		n := len(task.IterDurations)
		if n < 40 {
			t.Fatalf("%s: %d iterations", task.Name, n)
		}
		var sum sim.Time
		for _, d := range task.IterDurations[n-10:] {
			sum += d
		}
		avg := sum / 10
		if avg > ideal+ideal/20 {
			t.Errorf("%s steady iteration = %v, want within 5%% of %v", task.Name, avg, ideal)
		}
	}
}

func TestFairShareTasksStayCongested(t *testing.T) {
	t1 := cpuTask("t1", 0, nil)
	t2 := cpuTask("t2", 10*sim.Millisecond, nil)
	s := NewScheduler(8, []*Task{t1, t2})
	s.Run(120 * sim.Second)
	n := len(t1.IterDurations)
	var sum sim.Time
	for _, d := range t1.IterDurations[n-10:] {
		sum += d
	}
	avg := sum / 10
	// Fair sharing: resource phase takes 0.8s at half speed ->
	// iteration 1.6s, far above the 1.2s ideal.
	if avg < 1500*sim.Millisecond {
		t.Errorf("fair-share iteration = %v, expected to stay ~1.6s", avg)
	}
}

func TestSchedulerValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-capacity": func() { NewScheduler(0, []*Task{cpuTask("x", 0, nil)}) },
		"no-tasks":      func() { NewScheduler(1, nil) },
		"bad-task":      func() { NewScheduler(1, []*Task{{Name: "x", WorkUnits: 0}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProgressAndWeight(t *testing.T) {
	task := cpuTask("t", 0, agg())
	task.phase = 1
	task.remaining = 3.2
	task.progress = 0
	if w := task.Weight(); w != 0.25 {
		t.Errorf("weight at progress 0 = %v, want 0.25", w)
	}
	task.progress = 3.2
	if w := task.Weight(); w != 2.0 {
		t.Errorf("weight at progress 1 = %v, want 2", w)
	}
	plain := cpuTask("p", 0, nil)
	if plain.Weight() != 1 {
		t.Errorf("plain weight = %v, want 1", plain.Weight())
	}
}
