// Package units defines the physical quantities shared across the
// simulator: link rates in bits per second and data sizes in bytes, plus the
// arithmetic that connects them to simulated time (how long a transfer takes
// on a link, how many bytes fit in an interval).
package units

import (
	"fmt"
	"math"
	"time"

	"mltcp/internal/sim"
)

// Rate is a data rate in bits per second.
type Rate float64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1e3 * BitPerSecond
	Mbps              = 1e6 * BitPerSecond
	Gbps              = 1e9 * BitPerSecond
)

// String formats the rate with a binary-network-engineering unit
// ("50Gbps", "100Mbps", "9.6Kbps").
func (r Rate) String() string {
	abs := math.Abs(float64(r))
	switch {
	case abs >= 1e9:
		return trimUnit(float64(r)/1e9, "Gbps")
	case abs >= 1e6:
		return trimUnit(float64(r)/1e6, "Mbps")
	case abs >= 1e3:
		return trimUnit(float64(r)/1e3, "Kbps")
	default:
		return trimUnit(float64(r), "bps")
	}
}

func trimUnit(v float64, unit string) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d%s", int64(v), unit)
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}

// TransmissionTime returns how long it takes to serialize bytes onto a link
// of this rate. It panics for non-positive rates, which are always
// configuration errors.
//
// The panic formatting lives in a dedicated always-panicking helper so
// this function stays allocation-free on its live path: it sits on the
// per-packet dispatch chain of //hot netsim code, and the fact layer
// exempts functions that panic on every path.
func (r Rate) TransmissionTime(bytes int64) sim.Time {
	if r <= 0 {
		panicNonPositiveRate(r)
	}
	return sim.Time(math.Round(float64(bytes) * 8 / float64(r) * float64(sim.Second)))
}

func panicNonPositiveRate(r Rate) {
	panic(fmt.Sprintf("units: transmission time at non-positive rate %v", r))
}

// BytesIn returns how many whole bytes this rate delivers in interval d.
func (r Rate) BytesIn(d sim.Time) int64 {
	if d <= 0 {
		return 0
	}
	return int64(float64(r) / 8 * d.Seconds())
}

// DurationMS returns d as a floating-point number of milliseconds, the
// unit CLI flags and report columns use for human-facing durations.
func DurationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// ByteCount is a data size in bytes.
type ByteCount int64

// Common sizes (decimal, as used for network transfer volumes).
const (
	Byte ByteCount = 1
	KB             = 1000 * Byte
	MB             = 1000 * KB
	GB             = 1000 * MB
)

// String formats the size with a decimal unit ("3.75GB", "1500B").
func (b ByteCount) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= GB:
		return trimUnit(float64(b)/float64(GB), "GB")
	case abs >= MB:
		return trimUnit(float64(b)/float64(MB), "MB")
	case abs >= KB:
		return trimUnit(float64(b)/float64(KB), "KB")
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}
