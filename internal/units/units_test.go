package units

import (
	"testing"
	"testing/quick"
	"time"

	"mltcp/internal/sim"
)

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{50 * Gbps, "50Gbps"},
		{100 * Mbps, "100Mbps"},
		{9600 * BitPerSecond, "9.6Kbps"},
		{1.5 * Gbps, "1.5Gbps"},
		{500 * BitPerSecond, "500bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestByteCountString(t *testing.T) {
	cases := []struct {
		b    ByteCount
		want string
	}{
		{3750 * MB, "3.75GB"},
		{1500 * Byte, "1.5KB"},
		{42 * Byte, "42B"},
		{2 * GB, "2GB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	// 1500 bytes at 1Gbps = 12000 bits / 1e9 bps = 12µs.
	if got := (1 * Gbps).TransmissionTime(1500); got != 12*sim.Microsecond {
		t.Errorf("1500B at 1Gbps = %v, want 12µs", got)
	}
	// 3.75GB at 50Gbps = 30e9 bits / 50e9 = 0.6s.
	if got := (50 * Gbps).TransmissionTime(int64(3750 * MB)); got != 600*sim.Millisecond {
		t.Errorf("3.75GB at 50Gbps = %v, want 600ms", got)
	}
}

func TestTransmissionTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero rate")
		}
	}()
	Rate(0).TransmissionTime(1)
}

func TestBytesIn(t *testing.T) {
	if got := (1 * Gbps).BytesIn(sim.Second); got != 125_000_000 {
		t.Errorf("1Gbps for 1s = %d bytes, want 125e6", got)
	}
	if got := (1 * Gbps).BytesIn(0); got != 0 {
		t.Errorf("zero interval = %d bytes, want 0", got)
	}
	if got := (1 * Gbps).BytesIn(-sim.Second); got != 0 {
		t.Errorf("negative interval = %d bytes, want 0", got)
	}
}

// Property: TransmissionTime and BytesIn are approximate inverses — sending
// for exactly the transmission time of n bytes yields ~n bytes.
func TestRateRoundTripProperty(t *testing.T) {
	prop := func(kb uint16) bool {
		bytes := int64(kb)*1000 + 1
		r := 10 * Gbps
		d := r.TransmissionTime(bytes)
		got := r.BytesIn(d)
		diff := got - bytes
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // rounding slack of a couple of bytes
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationMS(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{1500 * time.Millisecond, 1500},
		{250 * time.Microsecond, 0.25},
		{0, 0},
		{-2 * time.Millisecond, -2},
	}
	for _, c := range cases {
		if got := DurationMS(c.d); got != c.want {
			t.Errorf("DurationMS(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}
