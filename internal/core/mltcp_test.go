package core

import (
	"testing"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

type fakeWindow struct {
	cwnd, ssthresh float64
}

func (f *fakeWindow) Cwnd() float64         { return f.cwnd }
func (f *fakeWindow) SetCwnd(c float64)     { f.cwnd = c }
func (f *fakeWindow) Ssthresh() float64     { return f.ssthresh }
func (f *fakeWindow) SetSsthresh(s float64) { f.ssthresh = s }
func (f *fakeWindow) SRTT() sim.Time        { return 0 }
func (f *fakeWindow) InSlowStart() bool     { return f.cwnd < f.ssthresh }

func TestMLTCPRenoImplementsEquationOne(t *testing.T) {
	// With ratio r, the CA increment must be F(r) * num_acks / cwnd.
	tr := NewTracker(1000, sim.Second)
	m := Wrap(tcp.NewReno(), Default(), tr)
	w := &fakeWindow{cwnd: 10, ssthresh: 5} // congestion avoidance

	// First ACK delivers 500 bytes: ratio 0.5, F = 1.125.
	m.OnAck(w, tcp.AckEvent{Now: sim.Millisecond, AckedBytes: 500, AckedPackets: 1})
	want := 10 + 1.125*1.0/10
	if !near(w.cwnd, want) {
		t.Errorf("cwnd = %v, want %v", w.cwnd, want)
	}
	if !near(m.BytesRatio(), 0.5) {
		t.Errorf("ratio = %v, want 0.5", m.BytesRatio())
	}

	// Second ACK completes the iteration's bytes: ratio 1, F = 2.
	before := w.cwnd
	m.OnAck(w, tcp.AckEvent{Now: 2 * sim.Millisecond, AckedBytes: 500, AckedPackets: 2})
	want = before + 2.0*2.0/before
	if !near(w.cwnd, want) {
		t.Errorf("cwnd = %v, want %v", w.cwnd, want)
	}
}

func TestMLTCPLeavesSlowStartAlone(t *testing.T) {
	tr := NewTracker(1000, sim.Second)
	m := Wrap(tcp.NewReno(), Default(), tr)
	w := &fakeWindow{cwnd: 4, ssthresh: 100}
	m.OnAck(w, tcp.AckEvent{Now: sim.Millisecond, AckedBytes: 900, AckedPackets: 2, InSlowStart: true})
	if w.cwnd != 6 {
		t.Errorf("slow-start cwnd = %v, want 6 (unscaled)", w.cwnd)
	}
	// But the tracker still saw the bytes.
	if !near(tr.BytesRatio(), 0.9) {
		t.Errorf("tracker ratio = %v, want 0.9", tr.BytesRatio())
	}
}

func TestMLTCPDecreaseUnmodified(t *testing.T) {
	m := NewReno(1000, sim.Second)
	w := &fakeWindow{cwnd: 10, ssthresh: 100}
	m.OnPacketLoss(w, 0)
	if !near(w.cwnd, 5) || !near(w.ssthresh, 5) {
		t.Errorf("loss: cwnd=%v ssthresh=%v, want 5/5", w.cwnd, w.ssthresh)
	}
	m.OnTimeout(w, 0)
	if w.cwnd != 1 {
		t.Errorf("timeout cwnd = %v, want 1", w.cwnd)
	}
}

func TestMLTCPName(t *testing.T) {
	if got := NewReno(1, sim.Second).Name(); got != "mltcp-reno" {
		t.Errorf("Name() = %q", got)
	}
	m := Wrap(tcp.NewCubic(), Default(), NewTracker(1, sim.Second))
	if got := m.Name(); got != "mltcp-cubic" {
		t.Errorf("Name() = %q", got)
	}
}

func TestWrapValidation(t *testing.T) {
	tr := NewTracker(1, sim.Second)
	for name, fn := range map[string]func(){
		"nil-base": func() { Wrap(nil, Default(), tr) },
		"nil-eval": func() { Wrap(tcp.NewReno(), AggFunc{}, tr) },
		"nil-src":  func() { Wrap(tcp.NewReno(), Default(), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Integration: two MLTCP-Reno flows with different bytes_ratio compete on a
// packet-level bottleneck; the flow further along its iteration must claim
// more bandwidth — MLTCP's central mechanism (§3.1: "the flow closest to
// completing its iteration receives a larger share").
func TestMLTCPUnequalSharingByProgress(t *testing.T) {
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        1 * units.Gbps,
		BottleneckRate:  200 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	const iterBytes = 40_000_000
	comp := 100 * sim.Millisecond

	// Flow A is pre-charged to appear 90% through its iteration; flow B
	// starts at zero. Both then send the same volume simultaneously.
	trA := NewTracker(iterBytes, comp)
	trA.OnAck(0, iterBytes*9/10)
	trB := NewTracker(iterBytes, comp)

	ccA := Wrap(tcp.NewReno(), Default(), trA)
	ccB := Wrap(tcp.NewReno(), Default(), trB)
	fA := tcp.NewFlow(eng, 1, net.Left[0], net.Right[0], ccA, tcp.Config{})
	fB := tcp.NewFlow(eng, 2, net.Left[1], net.Right[1], ccB, tcp.Config{})

	fA.Sender.Write(iterBytes / 10)
	fB.Sender.Write(iterBytes)
	eng.RunUntil(400 * sim.Millisecond)

	bA := float64(fA.Sender.TotalBytesAcked())
	bB := float64(fB.Sender.TotalBytesAcked())
	if bA == 0 || bB == 0 {
		t.Fatalf("no progress: A=%v B=%v", bA, bB)
	}
	// A (ratio ~0.9+, F~1.8-2) must outpace B (ratio starting 0,
	// F~0.25+) early on. Compare before A drains.
	perA := bA / (float64(iterBytes) / 10)
	perB := bB / float64(iterBytes)
	if perA <= perB {
		t.Errorf("high-ratio flow not favored: A progress %.2f vs B %.2f", perA, perB)
	}
}
