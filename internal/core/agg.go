// Package core implements MLTCP, the paper's primary contribution: a
// technique that augments a congestion-control algorithm so its window
// increase is scaled by a bandwidth aggressiveness function
// F(bytes_ratio), where bytes_ratio is the fraction of the current training
// iteration's bytes already delivered (Algorithm 1 in the paper). Flows
// closer to finishing their iteration become more aggressive, which shifts
// subsequent iterations' start times and slides competing DNN jobs into an
// interleaved schedule without a centralized scheduler.
package core

import (
	"fmt"
	"math"
)

// AggFunc is a bandwidth aggressiveness function: it maps
// bytes_ratio ∈ [0,1] to a scaling factor applied to the congestion-window
// increment. Section 3.1 requires (i) a range wide enough to absorb noise,
// (ii) a non-negative derivative, and (iii) all flows using the same
// function; requirement (ii) is what separates the paper's working
// functions F1–F4 from the failing F5–F6.
type AggFunc struct {
	// Name labels the function in traces and figure legends.
	Name string
	// Eval computes F(bytes_ratio). Callers clamp the argument to [0,1].
	Eval func(r float64) float64
}

// Linear returns the paper's chosen form (Equation 2):
// F(r) = Slope·r + Intercept. The paper uses Slope=1.75, Intercept=0.25,
// giving the range [0.25, 2].
func Linear(slope, intercept float64) AggFunc {
	return AggFunc{
		Name: fmt.Sprintf("linear(%.3g,%.3g)", slope, intercept),
		Eval: func(r float64) float64 { return slope*r + intercept },
	}
}

// Paper defaults for Equation 2.
const (
	DefaultSlope     = 1.75
	DefaultIntercept = 0.25
)

// Default returns the paper's F1: 1.75·r + 0.25.
func Default() AggFunc { return Linear(DefaultSlope, DefaultIntercept) }

// PaperFunctions returns the six functions compared in Figure 3, in order.
// All share the range [0.25, 2]; F1–F4 are nondecreasing (and converge),
// F5–F6 are decreasing (and do not).
func PaperFunctions() []AggFunc {
	return []AggFunc{
		{Name: "F1", Eval: func(r float64) float64 { return 1.75*r + 0.25 }},
		{Name: "F2", Eval: func(r float64) float64 { return 1.75*r*r + 0.25 }},
		{Name: "F3", Eval: func(r float64) float64 { return 1 / (-3.5*r + 4) }},
		{Name: "F4", Eval: func(r float64) float64 { return -1.75*r*r + 3.5*r + 0.25 }},
		{Name: "F5", Eval: func(r float64) float64 { return -1.75*r + 2 }},
		{Name: "F6", Eval: func(r float64) float64 { return -1.75*math.Pow(r, 4) + 2 }},
	}
}

// IsNondecreasing numerically checks requirement (ii) of §3.1 on [0,1].
func (f AggFunc) IsNondecreasing() bool {
	const steps = 1000
	prev := f.Eval(0)
	for i := 1; i <= steps; i++ {
		v := f.Eval(float64(i) / steps)
		if v < prev-1e-12 {
			return false
		}
		prev = v
	}
	return true
}

// Range numerically computes [min, max] of f on [0,1].
func (f AggFunc) Range() (lo, hi float64) {
	const steps = 1000
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i <= steps; i++ {
		v := f.Eval(float64(i) / steps)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
