package core

import (
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/telemetry"
)

// RatioSource supplies bytes_ratio as ACKs arrive: either a Tracker with
// known parameters or a Learner that is still inferring them.
type RatioSource interface {
	// OnAck records a delivery and returns the current bytes_ratio.
	OnAck(now sim.Time, ackedBytes int64) float64
}

// MLTCP augments a base congestion-control algorithm per the paper: during
// congestion avoidance, whatever window increment the base algorithm makes
// is scaled by F(bytes_ratio). For Reno this yields exactly Equation 1,
//
//	cwnd ← cwnd + F(bytes_ratio) × num_acks/cwnd
//
// and the same wrapping applies to CUBIC or DCTCP growth, matching §6's
// note that "other congestion control schemes are augmented in a similar
// way". Slow start and all decrease logic (loss, timeout, ECN reaction)
// are left untouched — MLTCP only modulates how aggressively a flow climbs.
type MLTCP struct {
	base tcp.CongestionControl
	agg  AggFunc
	src  RatioSource

	lastRatio float64

	rec  *telemetry.Recorder
	flow int
}

// Wrap builds an MLTCP-augmented version of base. src is the flow's
// Tracker (known TOTAL_BYTES/COMP_TIME) or Learner (auto-detected).
func Wrap(base tcp.CongestionControl, agg AggFunc, src RatioSource) *MLTCP {
	if base == nil {
		panic("core: nil base congestion control")
	}
	if agg.Eval == nil {
		panic("core: aggressiveness function with nil Eval")
	}
	if src == nil {
		panic("core: nil ratio source")
	}
	return &MLTCP{base: base, agg: agg, src: src}
}

// NewReno returns MLTCP-Reno with the paper's default linear F and known
// iteration parameters — the configuration evaluated throughout the paper.
func NewReno(totalBytes int64, compTime sim.Time) *MLTCP {
	return Wrap(tcp.NewReno(), Default(), NewTracker(totalBytes, compTime))
}

// NewRenoAutoLearn returns MLTCP-Reno that learns TOTAL_BYTES and COMP_TIME
// from its first iterations, as the paper's kernel module does.
func NewRenoAutoLearn() *MLTCP {
	return Wrap(tcp.NewReno(), Default(), NewLearner(0, 0))
}

// Name implements tcp.CongestionControl.
func (m *MLTCP) Name() string { return "mltcp-" + m.base.Name() }

// Base returns the wrapped algorithm.
func (m *MLTCP) Base() tcp.CongestionControl { return m.base }

// BytesRatio returns the most recent bytes_ratio (for traces and tests).
func (m *MLTCP) BytesRatio() float64 { return m.lastRatio }

// Instrument attaches a telemetry recorder: every ACK's aggressiveness
// evaluation (bytes_ratio, F(bytes_ratio)) is emitted as a rate-limited
// KindAgg event tagged with the given flow ID. A nil recorder disables
// emission.
func (m *MLTCP) Instrument(rec *telemetry.Recorder, flow int) {
	m.rec = rec
	m.flow = flow
}

// OnInit implements tcp.CongestionControl.
func (m *MLTCP) OnInit(w tcp.Window) { m.base.OnInit(w) }

// OnAck implements tcp.CongestionControl. The tracker is fed on every ACK
// (bytes delivered during slow start count toward the iteration too), but
// only the congestion-avoidance increment is scaled: Algorithm 1 hooks the
// congestion_avoidance path, and scaling slow start's geometric growth
// would change behaviour the paper leaves alone.
func (m *MLTCP) OnAck(w tcp.Window, ev tcp.AckEvent) {
	ratio := m.src.OnAck(ev.Now, ev.AckedBytes)
	if ratio < 0 {
		ratio = 0
	} else if ratio > 1 {
		ratio = 1
	}
	m.lastRatio = ratio
	if m.rec.Enabled() {
		m.rec.AggEval(ev.Now, m.flow, ratio, m.agg.Eval(ratio))
	}

	if ev.InSlowStart {
		m.base.OnAck(w, ev)
		return
	}
	before := w.Cwnd()
	m.base.OnAck(w, ev)
	after := w.Cwnd()
	if after > before {
		w.SetCwnd(before + m.agg.Eval(ratio)*(after-before))
	}
}

// OnPacketLoss implements tcp.CongestionControl.
func (m *MLTCP) OnPacketLoss(w tcp.Window, now sim.Time) { m.base.OnPacketLoss(w, now) }

// OnTimeout implements tcp.CongestionControl.
func (m *MLTCP) OnTimeout(w tcp.Window, now sim.Time) { m.base.OnTimeout(w, now) }
