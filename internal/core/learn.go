package core

import (
	"sort"

	"mltcp/internal/sim"
)

// Learner infers TOTAL_BYTES and COMP_TIME from the flow's own ACK stream,
// as the paper's implementation does: "we automatically learn these values
// by measuring the total amount of data and computation time during the
// first few iterations. We measure the computation time by detecting gaps
// in the ack arrivals that exceed several round-trip times."
//
// While learning, the flow behaves like its unmodified base algorithm
// (aggressiveness 1). Once Observations complete iterations have been seen,
// the learner builds a Tracker with the median per-iteration byte count and
// a COMP_TIME threshold of half the smallest observed gap — below every
// real compute phase, above in-iteration stalls.
type Learner struct {
	// GapThreshold is the ACK gap treated as an iteration boundary
	// during learning ("several RTTs"). It must exceed any in-iteration
	// stall (retransmission timeouts included) and be below the real
	// compute time.
	GapThreshold sim.Time
	// Observations is how many complete iterations to observe before
	// locking in parameters (default 2).
	Observations int

	prevAck   sim.Time
	sawAck    bool
	iterBytes int64

	byteSamples []int64
	gapSamples  []sim.Time

	tracker *Tracker
}

// DefaultLearnGap is the default boundary threshold during learning. The
// simulated DNN compute phases are hundreds of milliseconds; RTTs and RTOs
// are a few tens of milliseconds at most.
const DefaultLearnGap = 50 * sim.Millisecond

// NewLearner returns a learner with the given gap threshold (0 uses
// DefaultLearnGap) observing the given number of iterations (0 uses 2).
func NewLearner(gap sim.Time, observations int) *Learner {
	if gap <= 0 {
		gap = DefaultLearnGap
	}
	if observations <= 0 {
		observations = 2
	}
	return &Learner{GapThreshold: gap, Observations: observations}
}

// Learned reports whether parameters have been locked in.
func (l *Learner) Learned() bool { return l.tracker != nil }

// Tracker returns the learned tracker, or nil before learning completes.
func (l *Learner) Tracker() *Tracker { return l.tracker }

// OnAck feeds one ACK into the learner. Once learning completes the call is
// forwarded to the learned tracker, so MLTCP can call OnAck unconditionally
// and use the returned ratio (1.0 means "not learned yet, behave like the
// base algorithm").
func (l *Learner) OnAck(now sim.Time, ackedBytes int64) float64 {
	if l.tracker != nil {
		return l.tracker.OnAck(now, ackedBytes)
	}
	if l.sawAck && now-l.prevAck > l.GapThreshold {
		// Iteration boundary observed.
		if l.iterBytes > 0 {
			l.byteSamples = append(l.byteSamples, l.iterBytes)
			l.gapSamples = append(l.gapSamples, now-l.prevAck)
		}
		l.iterBytes = 0
		if len(l.byteSamples) >= l.Observations {
			l.finish()
		}
	}
	l.iterBytes += ackedBytes
	l.prevAck = now
	l.sawAck = true
	return 1.0
}

func (l *Learner) finish() {
	bytes := append([]int64(nil), l.byteSamples...)
	sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
	total := bytes[len(bytes)/2]

	minGap := l.gapSamples[0]
	for _, g := range l.gapSamples[1:] {
		if g < minGap {
			minGap = g
		}
	}
	comp := minGap / 2
	if comp < l.GapThreshold {
		// Never set the boundary threshold below the learning
		// threshold: anything shorter was already not a boundary.
		comp = l.GapThreshold
	}
	l.tracker = NewTracker(total, comp)
}
