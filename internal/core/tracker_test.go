package core

import (
	"testing"

	"mltcp/internal/sim"
)

func TestTrackerRatioWithinIteration(t *testing.T) {
	tr := NewTracker(1000, 100*sim.Millisecond)
	r := tr.OnAck(sim.Millisecond, 250)
	if !near(r, 0.25) {
		t.Errorf("ratio = %v, want 0.25", r)
	}
	r = tr.OnAck(2*sim.Millisecond, 250)
	if !near(r, 0.5) {
		t.Errorf("ratio = %v, want 0.5", r)
	}
	r = tr.OnAck(3*sim.Millisecond, 1000)
	if r != 1 {
		t.Errorf("ratio = %v, want clamp at 1", r)
	}
}

func TestTrackerIterationBoundaryReset(t *testing.T) {
	tr := NewTracker(1000, 100*sim.Millisecond)
	tr.OnAck(sim.Millisecond, 800)
	// Gap larger than COMP_TIME: new iteration, full reset.
	r := tr.OnAck(500*sim.Millisecond, 300)
	if r != 0 {
		t.Errorf("ratio after boundary = %v, want 0 (paper line 13 resets)", r)
	}
	if tr.BytesSent() != 0 {
		t.Errorf("bytesSent after boundary = %d, want 0", tr.BytesSent())
	}
	if tr.Iterations() != 1 {
		t.Errorf("iterations = %d, want 1", tr.Iterations())
	}
	// Subsequent ACKs accumulate again.
	r = tr.OnAck(501*sim.Millisecond, 500)
	if !near(r, 0.5) {
		t.Errorf("ratio = %v, want 0.5", r)
	}
}

func TestTrackerGapEqualToCompTimeIsNotBoundary(t *testing.T) {
	tr := NewTracker(1000, 100*sim.Millisecond)
	tr.OnAck(0, 100)
	r := tr.OnAck(100*sim.Millisecond, 100) // exactly COMP_TIME: not a boundary
	if !near(r, 0.2) {
		t.Errorf("ratio = %v, want 0.2 (no reset at gap == COMP_TIME)", r)
	}
}

func TestTrackerFirstAckNeverBoundary(t *testing.T) {
	tr := NewTracker(1000, sim.Millisecond)
	// First ACK arrives "late" relative to time zero; must not reset.
	r := tr.OnAck(10*sim.Second, 500)
	if !near(r, 0.5) {
		t.Errorf("first-ack ratio = %v, want 0.5", r)
	}
	if tr.Iterations() != 0 {
		t.Errorf("iterations = %d, want 0", tr.Iterations())
	}
}

func TestTrackerValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-bytes": func() { NewTracker(0, sim.Second) },
		"zero-comp":  func() { NewTracker(100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLearnerLocksInParameters(t *testing.T) {
	l := NewLearner(10*sim.Millisecond, 2)
	now := sim.Time(0)
	feedIteration := func(bytes int64) {
		for sent := int64(0); sent < bytes; sent += 1000 {
			if r := l.OnAck(now, 1000); !l.Learned() && r != 1.0 {
				t.Fatalf("learning-phase ratio = %v, want 1.0", r)
			}
			now += sim.Millisecond
		}
		now += 200 * sim.Millisecond // compute phase
	}
	feedIteration(50_000) // partial first iteration (ends at first gap)
	feedIteration(50_000) // observation 1
	feedIteration(50_000) // observation 2
	// The boundary after the second full iteration triggers finish.
	l.OnAck(now, 1000)
	if !l.Learned() {
		t.Fatal("learner did not lock in after 2 observed iterations")
	}
	tr := l.Tracker()
	if tr.TotalBytes() != 50_000 {
		t.Errorf("learned TOTAL_BYTES = %d, want 50000", tr.TotalBytes())
	}
	// COMP_TIME should be ~half the 200ms gap.
	if tr.CompTime() < 50*sim.Millisecond || tr.CompTime() > 150*sim.Millisecond {
		t.Errorf("learned COMP_TIME = %v, want ~100ms", tr.CompTime())
	}
}

func TestLearnerForwardsAfterLearning(t *testing.T) {
	l := NewLearner(10*sim.Millisecond, 1)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		l.OnAck(now, 1000)
		now += sim.Millisecond
	}
	now += 100 * sim.Millisecond
	l.OnAck(now, 1000) // boundary: one observation -> learned
	if !l.Learned() {
		t.Fatal("not learned after 1 observation")
	}
	// Now ratios come from the tracker.
	now += sim.Millisecond
	r := l.OnAck(now, 5000)
	if r <= 0 || r > 1 {
		t.Errorf("post-learning ratio = %v, want (0,1]", r)
	}
}

func TestLearnerDefaults(t *testing.T) {
	l := NewLearner(0, 0)
	if l.GapThreshold != DefaultLearnGap {
		t.Errorf("default gap = %v", l.GapThreshold)
	}
	if l.Observations != 2 {
		t.Errorf("default observations = %d", l.Observations)
	}
}
