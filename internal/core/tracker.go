package core

import (
	"fmt"

	"mltcp/internal/sim"
)

// Tracker maintains the per-flow state of Algorithm 1 (MLTCP-Reno): the
// bytes successfully delivered in the current training iteration, the
// resulting bytes_ratio, and iteration-boundary detection from gaps in the
// ACK arrival stream (a gap longer than COMP_TIME means the job went back
// to computing, so the next ACK opens a new iteration).
type Tracker struct {
	totalBytes int64    // TOTAL_BYTES: bytes per iteration
	compTime   sim.Time // COMP_TIME: gap threshold for iteration boundaries

	bytesSent    int64
	bytesRatio   float64
	prevAckStamp sim.Time
	sawAck       bool

	iterations int
}

// NewTracker initializes Algorithm 1's state (the INITIALIZE procedure).
// totalBytes is the job's per-iteration communication volume; compTime is
// the ACK-gap threshold marking an iteration boundary. Both must be
// positive; jobs that cannot provide them up front use a Learner instead.
func NewTracker(totalBytes int64, compTime sim.Time) *Tracker {
	if totalBytes <= 0 {
		panic(fmt.Sprintf("core: TOTAL_BYTES must be positive, got %d", totalBytes))
	}
	if compTime <= 0 {
		panic(fmt.Sprintf("core: COMP_TIME must be positive, got %v", compTime))
	}
	return &Tracker{totalBytes: totalBytes, compTime: compTime}
}

// OnAck advances the tracker for an ACK delivering ackedBytes at time now
// and returns the current bytes_ratio. It mirrors Algorithm 1's
// CONGESTION_AVOIDANCE bookkeeping (lines 7–17): the byte counter is
// charged first; if the gap since the previous ACK exceeds COMP_TIME the
// state resets (new iteration, ratio 0), otherwise the ratio is
// min(1, bytes_sent/TOTAL_BYTES).
func (t *Tracker) OnAck(now sim.Time, ackedBytes int64) float64 {
	t.bytesSent += ackedBytes
	if t.sawAck && now-t.prevAckStamp > t.compTime {
		// Start of a new training iteration: reset, exactly as the
		// paper's line 13 (the boundary ACK's bytes are dropped too).
		t.bytesSent = 0
		t.bytesRatio = 0
		t.iterations++
	} else {
		t.bytesRatio = minf(1, float64(t.bytesSent)/float64(t.totalBytes))
	}
	t.prevAckStamp = now
	t.sawAck = true
	return t.bytesRatio
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// BytesRatio returns the current bytes_ratio without advancing state.
func (t *Tracker) BytesRatio() float64 { return t.bytesRatio }

// BytesSent returns the bytes delivered in the current iteration.
func (t *Tracker) BytesSent() int64 { return t.bytesSent }

// TotalBytes returns the configured TOTAL_BYTES.
func (t *Tracker) TotalBytes() int64 { return t.totalBytes }

// CompTime returns the configured COMP_TIME gap threshold.
func (t *Tracker) CompTime() sim.Time { return t.compTime }

// Iterations returns how many iteration boundaries have been detected.
func (t *Tracker) Iterations() int { return t.iterations }
