package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearDefaults(t *testing.T) {
	f := Default()
	if got := f.Eval(0); got != 0.25 {
		t.Errorf("F(0) = %v, want 0.25", got)
	}
	if got := f.Eval(1); got != 2.0 {
		t.Errorf("F(1) = %v, want 2", got)
	}
	if got := f.Eval(0.5); !near(got, 1.125) {
		t.Errorf("F(0.5) = %v, want 1.125", got)
	}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPaperFunctionsShareRange(t *testing.T) {
	// §3.1: "All these functions have the same range (0.25 - 2)".
	for _, f := range PaperFunctions() {
		lo, hi := f.Range()
		if !near(lo, 0.25) || !near(hi, 2.0) {
			t.Errorf("%s: range [%v, %v], want [0.25, 2]", f.Name, lo, hi)
		}
	}
}

func TestPaperFunctionsMonotonicity(t *testing.T) {
	// F1..F4 increasing, F5, F6 decreasing.
	want := map[string]bool{
		"F1": true, "F2": true, "F3": true, "F4": true,
		"F5": false, "F6": false,
	}
	for _, f := range PaperFunctions() {
		if got := f.IsNondecreasing(); got != want[f.Name] {
			t.Errorf("%s.IsNondecreasing() = %v, want %v", f.Name, got, want[f.Name])
		}
	}
}

func TestPaperFunctionValues(t *testing.T) {
	fs := PaperFunctions()
	// Spot-check the formulas at r = 0.5.
	cases := map[string]float64{
		"F1": 1.75*0.5 + 0.25,
		"F2": 1.75*0.25 + 0.25,
		"F3": 1 / (-3.5*0.5 + 4),
		"F4": -1.75*0.25 + 3.5*0.5 + 0.25,
		"F5": -1.75*0.5 + 2,
		"F6": -1.75*math.Pow(0.5, 4) + 2,
	}
	for _, f := range fs {
		if got := f.Eval(0.5); !near(got, cases[f.Name]) {
			t.Errorf("%s(0.5) = %v, want %v", f.Name, got, cases[f.Name])
		}
	}
}

// Property: any Linear with positive slope is nondecreasing and has range
// [intercept, slope+intercept].
func TestLinearProperty(t *testing.T) {
	prop := func(s8, i8 uint8) bool {
		slope := float64(s8)/64 + 0.01
		intercept := float64(i8) / 128
		f := Linear(slope, intercept)
		if !f.IsNondecreasing() {
			return false
		}
		lo, hi := f.Range()
		return near(lo, intercept) && near(hi, slope+intercept)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
