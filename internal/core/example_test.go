package core_test

import (
	"fmt"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// Build MLTCP-Reno for a job that sends 1 GB per training iteration with
// compute gaps detectable at a 100ms ACK-silence threshold.
func ExampleWrap() {
	cc := core.Wrap(tcp.NewReno(), core.Default(),
		core.NewTracker(1_000_000_000, 100*sim.Millisecond))
	fmt.Println(cc.Name())
	// Output: mltcp-reno
}

// Equation 2 with the paper's constants spans [0.25, 2]: a flow that has
// sent nothing grows at a quarter of Reno's pace; a flow about to finish
// its iteration grows at double.
func ExampleLinear() {
	f := core.Linear(core.DefaultSlope, core.DefaultIntercept)
	fmt.Printf("F(0)=%.2f F(0.5)=%.3f F(1)=%.2f nondecreasing=%v\n",
		f.Eval(0), f.Eval(0.5), f.Eval(1), f.IsNondecreasing())
	// Output: F(0)=0.25 F(0.5)=1.125 F(1)=2.00 nondecreasing=true
}

// The tracker follows Algorithm 1: bytes accumulate into bytes_ratio and a
// long ACK gap resets state for the next iteration.
func ExampleTracker() {
	tr := core.NewTracker(1000, 100*sim.Millisecond)
	fmt.Printf("%.2f\n", tr.OnAck(1*sim.Millisecond, 250))
	fmt.Printf("%.2f\n", tr.OnAck(2*sim.Millisecond, 500))
	// A gap longer than COMP_TIME: new iteration, ratio resets.
	fmt.Printf("%.2f\n", tr.OnAck(500*sim.Millisecond, 100))
	// Output:
	// 0.25
	// 0.75
	// 0.00
}
