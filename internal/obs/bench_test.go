package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func samplePoint(name string) BenchPoint {
	return BenchPoint{
		Name:            name,
		Backend:         "packet",
		Jobs:            2,
		DurationSec:     20,
		Reps:            3,
		WallNSMin:       1_000_000_000,
		WallNSMean:      1_100_000_000,
		Events:          500_000,
		EventsPerSec:    500_000,
		SimWallRatio:    20,
		AllocsPerOp:     10_000,
		AllocBytesPerOp: 4_000_000,
		PeakHeapBytes:   8_000_000,
		MaxHeapDepth:    120,
		InterleavedAt:   4,
		OverlapQuarters: []float64{0.8, 0.3, 0.05, 0},
	}
}

func sampleFile() *BenchFile {
	return &BenchFile{
		Schema:     BenchSchema,
		Suite:      "test-suite",
		GoVersion:  "go-test",
		GOMAXPROCS: 8,
		Points:     []BenchPoint{samplePoint("packet/two-gpt2"), samplePoint("fluid/two-gpt2")},
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := WriteBench(&buf, f); err != nil {
		t.Fatal(err)
	}
	written := append([]byte(nil), buf.Bytes()...)
	got, err := ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", f, got)
	}

	// Equal values must serialize to equal bytes — the deterministic-schema
	// property that makes BENCH.json diffable.
	var again bytes.Buffer
	if err := WriteBench(&again, sampleFile()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(written, again.Bytes()) {
		t.Fatal("equal files serialized to different bytes")
	}
}

func TestReadBenchRejectsWrongSchema(t *testing.T) {
	if _, err := ReadBench(strings.NewReader(`{"schema": 999, "points": []}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ReadBench(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestCompareIdenticalFilesPass(t *testing.T) {
	rep, err := Compare(sampleFile(), sampleFile(), 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || len(rep.Warnings) != 0 {
		t.Fatalf("identical files reported %d regressions, %d warnings",
			len(rep.Regressions), len(rep.Warnings))
	}
	if len(rep.Deltas) != 2*len(benchMetrics) {
		t.Fatalf("got %d deltas, want %d", len(rep.Deltas), 2*len(benchMetrics))
	}
}

func TestCompareFlagsRegressionPastGate(t *testing.T) {
	oldF, newF := sampleFile(), sampleFile()
	newF.Points[0].WallNSMin = oldF.Points[0].WallNSMin * 13 / 10 // +30%
	rep, err := Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("+30% wall time passed the 20% gate")
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "wall_ns_min" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if got := rep.Regressions[0].Change; math.Abs(got-0.30) > 0.01 {
		t.Fatalf("change = %v, want ~0.30", got)
	}
}

func TestCompareWarnsBetweenThresholds(t *testing.T) {
	oldF, newF := sampleFile(), sampleFile()
	newF.Points[1].AllocsPerOp = oldF.Points[1].AllocsPerOp * 115 / 100 // +15%
	rep, err := Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatal("+15% allocs failed the 20% gate")
	}
	if len(rep.Warnings) != 1 || rep.Warnings[0].Metric != "allocs_per_op" {
		t.Fatalf("warnings = %+v", rep.Warnings)
	}
}

func TestCompareHigherIsBetterDirection(t *testing.T) {
	oldF, newF := sampleFile(), sampleFile()
	// events_per_sec falling 30% is a (reported, ungated) regression
	// direction; rising 30% is an improvement.
	newF.Points[0].EventsPerSec = oldF.Points[0].EventsPerSec * 0.7
	rep, err := Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatal("ungated metric gated the comparison")
	}
	var found bool
	for _, d := range rep.Deltas {
		if d.Point == newF.Points[0].Name && d.Metric == "events_per_sec" {
			found = true
			if math.Abs(d.Change-0.30) > 0.01 {
				t.Fatalf("falling throughput change = %v, want ~+0.30", d.Change)
			}
		}
	}
	if !found {
		t.Fatal("events_per_sec delta missing")
	}
}

func TestCompareInterleaveNeverIsWorst(t *testing.T) {
	oldF, newF := sampleFile(), sampleFile()
	newF.Points[0].InterleavedAt = -1
	rep, err := Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("convergence lost (interleaved_at -1) passed the gate")
	}

	// The reverse — from never to converged — is an improvement.
	oldF.Points[0].InterleavedAt = -1
	newF.Points[0].InterleavedAt = 4
	rep, err = Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatal("convergence gained reported as regression")
	}
}

func TestCompareMissingPointFails(t *testing.T) {
	oldF, newF := sampleFile(), sampleFile()
	newF.Points = newF.Points[:1]
	rep, err := Compare(oldF, newF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || len(rep.MissingPoints) != 1 {
		t.Fatalf("dropped point not flagged: %+v", rep)
	}

	// Extra points in new are informational only.
	rep, err = Compare(newF, oldF, 0.10, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || len(rep.NewPoints) != 1 {
		t.Fatalf("new point mishandled: %+v", rep)
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	a, b := sampleFile(), sampleFile()
	b.Schema = 2
	if _, err := Compare(a, b, 0.10, 0.20); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	b.Schema = BenchSchema
	if _, err := Compare(a, b, 0.30, 0.20); err == nil {
		t.Fatal("warn > gate accepted")
	}
	if _, err := Compare(a, b, 0, 0.20); err == nil {
		t.Fatal("zero warn accepted")
	}
}

func TestRegressionChangeZeroBaseline(t *testing.T) {
	if got := regressionChange(0, 0, false); got != 0 {
		t.Fatalf("0→0 change = %v", got)
	}
	if got := regressionChange(0, 5, false); !math.IsInf(got, 1) {
		t.Fatalf("0→5 change = %v, want +Inf", got)
	}
}
