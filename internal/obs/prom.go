package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter accumulates Prometheus text-exposition-format output
// (version 0.0.4): "# HELP"/"# TYPE" family headers followed by
// samples. Callers drive it with sorted data; the writer itself never
// reorders, so output is a byte-deterministic function of the call
// sequence.
type PromWriter struct {
	sb strings.Builder
}

// Label is one sample label. Slices of labels are emitted in the order
// given — pre-sort them for canonical output.
type Label struct {
	Name, Value string
}

// Family opens a metric family: typ is one of "counter", "gauge",
// "histogram", "summary", or "untyped".
func (p *PromWriter) Family(name, typ, help string) {
	if help != "" {
		p.sb.WriteString("# HELP ")
		p.sb.WriteString(name)
		p.sb.WriteByte(' ')
		p.sb.WriteString(escapeHelp(help))
		p.sb.WriteByte('\n')
	}
	p.sb.WriteString("# TYPE ")
	p.sb.WriteString(name)
	p.sb.WriteByte(' ')
	p.sb.WriteString(typ)
	p.sb.WriteByte('\n')
}

// Value emits one sample.
func (p *PromWriter) Value(name string, labels []Label, v float64) {
	p.sb.WriteString(name)
	p.writeLabels(labels)
	p.sb.WriteByte(' ')
	p.sb.WriteString(formatPromValue(v))
	p.sb.WriteByte('\n')
}

// Histogram emits one histogram series: cumulative bucket counts with
// "le" labels (buckets[i] counts observations in (bounds[i-1],
// bounds[i]], non-cumulative, as internal/telemetry snapshots them), a
// +Inf bucket, and the _sum/_count samples.
func (p *PromWriter) Histogram(name string, labels []Label, bounds []float64, counts []int64, count int64, sum float64) {
	var cum int64
	for i, bound := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		le := append(append([]Label(nil), labels...), Label{"le", formatPromValue(bound)})
		p.Value(name+"_bucket", le, float64(cum))
	}
	le := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	p.Value(name+"_bucket", le, float64(count))
	p.Value(name+"_sum", labels, sum)
	p.Value(name+"_count", labels, float64(count))
}

// WriteTo flushes the accumulated exposition.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, p.sb.String())
	return int64(n), err
}

// String returns the accumulated exposition.
func (p *PromWriter) String() string { return p.sb.String() }

func (p *PromWriter) writeLabels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	p.sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			p.sb.WriteByte(',')
		}
		p.sb.WriteString(l.Name)
		p.sb.WriteString(`="`)
		p.sb.WriteString(escapeLabel(l.Value))
		p.sb.WriteByte('"')
	}
	p.sb.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatPromValue renders a sample value, with the format's spellings
// for infinities and NaN.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizePromName maps an arbitrary metric name ("telemetry.limiter_drops")
// onto the exposition grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every
// other byte with '_'.
func SanitizePromName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// runAggregate sums one backend's RunStats for exposition.
type runAggregate struct {
	runs           int64
	events         uint64
	wallSeconds    float64
	simSeconds     float64
	allocs         uint64
	allocBytes     uint64
	packetsSent    int64
	packetsDropped int64
	bytesSent      int64
	peakHeapBytes  uint64
	maxHeapDepth   int
}

// WritePromText renders collector snapshots and bench history as one
// Prometheus text-format exposition: per-backend run aggregates, sweep
// totals, and every bench point's comparison metrics. Any argument may
// be empty/nil; its families are omitted. Output is byte-deterministic
// for fixed inputs.
func WritePromText(w io.Writer, runs []RunStats, sweeps []SweepStats, bench *BenchFile) error {
	p := &PromWriter{}

	if len(runs) > 0 {
		agg := make(map[string]*runAggregate)
		for _, r := range runs {
			a, ok := agg[r.Backend]
			if !ok {
				a = &runAggregate{}
				agg[r.Backend] = a
			}
			a.runs++
			a.events += r.Events
			a.wallSeconds += r.Wall.Seconds()
			a.simSeconds += r.SimDuration.Seconds()
			a.allocs += r.Allocs
			a.allocBytes += r.AllocBytes
			a.packetsSent += r.PacketsSent
			a.packetsDropped += r.PacketsDropped
			a.bytesSent += r.BytesSent
			if r.PeakHeapBytes > a.peakHeapBytes {
				a.peakHeapBytes = r.PeakHeapBytes
			}
			if r.MaxHeapDepth > a.maxHeapDepth {
				a.maxHeapDepth = r.MaxHeapDepth
			}
		}
		backends := make([]string, 0, len(agg))
		for b := range agg {
			backends = append(backends, b)
		}
		sort.Strings(backends)
		counter := func(name, help string, get func(*runAggregate) float64) {
			p.Family(name, "counter", help)
			for _, b := range backends {
				p.Value(name, []Label{{"backend", b}}, get(agg[b]))
			}
		}
		gauge := func(name, help string, get func(*runAggregate) float64) {
			p.Family(name, "gauge", help)
			for _, b := range backends {
				p.Value(name, []Label{{"backend", b}}, get(agg[b]))
			}
		}
		counter("mltcp_runs_total", "Backend runs measured by the self-metrics collector.",
			func(a *runAggregate) float64 { return float64(a.runs) })
		counter("mltcp_run_events_total", "Scheduler work across runs: engine events fired or fluid integration steps.",
			func(a *runAggregate) float64 { return float64(a.events) })
		counter("mltcp_run_wall_seconds_total", "Wall-clock time spent inside backend runs.",
			func(a *runAggregate) float64 { return a.wallSeconds })
		counter("mltcp_run_sim_seconds_total", "Simulated time advanced across runs.",
			func(a *runAggregate) float64 { return a.simSeconds })
		counter("mltcp_run_allocs_total", "Heap allocations attributed to runs.",
			func(a *runAggregate) float64 { return float64(a.allocs) })
		counter("mltcp_run_alloc_bytes_total", "Heap bytes allocated by runs.",
			func(a *runAggregate) float64 { return float64(a.allocBytes) })
		counter("mltcp_run_packets_sent_total", "Packets delivered across every link (packet backend).",
			func(a *runAggregate) float64 { return float64(a.packetsSent) })
		counter("mltcp_run_packets_dropped_total", "Packets dropped across every link (packet backend).",
			func(a *runAggregate) float64 { return float64(a.packetsDropped) })
		counter("mltcp_run_bytes_sent_total", "Bytes delivered across every link (packet backend).",
			func(a *runAggregate) float64 { return float64(a.bytesSent) })
		gauge("mltcp_run_peak_heap_bytes", "Largest live-heap sample observed in any run.",
			func(a *runAggregate) float64 { return float64(a.peakHeapBytes) })
		gauge("mltcp_run_max_heap_depth", "Deepest engine event heap observed in any run.",
			func(a *runAggregate) float64 { return float64(a.maxHeapDepth) })
	}

	if len(sweeps) > 0 {
		var points, workers int
		var wall, busy float64
		for _, s := range sweeps {
			points += s.Points
			workers = s.Workers
			wall += s.Wall.Seconds()
			busy += s.BusyTime().Seconds()
		}
		last := sweeps[len(sweeps)-1]
		p.Family("mltcp_sweeps_total", "counter", "Harness sweeps measured.")
		p.Value("mltcp_sweeps_total", nil, float64(len(sweeps)))
		p.Family("mltcp_sweep_points_total", "counter", "Scenario points executed across sweeps.")
		p.Value("mltcp_sweep_points_total", nil, float64(points))
		p.Family("mltcp_sweep_wall_seconds_total", "counter", "Wall-clock time spent inside sweeps.")
		p.Value("mltcp_sweep_wall_seconds_total", nil, wall)
		p.Family("mltcp_sweep_busy_seconds_total", "counter", "Summed per-point wall time across sweeps.")
		p.Value("mltcp_sweep_busy_seconds_total", nil, busy)
		p.Family("mltcp_sweep_workers", "gauge", "Worker pool size of the most recent sweep.")
		p.Value("mltcp_sweep_workers", nil, float64(workers))
		p.Family("mltcp_sweep_worker_utilization", "gauge", "Busy fraction of the most recent sweep's pool.")
		p.Value("mltcp_sweep_worker_utilization", nil, last.Utilization())
	}

	if bench != nil && len(bench.Points) > 0 {
		// One family per comparison metric, one sample per suite point.
		// Metric order comes from PointMetrics; point order is suite order.
		names := make([]string, 0)
		seen := make(map[string]bool)
		for _, mv := range PointMetrics(bench.Points[0]) {
			if !seen[mv.Name] {
				seen[mv.Name] = true
				names = append(names, mv.Name)
			}
		}
		for _, name := range names {
			fam := "mltcp_bench_" + SanitizePromName(name)
			p.Family(fam, "gauge", fmt.Sprintf("Bench suite %s per point (suite %s).", name, bench.Suite))
			for _, pt := range bench.Points {
				for _, mv := range PointMetrics(pt) {
					if mv.Name != name {
						continue
					}
					p.Value(fam, []Label{{"point", pt.Name}, {"backend", pt.Backend}}, mv.Value)
				}
			}
		}
	}

	_, err := p.WriteTo(w)
	return err
}
