package obs

import (
	"runtime"
	"runtime/metrics"
)

// MemSnapshot is a point-in-time view of the process allocator. Two
// snapshots bracket a measured region; their difference is the region's
// allocation cost.
type MemSnapshot struct {
	// TotalAllocBytes is the cumulative bytes allocated on the heap.
	TotalAllocBytes uint64
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
	// HeapAllocBytes is the bytes of live (reachable + not-yet-swept)
	// heap objects at the snapshot instant.
	HeapAllocBytes uint64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32
}

// ReadMem takes an exact memory snapshot with runtime.ReadMemStats. It
// stops the world briefly, which flushes every P's allocation cache —
// that is what makes the counters exact, and also what makes it too
// expensive to call inside a measured region. mltcp-bench brackets its
// timed reps with this (outside the stopwatch window), so the gated
// allocs-per-op figures count every object.
func ReadMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		HeapAllocBytes:  ms.HeapAlloc,
		GCCycles:        ms.NumGC,
	}
}

// memSamples are the runtime/metrics counters backing readMemFast,
// matching ReadMem's TotalAlloc/Mallocs/HeapAlloc/NumGC fields. The
// order is fixed; readMemFast indexes into a copy of this template.
var memSamples = [...]metrics.Sample{
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/heap/allocs:objects"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
}

// readMemFast takes a snapshot via runtime/metrics: no stop-the-world,
// well under a microsecond — cheap enough for RunSpan to call inside the
// measured window without distorting a microsecond-scale run (the
// learned backend). The price is lazy small-object accounting: counts
// parked in per-P allocation caches are missed until their span turns
// over, so deltas over tiny regions under-report. Span alloc stats are
// informational; anything gated reads ReadMem instead. The caller owns
// the sample scratch (it would otherwise escape into metrics.Read and
// cost an allocation inside the measured window).
func readMemFast(s *[len(memSamples)]metrics.Sample) MemSnapshot {
	copy(s[:], memSamples[:])
	metrics.Read(s[:])
	u := func(i int) uint64 {
		if s[i].Value.Kind() != metrics.KindUint64 {
			return 0
		}
		return s[i].Value.Uint64()
	}
	return MemSnapshot{
		TotalAllocBytes: u(0),
		Mallocs:         u(1),
		HeapAllocBytes:  u(2),
		GCCycles:        uint32(u(3)),
	}
}

// liveHeapSample is the runtime/metrics gauge used for cheap mid-run peak
// tracking: bytes of live heap objects. Unlike ReadMemStats it does not
// stop the world, so run spans can sample it at every chunk boundary.
var liveHeapSample = []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}

// LiveHeapBytes reads the live-heap gauge from runtime/metrics (0 when the
// runtime does not export it).
func LiveHeapBytes() uint64 {
	s := make([]metrics.Sample, 1)
	copy(s, liveHeapSample)
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
