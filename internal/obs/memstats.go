package obs

import (
	"runtime"
	"runtime/metrics"
)

// MemSnapshot is a point-in-time view of the process allocator, taken with
// runtime.ReadMemStats. Two snapshots bracket a measured region; their
// difference is the region's allocation cost.
type MemSnapshot struct {
	// TotalAllocBytes is the cumulative bytes allocated on the heap.
	TotalAllocBytes uint64
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
	// HeapAllocBytes is the bytes of live (reachable + not-yet-swept)
	// heap objects at the snapshot instant.
	HeapAllocBytes uint64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint32
}

// ReadMem takes a memory snapshot. It stops the world briefly; call it at
// measured-region boundaries, not inside hot loops.
func ReadMem() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		HeapAllocBytes:  ms.HeapAlloc,
		GCCycles:        ms.NumGC,
	}
}

// liveHeapSample is the runtime/metrics gauge used for cheap mid-run peak
// tracking: bytes of live heap objects. Unlike ReadMemStats it does not
// stop the world, so run spans can sample it at every chunk boundary.
var liveHeapSample = []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}

// LiveHeapBytes reads the live-heap gauge from runtime/metrics (0 when the
// runtime does not export it).
func LiveHeapBytes() uint64 {
	s := make([]metrics.Sample, 1)
	copy(s, liveHeapSample)
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
