package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"mltcp/internal/sim"
)

var updatePromGolden = flag.Bool("update-prom", false, "rewrite testdata/prom_golden.txt")

// promFixture is a literal, machine-independent snapshot: hand-written
// RunStats/SweepStats rather than live Collector output, because spans
// read the wall clock.
func promFixture() ([]RunStats, []SweepStats, *BenchFile) {
	runs := []RunStats{
		{
			Backend: "fluid", SimDuration: 20 * sim.Second, Wall: 5 * time.Millisecond,
			Events: 4000, PeakHeapBytes: 1 << 20, AllocBytes: 65536, Allocs: 120,
		},
		{
			Backend: "packet", SimDuration: 5 * sim.Second, Wall: 80 * time.Millisecond,
			Events: 900000, MaxHeapDepth: 64, PeakHeapBytes: 8 << 20,
			AllocBytes: 4 << 20, Allocs: 50000,
			PacketsSent: 123456, PacketsDropped: 78, BytesSent: 1 << 30,
		},
		{
			Backend: "fluid", SimDuration: 60 * sim.Second, Wall: 12 * time.Millisecond,
			Events: 11000, PeakHeapBytes: 2 << 20, AllocBytes: 131072, Allocs: 250,
		},
	}
	sweeps := []SweepStats{
		{
			Points: 4, Workers: 2, Wall: 100 * time.Millisecond,
			PointWall: []time.Duration{
				25 * time.Millisecond, 25 * time.Millisecond,
				25 * time.Millisecond, 25 * time.Millisecond,
			},
		},
	}
	bench := &BenchFile{
		Schema: BenchSchema, Suite: "default", GoVersion: "go1.x", GOMAXPROCS: 8,
		Points: []BenchPoint{
			{
				Name: "fluid/two-gpt2", Backend: "fluid", Jobs: 2, DurationSec: 20, Reps: 3,
				WallNSMin: 4000000, WallNSMean: 4200000, Events: 4000,
				EventsPerSec: 1e6, SimWallRatio: 5000,
				AllocsPerOp: 120, AllocBytesPerOp: 65536, PeakHeapBytes: 1 << 20,
				InterleavedAt: 17,
			},
			{
				Name: "packet/two-gpt2", Backend: "packet", Jobs: 2, DurationSec: 5, Reps: 3,
				WallNSMin: 80000000, WallNSMean: 81000000, Events: 900000,
				EventsPerSec: 1.125e7, SimWallRatio: 62.5,
				AllocsPerOp: 50000, AllocBytesPerOp: 4 << 20, PeakHeapBytes: 8 << 20,
				MaxHeapDepth: 64, InterleavedAt: -1,
			},
		},
	}
	return runs, sweeps, bench
}

// TestWritePromTextGolden pins the exposition byte-for-byte.
func TestWritePromTextGolden(t *testing.T) {
	runs, sweeps, bench := promFixture()
	var buf bytes.Buffer
	if err := WritePromText(&buf, runs, sweeps, bench); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updatePromGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-prom to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden; got:\n%s", buf.String())
	}
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
)

// validatePromText is a syntax checker for the exposition format: every
// line is a HELP, a TYPE, or a well-formed sample, every sample belongs
// to the most recently opened family, and no family repeats.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	if text == "" {
		return
	}
	family := ""
	seen := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case helpRe.MatchString(line):
		case typeRe.MatchString(line):
			family = typeRe.FindStringSubmatch(line)[1]
			if seen[family] {
				t.Errorf("line %d: family %s opened twice", i+1, family)
			}
			seen[family] = true
		case sampleRe.MatchString(line):
			name := sampleRe.FindStringSubmatch(line)[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if name != family && base != family {
				t.Errorf("line %d: sample %s outside its family (current %s)", i+1, name, family)
			}
		default:
			t.Errorf("line %d: not valid exposition syntax: %q", i+1, line)
		}
	}
	if text != "" && !strings.HasSuffix(text, "\n") {
		t.Error("exposition does not end in a newline")
	}
}

// TestWritePromTextValid runs the syntax checker over the full fixture
// and every subset, including the empty exposition.
func TestWritePromTextValid(t *testing.T) {
	runs, sweeps, bench := promFixture()
	cases := []struct {
		name   string
		runs   []RunStats
		sweeps []SweepStats
		bench  *BenchFile
	}{
		{"full", runs, sweeps, bench},
		{"runs-only", runs, nil, nil},
		{"sweeps-only", nil, sweeps, nil},
		{"bench-only", nil, nil, bench},
		{"empty", nil, nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WritePromText(&buf, tc.runs, tc.sweeps, tc.bench); err != nil {
				t.Fatal(err)
			}
			validatePromText(t, buf.String())
		})
	}
}

func TestWritePromTextDeterministic(t *testing.T) {
	runs, sweeps, bench := promFixture()
	render := func() string {
		var buf bytes.Buffer
		if err := WritePromText(&buf, runs, sweeps, bench); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("exposition not byte-deterministic")
	}
}

// TestWritePromTextContent spot-checks the aggregation semantics.
func TestWritePromTextContent(t *testing.T) {
	runs, sweeps, bench := promFixture()
	var buf bytes.Buffer
	if err := WritePromText(&buf, runs, sweeps, bench); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`mltcp_runs_total{backend="fluid"} 2`,
		`mltcp_runs_total{backend="packet"} 1`,
		`mltcp_run_events_total{backend="fluid"} 15000`,
		`mltcp_run_peak_heap_bytes{backend="fluid"} 2.097152e+06`, // max, not sum
		`mltcp_run_packets_dropped_total{backend="packet"} 78`,
		`mltcp_sweep_points_total 4`,
		`mltcp_sweep_worker_utilization 0.5`,
		`mltcp_bench_wall_ns_min{point="fluid/two-gpt2",backend="fluid"} 4e+06`,
		`mltcp_bench_interleaved_at{point="packet/two-gpt2",backend="packet"} +Inf`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestPromWriterHistogram(t *testing.T) {
	p := &PromWriter{}
	p.Family("x_hist", "histogram", "test histogram")
	p.Histogram("x_hist", []Label{{"flow", "1"}}, []float64{0.1, 1}, []int64{3, 4}, 9, 12.5)
	text := p.String()
	validatePromText(t, text)
	for _, want := range []string{
		`x_hist_bucket{flow="1",le="0.1"} 3`,
		`x_hist_bucket{flow="1",le="1"} 7`, // cumulative
		`x_hist_bucket{flow="1",le="+Inf"} 9`,
		`x_hist_sum{flow="1"} 12.5`,
		`x_hist_count{flow="1"} 9`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("histogram missing %q in:\n%s", want, text)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	p := &PromWriter{}
	p.Family("x", "gauge", "a\nmultiline\\help")
	p.Value("x", []Label{{"l", "quo\"te\\back\nnl"}}, 1)
	text := p.String()
	validatePromText(t, text)
	if !strings.Contains(text, `x{l="quo\"te\\back\nnl"} 1`) {
		t.Errorf("label not escaped: %s", text)
	}
}

func TestSanitizePromName(t *testing.T) {
	cases := map[string]string{
		"telemetry.limiter_drops": "telemetry_limiter_drops",
		"9lives":                  "_lives",
		"ok_name:x9":              "ok_name:x9",
		"":                        "_",
		"a-b c":                   "a_b_c",
	}
	for in, want := range cases {
		if got := SanitizePromName(in); got != want {
			t.Errorf("SanitizePromName(%q) = %q, want %q", in, got, want)
		}
	}
}
