package obs

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mltcp/internal/sim"
)

func TestStopwatchMonotonic(t *testing.T) {
	sw := StartTimer()
	first := sw.Elapsed()
	if first < 0 {
		t.Fatalf("negative elapsed %v", first)
	}
	for i := 0; i < 100; i++ {
		next := sw.Elapsed()
		if next < first {
			t.Fatalf("elapsed went backwards: %v then %v", first, next)
		}
		first = next
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	if got := c.Runs(); got != nil {
		t.Fatalf("nil collector Runs = %v", got)
	}
	if got := c.Sweeps(); got != nil {
		t.Fatalf("nil collector Sweeps = %v", got)
	}
	// Every span method must be callable on the nil spans a nil collector
	// hands out.
	span := c.StartRun("fluid")
	span.Heartbeat(10)
	span.AddLinkTotals(1, 2, 3)
	span.Finish(100, sim.Second)
	sweep := c.StartSweep(4, 2)
	sweep.RecordPoint(0, time.Millisecond)
	sweep.Finish()
}

func TestRunSpanRecordsStats(t *testing.T) {
	c := NewCollector()
	span := c.StartRun("packet")
	span.Heartbeat(7)
	span.Heartbeat(3) // smaller sample must not lower the max
	span.AddLinkTotals(100, 2, 150000)
	// Allocate something attributable between the span's snapshots.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 4096)
	}
	span.Finish(12345, 20*sim.Second)
	_ = sink

	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Backend != "packet" || r.Events != 12345 || r.SimDuration != 20*sim.Second {
		t.Fatalf("run stats %+v", r)
	}
	if r.MaxHeapDepth != 7 {
		t.Fatalf("MaxHeapDepth = %d, want 7", r.MaxHeapDepth)
	}
	if r.PacketsSent != 100 || r.PacketsDropped != 2 || r.BytesSent != 150000 {
		t.Fatalf("link totals %+v", r)
	}
	if r.Wall <= 0 {
		t.Fatalf("Wall = %v", r.Wall)
	}
	if r.Allocs == 0 || r.AllocBytes == 0 {
		t.Fatalf("allocation deltas empty: %+v", r)
	}
	if r.PeakHeapBytes == 0 {
		t.Fatal("peak heap never sampled")
	}
	if r.EventsPerSec() <= 0 || r.SimWallRatio() <= 0 {
		t.Fatalf("derived rates: events/s=%v ratio=%v", r.EventsPerSec(), r.SimWallRatio())
	}
}

func TestRunStatsZeroWallRates(t *testing.T) {
	var r RunStats
	if r.EventsPerSec() != 0 || r.SimWallRatio() != 0 {
		t.Fatal("unmeasured run must report zero rates")
	}
}

func TestSweepSpanUtilization(t *testing.T) {
	c := NewCollector()
	span := c.StartSweep(4, 2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			span.RecordPoint(i, time.Duration(i+1)*time.Millisecond)
		}(i)
	}
	wg.Wait()
	span.RecordPoint(99, time.Second) // out of range: ignored, not a panic
	span.Finish()

	sweeps := c.Sweeps()
	if len(sweeps) != 1 {
		t.Fatalf("got %d sweeps, want 1", len(sweeps))
	}
	s := sweeps[0]
	if s.Points != 4 || s.Workers != 2 {
		t.Fatalf("sweep shape %+v", s)
	}
	if want := 10 * time.Millisecond; s.BusyTime() != want {
		t.Fatalf("BusyTime = %v, want %v", s.BusyTime(), want)
	}
	if s.Wall <= 0 {
		t.Fatalf("Wall = %v", s.Wall)
	}
	if u := s.Utilization(); u <= 0 {
		t.Fatalf("Utilization = %v", u)
	}
}

func TestSweepStatsZeroValues(t *testing.T) {
	var s SweepStats
	if s.Utilization() != 0 {
		t.Fatal("empty sweep must report zero utilization")
	}
	fixed := SweepStats{Points: 2, Workers: 2, Wall: time.Second,
		PointWall: []time.Duration{time.Second, time.Second}}
	if u := fixed.Utilization(); u != 1 {
		t.Fatalf("fully busy pool utilization = %v, want 1", u)
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a collector")
	}
	c := NewCollector()
	ctx := WithCollector(context.Background(), c)
	if FromContext(ctx) != c {
		t.Fatal("collector lost in the context")
	}
}

func TestReadMemAndLiveHeap(t *testing.T) {
	before := ReadMem()
	sink := make([][]byte, 256)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	after := ReadMem()
	_ = sink
	if after.TotalAllocBytes <= before.TotalAllocBytes {
		t.Fatal("TotalAllocBytes did not grow across allocations")
	}
	if after.Mallocs <= before.Mallocs {
		t.Fatal("Mallocs did not grow across allocations")
	}
	if LiveHeapBytes() == 0 {
		t.Fatal("live-heap gauge unavailable")
	}
}

func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	p, err := StartCPUProfile(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	if (*CPUProfile)(nil).Stop() != nil { // nil-safe
		t.Fatal("nil profile Stop errored")
	}
	if fi, err := os.Stat(cpuPath); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}

	heapPath := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heapPath); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
	if _, err := StartCPUProfile(filepath.Join(dir, "missing", "cpu.pprof")); err == nil {
		t.Fatal("unwritable cpu profile path accepted")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "missing", "heap.pprof")); err == nil {
		t.Fatal("unwritable heap profile path accepted")
	}
}
