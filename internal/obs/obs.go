// Package obs is the simulator's runtime self-metrics layer: where
// internal/telemetry observes the simulated system (cwnd, drops,
// iteration boundaries), obs observes the simulator itself — event-loop
// throughput, sim-time/wall-time ratio, event-heap depth, allocation
// cost, harness worker utilization, and per-sweep-point wall times.
//
// The design contract is that obs is strictly out-of-band: nothing here
// feeds back into a simulation. Collectors never touch the engine clock,
// the RNG streams, or the telemetry recorder, so a run with a collector
// attached produces byte-identical traces and DeepEqual Results to the
// same run without one (internal/backend's obs tests pin this). That is
// also why obs is the single package allowed to read the wall clock —
// see clock.go.
//
// Collectors travel by context (WithCollector/FromContext), mirroring the
// telemetry seam, and every span method is safe on a nil receiver so
// instrumented code needs no conditionals. Unlike a telemetry Recorder —
// owned by one run, one goroutine — a Collector aggregates across a
// harness worker pool, so its mutations are mutex-guarded.
package obs

import (
	"context"
	"runtime/metrics"
	"sync"
	"time"

	"mltcp/internal/sim"
)

// RunStats describes one backend run, measured from the outside.
type RunStats struct {
	// Backend is the fidelity that produced the run ("fluid", "packet").
	Backend string
	// SimDuration is the simulated horizon the run covered.
	SimDuration sim.Time
	// Wall is the run's wall-clock time.
	Wall time.Duration
	// Events counts the run's scheduler work: discrete events fired for
	// the packet engine, integration steps for the fluid solver.
	Events uint64
	// MaxHeapDepth is the largest pending-event count observed on the
	// engine's event heap (0 for the heap-less fluid backend).
	MaxHeapDepth int
	// PeakHeapBytes is the largest live-heap size sampled during the run.
	PeakHeapBytes uint64
	// AllocBytes and Allocs are the run's heap allocation deltas. Under a
	// concurrent sweep these are process-wide and therefore approximate;
	// benchmark reps run serially to keep them attributable.
	AllocBytes uint64
	Allocs     uint64
	// GCCycles is the number of GC cycles completed during the run.
	GCCycles uint32
	// PacketsSent, PacketsDropped, and BytesSent aggregate every link's
	// cumulative counters (packet backend only).
	PacketsSent    int64
	PacketsDropped int64
	BytesSent      int64
}

// EventsPerSec returns the run's event-loop throughput (0 for an
// unmeasured or zero-length run).
func (s RunStats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// SimWallRatio returns simulated seconds advanced per wall second — the
// "how much faster than real time" factor (0 for an unmeasured run).
func (s RunStats) SimWallRatio() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.SimDuration.Seconds() / s.Wall.Seconds()
}

// SweepStats describes one harness sweep: how long the grid took, how its
// points were distributed, and how busy the workers were.
type SweepStats struct {
	// Points is the grid size; Workers the pool size actually used.
	Points  int
	Workers int
	// Wall is the whole sweep's wall-clock time.
	Wall time.Duration
	// PointWall[i] is point i's wall-clock run time (zero for points
	// skipped by cancellation).
	PointWall []time.Duration
}

// BusyTime returns the summed per-point wall time — the work the pool
// actually executed.
func (s SweepStats) BusyTime() time.Duration {
	var total time.Duration
	for _, d := range s.PointWall {
		total += d
	}
	return total
}

// Utilization returns the fraction of the pool's capacity (Workers ×
// Wall) spent inside scenario points, in [0, ~1]. Low utilization on a
// saturated grid means harness overhead or a straggler point.
func (s SweepStats) Utilization() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	return s.BusyTime().Seconds() / (float64(s.Workers) * s.Wall.Seconds())
}

// Collector accumulates self-metrics across runs and sweeps. A nil
// *Collector is the disabled state: every method (and every method of the
// spans it hands out) is a near-free no-op, so instrumented paths cost
// one nil check when observation is off.
type Collector struct {
	mu     sync.Mutex
	runs   []RunStats
	sweeps []SweepStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled reports whether self-metrics are being collected.
func (c *Collector) Enabled() bool { return c != nil }

// Runs returns a copy of the collected run stats, in completion order.
func (c *Collector) Runs() []RunStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RunStats, len(c.runs))
	copy(out, c.runs)
	return out
}

// Sweeps returns a copy of the collected sweep stats, in completion order.
func (c *Collector) Sweeps() []SweepStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SweepStats, len(c.sweeps))
	copy(out, c.sweeps)
	return out
}

// RunSpan measures one backend run in flight. Obtain one from StartRun;
// all methods are nil-safe.
type RunSpan struct {
	c      *Collector
	stats  RunStats
	sw     Stopwatch
	before MemSnapshot
	samp   [len(memSamples)]metrics.Sample // readMemFast scratch
}

// StartRun opens a measurement span for one backend run (nil collector →
// nil span, every span method a no-op). Span memory deltas come from
// readMemFast — cheap enough to sit inside a caller's timed window, at
// the cost of lazily-accounted small-object counts (see memstats.go);
// the RunStats alloc fields are informational, never gated.
func (c *Collector) StartRun(backendName string) *RunSpan {
	if c == nil {
		return nil
	}
	s := &RunSpan{c: c, stats: RunStats{Backend: backendName}}
	s.before = readMemFast(&s.samp)
	s.sw = StartTimer()
	return s
}

// Heartbeat samples mid-run state; backends call it at integration-chunk
// boundaries. pendingEvents is the engine's current event-heap depth
// (pass 0 for heap-less backends).
func (s *RunSpan) Heartbeat(pendingEvents int) {
	if s == nil {
		return
	}
	if pendingEvents > s.stats.MaxHeapDepth {
		s.stats.MaxHeapDepth = pendingEvents
	}
	if h := LiveHeapBytes(); h > s.stats.PeakHeapBytes {
		s.stats.PeakHeapBytes = h
	}
}

// AddLinkTotals records the topology's aggregate link counters.
func (s *RunSpan) AddLinkTotals(packetsSent, packetsDropped, bytesSent int64) {
	if s == nil {
		return
	}
	s.stats.PacketsSent += packetsSent
	s.stats.PacketsDropped += packetsDropped
	s.stats.BytesSent += bytesSent
}

// Finish closes the span: events is the run's total scheduler work
// (engine events fired / fluid steps), simDur the simulated horizon
// covered. The completed RunStats is appended to the collector.
func (s *RunSpan) Finish(events uint64, simDur sim.Time) {
	if s == nil {
		return
	}
	s.stats.Wall = s.sw.Elapsed()
	s.stats.Events = events
	s.stats.SimDuration = simDur
	after := readMemFast(&s.samp)
	s.stats.AllocBytes = after.TotalAllocBytes - s.before.TotalAllocBytes
	s.stats.Allocs = after.Mallocs - s.before.Mallocs
	s.stats.GCCycles = after.GCCycles - s.before.GCCycles
	if after.HeapAllocBytes > s.stats.PeakHeapBytes {
		s.stats.PeakHeapBytes = after.HeapAllocBytes
	}
	s.c.mu.Lock()
	s.c.runs = append(s.c.runs, s.stats)
	s.c.mu.Unlock()
}

// SweepSpan measures one harness sweep in flight. Point recordings may
// arrive from any worker goroutine; the span serializes them.
type SweepSpan struct {
	c     *Collector
	mu    sync.Mutex
	stats SweepStats
	sw    Stopwatch
}

// StartSweep opens a measurement span for an n-point sweep on a
// workers-sized pool (nil collector → nil span).
func (c *Collector) StartSweep(points, workers int) *SweepSpan {
	if c == nil {
		return nil
	}
	return &SweepSpan{
		c:     c,
		stats: SweepStats{Points: points, Workers: workers, PointWall: make([]time.Duration, points)},
		sw:    StartTimer(),
	}
}

// RecordPoint records point i's wall-clock run time. Safe to call
// concurrently from worker goroutines.
func (s *SweepSpan) RecordPoint(i int, wall time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if i >= 0 && i < len(s.stats.PointWall) {
		s.stats.PointWall[i] = wall
	}
	s.mu.Unlock()
}

// Finish closes the span and appends the SweepStats to the collector.
// Call it only after every worker has stopped recording.
func (s *SweepSpan) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stats.Wall = s.sw.Elapsed()
	stats := s.stats
	s.mu.Unlock()
	s.c.mu.Lock()
	s.c.sweeps = append(s.c.sweeps, stats)
	s.c.mu.Unlock()
}

type ctxKey struct{}

// WithCollector returns a context carrying the collector — the seam
// through which backends and the harness receive the self-metrics layer
// without changing their interfaces (mirroring telemetry.WithRecorder).
func WithCollector(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the collector from the context (nil — observation
// disabled — when absent).
func FromContext(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}
