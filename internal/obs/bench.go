package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// BenchSchema is the BENCH.json format version, bumped on any
// incompatible change to the point or file encodings.
const BenchSchema = 1

// BenchPoint is one benchmark suite point's measured outcome. Field order
// is the canonical serialization order; wall-derived fields vary between
// machines while events, allocation counts, heap depth, and the
// convergence diagnostics are deterministic functions of (scenario, seed).
type BenchPoint struct {
	// Name identifies the point within the suite ("packet/two-gpt2").
	Name string `json:"name"`
	// Backend is the fidelity the point ran at.
	Backend string `json:"backend"`
	// Jobs and DurationSec echo the scenario shape.
	Jobs        int     `json:"jobs"`
	DurationSec float64 `json:"duration_sec"`
	// Reps is how many timed repetitions the measurements aggregate.
	Reps int `json:"reps"`
	// WallNSMin and WallNSMean summarize per-rep wall time (min is the
	// regression-gated figure: least-noise estimate of the true cost).
	WallNSMin  int64 `json:"wall_ns_min"`
	WallNSMean int64 `json:"wall_ns_mean"`
	// Events is the per-op scheduler work (engine events fired / fluid
	// integration steps) — deterministic for a fixed (scenario, seed).
	Events uint64 `json:"events"`
	// EventsPerSec and SimWallRatio are derived from the fastest rep.
	EventsPerSec float64 `json:"events_per_sec"`
	SimWallRatio float64 `json:"sim_wall_ratio"`
	// AllocsPerOp and AllocBytesPerOp are the smallest per-rep allocation
	// deltas (min strips GC-timing noise, which only ever adds).
	AllocsPerOp     uint64 `json:"allocs_per_op"`
	AllocBytesPerOp uint64 `json:"alloc_bytes_per_op"`
	// PeakHeapBytes is the largest live-heap sample seen across reps.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// MaxHeapDepth is the deepest event heap observed (packet backend).
	MaxHeapDepth int `json:"max_heap_depth,omitempty"`
	// WorkerUtilization is the harness pool's busy fraction (sweep
	// points only).
	WorkerUtilization float64 `json:"worker_utilization,omitempty"`
	// InterleavedAt and OverlapQuarters are the convergence diagnostics,
	// recomputed from a traced run: the iteration from which every job
	// holds its ideal iteration time (-1 = never), and the overlap score
	// per quarter of the horizon.
	InterleavedAt   int       `json:"interleaved_at"`
	OverlapQuarters []float64 `json:"overlap_quarters,omitempty"`
}

// BenchFile is a complete BENCH.json: environment identity plus the
// suite's points in suite order.
type BenchFile struct {
	Schema     int          `json:"schema"`
	Suite      string       `json:"suite"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Revision   string       `json:"revision,omitempty"`
	Points     []BenchPoint `json:"points"`
}

// WriteBench serializes the file as indented JSON. Encoding is
// struct-driven, so field order — and therefore the byte stream for equal
// values — is stable.
func WriteBench(w io.Writer, f *BenchFile) error {
	if f.Schema == 0 {
		f.Schema = BenchSchema
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadBench decodes a BENCH.json written by WriteBench, rejecting
// unknown schema versions.
func ReadBench(r io.Reader) (*BenchFile, error) {
	f := &BenchFile{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(f); err != nil {
		return nil, fmt.Errorf("obs: bench file: %w", err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("obs: bench file schema %d, this build reads %d", f.Schema, BenchSchema)
	}
	return f, nil
}

// benchMetric is one gated or informational comparison dimension.
type benchMetric struct {
	name string
	get  func(BenchPoint) float64
	// higherIsBetter flips the regression direction.
	higherIsBetter bool
	// gated metrics fail the comparison past the gate; ungated ones are
	// derived views (events/sec mirrors wall + events) reported for the
	// trajectory but never double-counted as failures.
	gated bool
}

// interleaveValue maps InterleavedAt onto a comparable scale: -1 ("never
// within the horizon") is worse than any finite iteration index.
func interleaveValue(p BenchPoint) float64 {
	if p.InterleavedAt < 0 {
		return math.Inf(1)
	}
	return float64(p.InterleavedAt)
}

var benchMetrics = []benchMetric{
	{name: "wall_ns_min", get: func(p BenchPoint) float64 { return float64(p.WallNSMin) }, gated: true},
	{name: "allocs_per_op", get: func(p BenchPoint) float64 { return float64(p.AllocsPerOp) }, gated: true},
	{name: "alloc_bytes_per_op", get: func(p BenchPoint) float64 { return float64(p.AllocBytesPerOp) }, gated: true},
	{name: "peak_heap_bytes", get: func(p BenchPoint) float64 { return float64(p.PeakHeapBytes) }, gated: true},
	{name: "max_heap_depth", get: func(p BenchPoint) float64 { return float64(p.MaxHeapDepth) }, gated: true},
	{name: "interleaved_at", get: interleaveValue, gated: true},
	{name: "events_per_sec", get: func(p BenchPoint) float64 { return p.EventsPerSec }, higherIsBetter: true},
	{name: "sim_wall_ratio", get: func(p BenchPoint) float64 { return p.SimWallRatio }, higherIsBetter: true},
}

// MetricValue is one comparison metric evaluated on a point, annotated
// with its direction and gating — so output for a point with no baseline
// can say which way each figure will gate once it is baselined, instead
// of printing bare numbers whose polarity the reader must guess.
type MetricValue struct {
	Name           string
	Value          float64
	HigherIsBetter bool
	Gated          bool
}

// PointMetrics evaluates every comparison metric on one point, in
// report order.
func PointMetrics(p BenchPoint) []MetricValue {
	out := make([]MetricValue, len(benchMetrics))
	for i, m := range benchMetrics {
		out[i] = MetricValue{
			Name:           m.name,
			Value:          m.get(p),
			HigherIsBetter: m.higherIsBetter,
			Gated:          m.gated,
		}
	}
	return out
}

// Delta is one (point, metric) comparison. Change is the fractional
// movement in the regression direction: +0.25 means 25% worse, negative
// means improved.
type Delta struct {
	Point  string
	Metric string
	Old    float64
	New    float64
	Change float64
}

// CompareReport is a full old-vs-new diff of two bench files.
type CompareReport struct {
	// Deltas holds every compared (point, metric), in suite order.
	Deltas []Delta
	// Warnings are gated deltas past the warn threshold but within the
	// gate; Regressions are past the gate and fail the comparison.
	Warnings    []Delta
	Regressions []Delta
	// MissingPoints are suite points present in old but absent from new —
	// treated as regressions (silently dropping a benchmark would let its
	// trajectory rot). NewPoints is the reverse, informational.
	MissingPoints []string
	NewPoints     []string
}

// Failed reports whether the comparison should gate a build.
func (r *CompareReport) Failed() bool {
	return len(r.Regressions) > 0 || len(r.MissingPoints) > 0
}

// regressionChange returns the fractional movement in the worse
// direction, handling zero and infinite baselines.
func regressionChange(oldV, newV float64, higherIsBetter bool) float64 {
	if higherIsBetter {
		oldV, newV = -oldV, -newV // regress when the value falls
	}
	switch {
	case math.IsInf(oldV, 1):
		if math.IsInf(newV, 1) {
			return 0
		}
		return math.Inf(-1) // from "never" to finite: pure improvement
	case math.IsInf(newV, 1):
		return math.Inf(1)
	case oldV == 0:
		if newV <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (newV - oldV) / math.Abs(oldV)
}

// Compare diffs two bench files: every gated metric whose change exceeds
// gate becomes a regression, changes past warn become warnings. Schema
// mismatches and non-positive thresholds are errors.
func Compare(oldF, newF *BenchFile, warn, gate float64) (*CompareReport, error) {
	if oldF.Schema != newF.Schema {
		return nil, fmt.Errorf("obs: comparing schema %d against %d", oldF.Schema, newF.Schema)
	}
	if warn <= 0 || gate <= 0 || warn > gate {
		return nil, fmt.Errorf("obs: need 0 < warn (%v) <= gate (%v)", warn, gate)
	}
	newByName := make(map[string]BenchPoint, len(newF.Points))
	for _, p := range newF.Points {
		newByName[p.Name] = p
	}
	oldByName := make(map[string]BenchPoint, len(oldF.Points))
	rep := &CompareReport{}
	for _, op := range oldF.Points {
		oldByName[op.Name] = op
		np, ok := newByName[op.Name]
		if !ok {
			rep.MissingPoints = append(rep.MissingPoints, op.Name)
			continue
		}
		for _, m := range benchMetrics {
			d := Delta{
				Point:  op.Name,
				Metric: m.name,
				Old:    m.get(op),
				New:    m.get(np),
			}
			d.Change = regressionChange(d.Old, d.New, m.higherIsBetter)
			rep.Deltas = append(rep.Deltas, d)
			if !m.gated {
				continue
			}
			switch {
			case d.Change > gate:
				rep.Regressions = append(rep.Regressions, d)
			case d.Change > warn:
				rep.Warnings = append(rep.Warnings, d)
			}
		}
	}
	for _, np := range newF.Points {
		if _, ok := oldByName[np.Name]; !ok {
			rep.NewPoints = append(rep.NewPoints, np.Name)
		}
	}
	return rep, nil
}
