package obs

import "time"

// This file is the repository's one sanctioned wall-clock read. Simulation
// code is forbidden from touching the wall clock (the simdeterminism
// analyzer enforces it), but runtime self-measurement — how long a grid
// point or a backend run took in real time — has to read it somewhere.
// Concentrating that read behind a single suppressed call site means every
// wall measurement in the tree flows through one monotonic source: there is
// no second clock to drift against, and no second //lint:allow to audit.

// now returns the current wall-clock instant, carrying Go's monotonic
// reading so differences are immune to wall-clock steps (NTP slews,
// suspend/resume).
func now() time.Time {
	return time.Now() //lint:allow simdeterminism the single sanctioned monotonic-clock read; all wall timing (harness Elapsed, bench spans) flows through obs
}

// Stopwatch measures elapsed wall time from a fixed start instant. The
// zero Stopwatch is invalid; obtain one from StartTimer.
type Stopwatch struct {
	start time.Time
}

// StartTimer starts a stopwatch at the current instant.
func StartTimer() Stopwatch { return Stopwatch{start: now()} }

// Elapsed returns the wall time since the stopwatch started. Successive
// calls are monotonically non-decreasing (the monotonic reading in the
// start instant guarantees it).
func (s Stopwatch) Elapsed() time.Duration { return now().Sub(s.start) }
