package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling hooks. Like the rest of obs these are out-of-band: profiling
// perturbs wall time but never simulation state, so a profiled run's
// traces and Results are identical to an unprofiled run's.

// CPUProfile is an in-flight CPU capture started by StartCPUProfile.
type CPUProfile struct {
	f *os.File
}

// StartCPUProfile begins writing a CPU profile to path. Only one CPU
// profile can be active per process; callers own the returned handle and
// must Stop it.
func StartCPUProfile(path string) (*CPUProfile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return &CPUProfile{f: f}, nil
}

// Stop ends the capture and closes the profile file. Safe on a nil
// receiver and idempotent.
func (p *CPUProfile) Stop() error {
	if p == nil || p.f == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.f.Close()
	p.f = nil
	return err
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
