package trace

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, "iter", []float64{1, 2, 3},
		Series{Name: "a", Values: []float64{1.5, 2.5, 3.5}},
		Series{Name: "b", Values: []float64{10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "iter,a,b\n1,1.5,10\n2,2.5,\n3,3.5,\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestChartContainsSeriesAndLegend(t *testing.T) {
	out := Chart("test chart", 40, 8,
		Series{Name: "up", Values: []float64{0, 1, 2, 3, 4}},
		Series{Name: "down", Values: []float64{4, 3, 2, 1, 0}},
	)
	for _, want := range []string{"test chart", "*=up", "+=down", "4", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// title + height rows + legend + trailing newline
	if len(lines) != 1+8+1+1 {
		t.Errorf("chart has %d lines, want 11", len(lines))
	}
}

func TestChartEmptyAndFlat(t *testing.T) {
	if out := Chart("empty", 20, 4); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// A flat series must not divide by zero.
	out := Chart("flat", 20, 4, Series{Name: "c", Values: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Errorf("flat chart lost its points:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := Chart("one", 20, 4, Series{Name: "p", Values: []float64{1}})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestChartPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for tiny chart")
		}
	}()
	Chart("x", 2, 1)
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"job", "iter(s)"}, [][]string{
		{"J1", "1.2"},
		{"J2-long-name", "1.8"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job") || !strings.Contains(lines[0], "iter(s)") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "J2-long-name") {
		t.Errorf("row = %q", lines[3])
	}
}
