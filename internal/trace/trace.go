// Package trace renders experiment output: CSV series for external
// plotting and compact ASCII charts so every paper figure can be inspected
// directly in a terminal.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Values []float64
}

// WriteCSV emits an x column followed by one column per series. Series
// shorter than xs leave blanks.
func WriteCSV(w io.Writer, xName string, xs []float64, series ...Series) error {
	header := []string{xName}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i, x := range xs {
		row := []string{formatNum(x)}
		for _, s := range series {
			if i < len(s.Values) {
				row = append(row, formatNum(s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 { //lint:allow simunits exact integrality test chooses integer formatting
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// Chart renders series as an ASCII line chart of the given size. Each
// series is drawn with its own glyph; a legend and y-axis labels are
// included. Points are x-indexed (series index maps linearly onto the
// width).
func Chart(title string, width, height int, series ...Series) string {
	if width < 10 || height < 3 {
		panic("trace: chart too small")
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 {
		return title + " (no data)\n"
	}
	if hi == lo { //lint:allow simunits degenerate-range guard: only the exactly-collapsed axis needs widening
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s.Values {
			var col int
			if maxLen == 1 {
				col = 0
			} else {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[row][col] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", hi)
		case height - 1:
			label = fmt.Sprintf("%.4g", lo)
		}
		fmt.Fprintf(&b, "%10s |%s|\n", label, string(line))
	}
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", glyphs[i%len(glyphs)], s.Name)
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// Table renders rows with aligned columns for terminal output.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
