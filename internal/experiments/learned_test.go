package experiments

import (
	"context"
	"testing"

	"mltcp/internal/learn"
)

// TestLearnedEvalAccuracy is the learned tier's acceptance gate: the
// checked-in default model must predict steady-state slowdowns within
// 10% mean relative error of the fluid simulation on both tracked
// scenarios.
func TestLearnedEvalAccuracy(t *testing.T) {
	cmps, err := LearnedEval(context.Background(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(LearnedEvalScenarios()); len(cmps) != want {
		t.Fatalf("evaluated %d scenarios, want %d", len(cmps), want)
	}
	const maxMeanErr = 0.10
	for _, c := range cmps {
		t.Logf("%s: mean err %.4f, max err %.4f, overlap gap %.4f",
			c.Scenario, c.MeanRelErr, c.MaxRelErr, c.OverlapGap)
		if c.MeanRelErr > maxMeanErr {
			t.Errorf("%s: mean slowdown error %.4f exceeds the %.2f acceptance gate",
				c.Scenario, c.MeanRelErr, maxMeanErr)
		}
		if len(c.RelErr) != len(c.Exact.Jobs) {
			t.Errorf("%s: %d per-job errors for %d jobs", c.Scenario, len(c.RelErr), len(c.Exact.Jobs))
		}
	}
}

// TestCrossFidelityLearnedDeterministic: the comparison is a pure
// function of (scenario, seed) on both sides.
func TestCrossFidelityLearnedDeterministic(t *testing.T) {
	scn := CanonicalTwoJob()
	a, err := CrossFidelityLearned(context.Background(), nil, scn, 1, learn.SteadySkip)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossFidelityLearned(context.Background(), nil, scn, 1, learn.SteadySkip)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanRelErr != b.MeanRelErr || a.MaxRelErr != b.MaxRelErr || a.OverlapGap != b.OverlapGap {
		t.Fatalf("repeated comparison diverged: %+v vs %+v", a, b)
	}
}
