package experiments

import (
	"context"
	"fmt"

	"mltcp/internal/harness"
	"mltcp/internal/metrics"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// FCTResult summarizes a flow-completion-time run over conventional
// datacenter traffic — the baseline-validation experiment. §2's argument
// that SRPT-style schedulers are built for this regime (and not for DNN
// periodicity) only carries weight if our pFabric/DCTCP baselines behave
// canonically on it: short flows far faster under pFabric than under
// FIFO/Reno.
type FCTResult struct {
	Scheme string
	// Completed is how many flows finished within the horizon.
	Completed int
	// ShortMeanMS/ShortP99MS cover flows < 100 KB; LargeMeanMS covers
	// flows > 1 MB.
	ShortMeanMS float64
	ShortP99MS  float64
	LargeMeanMS float64
	// OverallMeanMS covers all completed flows.
	OverallMeanMS float64
}

// FCT scheme identifiers.
const (
	FCTReno    = "reno-fifo"
	FCTDCTCP   = "dctcp"
	FCTPFabric = "pfabric"
)

// fctScale keeps the run tractable: a 100 Mbps bottleneck with 8 host
// pairs and websearch-distributed flow sizes.
const (
	fctRate  = 100 * units.Mbps
	fctPairs = 8
)

// FCTGridPoint is one (scheme, load) cell of an FCT comparison grid.
type FCTGridPoint struct {
	Load float64
	FCTResult
}

// FCTGrid runs every (scheme, load) combination — schemes major, loads
// minor — on a worker pool (workers <= 0 means one per CPU) and returns
// the grid in that order. Each cell's Poisson arrival, flow-size, and
// host-pair streams are seeded from sim.DeriveSeed(baseSeed, cell index),
// so the grid is reproducible and identical for every worker count.
func FCTGrid(schemes []string, loads []float64, horizon sim.Time, baseSeed uint64, workers int) []FCTGridPoint {
	if len(schemes) == 0 {
		schemes = []string{FCTReno, FCTDCTCP, FCTPFabric}
	}
	if len(loads) == 0 {
		loads = []float64{0.6}
	}
	cfg := harness.Config{Workers: workers, BaseSeed: baseSeed}
	return harness.Map(context.Background(), cfg, len(schemes)*len(loads),
		func(pt harness.Point) FCTGridPoint {
			scheme := schemes[pt.Index/len(loads)]
			load := loads[pt.Index%len(loads)]
			return FCTGridPoint{
				Load:      load,
				FCTResult: RunFCT(scheme, load, horizon, pt.Seed),
			}
		})
}

// RunFCT runs one scheme at the given offered load (fraction of bottleneck
// capacity) for the horizon, generating Poisson arrivals of
// websearch-sized flows across random host pairs.
func RunFCT(scheme string, load float64, horizon sim.Time, seed uint64) FCTResult {
	if load <= 0 || load >= 1 {
		panic(fmt.Sprintf("experiments: FCT load %v out of (0,1)", load))
	}
	eng := sim.New()
	var queue func() netsim.Queue
	switch scheme {
	case FCTReno:
		queue = nil // default drop-tail FIFO
	case FCTDCTCP:
		queue = func() netsim.Queue {
			return netsim.NewECNQueue(netsim.NewDropTail(netsim.DefaultQueuePackets*netsim.DefaultMTU),
				20*netsim.DefaultMTU)
		}
	case FCTPFabric:
		queue = func() netsim.Queue {
			return netsim.NewPFabricQueue(netsim.DefaultQueuePackets * netsim.DefaultMTU)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown FCT scheme %q", scheme))
	}
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       fctPairs,
		HostRate:        1 * units.Gbps,
		BottleneckRate:  fctRate,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		BottleneckQueue: queue,
	})

	dist := workload.WebSearch()
	rng := sim.NewRNG(seed)
	arrivals := workload.NewPoissonArrivals(load*float64(fctRate)/8/dist.Mean(), rng.Fork())
	sizeRNG := rng.Fork()
	pairRNG := rng.Fork()

	type rec struct {
		size  int64
		start sim.Time
		done  sim.Time
	}
	var flows []*rec
	nextID := netsim.FlowID(1)

	var launch func(e *sim.Engine)
	launch = func(e *sim.Engine) {
		if e.Now() >= horizon {
			return
		}
		size := dist.Sample(sizeRNG)
		pair := pairRNG.Intn(fctPairs)
		r := &rec{size: size, start: e.Now()}
		flows = append(flows, r)

		cfg := tcp.Config{}
		var cc tcp.CongestionControl
		switch scheme {
		case FCTReno:
			cc = tcp.NewReno()
		case FCTDCTCP:
			cc = tcp.NewDCTCP()
			cfg.ECN = true
		case FCTPFabric:
			// pFabric senders start aggressively and rely on the
			// switch's SRPT priority plus a small RTO.
			cc = tcp.NewReno()
			cfg.Prio = tcp.PFabricPrio
			cfg.InitialCwnd = 40
			cfg.MinRTO = 2 * sim.Millisecond
		}
		f := tcp.NewFlow(e, nextID, net.Left[pair], net.Right[pair], cc, cfg)
		nextID++
		f.Sender.Drained(func(now sim.Time) { r.done = now })
		f.Sender.Write(size)

		e.After(arrivals.Next(), launch)
	}
	eng.At(0, launch)
	// Let the tail drain past the arrival horizon.
	eng.RunUntil(horizon + 20*sim.Second)

	res := FCTResult{Scheme: scheme}
	var short, large, all metrics.Series
	for _, r := range flows {
		if r.done == 0 {
			continue
		}
		res.Completed++
		fct := (r.done - r.start).Seconds() * 1000
		all = append(all, fct)
		if r.size < 100_000 {
			short = append(short, fct)
		} else if r.size > 1_000_000 {
			large = append(large, fct)
		}
	}
	res.OverallMeanMS = all.Mean()
	if len(short) > 0 {
		res.ShortMeanMS = short.Mean()
		res.ShortP99MS = short.Percentile(99)
	}
	res.LargeMeanMS = large.Mean()
	return res
}
