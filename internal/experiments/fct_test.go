package experiments

import (
	"testing"

	"mltcp/internal/sim"
)

// The baseline validation: on conventional (websearch-like, Poisson)
// traffic the schemes must reproduce their canonical ordering — pFabric's
// SRPT priorities crush short-flow FCT, DCTCP's shallow queues beat
// FIFO/Reno, and everyone eventually completes everything.
func TestFCTCanonicalOrdering(t *testing.T) {
	t.Parallel()
	const (
		load    = 0.6
		horizon = 20 * sim.Second
		seed    = 42
	)
	reno := RunFCT(FCTReno, load, horizon, seed)
	dctcp := RunFCT(FCTDCTCP, load, horizon, seed)
	pfabric := RunFCT(FCTPFabric, load, horizon, seed)

	// Same seed => same arrival/size sequence => comparable counts.
	if reno.Completed == 0 || reno.Completed != dctcp.Completed || reno.Completed != pfabric.Completed {
		t.Fatalf("completion counts differ: reno %d, dctcp %d, pfabric %d",
			reno.Completed, dctcp.Completed, pfabric.Completed)
	}
	// Short flows: pFabric << DCTCP << Reno.
	if !(pfabric.ShortMeanMS < dctcp.ShortMeanMS && dctcp.ShortMeanMS < reno.ShortMeanMS) {
		t.Errorf("short-flow means out of order: pfabric %.1f, dctcp %.1f, reno %.1f ms",
			pfabric.ShortMeanMS, dctcp.ShortMeanMS, reno.ShortMeanMS)
	}
	if pfabric.ShortMeanMS*3 > reno.ShortMeanMS {
		t.Errorf("pFabric short-flow advantage too small: %.1f vs %.1f ms (want >= 3x)",
			pfabric.ShortMeanMS, reno.ShortMeanMS)
	}
	// Tail: pFabric's preemptive priorities should dominate at p99 too.
	if pfabric.ShortP99MS >= reno.ShortP99MS {
		t.Errorf("pFabric short p99 %.1f >= reno %.1f ms", pfabric.ShortP99MS, reno.ShortP99MS)
	}
	// Large flows must not be starved into non-completion (checked via
	// the equal Completed counts above) and should still have sane FCTs.
	if pfabric.LargeMeanMS <= 0 || reno.LargeMeanMS <= 0 {
		t.Error("no large flows measured")
	}
}

func TestFCTValidation(t *testing.T) {
	t.Parallel()
	for name, fn := range map[string]func(){
		"bad-load":   func() { RunFCT(FCTReno, 1.5, sim.Second, 1) },
		"bad-scheme": func() { RunFCT("bogus", 0.5, sim.Second, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// MLTCP jobs interleave even with conventional background traffic on the
// bottleneck, and that background is not starved (§5's coexistence story
// under a realistic mix).
func TestMixedTrafficCoexistence(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~5s")
	}
	res := MixedTraffic(0.10, 60*sim.Second, 9)
	// With ~10% of capacity taken by background, comm slows ~1/0.9:
	// iteration ≈ compute + comm/0.9 ≈ 1.6 + 0.222 ≈ 1.82s; allow up to
	// ~1.9s before calling it congested.
	for i, steady := range res.JobSteady {
		if steady.Seconds() > 1.93 {
			t.Errorf("job %d steady %.3fs with 10%% background, want < 1.93s", i, steady.Seconds())
		}
	}
	if res.BackgroundCompleted < res.BackgroundStarted*9/10 {
		t.Errorf("background flows starved: %d/%d completed",
			res.BackgroundCompleted, res.BackgroundStarted)
	}
	if res.BackgroundShortMeanMS <= 0 || res.BackgroundShortMeanMS > 500 {
		t.Errorf("background short-flow FCT %.1fms implausible", res.BackgroundShortMeanMS)
	}
}
