package experiments

import (
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Fig1Result holds the isolated traffic patterns of the four Fig. 1 jobs:
// periodic on-off demand at line rate during each communication phase.
type Fig1Result struct {
	// Names are the job labels (J1 = GPT-3-like, J2–J4 = GPT-2-like).
	Names []string
	// Bucket is the sample width of each demand series.
	Bucket sim.Time
	// Demand[i] is job i's demand per bucket.
	Demand [][]units.Rate
}

// Fig1 regenerates Figure 1: each job's communication pattern in isolation
// over a few iterations.
func Fig1() Fig1Result {
	specs := []workload.Spec{
		{Name: "J1", Profile: workload.GPT3},
		{Name: "J2", Profile: workload.GPT2},
		{Name: "J3", Profile: workload.GPT2},
		{Name: "J4", Profile: workload.GPT2},
	}
	res := Fig1Result{Bucket: 50 * sim.Millisecond}
	const horizon = 7200 * sim.Millisecond // 2 GPT-2 periods, 6 GPT-3 periods
	for _, s := range specs {
		res.Names = append(res.Names, s.Name)
		res.Demand = append(res.Demand, workload.DemandTrace(s, LinkCapacity, horizon, res.Bucket))
	}
	return res
}
