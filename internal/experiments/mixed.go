package experiments

import (
	"mltcp/internal/metrics"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// MixedTrafficResult stresses MLTCP with what a shared cluster actually
// carries: two MLTCP DNN jobs plus Poisson websearch background traffic on
// the same bottleneck. The jobs should still interleave (their steady
// iteration time inflated only by the background's bandwidth share) and
// the background flows must not be starved.
type MixedTrafficResult struct {
	// JobSteady are the two jobs' steady-state iteration times.
	JobSteady []sim.Time
	// JobIdeal is the no-contention iteration time.
	JobIdeal sim.Time
	// BackgroundLoad is the offered background load (fraction of the
	// bottleneck).
	BackgroundLoad float64
	// BackgroundCompleted / BackgroundStarted count background flows.
	BackgroundStarted   int
	BackgroundCompleted int
	// BackgroundShortMeanMS is the mean FCT of background flows <100KB.
	BackgroundShortMeanMS float64
}

// MixedTraffic runs the scenario at packet level.
func MixedTraffic(load float64, horizon sim.Time, seed uint64) MixedTrafficResult {
	eng := sim.New()
	// Two job pairs plus two pairs carrying background traffic.
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       4,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  plRate,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})

	profile := ScaledGPT2()
	bytes := int64(profile.CommBytes)
	jobs := make([]*packetJob, 2)
	for i := range jobs {
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i],
			MLTCPRenoFactory(400*sim.Millisecond)(bytes), tcp.Config{})
		jobs[i] = &packetJob{sender: f.Sender, bytes: bytes, compute: profile.ComputeTime}
		jobs[i].start(eng, sim.Time(i)*StaggerOffset)
	}

	// Background: websearch flows between pairs 2 and 3.
	dist := workload.WebSearch()
	rng := sim.NewRNG(seed)
	arrivals := workload.NewPoissonArrivals(load*float64(plRate)/8/dist.Mean(), rng.Fork())
	sizeRNG := rng.Fork()
	pairRNG := rng.Fork()

	type rec struct {
		size        int64
		start, done sim.Time
	}
	var bg []*rec
	nextID := netsim.FlowID(1000)
	var launch func(e *sim.Engine)
	launch = func(e *sim.Engine) {
		if e.Now() >= horizon {
			return
		}
		r := &rec{size: dist.Sample(sizeRNG), start: e.Now()}
		bg = append(bg, r)
		pair := 2 + pairRNG.Intn(2)
		f := tcp.NewFlow(e, nextID, net.Left[pair], net.Right[pair], tcp.NewReno(), tcp.Config{})
		nextID++
		f.Sender.Drained(func(now sim.Time) { r.done = now })
		f.Sender.Write(r.size)
		e.After(arrivals.Next(), launch)
	}
	eng.At(0, launch)
	eng.RunUntil(horizon + 10*sim.Second)

	res := MixedTrafficResult{
		JobIdeal:       profile.ComputeTime + plRate.TransmissionTime(bytes),
		BackgroundLoad: load,
	}
	for _, j := range jobs {
		n := len(j.iterTimes)
		var sum sim.Time
		count := 0
		for k := n - 10; k < n; k++ {
			if k >= 0 {
				sum += j.iterTimes[k]
				count++
			}
		}
		res.JobSteady = append(res.JobSteady, sum/sim.Time(count))
	}
	var short metrics.Series
	res.BackgroundStarted = len(bg)
	for _, r := range bg {
		if r.done == 0 {
			continue
		}
		res.BackgroundCompleted++
		if r.size < 100_000 {
			short = append(short, (r.done-r.start).Seconds()*1000)
		}
	}
	res.BackgroundShortMeanMS = short.Mean()
	return res
}
