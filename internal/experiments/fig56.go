package experiments

import (
	"mltcp/internal/analysis"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Fig5Result is the analytical loss-function curve of Figure 5(c) for two
// identical jobs with a = 1/2: minimum at Δ = T/2, zero at 0 and T.
type Fig5Result struct {
	// DeltaSec are start-time differences across one period, seconds.
	DeltaSec []float64
	// Loss is Equation 4 evaluated at each delta.
	Loss []float64
	// MinDeltaSec is where the sampled minimum falls (should be T/2).
	MinDeltaSec float64
	// Params are the analytical parameters used.
	Params analysis.Params
}

// Fig5 regenerates Figure 5(c) from the closed-form Shift (Equation 3).
func Fig5() Fig5Result {
	p := analysis.DefaultParams(0.5, 1800*sim.Millisecond)
	deltas, losses := p.LossCurve(180)
	minI := 0
	for i, l := range losses {
		if l < losses[minI] {
			minI = i
		}
	}
	return Fig5Result{DeltaSec: deltas, Loss: losses, MinDeltaSec: deltas[minI], Params: p}
}

// Fig6Result captures the sliding effect of Figure 6: two GPT-2 jobs under
// MLTCP-Reno shift a little every iteration until their communication
// phases are disjoint.
type Fig6Result struct {
	Bucket sim.Time
	// Trace holds each job's bandwidth series over the run.
	Trace map[string][]units.Rate
	// DeltaSec[i] is the start-time difference of the two jobs'
	// (i+1)-th communication phases, seconds.
	DeltaSec []float64
	// ShiftSec[i] = DeltaSec[i+1] - DeltaSec[i], the per-iteration shift.
	ShiftSec []float64
	// InterleavedAt is the first iteration whose delta exceeds the comm
	// duration (phases disjoint), -1 if never.
	InterleavedAt int
	// CommDurSec is the communication duration at full rate.
	CommDurSec float64
}

// Fig6 regenerates Figure 6.
func Fig6() Fig6Result {
	const bucket = 50 * sim.Millisecond
	jobs := []*fluid.Job{
		{Spec: workload.Spec{Name: "Job1", Profile: workload.GPT2}, Agg: defaultAgg()},
		{Spec: workload.Spec{Name: "Job2", Profile: workload.GPT2, StartOffset: 2 * StaggerOffset}, Agg: defaultAgg()},
	}
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}, TraceBucket: bucket}, jobs)
	s.Run(60 * sim.Second)

	res := Fig6Result{
		Bucket: bucket,
		Trace: map[string][]units.Rate{
			"Job1": s.Trace(jobs[0]),
			"Job2": s.Trace(jobs[1]),
		},
		CommDurSec:    LinkCapacity.TransmissionTime(int64(workload.GPT2.CommBytes)).Seconds(),
		InterleavedAt: -1,
	}
	n := min(len(jobs[0].CommStarts), len(jobs[1].CommStarts))
	period := workload.GPT2.IdealIterTime(LinkCapacity).Seconds()
	for i := 0; i < n; i++ {
		d := (jobs[1].CommStarts[i] - jobs[0].CommStarts[i]).Seconds()
		// Normalize into [0, T).
		for d < 0 {
			d += period
		}
		for d >= period {
			d -= period
		}
		res.DeltaSec = append(res.DeltaSec, d)
		if res.InterleavedAt < 0 && d >= res.CommDurSec && d <= period-res.CommDurSec {
			res.InterleavedAt = i
		}
	}
	for i := 1; i < len(res.DeltaSec); i++ {
		res.ShiftSec = append(res.ShiftSec, res.DeltaSec[i]-res.DeltaSec[i-1])
	}
	return res
}
