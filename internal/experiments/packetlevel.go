package experiments

import (
	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// PacketLevelResult validates the fluid abstraction end to end: real
// MLTCP-Reno senders (Algorithm 1 verbatim: ACK-gap iteration detection,
// F(bytes_ratio)-scaled congestion avoidance) over the packet-level
// dumbbell, driven by the DNN write/compute loop. The experiment is run at
// 1/100 scale (500 Mbps bottleneck, byte volumes scaled likewise) so that
// iteration times — and therefore the convergence story — are identical to
// the 50 Gbps scenarios while packet counts stay tractable.
type PacketLevelResult struct {
	// CC names the congestion control used ("mltcp-reno", "reno", ...).
	CC string
	// IterTimes[i] are job i's iteration durations (comm start to next
	// comm start).
	IterTimes [][]sim.Time
	// SteadyAvg[i] is job i's average over the last 10 iterations.
	SteadyAvg []sim.Time
	// Ideal is the isolated iteration time.
	Ideal sim.Time
	// InterleavedAt is the first iteration from which every job's
	// duration stays within tol of ideal, -1 if never.
	InterleavedAt int
}

// Packet-level scale: 1/100 of the paper's testbed.
const (
	plRate  = 500 * units.Mbps
	plScale = 0.01
)

// packetJob drives one sender through the DNN loop and records phase
// boundaries.
type packetJob struct {
	sender     *tcp.Sender
	bytes      int64
	compute    sim.Time
	noiseStd   sim.Time
	rng        *sim.RNG
	commStarts []sim.Time
	iterTimes  []sim.Time
}

func (p *packetJob) start(eng *sim.Engine, offset sim.Time) {
	p.sender.Drained(func(now sim.Time) {
		compute := p.compute
		if p.noiseStd > 0 {
			compute = p.rng.NormDuration(compute, p.noiseStd, 0)
		}
		eng.After(compute, func(e *sim.Engine) { p.begin(e) })
	})
	eng.At(offset, func(e *sim.Engine) { p.begin(e) })
}

func (p *packetJob) begin(eng *sim.Engine) {
	now := eng.Now()
	if n := len(p.commStarts); n > 0 {
		p.iterTimes = append(p.iterTimes, now-p.commStarts[n-1])
	}
	p.commStarts = append(p.commStarts, now)
	p.sender.Write(p.bytes)
}

// ccFactory builds a fresh congestion control per flow (MLTCP state is
// per-flow and must not be shared).
type ccFactory func(totalBytes int64) tcp.CongestionControl

// MLTCPRenoFactory builds Algorithm 1 with known parameters.
func MLTCPRenoFactory(compTime sim.Time) ccFactory {
	return func(totalBytes int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewReno(), core.Default(), core.NewTracker(totalBytes, compTime))
	}
}

// MLTCPRenoLearnedFactory builds Algorithm 1 with auto-learned parameters,
// as the paper's kernel module operates when TOTAL_BYTES/COMP_TIME are not
// given.
func MLTCPRenoLearnedFactory(learnGap sim.Time) ccFactory {
	return func(int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewReno(), core.Default(), core.NewLearner(learnGap, 2))
	}
}

// MLTCPCubicFactory wraps CUBIC instead of Reno, exercising §6's note that
// other congestion-control schemes are augmented the same way.
func MLTCPCubicFactory(compTime sim.Time) ccFactory {
	return func(totalBytes int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewCubic(), core.Default(), core.NewTracker(totalBytes, compTime))
	}
}

// MLTCPDCTCPFactory wraps DCTCP; run it with PacketLevelOpts(ecn=true).
func MLTCPDCTCPFactory(compTime sim.Time) ccFactory {
	return func(totalBytes int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewDCTCP(), core.Default(), core.NewTracker(totalBytes, compTime))
	}
}

// MLTCPSwiftFactory wraps the delay-based Swift, showing the technique
// also applies outside the loss-based family.
func MLTCPSwiftFactory(compTime sim.Time) ccFactory {
	return func(totalBytes int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewSwift(), core.Default(), core.NewTracker(totalBytes, compTime))
	}
}

// RenoFactory builds plain Reno.
func RenoFactory() ccFactory {
	return func(int64) tcp.CongestionControl { return tcp.NewReno() }
}

// PacketLevel runs n scaled GPT-2 jobs at packet level with the given CC
// factory for `horizon` and summarizes convergence. noiseStd adds zero-mean
// Gaussian noise to every compute phase, the §4 perturbation model; with
// noise, only a scheme with a restoring force toward interleaving (MLTCP)
// keeps iteration times near ideal — fair sharing random-walks back into
// collisions.
func PacketLevel(n int, factory ccFactory, ccName string, horizon, noiseStd sim.Time) PacketLevelResult {
	return PacketLevelProfile(n, factory, ccName, horizon, noiseStd, ScaledGPT2())
}

// ScaledGPT2 is the GPT-2 profile with bytes at 1/100 (for the 500 Mbps
// bottleneck) and the compute phase at full duration, so iteration
// structure matches the 50 Gbps scenario.
func ScaledGPT2() workload.Profile {
	p := workload.GPT2.Scale(plScale)
	p.ComputeTime = workload.GPT2.ComputeTime
	return p
}

// TightProfile returns an n-job profile with the given per-job duty cycle
// (comm fraction of the 1.8 s period) at packet-level scale. High aggregate
// duty (n×duty near 1) makes the Reno-vs-MLTCP contrast sharp: noise knocks
// a tight schedule out of alignment and only MLTCP restores it.
func TightProfile(duty float64) workload.Profile {
	period := 1800 * sim.Millisecond
	comm := period.Scale(duty)
	return workload.Profile{
		Name:        "tight",
		ComputeTime: period - comm,
		CommBytes:   units.ByteCount(plRate.BytesIn(comm)),
	}
}

// PacketLevelProfile is PacketLevel with an explicit (already scaled)
// profile.
func PacketLevelProfile(n int, factory ccFactory, ccName string, horizon, noiseStd sim.Time, profile workload.Profile) PacketLevelResult {
	return PacketLevelOpts(n, factory, ccName, horizon, noiseStd, profile, false)
}

// PacketLevelOpts additionally enables ECN: the bottleneck marks above a
// 20-packet threshold and senders negotiate ECN-capable transport, the
// configuration MLTCP-DCTCP needs.
func PacketLevelOpts(n int, factory ccFactory, ccName string, horizon, noiseStd sim.Time, profile workload.Profile, ecn bool) PacketLevelResult {
	eng := sim.New()
	cfg := netsim.DumbbellConfig{
		HostPairs:       n,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  plRate,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	}
	if ecn {
		cfg.BottleneckQueue = func() netsim.Queue {
			return netsim.NewECNQueue(
				netsim.NewDropTail(netsim.DefaultQueuePackets*netsim.DefaultMTU),
				20*netsim.DefaultMTU)
		}
	}
	net := netsim.NewDumbbell(eng, cfg)
	bytes := int64(profile.CommBytes)

	jobs := make([]*packetJob, n)
	for i := 0; i < n; i++ {
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i],
			factory(bytes), tcp.Config{ECN: ecn})
		jobs[i] = &packetJob{
			sender:   f.Sender,
			bytes:    bytes,
			compute:  profile.ComputeTime,
			noiseStd: noiseStd,
			//lint:allow seedflow per-flow index seeds are pinned by golden packet traces; sim.NewRNGAt would change every stream
			rng: sim.NewRNG(uint64(i + 1)),
		}
		jobs[i].start(eng, sim.Time(i)*StaggerOffset)
	}
	eng.RunUntil(horizon)

	ideal := profile.ComputeTime + plRate.TransmissionTime(bytes)
	res := PacketLevelResult{CC: ccName, Ideal: ideal, InterleavedAt: -1}
	for _, j := range jobs {
		res.IterTimes = append(res.IterTimes, j.iterTimes)
		var sum sim.Time
		count := 0
		for k := len(j.iterTimes) - 10; k < len(j.iterTimes); k++ {
			if k >= 0 {
				sum += j.iterTimes[k]
				count++
			}
		}
		if count > 0 {
			res.SteadyAvg = append(res.SteadyAvg, sum/sim.Time(count))
		} else {
			res.SteadyAvg = append(res.SteadyAvg, 0)
		}
	}
	res.InterleavedAt = packetConverged(res.IterTimes, ideal, 0.08)
	return res
}

func packetConverged(iterTimes [][]sim.Time, ideal sim.Time, tol float64) int {
	maxIter := 0
	for _, ts := range iterTimes {
		if len(ts) > maxIter {
			maxIter = len(ts)
		}
	}
	for k := 0; k < maxIter; k++ {
		ok := true
		for _, ts := range iterTimes {
			for _, d := range ts[min(k, len(ts)):] {
				if diff := d.Seconds()/ideal.Seconds() - 1; diff > tol || diff < -tol {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return k
		}
	}
	return -1
}
