package experiments

import (
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

func TestSlopeInterceptSweep(t *testing.T) {
	t.Parallel()
	pts := SlopeInterceptSweep(10 * sim.Millisecond)
	if len(pts) != 7 {
		t.Fatalf("%d points", len(pts))
	}
	byKey := map[[2]float64]SweepPoint{}
	for _, p := range pts {
		byKey[[2]float64{p.Slope, p.Intercept}] = p
	}
	def := byKey[[2]float64{core.DefaultSlope, core.DefaultIntercept}]
	if def.ConvergedAt < 0 {
		t.Fatal("paper defaults did not converge")
	}
	if def.SteadySlowdown > 1.05 {
		t.Errorf("defaults steady slowdown %.3f, want within 5%%", def.SteadySlowdown)
	}
	// A much flatter slope differentiates less and converges no faster
	// than the default.
	flat := byKey[[2]float64{0.5, 0.25}]
	if flat.ConvergedAt >= 0 && def.ConvergedAt >= 0 && flat.ConvergedAt < def.ConvergedAt-5 {
		t.Errorf("flat slope converged at %d, default at %d — expected slower or similar",
			flat.ConvergedAt, def.ConvergedAt)
	}
	// Every configuration with positive slope should eventually settle
	// near ideal (monotone F always interleaves, §3.1).
	for _, p := range pts {
		if p.SteadySlowdown > 1.10 {
			t.Errorf("S=%.2f I=%.2f steady slowdown %.3f, want < 1.10", p.Slope, p.Intercept, p.SteadySlowdown)
		}
	}
}

func TestScalability(t *testing.T) {
	t.Parallel()
	pts := Scalability([]int{2, 4, 8})
	for _, p := range pts {
		if !p.OptimizerInterleaved {
			t.Errorf("N=%d: optimizer found no interleaving (duty %.2f should fit)",
				p.N, float64(p.N)/9)
		}
		if p.MLTCPConvergedAt < 0 {
			t.Errorf("N=%d: MLTCP did not converge", p.N)
		}
		if p.MLTCPSlowdown > 1.05 {
			t.Errorf("N=%d: MLTCP steady slowdown %.3f", p.N, p.MLTCPSlowdown)
		}
	}
	// The paper's point: MLTCP's convergence stays a bounded number of
	// iterations as N grows (no controller recomputation).
	if last := pts[len(pts)-1]; last.MLTCPConvergedAt > 100 {
		t.Errorf("N=8 converged only at iteration %d", last.MLTCPConvergedAt)
	}
}

// Jobs arriving at different times (§3.1: "regardless of job start
// times"): a third job joining a converged pair forces re-convergence and
// everyone returns to ideal.
func TestDynamicJobArrival(t *testing.T) {
	t.Parallel()
	agg := defaultAgg()
	mk := func(name string, offset sim.Time) *fluid.Job {
		return &fluid.Job{
			Spec: workload.Spec{Name: name, Profile: workload.GPT2, StartOffset: offset},
			Agg:  agg,
		}
	}
	j1 := mk("J1", 0)
	j2 := mk("J2", StaggerOffset)
	j3 := mk("J3", 60*sim.Second+5*sim.Millisecond) // joins long after 1&2 settle
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}},
		[]*fluid.Job{j1, j2, j3})
	s.Run(180 * sim.Second)

	ideal := workload.GPT2.IdealIterTime(LinkCapacity)
	for _, j := range []*fluid.Job{j1, j2, j3} {
		n := len(j.IterDurations)
		if n < 20 {
			t.Fatalf("%s: %d iterations", j.Spec.Name, n)
		}
		var sum sim.Time
		for _, d := range j.IterDurations[n-10:] {
			sum += d
		}
		avg := sum / 10
		if diff := avg.Seconds()/ideal.Seconds() - 1; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s steady iteration %v, want within 5%% of %v", j.Spec.Name, avg, ideal)
		}
	}
	// J1 and J2 must have been disturbed by the arrival (some iteration
	// after 60s exceeds ideal) and then recovered — i.e. the system
	// actually re-converged rather than never having been perturbed.
	disturbed := false
	for i, d := range j1.IterDurations {
		at := j1.CommStarts[i]
		if at > 60*sim.Second && d > ideal+50*sim.Millisecond {
			disturbed = true
		}
	}
	if !disturbed {
		t.Log("note: arrival caused no measurable disturbance to J1 (lucky slot)")
	}
}

// A heterogeneous mix of profiles: {GPT-3, 2×GPT-2}. A fully interleaved
// schedule exists (offsets 0 / 0.4 / 1.6 s tile the 3.6 s hyperperiod with
// zero overlap), but MLTCP's distributed descent reproducibly settles in a
// stable limit cycle ~6-7% above ideal, robust to noise — a mixed-period
// case outside the paper's §4 analysis (which studies identical jobs).
// The four-job Fig. 2 mix does reach its optimum, so this is workload-
// specific. Recorded in EXPERIMENTS.md as an observed limitation; the test
// pins the behaviour: near-ideal (under 8%) but measurably off optimal.
func TestHeterogeneousMixNearInterleaves(t *testing.T) {
	t.Parallel()
	agg := defaultAgg()
	profiles := []workload.Profile{workload.GPT3, workload.GPT2, workload.GPT2}
	jobs := make([]*fluid.Job, len(profiles))
	for i, p := range profiles {
		jobs[i] = &fluid.Job{
			Spec: workload.Spec{
				Name:        p.Name,
				Profile:     p,
				StartOffset: sim.Time(i) * StaggerOffset,
				NoiseStd:    5 * sim.Millisecond,
				Seed:        uint64(i + 1),
			},
			Agg: agg,
		}
	}
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
	s.Run(250 * sim.Second)
	// Sanity: the interleaved schedule really exists for this mix.
	shapes := []sched.Shape{
		sched.ShapeOf(workload.GPT3, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
	}
	if got := sched.Overlap(shapes, []sim.Time{0, 400 * sim.Millisecond, 1600 * sim.Millisecond}); got != 0 {
		t.Fatalf("reference tiling overlaps by %v; test premise broken", got)
	}
	for _, j := range jobs {
		ideal := j.Spec.Profile.IdealIterTime(LinkCapacity)
		avg := j.AvgIterTime(60)
		diff := avg.Seconds()/ideal.Seconds() - 1
		if diff > 0.08 {
			t.Errorf("%s steady %v, want under 8%% above %v", j.Spec.Name, avg, ideal)
		}
		if diff < -0.01 {
			t.Errorf("%s steady %v below ideal %v — impossible", j.Spec.Name, avg, ideal)
		}
	}
}
