package experiments

import (
	"testing"

	"mltcp/internal/metrics"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

func steadyMean(r PacketLevelResult, skip int) float64 {
	var all metrics.Series
	for _, ts := range r.IterTimes {
		for i, d := range ts {
			if i >= skip {
				all = append(all, d.Seconds())
			}
		}
	}
	return all.Mean()
}

// The flagship end-to-end validation: real MLTCP-Reno senders (Algorithm 1
// over the packet-level TCP stack) interleave a noisy, tightly packed
// four-job workload and hold near-ideal iteration times, while plain Reno
// under identical noise degrades substantially. This is the packet-level
// counterpart of the fluid results and the check that the fluid weighted-
// share abstraction is faithful.
func TestPacketLevelMLTCPBeatsRenoUnderNoise(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~15s")
	}
	const (
		horizon = 90 * sim.Second
		noise   = 25 * sim.Millisecond
		skip    = 15
	)
	prof := TightProfile(0.22) // 4 jobs × 22% = 88% aggregate duty
	ml := PacketLevelProfile(4, MLTCPRenoFactory(400*sim.Millisecond), "mltcp-reno", horizon, noise, prof)
	reno := PacketLevelProfile(4, RenoFactory(), "reno", horizon, noise, prof)

	ideal := ml.Ideal.Seconds()
	mlMean := steadyMean(ml, skip)
	renoMean := steadyMean(reno, skip)
	if mlMean > ideal*1.08 {
		t.Errorf("MLTCP steady mean %.3fs, want within 8%% of ideal %.3fs", mlMean, ideal)
	}
	if renoMean < ideal*1.10 {
		t.Errorf("Reno steady mean %.3fs unexpectedly near ideal %.3fs — no contrast", renoMean, ideal)
	}
	if mlMean >= renoMean {
		t.Errorf("MLTCP (%.3fs) should beat Reno (%.3fs)", mlMean, renoMean)
	}
}

// Without noise the deterministic packet-level MLTCP jobs converge to the
// ideal iteration time within the paper's ~20 iterations.
func TestPacketLevelMLTCPConvergesDeterministic(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~5s")
	}
	res := PacketLevel(2, MLTCPRenoFactory(400*sim.Millisecond), "mltcp-reno", 60*sim.Second, 0)
	if res.InterleavedAt < 0 || res.InterleavedAt > 20 {
		t.Errorf("interleaved at %d, want within 20 iterations", res.InterleavedAt)
	}
	for i, avg := range res.SteadyAvg {
		if diff := avg.Seconds()/res.Ideal.Seconds() - 1; diff > 0.02 || diff < -0.02 {
			t.Errorf("job %d steady avg %v, want within 2%% of %v", i, avg, res.Ideal)
		}
	}
}

// Auto-learned TOTAL_BYTES/COMP_TIME must work as well as given parameters
// once the first iterations have been observed.
func TestPacketLevelAutoLearnedParameters(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~5s")
	}
	res := PacketLevel(2, MLTCPRenoLearnedFactory(100*sim.Millisecond), "mltcp-reno-learned", 60*sim.Second, 0)
	for i, avg := range res.SteadyAvg {
		if diff := avg.Seconds()/res.Ideal.Seconds() - 1; diff > 0.03 || diff < -0.03 {
			t.Errorf("job %d steady avg %v with learned params, want within 3%% of %v", i, avg, res.Ideal)
		}
	}
}

func TestFairnessClaims(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level sweep takes ~5s")
	}
	res := FairnessWithHorizon(30 * sim.Second)
	// Reno follows the Mathis 1/√p law.
	if res.RenoExponent > -0.35 || res.RenoExponent < -0.65 {
		t.Errorf("Reno loss exponent = %.3f, want ≈ -0.5", res.RenoExponent)
	}
	// §5: at the same loss probability, MLTCP-Reno claims more
	// bandwidth than standard Reno...
	if res.AdvantageRatio < 1.2 {
		t.Errorf("MLTCP advantage ratio = %.3f, want > 1.2 (≈√2)", res.AdvantageRatio)
	}
	for i := range res.LossProbs {
		if res.MLTCPMbps[i] <= res.RenoMbps[i] {
			t.Errorf("p=%.3f: MLTCP %.1f <= Reno %.1f Mbps", res.LossProbs[i], res.MLTCPMbps[i], res.RenoMbps[i])
		}
	}
	// ...claims more than its fair share when coexisting...
	if res.ShareRatio < 1.1 {
		t.Errorf("coexistence share ratio = %.3f, want > 1.1", res.ShareRatio)
	}
	// ...but does not starve the legacy flow.
	if res.RenoShareOfFair < 0.25 {
		t.Errorf("coexisting Reno at %.2f of fair share — starved", res.RenoShareOfFair)
	}
}

// MLTCP wrapped around CUBIC and DCTCP also converges (§6: "Other
// congestion control schemes are augmented in a similar way").
func TestPacketLevelMLTCPOverOtherBases(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level runs take ~10s")
	}
	cases := []struct {
		name    string
		factory ccFactory
		ecn     bool
	}{
		{"mltcp-cubic", MLTCPCubicFactory(400 * sim.Millisecond), false},
		{"mltcp-dctcp", MLTCPDCTCPFactory(400 * sim.Millisecond), true},
		{"mltcp-swift", MLTCPSwiftFactory(400 * sim.Millisecond), false},
	}
	for _, c := range cases {
		res := PacketLevelOpts(2, c.factory, c.name, 60*sim.Second, 0, ScaledGPT2(), c.ecn)
		for i, avg := range res.SteadyAvg {
			if diff := avg.Seconds()/res.Ideal.Seconds() - 1; diff > 0.05 || diff < -0.05 {
				t.Errorf("%s job %d steady avg %v, want within 5%% of %v", c.name, i, avg, res.Ideal)
			}
		}
	}
}

// Extension: the long job of a parking-lot chain interleaves against both
// of its per-trunk neighbours simultaneously under MLTCP.
func TestMultiBottleneckInterleaving(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~8s")
	}
	res := MultiBottleneck(MLTCPRenoFactory(400*sim.Millisecond), 90*sim.Second)
	for i, avg := range res.SteadyAvg {
		if diff := avg.Seconds()/res.Ideal.Seconds() - 1; diff > 0.05 || diff < -0.05 {
			t.Errorf("%s steady avg %v, want within 5%% of %v", res.Names[i], avg, res.Ideal)
		}
	}
}

// §3.1 requirement (i): the aggressiveness function's range must be "large
// enough to absorb the noise (e.g., slight variations in round-trip time)".
// With Gaussian RTT jitter on the bottleneck, MLTCP still interleaves.
func TestPacketLevelConvergesUnderRTTJitter(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~5s")
	}
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	net.Forward.JitterStd = 20 * sim.Microsecond
	net.Forward.RNG = sim.NewRNG(11)
	net.Reverse.JitterStd = 20 * sim.Microsecond
	net.Reverse.RNG = sim.NewRNG(12)

	profile := ScaledGPT2()
	bytes := int64(profile.CommBytes)
	jobs := make([]*packetJob, 2)
	for i := range jobs {
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i],
			MLTCPRenoFactory(400*sim.Millisecond)(bytes), tcp.Config{})
		jobs[i] = &packetJob{sender: f.Sender, bytes: bytes, compute: profile.ComputeTime}
		jobs[i].start(eng, sim.Time(i)*StaggerOffset)
	}
	eng.RunUntil(60 * sim.Second)
	ideal := profile.ComputeTime + plRate.TransmissionTime(bytes)
	for i, j := range jobs {
		n := len(j.iterTimes)
		var sum sim.Time
		for _, d := range j.iterTimes[n-10:] {
			sum += d
		}
		avg := sum / 10
		if diff := avg.Seconds()/ideal.Seconds() - 1; diff > 0.03 || diff < -0.03 {
			t.Errorf("job %d steady %v under jitter, want within 3%% of %v", i, avg, ideal)
		}
	}
}

// Delayed ACKs make cumulative ACKs routinely cover two packets
// (Algorithm 1's num_acks = 2); MLTCP's convergence must be unaffected.
func TestPacketLevelConvergesWithDelayedAcks(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~3s")
	}
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	profile := ScaledGPT2()
	bytes := int64(profile.CommBytes)
	jobs := make([]*packetJob, 2)
	for i := range jobs {
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), net.Left[i], net.Right[i],
			MLTCPRenoFactory(400*sim.Millisecond)(bytes),
			tcp.Config{DelayedAck: true})
		jobs[i] = &packetJob{sender: f.Sender, bytes: bytes, compute: profile.ComputeTime}
		jobs[i].start(eng, sim.Time(i)*StaggerOffset)
	}
	eng.RunUntil(60 * sim.Second)
	ideal := profile.ComputeTime + plRate.TransmissionTime(bytes)
	for i, j := range jobs {
		n := len(j.iterTimes)
		var sum sim.Time
		for _, d := range j.iterTimes[n-10:] {
			sum += d
		}
		avg := sum / 10
		if diff := avg.Seconds()/ideal.Seconds() - 1; diff > 0.03 || diff < -0.03 {
			t.Errorf("job %d steady %v with delayed ACKs, want within 3%% of %v", i, avg, ideal)
		}
	}
}
