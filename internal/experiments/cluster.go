package experiments

// This file generates cluster-scale trace-driven scenarios: many jobs
// arriving on a fabric topology over time, the setting where MLTCP's
// per-bottleneck self-interleaving has to add up to a cluster-wide
// effect. The generator turns a seeded Poisson arrival process into an
// ordinary config.Scenario — placement, arrival offsets, and iteration
// budgets are baked into the job list — so the scenario runs through the
// same backends, harness, and telemetry as every hand-written one, with
// all determinism contracts intact.

import (
	"context"
	"fmt"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

// ClusterOpts parameterizes ClusterScenario. The zero value yields the
// standard 100-job fat-tree(8) trace.
type ClusterOpts struct {
	// Topology is the fabric (default fat-tree k=8: 32 racks, 128 hosts).
	Topology *config.Topology
	// Jobs is the number of arriving jobs (default 100).
	Jobs int
	// ArrivalRatePerSec is the Poisson arrival rate (default 2).
	ArrivalRatePerSec float64
	// MeanIters is the mean per-job iteration budget; each job draws
	// uniformly from [1, 2·MeanIters-1] (default 40).
	MeanIters int
	// DurationSec is the horizon (default 120).
	DurationSec float64
	// Profiles cycles job model shapes (default all built-ins).
	Profiles []string
	// Seed drives the arrival, placement, and budget streams. The run
	// seed passed to the backend is separate: it perturbs noise, not the
	// trace shape.
	Seed uint64
	// Policy is the scheduling scheme (default mltcp).
	Policy string
}

// ClusterScenario generates a trace-driven cluster scenario: jobs arrive
// by a seeded Poisson process, land on seeded random rack pairs, and
// depart after a seeded iteration budget. The result is a pure function
// of opts — two calls are identical — so harness replication and trace
// byte-identity hold for generated scenarios exactly as for checked-in
// ones.
func ClusterScenario(o ClusterOpts) *config.Scenario {
	topo := o.Topology
	if topo == nil {
		topo = &config.Topology{Kind: config.KindFatTree, K: 8}
	}
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = 100
	}
	rate := o.ArrivalRatePerSec
	if rate <= 0 {
		rate = 2
	}
	meanIters := o.MeanIters
	if meanIters <= 0 {
		meanIters = 40
	}
	dur := o.DurationSec
	if dur <= 0 {
		dur = 120
	}
	profiles := o.Profiles
	if len(profiles) == 0 {
		profiles = workload.Names()
	}
	policy := o.Policy
	if policy == "" {
		policy = "mltcp"
	}

	rng := sim.NewRNG(o.Seed)
	arrivals := workload.NewPoissonArrivals(rate, rng)
	racks := topo.Racks()
	var at sim.Time
	list := make([]config.Job, jobs)
	for i := range list {
		at += arrivals.Next()
		src := rng.Intn(racks)
		dst := rng.Intn(racks)
		if dst == src && racks > 1 {
			// Keep cross-rack traffic the common case; fabrics with one
			// rack fall back to intra-rack flows.
			dst = (dst + 1) % racks
		}
		list[i] = config.Job{
			Name:     fmt.Sprintf("j%03d", i),
			Profile:  profiles[i%len(profiles)],
			OffsetMS: at.Seconds() * 1e3,
			SrcRack:  fmt.Sprintf("rack%d", src),
			DstRack:  fmt.Sprintf("rack%d", dst),
			Iters:    1 + rng.Intn(2*meanIters-1),
			Seed:     uint64(i+1) * 1000,
		}
	}
	zero := 0.0
	return &config.Scenario{
		Name:        fmt.Sprintf("cluster-%s-%dj", topo.Label(), jobs),
		Policy:      policy,
		DurationSec: dur,
		StaggerMS:   &zero, // Poisson offsets already break symmetry
		Topology:    topo,
		Jobs:        list,
	}
}

// ClusterGrid generates the cluster scenario and runs `runs` seeded
// replicas on the fluid backend across the harness worker pool. Replica
// seeds perturb the jobs' noise streams; the trace shape (arrivals,
// placement, budgets) is fixed by opts.Seed.
func ClusterGrid(ctx context.Context, o ClusterOpts, runs int, baseSeed uint64, workers int) ([]*backend.Result, error) {
	return ScenarioGrid(ctx, &backend.Fluid{}, ClusterScenario(o), runs, baseSeed, workers)
}
