package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
)

// gridScenario is cheap enough to replicate many times at either
// fidelity: two noisy jobs, a short horizon.
func gridScenario() *config.Scenario {
	return &config.Scenario{
		Name: "grid", Policy: "mltcp", DurationSec: 4,
		Jobs: []config.Job{
			{Name: "A", ComputeMS: 300, CommMB: 250, NoiseMS: 10},
			{Name: "B", ComputeMS: 150, CommMB: 125, NoiseMS: 10},
		},
	}
}

// ScenarioGrid must return the same result slice at any worker count:
// replica seeds derive from (baseSeed, index), never from scheduling.
func TestScenarioGridDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	for _, b := range []backend.Backend{&backend.Fluid{}, &backend.Packet{}} {
		serial, err := ScenarioGrid(ctx, b, gridScenario(), 6, 11, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", b.Name(), err)
		}
		pooled, err := ScenarioGrid(ctx, b, gridScenario(), 6, 11, 8)
		if err != nil {
			t.Fatalf("%s workers=8: %v", b.Name(), err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Errorf("%s: workers=1 and workers=8 results differ", b.Name())
		}
		if len(serial) != 6 {
			t.Fatalf("%s: got %d results, want 6", b.Name(), len(serial))
		}
		// Replicas must be independent draws, not copies of replica 0.
		distinct := false
		for _, r := range serial[1:] {
			if !reflect.DeepEqual(serial[0].Jobs, r.Jobs) {
				distinct = true
				break
			}
		}
		if !distinct {
			t.Errorf("%s: all replicas identical despite per-job noise", b.Name())
		}
	}
}

// TestCrossFidelityExplain pins the diagnosis hook on a cheap scenario:
// a generous tolerance reports agreement, a zero tolerance names the
// first diverging iteration per job.
func TestCrossFidelityExplain(t *testing.T) {
	t.Parallel()
	cf, err := CrossFidelity(context.Background(), gridScenario(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg := cf.Explain(1e9); !strings.Contains(msg, "agree within tolerance") {
		t.Fatalf("generous tolerance did not report agreement: %s", msg)
	}
	if msg := cf.Explain(0); !strings.Contains(msg, "first per-iteration divergences") {
		t.Fatalf("zero tolerance found no divergence between fidelities: %s", msg)
	}
}

func TestScenarioGridSurfacesBackendErrors(t *testing.T) {
	t.Parallel()
	scn := gridScenario()
	scn.Policy = "srpt" // fluid-only: the packet backend rejects it
	if _, err := ScenarioGrid(context.Background(), &backend.Packet{}, scn, 3, 1, 2); err == nil {
		t.Fatal("ScenarioGrid swallowed a per-point backend error")
	}
}

// Cross-fidelity validation (the m4 property): the canonical two-job
// scenario must tell the same convergence story at both fidelities.
// Tolerances are the documented agreement contract:
//   - per-job steady-state slowdown within 0.05 of each other,
//   - overlap scores within 0.10,
//   - per-iteration byte totals exact after unscaling (the packet scale
//     divides the profile byte counts, so rounding introduces no error),
//   - both fidelities interleave (InterleavedAt >= 0) under MLTCP.
func TestCrossFidelityCanonicalAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("90s-horizon packet run")
	}
	t.Parallel()
	cf, err := CrossFidelityCanonical(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if cf.MaxSlowdownGap > 0.05 {
		t.Errorf("max slowdown gap %.4f exceeds 0.05 (gaps %v)", cf.MaxSlowdownGap, cf.SlowdownGap)
	}
	if cf.OverlapGap > 0.10 {
		t.Errorf("overlap gap %.4f exceeds 0.10 (fluid %.3f, packet %.3f)",
			cf.OverlapGap, cf.Fluid.OverlapScore, cf.Packet.OverlapScore)
	}
	for i, gap := range cf.BytesPerIterGap {
		if gap != 0 {
			t.Errorf("job %d: per-iteration byte gap %.6f, want exact", i, gap)
		}
	}
	if cf.Fluid.InterleavedAt < 0 {
		t.Error("fluid run never interleaved under MLTCP")
	}
	if cf.Packet.InterleavedAt < 0 {
		t.Error("packet run never interleaved under MLTCP")
	}
	for i := range cf.Fluid.Jobs {
		if f, p := cf.Fluid.Jobs[i].Iterations(), cf.Packet.Jobs[i].Iterations(); f < 30 || p < 30 {
			t.Errorf("job %d: too few iterations to compare (fluid %d, packet %d)", i, f, p)
		}
	}
	if t.Failed() {
		// Localize the disagreement: name the first iteration where each
		// job's fluid and packet completion times drift past the slowdown
		// tolerance, instead of leaving only aggregate gaps.
		t.Log(cf.Explain(0.05))
	}
}
