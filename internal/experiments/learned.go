package experiments

// This file wires the learned backend into the cross-fidelity machinery:
// prediction error versus an exact backend is a first-class tracked
// metric, evaluated on the same canonical scenarios the fluid/packet
// comparison uses. The quick cluster opts live here (not in learn/gen) so
// both the corpus generator and the evaluation agree on the scenario
// without an import cycle.

import (
	"context"
	"fmt"
	"math"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/learn"
)

// QuickClusterOpts is the small trace-driven cluster scenario used for
// quick benchmarks and the learned backend's acceptance evaluation: a
// fat-tree(4) with 24 arriving jobs over a 10 s horizon.
func QuickClusterOpts() ClusterOpts {
	return ClusterOpts{
		Topology:          &config.Topology{Kind: config.KindFatTree, K: 4},
		Jobs:              24,
		ArrivalRatePerSec: 8,
		MeanIters:         8,
		DurationSec:       10,
		Seed:              11,
	}
}

// LearnedEvalScenarios returns the scenarios the learned backend's
// prediction error is tracked on: the canonical 2×gpt2 dumbbell and the
// quick cluster trace.
func LearnedEvalScenarios() []*config.Scenario {
	return []*config.Scenario{CanonicalTwoJob(), ClusterScenario(QuickClusterOpts())}
}

// LearnedComparison quantifies learned-vs-exact agreement on one
// scenario, the learned tier's analogue of CrossFidelityResult.
type LearnedComparison struct {
	Scenario       string
	Learned, Exact *backend.Result
	// RelErr[i] is job i's relative steady-state slowdown error
	// |learned − exact| / exact (1.0 when exactly one side saw the job
	// never complete an iteration); MeanRelErr and MaxRelErr aggregate it.
	RelErr     []float64
	MeanRelErr float64
	MaxRelErr  float64
	// OverlapGap is |learned − exact| overlap score.
	OverlapGap float64
}

// CrossFidelityLearned runs the scenario on the learned backend and the
// exact fluid backend from the same seed and summarizes the prediction
// error. skip is the steady-state transient cut (learn.SteadySkip for the
// tracked metric).
func CrossFidelityLearned(ctx context.Context, lb *backend.Learned, scn *config.Scenario, seed uint64, skip int) (*LearnedComparison, error) {
	if lb == nil {
		lb = &backend.Learned{}
	}
	ex, err := (&backend.Fluid{}).Run(ctx, scn, seed)
	if err != nil {
		return nil, err
	}
	pr, err := lb.Run(ctx, scn, seed)
	if err != nil {
		return nil, err
	}
	if len(ex.Jobs) != len(pr.Jobs) {
		return nil, fmt.Errorf("experiments: learned expanded %d jobs, fluid %d", len(pr.Jobs), len(ex.Jobs))
	}
	cmp := &LearnedComparison{Scenario: scn.Name, Learned: pr, Exact: ex}
	var sum float64
	for i := range ex.Jobs {
		e, p := ex.Jobs[i].Slowdown(skip), pr.Jobs[i].Slowdown(skip)
		var rel float64
		switch {
		case e > 0:
			rel = math.Abs(p-e) / e
		case p > 0:
			rel = 1
		}
		cmp.RelErr = append(cmp.RelErr, rel)
		sum += rel
		if rel > cmp.MaxRelErr {
			cmp.MaxRelErr = rel
		}
	}
	if len(cmp.RelErr) > 0 {
		cmp.MeanRelErr = sum / float64(len(cmp.RelErr))
	}
	cmp.OverlapGap = math.Abs(pr.OverlapScore - ex.OverlapScore)
	return cmp, nil
}

// LearnedEval evaluates the learned backend on every tracked scenario at
// the standard skip and seed, returning one comparison per scenario.
func LearnedEval(ctx context.Context, lb *backend.Learned, seed uint64) ([]*LearnedComparison, error) {
	var out []*LearnedComparison
	for _, scn := range LearnedEvalScenarios() {
		cmp, err := CrossFidelityLearned(ctx, lb, scn, seed, learn.SteadySkip)
		if err != nil {
			return nil, fmt.Errorf("experiments: learned eval %q: %w", scn.Name, err)
		}
		out = append(out, cmp)
	}
	return out, nil
}
