package experiments

import (
	"testing"

	"mltcp/internal/fluid"
	"mltcp/internal/sim"
)

func TestNoiseRobustnessCentralizedDecaysMLTCPHolds(t *testing.T) {
	t.Parallel()
	pts := NoiseRobustness([]sim.Time{0, 20 * sim.Millisecond, 40 * sim.Millisecond}, 300*sim.Second)

	// Noiseless: both near ideal.
	if pts[0].CentralizedSlowdown > 1.02 || pts[0].MLTCPSlowdown > 1.02 {
		t.Errorf("noiseless slowdowns %.3f/%.3f, want ~1.0",
			pts[0].CentralizedSlowdown, pts[0].MLTCPSlowdown)
	}
	// Under noise the static schedule decays while MLTCP self-corrects.
	last := pts[len(pts)-1]
	if last.MLTCPSlowdown > 1.10 {
		t.Errorf("MLTCP slowdown %.3f at σ=%.0fms, want near ideal", last.MLTCPSlowdown, last.SigmaMS)
	}
	if last.CentralizedSlowdown < last.MLTCPSlowdown+0.05 {
		t.Errorf("static centralized (%.3f) should degrade well beyond MLTCP (%.3f) at σ=%.0fms",
			last.CentralizedSlowdown, last.MLTCPSlowdown, last.SigmaMS)
	}
	// Decay should grow with noise.
	if pts[1].CentralizedSlowdown > last.CentralizedSlowdown+0.02 {
		t.Errorf("centralized decay not increasing in σ: %.3f then %.3f",
			pts[1].CentralizedSlowdown, last.CentralizedSlowdown)
	}
}

func TestChurnMLTCPBeatsRenoAndSRPT(t *testing.T) {
	t.Parallel()
	const (
		nJobs = 6
		iters = 60
		seed  = 3
	)
	mltcp := Churn("mltcp", fluid.WeightedShare{}, defaultAgg(), nJobs, iters, seed)
	reno := Churn("reno", fluid.WeightedShare{}, nil, nJobs, iters, seed)
	srpt := Churn("srpt", fluid.SRPT{}, nil, nJobs, iters, seed)

	for _, r := range []ChurnResult{mltcp, reno, srpt} {
		if r.Jobs != nJobs {
			t.Fatalf("%s: only %d/%d jobs completed", r.Scheme, r.Jobs, nJobs)
		}
	}
	// Whole-lifetime means include each job's convergence transient and
	// the 89%-duty heterogeneous mix's residual, so "near ideal" here is
	// a ~1.1 bound rather than the steady-state 1.00.
	if mltcp.MeanSlowdown > 1.10 {
		t.Errorf("MLTCP churn mean slowdown %.3f, want near ideal", mltcp.MeanSlowdown)
	}
	if reno.MeanSlowdown < mltcp.MeanSlowdown+0.03 {
		t.Errorf("Reno churn (%.3f) should be clearly worse than MLTCP (%.3f)",
			reno.MeanSlowdown, mltcp.MeanSlowdown)
	}
	// SRPT's worst job (the big GPT-3-like one) must fare worse than it
	// does under MLTCP — the Fig. 2b victimization, under churn.
	if srpt.MaxSlowdown < mltcp.MaxSlowdown+0.05 {
		t.Errorf("SRPT worst job (%.3f) should exceed MLTCP worst (%.3f)",
			srpt.MaxSlowdown, mltcp.MaxSlowdown)
	}
}
