package experiments

import (
	"mltcp/internal/fluid"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Fig2Result compares one scheduling scheme on the four-job scenario of
// Figure 2 (J1 = GPT-3-like, J2–J4 = GPT-2-like over a 50 Gbps bottleneck).
type Fig2Result struct {
	// Scheme names the approach ("centralized", "srpt", "mltcp-reno").
	Scheme string
	// Jobs summarizes each job's steady-state iteration time.
	Jobs []JobStats
	// Bucket and Bandwidth give a per-job bottleneck bandwidth trace for
	// the schedule plot.
	Bucket    sim.Time
	Bandwidth map[string][]units.Rate
	// ConvergedAt is the first iteration index from which every job's
	// iteration time stays within 5% of its ideal (-1 if never; only
	// meaningful for MLTCP, the others are static schedules).
	ConvergedAt int
}

const (
	fig2Horizon = 120 * sim.Second
	fig2Skip    = 30 // iterations of transient skipped in steady-state averages
	fig2Bucket  = 50 * sim.Millisecond
)

func runFig2(scheme string, jobs []*fluid.Job, policy fluid.Policy) Fig2Result {
	s := fluid.New(fluid.Config{
		Capacity:    LinkCapacity,
		Policy:      policy,
		TraceBucket: fig2Bucket,
	}, jobs)
	s.Run(fig2Horizon)

	res := Fig2Result{
		Scheme:      scheme,
		Bucket:      fig2Bucket,
		Bandwidth:   map[string][]units.Rate{},
		ConvergedAt: -1,
	}
	for _, j := range jobs {
		res.Jobs = append(res.Jobs, summarize(j, fig2Skip))
		res.Bandwidth[j.Spec.Label()] = s.Trace(j)
	}
	res.ConvergedAt = convergedAt(jobs, 0.05)
	return res
}

// convergedAt returns the first iteration index k such that every job's
// iteration times from k on stay within tol of its ideal.
func convergedAt(jobs []*fluid.Job, tol float64) int {
	maxIter := 0
	for _, j := range jobs {
		if n := len(j.IterDurations); n > maxIter {
			maxIter = n
		}
	}
	for k := 0; k < maxIter; k++ {
		ok := true
		for _, j := range jobs {
			ideal := j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
			for _, d := range j.IterDurations[min(k, len(j.IterDurations)):] {
				if diff := d.Seconds()/ideal - 1; diff > tol || diff < -tol {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return k
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig2Centralized regenerates Figure 2(a): the Cassini-like centralized
// scheduler computes interleaving offsets offline; jobs then run without
// contention and achieve their ideal iteration times.
func Fig2Centralized() Fig2Result {
	shapes := []sched.Shape{
		sched.ShapeOf(workload.GPT3, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
	}
	opt := sched.Optimize(shapes, sched.Options{Seed: 1})
	jobs := fourJobs(nil, opt.Offsets)
	return runFig2("centralized", jobs, fluid.WeightedShare{})
}

// Fig2SRPT regenerates Figure 2(b): pFabric-style SRPT scheduling of the
// four jobs starting together. The three smaller GPT-2 jobs stay near
// ideal while J1 is head-of-line blocked to ~1.5× its ideal.
func Fig2SRPT() Fig2Result {
	jobs := fourJobs(nil, make([]sim.Time, 4)) // truly simultaneous
	return runFig2("srpt", jobs, fluid.SRPT{Label: "pfabric"})
}

// Fig2MLTCP regenerates Figure 2(c): all four jobs run MLTCP-Reno (modeled
// as F(bytes_ratio)-weighted sharing) from a near-simultaneous start and
// converge to the centralized optimum's iteration times.
func Fig2MLTCP() Fig2Result {
	jobs := fourJobs(defaultAgg(), nil)
	return runFig2("mltcp-reno", jobs, fluid.WeightedShare{})
}

// Fig2Reno is the no-scheduling baseline (plain fair sharing), not shown
// as its own panel in Figure 2 but the implicit status quo MLTCP improves
// over.
func Fig2Reno() Fig2Result {
	jobs := fourJobs(nil, nil)
	return runFig2("reno", jobs, fluid.WeightedShare{})
}
