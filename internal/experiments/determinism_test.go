package experiments

import (
	"reflect"
	"testing"

	"mltcp/internal/sim"
)

// These tests are the harness's trust contract: every sweep ported onto
// internal/harness must produce byte-identical result slices whether it
// runs serially (workers=1) or fanned out (workers=8) from the same base
// seed. Any divergence means a scenario leaked scheduling-order-dependent
// state into its results and the parallel sweep cannot be trusted.

func TestSlopeInterceptSweepDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	serial := SlopeInterceptSweepWorkers(10*sim.Millisecond, 1)
	parallel := SlopeInterceptSweepWorkers(10*sim.Millisecond, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 diverge:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

func TestScalabilityDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	// OptimizerWall is a real wall-clock measurement and legitimately
	// varies run to run; zero it so DeepEqual covers only the simulated
	// (deterministic) fields.
	normalize := func(pts []ScalabilityPoint) []ScalabilityPoint {
		for i := range pts {
			pts[i].OptimizerWall = 0
		}
		return pts
	}
	serial := normalize(ScalabilityWorkers([]int{2, 4, 6}, 1))
	parallel := normalize(ScalabilityWorkers([]int{2, 4, 6}, 8))
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 diverge:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

func TestFCTGridDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	schemes := []string{FCTReno, FCTDCTCP, FCTPFabric}
	loads := []float64{0.4, 0.6}
	serial := FCTGrid(schemes, loads, 5*sim.Second, 42, 1)
	parallel := FCTGrid(schemes, loads, 5*sim.Second, 42, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 diverge:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
	if len(serial) != len(schemes)*len(loads) {
		t.Fatalf("grid has %d cells, want %d", len(serial), len(schemes)*len(loads))
	}
	// Distinct cells really got distinct seed streams: identical scheme
	// at different loads must not produce identical flow counts by seed
	// reuse (loads differ, so equality here would be suspicious anyway).
	if serial[0].Completed == 0 {
		t.Fatal("grid cell completed no flows; degenerate run")
	}
}

func TestNoiseRobustnessDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	sigmas := []sim.Time{0, 20 * sim.Millisecond}
	serial := NoiseRobustnessWorkers(sigmas, 120*sim.Second, 1)
	parallel := NoiseRobustnessWorkers(sigmas, 120*sim.Second, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("workers=1 and workers=8 diverge:\n serial:   %+v\n parallel: %+v", serial, parallel)
	}
}

// Repeating a parallel sweep with the same base seed reproduces it exactly
// (run-to-run, not just serial-vs-parallel).
func TestParallelSweepRepeatable(t *testing.T) {
	t.Parallel()
	a := FCTGrid([]string{FCTReno}, []float64{0.5}, 5*sim.Second, 7, 8)
	b := FCTGrid([]string{FCTReno}, []float64{0.5}, 5*sim.Second, 7, 8)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same base seed, two runs diverge:\n a: %+v\n b: %+v", a, b)
	}
	// And a different base seed yields a different grid.
	c := FCTGrid([]string{FCTReno}, []float64{0.5}, 5*sim.Second, 8, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("different base seeds produced identical grids")
	}
}
