package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/harness"
	"mltcp/internal/telemetry"
)

// testClusterOpts is the scaled-down 100-job trace used by the
// determinism tests: everything arrives within ~12s and most jobs depart
// before the 20s horizon.
func testClusterOpts() ClusterOpts {
	return ClusterOpts{
		Jobs:              100,
		ArrivalRatePerSec: 8,
		MeanIters:         10,
		DurationSec:       20,
		Seed:              11,
	}
}

// TestClusterScenarioPure pins that the generator is a pure function of
// its options and produces a valid 100-job topology scenario.
func TestClusterScenarioPure(t *testing.T) {
	t.Parallel()
	a, b := ClusterScenario(testClusterOpts()), ClusterScenario(testClusterOpts())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations from the same opts differ")
	}
	if err := a.Normalize(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	if len(a.Jobs) != 100 {
		t.Fatalf("generated %d jobs, want 100", len(a.Jobs))
	}
	for i, j := range a.Jobs {
		if j.SrcRack == "" || j.DstRack == "" || j.Iters < 1 {
			t.Fatalf("job %d incomplete: %+v", i, j)
		}
	}
	// Arrivals are strictly increasing (Poisson gaps are positive).
	for i := 1; i < len(a.Jobs); i++ {
		if a.Jobs[i].OffsetMS <= a.Jobs[i-1].OffsetMS {
			t.Fatalf("job %d arrives at %vms, not after job %d at %vms",
				i, a.Jobs[i].OffsetMS, i-1, a.Jobs[i-1].OffsetMS)
		}
	}
	// A different trace seed reshapes the trace.
	o := testClusterOpts()
	o.Seed = 12
	if reflect.DeepEqual(a.Jobs, ClusterScenario(o).Jobs) {
		t.Fatal("different trace seeds produced identical job lists")
	}
}

// TestClusterRunReportsScores runs the 100-job trace once and checks the
// cluster-wide summary is populated and jobs actually arrive and depart.
func TestClusterRunReportsScores(t *testing.T) {
	t.Parallel()
	scn := ClusterScenario(testClusterOpts())
	res, err := (&backend.Fluid{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cluster
	if c == nil {
		t.Fatal("no cluster summary")
	}
	if c.Topology != "fattree-8" || c.Racks != 32 || c.Links != 768 {
		t.Errorf("cluster identity = %+v", c)
	}
	if c.SharingPairs == 0 || c.DisjointPairs == 0 {
		t.Errorf("degenerate pair classes: %+v", c)
	}
	// The generated jobs expand one-to-one, so result job i carries the
	// budget of scenario job i; departures are jobs that hit it.
	departed := 0
	for i, j := range res.Jobs {
		budget := scn.Jobs[i].Iters
		if j.Iterations() > budget {
			t.Errorf("job %s ran %d iterations past its budget %d", j.Name, j.Iterations(), budget)
		}
		if j.Iterations() == budget {
			departed++
		}
	}
	if departed < 30 {
		t.Errorf("only %d jobs departed; trace-driven departure not exercised", departed)
	}
}

// TestClusterTraceByteIdenticalAcrossWorkers is the tentpole determinism
// contract at cluster scale: the 100-job Poisson fat-tree scenario
// serializes to byte-identical JSONL traces per harness point whether the
// sweep runs serially or across 8 workers.
func TestClusterTraceByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	scn := ClusterScenario(testClusterOpts())
	const points = 2
	run := func(workers int) [][]byte {
		results := harness.Run(context.Background(),
			harness.Config{Workers: workers, BaseSeed: 7}, points,
			func(ctx context.Context, pt harness.Point) ([]byte, error) {
				rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
				ctx = telemetry.WithRecorder(ctx, rec)
				if _, err := (&backend.Fluid{}).Run(ctx, scn, pt.Seed); err != nil {
					return nil, err
				}
				var out bytes.Buffer
				if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
					return nil, err
				}
				return out.Bytes(), nil
			})
		traces, err := harness.Values(results)
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if len(serial[i]) == 0 {
			t.Fatalf("point %d: empty trace", i)
		}
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Fatalf("point %d: trace differs between workers=1 and workers=8", i)
		}
	}
	// Distinct points (different run seeds) must differ: noise streams
	// perturb the timelines even though the trace shape is shared.
	if bytes.Equal(serial[0], serial[1]) {
		t.Fatal("distinct harness points produced identical traces")
	}
}

// TestClusterGridDeterministicAcrossWorkers covers the Result-level
// contract for the same sweep (the form the figures consume).
func TestClusterGridDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	o := testClusterOpts()
	o.Jobs = 40 // smaller: this sweep runs 2×3 full simulations
	serial, err := ClusterGrid(context.Background(), o, 3, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ClusterGrid(context.Background(), o, 3, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("workers=1 and workers=8 cluster grids diverge")
	}
}
