package experiments

import (
	"context"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/harness"
	"mltcp/internal/metrics"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

// RobustnessPoint compares, at one noise level, a static centralized
// schedule against MLTCP on the four-job workload.
type RobustnessPoint struct {
	SigmaMS float64
	// CentralizedSlowdown and MLTCPSlowdown are the worst job's
	// steady-state slowdown under each approach.
	CentralizedSlowdown float64
	MLTCPSlowdown       float64
}

// NoiseRobustness quantifies §2's deployability argument: a centralized
// schedule is computed once from profiled demands, but zero-mean compute
// noise makes each job's phase random-walk away from its assigned offset
// (variance grows with every iteration), so the static schedule's
// interleaving decays into collisions. MLTCP re-applies its restoring
// force every iteration and holds near the ideal. Cassini would have to
// re-profile and re-solve continuously to match — "they also rely on
// accurate profiling of the network demands". Sigma points run across all
// CPUs; see NoiseRobustnessWorkers to pin the worker count.
func NoiseRobustness(sigmas []sim.Time, horizon sim.Time) []RobustnessPoint {
	return NoiseRobustnessWorkers(sigmas, horizon, 0)
}

// NoiseRobustnessWorkers is NoiseRobustness on a fixed-size worker pool
// (workers <= 0 means one per CPU). The centralized schedule is optimized
// once up front and shared read-only; each sigma point's jobs carry
// explicit seeds, so results are identical for every worker count.
func NoiseRobustnessWorkers(sigmas []sim.Time, horizon sim.Time, workers int) []RobustnessPoint {
	if len(sigmas) == 0 {
		sigmas = []sim.Time{0, 10 * sim.Millisecond, 20 * sim.Millisecond, 40 * sim.Millisecond}
	}
	if horizon == 0 {
		horizon = 300 * sim.Second
	}
	shapes := []sched.Shape{
		sched.ShapeOf(workload.GPT3, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
		sched.ShapeOf(workload.GPT2, LinkCapacity),
	}
	opt := sched.Optimize(shapes, sched.Options{Seed: 1})

	return harness.Map(context.Background(), harness.Config{Workers: workers},
		len(sigmas), func(pt harness.Point) RobustnessPoint {
			sigma := sigmas[pt.Index]
			p := RobustnessPoint{SigmaMS: sigma.Seconds() * 1000}
			p.CentralizedSlowdown = worstSlowdown(runNoisy(nil, opt.Offsets, sigma, horizon))
			p.MLTCPSlowdown = worstSlowdown(runNoisy(defaultAgg(), nil, sigma, horizon))
			return p
		})
}

func runNoisy(agg *core.AggFunc, offsets []sim.Time, sigma, horizon sim.Time) []*fluid.Job {
	jobs := fourJobs(agg, offsets)
	for i, j := range jobs {
		j.Spec.NoiseStd = sigma
		j.Spec.Seed = uint64(i + 1)
	}
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
	s.Run(horizon)
	return jobs
}

// worstSlowdown measures each job's mean iteration time over the last
// third of its run against its ideal and returns the worst ratio.
func worstSlowdown(jobs []*fluid.Job) float64 {
	worst := 0.0
	for _, j := range jobs {
		n := len(j.IterDurations)
		if n == 0 {
			continue
		}
		tail := metrics.FromTimes(j.IterDurations[n*2/3:])
		ideal := j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
		if sl := tail.Mean() / ideal; sl > worst {
			worst = sl
		}
	}
	return worst
}

// ChurnResult compares schemes on a cluster with job churn: jobs arrive
// over time, train for a bounded number of iterations, and leave.
type ChurnResult struct {
	Scheme string
	// MeanSlowdown averages every completed job's mean iteration
	// slowdown (iteration time / ideal).
	MeanSlowdown float64
	// P95Slowdown is the 95th percentile across jobs.
	P95Slowdown float64
	// MaxSlowdown is the worst job's mean slowdown (SRPT's victim).
	MaxSlowdown float64
	// Jobs is how many jobs completed all their iterations.
	Jobs int
}

// Churn runs nJobs jobs (the first a GPT-3-like job, the rest GPT-2-like,
// so SRPT's size bias has a victim) whose start times are spread uniformly
// over the first spread seconds, each training for iters iterations, under
// the given policy (MLTCP weighting when agg is non-nil).
func Churn(scheme string, policy fluid.Policy, agg *core.AggFunc, nJobs, iters int, seed uint64) ChurnResult {
	rng := sim.NewRNG(seed)
	const spread = 60 // seconds over which jobs arrive
	jobs := make([]*fluid.Job, nJobs)
	for i := range jobs {
		prof := workload.GPT2
		if i == 0 {
			prof = workload.GPT3
		}
		jobs[i] = &fluid.Job{
			Spec: workload.Spec{
				Name:        jobName(i),
				Profile:     prof,
				StartOffset: sim.FromSeconds(rng.Float64() * spread),
				NoiseStd:    5 * sim.Millisecond,
				Seed:        uint64(i + 1),
			},
			Agg:           agg,
			MaxIterations: iters,
		}
	}
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: policy}, jobs)
	// Generous horizon: even heavily congested jobs finish.
	s.Run(sim.FromSeconds(spread) + sim.Time(iters)*4*sim.Second)

	var per metrics.Series
	res := ChurnResult{Scheme: scheme}
	for _, j := range jobs {
		if j.Iterations() < iters {
			continue // did not finish within the horizon
		}
		res.Jobs++
		ideal := j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
		per = append(per, metrics.FromTimes(j.IterDurations).Mean()/ideal)
	}
	if len(per) > 0 {
		res.MeanSlowdown = per.Mean()
		res.P95Slowdown = per.Percentile(95)
		res.MaxSlowdown = per.Max()
	}
	return res
}
