package experiments

import (
	"context"
	"time"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/harness"
	"mltcp/internal/obs"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

// SweepPoint is one (Slope, Intercept) configuration's outcome on the
// three-GPT-2 workload with mild noise.
type SweepPoint struct {
	Slope, Intercept float64
	// ConvergedAt is the first iteration from which all jobs stay
	// within 5% of ideal (-1 if never within the horizon).
	ConvergedAt int
	// SteadySlowdown is the worst job's steady-state slowdown.
	SteadySlowdown float64
}

// slopeInterceptGrid is the fixed (slope, intercept) grid around the
// paper's defaults; exported results carry the values, so the order here
// is the output order.
var slopeInterceptGrid = []struct{ s, i float64 }{
	{0.5, 0.25}, {1.0, 0.25}, {1.75, 0.25}, {3.0, 0.25},
	{1.75, 0.05}, {1.75, 0.5}, {1.75, 1.0},
}

// SlopeInterceptSweep measures how Equation 2's constants trade
// convergence speed against noise tolerance (§3.1: the constants are
// "tuned based on the link rate and the noise in the system"). The paper's
// defaults sit in the middle of the grid. Points run across all CPUs; see
// SlopeInterceptSweepWorkers to pin the worker count.
func SlopeInterceptSweep(noise sim.Time) []SweepPoint {
	return SlopeInterceptSweepWorkers(noise, 0)
}

// SlopeInterceptSweepWorkers is SlopeInterceptSweep on a fixed-size worker
// pool (workers <= 0 means one per CPU). Every job is explicitly seeded, so
// the result slice is identical for every worker count.
func SlopeInterceptSweepWorkers(noise sim.Time, workers int) []SweepPoint {
	return harness.Map(context.Background(), harness.Config{Workers: workers},
		len(slopeInterceptGrid), func(pt harness.Point) SweepPoint {
			g := slopeInterceptGrid[pt.Index]
			agg := core.Linear(g.s, g.i)
			jobs := make([]*fluid.Job, 3)
			for k := range jobs {
				jobs[k] = &fluid.Job{
					Spec: workload.Spec{
						Name:        jobName(k),
						Profile:     workload.GPT2,
						StartOffset: sim.Time(k) * StaggerOffset,
						NoiseStd:    noise,
						Seed:        uint64(k + 1),
					},
					Agg: &agg,
				}
			}
			s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
			s.Run(150 * sim.Second)

			worst := 0.0
			for _, j := range jobs {
				sl := j.AvgIterTime(40).Seconds() / j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
				if sl > worst {
					worst = sl
				}
			}
			return SweepPoint{
				Slope:          g.s,
				Intercept:      g.i,
				ConvergedAt:    convergedAt(jobs, 0.05),
				SteadySlowdown: worst,
			}
		})
}

// ScalabilityPoint compares, for N identical jobs, the centralized
// optimizer's wall-clock cost against MLTCP's distributed convergence.
type ScalabilityPoint struct {
	N int
	// OptimizerWall is the real time sched.Optimize took. It is the one
	// wall-clock (hence nondeterministic) field; determinism tests zero it
	// before comparing runs.
	OptimizerWall time.Duration
	// OptimizerInterleaved reports whether it found a zero-overlap
	// schedule.
	OptimizerInterleaved bool
	// MLTCPConvergedAt is the distributed convergence iteration
	// (-1 if not converged within the horizon).
	MLTCPConvergedAt int
	// MLTCPSlowdown is the worst steady-state slowdown under MLTCP.
	MLTCPSlowdown float64
}

// Scalability regenerates the paper's motivating contrast (§1, §2):
// centralized schedulers recompute an expensive global optimization as the
// cluster grows, while MLTCP's convergence cost is a bounded number of
// training iterations per job, independent of any controller. Jobs are
// identical GPT-2s, whose 1/9 duty admits interleaving up to N = 9.
func Scalability(ns []int) []ScalabilityPoint {
	return ScalabilityWorkers(ns, 0)
}

// ScalabilityWorkers is Scalability on a fixed-size worker pool (workers
// <= 0 means one per CPU). Apart from OptimizerWall — a wall-clock
// measurement that parallel neighbors can inflate through contention —
// every field is deterministic and worker-count independent.
func ScalabilityWorkers(ns []int, workers int) []ScalabilityPoint {
	if len(ns) == 0 {
		ns = []int{2, 4, 6, 8}
	}
	return harness.Map(context.Background(), harness.Config{Workers: workers},
		len(ns), func(pt harness.Point) ScalabilityPoint {
			n := ns[pt.Index]
			p := ScalabilityPoint{N: n}

			shapes := make([]sched.Shape, n)
			for i := range shapes {
				shapes[i] = sched.ShapeOf(workload.GPT2, LinkCapacity)
			}
			sw := obs.StartTimer()
			res := sched.Optimize(shapes, sched.Options{Seed: uint64(n)})
			p.OptimizerWall = sw.Elapsed()
			p.OptimizerInterleaved = res.Interleaved

			jobs := gpt2Jobs(n, defaultAgg())
			s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
			s.Run(250 * sim.Second)
			p.MLTCPConvergedAt = convergedAt(jobs, 0.05)
			worst := 0.0
			for _, j := range jobs {
				sl := j.AvgIterTime(60).Seconds() / j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
				if sl > worst {
					worst = sl
				}
			}
			p.MLTCPSlowdown = worst
			return p
		})
}
