package experiments

import (
	"time"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sched"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

// SweepPoint is one (Slope, Intercept) configuration's outcome on the
// three-GPT-2 workload with mild noise.
type SweepPoint struct {
	Slope, Intercept float64
	// ConvergedAt is the first iteration from which all jobs stay
	// within 5% of ideal (-1 if never within the horizon).
	ConvergedAt int
	// SteadySlowdown is the worst job's steady-state slowdown.
	SteadySlowdown float64
}

// SlopeInterceptSweep measures how Equation 2's constants trade
// convergence speed against noise tolerance (§3.1: the constants are
// "tuned based on the link rate and the noise in the system"). The paper's
// defaults sit in the middle of the grid.
func SlopeInterceptSweep(noise sim.Time) []SweepPoint {
	grid := []struct{ s, i float64 }{
		{0.5, 0.25}, {1.0, 0.25}, {1.75, 0.25}, {3.0, 0.25},
		{1.75, 0.05}, {1.75, 0.5}, {1.75, 1.0},
	}
	var out []SweepPoint
	for _, g := range grid {
		agg := core.Linear(g.s, g.i)
		jobs := make([]*fluid.Job, 3)
		for k := range jobs {
			jobs[k] = &fluid.Job{
				Spec: workload.Spec{
					Name:        jobName(k),
					Profile:     workload.GPT2,
					StartOffset: sim.Time(k) * StaggerOffset,
					NoiseStd:    noise,
					Seed:        uint64(k + 1),
				},
				Agg: &agg,
			}
		}
		s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
		s.Run(150 * sim.Second)

		worst := 0.0
		for _, j := range jobs {
			sl := j.AvgIterTime(40).Seconds() / j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
			if sl > worst {
				worst = sl
			}
		}
		out = append(out, SweepPoint{
			Slope:          g.s,
			Intercept:      g.i,
			ConvergedAt:    convergedAt(jobs, 0.05),
			SteadySlowdown: worst,
		})
	}
	return out
}

// ScalabilityPoint compares, for N identical jobs, the centralized
// optimizer's wall-clock cost against MLTCP's distributed convergence.
type ScalabilityPoint struct {
	N int
	// OptimizerWall is the real time sched.Optimize took.
	OptimizerWall time.Duration
	// OptimizerInterleaved reports whether it found a zero-overlap
	// schedule.
	OptimizerInterleaved bool
	// MLTCPConvergedAt is the distributed convergence iteration
	// (-1 if not converged within the horizon).
	MLTCPConvergedAt int
	// MLTCPSlowdown is the worst steady-state slowdown under MLTCP.
	MLTCPSlowdown float64
}

// Scalability regenerates the paper's motivating contrast (§1, §2):
// centralized schedulers recompute an expensive global optimization as the
// cluster grows, while MLTCP's convergence cost is a bounded number of
// training iterations per job, independent of any controller. Jobs are
// identical GPT-2s, whose 1/9 duty admits interleaving up to N = 9.
func Scalability(ns []int) []ScalabilityPoint {
	if len(ns) == 0 {
		ns = []int{2, 4, 6, 8}
	}
	var out []ScalabilityPoint
	for _, n := range ns {
		p := ScalabilityPoint{N: n}

		shapes := make([]sched.Shape, n)
		for i := range shapes {
			shapes[i] = sched.ShapeOf(workload.GPT2, LinkCapacity)
		}
		start := time.Now()
		res := sched.Optimize(shapes, sched.Options{Seed: uint64(n)})
		p.OptimizerWall = time.Since(start)
		p.OptimizerInterleaved = res.Interleaved

		jobs := gpt2Jobs(n, defaultAgg())
		s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
		s.Run(250 * sim.Second)
		p.MLTCPConvergedAt = convergedAt(jobs, 0.05)
		worst := 0.0
		for _, j := range jobs {
			sl := j.AvgIterTime(60).Seconds() / j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds()
			if sl > worst {
				worst = sl
			}
		}
		p.MLTCPSlowdown = worst
		out = append(out, p)
	}
	return out
}
