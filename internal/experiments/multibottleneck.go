package experiments

import (
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

// MultiBottleneckResult extends the evaluation beyond the paper's single
// bottleneck: a parking-lot chain where one long job traverses two trunks
// and two cross jobs each load one trunk. MLTCP must interleave the long
// job against *both* neighbours simultaneously; a fully interleaved
// schedule exists (the cross jobs can share a time slot since they use
// different trunks), and distributed MLTCP should find it.
type MultiBottleneckResult struct {
	// Names are the jobs: "long" (sw0->sw2), "crossA" (sw0->sw1),
	// "crossB" (sw1->sw2).
	Names []string
	// IterTimes[i] are job i's iteration durations.
	IterTimes [][]sim.Time
	// SteadyAvg[i] averages the last 10 iterations.
	SteadyAvg []sim.Time
	// Ideal is the isolated iteration time (same shape for all three).
	Ideal sim.Time
}

// MultiBottleneck runs the parking-lot scenario at packet level.
func MultiBottleneck(factory ccFactory, horizon sim.Time) MultiBottleneckResult {
	eng := sim.New()
	p := netsim.NewParkingLot(eng, netsim.ParkingLotConfig{
		Switches:       3,
		HostsPerSwitch: 3,
		HostRate:       5 * units.Gbps,
		TrunkRate:      plRate,
		HostDelay:      10 * sim.Microsecond,
		TrunkDelay:     30 * sim.Microsecond,
	})
	profile := ScaledGPT2()
	bytes := int64(profile.CommBytes)

	type route struct {
		name     string
		src, dst *netsim.Host
	}
	routes := []route{
		{"long", p.Host(0, 0), p.Host(2, 0)},
		{"crossA", p.Host(0, 1), p.Host(1, 1)},
		{"crossB", p.Host(1, 2), p.Host(2, 2)},
	}

	res := MultiBottleneckResult{
		Ideal: profile.ComputeTime + plRate.TransmissionTime(bytes),
	}
	jobs := make([]*packetJob, len(routes))
	for i, r := range routes {
		f := tcp.NewFlow(eng, netsim.FlowID(i+1), r.src, r.dst, factory(bytes), tcp.Config{})
		jobs[i] = &packetJob{sender: f.Sender, bytes: bytes, compute: profile.ComputeTime}
		jobs[i].start(eng, sim.Time(i)*StaggerOffset)
		res.Names = append(res.Names, r.name)
	}
	eng.RunUntil(horizon)

	for _, j := range jobs {
		res.IterTimes = append(res.IterTimes, j.iterTimes)
		var sum sim.Time
		count := 0
		for k := len(j.iterTimes) - 10; k < len(j.iterTimes); k++ {
			if k >= 0 {
				sum += j.iterTimes[k]
				count++
			}
		}
		if count > 0 {
			res.SteadyAvg = append(res.SteadyAvg, sum/sim.Time(count))
		} else {
			res.SteadyAvg = append(res.SteadyAvg, 0)
		}
	}
	return res
}
