package experiments

import (
	"context"
	"fmt"
	"math"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/diagnose"
	"mltcp/internal/harness"
)

// ScenarioGrid runs `runs` seeded replicas of one scenario on the given
// backend across the harness worker pool, fidelity-agnostically: the same
// call replicates a fluid or a packet-level experiment. Replica r draws
// every noise stream from sim.DeriveSeed(baseSeed, r), so the result
// slice is identical at any worker count. It returns the first per-point
// error (a scenario the backend rejects fails every point identically, so
// the error surfaces immediately).
func ScenarioGrid(ctx context.Context, b backend.Backend, scn *config.Scenario,
	runs int, baseSeed uint64, workers int) ([]*backend.Result, error) {
	cfg := harness.Config{Workers: workers, BaseSeed: baseSeed}
	rs := harness.Run(ctx, cfg, runs, func(ctx context.Context, pt harness.Point) (*backend.Result, error) {
		return b.Run(ctx, scn, pt.Seed)
	})
	return harness.Values(rs)
}

// CrossFidelityResult quantifies fluid-vs-packet agreement on one
// scenario — the m4-style validation signal that the flow-level
// abstraction and the full TCP stack tell the same convergence story.
type CrossFidelityResult struct {
	Fluid, Packet *backend.Result
	// SlowdownGap[i] is |fluid − packet| steady-state slowdown for job i;
	// MaxSlowdownGap is the worst.
	SlowdownGap    []float64
	MaxSlowdownGap float64
	// OverlapGap is |fluid − packet| overlap score.
	OverlapGap float64
	// BytesPerIterGap[i] is the relative error between the fidelities'
	// per-iteration byte volumes after unscaling the packet rendering
	// (nonzero only from integer rounding at the packet scale).
	BytesPerIterGap []float64
}

// CrossFidelity runs the scenario at both fidelities from the same seed
// and summarizes their agreement. skip is the steady-state transient cut.
func CrossFidelity(ctx context.Context, scn *config.Scenario, seed uint64, skip int) (*CrossFidelityResult, error) {
	fl, err := (&backend.Fluid{}).Run(ctx, scn, seed)
	if err != nil {
		return nil, err
	}
	pk, err := (&backend.Packet{}).Run(ctx, scn, seed)
	if err != nil {
		return nil, err
	}
	if len(fl.Jobs) != len(pk.Jobs) {
		return nil, fmt.Errorf("experiments: fidelities expanded %d vs %d jobs", len(fl.Jobs), len(pk.Jobs))
	}
	res := &CrossFidelityResult{Fluid: fl, Packet: pk}
	for i := range fl.Jobs {
		gap := math.Abs(fl.Jobs[i].Slowdown(skip) - pk.Jobs[i].Slowdown(skip))
		res.SlowdownGap = append(res.SlowdownGap, gap)
		if gap > res.MaxSlowdownGap {
			res.MaxSlowdownGap = gap
		}
		unscaled := float64(pk.Jobs[i].BytesPerIter) / pk.Scale
		res.BytesPerIterGap = append(res.BytesPerIterGap,
			math.Abs(unscaled-float64(fl.Jobs[i].BytesPerIter))/float64(fl.Jobs[i].BytesPerIter))
	}
	res.OverlapGap = math.Abs(fl.OverlapScore - pk.OverlapScore)
	return res, nil
}

// Explain localizes a fidelity disagreement: for each job, the first
// iteration whose fluid and packet completion times differ by more than
// tol relative to the job's ideal iteration time. An aggregate gap
// (MaxSlowdownGap, OverlapGap) says the fidelities disagree; this says
// where they started to.
func (r *CrossFidelityResult) Explain(tol float64) string {
	divs := diagnose.CompareResults(r.Fluid, r.Packet, tol)
	return diagnose.FormatFidelityDivergences(divs, "fluid", "packet")
}

// CanonicalTwoJob is the canonical cross-fidelity scenario: two GPT-2
// jobs under MLTCP on the paper's 50 Gbps bottleneck (1/100 packet
// scale), long enough for both fidelities to reach steady state.
func CanonicalTwoJob() *config.Scenario {
	return &config.Scenario{
		Name:        "canonical-two-gpt2",
		Policy:      "mltcp",
		DurationSec: 90,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
}

// scenarioSteadySkip is the transient cut used when comparing fidelities
// on the canonical scenario (~20 of 50 iterations).
const scenarioSteadySkip = 20

// CrossFidelityCanonical runs the canonical scenario end to end with the
// standard skip, for the validation test, the compare figure, and the
// benchmark.
func CrossFidelityCanonical(ctx context.Context, seed uint64) (*CrossFidelityResult, error) {
	return CrossFidelity(ctx, CanonicalTwoJob(), seed, scenarioSteadySkip)
}
