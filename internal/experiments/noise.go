package experiments

import (
	"mltcp/internal/analysis"
	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/metrics"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// NoiseResult validates §4's approximation-error bound: with zero-mean
// Gaussian noise of standard deviation sigma in the jobs' iteration times,
// the steady-state deviation of the start-time difference from the optimal
// interleaving is normal with standard deviation at most
// 2σ(1 + Intercept/Slope).
type NoiseResult struct {
	// SigmaMS are the injected noise standard deviations (ms).
	SigmaMS []float64
	// MeasuredMS is the observed steady-state error std (ms).
	MeasuredMS []float64
	// BoundMS is the theoretical bound 2σ(1 + I/S) (ms).
	BoundMS []float64
}

// halfCommProfile is the a = 1/2 job of Figure 5: with two such jobs the
// interleaved optimum is the single point Δ = T/2, so the error is simply
// the deviation from it.
var halfCommProfile = workload.Profile{
	Name:        "half-comm",
	ComputeTime: 900 * sim.Millisecond,
	CommBytes:   units.ByteCount(float64(LinkCapacity) / 8 * 0.9), // 0.9s at line rate
}

// NoiseBound regenerates the §4 noise experiment: sweep sigma, measure the
// steady-state error of two MLTCP jobs around the T/2 optimum, and compare
// with the analytical bound.
func NoiseBound(seeds int) NoiseResult {
	if seeds <= 0 {
		seeds = 3
	}
	res := NoiseResult{}
	period := halfCommProfile.IdealIterTime(LinkCapacity)
	for _, sigma := range []sim.Time{5 * sim.Millisecond, 10 * sim.Millisecond,
		20 * sim.Millisecond, 40 * sim.Millisecond, 80 * sim.Millisecond} {
		var errs metrics.Series
		for seed := 0; seed < seeds; seed++ {
			errs = append(errs, noiseRun(sigma, uint64(seed))...)
		}
		res.SigmaMS = append(res.SigmaMS, sigma.Seconds()*1000)
		res.MeasuredMS = append(res.MeasuredMS, errs.Std()*1000)
		bound := analysis.NoiseErrorStd(sigma, core.DefaultSlope, core.DefaultIntercept)
		res.BoundMS = append(res.BoundMS, bound.Seconds()*1000)
		_ = period
	}
	return res
}

// noiseRun returns the steady-state deviations (seconds) of the start-time
// difference from T/2 for one seeded run.
func noiseRun(sigma sim.Time, seed uint64) metrics.Series {
	agg := defaultAgg()
	jobs := []*fluid.Job{
		{Spec: workload.Spec{Name: "A", Profile: halfCommProfile, NoiseStd: sigma, Seed: seed*2 + 1}, Agg: agg},
		{Spec: workload.Spec{Name: "B", Profile: halfCommProfile, NoiseStd: sigma, Seed: seed*2 + 2,
			StartOffset: StaggerOffset}, Agg: agg},
	}
	s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
	s.Run(400 * sim.Second)

	period := halfCommProfile.IdealIterTime(LinkCapacity).Seconds()
	opt := period / 2
	n := min(len(jobs[0].CommStarts), len(jobs[1].CommStarts))
	var errs metrics.Series
	const skip = 60 // transient iterations
	for i := skip; i < n; i++ {
		d := (jobs[1].CommStarts[i] - jobs[0].CommStarts[i]).Seconds()
		for d < 0 {
			d += period
		}
		for d >= period {
			d -= period
		}
		errs = append(errs, d-opt)
	}
	return errs
}
