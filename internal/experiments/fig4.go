package experiments

import (
	"mltcp/internal/fluid"
	"mltcp/internal/metrics"
	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// Fig4Result compares six identical GPT-2 jobs under plain fair sharing
// (TCP Reno) and MLTCP-Reno: bandwidth allocation traces (panels a and b)
// and the CDF of iteration times over the jobs' lifetime (panel c), whose
// tail ratio is the paper's 1.59× speedup headline.
type Fig4Result struct {
	Bucket     sim.Time
	RenoTrace  map[string][]units.Rate
	MLTCPTrace map[string][]units.Rate
	// RenoCDF and MLTCPCDF are the empirical CDFs of iteration time in
	// milliseconds over all six jobs' iterations.
	RenoCDF  []metrics.CDFPoint
	MLTCPCDF []metrics.CDFPoint
	// TailSpeedup is Reno's p99 iteration time divided by MLTCP's.
	TailSpeedup float64
	// MedianSpeedup is the same at p50.
	MedianSpeedup float64
}

// Fig4 regenerates Figure 4. The CDFs exclude the same fixed warmup from
// both schemes: the paper measures "over the lifetime of the jobs", which
// is hours of training against a ~20-iteration convergence transient; at
// this simulation's horizon the transient would otherwise dominate the p99
// of both schemes equally and mask the steady-state comparison.
func Fig4() Fig4Result {
	const (
		horizon = 300 * sim.Second
		bucket  = 50 * sim.Millisecond
		warmup  = 30 // iterations excluded per job
	)
	run := func(mltcp bool) (map[string][]units.Rate, metrics.Series) {
		var jobs []*fluid.Job
		if mltcp {
			jobs = gpt2Jobs(6, defaultAgg())
		} else {
			jobs = gpt2Jobs(6, nil)
		}
		s := fluid.New(fluid.Config{
			Capacity:    LinkCapacity,
			Policy:      fluid.WeightedShare{},
			TraceBucket: bucket,
		}, jobs)
		s.Run(horizon)
		traces := map[string][]units.Rate{}
		var all metrics.Series
		for _, j := range jobs {
			traces[j.Spec.Label()] = s.Trace(j)
			for i, d := range j.IterDurations {
				if i >= warmup {
					all = append(all, d.Seconds()*1000)
				}
			}
		}
		return traces, all
	}

	renoTr, renoIters := run(false)
	mlTr, mlIters := run(true)
	return Fig4Result{
		Bucket:        bucket,
		RenoTrace:     renoTr,
		MLTCPTrace:    mlTr,
		RenoCDF:       renoIters.CDF(),
		MLTCPCDF:      mlIters.CDF(),
		TailSpeedup:   renoIters.Percentile(99) / mlIters.Percentile(99),
		MedianSpeedup: renoIters.Percentile(50) / mlIters.Percentile(50),
	}
}
