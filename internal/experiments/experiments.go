// Package experiments implements one harness per figure and claim of the
// paper's evaluation, shared by cmd/mltcp-figures (which prints them) and
// the repository's benchmarks (which regenerate them under go test -bench).
// Each harness returns structured results; integration tests in this
// package assert the paper's qualitative shapes (who wins, by what factor).
package experiments

import (
	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/metrics"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// LinkCapacity is the bottleneck rate used throughout the paper's testbed.
const LinkCapacity = 50 * units.Gbps

// StaggerOffset is the tiny start-time stagger applied between jobs that
// the paper describes as starting "at the same time". A fluid model is
// perfectly symmetric, so exactly simultaneous identical jobs would sit on
// the loss function's unstable maximum forever; 10ms of stagger stands in
// for the packet-level and clock asymmetries that break the tie on a real
// testbed (and is <1% of an iteration).
const StaggerOffset = 10 * sim.Millisecond

// JobStats summarizes one job's outcome.
type JobStats struct {
	Name string
	// AvgIter is the steady-state average iteration time (transient
	// skipped).
	AvgIter sim.Time
	// Ideal is the job's isolated iteration time.
	Ideal sim.Time
	// Slowdown is AvgIter / Ideal.
	Slowdown float64
	// IterTimes are all recorded iteration durations.
	IterTimes []sim.Time
}

func summarize(j *fluid.Job, skip int) JobStats {
	ideal := j.Spec.Profile.IdealIterTime(LinkCapacity)
	avg := j.AvgIterTime(skip)
	return JobStats{
		Name:      j.Spec.Label(),
		AvgIter:   avg,
		Ideal:     ideal,
		Slowdown:  avg.Seconds() / ideal.Seconds(),
		IterTimes: j.IterDurations,
	}
}

// fourJobs builds the Fig. 2 workload: J1 = GPT-3-like, J2–J4 = GPT-2-like,
// all starting their first communication phase (near-)simultaneously,
// optionally staggered and optionally MLTCP-weighted.
func fourJobs(agg *core.AggFunc, offsets []sim.Time) []*fluid.Job {
	profiles := []workload.Profile{workload.GPT3, workload.GPT2, workload.GPT2, workload.GPT2}
	names := []string{"J1", "J2", "J3", "J4"}
	jobs := make([]*fluid.Job, len(profiles))
	for i := range profiles {
		var off sim.Time
		if offsets != nil {
			off = offsets[i]
		} else {
			off = sim.Time(i) * StaggerOffset
		}
		jobs[i] = &fluid.Job{
			Spec: workload.Spec{Name: names[i], Profile: profiles[i], StartOffset: off},
			Agg:  agg,
		}
	}
	return jobs
}

// gpt2Jobs builds n identical GPT-2-like jobs with the standard stagger.
func gpt2Jobs(n int, agg *core.AggFunc) []*fluid.Job {
	jobs := make([]*fluid.Job, n)
	for i := range jobs {
		jobs[i] = &fluid.Job{
			Spec: workload.Spec{
				Name:        jobName(i),
				Profile:     workload.GPT2,
				StartOffset: sim.Time(i) * StaggerOffset,
			},
			Agg: agg,
		}
	}
	return jobs
}

func jobName(i int) string { return "Job" + string(rune('1'+i)) }

func defaultAgg() *core.AggFunc {
	f := core.Default()
	return &f
}

// avgSeconds converts steady-state iteration times to seconds for tables.
func avgSeconds(ts []sim.Time) float64 {
	return metrics.FromTimes(ts).Mean()
}
