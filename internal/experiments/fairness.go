package experiments

import (
	"math"

	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

// FairnessResult covers §5's "Fairness between MLTCP and TCP flows". The
// operative claims measured here: (1) at the same packet-loss probability,
// an MLTCP-Reno flow achieves higher throughput than a standard Reno flow
// (the paper derives 1/p vs Reno's Mathis 1/√p; with the default bounded
// F ∈ [0.25, 2] the asymptotic exponent we measure stays ≈ −0.5 for both,
// and the advantage appears as a multiplicative factor up to √F(1) — see
// EXPERIMENTS.md for the deviation note); and (2) an MLTCP flow claims more
// than its fair share against a legacy Reno flow on a shared bottleneck but
// does not starve it. Flows are measured deep into an iteration
// (bytes_ratio ≈ 1, F = 2), the regime §5's comparison is about.
type FairnessResult struct {
	LossProbs []float64
	// RenoMbps and MLTCPMbps are single-flow goodputs at each loss rate.
	RenoMbps  []float64
	MLTCPMbps []float64
	// RenoExponent and MLTCPExponent are fitted log-log slopes of
	// goodput vs loss probability (both ≈ −0.5; see above).
	RenoExponent  float64
	MLTCPExponent float64
	// AdvantageRatio is the geometric mean of MLTCP/Reno goodput across
	// the loss sweep (expected ≈ √2 for F(1) = 2).
	AdvantageRatio float64
	// ShareRatio is MLTCP/Reno goodput when coexisting on one link
	// (> 1: MLTCP claims more than its fair share).
	ShareRatio float64
	// RenoShareOfFair is the coexisting Reno flow's goodput relative to
	// its fair half-share (must stay well above zero: no starvation).
	RenoShareOfFair float64
}

// The packet-level fairness testbed: a 100 Mbps bottleneck with ~10 ms RTT
// so that at the swept loss rates the congestion window — not the
// application — limits throughput, and per-iteration volumes that preserve
// the DNN write/compute loop MLTCP's bytes_ratio depends on.
const (
	fairnessRate      = 100 * units.Mbps
	fairnessIterBytes = 12_000_000
	fairnessComp      = 300 * sim.Millisecond
)

func fairnessNet(eng *sim.Engine, pairs int, lossProb float64, seed uint64) *netsim.Dumbbell {
	d := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       pairs,
		HostRate:        1 * units.Gbps,
		BottleneckRate:  fairnessRate,
		HostDelay:       50 * sim.Microsecond,
		BottleneckDelay: 5 * sim.Millisecond,
		// Deep buffer so queue drops don't mask the injected loss.
		BottleneckQueue: func() netsim.Queue { return netsim.NewDropTail(2000 * netsim.DefaultMTU) },
	})
	if lossProb > 0 {
		d.Forward.LossProb = lossProb
		d.Forward.RNG = sim.NewRNG(seed)
	}
	return d
}

// iterate drives a sender through the periodic write/compute loop.
func iterate(eng *sim.Engine, s *tcp.Sender, iterBytes int64, comp sim.Time) {
	s.Drained(func(now sim.Time) {
		eng.After(comp, func(*sim.Engine) { s.Write(iterBytes) })
	})
	s.Write(iterBytes)
}

func mltcpCC() tcp.CongestionControl {
	return core.Wrap(tcp.NewReno(), core.Default(),
		core.NewTracker(fairnessIterBytes, fairnessComp/2))
}

// backlog is a demand far larger than any horizon can drain, so the flow
// is permanently window-limited and (for MLTCP) sits at bytes_ratio = 1
// after the first TOTAL_BYTES — the deep-in-iteration regime.
const backlog = int64(1) << 40

// singleFlowGoodput measures one flow's goodput in Mbps over the horizon.
func singleFlowGoodput(cc tcp.CongestionControl, lossProb float64, seed uint64, horizon sim.Time) float64 {
	eng := sim.New()
	net := fairnessNet(eng, 1, lossProb, seed)
	f := tcp.NewFlow(eng, 1, net.Left[0], net.Right[0], cc, tcp.Config{})
	f.Sender.Write(backlog)
	eng.RunUntil(horizon)
	return float64(f.Sender.TotalBytesAcked()) * 8 / horizon.Seconds() / 1e6
}

// Fairness regenerates the §5 fairness analysis with the default horizon.
func Fairness() FairnessResult { return FairnessWithHorizon(60 * sim.Second) }

// FairnessWithHorizon runs the fairness experiment with a custom per-run
// horizon (shorter horizons trade precision for speed in tests).
func FairnessWithHorizon(horizon sim.Time) FairnessResult {
	res := FairnessResult{LossProbs: []float64{0.002, 0.004, 0.008, 0.016, 0.032}}
	for i, p := range res.LossProbs {
		seed := uint64(100 + i) // distinct root seed per loss-probability point
		res.RenoMbps = append(res.RenoMbps, singleFlowGoodput(tcp.NewReno(), p, seed, horizon))
		res.MLTCPMbps = append(res.MLTCPMbps, singleFlowGoodput(mltcpCC(), p, seed, horizon))
	}
	res.RenoExponent = fitLogLogSlope(res.LossProbs, res.RenoMbps)
	res.MLTCPExponent = fitLogLogSlope(res.LossProbs, res.MLTCPMbps)
	geo := 1.0
	for i := range res.LossProbs {
		geo *= res.MLTCPMbps[i] / res.RenoMbps[i]
	}
	res.AdvantageRatio = math.Pow(geo, 1/float64(len(res.LossProbs)))

	// Coexistence: Reno and MLTCP-Reno share a clean bottleneck; the
	// only loss is their shared queue overflowing.
	eng := sim.New()
	const coexistSeed = 0 // lossless links: the loss RNG is never drawn
	net := fairnessNet(eng, 2, 0, coexistSeed)
	fr := tcp.NewFlow(eng, 1, net.Left[0], net.Right[0], tcp.NewReno(), tcp.Config{})
	fm := tcp.NewFlow(eng, 2, net.Left[1], net.Right[1], mltcpCC(), tcp.Config{})
	fr.Sender.Write(backlog)
	fm.Sender.Write(backlog)
	eng.RunUntil(horizon)
	reno := float64(fr.Sender.TotalBytesAcked())
	ml := float64(fm.Sender.TotalBytesAcked())
	res.ShareRatio = ml / reno
	fairHalf := float64(fairnessRate) / 8 * horizon.Seconds() / 2
	res.RenoShareOfFair = reno / fairHalf
	return res
}

// fitLogLogSlope least-squares fits log(y) = a + b·log(x) and returns b.
func fitLogLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
