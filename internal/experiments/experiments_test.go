package experiments

import (
	"testing"

	"mltcp/internal/sim"
)

func TestFig1TrafficPatterns(t *testing.T) {
	t.Parallel()
	res := Fig1()
	if len(res.Names) != 4 || len(res.Demand) != 4 {
		t.Fatalf("want 4 jobs, got %d", len(res.Names))
	}
	for i, d := range res.Demand {
		var on, off int
		for _, v := range d {
			if v > 0 {
				on++
			} else {
				off++
			}
		}
		if on == 0 || off == 0 {
			t.Errorf("job %s demand is not on-off: on=%d off=%d", res.Names[i], on, off)
		}
	}
	// J1 (GPT-3, a=1/3) must have a higher duty cycle than J2 (GPT-2, a=1/9).
	duty := func(d []float64) float64 { return 0 } // placeholder replaced below
	_ = duty
	count := func(i int) (on int) {
		for _, v := range res.Demand[i] {
			if v > 0 {
				on++
			}
		}
		return on
	}
	if count(0) <= count(1) {
		t.Errorf("J1 duty (%d buckets) should exceed J2's (%d)", count(0), count(1))
	}
}

func TestFig2CentralizedAchievesIdeal(t *testing.T) {
	t.Parallel()
	res := Fig2Centralized()
	// §2: average iteration times 1.2s (J1) and 1.8s (J2-J4).
	for _, j := range res.Jobs {
		if j.Slowdown > 1.02 {
			t.Errorf("%s: centralized slowdown %.3f (avg %v, ideal %v), want ~1.0",
				j.Name, j.Slowdown, j.AvgIter, j.Ideal)
		}
	}
	if res.Jobs[0].Ideal != 1200*sim.Millisecond || res.Jobs[1].Ideal != 1800*sim.Millisecond {
		t.Errorf("ideals = %v/%v, want 1.2s/1.8s", res.Jobs[0].Ideal, res.Jobs[1].Ideal)
	}
}

func TestFig2SRPTHeadOfLineBlocksJ1(t *testing.T) {
	t.Parallel()
	res := Fig2SRPT()
	j1 := res.Jobs[0]
	// §2: "J1 incurs a slowdown of 1.5X"; all four average 1.8s.
	if j1.Slowdown < 1.4 || j1.Slowdown > 1.6 {
		t.Errorf("J1 SRPT slowdown = %.3f (avg %v), want ~1.5", j1.Slowdown, j1.AvgIter)
	}
	for _, j := range res.Jobs[1:] {
		if j.Slowdown > 1.1 {
			t.Errorf("%s: SRPT slowdown %.3f, want near-ideal", j.Name, j.Slowdown)
		}
	}
}

func TestFig2MLTCPMatchesCentralized(t *testing.T) {
	t.Parallel()
	res := Fig2MLTCP()
	// §2: converges within 5% of the optimal centralized schedule.
	for _, j := range res.Jobs {
		if j.Slowdown > 1.05 {
			t.Errorf("%s: MLTCP steady slowdown %.3f (avg %v, ideal %v), want within 5%%",
				j.Name, j.Slowdown, j.AvgIter, j.Ideal)
		}
	}
	// §2: "MLTCP converges to an interleaved state within 20 iterations"
	// — allow some slack for the fluid abstraction.
	if res.ConvergedAt < 0 || res.ConvergedAt > 30 {
		t.Errorf("converged at iteration %d, want <= ~20-30", res.ConvergedAt)
	}
}

func TestFig2RenoBaselineStaysCongested(t *testing.T) {
	t.Parallel()
	res := Fig2Reno()
	congested := 0
	for _, j := range res.Jobs {
		if j.Slowdown > 1.1 {
			congested++
		}
	}
	if congested == 0 {
		t.Error("plain fair sharing should leave at least one job congested")
	}
}

func TestFig3IncreasingFunctionsConvergeDecreasingDoNot(t *testing.T) {
	t.Parallel()
	res := Fig3()
	if len(res.Functions) != 6 {
		t.Fatalf("want 6 functions, got %d", len(res.Functions))
	}
	for i, name := range res.Functions {
		series := res.IterTimeMS[i]
		if len(series) < 25 {
			t.Fatalf("%s: only %d iterations", name, len(series))
		}
		tail := series[len(series)-5:]
		var avgTail float64
		for _, v := range tail {
			avgTail += v
		}
		avgTail /= float64(len(tail))
		increasing := name != "F5" && name != "F6"
		if increasing {
			// Converge to within 3% of the 1800ms ideal.
			if avgTail > res.IdealMS*1.03 {
				t.Errorf("%s: tail iteration %.0fms, want ~%.0fms", name, avgTail, res.IdealMS)
			}
		} else {
			// Decreasing functions never interleave: stay >=8% above.
			if avgTail < res.IdealMS*1.08 {
				t.Errorf("%s: tail iteration %.0fms — decreasing F should not converge", name, avgTail)
			}
		}
	}
}

func TestFig4TailSpeedup(t *testing.T) {
	t.Parallel()
	res := Fig4()
	// Paper: 1.59× tail (p99) iteration-time speedup over Reno for six
	// GPT-2 jobs. Accept the right ballpark.
	if res.TailSpeedup < 1.3 || res.TailSpeedup > 1.8 {
		t.Errorf("tail speedup = %.3f, want ~1.5-1.6", res.TailSpeedup)
	}
	// Reno's CDF must sit to the right of (above) MLTCP's at the tail.
	if res.RenoCDF[len(res.RenoCDF)-1].Value <= res.MLTCPCDF[len(res.MLTCPCDF)-1].Value {
		t.Error("Reno max iteration should exceed MLTCP max")
	}
}

func TestFig5LossMinimumAtHalfPeriod(t *testing.T) {
	t.Parallel()
	res := Fig5()
	// Figure 5(c): minimum at Δ = T/2 = 0.9s for a = 1/2, T = 1.8s.
	if res.MinDeltaSec < 0.85 || res.MinDeltaSec > 0.95 {
		t.Errorf("loss minimum at %.3fs, want ~0.9s", res.MinDeltaSec)
	}
	if res.Loss[0] != 0 {
		t.Errorf("Loss(0) = %v, want 0", res.Loss[0])
	}
}

func TestFig6SlidingEffect(t *testing.T) {
	t.Parallel()
	res := Fig6()
	if res.InterleavedAt < 0 {
		t.Fatal("two GPT-2 jobs never interleaved")
	}
	if res.InterleavedAt > 30 {
		t.Errorf("interleaved at iteration %d, want within ~20-30", res.InterleavedAt)
	}
	// Delta must grow (slide) monotonically-ish until interleaved.
	if len(res.DeltaSec) < 5 {
		t.Fatal("too few deltas")
	}
	if res.DeltaSec[res.InterleavedAt] <= res.DeltaSec[0] {
		t.Errorf("delta did not grow: start %.3f, at convergence %.3f",
			res.DeltaSec[0], res.DeltaSec[res.InterleavedAt])
	}
	// After interleaving, shifts should be ~0 (stable schedule).
	for i := res.InterleavedAt + 1; i < len(res.ShiftSec); i++ {
		if s := res.ShiftSec[i]; s > 0.05 || s < -0.05 {
			t.Errorf("post-convergence shift %d = %.3fs, want ~0", i, s)
		}
	}
}

func TestNoiseBoundHolds(t *testing.T) {
	t.Parallel()
	res := NoiseBound(2)
	if len(res.SigmaMS) < 3 {
		t.Fatal("too few sigma points")
	}
	for i := range res.SigmaMS {
		if res.MeasuredMS[i] > res.BoundMS[i]*1.25 {
			t.Errorf("sigma %.0fms: measured error std %.1fms exceeds bound %.1fms",
				res.SigmaMS[i], res.MeasuredMS[i], res.BoundMS[i])
		}
	}
	// Error must grow with sigma (roughly linear => larger at the top).
	if res.MeasuredMS[len(res.MeasuredMS)-1] <= res.MeasuredMS[0] {
		t.Errorf("error did not grow with noise: %v", res.MeasuredMS)
	}
}
