package experiments

import (
	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
)

// Fig3Result compares the six bandwidth aggressiveness functions of
// Figure 3 on three competing GPT-2 jobs: average iteration time by
// iteration number. Increasing functions (F1–F4) interleave within ~20
// iterations and fall to the ideal; decreasing ones (F5, F6) never improve.
type Fig3Result struct {
	// Functions are the function names, F1..F6.
	Functions []string
	// IterTimeMS[f][k] is the average (across the three jobs) duration
	// of iteration k in milliseconds under function f.
	IterTimeMS [][]float64
	// IdealMS is the jobs' isolated iteration time in milliseconds.
	IdealMS float64
}

// Fig3Iterations is how many iterations each run records.
const Fig3Iterations = 40

// Fig3 regenerates Figure 3.
func Fig3() Fig3Result {
	res := Fig3Result{}
	for _, f := range core.PaperFunctions() {
		f := f
		jobs := gpt2Jobs(3, &f)
		s := fluid.New(fluid.Config{Capacity: LinkCapacity, Policy: fluid.WeightedShare{}}, jobs)
		s.Run(Fig3Iterations * 3 * sim.Second) // generous horizon
		res.Functions = append(res.Functions, f.Name)
		res.IterTimeMS = append(res.IterTimeMS, avgIterSeries(jobs, Fig3Iterations))
	}
	res.IdealMS = jobsIdealMS()
	return res
}

func jobsIdealMS() float64 {
	j := gpt2Jobs(1, nil)[0]
	return j.Spec.Profile.IdealIterTime(LinkCapacity).Seconds() * 1000
}

// avgIterSeries averages iteration k's duration across jobs, in ms.
func avgIterSeries(jobs []*fluid.Job, iters int) []float64 {
	out := make([]float64, 0, iters)
	for k := 0; k < iters; k++ {
		var sum float64
		n := 0
		for _, j := range jobs {
			if k < len(j.IterDurations) {
				sum += j.IterDurations[k].Seconds() * 1000
				n++
			}
		}
		if n == 0 {
			break
		}
		out = append(out, sum/float64(n))
	}
	return out
}
