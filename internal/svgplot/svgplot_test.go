package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderWellFormedXML(t *testing.T) {
	out := render(t, &Chart{
		Title:  "test & chart",
		XLabel: "iteration",
		YLabel: "ms",
		Series: []Series{
			{Name: "a<b", Y: []float64{1, 2, 3, 2, 5}},
			{Name: "c", X: []float64{0, 2, 4, 6, 8}, Y: []float64{5, 4, 3, 2, 1}},
		},
	})
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "test &amp; chart", "a&lt;b", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Two series, two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestRenderErrors(t *testing.T) {
	var b strings.Builder
	if err := (&Chart{Title: "x"}).Render(&b); err == nil {
		t.Error("no error for empty chart")
	}
	if err := (&Chart{Width: 10, Height: 10, Series: []Series{{Y: []float64{1}}}}).Render(&b); err == nil {
		t.Error("no error for tiny chart")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	// Constant series must not divide by zero.
	out := render(t, &Chart{Title: "flat", Series: []Series{{Name: "c", Y: []float64{5, 5, 5}}}})
	if !strings.Contains(out, "polyline") {
		t.Error("flat series not drawn")
	}
}

func TestTicksCoverRange(t *testing.T) {
	ticks := Ticks(0, 100, 6)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for _, v := range ticks {
		if v < 0 || v > 100 {
			t.Errorf("tick %v outside [0,100]", v)
		}
	}
	// Nice steps only.
	step := ticks[1] - ticks[0]
	mant := step / math.Pow(10, math.Floor(math.Log10(step)))
	if !(near(mant, 1) || near(mant, 2) || near(mant, 5)) {
		t.Errorf("step %v not 1/2/5×10^k", step)
	}
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Property: ticks are sorted, within range (with epsilon), and nice.
func TestTicksProperty(t *testing.T) {
	prop := func(lo8, span8 uint8, n8 uint8) bool {
		lo := float64(lo8) - 128
		span := float64(span8)/10 + 0.1
		hi := lo + span
		n := int(n8%8) + 2
		ticks := Ticks(lo, hi, n)
		if len(ticks) == 0 {
			return false
		}
		for i, v := range ticks {
			if v < lo-1e-9 || v > hi+1e-6 {
				return false
			}
			if i > 0 && v <= ticks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1.5: 2, 3: 5, 7: 10, 15: 20, 0.03: 0.05, 230: 500,
	}
	for in, want := range cases {
		if got := niceStep(in); !near(got, want) {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
}
