// Package svgplot renders line charts as standalone SVG files using only
// the standard library, so every regenerated paper figure can be saved as
// an image (cmd/mltcp-figures -svgdir) in addition to the terminal charts.
package svgplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one polyline. X is optional: when nil, points are plotted at
// their indices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart describes one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height in pixels (defaults 720×440).
	Width, Height int
	Series        []Series
}

// palette holds distinguishable series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
	"#9467bd", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 36.0
	marginBottom = 48.0
)

// Render writes the chart as a complete SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svgplot: chart %q has no series", c.Title)
	}
	if c.Width == 0 {
		c.Width = 720
	}
	if c.Height == 0 {
		c.Height = 440
	}
	if c.Width < 100 || c.Height < 80 {
		return fmt.Errorf("svgplot: chart %q too small (%dx%d)", c.Title, c.Width, c.Height)
	}

	xmin, xmax, ymin, ymax := c.bounds()
	if xmax == xmin { //lint:allow simunits degenerate-range guard: only the exactly-collapsed axis needs widening
		xmax = xmin + 1
	}
	if ymax == ymin { //lint:allow simunits degenerate-range guard: only the exactly-collapsed axis needs widening
		ymax = ymin + 1
	}
	plotW := float64(c.Width) - marginLeft - marginRight
	plotH := float64(c.Height) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
		float64(c.Width)/2, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, c.Height-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Gridlines and ticks.
	for _, tx := range Ticks(xmin, xmax, 6) {
		x := px(tx)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+14, formatTick(tx))
	}
	for _, ty := range Ticks(ymin, ymax, 5) {
		y := py(ty)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-4, y+3, formatTick(ty))
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333333"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Series polylines.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			fmt.Fprintf(&pts, "%.2f,%.2f ", px(x), py(y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(pts.String()), color)
		// Legend entry.
		lx := marginLeft + plotW - 110
		ly := marginTop + 14 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i, y := range s.Y {
			x := float64(i)
			if s.X != nil {
				x = s.X[i]
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	return xmin, xmax, ymin, ymax
}

// Ticks returns ~n "nice" tick positions covering [lo, hi].
func Ticks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	step := niceStep(span / float64(n))
	start := math.Ceil(lo/step) * step
	var out []float64
	for v := start; v <= hi+step*1e-9; v += step {
		out = append(out, v)
	}
	return out
}

// niceStep rounds a raw step to 1, 2, or 5 times a power of ten.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	frac := raw / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 { //lint:allow simunits exact integrality test chooses integer tick formatting
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
