package fluid

import (
	"math"
	"reflect"
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// netJob builds a communicating job with a constant weight (F(r) = weight
// for every r) and the given path, ready for Allocate calls.
func netJob(name string, weight float64, path []int) *Job {
	j := &Job{
		Spec: workload.Spec{
			Name: name,
			Profile: workload.Profile{
				Name: "t", ComputeTime: sim.Millisecond, CommBytes: units.ByteCount(1e9),
			},
		},
		Path: path,
	}
	if weight != 1 { //lint:allow simunits weight is a test constant; 1 selects the nil-Agg plain-TCP job exactly
		f := core.Linear(0, weight)
		j.Agg = &f
	}
	j.phase = phaseComm
	j.commRemaining = j.TotalBytes()
	return j
}

// relTol is the ulp-scaled tolerance for the allocator invariants: the
// progressive-filling sums accumulate at most a handful of rounding
// errors per link.
const relTol = 1e-9

// checkInvariants asserts the three max-min properties on one allocation:
// per-link conservation, bottleneck saturation for every positive-weight
// flow, and weight-proportional rates among flows frozen at the same
// bottleneck (verified pairwise for identical paths).
func checkInvariants(t *testing.T, nw *Network, jobs []*Job, rates []units.Rate) {
	t.Helper()
	if len(rates) != len(jobs) {
		t.Fatalf("%d rates for %d jobs", len(rates), len(jobs))
	}
	load := make([]float64, len(nw.Capacities))
	for i, j := range jobs {
		if rates[i] < 0 {
			t.Fatalf("job %s: negative rate %v", j.Spec.Label(), rates[i])
		}
		for _, l := range j.Path {
			load[l] += float64(rates[i])
		}
	}
	for l, cap := range nw.Capacities {
		if load[l] > float64(cap)*(1+relTol) {
			t.Fatalf("link %d: load %g exceeds capacity %g", l, load[l], float64(cap))
		}
	}
	for i, j := range jobs {
		if j.Weight() <= 0 {
			continue
		}
		saturated := false
		for _, l := range j.Path {
			if load[l] >= float64(nw.Capacities[l])*(1-relTol) {
				saturated = true
				break
			}
		}
		if !saturated {
			t.Fatalf("job %s (rate %v) has no saturated link on its path", j.Spec.Label(), rates[i])
		}
	}
	// Weighted fairness: identical paths imply the same bottleneck, so
	// rates must be proportional to weights.
	for i := range jobs {
		for k := i + 1; k < len(jobs); k++ {
			if !reflect.DeepEqual(jobs[i].Path, jobs[k].Path) {
				continue
			}
			wi, wk := jobs[i].Weight(), jobs[k].Weight()
			if wi <= 0 || wk <= 0 {
				continue
			}
			got := float64(rates[i]) * wk
			want := float64(rates[k]) * wi
			if math.Abs(got-want) > relTol*math.Max(math.Abs(got), 1) {
				t.Fatalf("jobs %s/%s share a path but rates %v:%v are not %g:%g",
					jobs[i].Spec.Label(), jobs[k].Spec.Label(), rates[i], rates[k], wi, wk)
			}
		}
	}
}

// TestMaxMinRandomTopologies is the allocator invariant property test:
// randomized seeded link sets, paths, and weights, checked against
// conservation, saturation, and weighted fairness on every draw.
func TestMaxMinRandomTopologies(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "u"}
	for seed := uint64(0); seed < 64; seed++ {
		rng := sim.NewRNGAt(42, seed)
		nl := 1 + rng.Intn(12)
		caps := make([]units.Rate, nl)
		for l := range caps {
			caps[l] = units.Rate((1 + rng.Float64()*99) * float64(units.Gbps))
		}
		nw := NewNetwork(caps, nil)
		n := 1 + rng.Intn(len(names)-1)
		jobs := make([]*Job, n)
		for i := range jobs {
			// Path: 1..4 distinct links in random order.
			pl := 1 + rng.Intn(4)
			if pl > nl {
				pl = nl
			}
			perm := make([]int, nl)
			for p := range perm {
				perm[p] = p
			}
			for p := 0; p < pl; p++ { // partial Fisher–Yates
				q := p + rng.Intn(nl-p)
				perm[p], perm[q] = perm[q], perm[p]
			}
			w := 0.25 + rng.Float64()*1.75 // the paper's F range
			jobs[i] = netJob(names[i], w, perm[:pl])
		}
		rates := MaxMin{}.AllocateNetwork(nw, jobs)
		checkInvariants(t, nw, jobs, rates)
	}
}

// TestMaxMinSingleLinkBitIdentical pins the degenerate case the golden
// traces rely on: over one link, AllocateNetwork and Allocate both
// reproduce WeightedShare bit for bit, for arbitrary weights.
func TestMaxMinSingleLinkBitIdentical(t *testing.T) {
	for seed := uint64(0); seed < 32; seed++ {
		rng := sim.NewRNGAt(7, seed)
		n := 1 + rng.Intn(20)
		jobs := make([]*Job, n)
		netJobs := make([]*Job, n)
		for i := range jobs {
			w := 0.25 + rng.Float64()*1.75
			jobs[i] = netJob("s", w, nil)
			netJobs[i] = netJob("s", w, []int{0})
		}
		cap := units.Rate((1 + rng.Float64()*99) * float64(units.Gbps))
		want := WeightedShare{}.Allocate(cap, jobs)
		if got := (MaxMin{}).Allocate(cap, jobs); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: MaxMin.Allocate diverged from WeightedShare", seed)
		}
		nw := NewNetwork([]units.Rate{cap}, []string{"bottleneck"})
		if got := (MaxMin{}).AllocateNetwork(nw, netJobs); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: AllocateNetwork over one link diverged from WeightedShare", seed)
		}
	}
}

// TestMaxMinParkingLot checks the textbook multi-bottleneck answer: two
// unit links in series, one long flow crossing both and one short flow on
// each. Max-min gives every flow 1/2.
func TestMaxMinParkingLot(t *testing.T) {
	nw := NewNetwork([]units.Rate{units.Rate(1e9), units.Rate(1e9)}, nil)
	jobs := []*Job{
		netJob("long", 1, []int{0, 1}),
		netJob("s0", 1, []int{0}),
		netJob("s1", 1, []int{1}),
	}
	rates := MaxMin{}.AllocateNetwork(nw, jobs)
	checkInvariants(t, nw, jobs, rates)
	for i, want := range []float64{0.5e9, 0.5e9, 0.5e9} {
		if got := float64(rates[i]); math.Abs(got-want) > relTol*want {
			t.Errorf("flow %d: rate %g, want %g", i, got, want)
		}
	}
}

// TestMaxMinMultiBottleneck checks that a flow leaving its first
// bottleneck's headroom behind claims it on a wider link: cap(0)=1,
// cap(1)=10, long flow on both, local flow on link 1 only.
func TestMaxMinMultiBottleneck(t *testing.T) {
	nw := NewNetwork([]units.Rate{units.Rate(1e9), units.Rate(10e9)}, nil)
	jobs := []*Job{
		netJob("long", 1, []int{0, 1}),
		netJob("local", 1, []int{1}),
	}
	rates := MaxMin{}.AllocateNetwork(nw, jobs)
	checkInvariants(t, nw, jobs, rates)
	if got, want := float64(rates[0]), 1e9; math.Abs(got-want) > relTol*want {
		t.Errorf("long flow: rate %g, want %g", got, want)
	}
	if got, want := float64(rates[1]), 9e9; math.Abs(got-want) > relTol*want {
		t.Errorf("local flow: rate %g, want %g", got, want)
	}
}

// TestMaxMinWeightScaling pins exact proportional scaling: doubling a
// flow's weight exactly doubles its share against a unit-weight peer on
// the same bottleneck (the MLTCP aggressiveness contract).
func TestMaxMinWeightScaling(t *testing.T) {
	nw := NewNetwork([]units.Rate{units.Rate(3e9)}, nil)
	jobs := []*Job{
		netJob("w2", 2, []int{0}),
		netJob("w1", 1, []int{0}),
	}
	rates := MaxMin{}.AllocateNetwork(nw, jobs)
	checkInvariants(t, nw, jobs, rates)
	if float64(rates[0]) != 2*float64(rates[1]) { //lint:allow simunits 2× proportionality is exact in binary floating point for the shared-denominator expression
		t.Errorf("rates %v, %v: want exact 2:1 split", rates[0], rates[1])
	}
}

// TestSimNetworkRun integrates the allocator with the solver: two jobs on
// a three-link chain complete iterations, and a job sharing no link with
// them is unaffected by their contention.
func TestSimNetworkRun(t *testing.T) {
	cap := units.Rate(50 * units.Gbps)
	nw := NewNetwork([]units.Rate{cap, cap, cap, cap}, []string{"l0", "l1", "l2", "l3"})
	mk := func(name string, seed uint64, path []int) *Job {
		return &Job{
			Spec: workload.Spec{
				Name:    name,
				Profile: workload.Profile{Name: "gpt2x", ComputeTime: 1600 * sim.Millisecond, CommBytes: 1250 * units.MB},
				Seed:    seed,
			},
			Path: path,
		}
	}
	jobs := []*Job{
		mk("shared-a", 1, []int{0, 1}),
		mk("shared-b", 2, []int{1, 2}),
		mk("alone", 3, []int{3}),
	}
	s := New(Config{Network: nw, Policy: MaxMin{}}, jobs)
	s.Run(30 * sim.Second)
	for _, j := range jobs {
		if j.Iterations() < 10 {
			t.Fatalf("job %s completed only %d iterations", j.Spec.Label(), j.Iterations())
		}
	}
	// The isolated job runs at its ideal period: 1.8s at 50 Gbps.
	ideal := jobs[2].Spec.Profile.IdealIterTime(cap)
	if got := jobs[2].AvgIterTime(2); got != ideal {
		t.Errorf("isolated job iterates at %v, want ideal %v", got, ideal)
	}
}

// TestSimNetworkValidation pins the constructor's network checks.
func TestSimNetworkValidation(t *testing.T) {
	nw := NewNetwork([]units.Rate{units.Rate(1e9)}, nil)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-network policy", func() {
		New(Config{Network: nw, Policy: WeightedShare{}}, []*Job{netJob("x", 1, []int{0})})
	})
	mustPanic("missing path", func() {
		New(Config{Network: nw, Policy: MaxMin{}}, []*Job{netJob("x", 1, nil)})
	})
	mustPanic("bad link index", func() {
		New(Config{Network: nw, Policy: MaxMin{}}, []*Job{netJob("x", 1, []int{3})})
	})
}
