// Package fluid is a flow-level (fluid) simulator of periodic DNN jobs
// sharing one bottleneck link. Instead of individual packets, each
// communicating job receives an instantaneous rate from a pluggable sharing
// policy; phases advance by integrating those rates over small intervals.
//
// The weighted-share policy abstracts AIMD congestion control: with
// synchronized loss and equal RTTs, a flow whose additive increase is
// scaled by F obtains a steady-state bandwidth share proportional to F, so
// MLTCP's window scaling appears here as a per-job weight F(bytes_ratio).
// This is exactly the abstraction §4 of the paper uses to derive the Shift
// function, and it lets convergence experiments spanning hundreds of
// iterations run in milliseconds. The packet-level simulator
// (internal/netsim + internal/tcp + internal/core) validates the
// abstraction at small scale.
package fluid

import (
	"fmt"
	"math"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

type phase int

const (
	phaseIdle phase = iota // before StartOffset
	phaseComm
	phaseCompute
	phaseDone // stopped by job-iteration limit
)

// Job is one periodic DNN job inside a fluid simulation.
type Job struct {
	// Spec is the job's workload description.
	Spec workload.Spec
	// Agg is the job's aggressiveness function; nil models a plain
	// fair-share flow (TCP Reno) with constant weight 1.
	Agg *core.AggFunc
	// MaxIterations stops the job after this many completed
	// communication phases (0 = unlimited).
	MaxIterations int
	// Path lists the directed link indices the job's flow crosses, in
	// order, when the simulation runs over a Config.Network fabric.
	// Ignored (and normally nil) in single-bottleneck simulations.
	Path []int

	phase         phase
	commRemaining float64 // bytes left in the current comm phase
	attained      float64 // bytes delivered in the current iteration
	wakeAt        sim.Time
	rng           *sim.RNG
	flow          int // telemetry flow ID (1-based position)

	// CommStarts and CommEnds record each communication phase's
	// boundaries; IterDurations[i] = CommStarts[i+1] - CommStarts[i].
	CommStarts    []sim.Time
	CommEnds      []sim.Time
	IterDurations []sim.Time
}

// TotalBytes returns the job's per-iteration communication volume.
func (j *Job) TotalBytes() float64 { return float64(j.Spec.Profile.CommBytes) }

// BytesRatio returns the fraction of the current iteration's bytes already
// delivered, clamped to [0, 1] — the fluid analogue of Algorithm 1's
// bytes_ratio.
func (j *Job) BytesRatio() float64 {
	return math.Min(1, j.attained/j.TotalBytes())
}

// Weight returns the job's current bandwidth weight: F(bytes_ratio) for
// MLTCP jobs, 1 for plain fair-share jobs.
func (j *Job) Weight() float64 {
	if j.Agg == nil {
		return 1
	}
	return j.Agg.Eval(j.BytesRatio())
}

// Remaining returns the bytes left in the current communication phase
// (pFabric/SRPT's remaining flow size). Zero outside a comm phase.
func (j *Job) Remaining() float64 {
	if j.phase != phaseComm {
		return 0
	}
	return j.commRemaining
}

// Attained returns the bytes delivered in the current iteration (the LAS /
// PIAS demotion counter, which resets each iteration because each comm
// phase is a fresh flowlet).
func (j *Job) Attained() float64 { return j.attained }

// currentCommStart returns when the job's current communication phase
// began (sim.MaxTime if it never communicated).
func (j *Job) currentCommStart() sim.Time {
	if len(j.CommStarts) == 0 {
		return sim.MaxTime
	}
	return j.CommStarts[len(j.CommStarts)-1]
}

// Communicating reports whether the job is in a communication phase.
func (j *Job) Communicating() bool { return j.phase == phaseComm }

// Iterations returns the number of completed communication phases.
func (j *Job) Iterations() int { return len(j.CommEnds) }

// AvgIterTime averages the iteration durations after skipping the first
// `skip` (to exclude the convergence transient when measuring steady
// state). It returns 0 if no iterations qualify.
func (j *Job) AvgIterTime(skip int) sim.Time {
	if skip >= len(j.IterDurations) {
		return 0
	}
	var sum sim.Time
	n := 0
	for _, d := range j.IterDurations[skip:] {
		sum += d
		n++
	}
	return sum / sim.Time(n)
}

// Config configures a fluid simulation.
type Config struct {
	// Capacity is the bottleneck link rate. Ignored when Network is set
	// (each link then carries its own capacity).
	Capacity units.Rate
	// Policy allocates the bottleneck among communicating jobs. When
	// Network is set it must implement NetworkPolicy.
	Policy Policy
	// Network, when non-nil, replaces the single bottleneck with a
	// multi-link fabric: every job must carry a non-empty Path of link
	// indices into Network.Capacities, and allocation goes through the
	// policy's AllocateNetwork.
	Network *Network
	// Step bounds how long allocated rates are held constant before the
	// policy re-evaluates (default 1ms). Phase boundaries are handled
	// exactly regardless of Step.
	Step sim.Time
	// TraceBucket, when positive, records per-job bandwidth into
	// buckets of this width for plotting.
	TraceBucket sim.Time
	// Telemetry receives iteration boundaries and MLTCP weight
	// evaluations, under the same event schema the packet stack emits.
	// Jobs are identified by flow ID = 1-based position. Nil disables.
	Telemetry *telemetry.Recorder
}

// Sim runs a set of jobs over one bottleneck (or, with Config.Network, a
// multi-link fabric).
type Sim struct {
	cfg    Config
	netpol NetworkPolicy // non-nil iff cfg.Network is set
	jobs   []*Job
	now    sim.Time
	steps  uint64

	trace map[*Job][]float64 // bytes per bucket
}

// New creates a simulation. Every job gets a private noise stream derived
// from its Spec.Seed.
func New(cfg Config, jobs []*Job) *Sim {
	if cfg.Network == nil && cfg.Capacity <= 0 {
		panic("fluid: capacity must be positive")
	}
	if cfg.Policy == nil {
		panic("fluid: nil policy")
	}
	if cfg.Step == 0 {
		cfg.Step = sim.Millisecond
	}
	if cfg.Step < 0 {
		panic("fluid: negative step")
	}
	if len(jobs) == 0 {
		panic("fluid: no jobs")
	}
	s := &Sim{cfg: cfg, jobs: jobs, trace: make(map[*Job][]float64)}
	if cfg.Network != nil {
		np, ok := cfg.Policy.(NetworkPolicy)
		if !ok {
			panic(fmt.Sprintf("fluid: policy %s cannot allocate a multi-link network", cfg.Policy.Name()))
		}
		s.netpol = np
	}
	for i, j := range jobs {
		if j.Spec.Profile.CommBytes <= 0 || j.Spec.Profile.ComputeTime < 0 {
			panic(fmt.Sprintf("fluid: job %s has invalid profile %v", j.Spec.Label(), j.Spec.Profile))
		}
		if cfg.Network != nil {
			if len(j.Path) == 0 {
				panic(fmt.Sprintf("fluid: job %s has no network path", j.Spec.Label()))
			}
			for _, l := range j.Path {
				if l < 0 || l >= len(cfg.Network.Capacities) {
					panic(fmt.Sprintf("fluid: job %s path references link %d of %d",
						j.Spec.Label(), l, len(cfg.Network.Capacities)))
				}
			}
		}
		j.phase = phaseIdle
		j.wakeAt = j.Spec.StartOffset
		j.rng = sim.NewRNG(j.Spec.Seed ^ 0x9e3779b97f4a7c15)
		j.flow = i + 1
	}
	return s
}

// Jobs returns the simulated jobs.
func (s *Sim) Jobs() []*Job { return s.jobs }

// Now returns the current simulation time.
func (s *Sim) Now() sim.Time { return s.now }

// Steps returns the number of integration intervals processed so far —
// the fluid analogue of a discrete engine's fired-event count, used by
// the self-metrics layer to express solver throughput.
func (s *Sim) Steps() uint64 { return s.steps }

// Run advances the simulation to the given absolute time.
func (s *Sim) Run(until sim.Time) {
	for s.now < until {
		s.steps++
		s.wakeDueJobs()

		active := s.activeJobs()
		dt := s.nextBoundary(until, active)
		if len(active) == 0 {
			s.now += dt
			continue
		}

		var rates []units.Rate
		if s.netpol != nil {
			rates = s.netpol.AllocateNetwork(s.cfg.Network, active)
		} else {
			rates = s.cfg.Policy.Allocate(s.cfg.Capacity, active)
		}
		if s.cfg.Telemetry.Enabled() {
			for _, j := range active {
				if j.Agg != nil {
					ratio := j.BytesRatio()
					s.cfg.Telemetry.AggEval(s.now, j.flow, ratio, j.Agg.Eval(ratio))
				}
			}
		}
		// Constrain dt so no job overshoots its completion.
		for i, j := range active {
			if rates[i] <= 0 {
				continue
			}
			finish := sim.FromSeconds(j.commRemaining * 8 / float64(rates[i]))
			if finish < 1 {
				finish = 1 // guard against zero-length loops
			}
			if finish < dt {
				dt = finish
			}
		}

		for i, j := range active {
			if rates[i] <= 0 {
				continue
			}
			bytes := float64(rates[i]) / 8 * dt.Seconds()
			if bytes >= j.commRemaining-1e-6 {
				bytes = j.commRemaining
			}
			j.commRemaining -= bytes
			j.attained += bytes
			s.recordTrace(j, s.now, dt, bytes)
			if j.commRemaining <= 1e-6 {
				s.finishComm(j, s.now+dt)
			}
		}
		s.now += dt
	}
	s.now = until
}

func (s *Sim) wakeDueJobs() {
	for _, j := range s.jobs {
		if (j.phase == phaseIdle || j.phase == phaseCompute) && j.wakeAt <= s.now {
			j.phase = phaseComm
			j.commRemaining = j.TotalBytes()
			j.attained = 0
			j.CommStarts = append(j.CommStarts, s.now)
			s.cfg.Telemetry.IterStart(s.now, j.flow, len(j.CommStarts)-1)
			if n := len(j.CommStarts); n >= 2 {
				j.IterDurations = append(j.IterDurations, j.CommStarts[n-1]-j.CommStarts[n-2])
			}
		}
	}
}

func (s *Sim) activeJobs() []*Job {
	var out []*Job
	for _, j := range s.jobs {
		if j.phase == phaseComm {
			out = append(out, j)
		}
	}
	return out
}

// nextBoundary returns the interval to the next wake-up or the step limit.
func (s *Sim) nextBoundary(until sim.Time, active []*Job) sim.Time {
	dt := until - s.now
	if len(active) > 0 && s.cfg.Step < dt {
		dt = s.cfg.Step
	}
	for _, j := range s.jobs {
		if j.phase == phaseIdle || j.phase == phaseCompute {
			if w := j.wakeAt - s.now; w < dt {
				dt = w
			}
		}
	}
	if dt < 1 {
		dt = 1
	}
	return dt
}

func (s *Sim) finishComm(j *Job, at sim.Time) {
	j.CommEnds = append(j.CommEnds, at)
	s.cfg.Telemetry.IterEnd(at, j.flow, len(j.CommEnds)-1, at-j.currentCommStart())
	if j.MaxIterations > 0 && len(j.CommEnds) >= j.MaxIterations {
		j.phase = phaseDone
		return
	}
	compute := j.Spec.Profile.ComputeTime
	if j.Spec.NoiseStd > 0 {
		compute = j.rng.NormDuration(compute, j.Spec.NoiseStd, 0)
	}
	j.phase = phaseCompute
	j.wakeAt = at + compute
}

func (s *Sim) recordTrace(j *Job, t, dt sim.Time, bytes float64) {
	if s.cfg.TraceBucket <= 0 {
		return
	}
	idx := int((t + dt/2) / s.cfg.TraceBucket)
	tr := s.trace[j]
	for len(tr) <= idx {
		tr = append(tr, 0)
	}
	tr[idx] += bytes
	s.trace[j] = tr
}

// TraceBytes returns the job's recorded per-bucket delivered bytes (empty
// without TraceBucket).
func (s *Sim) TraceBytes(j *Job) []float64 { return s.trace[j] }

// EmitTrace replays every job's bandwidth buckets as KindBandwidth events
// (one per non-empty bucket, timestamped at the bucket's end). Call after
// Run; telemetry.Write's stable sort interleaves them deterministically.
func (s *Sim) EmitTrace(rec *telemetry.Recorder) {
	if !rec.Enabled() || s.cfg.TraceBucket <= 0 {
		return
	}
	for _, j := range s.jobs {
		for i, b := range s.trace[j] {
			if b == 0 {
				continue
			}
			rec.Bandwidth(sim.Time(i+1)*s.cfg.TraceBucket, j.flow, s.cfg.TraceBucket, b)
		}
	}
}

// Trace returns the job's recorded bandwidth series in bits per second per
// bucket (empty without TraceBucket).
func (s *Sim) Trace(j *Job) []units.Rate {
	bytes := s.trace[j]
	out := make([]units.Rate, len(bytes))
	for i, b := range bytes {
		out[i] = units.Rate(b * 8 / s.cfg.TraceBucket.Seconds())
	}
	return out
}
