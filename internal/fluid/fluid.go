// Package fluid is a flow-level (fluid) simulator of periodic DNN jobs
// sharing one bottleneck link. Instead of individual packets, each
// communicating job receives an instantaneous rate from a pluggable sharing
// policy; phases advance by integrating those rates over small intervals.
//
// The weighted-share policy abstracts AIMD congestion control: with
// synchronized loss and equal RTTs, a flow whose additive increase is
// scaled by F obtains a steady-state bandwidth share proportional to F, so
// MLTCP's window scaling appears here as a per-job weight F(bytes_ratio).
// This is exactly the abstraction §4 of the paper uses to derive the Shift
// function, and it lets convergence experiments spanning hundreds of
// iterations run in milliseconds. The packet-level simulator
// (internal/netsim + internal/tcp + internal/core) validates the
// abstraction at small scale.
package fluid

import (
	"fmt"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

type phase int

const (
	phaseIdle phase = iota // before StartOffset
	phaseComm
	phaseCompute
	phaseDone // stopped by job-iteration limit
)

// Job is one periodic DNN job inside a fluid simulation.
type Job struct {
	// Spec is the job's workload description.
	Spec workload.Spec
	// Agg is the job's aggressiveness function; nil models a plain
	// fair-share flow (TCP Reno) with constant weight 1.
	Agg *core.AggFunc
	// MaxIterations stops the job after this many completed
	// communication phases (0 = unlimited).
	MaxIterations int
	// Path lists the directed link indices the job's flow crosses, in
	// order, when the simulation runs over a Config.Network fabric.
	// Ignored (and normally nil) in single-bottleneck simulations.
	Path []int

	phase         phase
	commRemaining float64 // bytes left in the current comm phase
	attained      float64 // bytes delivered in the current iteration
	wakeAt        sim.Time
	rng           *sim.RNG
	flow          int // telemetry flow ID (1-based position)

	// CommStarts and CommEnds record each communication phase's
	// boundaries; IterDurations[i] = CommStarts[i+1] - CommStarts[i].
	CommStarts    []sim.Time
	CommEnds      []sim.Time
	IterDurations []sim.Time
}

// TotalBytes returns the job's per-iteration communication volume.
func (j *Job) TotalBytes() float64 { return float64(j.Spec.Profile.CommBytes) }

// BytesRatio returns the fraction of the current iteration's bytes already
// delivered, clamped to [0, 1] — the fluid analogue of Algorithm 1's
// bytes_ratio.
func (j *Job) BytesRatio() float64 {
	// Branchy min instead of math.Min: same result for every input this
	// ratio can take (non-negative, NaN passes through either way), and
	// it keeps the per-step weight evaluation call-free.
	r := j.attained / j.TotalBytes()
	if r > 1 {
		return 1
	}
	return r
}

// Weight returns the job's current bandwidth weight: F(bytes_ratio) for
// MLTCP jobs, 1 for plain fair-share jobs.
func (j *Job) Weight() float64 {
	if j.Agg == nil {
		return 1
	}
	return j.Agg.Eval(j.BytesRatio())
}

// Remaining returns the bytes left in the current communication phase
// (pFabric/SRPT's remaining flow size). Zero outside a comm phase.
func (j *Job) Remaining() float64 {
	if j.phase != phaseComm {
		return 0
	}
	return j.commRemaining
}

// Attained returns the bytes delivered in the current iteration (the LAS /
// PIAS demotion counter, which resets each iteration because each comm
// phase is a fresh flowlet).
func (j *Job) Attained() float64 { return j.attained }

// currentCommStart returns when the job's current communication phase
// began (sim.MaxTime if it never communicated).
func (j *Job) currentCommStart() sim.Time {
	if len(j.CommStarts) == 0 {
		return sim.MaxTime
	}
	return j.CommStarts[len(j.CommStarts)-1]
}

// Communicating reports whether the job is in a communication phase.
func (j *Job) Communicating() bool { return j.phase == phaseComm }

// Iterations returns the number of completed communication phases.
func (j *Job) Iterations() int { return len(j.CommEnds) }

// AvgIterTime averages the iteration durations after skipping the first
// `skip` (to exclude the convergence transient when measuring steady
// state). It returns 0 if no iterations qualify.
func (j *Job) AvgIterTime(skip int) sim.Time {
	if skip >= len(j.IterDurations) {
		return 0
	}
	var sum sim.Time
	n := 0
	for _, d := range j.IterDurations[skip:] {
		sum += d
		n++
	}
	return sum / sim.Time(n)
}

// Config configures a fluid simulation.
type Config struct {
	// Capacity is the bottleneck link rate. Ignored when Network is set
	// (each link then carries its own capacity).
	Capacity units.Rate
	// Policy allocates the bottleneck among communicating jobs. When
	// Network is set it must implement NetworkPolicy.
	Policy Policy
	// Network, when non-nil, replaces the single bottleneck with a
	// multi-link fabric: every job must carry a non-empty Path of link
	// indices into Network.Capacities, and allocation goes through the
	// policy's AllocateNetwork.
	Network *Network
	// Step bounds how long allocated rates are held constant before the
	// policy re-evaluates (default 1ms). Phase boundaries are handled
	// exactly regardless of Step.
	Step sim.Time
	// TraceBucket, when positive, records per-job bandwidth into
	// buckets of this width for plotting.
	TraceBucket sim.Time
	// Telemetry receives iteration boundaries and MLTCP weight
	// evaluations, under the same event schema the packet stack emits.
	// Jobs are identified by flow ID = 1-based position. Nil disables.
	Telemetry *telemetry.Recorder
}

// Sim runs a set of jobs over one bottleneck (or, with Config.Network, a
// multi-link fabric).
//
// The integration state is structured for the hot loop: the set of
// communicating jobs is maintained incrementally (in job-index order)
// across steps instead of being rebuilt by scanning every job, the next
// wake-up among sleeping jobs is cached, and the per-step rate vector and
// allocator scratch are reused — a steady-state step allocates nothing.
type Sim struct {
	cfg     Config
	netpol  NetworkPolicy // non-nil iff cfg.Network is set
	fill    Filler        // cfg.Policy's in-place fast path, if offered
	ws      bool          // fill is the stateless WeightedShare: call it directly
	netfill NetworkFiller // netpol's in-place fast path, if offered
	jobs    []*Job
	now     sim.Time
	steps   uint64

	active  []*Job       // communicating jobs, ascending flow id
	rates   []units.Rate // reused per-step allocation vector
	scratch AllocScratch // reused allocator working set
	minWake sim.Time     // earliest wakeAt among idle/compute jobs (MaxTime if none)

	trace [][]float64 // bytes per bucket, indexed by flow-1
}

// New creates a simulation. Every job gets a private noise stream derived
// from its Spec.Seed.
func New(cfg Config, jobs []*Job) *Sim {
	if cfg.Network == nil && cfg.Capacity <= 0 {
		panic("fluid: capacity must be positive")
	}
	if cfg.Policy == nil {
		panic("fluid: nil policy")
	}
	if cfg.Step == 0 {
		cfg.Step = sim.Millisecond
	}
	if cfg.Step < 0 {
		panic("fluid: negative step")
	}
	if len(jobs) == 0 {
		panic("fluid: no jobs")
	}
	s := &Sim{cfg: cfg, jobs: jobs, minWake: sim.MaxTime}
	if cfg.Network != nil {
		np, ok := cfg.Policy.(NetworkPolicy)
		if !ok {
			panic(fmt.Sprintf("fluid: policy %s cannot allocate a multi-link network", cfg.Policy.Name()))
		}
		s.netpol = np
		s.netfill, _ = cfg.Policy.(NetworkFiller)
	} else {
		s.fill, _ = cfg.Policy.(Filler)
		// Devirtualize the dominant single-link case: WeightedShare (and
		// MaxMin, whose single-link path is WeightedShare by definition)
		// is stateless, so allocate can call it directly instead of
		// through the interface.
		switch cfg.Policy.(type) {
		case WeightedShare, MaxMin:
			s.ws = true
		}
	}
	for i, j := range jobs {
		if j.Spec.Profile.CommBytes <= 0 || j.Spec.Profile.ComputeTime < 0 {
			panic(fmt.Sprintf("fluid: job %s has invalid profile %v", j.Spec.Label(), j.Spec.Profile))
		}
		if cfg.Network != nil {
			if len(j.Path) == 0 {
				panic(fmt.Sprintf("fluid: job %s has no network path", j.Spec.Label()))
			}
			for _, l := range j.Path {
				if l < 0 || l >= len(cfg.Network.Capacities) {
					panic(fmt.Sprintf("fluid: job %s path references link %d of %d",
						j.Spec.Label(), l, len(cfg.Network.Capacities)))
				}
			}
		}
		j.phase = phaseIdle
		j.wakeAt = j.Spec.StartOffset
		j.rng = sim.NewRNG(j.Spec.Seed ^ 0x9e3779b97f4a7c15)
		j.flow = i + 1
		if j.wakeAt < s.minWake {
			s.minWake = j.wakeAt
		}
	}
	s.active = make([]*Job, 0, len(jobs))
	s.rates = make([]units.Rate, len(jobs))
	s.trace = make([][]float64, len(jobs))
	return s
}

// Jobs returns the simulated jobs.
func (s *Sim) Jobs() []*Job { return s.jobs }

// Now returns the current simulation time.
func (s *Sim) Now() sim.Time { return s.now }

// Steps returns the number of integration intervals processed so far —
// the fluid analogue of a discrete engine's fired-event count, used by
// the self-metrics layer to express solver throughput.
func (s *Sim) Steps() uint64 { return s.steps }

// Run advances the simulation to the given absolute time.
//
//hot
func (s *Sim) Run(until sim.Time) {
	// Loop-invariant hoists: whether telemetry records and the trace
	// bucket width cannot change mid-run.
	telemetryOn := s.cfg.Telemetry.Enabled()
	traceBucket := s.cfg.TraceBucket
	for s.now < until {
		s.steps++
		s.wakeDueJobs()

		active := s.active
		dt := s.nextBoundary(until, active)
		if len(active) == 0 {
			s.now += dt
			continue
		}

		rates := s.allocate(active)
		if telemetryOn {
			for _, j := range active {
				if j.Agg != nil {
					ratio := j.BytesRatio()
					s.cfg.Telemetry.AggEval(s.now, j.flow, ratio, j.Agg.Eval(ratio))
				}
			}
		}
		// Constrain dt so no job overshoots its completion. The common
		// case — the job's finish time is far beyond dt — is screened
		// without the divide or the math.Round: with c9 ≈ remaining ticks
		// × rate (c·8 is exact, so c9 carries one rounding), the screen
		// c9 >= (fdt+4)·rate guarantees the true finish f >= fdt+3.9 even
		// after every intermediate rounding (relative error ~2e-16, and
		// fdt < 2^40 keeps the absolute slop far under the +4 margin), so
		// Round(f) >= f-0.5 > dt and the constraint cannot bind. The
		// c9 <= 8e24 && rate >= 1e6 guards bound f <= ~8e18 < MaxInt64,
		// keeping any value that could overflow the int64 conversion on
		// the exact path, which is the original sim.FromSeconds call.
		// NaN or negative inputs fail the screen and take the exact
		// path too.
		fdt, fastOK := float64(dt), dt < 1<<40 //lint:allow simunits screen compares in exact tick space
		for i, j := range active {
			if rates[i] <= 0 {
				continue
			}
			r := float64(rates[i])
			c9 := j.commRemaining * 8e9
			if fastOK && c9 >= (fdt+4)*r && c9 <= 8e24 && r >= 1e6 {
				continue
			}
			finish := sim.FromSeconds(j.commRemaining * 8 / r)
			if finish < 1 {
				finish = 1 // guard against zero-length loops
			}
			if finish < dt {
				dt = finish
				fdt, fastOK = float64(dt), dt < 1<<40 //lint:allow simunits screen compares in exact tick space
			}
		}

		// One step shares dt across jobs, so the interval length and the
		// trace bucket are evaluated once, not per job. Both hoists are
		// bit-identical to the per-job expressions they replace.
		dtSec := dt.Seconds()
		traceIdx := -1
		if traceBucket > 0 {
			traceIdx = int((s.now + dt/2) / traceBucket)
		}
		finished := false
		for i, j := range active {
			if rates[i] <= 0 {
				continue
			}
			// ×0.125 is exactly ÷8 for every float64 (the exact quotient
			// and product coincide, so they round identically) — the same
			// value as the original rate/8 expression without the divide.
			bytes := float64(rates[i]) * 0.125 * dtSec
			if bytes >= j.commRemaining-1e-6 {
				bytes = j.commRemaining
			}
			j.commRemaining -= bytes
			j.attained += bytes
			if traceIdx >= 0 {
				s.addTrace(j, traceIdx, bytes)
			}
			if j.commRemaining <= 1e-6 {
				s.finishComm(j, s.now+dt)
				finished = true
			}
		}
		if finished {
			s.compactActive()
		}
		s.now += dt
	}
	s.now = until
}

// allocate fills the per-step rate vector, preferring the policy's
// in-place fast path and falling back to the allocating interface.
//
//hot
func (s *Sim) allocate(active []*Job) []units.Rate {
	if cap(s.rates) < len(active) {
		s.rates = make([]units.Rate, len(active))
	}
	rates := s.rates[:len(active)]
	switch {
	case s.ws:
		// Direct (devirtualized) call: WeightedShare is stateless and its
		// in-place path produces the same values MaxMin's single-link
		// Allocate delegates to, so both policies share this branch.
		WeightedShare{}.AllocateInto(s.cfg.Capacity, active, rates, &s.scratch)
	case s.netfill != nil:
		s.netfill.AllocateNetworkInto(s.cfg.Network, active, rates, &s.scratch)
	case s.netpol != nil:
		return s.netpol.AllocateNetwork(s.cfg.Network, active)
	case s.fill != nil:
		s.fill.AllocateInto(s.cfg.Capacity, active, rates, &s.scratch)
	default:
		return s.cfg.Policy.Allocate(s.cfg.Capacity, active)
	}
	return rates
}

// wakeDueJobs moves jobs whose wake time has arrived into the active set.
// The cached minWake makes the common case (no wake due) one comparison;
// a due wake rescans all jobs, which preserves the original index-ordered
// wake (and telemetry) sequence exactly.
//
//hot
func (s *Sim) wakeDueJobs() {
	if s.minWake > s.now {
		return
	}
	min := sim.MaxTime
	for _, j := range s.jobs {
		if j.phase == phaseIdle || j.phase == phaseCompute {
			if j.wakeAt > s.now {
				if j.wakeAt < min {
					min = j.wakeAt
				}
				continue
			}
			j.phase = phaseComm
			j.commRemaining = j.TotalBytes()
			j.attained = 0
			j.CommStarts = append(j.CommStarts, s.now)
			s.insertActive(j)
			s.cfg.Telemetry.IterStart(s.now, j.flow, len(j.CommStarts)-1)
			if n := len(j.CommStarts); n >= 2 {
				j.IterDurations = append(j.IterDurations, j.CommStarts[n-1]-j.CommStarts[n-2])
			}
		}
	}
	s.minWake = min
}

// insertActive places j into the active list keeping ascending flow-id
// order — the same order the old per-step scan over s.jobs produced.
func (s *Sim) insertActive(j *Job) {
	s.active = append(s.active, nil)
	i := len(s.active) - 1
	for i > 0 && s.active[i-1].flow > j.flow {
		s.active[i] = s.active[i-1]
		i--
	}
	s.active[i] = j
}

// compactActive drops jobs that left the communicating phase during the
// integration loop, preserving order.
//
//hot
func (s *Sim) compactActive() {
	k := 0
	for _, j := range s.active {
		if j.phase == phaseComm {
			s.active[k] = j
			k++
		}
	}
	for i := k; i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = s.active[:k]
}

// nextBoundary returns the interval to the next wake-up or the step limit.
//
//hot
func (s *Sim) nextBoundary(until sim.Time, active []*Job) sim.Time {
	dt := until - s.now
	if len(active) > 0 && s.cfg.Step < dt {
		dt = s.cfg.Step
	}
	if s.minWake != sim.MaxTime {
		if w := s.minWake - s.now; w < dt {
			dt = w
		}
	}
	if dt < 1 {
		dt = 1
	}
	return dt
}

func (s *Sim) finishComm(j *Job, at sim.Time) {
	j.CommEnds = append(j.CommEnds, at)
	s.cfg.Telemetry.IterEnd(at, j.flow, len(j.CommEnds)-1, at-j.currentCommStart())
	if j.MaxIterations > 0 && len(j.CommEnds) >= j.MaxIterations {
		j.phase = phaseDone
		return
	}
	compute := j.Spec.Profile.ComputeTime
	if j.Spec.NoiseStd > 0 {
		compute = j.rng.NormDuration(compute, j.Spec.NoiseStd, 0)
	}
	j.phase = phaseCompute
	j.wakeAt = at + compute
	if j.wakeAt < s.minWake {
		s.minWake = j.wakeAt
	}
}

func (s *Sim) addTrace(j *Job, idx int, bytes float64) {
	tr := s.trace[j.flow-1]
	if len(tr) <= idx {
		for len(tr) <= idx {
			tr = append(tr, 0)
		}
		s.trace[j.flow-1] = tr // write the header (and its barrier) only on growth
	}
	tr[idx] += bytes
}

// traceOf returns the recorded bucket series for j, or nil for a job the
// simulation does not own.
func (s *Sim) traceOf(j *Job) []float64 {
	if j.flow < 1 || j.flow > len(s.trace) {
		return nil
	}
	return s.trace[j.flow-1]
}

// TraceBytes returns the job's recorded per-bucket delivered bytes (empty
// without TraceBucket).
func (s *Sim) TraceBytes(j *Job) []float64 { return s.traceOf(j) }

// EmitTrace replays every job's bandwidth buckets as KindBandwidth events
// (one per non-empty bucket, timestamped at the bucket's end). Call after
// Run; telemetry.Write's stable sort interleaves them deterministically.
func (s *Sim) EmitTrace(rec *telemetry.Recorder) {
	if !rec.Enabled() || s.cfg.TraceBucket <= 0 {
		return
	}
	for _, j := range s.jobs {
		for i, b := range s.traceOf(j) {
			if b == 0 {
				continue
			}
			rec.Bandwidth(sim.Time(i+1)*s.cfg.TraceBucket, j.flow, s.cfg.TraceBucket, b)
		}
	}
}

// Trace returns the job's recorded bandwidth series in bits per second per
// bucket (empty without TraceBucket).
func (s *Sim) Trace(j *Job) []units.Rate {
	bytes := s.traceOf(j)
	out := make([]units.Rate, len(bytes))
	for i, b := range bytes {
		out[i] = units.Rate(b * 8 / s.cfg.TraceBucket.Seconds())
	}
	return out
}
