package fluid

import (
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

const cap50G = 50 * units.Gbps

func gpt2Job(name string, offset sim.Time, agg *core.AggFunc) *Job {
	return &Job{
		Spec: workload.Spec{Name: name, Profile: workload.GPT2, StartOffset: offset},
		Agg:  agg,
	}
}

func defaultAgg() *core.AggFunc {
	f := core.Default()
	return &f
}

func runSim(t *testing.T, policy Policy, until sim.Time, jobs ...*Job) *Sim {
	t.Helper()
	s := New(Config{Capacity: cap50G, Policy: policy}, jobs)
	s.Run(until)
	return s
}

func nearTime(a, b, tol sim.Time) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestIsolatedJobHitsIdealIterationTime(t *testing.T) {
	j := gpt2Job("J1", 0, nil)
	runSim(t, WeightedShare{}, 10*sim.Second, j)
	ideal := workload.GPT2.IdealIterTime(cap50G) // 1.8s
	if len(j.IterDurations) < 4 {
		t.Fatalf("only %d iterations in 10s", len(j.IterDurations))
	}
	for i, d := range j.IterDurations {
		if !nearTime(d, ideal, 2*sim.Millisecond) {
			t.Errorf("iteration %d = %v, want %v", i, d, ideal)
		}
	}
	// Comm phase should last 0.2s at full rate.
	if got := j.CommEnds[0] - j.CommStarts[0]; !nearTime(got, 200*sim.Millisecond, 2*sim.Millisecond) {
		t.Errorf("comm duration = %v, want 200ms", got)
	}
}

func TestTwoFairShareJobsCongest(t *testing.T) {
	// Two identical GPT-2 jobs starting together under fair sharing:
	// comm runs at C/2 so takes 0.4s; iteration = 0.4 + 1.6 = 2.0s.
	j1 := gpt2Job("J1", 0, nil)
	j2 := gpt2Job("J2", 0, nil)
	runSim(t, WeightedShare{}, 30*sim.Second, j1, j2)
	want := 2000 * sim.Millisecond
	for _, j := range []*Job{j1, j2} {
		if got := j.AvgIterTime(1); !nearTime(got, want, 20*sim.Millisecond) {
			t.Errorf("%s avg iteration = %v, want ~%v", j.Spec.Label(), got, want)
		}
	}
}

func TestMLTCPTwoJobsConvergeToInterleaving(t *testing.T) {
	// Figure 6's scenario: two GPT-2 jobs, slightly offset, MLTCP
	// weighting. They must slide apart until communication phases no
	// longer overlap, restoring the ideal 1.8s iteration time.
	j1 := gpt2Job("J1", 0, defaultAgg())
	j2 := gpt2Job("J2", 20*sim.Millisecond, defaultAgg())
	runSim(t, WeightedShare{}, 80*sim.Second, j1, j2)

	ideal := workload.GPT2.IdealIterTime(cap50G)
	for _, j := range []*Job{j1, j2} {
		n := len(j.IterDurations)
		if n < 30 {
			t.Fatalf("%s: only %d iterations", j.Spec.Label(), n)
		}
		// Steady state: average of the last 10 iterations within 5%
		// of ideal (the paper's approximation error bound for the
		// 4-job case; 2 jobs converge at least as tightly).
		var sum sim.Time
		for _, d := range j.IterDurations[n-10:] {
			sum += d
		}
		avg := sum / 10
		if !nearTime(avg, ideal, ideal/20) {
			t.Errorf("%s steady-state iteration = %v, want within 5%% of %v", j.Spec.Label(), avg, ideal)
		}
	}
	// And the comm phases must actually be disjoint at the end.
	last := len(j1.CommStarts) - 1
	s1, e1 := j1.CommStarts[last], j1.CommEnds[last-1]
	_ = e1
	s2 := j2.CommStarts[len(j2.CommStarts)-1]
	delta := (s2 - s1) % workload.GPT2.IdealIterTime(cap50G)
	if delta < 0 {
		delta += workload.GPT2.IdealIterTime(cap50G)
	}
	commDur := cap50G.TransmissionTime(int64(workload.GPT2.CommBytes))
	if delta < commDur-50*sim.Millisecond && delta > 50*sim.Millisecond {
		// delta within (0, commDur) means overlap remains possible;
		// allow a slop band since starts drift by a few ms.
		t.Logf("final start-time delta = %v (comm %v)", delta, commDur)
	}
}

func TestFairShareDoesNotConverge(t *testing.T) {
	// Control for the previous test: plain fair sharing keeps the two
	// jobs congested (iteration ~2.1s, never back to 1.8s).
	j1 := gpt2Job("J1", 0, nil)
	j2 := gpt2Job("J2", 20*sim.Millisecond, nil)
	runSim(t, WeightedShare{}, 80*sim.Second, j1, j2)
	n := len(j1.IterDurations)
	var sum sim.Time
	for _, d := range j1.IterDurations[n-10:] {
		sum += d
	}
	avg := sum / 10
	if avg < 1950*sim.Millisecond {
		t.Errorf("fair-share steady iteration = %v; should stay congested (~2.0s)", avg)
	}
}

func TestSRPTSerializesBySize(t *testing.T) {
	// A small job and a big job contending: SRPT must give the link
	// entirely to the smaller-remaining job first.
	small := &Job{Spec: workload.Spec{Name: "small", Profile: workload.GPT2}}
	big := &Job{Spec: workload.Spec{Name: "big", Profile: workload.GPT3}}
	runSim(t, SRPT{}, 2*sim.Second, small, big)
	// Small: 1.25GB at 50Gbps = 0.2s; big waits, then 0.4s more.
	if got := small.CommEnds[0]; !nearTime(got, 200*sim.Millisecond, 5*sim.Millisecond) {
		t.Errorf("small comm end = %v, want 0.2s", got)
	}
	if got := big.CommEnds[0]; !nearTime(got, 600*sim.Millisecond, 5*sim.Millisecond) {
		t.Errorf("big comm end = %v, want 0.6s (after small)", got)
	}
}

func TestSRPTIdenticalJobsSerialize(t *testing.T) {
	// Equal jobs must serialize (tie broken), not split the link.
	j1 := gpt2Job("J1", 0, nil)
	j2 := gpt2Job("J2", 0, nil)
	runSim(t, SRPT{}, 2*sim.Second, j1, j2)
	e1, e2 := j1.CommEnds[0], j2.CommEnds[0]
	first, second := e1, e2
	if second < first {
		first, second = second, first
	}
	if !nearTime(first, 200*sim.Millisecond, 5*sim.Millisecond) {
		t.Errorf("first finisher at %v, want 0.2s (monopoly)", first)
	}
	if !nearTime(second, 400*sim.Millisecond, 5*sim.Millisecond) {
		t.Errorf("second finisher at %v, want 0.4s (serialized)", second)
	}
}

func TestLASEqualizesAttained(t *testing.T) {
	// One job starts 100ms late; LAS gives it the whole link until it
	// catches up, then both share.
	j1 := gpt2Job("J1", 0, nil)
	j2 := gpt2Job("J2", 100*sim.Millisecond, nil)
	s := New(Config{Capacity: cap50G, Policy: LAS{}, Step: 100 * sim.Microsecond}, []*Job{j1, j2})
	s.Run(150 * sim.Millisecond)
	// At t=150ms: j1 had 100ms alone, then j2 monopolizes.
	if j1.Attained() <= j2.Attained() {
		t.Skip("unexpected ordering") // defensive; should not happen
	}
	a1at150 := j1.Attained()
	s.Run(250 * sim.Millisecond)
	// j2 should have caught up to ~j1's level and both progress.
	if j2.Attained() < a1at150*0.8 {
		t.Errorf("LAS did not prioritize the laggard: j1=%.0f j2=%.0f", j1.Attained(), j2.Attained())
	}
}

func TestPIASBandsDemote(t *testing.T) {
	p := PIAS{Thresholds: []int64{int64(500 * units.MB), int64(1500 * units.MB)}}
	j1 := gpt2Job("J1", 0, nil)
	j2 := gpt2Job("J2", 0, nil)
	j1.attained = float64(600 * units.MB) // band 1
	j2.attained = 0                       // band 0
	j1.phase, j2.phase = phaseComm, phaseComm
	j1.commRemaining, j2.commRemaining = 1e9, 1e9
	rates := p.Allocate(cap50G, []*Job{j1, j2})
	if rates[0] != 0 || rates[1] != cap50G {
		t.Errorf("rates = %v, want all capacity to band-0 job", rates)
	}
}

func TestWeightedShareProportionality(t *testing.T) {
	agg := defaultAgg()
	j1 := gpt2Job("J1", 0, agg)
	j2 := gpt2Job("J2", 0, agg)
	j1.phase, j2.phase = phaseComm, phaseComm
	j1.commRemaining, j2.commRemaining = 1e9, 1e9
	j1.attained = float64(workload.GPT2.CommBytes) // ratio 1 -> F=2
	j2.attained = 0                                // ratio 0 -> F=0.25
	rates := (WeightedShare{}).Allocate(cap50G, []*Job{j1, j2})
	wantShare := 2.0 / 2.25
	if got := float64(rates[0]) / float64(cap50G); !nearF(got, wantShare) {
		t.Errorf("j1 share = %v, want %v", got, wantShare)
	}
	if sum := float64(rates[0] + rates[1]); !nearF(sum, float64(cap50G)) {
		t.Errorf("allocation sum = %v, want capacity", sum)
	}
}

func nearF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6*b+1e-9
}

func TestTraceAccountsAllBytes(t *testing.T) {
	j := gpt2Job("J1", 0, nil)
	s := New(Config{Capacity: cap50G, Policy: WeightedShare{}, TraceBucket: 50 * sim.Millisecond}, []*Job{j})
	s.Run(1800 * sim.Millisecond) // exactly one iteration
	tr := s.Trace(j)
	var bytes float64
	for _, r := range tr {
		bytes += float64(r) / 8 * (50 * sim.Millisecond).Seconds()
	}
	want := float64(workload.GPT2.CommBytes)
	if d := bytes - want; d < -1e4 || d > 1e4 {
		t.Errorf("traced bytes = %.0f, want %.0f", bytes, want)
	}
}

func TestNoiseChangesIterationsDeterministically(t *testing.T) {
	mk := func(seed uint64) *Job {
		return &Job{Spec: workload.Spec{
			Name: "J", Profile: workload.GPT2, NoiseStd: 50 * sim.Millisecond, Seed: seed,
		}}
	}
	a1, a2, b := mk(1), mk(1), mk(2)
	runSim(t, WeightedShare{}, 30*sim.Second, a1)
	runSim(t, WeightedShare{}, 30*sim.Second, a2)
	runSim(t, WeightedShare{}, 30*sim.Second, b)
	if len(a1.IterDurations) != len(a2.IterDurations) {
		t.Fatal("same seed produced different iteration counts")
	}
	same := true
	for i := range a1.IterDurations {
		if a1.IterDurations[i] != a2.IterDurations[i] {
			same = false
		}
	}
	if !same {
		t.Error("same seed produced different durations")
	}
	diff := false
	for i := 0; i < len(b.IterDurations) && i < len(a1.IterDurations); i++ {
		if a1.IterDurations[i] != b.IterDurations[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical noise")
	}
	// Noise must actually vary the durations.
	varies := false
	for i := 1; i < len(a1.IterDurations); i++ {
		if a1.IterDurations[i] != a1.IterDurations[0] {
			varies = true
		}
	}
	if !varies {
		t.Error("NoiseStd had no effect")
	}
}

func TestMaxIterationsStopsJob(t *testing.T) {
	j := gpt2Job("J1", 0, nil)
	j.MaxIterations = 3
	runSim(t, WeightedShare{}, 60*sim.Second, j)
	if got := j.Iterations(); got != 3 {
		t.Errorf("iterations = %d, want 3", got)
	}
}

func TestConfigValidation(t *testing.T) {
	j := gpt2Job("J", 0, nil)
	for name, fn := range map[string]func(){
		"zero-capacity": func() { New(Config{Policy: WeightedShare{}}, []*Job{j}) },
		"nil-policy":    func() { New(Config{Capacity: 1}, []*Job{j}) },
		"no-jobs":       func() { New(Config{Capacity: 1, Policy: WeightedShare{}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
