package fluid

import (
	"fmt"

	"mltcp/internal/units"
)

// Network describes a multi-link fabric for the fluid simulator: one
// capacity per directed link. Jobs carry a Path of link indices; the
// MaxMin policy allocates rates so every flow is bottlenecked somewhere
// on its own path rather than on one global link.
type Network struct {
	// Capacities[l] is link l's rate.
	Capacities []units.Rate
	// Names[l] optionally labels link l for telemetry and reports (may be
	// nil; when set it must match Capacities in length).
	Names []string
}

// NewNetwork builds a Network from parallel capacity and name slices.
func NewNetwork(capacities []units.Rate, names []string) *Network {
	if len(capacities) == 0 {
		panic("fluid: network needs at least one link")
	}
	if names != nil && len(names) != len(capacities) {
		panic("fluid: network names must match capacities")
	}
	return &Network{Capacities: capacities, Names: names}
}

// NetworkPolicy allocates a multi-link network among the communicating
// jobs. Implementations must return one rate per active job such that on
// every link the allocated rates sum to at most its capacity.
type NetworkPolicy interface {
	Policy
	// AllocateNetwork returns the instantaneous rate for each active job,
	// respecting every link capacity along each job's Path.
	AllocateNetwork(nw *Network, active []*Job) []units.Rate
}

// MaxMin is the weighted max-min allocator: progressive filling
// (water-filling) where each flow's level rises in proportion to its
// Weight() until some link on its path saturates. On a single shared
// link this reduces bit-for-bit to WeightedShare — every flow's one
// bottleneck is that link and its rate is capacity·w/Σw computed by the
// same expression — which is what keeps the legacy dumbbell golden
// traces byte-identical under the new allocator.
type MaxMin struct{}

// Name implements Policy.
func (MaxMin) Name() string { return "maxmin" }

// Allocate implements Policy (the single-link degenerate case): every
// active job implicitly crosses the one bottleneck, so weighted max-min
// is exactly the weighted share.
func (MaxMin) Allocate(capacity units.Rate, active []*Job) []units.Rate {
	return WeightedShare{}.Allocate(capacity, active)
}

// AllocateNetwork implements NetworkPolicy by progressive filling; it is
// the allocating wrapper around AllocateNetworkInto.
func (p MaxMin) AllocateNetwork(nw *Network, active []*Job) []units.Rate {
	rates := make([]units.Rate, len(active))
	var sc AllocScratch
	p.AllocateNetworkInto(nw, active, rates, &sc)
	return rates
}

// AllocateNetworkInto implements NetworkFiller by progressive filling.
// Each round finds the link that saturates first — the minimum of
// headroom/Σweights over links still carrying unfrozen flows — freezes
// every unfrozen flow crossing it at its weighted share of the
// remaining headroom, and charges those rates to every link on the
// frozen flows' paths. Ties break toward the lowest link index, so the
// allocation is a pure function of (network, active jobs).
//
// The result satisfies the allocator invariants pinned by maxmin_test.go:
// per-link conservation, at least one saturated link on every flow's
// path, and rates proportional to weights among flows sharing a
// bottleneck. The scratch records each flow's freezing link in
// sc.Bottleneck.
//
//hot
func (MaxMin) AllocateNetworkInto(nw *Network, active []*Job, rates []units.Rate, sc *AllocScratch) {
	n := len(active)
	for i := range rates {
		rates[i] = 0
	}
	if n == 0 {
		return
	}
	nl := len(nw.Capacities)
	sc.links(nl)
	sc.flows(n)
	load, wsum, done := sc.Load, sc.WSum, sc.Done
	frozen, weights := sc.Frozen, sc.Weights

	// Clear the weight sums the previous call left behind (exactly the
	// previous candidate set, possibly beyond this call's nl when the
	// scratch served a larger fabric — the capacity view covers both),
	// then charge every active flow's weight along its path.
	wfull := sc.WSum[:cap(sc.WSum)]
	for _, l := range sc.cands {
		wfull[l] = 0
	}
	sc.cands = sc.cands[:0]
	for i, j := range active {
		if len(j.Path) == 0 {
			panicNoPath(j)
		}
		weights[i] = j.Weight()
	}
	for i, j := range active {
		for _, l := range j.Path {
			wsum[l] += weights[i]
		}
	}
	// Candidate links — those crossed by any active flow with positive
	// weight — in ascending index order, so the bottleneck tie-break
	// (lowest index first) is identical to a full scan: every skipped
	// link has wsum == 0 in this and every later round (weights are
	// non-negative and the unfrozen set only shrinks), so the full scan
	// would skip it too. Load and Done are cleared candidate-wise; the
	// rest of the fabric keeps stale values nothing below reads.
	for l := 0; l < nl; l++ {
		if wsum[l] > 0 {
			sc.cands = append(sc.cands, l)
			load[l] = 0
			done[l] = false
		}
	}
	cands := sc.cands

	for remaining, first := n, true; remaining > 0; {
		if first {
			first = false // round 1's weight sums were computed above
		} else {
			for _, l := range cands {
				wsum[l] = 0
			}
			for i, j := range active {
				if frozen[i] {
					continue
				}
				for _, l := range j.Path {
					wsum[l] += weights[i]
				}
			}
		}
		// The next bottleneck: least headroom per unit of unfrozen weight.
		bottleneck := -1
		var bottleneckFill float64
		for _, l := range cands {
			if done[l] || wsum[l] <= 0 {
				continue
			}
			fill := (float64(nw.Capacities[l]) - load[l]) / wsum[l]
			if fill < 0 {
				fill = 0 // float drift below zero headroom: freeze at 0
			}
			if bottleneck < 0 || fill < bottleneckFill {
				bottleneck, bottleneckFill = l, fill
			}
		}
		if bottleneck < 0 {
			// Only reachable if every remaining flow has zero weight on
			// every link (Σw = 0 everywhere): nothing left to fill.
			break
		}
		headroom := float64(nw.Capacities[bottleneck]) - load[bottleneck]
		if headroom < 0 {
			headroom = 0
		}
		for i, j := range active {
			if frozen[i] {
				continue
			}
			onBottleneck := false
			for _, l := range j.Path {
				if l == bottleneck {
					onBottleneck = true
					break
				}
			}
			if !onBottleneck {
				continue
			}
			// capacity·w/Σw ordering matches WeightedShare exactly when
			// the bottleneck is the flows' first (load 0, headroom = cap).
			r := headroom * weights[i] / wsum[bottleneck]
			rates[i] = units.Rate(r)
			frozen[i] = true
			sc.Bottleneck[i] = bottleneck
			remaining--
			for _, l := range j.Path {
				load[l] += r
			}
		}
		done[bottleneck] = true
	}
}

// panicNoPath keeps the panic formatting (whose fmt arguments box) out
// of the //hot allocator body.
func panicNoPath(j *Job) {
	panic(fmt.Sprintf("fluid: job %s has no path", j.Spec.Label()))
}
