package fluid

import (
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Property: the fluid simulator is work-conserving and never exceeds
// capacity — total bytes delivered over any horizon is at most
// capacity × horizon, and each completed comm phase delivered exactly its
// demand (iteration counts match CommStarts/CommEnds bookkeeping).
func TestFluidConservationProperty(t *testing.T) {
	prop := func(nJobs, offsetAmt uint8, policyPick uint8) bool {
		n := int(nJobs)%4 + 1
		policies := []Policy{WeightedShare{}, SRPT{}, LAS{}, PIAS{Thresholds: []int64{int64(500 * units.MB)}}}
		policy := policies[int(policyPick)%len(policies)]
		jobs := make([]*Job, n)
		for i := range jobs {
			jobs[i] = &Job{Spec: workload.Spec{
				Name:        "J",
				Profile:     workload.GPT2,
				StartOffset: sim.Time(i) * sim.Time(offsetAmt%50+1) * sim.Millisecond,
			}}
		}
		const horizon = 20 * sim.Second
		s := New(Config{Capacity: cap50G, Policy: policy, TraceBucket: 100 * sim.Millisecond}, jobs)
		s.Run(horizon)

		var delivered float64
		for _, j := range jobs {
			// Completed phases delivered exactly CommBytes each.
			delivered += float64(len(j.CommEnds)) * j.TotalBytes()
			// Partially complete phase: demand minus remaining.
			if j.Communicating() {
				delivered += j.TotalBytes() - j.commRemaining
			}
			// Bookkeeping invariants.
			if len(j.CommEnds) > len(j.CommStarts) {
				return false
			}
			if len(j.IterDurations) != max0(len(j.CommStarts)-1) {
				return false
			}
			for _, d := range j.IterDurations {
				if d <= 0 {
					return false
				}
			}
		}
		budget := float64(cap50G) / 8 * horizon.Seconds()
		return delivered <= budget*1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// Property: comm phases never run before their job's start offset, and
// each phase's end follows its start by at least the line-rate duration.
func TestFluidPhaseOrderingProperty(t *testing.T) {
	minComm := cap50G.TransmissionTime(int64(workload.GPT2.CommBytes))
	prop := func(offsetMS uint8) bool {
		off := sim.Time(offsetMS) * sim.Millisecond
		j := &Job{Spec: workload.Spec{Name: "J", Profile: workload.GPT2, StartOffset: off}}
		other := &Job{Spec: workload.Spec{Name: "K", Profile: workload.GPT2}}
		s := New(Config{Capacity: cap50G, Policy: WeightedShare{}}, []*Job{j, other})
		s.Run(15 * sim.Second)
		if len(j.CommStarts) == 0 || j.CommStarts[0] < off {
			return false
		}
		for i, end := range j.CommEnds {
			if end-j.CommStarts[i] < minComm-sim.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
