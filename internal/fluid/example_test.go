package fluid_test

import (
	"fmt"

	"mltcp/internal/core"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
	"mltcp/internal/units"
	"mltcp/internal/workload"
)

// Two GPT-2-like MLTCP jobs colliding on a 50 Gbps bottleneck slide into
// an interleaved schedule: their steady iteration time returns to the
// 1.8 s ideal.
func Example() {
	agg := core.Default()
	jobs := []*fluid.Job{
		{Spec: workload.Spec{Name: "J1", Profile: workload.GPT2}, Agg: &agg},
		{Spec: workload.Spec{Name: "J2", Profile: workload.GPT2, StartOffset: 10 * sim.Millisecond}, Agg: &agg},
	}
	s := fluid.New(fluid.Config{Capacity: 50 * units.Gbps, Policy: fluid.WeightedShare{}}, jobs)
	s.Run(90 * sim.Second)
	for _, j := range jobs {
		fmt.Printf("%s steady iteration: %.2fs\n", j.Spec.Name, j.AvgIterTime(30).Seconds())
	}
	// Output:
	// J1 steady iteration: 1.80s
	// J2 steady iteration: 1.80s
}

// SRPT (pFabric's schedule) on the four-job scenario: the three small jobs
// stay ideal while the GPT-3-like job is head-of-line blocked 1.5×.
func ExampleSRPT() {
	jobs := []*fluid.Job{
		{Spec: workload.Spec{Name: "J1", Profile: workload.GPT3}},
		{Spec: workload.Spec{Name: "J2", Profile: workload.GPT2}},
		{Spec: workload.Spec{Name: "J3", Profile: workload.GPT2}},
		{Spec: workload.Spec{Name: "J4", Profile: workload.GPT2}},
	}
	s := fluid.New(fluid.Config{Capacity: 50 * units.Gbps, Policy: fluid.SRPT{Label: "pfabric"}}, jobs)
	s.Run(90 * sim.Second)
	j1 := jobs[0]
	ideal := j1.Spec.Profile.IdealIterTime(50 * units.Gbps)
	fmt.Printf("J1 slowdown: %.2fx\n", j1.AvgIterTime(30).Seconds()/ideal.Seconds())
	// Output: J1 slowdown: 1.50x
}
