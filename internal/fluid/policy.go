package fluid

import (
	"mltcp/internal/units"
)

// Policy allocates the bottleneck capacity among the currently
// communicating jobs. Implementations must return one rate per active job,
// summing to at most the capacity.
type Policy interface {
	// Name labels the policy in traces and figure legends.
	Name() string
	// Allocate returns the instantaneous rate for each active job.
	Allocate(capacity units.Rate, active []*Job) []units.Rate
}

// WeightedShare divides capacity in proportion to each job's Weight():
// F(bytes_ratio) for MLTCP jobs, 1 for plain jobs. With all-nil Agg
// functions this is TCP's fair share; with MLTCP jobs it is the paper's
// unequal sharing that produces the Shift.
type WeightedShare struct{}

// Name implements Policy.
func (WeightedShare) Name() string { return "weighted-share" }

// Allocate implements Policy.
func (p WeightedShare) Allocate(capacity units.Rate, active []*Job) []units.Rate {
	rates := make([]units.Rate, len(active))
	var sc AllocScratch
	p.AllocateInto(capacity, active, rates, &sc)
	return rates
}

// AllocateInto implements Filler. Each job's weight is evaluated once and
// cached in the scratch — Weight() is a pure function of state that does
// not change within one allocation, so the cached value is bit-identical
// to re-evaluating it in the second loop.
//
//hot
func (WeightedShare) AllocateInto(capacity units.Rate, active []*Job, rates []units.Rate, sc *AllocScratch) {
	weights := sc.weights(len(active))
	var sum float64
	for i, j := range active {
		w := j.Weight()
		weights[i] = w
		sum += w
	}
	if sum <= 0 {
		for i := range rates {
			rates[i] = 0
		}
		return
	}
	for i := range active {
		rates[i] = units.Rate(float64(capacity) * weights[i] / sum)
	}
}

// SRPT gives the whole link to the job with the least remaining bytes
// (ties split equally) — the schedule pFabric's priority queues enforce
// and PDQ's rate control approximates (§2's "distributed approaches").
type SRPT struct {
	// Label overrides the policy name ("pfabric", "pdq") for figures.
	Label string
}

// Name implements Policy.
func (p SRPT) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "srpt"
}

// Allocate implements Policy. Exactly one job wins the link: among
// least-remaining jobs, the one whose communication phase started earliest
// (then lowest index). A fluid model must break ties strictly — in the real
// pFabric, the first packet served lowers that flow's remaining size below
// its peers', so equal flows serialize rather than share; an equal split
// would pin them to an unstable knife-edge forever.
func (SRPT) Allocate(capacity units.Rate, active []*Job) []units.Rate {
	rates := make([]units.Rate, len(active))
	if len(active) == 0 {
		return rates
	}
	win := 0
	for i, j := range active[1:] {
		if better(j, active[win]) {
			win = i + 1
		}
	}
	rates[win] = capacity
	return rates
}

func better(a, b *Job) bool {
	if a.Remaining() != b.Remaining() { //lint:allow simunits exact tie-break keeps the comparator a strict weak order; a tolerance would break sort transitivity
		return a.Remaining() < b.Remaining()
	}
	return a.currentCommStart() < b.currentCommStart()
}

// LAS gives the whole link to the job with the least attained service in
// its current iteration (ties split equally).
type LAS struct{}

// Name implements Policy.
func (LAS) Name() string { return "las" }

// Allocate implements Policy.
func (LAS) Allocate(capacity units.Rate, active []*Job) []units.Rate {
	rates := make([]units.Rate, len(active))
	if len(active) == 0 {
		return rates
	}
	best := active[0].Attained()
	for _, j := range active[1:] {
		if a := j.Attained(); a < best {
			best = a
		}
	}
	var winners []int
	for i, j := range active {
		if j.Attained() <= best+1 {
			winners = append(winners, i)
		}
	}
	for _, i := range winners {
		rates[i] = units.Rate(float64(capacity) / float64(len(winners)))
	}
	return rates
}

// PIAS approximates LAS with a few byte thresholds, as the real system does
// with MLFQ switch queues: a job's band is the number of thresholds its
// attained bytes have crossed; strict priority across bands, equal share
// within the winning band.
type PIAS struct {
	// Thresholds are the demotion boundaries in bytes, ascending.
	Thresholds []int64
}

// Name implements Policy.
func (PIAS) Name() string { return "pias" }

func (p PIAS) band(j *Job) int {
	b := 0
	for _, th := range p.Thresholds {
		if j.Attained() >= float64(th) {
			b++
		}
	}
	return b
}

// Allocate implements Policy.
func (p PIAS) Allocate(capacity units.Rate, active []*Job) []units.Rate {
	rates := make([]units.Rate, len(active))
	if len(active) == 0 {
		return rates
	}
	best := p.band(active[0])
	for _, j := range active[1:] {
		if b := p.band(j); b < best {
			best = b
		}
	}
	var winners []int
	for i, j := range active {
		if p.band(j) == best {
			winners = append(winners, i)
		}
	}
	for _, i := range winners {
		rates[i] = units.Rate(float64(capacity) / float64(len(winners)))
	}
	return rates
}
