package fluid

import (
	"testing"

	"mltcp/internal/analysis"
	"mltcp/internal/sim"
	"mltcp/internal/workload"
)

// The fluid simulator and Equation 3 are built on the same weighted-share
// abstraction, so the *emergent* per-iteration shift of two simulated jobs
// must track the closed-form Shift(Δ). This test sweeps initial start-time
// differences across the overlap window and compares the first iteration's
// measured shift against the formula.
func TestEmergentShiftMatchesEquationThree(t *testing.T) {
	// Identical jobs with a = 1/3 (GPT-3 profile: comm 0.4s of T=1.2s).
	profile := workload.GPT3
	period := profile.IdealIterTime(cap50G)
	aT := cap50G.TransmissionTime(int64(profile.CommBytes))
	p := analysis.DefaultParams(aT.Seconds()/period.Seconds(), period)

	for _, frac := range []float64{0.15, 0.3, 0.5, 0.7, 0.85} {
		delta0 := sim.FromSeconds(aT.Seconds() * frac)
		agg := defaultAgg()
		j1 := &Job{Spec: workload.Spec{Name: "J1", Profile: profile}, Agg: agg}
		j2 := &Job{Spec: workload.Spec{Name: "J2", Profile: profile, StartOffset: delta0}, Agg: agg}
		s := New(Config{Capacity: cap50G, Policy: WeightedShare{}, Step: 100 * sim.Microsecond},
			[]*Job{j1, j2})
		s.Run(3 * period)

		if len(j1.CommStarts) < 2 || len(j2.CommStarts) < 2 {
			t.Fatalf("frac %.2f: not enough iterations", frac)
		}
		delta1 := j2.CommStarts[1] - j1.CommStarts[1]
		measured := (delta1 - delta0).Seconds()
		predicted := p.Shift(delta0).Seconds()

		// Equation 3 is derived assuming the weights are evaluated
		// against each flow's total progress through the overlap; the
		// fluid integration reproduces it to within a modest
		// discretization/modelling tolerance.
		tol := 0.25*predicted + 0.01
		if diff := measured - predicted; diff > tol || diff < -tol {
			t.Errorf("Δ0=%.0f%% of aT: measured shift %.4fs, Eq.3 predicts %.4fs",
				frac*100, measured, predicted)
		}
		if measured <= 0 {
			t.Errorf("Δ0=%.0f%%: shift %.4fs not positive", frac*100, measured)
		}
	}
}

// Outside the overlap window (interleaved already) the emergent shift must
// be zero.
func TestEmergentShiftZeroWhenInterleaved(t *testing.T) {
	profile := workload.GPT3
	aT := cap50G.TransmissionTime(int64(profile.CommBytes))
	delta0 := aT + 200*sim.Millisecond // comfortably disjoint
	agg := defaultAgg()
	j1 := &Job{Spec: workload.Spec{Name: "J1", Profile: profile}, Agg: agg}
	j2 := &Job{Spec: workload.Spec{Name: "J2", Profile: profile, StartOffset: delta0}, Agg: agg}
	s := New(Config{Capacity: cap50G, Policy: WeightedShare{}}, []*Job{j1, j2})
	s.Run(5 * profile.IdealIterTime(cap50G))

	delta1 := j2.CommStarts[1] - j1.CommStarts[1]
	if shift := (delta1 - delta0).Seconds(); shift > 0.001 || shift < -0.001 {
		t.Errorf("interleaved jobs shifted by %.4fs, want 0", shift)
	}
}

// The fluid AND the formula agree on direction when the follower overlaps
// from behind (Δ near T): the gap shrinks.
func TestEmergentShiftNegativeNearPeriod(t *testing.T) {
	profile := workload.GPT3
	period := profile.IdealIterTime(cap50G)
	delta0 := period - 150*sim.Millisecond
	agg := defaultAgg()
	j1 := &Job{Spec: workload.Spec{Name: "J1", Profile: profile}, Agg: agg}
	j2 := &Job{Spec: workload.Spec{Name: "J2", Profile: profile, StartOffset: delta0}, Agg: agg}
	s := New(Config{Capacity: cap50G, Policy: WeightedShare{}, Step: 100 * sim.Microsecond}, []*Job{j1, j2})
	s.Run(4 * period)

	// Compare like-indexed iterations after both have started.
	d0 := j2.CommStarts[1] - j1.CommStarts[1]
	d1 := j2.CommStarts[2] - j1.CommStarts[2]
	if d1 >= d0 {
		t.Errorf("gap grew from %v to %v; overlap-from-behind should shrink it", d0, d1)
	}
}
