package fluid

import "mltcp/internal/units"

// AllocScratch is the reusable working set for in-place allocators. The
// Sim owns one and passes it to every AllocateInto/AllocateNetworkInto
// call, so steady-state allocation decisions touch only flat arrays and
// allocate nothing. The slices grow to the simulation's link and flow
// counts once and are then recycled.
type AllocScratch struct {
	// Per-link (length = number of network links):
	Load []float64 // frozen rate charged to each link
	WSum []float64 // unfrozen weight crossing each link
	Done []bool    // link already chosen as a bottleneck

	// Per-flow (length = number of active jobs):
	Frozen     []bool
	Weights    []float64
	Bottleneck []int // link that froze each flow (-1 while unfrozen / single-link)

	// cands are the candidate links of the last AllocateNetworkInto
	// call: the ascending indices every active path crosses. On a
	// cluster fabric this is a small fraction of the links, and the
	// allocator's per-round work is proportional to it rather than to
	// the fabric size. Between calls it also records exactly which WSum
	// entries may hold stale non-zero values.
	cands []int
}

// links (re)sizes the per-link slices without clearing them: the max-min
// allocator clears Load/Done only for its candidate links and tracks
// stale WSum entries through sc.cands, so a cluster-sized fabric is
// never swept whole.
func (sc *AllocScratch) links(n int) {
	if cap(sc.Load) < n {
		sc.Load = make([]float64, n)
		sc.WSum = make([]float64, n)
		sc.Done = make([]bool, n)
	}
	sc.Load = sc.Load[:n]
	sc.WSum = sc.WSum[:n]
	sc.Done = sc.Done[:n]
}

// weights (re)sizes just the Weights slice and returns it. The
// single-link fillers never read Frozen or Bottleneck, so they skip the
// per-flow clear that flows performs for the network allocator.
func (sc *AllocScratch) weights(n int) []float64 {
	if cap(sc.Weights) < n {
		sc.Weights = make([]float64, n)
	}
	sc.Weights = sc.Weights[:n]
	return sc.Weights
}

// flows (re)sizes and clears the per-flow slices.
func (sc *AllocScratch) flows(n int) {
	if cap(sc.Frozen) < n {
		sc.Frozen = make([]bool, n)
		sc.Weights = make([]float64, n)
		sc.Bottleneck = make([]int, n)
	}
	sc.Frozen = sc.Frozen[:n]
	sc.Weights = sc.Weights[:n]
	sc.Bottleneck = sc.Bottleneck[:n]
	for i := 0; i < n; i++ {
		sc.Frozen[i] = false
		sc.Bottleneck[i] = -1
	}
}

// Filler is the in-place fast path of Policy: fill rates (length =
// len(active)) instead of allocating a fresh slice. Implementations must
// write every element and must produce exactly the same values as their
// Allocate method — the Sim treats the two as interchangeable.
type Filler interface {
	AllocateInto(capacity units.Rate, active []*Job, rates []units.Rate, sc *AllocScratch)
}

// NetworkFiller is the in-place fast path of NetworkPolicy, under the
// same exact-equivalence contract as Filler.
type NetworkFiller interface {
	AllocateNetworkInto(nw *Network, active []*Job, rates []units.Rate, sc *AllocScratch)
}
