package collective

import (
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

func renoFactory(int64) tcp.CongestionControl { return tcp.NewReno() }

// collectiveNet builds a dumbbell whose left/right hosts serve as the
// paper's "GPU servers on opposite sides of the bottleneck".
func collectiveNet(eng *sim.Engine, pairs int) *netsim.Dumbbell {
	return netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       pairs,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		// A deeper buffer than the scheduling experiments use:
		// chunked collectives restart slow start every step, and a
		// 100-packet buffer turns each step's tail into an RTO stall.
		BottleneckQueue: func() netsim.Queue {
			return netsim.NewDropTail(512 * netsim.DefaultMTU)
		},
	})
}

// alternating returns a W-worker placement alternating across the
// bottleneck: L0, R0, L1, R1, ... so every ring link crosses it.
func alternating(net *netsim.Dumbbell, w int) []*netsim.Host {
	var hosts []*netsim.Host
	for i := 0; i < w; i++ {
		if i%2 == 0 {
			hosts = append(hosts, net.Left[i/2])
		} else {
			hosts = append(hosts, net.Right[i/2])
		}
	}
	return hosts
}

func TestRingAllReduceCompletes(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 2)
	const bytes = 4_000_000
	r := NewRing(eng, alternating(net, 4), 1, bytes, renoFactory, tcp.Config{})
	var doneAt sim.Time
	r.AllReduce(func(now sim.Time) { doneAt = now })
	eng.RunUntil(30 * sim.Second)
	if doneAt == 0 {
		t.Fatal("all-reduce never completed")
	}
	if r.Steps != 6 { // 2(W-1) with W=4
		t.Errorf("steps = %d, want 6", r.Steps)
	}
	if r.AllReduces != 1 {
		t.Errorf("allreduces = %d, want 1", r.AllReduces)
	}
	// Every flow moved exactly 2(W-1)/W * B bytes.
	want := r.PerFlowBytesPerIteration()
	if want != bytes/4*6 {
		t.Fatalf("per-flow bytes = %d, want %d", want, bytes/4*6)
	}
	for i, f := range r.Flows() {
		if got := f.Receiver.BytesReceived(); got != want {
			t.Errorf("flow %d delivered %d, want %d", i, got, want)
		}
	}
}

func TestRingStepBarrier(t *testing.T) {
	t.Parallel()
	// With one slow link (longer path), no flow may start step k+1
	// until every flow finished step k: total writes stay in lockstep.
	eng := sim.New()
	net := collectiveNet(eng, 1)
	r := NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]}, 1, 2_000_000, renoFactory, tcp.Config{})
	maxLead := int64(0)
	check := func(e *sim.Engine) {
		a := r.Flows()[0].Sender.TotalBytesAcked()
		b := r.Flows()[1].Sender.TotalBytesAcked()
		lead := a - b
		if lead < 0 {
			lead = -lead
		}
		if lead > maxLead {
			maxLead = lead
		}
	}
	for ts := sim.Millisecond; ts < 5*sim.Second; ts += 10 * sim.Millisecond {
		eng.At(ts, check)
	}
	done := false
	r.AllReduce(func(sim.Time) { done = true })
	eng.RunUntil(5 * sim.Second)
	if !done {
		t.Fatal("all-reduce incomplete")
	}
	// Lead can never exceed one chunk (the barrier).
	if chunk := int64(2_000_000 / 2); maxLead > chunk {
		t.Errorf("flows diverged by %d bytes; barrier allows at most %d", maxLead, chunk)
	}
}

func TestRingRepeatedAllReduces(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 1)
	r := NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]}, 1, 1_000_000, renoFactory, tcp.Config{})
	count := 0
	var loop func(now sim.Time)
	loop = func(now sim.Time) {
		count++
		if count < 5 {
			eng.After(10*sim.Millisecond, func(*sim.Engine) { r.AllReduce(loop) })
		}
	}
	r.AllReduce(loop)
	eng.RunUntil(30 * sim.Second)
	if count != 5 {
		t.Fatalf("completed %d all-reduces, want 5", count)
	}
	if r.AllReduces != 5 {
		t.Errorf("counter = %d", r.AllReduces)
	}
}

func TestRingDoubleStartPanics(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 1)
	r := NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]}, 1, 1_000_000, renoFactory, tcp.Config{})
	r.AllReduce(nil)
	defer func() {
		if recover() == nil {
			t.Error("no panic on concurrent AllReduce")
		}
	}()
	r.AllReduce(nil)
}

func TestRingValidation(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 1)
	for name, fn := range map[string]func(){
		"one-worker": func() {
			NewRing(eng, []*netsim.Host{net.Left[0]}, 1, 1000, renoFactory, tcp.Config{})
		},
		"tiny-bytes": func() {
			NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]}, 10, 1, renoFactory, tcp.Config{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Two 2-worker MLTCP jobs sharing the bottleneck — the paper's testbed
// arrangement ("each job uses 2 GPUs installed on the opposite sides of
// the bottleneck link") — interleave their all-reduce phases and reach the
// ideal iteration time.
func TestTwoRingJobsInterleave(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~12s")
	}
	eng := sim.New()
	// Standard shallow bottleneck buffer: MLTCP differentiates through
	// loss events, which a very deep buffer would suppress.
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       2,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	const (
		bytes   = 12_500_000 // scaled GPT-2 gradients
		compute = 1600 * sim.Millisecond
	)
	factory := func(total int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewReno(), core.Default(), core.NewTracker(total, 400*sim.Millisecond))
	}
	mkJob := func(pair int, baseFlow netsim.FlowID) *Job {
		// Persistent NCCL connections with the standard datacenter
		// tuning tcp_slow_start_after_idle=0: each comm phase resumes
		// at the previous window, so congestion-avoidance (where
		// MLTCP differentiates) dominates the phase.
		ring := NewRing(eng, []*netsim.Host{net.Left[pair], net.Right[pair]}, baseFlow,
			bytes, factory, tcp.Config{DisableSlowStartAfterIdle: true})
		ring.Pipelined(true) // NCCL-style streaming, no global step barrier
		return &Job{Ring: ring, Compute: compute}
	}
	j1 := mkJob(0, 1)
	j2 := mkJob(1, 100)
	j1.Start(eng, 0, 1)
	j2.Start(eng, 10*sim.Millisecond, 2)
	// Bidirectional coupling (each job must align its forward AND
	// reverse flows against the other's) converges in ~60 iterations,
	// slower than the single-direction case's ~15.
	eng.RunUntil(220 * sim.Second)

	// For W=2 each flow streams 2(W−1)/W·B = B bytes per iteration;
	// forward/reverse halves run in parallel, so comm ≈ 0.2s and an
	// isolated job iterates in ~1.81s. Contended-but-interleaved jobs
	// must land at the same figure.
	for _, j := range []*Job{j1, j2} {
		n := len(j.IterDurations)
		if n < 60 {
			t.Fatalf("only %d iterations", n)
		}
		var sum sim.Time
		for _, d := range j.IterDurations[n-10:] {
			sum += d
		}
		avg := (sum / 10).Seconds()
		if avg > 1.85 {
			t.Errorf("steady iteration %.3fs, want ~1.81s (interleaved)", avg)
		}
	}
}

func TestSelectorClasses(t *testing.T) {
	t.Parallel()
	s := DefaultSelector(400 * sim.Millisecond)
	if got := len(s.Classes()); got != 3 {
		t.Fatalf("classes = %v", s.Classes())
	}
	if cc := s.New(ClassTraining, 1000); cc.Name() != "mltcp-reno" {
		t.Errorf("training cc = %s", cc.Name())
	}
	if cc := s.New(ClassLatency, 1000); cc.Name() != "mltcp-reno" {
		t.Errorf("latency cc = %s", cc.Name())
	}
	if cc := s.New(ClassBulk, 0); cc.Name() != "reno" {
		t.Errorf("bulk cc = %s", cc.Name())
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown class did not panic")
		}
	}()
	s.New(Class("bogus"), 1)
}

// §5's latency-class recommendation: a flow with a large constant
// aggressiveness acquires most of the bandwidth against other traffic. A
// trace of random loss de-synchronizes the two flows' loss epochs — two
// deterministic drop-tail flows otherwise phase-lock into arbitrary
// winners regardless of their increase factors.
func TestLatencyClassAcquiresBandwidth(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 2)
	net.Forward.LossProb = 0.001
	net.Forward.RNG = sim.NewRNG(5)
	sel := DefaultSelector(400 * sim.Millisecond)
	lat := tcp.NewFlow(eng, 1, net.Left[0], net.Right[0], sel.New(ClassLatency, 1<<40), tcp.Config{})
	bulk := tcp.NewFlow(eng, 2, net.Left[1], net.Right[1], sel.New(ClassBulk, 0), tcp.Config{})
	lat.Sender.Write(1 << 40)
	bulk.Sender.Write(1 << 40)
	eng.RunUntil(30 * sim.Second)
	l := float64(lat.Sender.TotalBytesAcked())
	b := float64(bulk.Sender.TotalBytesAcked())
	if l < b*1.3 {
		t.Errorf("latency class got %.0f vs bulk %.0f; want clearly more", l, b)
	}
	if b < (l+b)*0.05 {
		t.Errorf("bulk starved: %.1f%% of total", b/(l+b)*100)
	}
}

func TestSelectorValidation(t *testing.T) {
	t.Parallel()
	s := NewSelector()
	defer func() {
		if recover() == nil {
			t.Error("nil factory did not panic")
		}
	}()
	s.Register(ClassBulk, nil)
}
