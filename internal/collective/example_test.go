package collective_test

import (
	"fmt"

	"mltcp/internal/collective"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

// One ring all-reduce over a dumbbell: two workers on opposite sides of
// the bottleneck exchange 4 MB of gradients (2(W−1)/W·B = 4 MB per link
// for W = 2).
func ExampleNewRing() {
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       1,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	sel := collective.DefaultSelector(400 * sim.Millisecond)
	ring := collective.NewRing(eng, []*netsim.Host{net.Left[0], net.Right[0]},
		1, 4_000_000, sel.Factory(collective.ClassTraining), tcp.Config{})
	var done sim.Time
	ring.AllReduce(func(now sim.Time) { done = now })
	eng.RunUntil(10 * sim.Second)
	fmt.Printf("all-reduce of 4MB complete: %v, per-link bytes %d\n",
		done > 0, ring.PerFlowBytesPerIteration())
	// Output: all-reduce of 4MB complete: true, per-link bytes 4000000
}

// The traffic-class selector mirrors the paper's modified NCCL FAST socket
// plugin: each class gets its own congestion control / aggressiveness.
func ExampleSelector() {
	sel := collective.DefaultSelector(400 * sim.Millisecond)
	for _, c := range sel.Classes() {
		fmt.Printf("%s -> %s\n", c, sel.New(c, 1_000_000).Name())
	}
	// Output:
	// bulk -> reno
	// latency -> mltcp-reno
	// training -> mltcp-reno
}
