package collective

import (
	"testing"

	"mltcp/internal/core"
	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
	"mltcp/internal/units"
)

func TestPSExchangeCompletes(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 3) // workers on left 0,1; server right 2
	const bytes = 2_000_000
	ps := NewParameterServer(eng,
		[]*netsim.Host{net.Left[0], net.Left[1]}, net.Right[2],
		1, bytes, renoFactory, tcp.Config{})
	ps.ApplyTime = 5 * sim.Millisecond
	var doneAt sim.Time
	ps.Exchange(func(now sim.Time) { doneAt = now })
	eng.RunUntil(10 * sim.Second)
	if doneAt == 0 {
		t.Fatal("exchange never completed")
	}
	if ps.Iterations != 1 {
		t.Errorf("iterations = %d", ps.Iterations)
	}
	// Every push and pull flow moved exactly bytes.
	for i := range ps.PushFlows() {
		if got := ps.PushFlows()[i].Receiver.BytesReceived(); got != bytes {
			t.Errorf("push %d delivered %d", i, got)
		}
		if got := ps.PullFlows()[i].Receiver.BytesReceived(); got != bytes {
			t.Errorf("pull %d delivered %d", i, got)
		}
	}
}

func TestPSPullWaitsForAllPushes(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 3)
	ps := NewParameterServer(eng,
		[]*netsim.Host{net.Left[0], net.Left[1]}, net.Right[2],
		1, 1_000_000, renoFactory, tcp.Config{})
	pullStarted := sim.Time(-1)
	pushDone := sim.Time(-1)
	// Watch the first pull flow's first emission via an uplink tap on
	// the server host.
	net.Right[2].Uplink().AddTap(func(now sim.Time, p *netsim.Packet) {
		if !p.Ack && pullStarted < 0 {
			pullStarted = now
		}
	})
	done := false
	ps.Exchange(func(now sim.Time) { done = true })
	// Record when the pushes finish by polling.
	for ts := sim.Millisecond; ts < 5*sim.Second; ts += sim.Millisecond {
		eng.At(ts, func(e *sim.Engine) {
			if pushDone < 0 &&
				ps.PushFlows()[0].Receiver.BytesReceived() == 1_000_000 &&
				ps.PushFlows()[1].Receiver.BytesReceived() == 1_000_000 {
				pushDone = e.Now()
			}
		})
	}
	eng.RunUntil(10 * sim.Second)
	if !done {
		t.Fatal("exchange incomplete")
	}
	if pullStarted < pushDone-sim.Millisecond {
		t.Errorf("pull data started at %v before pushes completed at %v", pullStarted, pushDone)
	}
}

func TestPSValidation(t *testing.T) {
	t.Parallel()
	eng := sim.New()
	net := collectiveNet(eng, 1)
	for name, fn := range map[string]func(){
		"no-workers": func() {
			NewParameterServer(eng, nil, net.Right[0], 1, 100, renoFactory, tcp.Config{})
		},
		"zero-bytes": func() {
			NewParameterServer(eng, []*netsim.Host{net.Left[0]}, net.Right[0], 1, 0, renoFactory, tcp.Config{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	ps := NewParameterServer(eng, []*netsim.Host{net.Left[0]}, net.Right[0], 1, 100, renoFactory, tcp.Config{})
	ps.Exchange(nil)
	defer func() {
		if recover() == nil {
			t.Error("double Exchange did not panic")
		}
	}()
	ps.Exchange(nil)
}

// Two 2-worker parameter-server MLTCP jobs sharing the bottleneck
// interleave — §3.1's parallelization-strategy independence with the other
// classic pattern (push incast + pull fan-out).
func TestTwoPSJobsInterleave(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("packet-level run takes ~10s")
	}
	eng := sim.New()
	net := netsim.NewDumbbell(eng, netsim.DumbbellConfig{
		HostPairs:       4,
		HostRate:        5 * units.Gbps,
		BottleneckRate:  500 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
	})
	const (
		perWorker = 6_250_000 // 2 workers -> 12.5MB per direction
		compute   = 1400 * sim.Millisecond
	)
	factory := func(total int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewReno(), core.Default(), core.NewTracker(total, 400*sim.Millisecond))
	}
	mk := func(w0, w1, srv int, base netsim.FlowID) *PSJob {
		ps := NewParameterServer(eng,
			[]*netsim.Host{net.Left[w0], net.Left[w1]}, net.Right[srv],
			base, perWorker, factory, tcp.Config{DisableSlowStartAfterIdle: true})
		return &PSJob{PS: ps, Compute: compute}
	}
	j1 := mk(0, 1, 0, 1)
	j2 := mk(2, 3, 1, 100)
	j1.Start(eng, 0, 1)
	j2.Start(eng, 10*sim.Millisecond, 2)
	eng.RunUntil(250 * sim.Second)

	// Ideal: push 12.5MB through the forward bottleneck (0.2s), then
	// pull 12.5MB back (0.2s), plus compute 1.4s ≈ 1.8s; measured
	// isolated ≈ 1.83s with transport overheads. Interleaved jobs must
	// match that, not the ~2.2s of persistent overlap.
	for i, j := range []*PSJob{j1, j2} {
		n := len(j.IterDurations)
		if n < 60 {
			t.Fatalf("job %d: %d iterations", i, n)
		}
		var sum sim.Time
		for _, d := range j.IterDurations[n-10:] {
			sum += d
		}
		avg := (sum / 10).Seconds()
		if avg > 1.92 {
			t.Errorf("PS job %d steady %.3fs, want interleaved (~1.83s)", i, avg)
		}
	}
}
