package collective

import (
	"fmt"
	"sort"

	"mltcp/internal/core"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// Class labels a traffic category, as the paper's modified NCCL FAST
// socket plugin distinguishes them: DNN training flows, latency-sensitive
// legacy traffic, bulk background traffic.
type Class string

// Conventional classes.
const (
	ClassTraining Class = "training"
	ClassLatency  Class = "latency"
	ClassBulk     Class = "bulk"
)

// Selector maps traffic classes to congestion-control factories, so each
// class can run a different algorithm or aggressiveness function (§5: "This
// allows for choosing different aggressiveness functions for different
// classes of traffic").
type Selector struct {
	factories map[Class]CCFactory
}

// NewSelector returns an empty selector.
func NewSelector() *Selector {
	return &Selector{factories: make(map[Class]CCFactory)}
}

// Register installs the factory for a class, replacing any previous one.
func (s *Selector) Register(c Class, f CCFactory) {
	if f == nil {
		panic("collective: nil factory")
	}
	s.factories[c] = f
}

// New builds a congestion control for the class. Unknown classes panic:
// misclassified traffic silently falling back to a default is exactly the
// failure mode the plugin exists to prevent.
func (s *Selector) New(c Class, flowTotalBytes int64) tcp.CongestionControl {
	f, ok := s.factories[c]
	if !ok {
		panic(fmt.Sprintf("collective: no congestion control registered for class %q (have %v)", c, s.Classes()))
	}
	return f(flowTotalBytes)
}

// Factory returns the class's factory for passing into NewRing.
func (s *Selector) Factory(c Class) CCFactory {
	f, ok := s.factories[c]
	if !ok {
		panic(fmt.Sprintf("collective: no congestion control registered for class %q", c))
	}
	return f
}

// Classes returns the registered classes, sorted.
func (s *Selector) Classes() []Class {
	out := make([]Class, 0, len(s.factories))
	for c := range s.factories {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DefaultSelector returns the paper's recommended configuration: training
// flows run MLTCP-Reno with the default F; latency-sensitive traffic runs
// MLTCP with "a bandwidth aggressiveness function with larger values" (§5)
// so it acquires most of the bandwidth; bulk legacy traffic runs plain
// Reno. compTime is the iteration-gap threshold for the training trackers.
func DefaultSelector(compTime sim.Time) *Selector {
	s := NewSelector()
	s.Register(ClassTraining, func(total int64) tcp.CongestionControl {
		return core.Wrap(tcp.NewReno(), core.Default(), core.NewTracker(total, compTime))
	})
	s.Register(ClassLatency, func(total int64) tcp.CongestionControl {
		// Constant high aggressiveness: F ≈ 4 regardless of progress.
		if total <= 0 {
			total = 1
		}
		return core.Wrap(tcp.NewReno(), core.Linear(0, 4), core.NewTracker(total, compTime))
	})
	s.Register(ClassBulk, func(int64) tcp.CongestionControl {
		return tcp.NewReno()
	})
	return s
}
