// Package collective implements the communication layer a distributed DNN
// job actually runs: ring all-reduce over per-link TCP flows, as NCCL's
// TCP (FAST socket) transport does on the paper's testbed. A W-worker ring
// all-reduce of B bytes performs 2(W−1) chunk steps of B/W bytes per link
// with a barrier between steps, so each flow moves 2(W−1)/W·B bytes per
// training iteration — the per-flow TOTAL_BYTES that MLTCP's tracker needs.
//
// The package also provides the traffic-class selector of §5: the paper
// modifies NCCL's FAST socket plugin "to support selecting a desired
// congestion control algorithm", so different classes (training,
// latency-sensitive, bulk legacy) can use different aggressiveness
// functions.
package collective

import (
	"fmt"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// CCFactory builds a fresh congestion-control instance for one flow, given
// the flow's per-iteration byte volume (MLTCP trackers are per-flow state).
type CCFactory func(flowTotalBytes int64) tcp.CongestionControl

// Ring is a W-worker ring all-reduce group. Worker i's gradients flow to
// worker (i+1) mod W over a persistent TCP flow; an AllReduce runs 2(W−1)
// barrier-separated chunk steps.
type Ring struct {
	eng   *sim.Engine
	flows []*tcp.Flow
	w     int

	stepChunk   int64
	stepsLeft   int
	pendingAcks int
	pipelined   bool
	onComplete  func(now sim.Time)

	// Steps counts completed chunk steps; AllReduces completed
	// collectives (observability for tests and traces).
	Steps      int
	AllReduces int
}

// Pipelined switches AllReduce from strict per-step barriers to NCCL-style
// pipelining: each link streams its whole per-iteration volume
// continuously, and the collective completes when every link drains. Real
// ring implementations pipeline many small chunks with only neighbor
// dependencies, which a continuous stream models far better than a global
// barrier every step; the barrier mode remains for studying stricter
// synchronization.
func (r *Ring) Pipelined(on bool) { r.pipelined = on }

// NewRing wires a ring over the given worker hosts: flows[i] carries
// worker i -> worker i+1 (mod W). bytesPerIter is the job's full gradient
// volume B; each flow's CC is built by factory with the flow's own
// per-iteration volume 2(W−1)/W·B. Flow IDs are allocated from baseFlow.
func NewRing(eng *sim.Engine, workers []*netsim.Host, baseFlow netsim.FlowID,
	bytesPerIter int64, factory CCFactory, cfg tcp.Config) *Ring {
	w := len(workers)
	if w < 2 {
		panic("collective: ring needs at least 2 workers")
	}
	if bytesPerIter < int64(w) {
		panic(fmt.Sprintf("collective: %d bytes cannot be chunked across %d workers", bytesPerIter, w))
	}
	r := &Ring{eng: eng, w: w, stepChunk: bytesPerIter / int64(w)}
	perFlowTotal := r.stepChunk * int64(2*(w-1))
	for i := 0; i < w; i++ {
		src := workers[i]
		dst := workers[(i+1)%w]
		cc := factory(perFlowTotal)
		f := tcp.NewFlow(eng, baseFlow+netsim.FlowID(i), src, dst, cc, cfg)
		i := i
		f.Sender.Drained(func(now sim.Time) { r.flowDrained(i, now) })
		r.flows = append(r.flows, f)
	}
	return r
}

// Workers returns the ring size.
func (r *Ring) Workers() int { return r.w }

// Flows exposes the ring's flows (for attaching monitors).
func (r *Ring) Flows() []*tcp.Flow { return r.flows }

// PerFlowBytesPerIteration returns each link's volume per all-reduce,
// 2(W−1)/W·B — the TOTAL_BYTES an MLTCP tracker on these flows should use.
func (r *Ring) PerFlowBytesPerIteration() int64 {
	return r.stepChunk * int64(2*(r.w-1))
}

// AllReduce starts one collective; done fires when the last step's last
// chunk is acknowledged. A collective must not be started while another is
// in flight.
func (r *Ring) AllReduce(done func(now sim.Time)) {
	if r.stepsLeft != 0 || r.pendingAcks != 0 {
		panic("collective: AllReduce while another is in flight")
	}
	r.onComplete = done
	if r.pipelined {
		r.stepsLeft = 1
		r.pendingAcks = r.w
		for _, f := range r.flows {
			f.Sender.Write(r.PerFlowBytesPerIteration())
		}
		return
	}
	r.stepsLeft = 2 * (r.w - 1)
	r.startStep()
}

func (r *Ring) startStep() {
	r.pendingAcks = r.w
	for _, f := range r.flows {
		f.Sender.Write(r.stepChunk)
	}
}

func (r *Ring) flowDrained(_ int, now sim.Time) {
	r.pendingAcks--
	if r.pendingAcks > 0 {
		return
	}
	// Barrier reached: step complete.
	r.Steps++
	r.stepsLeft--
	if r.stepsLeft > 0 {
		r.startStep()
		return
	}
	r.AllReduces++
	if r.onComplete != nil {
		r.onComplete(now)
	}
}

// Job drives a training loop over a ring: all-reduce, compute, repeat.
type Job struct {
	Ring    *Ring
	Compute sim.Time
	// NoiseStd adds zero-mean Gaussian noise to each compute phase.
	NoiseStd sim.Time
	// MaxIterations stops the loop (0 = run until the horizon).
	MaxIterations int

	rng *sim.RNG

	// IterStarts and IterDurations record the training loop;
	// IterDurations[i] spans consecutive all-reduce starts.
	IterStarts    []sim.Time
	IterDurations []sim.Time
}

// Start launches the job's first iteration at the given offset.
func (j *Job) Start(eng *sim.Engine, offset sim.Time, seed uint64) {
	j.rng = sim.NewRNG(seed)
	eng.At(offset, func(e *sim.Engine) { j.iterate(e) })
}

func (j *Job) iterate(eng *sim.Engine) {
	now := eng.Now()
	if n := len(j.IterStarts); n > 0 {
		j.IterDurations = append(j.IterDurations, now-j.IterStarts[n-1])
	}
	j.IterStarts = append(j.IterStarts, now)
	if j.MaxIterations > 0 && len(j.IterStarts) > j.MaxIterations {
		return
	}
	j.Ring.AllReduce(func(done sim.Time) {
		compute := j.Compute
		if j.NoiseStd > 0 {
			compute = j.rng.NormDuration(compute, j.NoiseStd, 0)
		}
		eng.After(compute, func(e *sim.Engine) { j.iterate(e) })
	})
}

// AvgIterTime averages iteration durations after skipping the first skip.
func (j *Job) AvgIterTime(skip int) sim.Time {
	if skip >= len(j.IterDurations) {
		return 0
	}
	var sum sim.Time
	for _, d := range j.IterDurations[skip:] {
		sum += d
	}
	return sum / sim.Time(len(j.IterDurations)-skip)
}
