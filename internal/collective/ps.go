package collective

import (
	"fmt"

	"mltcp/internal/netsim"
	"mltcp/internal/sim"
	"mltcp/internal/tcp"
)

// ParameterServer is the other classic DNN communication pattern (§3.1's
// "regardless of ... parallelization strategy"): every worker pushes its
// gradients to a central server (an incast onto the server's side of the
// network), the server applies the update, and the workers pull the fresh
// parameters back. One training iteration is push-all → pull-all.
type ParameterServer struct {
	eng   *sim.Engine
	push  []*tcp.Flow // worker -> server
	pull  []*tcp.Flow // server -> worker
	bytes int64       // per-worker volume per direction per iteration

	// ApplyTime models the server-side update between push and pull.
	ApplyTime sim.Time

	phase      int // 0 idle, 1 pushing, 2 pulling
	pending    int
	onComplete func(now sim.Time)

	// Iterations counts completed push+pull rounds.
	Iterations int
}

// NewParameterServer wires W workers to one server host. Each worker
// pushes bytesPerWorker per iteration and pulls the same volume back.
// Flow IDs are allocated from baseFlow (2W of them).
func NewParameterServer(eng *sim.Engine, workers []*netsim.Host, server *netsim.Host,
	baseFlow netsim.FlowID, bytesPerWorker int64, factory CCFactory, cfg tcp.Config) *ParameterServer {
	if len(workers) < 1 {
		panic("collective: parameter server needs at least one worker")
	}
	if bytesPerWorker <= 0 {
		panic(fmt.Sprintf("collective: bytes per worker must be positive, got %d", bytesPerWorker))
	}
	ps := &ParameterServer{eng: eng, bytes: bytesPerWorker}
	for i, w := range workers {
		pushCC := factory(bytesPerWorker)
		pullCC := factory(bytesPerWorker)
		pushF := tcp.NewFlow(eng, baseFlow+netsim.FlowID(2*i), w, server, pushCC, cfg)
		pullF := tcp.NewFlow(eng, baseFlow+netsim.FlowID(2*i+1), server, w, pullCC, cfg)
		pushF.Sender.Drained(func(now sim.Time) { ps.flowDrained(now) })
		pullF.Sender.Drained(func(now sim.Time) { ps.flowDrained(now) })
		ps.push = append(ps.push, pushF)
		ps.pull = append(ps.pull, pullF)
	}
	return ps
}

// Workers returns the worker count.
func (ps *ParameterServer) Workers() int { return len(ps.push) }

// PushFlows and PullFlows expose the flows for monitors.
func (ps *ParameterServer) PushFlows() []*tcp.Flow { return ps.push }
func (ps *ParameterServer) PullFlows() []*tcp.Flow { return ps.pull }

// Exchange runs one iteration's communication: all pushes, the server
// apply gap, then all pulls; done fires when the last pull drains.
func (ps *ParameterServer) Exchange(done func(now sim.Time)) {
	if ps.phase != 0 {
		panic("collective: Exchange while one is in flight")
	}
	ps.onComplete = done
	ps.phase = 1
	ps.pending = len(ps.push)
	for _, f := range ps.push {
		f.Sender.Write(ps.bytes)
	}
}

func (ps *ParameterServer) flowDrained(now sim.Time) {
	ps.pending--
	if ps.pending > 0 {
		return
	}
	switch ps.phase {
	case 1:
		// Push complete: apply, then pull.
		ps.phase = 2
		ps.pending = len(ps.pull)
		ps.eng.After(ps.ApplyTime, func(*sim.Engine) {
			for _, f := range ps.pull {
				f.Sender.Write(ps.bytes)
			}
		})
	case 2:
		ps.phase = 0
		ps.Iterations++
		if ps.onComplete != nil {
			ps.onComplete(now)
		}
	}
}

// PSJob drives a training loop over a parameter server.
type PSJob struct {
	PS       *ParameterServer
	Compute  sim.Time
	NoiseStd sim.Time

	rng *sim.RNG

	IterStarts    []sim.Time
	IterDurations []sim.Time
}

// Start launches the loop at the given offset.
func (j *PSJob) Start(eng *sim.Engine, offset sim.Time, seed uint64) {
	j.rng = sim.NewRNG(seed)
	eng.At(offset, func(e *sim.Engine) { j.iterate(e) })
}

func (j *PSJob) iterate(eng *sim.Engine) {
	now := eng.Now()
	if n := len(j.IterStarts); n > 0 {
		j.IterDurations = append(j.IterDurations, now-j.IterStarts[n-1])
	}
	j.IterStarts = append(j.IterStarts, now)
	j.PS.Exchange(func(done sim.Time) {
		compute := j.Compute
		if j.NoiseStd > 0 {
			compute = j.rng.NormDuration(compute, j.NoiseStd, 0)
		}
		eng.After(compute, func(e *sim.Engine) { j.iterate(e) })
	})
}

// AvgIterTime averages iteration durations after skipping the first skip.
func (j *PSJob) AvgIterTime(skip int) sim.Time {
	if skip >= len(j.IterDurations) {
		return 0
	}
	var sum sim.Time
	for _, d := range j.IterDurations[skip:] {
		sum += d
	}
	return sum / sim.Time(len(j.IterDurations)-skip)
}
