// Package harness runs experiment grids across a worker pool while
// preserving bit-for-bit determinism. Every sweep in internal/experiments
// is a pure function of (scenario parameters, seed), so grid points can run
// on any goroutine in any order as long as two invariants hold:
//
//  1. Each point draws randomness only from its own stream, derived from
//     (base seed, point index) via SplitMix64 (sim.DeriveSeed) — never from
//     shared or scheduling-order-dependent state.
//  2. Results land in a pre-sized slice indexed by point, so output order
//     is the grid order, independent of completion order.
//
// Under those rules Run(workers=1) and Run(workers=N) produce identical
// result slices, which the determinism tests in internal/experiments
// assert. The pool also survives misbehaving scenarios: a panic inside a
// point is captured and reported as that point's failure rather than
// crashing the sweep, a context cancellation stops dispatching new points,
// and an optional per-point timeout abandons stuck points.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mltcp/internal/obs"
	"mltcp/internal/sim"
)

// Config controls how a grid is executed. The zero value is valid: one
// worker per CPU, base seed 0, no timeout.
type Config struct {
	// Workers is the number of concurrent scenario goroutines. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed is the sweep-level seed. Point i receives the derived seed
	// sim.DeriveSeed(BaseSeed, i); scenarios that need randomness must use
	// it (or ignore it and seed explicitly) so results stay reproducible.
	BaseSeed uint64
	// PointTimeout bounds each point's wall-clock run time; zero disables.
	// A timed-out point is recorded as failed with context.DeadlineExceeded
	// and its goroutine is abandoned (the scenario context is cancelled, so
	// cooperative scenarios unwind promptly).
	PointTimeout time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Point identifies one grid point handed to a scenario function.
type Point struct {
	// Index is the point's position in the grid, 0 ≤ Index < n.
	Index int
	// Seed is the point's derived stream seed, sim.DeriveSeed(base, Index).
	Seed uint64
}

// RNG returns a fresh deterministic generator for the point's stream. Each
// call returns an identical, independent generator.
func (p Point) RNG() *sim.RNG { return sim.NewRNG(p.Seed) }

// Result is one grid point's outcome.
type Result[T any] struct {
	// Index is the point's grid position (Results are already ordered by
	// it; the field survives filtering).
	Index int
	// Value is the scenario's return value when Err is nil.
	Value T
	// Err is the scenario error, the recovered panic (wrapped, with
	// Panicked set), context.DeadlineExceeded on point timeout, or the
	// context's error for points never started after cancellation.
	Err error
	// Panicked reports that Err was recovered from a panic.
	Panicked bool
	// Elapsed is the point's wall-clock run time (zero for skipped
	// points). Diagnostic only: it is excluded from determinism contracts.
	Elapsed time.Duration
}

// Scenario computes one grid point. It must derive any randomness it needs
// from pt.Seed (or use explicit fixed seeds) and must not mutate state
// shared with other points. ctx carries the sweep cancellation and, when
// Config.PointTimeout is set, the point deadline.
type Scenario[T any] func(ctx context.Context, pt Point) (T, error)

// Run executes n grid points over the worker pool and returns exactly n
// results ordered by point index. It never fails as a whole: per-point
// errors, panics, and timeouts are recorded in the corresponding Result,
// and points not yet started when ctx is cancelled are recorded with
// ctx's error.
func Run[T any](ctx context.Context, cfg Config, n int, fn Scenario[T]) []Result[T] {
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
	}
	if n == 0 {
		return results
	}
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	sweep := obs.FromContext(ctx).StartSweep(n, workers)

	// Feed indices through a channel: workers pull the next point as they
	// free up, so an expensive point does not stall the rest of the grid.
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				// Record the never-started remainder. Points already
				// handed out keep running to completion.
				for j := i; j < n; j++ {
					results[j].Err = ctx.Err()
				}
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Writes are disjoint: worker goroutines only ever touch
				// results[i] for indices they pulled from the channel.
				results[i] = runPoint(ctx, cfg, i, fn)
				sweep.RecordPoint(i, results[i].Elapsed)
			}
		}()
	}
	wg.Wait()
	sweep.Finish()
	return results
}

// runPoint executes one point with panic capture and the optional timeout.
func runPoint[T any](ctx context.Context, cfg Config, i int, fn Scenario[T]) Result[T] {
	res := Result[T]{Index: i}
	pt := Point{Index: i, Seed: sim.DeriveSeed(cfg.BaseSeed, uint64(i))}

	pctx := ctx
	if cfg.PointTimeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, cfg.PointTimeout)
		defer cancel()
	}

	sw := obs.StartTimer()
	done := make(chan Result[T], 1)
	go func() {
		r := Result[T]{Index: i}
		defer func() {
			if p := recover(); p != nil {
				r.Err = fmt.Errorf("harness: point %d panicked: %v", i, p)
				r.Panicked = true
			}
			done <- r
		}()
		r.Value, r.Err = fn(pctx, pt)
	}()

	if cfg.PointTimeout > 0 {
		select {
		case res = <-done:
		case <-pctx.Done():
			// The point overran (or the sweep was cancelled mid-point).
			// Abandon its goroutine — pctx is cancelled, so a cooperative
			// scenario unwinds — and report the cause.
			res.Err = pctx.Err()
		}
	} else {
		res = <-done
	}
	res.Index = i
	res.Elapsed = sw.Elapsed()
	return res
}

// Values unwraps a result slice into its ordered values, returning the
// first per-point error encountered (with its index) if any point failed.
func Values[T any](rs []Result[T]) ([]T, error) {
	out := make([]T, len(rs))
	for i, r := range rs {
		if r.Err != nil {
			return nil, fmt.Errorf("harness: point %d: %w", r.Index, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}

// Map is the common path for infallible grids: Run + Values, panicking on
// any point failure. Experiment sweeps use it to keep the pre-harness
// contract in which a broken scenario panicked the caller.
func Map[T any](ctx context.Context, cfg Config, n int, fn func(pt Point) T) []T {
	rs := Run(ctx, cfg, n, func(_ context.Context, pt Point) (T, error) {
		return fn(pt), nil
	})
	vs, err := Values(rs)
	if err != nil {
		panic(err)
	}
	return vs
}
