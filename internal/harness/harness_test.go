package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mltcp/internal/sim"
)

// The core contract: the same grid run serially and with many workers
// yields identical result slices, including per-point seeded randomness.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	run := func(workers int) []float64 {
		return Map(context.Background(), Config{Workers: workers, BaseSeed: 42}, 64,
			func(pt Point) float64 {
				rng := pt.RNG()
				sum := 0.0
				for k := 0; k < 100; k++ {
					sum += rng.Float64()
				}
				return sum + float64(pt.Index)
			})
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8, 16} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d differs from workers=1", w)
		}
	}
}

func TestResultsOrderedByIndex(t *testing.T) {
	t.Parallel()
	// Reverse-skewed sleep: later points finish first under parallelism.
	rs := Run(context.Background(), Config{Workers: 8}, 16,
		func(_ context.Context, pt Point) (int, error) {
			time.Sleep(time.Duration(16-pt.Index) * time.Millisecond)
			return pt.Index * 10, nil
		})
	for i, r := range rs {
		if r.Index != i || r.Value != i*10 {
			t.Fatalf("slot %d holds index %d value %d", i, r.Index, r.Value)
		}
		if r.Elapsed <= 0 {
			t.Errorf("point %d: no elapsed time recorded", i)
		}
	}
}

func TestPanicCapturedAsPointFailure(t *testing.T) {
	t.Parallel()
	rs := Run(context.Background(), Config{Workers: 4}, 8,
		func(_ context.Context, pt Point) (string, error) {
			if pt.Index == 3 {
				panic("scenario exploded")
			}
			return "ok", nil
		})
	for i, r := range rs {
		if i == 3 {
			if !r.Panicked || r.Err == nil {
				t.Fatalf("point 3: Panicked=%v Err=%v", r.Panicked, r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != "ok" {
			t.Errorf("point %d failed: %v", i, r.Err)
		}
	}
	if _, err := Values(rs); err == nil {
		t.Error("Values did not surface the panic error")
	}
}

func TestMapPanicsOnFailure(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("Map did not re-panic on point failure")
		}
	}()
	Map(context.Background(), Config{Workers: 2}, 4, func(pt Point) int {
		if pt.Index == 1 {
			panic("boom")
		}
		return 0
	})
}

func TestCancellationStopsDispatch(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	rs := Run(ctx, Config{Workers: 2}, 100,
		func(ctx context.Context, pt Point) (int, error) {
			if started.Add(1) == 2 {
				cancel()
			}
			<-ctx.Done() // cooperative: unwind on cancellation
			return 0, ctx.Err()
		})
	if len(rs) != 100 {
		t.Fatalf("got %d results", len(rs))
	}
	cancelled := 0
	for _, r := range rs {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled != 100 {
		t.Errorf("%d/100 points report cancellation", cancelled)
	}
	if n := started.Load(); n >= 100 {
		t.Errorf("all %d points started despite cancellation", n)
	}
}

func TestPointTimeout(t *testing.T) {
	t.Parallel()
	rs := Run(context.Background(), Config{Workers: 4, PointTimeout: 20 * time.Millisecond}, 6,
		func(ctx context.Context, pt Point) (int, error) {
			if pt.Index == 2 {
				<-ctx.Done() // hang until the deadline fires
				return 0, ctx.Err()
			}
			return pt.Index, nil
		})
	for i, r := range rs {
		if i == 2 {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("point 2: err %v, want deadline exceeded", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Errorf("point %d: value %d err %v", i, r.Value, r.Err)
		}
	}
}

func TestScenarioErrorsPropagate(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("bad point")
	rs := Run(context.Background(), Config{}, 3,
		func(_ context.Context, pt Point) (int, error) {
			if pt.Index == 1 {
				return 0, sentinel
			}
			return pt.Index, nil
		})
	if !errors.Is(rs[1].Err, sentinel) {
		t.Errorf("point 1 err = %v", rs[1].Err)
	}
	if _, err := Values(rs); !errors.Is(err, sentinel) {
		t.Errorf("Values err = %v", err)
	}
}

func TestSeedDerivationMatchesSim(t *testing.T) {
	t.Parallel()
	rs := Run(context.Background(), Config{Workers: 3, BaseSeed: 7}, 5,
		func(_ context.Context, pt Point) (uint64, error) {
			return pt.Seed, nil
		})
	for i, r := range rs {
		if want := sim.DeriveSeed(7, uint64(i)); r.Value != want {
			t.Errorf("point %d seed %#x, want %#x", i, r.Value, want)
		}
	}
	// Distinct base seeds and distinct indices give distinct streams.
	seen := map[uint64]string{}
	for base := uint64(0); base < 8; base++ {
		for i := uint64(0); i < 8; i++ {
			s := sim.DeriveSeed(base, i)
			key := fmt.Sprintf("base=%d i=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %#x", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestZeroPoints(t *testing.T) {
	t.Parallel()
	rs := Run(context.Background(), Config{Workers: 4}, 0,
		func(_ context.Context, pt Point) (int, error) { return 0, nil })
	if len(rs) != 0 {
		t.Fatalf("got %d results for empty grid", len(rs))
	}
}

func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	t.Parallel()
	if w := (Config{}).workers(); w < 1 {
		t.Fatalf("default workers %d", w)
	}
	if w := (Config{Workers: -3}).workers(); w < 1 {
		t.Fatalf("negative workers resolved to %d", w)
	}
}
