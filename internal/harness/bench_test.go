package harness

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"mltcp/internal/sim"
)

// simPoint is a CPU-bound stand-in for one fluid-simulation grid point:
// a seeded random walk heavy enough (~1e6 RNG draws) that scheduling
// overhead is negligible, like the real sweeps the harness hosts.
func simPoint(pt Point) float64 {
	rng := pt.RNG()
	acc := 0.0
	for k := 0; k < 1_000_000; k++ {
		acc += rng.Float64() - 0.5
	}
	return acc
}

// BenchmarkSweepWorkers runs a 32-point grid at increasing worker counts.
// On a multi-core machine ns/op drops roughly linearly with workers until
// the core count is reached — the speedup that motivates the harness.
func BenchmarkSweepWorkers(b *testing.B) {
	const points = 32
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	var serial []float64
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var out []float64
			for i := 0; i < b.N; i++ {
				out = Map(context.Background(), Config{Workers: w, BaseSeed: 1}, points, simPoint)
			}
			if serial == nil {
				serial = out
			}
			for k := range out {
				if out[k] != serial[k] {
					b.Fatalf("workers=%d point %d diverged from serial", w, k)
				}
			}
		})
	}
}

// BenchmarkRunOverhead measures the pool's fixed cost per point with a
// trivial scenario, bounding what the harness adds to cheap grids.
func BenchmarkRunOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Map(context.Background(), Config{Workers: 4}, 64, func(pt Point) uint64 {
			return sim.DeriveSeed(pt.Seed, 0)
		})
	}
}
