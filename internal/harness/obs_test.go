package harness

import (
	"context"
	"testing"
	"time"

	"mltcp/internal/obs"
)

// TestSweepSelfMetricsRecorded checks that a harness run under an obs
// collector reports the sweep's shape, per-point wall times, and a sane
// utilization — and that Elapsed and the recorded point walls come from
// the same clock (they are the same measurement).
func TestSweepSelfMetricsRecorded(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.WithCollector(context.Background(), col)
	const n = 6
	results := Run(ctx, Config{Workers: 3}, n, func(ctx context.Context, pt Point) (int, error) {
		time.Sleep(time.Millisecond)
		return pt.Index, nil
	})

	sweeps := col.Sweeps()
	if len(sweeps) != 1 {
		t.Fatalf("collector recorded %d sweeps, want 1", len(sweeps))
	}
	s := sweeps[0]
	if s.Points != n || s.Workers != 3 {
		t.Fatalf("sweep shape %+v", s)
	}
	if s.Wall <= 0 {
		t.Fatalf("sweep wall %v", s.Wall)
	}
	if len(s.PointWall) != n {
		t.Fatalf("recorded %d point walls, want %d", len(s.PointWall), n)
	}
	for i, r := range results {
		if r.Elapsed <= 0 {
			t.Fatalf("point %d Elapsed = %v", i, r.Elapsed)
		}
		if s.PointWall[i] != r.Elapsed {
			t.Fatalf("point %d: sweep recorded %v, result reports %v — not the same measurement",
				i, s.PointWall[i], r.Elapsed)
		}
	}
	if u := s.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization %v outside sanity band", u)
	}
}

// TestSweepWorkersClampRecorded pins that the recorded worker count is
// the pool size actually used (clamped to n), not the configured one —
// utilization would otherwise be understated on small grids.
func TestSweepWorkersClampRecorded(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.WithCollector(context.Background(), col)
	Run(ctx, Config{Workers: 64}, 2, func(ctx context.Context, pt Point) (int, error) {
		return 0, nil
	})
	sweeps := col.Sweeps()
	if len(sweeps) != 1 {
		t.Fatalf("collector recorded %d sweeps, want 1", len(sweeps))
	}
	if got := sweeps[0].Workers; got != 2 {
		t.Fatalf("recorded %d workers for a 2-point grid, want 2", got)
	}
}

// TestRunWithoutCollectorStillTimes checks the no-collector path still
// fills Result.Elapsed (the span is nil, the stopwatch is not).
func TestRunWithoutCollectorStillTimes(t *testing.T) {
	results := Run(context.Background(), Config{Workers: 1}, 1,
		func(ctx context.Context, pt Point) (int, error) {
			time.Sleep(time.Millisecond)
			return 0, nil
		})
	if results[0].Elapsed <= 0 {
		t.Fatalf("Elapsed = %v without a collector", results[0].Elapsed)
	}
}
