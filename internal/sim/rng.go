package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** by Blackman & Vigna). Simulations use explicit RNG values
// seeded per experiment instead of global math/rand state so that results
// are reproducible and independent across components.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed nonzero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 stream to initialize the state.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with mean 0 and standard
// deviation 1, via the Box–Muller transform.
func (r *RNG) Norm() float64 {
	// Avoid u1 == 0 so Log stays finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormDuration returns a normally distributed Time with the given mean and
// standard deviation, clamped below at min so that (for example) compute
// phases never go negative.
func (r *RNG) NormDuration(mean, stddev, min Time) Time {
	v := Time(math.Round(float64(mean) + r.Norm()*float64(stddev)))
	if v < min {
		return min
	}
	return v
}

// Fork returns a new RNG whose stream is independent of r's future output,
// derived from r's current state. Useful for giving each simulated
// component its own stream from one experiment seed.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// DeriveSeed maps (base, index) to an independent stream seed: the value of
// the SplitMix64 sequence started at base, at position index+1. Parallel
// sweeps use it so that grid point i draws from its own well-mixed stream
// regardless of which worker goroutine runs it or in what order — the
// contract that makes a concurrent sweep bit-for-bit reproducible.
func DeriveSeed(base, index uint64) uint64 {
	z := base + (index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNGAt returns the generator for grid point index of a sweep whose
// base seed is base; shorthand for NewRNG(DeriveSeed(base, index)).
func NewRNGAt(base, index uint64) *RNG { return NewRNG(DeriveSeed(base, index)) }
