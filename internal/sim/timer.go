package sim

// Timer is a restartable one-shot timer bound to an Engine, modeled after
// the retransmission timers a transport protocol needs: it can be armed,
// re-armed (which supersedes the previous deadline), and stopped. The zero
// value is unusable; create timers with NewTimer.
type Timer struct {
	e      *Engine
	fn     Handler
	id     EventID
	armed  bool
	expiry Time
}

// NewTimer returns a stopped timer that will invoke fn when it expires.
func NewTimer(e *Engine, fn Handler) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil handler")
	}
	return &Timer{e: e, fn: fn}
}

// Reset arms the timer to fire d from now, replacing any pending expiry.
// The timer schedules itself as an EventHandler, so re-arming (the common
// RTO/pacing pattern) allocates nothing.
//
//hot
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.expiry = t.e.Now() + d
	t.id = t.e.AfterHandler(d, t)
	t.armed = true
}

// HandleEvent fires the timer. It implements EventHandler; simulation
// code never calls it directly.
func (t *Timer) HandleEvent(e *Engine) {
	t.armed = false
	t.fn(e)
}

// Stop disarms the timer. Stopping a stopped timer is a no-op.
func (t *Timer) Stop() {
	if t.armed {
		t.e.Cancel(t.id)
		t.armed = false
	}
}

// Armed reports whether the timer is pending.
func (t *Timer) Armed() bool { return t.armed }

// Expiry returns the absolute time the timer will fire. Only meaningful
// while Armed.
func (t *Timer) Expiry() Time { return t.expiry }
