package sim

import "testing"

// Micro-benchmarks for the timer-wheel engine's hot operations. Run with
//
//	go test -bench=Engine -benchmem ./internal/sim
//
// Steady-state schedule/cancel/reschedule must report 0 allocs/op: the
// free list absorbs all event traffic once warmed.

// BenchmarkEngineScheduleDrain measures the schedule-then-fire cycle at
// several batch sizes: events land in nearby level-0/1 slots and drain in
// order, the dominant pattern on the packet path.
func BenchmarkEngineScheduleDrain(b *testing.B) {
	e := New()
	fn := Handler(func(*Engine) {})
	for i := 0; i < b.N; i++ {
		for k := Time(0); k < 64; k++ {
			e.After(k*17, fn)
		}
		e.Run()
	}
}

// BenchmarkEngineCancel measures schedule+cancel churn — the RTO-timer
// pattern where almost every scheduled event is canceled before firing.
func BenchmarkEngineCancel(b *testing.B) {
	e := New()
	fn := Handler(func(*Engine) {})
	var ids [64]EventID
	for i := 0; i < b.N; i++ {
		for k := range ids {
			ids[k] = e.After(Time(k+1)*1000, fn)
		}
		for k := range ids {
			e.Cancel(ids[k])
		}
	}
}

// BenchmarkEngineReschedule measures the Timer Reset loop: one pooled
// event canceled and re-armed per fire, zero allocations in steady state.
func BenchmarkEngineReschedule(b *testing.B) {
	e := New()
	n := 0
	var tm *Timer
	tm = NewTimer(e, func(*Engine) {
		n++
		if n < b.N {
			tm.Reset(Millisecond)
		}
	})
	b.ResetTimer()
	tm.Reset(Millisecond)
	e.Run()
}

// BenchmarkEngineCascade spreads events across the full wheel span so
// every pop pays cascading costs — the worst case for the wheel and the
// best case for the old binary heap.
func BenchmarkEngineCascade(b *testing.B) {
	e := New()
	fn := Handler(func(*Engine) {})
	r := NewRNG(1)
	delays := make([]Time, 256)
	for i := range delays {
		delays[i] = Time(r.Uint64() & (1<<44 - 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Now() > Time(1)<<60 {
			e = New() // keep now+delay clear of int64 overflow
		}
		for _, d := range delays {
			e.After(d, fn)
		}
		e.Run()
	}
}

// BenchmarkEngineSelfSchedule is the tightest possible event loop: one
// event rescheduling itself via a pre-bound handler. This bounds engine
// dispatch overhead per event.
func BenchmarkEngineSelfSchedule(b *testing.B) {
	e := New()
	n := 0
	var h selfScheduler
	h.fire = func(eng *Engine) {
		n++
		if n < b.N {
			eng.AfterHandler(1, &h)
		}
	}
	b.ResetTimer()
	e.AtHandler(0, &h)
	e.Run()
}

type selfScheduler struct{ fire Handler }

func (s *selfScheduler) HandleEvent(e *Engine) { s.fire(e) }

// BenchmarkEngineMixedHorizon mixes short, medium, and far-future events
// including the overflow tier, approximating a full simulation's spread
// of RTOs, pacing ticks, and iteration deadlines.
func BenchmarkEngineMixedHorizon(b *testing.B) {
	e := New()
	fn := Handler(func(*Engine) {})
	r := NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Now() > Time(1)<<60 {
			e = New() // keep now+delay clear of int64 overflow
		}
		for k := 0; k < 32; k++ {
			e.After(delayFor(r), fn)
		}
		e.Run()
	}
}
