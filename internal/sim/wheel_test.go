package sim

import "testing"

// TestCancelAfterStop pins the interaction between Stop and Cancel: after
// a handler stops the run, every still-pending event can be canceled, the
// cancellations report true exactly once, and a resumed run fires none of
// them.
func TestCancelAfterStop(t *testing.T) {
	e := New()
	var fired []int
	e.At(10, func(e *Engine) {
		fired = append(fired, 1)
		e.Stop()
	})
	var ids []EventID
	for i := 2; i <= 5; i++ {
		i := i
		ids = append(ids, e.At(Time(10*i), func(*Engine) {
			fired = append(fired, i)
		}))
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("run before stop fired %v, want [1]", fired)
	}
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d after Stop, want 4", e.Pending())
	}
	for i, id := range ids {
		if !e.Cancel(id) {
			t.Errorf("Cancel(#%d) after Stop = false, want true", i)
		}
		if e.Cancel(id) {
			t.Errorf("second Cancel(#%d) = true, want false", i)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after canceling all, want 0", e.Pending())
	}
	if end := e.Run(); end != 10 {
		t.Errorf("resumed run ended at %v, want 10 (no events left)", end)
	}
	if len(fired) != 1 {
		t.Errorf("canceled events fired anyway: %v", fired)
	}
}

// TestCancelDuringRun pins Cancel called from inside a handler, against
// events at the same instant and in the future — both must be suppressed,
// and canceling the currently-executing event must report false (it has
// already fired).
func TestCancelDuringRun(t *testing.T) {
	e := New()
	var fired []string
	var self, sameTime, future EventID
	self = e.At(10, func(e *Engine) {
		fired = append(fired, "killer")
		if e.Cancel(self) {
			t.Error("canceling the executing event reported true")
		}
		if !e.Cancel(sameTime) {
			t.Error("canceling a same-instant pending event reported false")
		}
		if !e.Cancel(future) {
			t.Error("canceling a future event reported false")
		}
	})
	sameTime = e.At(10, func(*Engine) { fired = append(fired, "sameTime") })
	future = e.At(1<<40, func(*Engine) { fired = append(fired, "future") })
	e.At(20, func(*Engine) { fired = append(fired, "survivor") })
	e.Run()
	if want := []string{"killer", "survivor"}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fired %v, want %v", fired, want)
	}
}

// TestStaleEventIDAfterReuse verifies the generation check: once an event
// fires, its EventID must never cancel a later event that reuses the same
// pooled node.
func TestStaleEventIDAfterReuse(t *testing.T) {
	e := New()
	stale := e.At(1, func(*Engine) {})
	e.Run()
	// The engine's free list now holds the node from the fired event; the
	// next schedule reuses it.
	fired := false
	e.At(2, func(*Engine) { fired = true })
	if e.Cancel(stale) {
		t.Error("stale EventID canceled a reused node")
	}
	e.Run()
	if !fired {
		t.Error("event on reused node never fired")
	}
}

// TestOverflowTierOrdering mixes events inside the wheel horizon with
// events beyond it (≥ 2^48 ns ahead) and checks global firing order,
// including FIFO ties spanning the two tiers after the cursor advances.
func TestOverflowTierOrdering(t *testing.T) {
	e := New()
	var fired []int
	record := func(label int) Handler {
		return func(*Engine) { fired = append(fired, label) }
	}
	far := Time(1) << 52
	e.At(far+5, record(4))
	e.At(100, record(1))
	e.At(far, record(3))
	e.At(far+5, record(5)) // same instant as label 4, scheduled later
	e.At(200, record(2))
	if end := e.Run(); end != far+5 {
		t.Fatalf("run ended at %v, want %v", end, far+5)
	}
	for i, want := range []int{1, 2, 3, 4, 5} {
		if fired[i] != want {
			t.Fatalf("firing order %v, want [1 2 3 4 5]", fired)
		}
	}
}

// TestRunUntilCursorDoesNotOvershoot is the regression test for the
// wheel-cursor ceiling rule: stopping at a deadline in an empty region
// must leave the engine able to accept and fire events scheduled between
// the deadline and the next far-future pending event.
func TestRunUntilCursorDoesNotOvershoot(t *testing.T) {
	e := New()
	var fired []int
	// One event far in the future, several levels above the deadline.
	e.At(1<<40, func(*Engine) { fired = append(fired, 2) })
	if now := e.RunUntil(1 << 20); now != 1<<20 {
		t.Fatalf("RunUntil ended at %v, want %v", now, Time(1)<<20)
	}
	// Scheduling between the deadline and the pending event must work and
	// fire first. If the cursor had cascaded past the deadline, this
	// would either panic or fire out of order.
	e.At(1<<30, func(*Engine) { fired = append(fired, 1) })
	e.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Errorf("fired %v, want [1 2]", fired)
	}
}

// TestRunUntilOverflowBoundary checks that an overflow-tier event exactly
// at the deadline fires, and one past it stays pending.
func TestRunUntilOverflowBoundary(t *testing.T) {
	e := New()
	far := Time(1) << 50
	var fired int
	e.At(far, func(*Engine) { fired++ })
	e.At(far+1, func(*Engine) { fired++ })
	e.RunUntil(far)
	if fired != 1 || e.Pending() != 1 {
		t.Fatalf("fired=%d pending=%d at deadline, want 1 and 1", fired, e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired=%d after drain, want 2", fired)
	}
}

// TestWheelReschedulingAllocFree pins the free-list contract: a steady
// schedule→fire→reschedule loop (the RTO-timer pattern) performs zero
// heap allocations once warmed up.
func TestWheelReschedulingAllocFree(t *testing.T) {
	e := New()
	tick := 0
	var tm *Timer
	tm = NewTimer(e, func(*Engine) {
		tick++
		if tick < 1000 {
			tm.Reset(Millisecond)
		}
	})
	tm.Reset(Millisecond) // warm the pool
	allocs := testing.AllocsPerRun(1, func() {
		e.Run()
		tick = 0
		tm.Reset(Millisecond)
	})
	// One Run executes 1000 timer fires and 999 reschedules; anything
	// beyond a stray allocation means the pool is not being reused.
	if allocs > 1 {
		t.Errorf("rescheduling loop allocated %v times per run, want ~0", allocs)
	}
}
