package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("(2s).Seconds() = %v, want 2", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration(3ms) = %v", got)
	}
	if got := (250 * Microsecond).Duration(); got != 250*time.Microsecond {
		t.Errorf("Duration() = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.5s" {
		t.Errorf("String() = %q, want 1.5s", s)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30, func(*Engine) { got = append(got, 3) })
	e.At(10, func(*Engine) { got = append(got, 1) })
	e.At(20, func(*Engine) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order at %d: %v", i, v)
		}
	}
}

func TestEngineCascade(t *testing.T) {
	e := New()
	count := 0
	var step Handler
	step = func(en *Engine) {
		count++
		if count < 10 {
			en.After(Millisecond, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 9*Millisecond {
		t.Errorf("Now() = %v, want 9ms", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func(*Engine) { fired++ })
	e.At(20, func(*Engine) { fired++ })
	e.At(30, func(*Engine) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Errorf("Now() = %v, want 20", e.Now())
	}
	// Resume: remaining event still pending.
	e.RunUntil(100)
	if fired != 3 {
		t.Errorf("after resume fired = %d, want 3", fired)
	}
	if e.Now() != 100 {
		t.Errorf("Now() advanced to %v, want deadline 100", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.At(10, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Error("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Error("second Cancel returned true")
	}
	if e.Cancel(EventID{}) {
		t.Error("Cancel of zero EventID returned true")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func(en *Engine) { fired++; en.Stop() })
	e.At(20, func(*Engine) { fired++ })
	e.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (Stop should halt)", fired)
	}
	// Run again resumes.
	e.Run()
	if fired != 2 {
		t.Errorf("after resume fired = %d, want 2", fired)
	}
}

func TestEngineStep(t *testing.T) {
	e := New()
	fired := 0
	e.At(5, func(*Engine) { fired++ })
	e.At(7, func(*Engine) { fired++ })
	if !e.Step() || fired != 1 || e.Now() != 5 {
		t.Fatalf("first Step: fired=%d now=%v", fired, e.Now())
	}
	if !e.Step() || fired != 2 || e.Now() != 7 {
		t.Fatalf("second Step: fired=%d now=%v", fired, e.Now())
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(100, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(50, func(*Engine) {})
	})
	e.Run()
}

func TestEngineNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	New().At(0, nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	New().After(-1, func(*Engine) {})
}

// Property: events always fire in nondecreasing time order, whatever the
// scheduling pattern.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.At(Time(d), func(en *Engine) {
				if en.Now() < last {
					ok = false
				}
				last = en.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func(*Engine) { fired++ })
	tm.Reset(10)
	tm.Reset(50) // supersedes the 10ns expiry
	e.RunUntil(20)
	if fired != 0 {
		t.Fatalf("timer fired at old deadline")
	}
	if !tm.Armed() || tm.Expiry() != 50 {
		t.Fatalf("armed=%v expiry=%v, want armed at 50", tm.Armed(), tm.Expiry())
	}
	e.RunUntil(60)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	fired := 0
	tm := NewTimer(e, func(*Engine) { fired++ })
	tm.Reset(10)
	tm.Stop()
	tm.Stop() // no-op
	e.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired")
	}
	// Re-arm after stop works.
	tm.Reset(5)
	e.Run()
	if fired != 1 {
		t.Errorf("re-armed timer did not fire")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance < 0.97 || variance > 1.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestRNGNormDurationClamp(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.NormDuration(10, 100, 0)
		if v < 0 {
			t.Fatalf("NormDuration below clamp: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) over 1000 draws hit %d values, want 10", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(11)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() && f1.Uint64() == f2.Uint64() {
		t.Error("forked streams identical")
	}
}

func TestTimeScaleDivRatio(t *testing.T) {
	t.Parallel()
	// Scale/Div are the canonical forms of the open-coded float scaling
	// they replaced; they must match it bit for bit so golden traces
	// recorded before the refactor still replay byte-identically.
	cases := []struct {
		d Time
		k float64
	}{
		{1800 * Millisecond, 0.72},
		{1800 * Millisecond, 1.0},
		{Second, 1.0 / 3},
		{-250 * Microsecond, 0.5},
		{7 * Nanosecond, 0.1},
	}
	for _, c := range cases {
		if got, want := c.d.Scale(c.k), Time(float64(c.d)*c.k); got != want {
			t.Errorf("(%v).Scale(%v) = %v, want %v", c.d, c.k, got, want)
		}
		if got, want := c.d.Div(c.k), Time(float64(c.d)/c.k); got != want {
			t.Errorf("(%v).Div(%v) = %v, want %v", c.d, c.k, got, want)
		}
	}
	if got := Ratio(450*Millisecond, 1800*Millisecond); got != 0.25 {
		t.Errorf("Ratio(450ms, 1800ms) = %v, want 0.25", got)
	}
	// Ratio keeps fractional precision where integer division truncates.
	if got := Ratio(Second, 3*Second); got == 0 {
		t.Error("Ratio(1s, 3s) truncated to 0")
	}
}

func TestTimeScaleTruncatesTowardZero(t *testing.T) {
	t.Parallel()
	if got := Time(10).Scale(0.39); got != 3 {
		t.Errorf("Time(10).Scale(0.39) = %v, want 3 (truncation, not rounding)", got)
	}
	if got := Time(-10).Scale(0.39); got != -3 {
		t.Errorf("Time(-10).Scale(0.39) = %v, want -3 (truncation toward zero)", got)
	}
}
