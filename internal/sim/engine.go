// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in integer nanoseconds and a
// hierarchical timer wheel of scheduled events. Events scheduled for the same
// instant fire in the order they were scheduled, which makes runs reproducible
// regardless of map iteration order or goroutine scheduling. Nothing in this
// package (or in any simulation code built on it) reads the wall clock.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent mixing
// wall-clock durations into simulation arithmetic by accident.
type Time int64

// Common time constants mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It is used as an
// "infinitely far" horizon for runs bounded only by event exhaustion.
const MaxTime = Time(math.MaxInt64)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration of the same nanosecond count.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration to a simulation Time span.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Scale returns t multiplied by the dimensionless factor k, truncating
// toward zero. It is the canonical way to scale a duration by a float
// (duty cycles, jitter factors) without open-coding Time(float64(t)*k).
func (t Time) Scale(k float64) Time { return Time(float64(t) * k) }

// Div returns t divided by the dimensionless divisor k, truncating
// toward zero.
func (t Time) Div(k float64) Time { return Time(float64(t) / k) }

// Ratio returns the dimensionless ratio num/den in full float precision.
// Use it instead of float64(num)/float64(den) or the truncating integer
// division num/den when a fractional ratio of two durations is wanted.
func Ratio(num, den Time) float64 { return float64(num) / float64(den) }

// String formats t like a time.Duration ("1.5s", "250µs", ...).
func (t Time) String() string { return time.Duration(t).String() }

// Handler is the callback invoked when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// EventHandler is the allocation-free alternative to Handler: a pre-bound
// struct (a timer, a link's delivery record) schedules itself with
// AtHandler/AfterHandler and is invoked by pointer, so rescheduling the
// same object allocates nothing. Hot paths prefer it over closures.
type EventHandler interface {
	HandleEvent(e *Engine)
}

// Timer-wheel geometry: six levels of 256 slots indexed by successive
// bytes of the absolute firing time, covering 2^48 ns (~3.3 simulated
// days) ahead of the wheel cursor. Events beyond that horizon wait in a
// small overflow heap.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelLevels = 6
	wheelWords  = wheelSlots / 64
)

// event is an intrusive, free-listed timer-wheel node. The engine owns a
// private pool of them; steady-state schedule/cancel/reschedule traffic
// allocates nothing.
type event struct {
	at  Time
	seq uint64 // insertion order; breaks same-instant ties deterministically
	fn  Handler
	h   EventHandler

	prev, next *event // intrusive doubly-linked slot list (next doubles as the free-list link)
	gen        uint64 // bumped on every release; stale EventIDs can never cancel a reused node
	level      int8   // wheel level, levelOverflow, or levelFree
	slot       uint8
	heapIdx    int32 // position in the overflow heap while level == levelOverflow
}

const (
	levelFree     int8 = -1
	levelOverflow int8 = -2
)

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid and safe to Cancel (a no-op). IDs are generation-
// checked: once the event fires or is canceled, the ID goes stale and
// can never affect a later event that reuses the same pooled node.
type EventID struct {
	ev  *event
	gen uint64
}

type slotList struct{ head, tail *event }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	cur     Time // wheel cursor: ≤ now and ≤ every scheduled wheel event
	seq     uint64
	stopped bool
	fired   uint64
	pending int

	wheel    [wheelLevels][wheelSlots]slotList
	occupied [wheelLevels][wheelWords]uint64
	overflow []*event // (at, seq)-ordered binary heap for the far-future tier
	free     *event
}

// New returns a ready-to-run Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return e.pending }

//hot
func (e *Engine) alloc() *event {
	ev := e.free
	if ev == nil {
		return &event{}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

//hot
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.h = nil
	ev.prev = nil
	ev.level = levelFree
	ev.next = e.free
	e.free = ev
}

// schedule places ev into the wheel (or the overflow tier) according to
// its absolute time, relative to the wheel cursor.
//
//hot
func (e *Engine) schedule(ev *event) {
	d := uint64(ev.at ^ e.cur)
	if d>>(wheelBits*wheelLevels) != 0 {
		ev.level = levelOverflow
		e.overflowPush(ev)
	} else {
		level := 0
		if d != 0 {
			level = (bits.Len64(d) - 1) >> 3
		}
		slot := uint8(ev.at >> (level * wheelBits))
		ev.level = int8(level)
		ev.slot = slot
		l := &e.wheel[level][slot]
		if l.tail == nil {
			l.head, l.tail = ev, ev
			e.occupied[level][slot>>6] |= 1 << (slot & 63)
		} else {
			ev.prev = l.tail
			l.tail.next = ev
			l.tail = ev
		}
	}
	e.pending++
}

// unlink removes a wheel-resident event from its slot list.
//
//hot
func (e *Engine) unlink(ev *event) {
	l := &e.wheel[ev.level][ev.slot]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	if l.head == nil {
		e.occupied[ev.level][ev.slot>>6] &^= 1 << (ev.slot & 63)
	}
	ev.prev, ev.next = nil, nil
}

// firstOccupied returns the lowest occupied slot index ≥ from at the
// given level, or -1.
//
//hot
func (e *Engine) firstOccupied(level, from int) int {
	w := from >> 6
	if w >= wheelWords {
		return -1
	}
	word := e.occupied[level][w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w == wheelWords {
			return -1
		}
		word = e.occupied[level][w]
	}
}

// cascade redistributes one higher-level slot down the wheel, advancing
// the cursor to the slot's block base. Every event re-lands at a lower
// level, preserving relative (and therefore FIFO) order.
//
//hot
func (e *Engine) cascade(level, slot int, base Time) {
	e.cur = base
	l := &e.wheel[level][slot]
	ev := l.head
	l.head, l.tail = nil, nil
	e.occupied[level][slot>>6] &^= 1 << (slot & 63)
	for ev != nil {
		next := ev.next
		ev.prev, ev.next = nil, nil
		e.pending-- // schedule re-increments
		e.schedule(ev)
		ev = next
	}
}

// popLE removes and returns the earliest scheduled event with firing
// time ≤ limit, or nil. Ties between the wheel and the overflow tier
// break on (at, seq), exactly as a single binary heap would. The wheel
// cursor never advances past limit (or past an overflow event that fires
// first), so the engine can keep accepting events at any time ≥ Now.
//
//hot
func (e *Engine) popLE(limit Time) *event {
	for {
		var of *event
		if len(e.overflow) > 0 {
			of = e.overflow[0]
		}
		// Level 0: every event in a slot shares one exact timestamp and
		// the list is in seq order, so the head of the first occupied
		// slot at or after the cursor is the wheel minimum.
		if s := e.firstOccupied(0, int(uint8(e.cur))); s >= 0 {
			ev := e.wheel[0][s].head
			if of != nil && (of.at < ev.at || (of.at == ev.at && of.seq < ev.seq)) {
				if of.at > limit {
					return nil
				}
				e.overflowPop()
				return of
			}
			if ev.at > limit {
				return nil
			}
			e.unlink(ev)
			e.pending--
			return ev
		}
		// Level 0 exhausted for the current block: cascade the nearest
		// occupied higher-level slot — unless the overflow head or the
		// limit comes first, in which case the cursor must not move.
		cascaded := false
		for level := 1; level < wheelLevels; level++ {
			s := e.firstOccupied(level, int(uint8(e.cur>>(level*wheelBits)))+1)
			if s < 0 {
				continue
			}
			span := Time(1) << ((level + 1) * wheelBits)
			base := e.cur&^(span-1) | Time(s)<<(level*wheelBits)
			if of != nil && of.at < base {
				if of.at > limit {
					return nil
				}
				e.overflowPop()
				return of
			}
			if base > limit {
				return nil
			}
			e.cascade(level, s, base)
			cascaded = true
			break
		}
		if cascaded {
			continue
		}
		// Wheel empty: only the overflow tier remains.
		if of == nil || of.at > limit {
			return nil
		}
		e.overflowPop()
		return of
	}
}

// panicPast and panicNegative hold the panic formatting — whose fmt
// arguments box — outside the //hot scheduling bodies.
func (e *Engine) panicPast(t Time) {
	panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
}

func panicNegative(d Time) {
	panic(fmt.Sprintf("sim: negative delay %v", d))
}

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it always indicates a logic error in simulation code, and
// silently clamping would hide causality violations.
//
//hot
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		e.panicPast(t)
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.schedule(ev)
	return EventID{ev, ev.gen}
}

// After schedules fn to run d after the current time.
//
//hot
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panicNegative(d)
	}
	return e.At(e.now+d, fn)
}

// AtHandler schedules h to run at absolute time t. It is the
// allocation-free counterpart of At for pre-bound handler objects.
//
//hot
func (e *Engine) AtHandler(t Time, h EventHandler) EventID {
	if t < e.now {
		e.panicPast(t)
	}
	if h == nil {
		panic("sim: scheduling nil handler")
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.h = h
	e.seq++
	e.schedule(ev)
	return EventID{ev, ev.gen}
}

// AfterHandler schedules h to run d after the current time.
//
//hot
func (e *Engine) AfterHandler(d Time, h EventHandler) EventID {
	if d < 0 {
		panicNegative(d)
	}
	return e.AtHandler(e.now+d, h)
}

// Cancel removes a scheduled event. Canceling an already-fired, already-
// canceled, or zero EventID is a no-op. It reports whether the event was
// actually pending.
//
//hot
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen {
		return false
	}
	if ev.level == levelOverflow {
		e.overflowRemove(ev.heapIdx)
	} else {
		e.unlink(ev)
	}
	e.pending--
	e.release(ev)
	return true
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with firing time <= deadline, in timestamp order.
// When it returns, Now is the deadline (if reached) or the time of the last
// event executed before Stop. Events scheduled beyond the deadline remain
// pending, so the simulation can be resumed with a later deadline.
//
//hot
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		ev := e.popLE(deadline)
		if ev == nil {
			break
		}
		e.now = ev.at
		e.fired++
		fn, h := ev.fn, ev.h
		e.release(ev)
		if h != nil {
			h.HandleEvent(e)
		} else {
			fn(e)
		}
	}
	if !e.stopped && deadline != MaxTime && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Step executes exactly one pending event and reports whether an event was
// executed.
//
//hot
func (e *Engine) Step() bool {
	ev := e.popLE(MaxTime)
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.fired++
	fn, h := ev.fn, ev.h
	e.release(ev)
	if h != nil {
		h.HandleEvent(e)
	} else {
		fn(e)
	}
	return true
}

// Overflow tier: a hand-rolled (at, seq) binary min-heap for events
// beyond the wheel horizon. Node positions are tracked in heapIdx so
// Cancel stays O(log n) without tombstones.

//hot
func (e *Engine) overflowLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//hot
func (e *Engine) overflowPush(ev *event) {
	ev.heapIdx = int32(len(e.overflow))
	e.overflow = append(e.overflow, ev)
	e.overflowUp(int(ev.heapIdx))
}

//hot
func (e *Engine) overflowPop() *event {
	ev := e.overflow[0]
	e.overflowRemove(0)
	e.pending--
	return ev
}

//hot
func (e *Engine) overflowRemove(i int32) {
	n := len(e.overflow) - 1
	last := e.overflow[n]
	e.overflow[n] = nil
	e.overflow = e.overflow[:n]
	if int(i) == n {
		return
	}
	e.overflow[i] = last
	last.heapIdx = i
	e.overflowDown(int(i))
	e.overflowUp(int(i))
}

//hot
func (e *Engine) overflowUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.overflowLess(e.overflow[i], e.overflow[parent]) {
			break
		}
		e.overflowSwap(i, parent)
		i = parent
	}
}

//hot
func (e *Engine) overflowDown(i int) {
	n := len(e.overflow)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && e.overflowLess(e.overflow[right], e.overflow[left]) {
			least = right
		}
		if !e.overflowLess(e.overflow[least], e.overflow[i]) {
			return
		}
		e.overflowSwap(i, least)
		i = least
	}
}

//hot
func (e *Engine) overflowSwap(i, j int) {
	e.overflow[i], e.overflow[j] = e.overflow[j], e.overflow[i]
	e.overflow[i].heapIdx = int32(i)
	e.overflow[j].heapIdx = int32(j)
}
