// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock measured in integer nanoseconds and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in the order they were scheduled, which makes runs reproducible
// regardless of map iteration order or goroutine scheduling. Nothing in this
// package (or in any simulation code built on it) reads the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is a distinct type from time.Duration to prevent mixing
// wall-clock durations into simulation arithmetic by accident.
type Time int64

// Common time constants mirroring the time package.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It is used as an
// "infinitely far" horizon for runs bounded only by event exhaustion.
const MaxTime = Time(math.MaxInt64)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration of the same nanosecond count.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration to a simulation Time span.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// Scale returns t multiplied by the dimensionless factor k, truncating
// toward zero. It is the canonical way to scale a duration by a float
// (duty cycles, jitter factors) without open-coding Time(float64(t)*k).
func (t Time) Scale(k float64) Time { return Time(float64(t) * k) }

// Div returns t divided by the dimensionless divisor k, truncating
// toward zero.
func (t Time) Div(k float64) Time { return Time(float64(t) / k) }

// Ratio returns the dimensionless ratio num/den in full float precision.
// Use it instead of float64(num)/float64(den) or the truncating integer
// division num/den when a fractional ratio of two durations is wanted.
func Ratio(num, den Time) float64 { return float64(num) / float64(den) }

// String formats t like a time.Duration ("1.5s", "250µs", ...).
func (t Time) String() string { return time.Duration(t).String() }

// Handler is the callback invoked when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

type event struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	fn   Handler
	idx  int // heap index, -1 when popped or canceled
	dead bool
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid and safe to Cancel (a no-op).
type EventID struct{ ev *event }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	stopped bool
	fired   uint64
}

// New returns a ready-to-run Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// Now) panics: it always indicates a logic error in simulation code, and
// silently clamping would hide causality violations.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil handler")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return EventID{ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired, already-
// canceled, or zero EventID is a no-op. It reports whether the event was
// actually pending.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&e.heap, ev.idx)
	return true
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It returns
// the final simulation time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with firing time <= deadline, in timestamp order.
// When it returns, Now is the deadline (if reached) or the time of the last
// event executed before Stop. Events scheduled beyond the deadline remain
// pending, so the simulation can be resumed with a later deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := e.heap[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.heap)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e)
	}
	if !e.stopped && deadline != MaxTime && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Step executes exactly one pending event (skipping canceled ones) and
// reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e)
		return true
	}
	return false
}
