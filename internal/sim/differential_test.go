package sim

// Differential testing of the timer-wheel engine against the legacy
// container/heap engine it replaced. The two implementations are driven
// in lockstep through randomized schedule/cancel/step/run-until op
// streams; they must agree on the execution order of every event (the
// (at, seq) FIFO contract), on Now, and on Pending() after every step.

import (
	"container/heap"
	"fmt"
	"testing"
)

// legacyEngine is a frozen copy of the pre-wheel binary-heap engine. It
// exists only as the differential-test oracle; production code uses
// Engine.
type legacyEngine struct {
	now     Time
	seq     uint64
	heap    legacyHeap
	stopped bool
	fired   uint64
}

type legacyEvent struct {
	at   Time
	seq  uint64
	fn   func(*legacyEngine)
	idx  int
	dead bool
}

type legacyHeap []*legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *legacyHeap) Push(x any) {
	ev := x.(*legacyEvent)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

func (e *legacyEngine) Now() Time     { return e.now }
func (e *legacyEngine) Pending() int  { return len(e.heap) }
func (e *legacyEngine) Stop()         { e.stopped = true }
func (e *legacyEngine) Fired() uint64 { return e.fired }

func (e *legacyEngine) At(t Time, fn func(*legacyEngine)) *legacyEvent {
	if t < e.now {
		panic(fmt.Sprintf("legacy: scheduling event at %v before now %v", t, e.now))
	}
	ev := &legacyEvent{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.heap, ev)
	return ev
}

func (e *legacyEngine) Cancel(ev *legacyEvent) bool {
	if ev == nil || ev.dead || ev.idx < 0 {
		return false
	}
	ev.dead = true
	heap.Remove(&e.heap, ev.idx)
	return true
}

func (e *legacyEngine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := e.heap[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.heap)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e)
	}
	if !e.stopped && deadline != MaxTime && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

func (e *legacyEngine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*legacyEvent)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e)
		return true
	}
	return false
}

// diffHarness drives the wheel and legacy engines in lockstep and checks
// every observable after every operation.
type diffHarness struct {
	t      *testing.T
	wheel  *Engine
	legacy *legacyEngine

	wheelLog  []int
	legacyLog []int

	// Parallel outstanding-event tables: index i in both slices is the
	// same logical event.
	wheelIDs  []EventID
	legacyIDs []*legacyEvent

	nextLabel int
}

func newDiffHarness(t *testing.T) *diffHarness {
	return &diffHarness{t: t, wheel: New(), legacy: &legacyEngine{}}
}

// schedule registers the same event (delay, optional self-respawn budget)
// in both engines. Respawning events schedule a child from inside their
// handler, exercising schedule-during-dispatch.
func (h *diffHarness) schedule(delay Time, respawn int, respawnDelay Time) {
	label := h.nextLabel
	h.nextLabel++
	// Each engine gets its own respawn budget: a shared captured counter
	// would be decremented by whichever engine steps first and desync the
	// other.
	wRespawn, lRespawn := respawn, respawn
	var wfn func(*Engine)
	var lfn func(*legacyEngine)
	wfn = func(e *Engine) {
		h.wheelLog = append(h.wheelLog, label)
		if wRespawn > 0 {
			wRespawn--
			e.After(respawnDelay, wfn)
		}
	}
	lfn = func(e *legacyEngine) {
		h.legacyLog = append(h.legacyLog, label)
		if lRespawn > 0 {
			lRespawn--
			e.At(e.now+respawnDelay, lfn)
		}
	}
	h.wheelIDs = append(h.wheelIDs, h.wheel.After(delay, wfn))
	h.legacyIDs = append(h.legacyIDs, h.legacy.At(h.legacy.Now()+delay, lfn))
}

func (h *diffHarness) cancel(i int) {
	if len(h.wheelIDs) == 0 {
		return
	}
	i %= len(h.wheelIDs)
	wg := h.wheel.Cancel(h.wheelIDs[i])
	lg := h.legacy.Cancel(h.legacyIDs[i])
	if wg != lg {
		h.t.Fatalf("Cancel(#%d): wheel=%v legacy=%v", i, wg, lg)
	}
	h.check("cancel")
}

func (h *diffHarness) step() {
	wg := h.wheel.Step()
	lg := h.legacy.Step()
	if wg != lg {
		h.t.Fatalf("Step: wheel=%v legacy=%v", wg, lg)
	}
	h.check("step")
}

func (h *diffHarness) runUntil(delta Time) {
	deadline := h.wheel.Now() + delta
	h.wheel.RunUntil(deadline)
	h.legacy.RunUntil(deadline)
	h.check("runUntil")
}

func (h *diffHarness) drain() {
	// Drain via single steps so Pending is compared at every event
	// boundary, then confirm both report empty.
	for h.wheel.Step() {
		if !h.legacy.Step() {
			h.t.Fatal("legacy drained before wheel")
		}
		h.check("drain")
	}
	if h.legacy.Step() {
		h.t.Fatal("wheel drained before legacy")
	}
	h.check("drained")
}

func (h *diffHarness) check(op string) {
	h.t.Helper()
	if h.wheel.Now() != h.legacy.Now() {
		h.t.Fatalf("%s: Now diverged: wheel=%v legacy=%v", op, h.wheel.Now(), h.legacy.Now())
	}
	if h.wheel.Pending() != h.legacy.Pending() {
		h.t.Fatalf("%s: Pending diverged: wheel=%d legacy=%d", op, h.wheel.Pending(), h.legacy.Pending())
	}
	if len(h.wheelLog) != len(h.legacyLog) {
		h.t.Fatalf("%s: fired %d (wheel) vs %d (legacy) events", op, len(h.wheelLog), len(h.legacyLog))
	}
	for i := range h.wheelLog {
		if h.wheelLog[i] != h.legacyLog[i] {
			h.t.Fatalf("%s: execution order diverged at %d: wheel=%v legacy=%v",
				op, i, h.wheelLog[i], h.legacyLog[i])
		}
	}
}

// delayFor maps a raw random value onto a delay distribution that
// exercises every wheel level and the overflow tier: exact duplicates
// (FIFO ties), sub-slot, per-level spans, and beyond-horizon times.
func delayFor(r *RNG) Time {
	switch r.Intn(8) {
	case 0:
		return 0 // same-instant FIFO ties
	case 1:
		return Time(r.Intn(256)) // level 0
	case 2:
		return Time(r.Intn(1 << 16)) // level 1
	case 3:
		return Time(r.Intn(1 << 24)) // level 2
	case 4:
		return Time(r.Intn(1 << 32)) // level 3
	case 5:
		return Time(r.Intn(1 << 40)) // level 4
	case 6:
		return Time(r.Intn(1 << 47)) // level 5
	default:
		return Time(1)<<48 + Time(r.Intn(1<<50)) // overflow tier
	}
}

// TestDifferentialRandomSchedules drives many independent randomized op
// streams through both engines.
func TestDifferentialRandomSchedules(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			r := NewRNG(uint64(trial)*0x9e3779b97f4a7c15 + 1)
			h := newDiffHarness(t)
			for op := 0; op < 200; op++ {
				switch r.Intn(10) {
				case 0, 1, 2, 3: // schedule-heavy mix
					respawn := 0
					if r.Intn(4) == 0 {
						respawn = r.Intn(3)
					}
					h.schedule(delayFor(r), respawn, delayFor(r))
				case 4, 5:
					h.cancel(r.Intn(1 << 20))
				case 6, 7:
					h.step()
				default:
					h.runUntil(delayFor(r))
				}
			}
			h.drain()
		})
	}
}

// FuzzEngineDifferential interprets the fuzz input as an op stream and
// replays it through both engines. go test runs the seed corpus; `go test
// -fuzz=FuzzEngineDifferential ./internal/sim` explores further.
func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x42, 0x83, 0xc4, 0x05, 0x46, 0x87, 0xff})
	f.Add([]byte{0x10, 0x10, 0x10, 0x50, 0x90, 0xd0})           // same-time ties, cancel, step, run
	f.Add([]byte{0x07, 0x17, 0x27, 0x37, 0xc0, 0xc0, 0xc0})     // overflow tier
	f.Add([]byte{0x01, 0x41, 0x81, 0xc1, 0x02, 0x42, 0x82})     // interleaved schedule/cancel/step
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("op stream too long")
		}
		h := newDiffHarness(t)
		// Each byte is one op: top 2 bits select the kind, low 6 bits
		// seed a per-op RNG so delays are deterministic in the input.
		for i, b := range data {
			r := NewRNG(uint64(b&0x3f)*0x9e3779b97f4a7c15 + uint64(i))
			switch b >> 6 {
			case 0:
				h.schedule(delayFor(r), int(b)%3, delayFor(r))
			case 1:
				h.cancel(int(b & 0x3f))
			case 2:
				h.step()
			default:
				h.runUntil(delayFor(r))
			}
		}
		h.drain()
	})
}
