package sim

import "testing"

func TestDeriveSeedMatchesSplitMixStream(t *testing.T) {
	t.Parallel()
	// DeriveSeed(base, i) is defined as the SplitMix64 sequence started at
	// base, at position i+1 — the same recurrence NewRNG uses to mix its
	// state, so stream quality is identical.
	base := uint64(0xdeadbeef)
	x := base
	for i := uint64(0); i < 16; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if got := DeriveSeed(base, i); got != z {
			t.Fatalf("DeriveSeed(%#x, %d) = %#x, want %#x", base, i, got, z)
		}
	}
}

func TestDeriveSeedDistinctStreams(t *testing.T) {
	t.Parallel()
	seen := map[uint64]bool{}
	for base := uint64(0); base < 32; base++ {
		for i := uint64(0); i < 32; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	// Zero base is well-mixed too (SplitMix64's guarantee).
	if DeriveSeed(0, 0) == 0 {
		t.Error("DeriveSeed(0,0) = 0; state not mixed")
	}
}

func TestNewRNGAtEquivalence(t *testing.T) {
	t.Parallel()
	a := NewRNGAt(7, 3)
	b := NewRNG(DeriveSeed(7, 3))
	for k := 0; k < 100; k++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("NewRNGAt diverges from NewRNG(DeriveSeed) at draw %d", k)
		}
	}
	// Adjacent indices give uncorrelated-looking streams: first draws differ.
	if NewRNGAt(7, 3).Uint64() == NewRNGAt(7, 4).Uint64() {
		t.Error("adjacent point streams start identically")
	}
}
