package netsim

// DRRQueue implements Deficit Round Robin (Shreedhar & Varghese 1995):
// per-flow queues served in rounds, each flow's deficit growing by a
// quantum per round, so flows share the link equally in bytes regardless
// of their packet sizes or arrival aggressiveness. It provides a
// switch-enforced fair-sharing baseline that, unlike end-host congestion
// control, MLTCP's unequal window growth cannot bypass — useful for
// studying how MLTCP behaves when the network refuses unequal shares.
type DRRQueue struct {
	capacity int64
	quantum  int64
	bytes    int64

	flows   map[FlowID]*drrFlow
	active  []FlowID // round-robin order of backlogged flows
	current int
	onDrop  func(*Packet)
}

type drrFlow struct {
	pkts    []*Packet
	deficit int64
}

// NewDRRQueue creates a DRR queue with the given total byte capacity and
// per-round quantum (use >= MTU so every round can forward a packet).
func NewDRRQueue(capacity, quantum int64) *DRRQueue {
	if capacity <= 0 || quantum <= 0 {
		panic("netsim: DRR capacity and quantum must be positive")
	}
	return &DRRQueue{capacity: capacity, quantum: quantum, flows: make(map[FlowID]*drrFlow)}
}

// Enqueue implements Queue. On overflow it steals buffer from the longest
// per-flow queue (McKenney's buffer stealing) instead of dropping the
// arrival: with a plain shared tail-drop buffer an aggressive flow would
// monopolize the buffer and starve other flows' arrivals, defeating the
// round-robin service entirely.
func (q *DRRQueue) Enqueue(p *Packet) bool {
	f, ok := q.flows[p.Flow]
	if !ok {
		f = &drrFlow{}
		q.flows[p.Flow] = f
	}
	if len(f.pkts) == 0 {
		q.active = append(q.active, p.Flow)
	}
	f.pkts = append(f.pkts, p)
	q.bytes += int64(p.WireSize())

	accepted := true
	for q.bytes > q.capacity {
		victimID, victim := q.longestFlow()
		last := victim.pkts[len(victim.pkts)-1]
		victim.pkts = victim.pkts[:len(victim.pkts)-1]
		q.bytes -= int64(last.WireSize())
		if len(victim.pkts) == 0 {
			q.removeActive(victimID)
			victim.deficit = 0
		}
		if last == p {
			accepted = false
		}
		if q.onDrop != nil {
			q.onDrop(last)
		}
	}
	return accepted
}

func (q *DRRQueue) longestFlow() (FlowID, *drrFlow) {
	var bestID FlowID
	var best *drrFlow
	var bestBytes int64 = -1
	for _, id := range q.active {
		f := q.flows[id]
		var b int64
		for _, pk := range f.pkts {
			b += int64(pk.WireSize())
		}
		if b > bestBytes {
			bestBytes, bestID, best = b, id, f
		}
	}
	return bestID, best
}

func (q *DRRQueue) removeActive(id FlowID) {
	for i, a := range q.active {
		if a == id {
			q.active = append(q.active[:i], q.active[i+1:]...)
			if q.current > i {
				q.current--
			}
			return
		}
	}
}

// Dequeue implements Queue: serve the current flow while its deficit
// covers the head packet, otherwise move on, replenishing deficits as
// rounds complete.
func (q *DRRQueue) Dequeue() *Packet {
	if len(q.active) == 0 {
		return nil
	}
	// At most two passes are needed: one may only replenish deficits.
	for pass := 0; pass < 2*len(q.active)+2; pass++ {
		if q.current >= len(q.active) {
			q.current = 0
		}
		id := q.active[q.current]
		f := q.flows[id]
		if f.deficit < q.quantum*8 { // guard against unbounded growth
			// Replenish on first visit this round.
		}
		head := f.pkts[0]
		if f.deficit >= int64(head.WireSize()) {
			f.deficit -= int64(head.WireSize())
			f.pkts[0] = nil
			f.pkts = f.pkts[1:]
			q.bytes -= int64(head.WireSize())
			if len(f.pkts) == 0 {
				// Flow leaves the active list; deficit resets.
				f.deficit = 0
				q.active = append(q.active[:q.current], q.active[q.current+1:]...)
			}
			return head
		}
		f.deficit += q.quantum
		q.current++
	}
	// Unreachable with quantum >= max packet size; return the head
	// packet of the current flow as a safety valve.
	id := q.active[0]
	f := q.flows[id]
	head := f.pkts[0]
	f.pkts = f.pkts[1:]
	q.bytes -= int64(head.WireSize())
	if len(f.pkts) == 0 {
		q.active = q.active[1:]
	}
	return head
}

// Len implements Queue.
func (q *DRRQueue) Len() int {
	n := 0
	for _, f := range q.flows {
		n += len(f.pkts)
	}
	return n
}

// Bytes implements Queue.
func (q *DRRQueue) Bytes() int64 { return q.bytes }

// SetDropCallback implements Queue.
func (q *DRRQueue) SetDropCallback(fn func(*Packet)) { q.onDrop = fn }
