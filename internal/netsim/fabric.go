package netsim

import (
	"fmt"

	"mltcp/internal/units"
)

// Role classifies a node in a multi-rack fabric. Fat-trees use all four
// roles; leaf-spine fabrics use hosts, edges (leaves), and cores (spines).
type Role uint8

const (
	// RoleHost is a server attached to one edge switch.
	RoleHost Role = iota
	// RoleEdge is a top-of-rack (fat-tree edge, leaf-spine leaf) switch.
	RoleEdge
	// RoleAgg is a fat-tree aggregation switch inside one pod.
	RoleAgg
	// RoleCore is a fat-tree core or leaf-spine spine switch.
	RoleCore
)

var roleNames = [...]string{RoleHost: "host", RoleEdge: "edge", RoleAgg: "agg", RoleCore: "core"}

// String returns the role's display name.
func (r Role) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return "unknown"
}

// FabricNode is one node of a fabric graph.
type FabricNode struct {
	// ID is the node's index in Fabric.Nodes.
	ID int
	// Name is the node's stable display name ("host3", "tor1", "agg0.1",
	// "core1.0", "spine2").
	Name string
	// Role classifies the node.
	Role Role
	// Pod is the fat-tree pod index (-1 for core switches and every
	// leaf-spine node).
	Pod int
	// Rack is the rack index for hosts and edge switches (-1 otherwise).
	// Rack r's edge switch is the attachment point of its hosts.
	Rack int
}

// FabricLink is one directed capacitated link of a fabric graph. Every
// physical cable appears as two FabricLinks, one per direction.
type FabricLink struct {
	// ID is the link's index in Fabric.Links — the index the fluid
	// allocator's paths refer to.
	ID int
	// Name is the stable display name "from->to", used as the telemetry
	// link label.
	Name string
	// From and To are node IDs.
	From, To int
	// Capacity is the link rate.
	Capacity units.Rate
}

// Fabric is a cluster-scale topology graph: typed nodes, directed
// capacitated links, and deterministic equal-cost path selection between
// hosts. It is backend-agnostic — the fluid allocator consumes link
// indices and capacities; structural accessors serve tests and reports.
type Fabric struct {
	// Kind labels the built topology ("fattree-4", "leafspine-4x2x4").
	Kind string

	nodes []FabricNode
	links []FabricLink

	hosts []int   // host node IDs, construction order
	racks [][]int // racks[r] = host node IDs in rack r
	edges []int   // edges[r] = rack r's edge-switch node ID

	// linkFrom[from][to] = link ID, for path assembly.
	linkFrom map[int]map[int]int

	// Fat-tree shape (k == 0 for leaf-spine).
	k     int
	aggs  [][]int // aggs[pod][a]
	cores [][]int // cores[group a][offset o]

	// Leaf-spine shape.
	spines []int

	hostRate, linkRate units.Rate
}

// Nodes returns every node, indexed by ID.
func (f *Fabric) Nodes() []FabricNode { return f.nodes }

// Links returns every directed link, indexed by ID.
func (f *Fabric) Links() []FabricLink { return f.links }

// Hosts returns the host node IDs in construction order.
func (f *Fabric) Hosts() []int { return f.hosts }

// Racks returns the number of racks (edge switches).
func (f *Fabric) Racks() int { return len(f.racks) }

// RackHosts returns the host node IDs attached to rack r.
func (f *Fabric) RackHosts(r int) []int { return f.racks[r] }

// CountByRole returns the number of nodes with the given role.
func (f *Fabric) CountByRole(role Role) int {
	n := 0
	for _, nd := range f.nodes {
		if nd.Role == role {
			n++
		}
	}
	return n
}

// node allocates a node and returns its ID.
func (f *Fabric) node(name string, role Role, pod, rack int) int {
	id := len(f.nodes)
	f.nodes = append(f.nodes, FabricNode{ID: id, Name: name, Role: role, Pod: pod, Rack: rack})
	return id
}

// connect adds the two directed links of one cable and returns nothing;
// paths look links up via linkFrom.
func (f *Fabric) connect(a, b int, rate units.Rate) {
	f.addLink(a, b, rate)
	f.addLink(b, a, rate)
}

func (f *Fabric) addLink(from, to int, rate units.Rate) {
	id := len(f.links)
	name := f.nodes[from].Name + "->" + f.nodes[to].Name
	f.links = append(f.links, FabricLink{ID: id, Name: name, From: from, To: to, Capacity: rate})
	if f.linkFrom == nil {
		f.linkFrom = make(map[int]map[int]int)
	}
	m := f.linkFrom[from]
	if m == nil {
		m = make(map[int]int)
		f.linkFrom[from] = m
	}
	m[to] = id
}

// linkID returns the directed link from -> to, panicking if absent (a
// programming error in path assembly, not a user input).
func (f *Fabric) linkID(from, to int) int {
	id, ok := f.linkFrom[from][to]
	if !ok {
		panic(fmt.Sprintf("netsim: fabric %s has no link %s->%s",
			f.Kind, f.nodes[from].Name, f.nodes[to].Name))
	}
	return id
}

// NewFatTree builds the classic k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches, (k/2)² core switches in
// k/2 groups, and k/2 hosts per edge switch — k³/4 hosts total. Host
// uplinks run at hostRate, every switch-to-switch link at linkRate; with
// equal rates the fabric has full bisection bandwidth. k must be even and
// at least 4 (validated upstream by config; this panics on violation).
func NewFatTree(k int, hostRate, linkRate units.Rate) *Fabric {
	if k < 4 || k%2 != 0 {
		panic(fmt.Sprintf("netsim: fat-tree arity %d must be even and >= 4", k))
	}
	if hostRate <= 0 || linkRate <= 0 {
		panic("netsim: fat-tree link rates must be positive")
	}
	half := k / 2
	f := &Fabric{Kind: fmt.Sprintf("fattree-%d", k), k: k, hostRate: hostRate, linkRate: linkRate}

	// Core layer: k/2 groups of k/2 switches. Group a serves aggregation
	// switch a of every pod.
	f.cores = make([][]int, half)
	for a := 0; a < half; a++ {
		f.cores[a] = make([]int, half)
		for o := 0; o < half; o++ {
			f.cores[a][o] = f.node(fmt.Sprintf("core%d.%d", a, o), RoleCore, -1, -1)
		}
	}

	f.aggs = make([][]int, k)
	for p := 0; p < k; p++ {
		f.aggs[p] = make([]int, half)
		for a := 0; a < half; a++ {
			f.aggs[p][a] = f.node(fmt.Sprintf("agg%d.%d", p, a), RoleAgg, p, -1)
		}
		for e := 0; e < half; e++ {
			rack := p*half + e
			edge := f.node(fmt.Sprintf("tor%d", rack), RoleEdge, p, rack)
			f.edges = append(f.edges, edge)
			f.racks = append(f.racks, nil)
			for h := 0; h < half; h++ {
				host := f.node(fmt.Sprintf("host%d", len(f.hosts)), RoleHost, p, rack)
				f.hosts = append(f.hosts, host)
				f.racks[rack] = append(f.racks[rack], host)
				f.connect(host, edge, hostRate)
			}
			for a := 0; a < half; a++ {
				f.connect(edge, f.aggs[p][a], linkRate)
			}
		}
		for a := 0; a < half; a++ {
			for o := 0; o < half; o++ {
				f.connect(f.aggs[p][a], f.cores[a][o], linkRate)
			}
		}
	}
	return f
}

// NewLeafSpine builds a two-tier leaf-spine fabric: `leaves` racks of
// `hostsPerLeaf` hosts each, every leaf connected to every one of
// `spines` spine switches. Host uplinks run at hostRate, leaf-spine links
// at linkRate; the leaf oversubscription ratio is
// hostsPerLeaf·hostRate / (spines·linkRate).
func NewLeafSpine(leaves, spines, hostsPerLeaf int, hostRate, linkRate units.Rate) *Fabric {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic("netsim: leaf-spine needs leaves, spines, hosts_per_leaf >= 1")
	}
	if hostRate <= 0 || linkRate <= 0 {
		panic("netsim: leaf-spine link rates must be positive")
	}
	f := &Fabric{
		Kind:     fmt.Sprintf("leafspine-%dx%dx%d", leaves, spines, hostsPerLeaf),
		hostRate: hostRate, linkRate: linkRate,
	}
	for s := 0; s < spines; s++ {
		f.spines = append(f.spines, f.node(fmt.Sprintf("spine%d", s), RoleCore, -1, -1))
	}
	for r := 0; r < leaves; r++ {
		edge := f.node(fmt.Sprintf("tor%d", r), RoleEdge, -1, r)
		f.edges = append(f.edges, edge)
		f.racks = append(f.racks, nil)
		for h := 0; h < hostsPerLeaf; h++ {
			host := f.node(fmt.Sprintf("host%d", len(f.hosts)), RoleHost, -1, r)
			f.hosts = append(f.hosts, host)
			f.racks[r] = append(f.racks[r], host)
			f.connect(host, edge, hostRate)
		}
		for _, sp := range f.spines {
			f.connect(edge, sp, linkRate)
		}
	}
	return f
}

// ECMPWidth returns the number of equal-cost shortest paths between two
// hosts: 1 within a rack, k/2 across racks of one fat-tree pod, (k/2)²
// across pods, and the spine count across leaf-spine racks.
func (f *Fabric) ECMPWidth(src, dst int) int {
	s, d := f.nodes[src], f.nodes[dst]
	f.checkHostPair(s, d)
	switch {
	case s.Rack == d.Rack:
		return 1
	case f.k == 0: // leaf-spine
		return len(f.spines)
	case s.Pod == d.Pod:
		return f.k / 2
	default:
		return (f.k / 2) * (f.k / 2)
	}
}

// Path returns the directed link IDs of one shortest path from host src
// to host dst. Among the ECMPWidth equal-cost candidates it picks number
// choice % ECMPWidth — a pure function of its arguments, so callers that
// derive choice from (run seed, flow ID) get worker-count-independent,
// replayable path selection.
func (f *Fabric) Path(src, dst int, choice uint64) []int {
	s, d := f.nodes[src], f.nodes[dst]
	f.checkHostPair(s, d)
	if src == dst {
		panic("netsim: fabric path needs distinct hosts")
	}
	se, de := f.edges[s.Rack], f.edges[d.Rack]
	switch {
	case s.Rack == d.Rack:
		return []int{f.linkID(src, se), f.linkID(se, dst)}
	case f.k == 0: // leaf-spine: up, across the chosen spine, down
		sp := f.spines[int(choice%uint64(len(f.spines)))]
		return []int{
			f.linkID(src, se), f.linkID(se, sp), f.linkID(sp, de), f.linkID(de, dst),
		}
	case s.Pod == d.Pod: // one pod: up to the chosen aggregation switch
		half := uint64(f.k / 2)
		a := int(choice % half)
		agg := f.aggs[s.Pod][a]
		return []int{
			f.linkID(src, se), f.linkID(se, agg), f.linkID(agg, de), f.linkID(de, dst),
		}
	default: // across pods: the chosen core fixes both pods' agg switches
		half := uint64(f.k / 2)
		a := int(choice % half)
		o := int(choice / half % half)
		core := f.cores[a][o]
		sa, da := f.aggs[s.Pod][a], f.aggs[d.Pod][a]
		return []int{
			f.linkID(src, se), f.linkID(se, sa), f.linkID(sa, core),
			f.linkID(core, da), f.linkID(da, de), f.linkID(de, dst),
		}
	}
}

func (f *Fabric) checkHostPair(s, d FabricNode) {
	if s.Role != RoleHost || d.Role != RoleHost {
		panic(fmt.Sprintf("netsim: fabric paths connect hosts, got %s and %s", s.Role, d.Role))
	}
}

// BisectionBandwidth returns the aggregate capacity crossing an even
// two-way split of the racks: k³/8 core-layer links for a fat-tree,
// (leaves/2)·spines leaf uplinks for a leaf-spine fabric.
func (f *Fabric) BisectionBandwidth() units.Rate {
	if f.k > 0 {
		return units.Rate(float64(f.k*f.k*f.k/8) * float64(f.linkRate))
	}
	return units.Rate(float64(len(f.racks)/2*len(f.spines)) * float64(f.linkRate))
}

// Oversubscription returns the edge oversubscription ratio: attached host
// bandwidth over fabric-facing uplink bandwidth of one edge switch. 1.0
// (with equal rates) means a rearrangeably non-blocking fabric.
func (f *Fabric) Oversubscription() float64 {
	hostsPerEdge := len(f.racks[0])
	uplinks := len(f.spines)
	if f.k > 0 {
		uplinks = f.k / 2
	}
	return float64(hostsPerEdge) * float64(f.hostRate) /
		(float64(uplinks) * float64(f.linkRate))
}
