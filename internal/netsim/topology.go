package netsim

import (
	"fmt"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// DumbbellConfig describes the paper's testbed topology: HostPairs senders
// on the left, their receivers on the right, and a single bottleneck link
// between two switches.
type DumbbellConfig struct {
	HostPairs int

	// HostRate is the edge-link rate (host <-> switch). It should be at
	// least the bottleneck rate so the bottleneck is the only point of
	// contention, as in the paper's testbed.
	HostRate units.Rate
	// BottleneckRate is the contended link's rate (the paper's 50 Gbps).
	BottleneckRate units.Rate

	// HostDelay and BottleneckDelay are one-way propagation delays.
	HostDelay       sim.Time
	BottleneckDelay sim.Time

	// BottleneckQueue builds the forward bottleneck's queue discipline.
	// Nil defaults to a drop-tail queue of DefaultQueuePackets.
	BottleneckQueue func() Queue

	// EdgeQueuePackets sizes every non-bottleneck queue, in MTU-sized
	// packets. Zero defaults to a generous 4096 so edges never drop.
	EdgeQueuePackets int
}

// DefaultQueuePackets is the default bottleneck buffer in packets, roughly
// a switch's shallow per-port buffer.
const DefaultQueuePackets = 100

// Dumbbell is the built topology. Senders attach flows to Left hosts,
// receivers to the corresponding Right hosts.
type Dumbbell struct {
	Left  []*Host
	Right []*Host
	// LeftSwitch and RightSwitch bracket the bottleneck.
	LeftSwitch  *Switch
	RightSwitch *Switch
	// Forward is the contended left-to-right bottleneck link; Reverse
	// carries ACKs back.
	Forward *Link
	Reverse *Link

	// links holds every link in the topology, in construction order, so
	// aggregate counters can be read without re-walking the wiring.
	links []*Link
}

// Links returns every link in the topology, in construction order.
func (d *Dumbbell) Links() []*Link { return d.links }

// AggregateStats sums the cumulative counters of every link in the
// topology — the whole-fabric packet and byte totals the self-metrics
// layer reports per run.
func (d *Dumbbell) AggregateStats() LinkStats {
	var total LinkStats
	for _, l := range d.links {
		st := l.Stats()
		total.PacketsSent += st.PacketsSent
		total.PacketsDropped += st.PacketsDropped
		total.PacketsLost += st.PacketsLost
		total.BytesSent += st.BytesSent
	}
	return total
}

// NewDumbbell builds the topology and all routing state.
func NewDumbbell(eng *sim.Engine, cfg DumbbellConfig) *Dumbbell {
	if cfg.HostPairs <= 0 {
		panic("netsim: dumbbell needs at least one host pair")
	}
	if cfg.EdgeQueuePackets == 0 {
		cfg.EdgeQueuePackets = 4096
	}
	edgeQueue := func() Queue { return NewDropTail(int64(cfg.EdgeQueuePackets) * DefaultMTU) }
	bnQueue := cfg.BottleneckQueue
	if bnQueue == nil {
		bnQueue = func() Queue { return NewDropTail(DefaultQueuePackets * DefaultMTU) }
	}

	d := &Dumbbell{}
	pool := NewPacketPool()
	nextID := NodeID(0)
	id := func() NodeID { nextID++; return nextID - 1 }
	track := func(l *Link) *Link { l.SetPool(pool); d.links = append(d.links, l); return l }

	d.LeftSwitch = NewSwitch(id(), "sw-left")
	d.RightSwitch = NewSwitch(id(), "sw-right")

	// Both directions of the bottleneck get the bottleneck buffer:
	// right-to-left data (reverse-direction flows, e.g. a ring's return
	// path) must not hide behind a deep edge queue, or forward ACKs
	// queueing behind it would suffer ~100ms delays and spurious RTOs.
	d.Forward = track(NewLink(eng, "bottleneck-fwd", cfg.BottleneckRate, cfg.BottleneckDelay, bnQueue(), d.RightSwitch))
	d.Reverse = track(NewLink(eng, "bottleneck-rev", cfg.BottleneckRate, cfg.BottleneckDelay, bnQueue(), d.LeftSwitch))

	for i := 0; i < cfg.HostPairs; i++ {
		lh := NewHost(id(), fmt.Sprintf("left-%d", i))
		rh := NewHost(id(), fmt.Sprintf("right-%d", i))
		lh.SetPool(pool)
		rh.SetPool(pool)
		d.Left = append(d.Left, lh)
		d.Right = append(d.Right, rh)

		lh.SetUplink(track(NewLink(eng, lh.Name()+"-up", cfg.HostRate, cfg.HostDelay, edgeQueue(), d.LeftSwitch)))
		rh.SetUplink(track(NewLink(eng, rh.Name()+"-up", cfg.HostRate, cfg.HostDelay, edgeQueue(), d.RightSwitch)))

		d.LeftSwitch.AddRoute(lh.ID(), track(NewLink(eng, lh.Name()+"-down", cfg.HostRate, cfg.HostDelay, edgeQueue(), lh)))
		d.RightSwitch.AddRoute(rh.ID(), track(NewLink(eng, rh.Name()+"-down", cfg.HostRate, cfg.HostDelay, edgeQueue(), rh)))

		// Cross-bottleneck routes.
		d.LeftSwitch.AddRoute(rh.ID(), d.Forward)
		d.RightSwitch.AddRoute(lh.ID(), d.Reverse)
	}
	return d
}
