package netsim

import (
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

func TestDRRRoundRobinEqualShares(t *testing.T) {
	q := NewDRRQueue(1<<20, DefaultMTU)
	// Flow 1 floods 30 packets, flow 2 has 10; dequeue order must
	// alternate while both are backlogged.
	for i := 0; i < 30; i++ {
		q.Enqueue(dataPkt(1, MaxPayload, 0))
	}
	for i := 0; i < 10; i++ {
		q.Enqueue(dataPkt(2, MaxPayload, 0))
	}
	counts := map[FlowID]int{}
	for i := 0; i < 20; i++ {
		p := q.Dequeue()
		counts[p.Flow]++
	}
	// While both backlogged, service should be ~equal.
	if counts[1] < 8 || counts[2] < 8 {
		t.Errorf("unequal service while both backlogged: %v", counts)
	}
	// Remaining 20 all from flow 1.
	for i := 0; i < 20; i++ {
		if p := q.Dequeue(); p == nil || p.Flow != 1 {
			t.Fatalf("tail dequeue %d wrong", i)
		}
	}
	if q.Dequeue() != nil {
		t.Error("queue should be empty")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Errorf("Len=%d Bytes=%d after drain", q.Len(), q.Bytes())
	}
}

func TestDRRByteFairnessWithMixedSizes(t *testing.T) {
	q := NewDRRQueue(1<<20, DefaultMTU)
	// Flow 1 sends big packets, flow 2 small ones; byte service should
	// still be ~equal per round, meaning flow 2 dequeues ~3 packets per
	// flow-1 packet.
	for i := 0; i < 20; i++ {
		q.Enqueue(dataPkt(1, 1460, 0)) // 1500B wire
		q.Enqueue(dataPkt(2, 460, 0))  // 500B wire
		q.Enqueue(dataPkt(2, 460, 0))
		q.Enqueue(dataPkt(2, 460, 0))
	}
	bytes := map[FlowID]int64{}
	for i := 0; i < 40; i++ {
		p := q.Dequeue()
		bytes[p.Flow] += int64(p.WireSize())
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("byte share ratio = %.2f (%v), want ~1", ratio, bytes)
	}
}

func TestDRROverflowDrops(t *testing.T) {
	q := NewDRRQueue(2*DefaultMTU, DefaultMTU)
	drops := 0
	q.SetDropCallback(func(*Packet) { drops++ })
	q.Enqueue(dataPkt(1, MaxPayload, 0))
	q.Enqueue(dataPkt(1, MaxPayload, 0))
	if q.Enqueue(dataPkt(1, MaxPayload, 0)) {
		t.Error("overflow accepted")
	}
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
}

func TestDRRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero quantum")
		}
	}()
	NewDRRQueue(100, 0)
}

// Integration: switch-enforced DRR fairness holds even when one flow runs
// a far more aggressive congestion control (F = 4 constant) — the network
// overrides end-host aggressiveness, unlike drop-tail.
func TestDRRNeutralizesAggressiveCC(t *testing.T) {
	eng := sim.New()
	net := NewDumbbell(eng, DumbbellConfig{
		HostPairs:       2,
		HostRate:        1 * units.Gbps,
		BottleneckRate:  100 * units.Mbps,
		HostDelay:       10 * sim.Microsecond,
		BottleneckDelay: 30 * sim.Microsecond,
		BottleneckQueue: func() Queue { return NewDRRQueue(100*DefaultMTU, DefaultMTU) },
	})
	// Two constant-rate blasters, both offering more than the fair
	// share (90 vs 60 Mbps on a 100 Mbps link): DRR must serve them
	// ~equally, dropping each flow's excess.
	mon := NewBandwidthMonitor(net.Forward, 10*sim.Millisecond)
	var feed func(e *sim.Engine)
	n := 0
	feed = func(e *sim.Engine) {
		if n > 3000 {
			return
		}
		n++
		for i := 0; i < 3; i++ {
			net.Left[0].Send(&Packet{Flow: 1, Dst: net.Right[0].ID(), Payload: MaxPayload})
		}
		for i := 0; i < 2; i++ {
			net.Left[1].Send(&Packet{Flow: 2, Dst: net.Right[1].ID(), Payload: MaxPayload})
		}
		e.After(400*sim.Microsecond, feed) // 90 + 60 Mbps offered
	}
	net.Right[0].Attach(1, &echoEndpoint{})
	net.Right[1].Attach(2, &echoEndpoint{})
	eng.At(0, feed)
	eng.RunUntil(sim.Second)
	b1 := mon.FlowBytes(1)
	b2 := mon.FlowBytes(2)
	ratio := float64(b1) / float64(b2)
	// Both backlogged: service ratio must be ~1 despite the 1.5x
	// offered-load imbalance.
	if ratio > 1.2 || ratio < 0.8 {
		t.Errorf("DRR served aggressive flow %.2fx the polite one, want ~1x", ratio)
	}
}
