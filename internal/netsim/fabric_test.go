package netsim

import (
	"reflect"
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// checkPath asserts the link IDs form a connected directed chain from src
// to dst and returns its length.
func checkPath(t *testing.T, f *Fabric, src, dst int, path []int) int {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("empty path %d->%d", src, dst)
	}
	at := src
	for _, id := range path {
		l := f.Links()[id]
		if l.From != at {
			t.Fatalf("path %d->%d: link %s starts at %s, expected %s",
				src, dst, l.Name, f.Nodes()[l.From].Name, f.Nodes()[at].Name)
		}
		if l.Capacity <= 0 {
			t.Fatalf("link %s has capacity %v", l.Name, l.Capacity)
		}
		at = l.To
	}
	if at != dst {
		t.Fatalf("path %d->%d ends at %s", src, dst, f.Nodes()[at].Name)
	}
	return len(path)
}

func TestFatTreeStructure(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		f := NewFatTree(k, 50*units.Gbps, 50*units.Gbps)
		half := k / 2
		wantHosts := k * k * k / 4
		if got := f.CountByRole(RoleHost); got != wantHosts {
			t.Errorf("k=%d: hosts = %d, want %d", k, got, wantHosts)
		}
		if got := f.CountByRole(RoleEdge); got != k*half {
			t.Errorf("k=%d: edge switches = %d, want %d", k, got, k*half)
		}
		if got := f.CountByRole(RoleAgg); got != k*half {
			t.Errorf("k=%d: agg switches = %d, want %d", k, got, k*half)
		}
		if got := f.CountByRole(RoleCore); got != half*half {
			t.Errorf("k=%d: core switches = %d, want %d", k, got, half*half)
		}
		if got, want := len(f.Nodes()), wantHosts+2*k*half+half*half; got != want {
			t.Errorf("k=%d: nodes = %d, want %d", k, got, want)
		}
		// Directed links: host<->edge, edge<->agg, agg<->core cables, two
		// directions each. Cable counts are k³/4 at each tier.
		if got, want := len(f.Links()), 3*k*k*k/2; got != want {
			t.Errorf("k=%d: directed links = %d, want %d", k, got, want)
		}
		if got := f.Racks(); got != k*half {
			t.Errorf("k=%d: racks = %d, want %d", k, got, k*half)
		}
		for r := 0; r < f.Racks(); r++ {
			if got := len(f.RackHosts(r)); got != half {
				t.Errorf("k=%d: rack %d has %d hosts, want %d", k, r, got, half)
			}
		}
		// Full bisection with equal rates: half the hosts' bandwidth.
		wantBisect := units.Rate(float64(wantHosts/2) * float64(50*units.Gbps))
		if got := f.BisectionBandwidth(); got != wantBisect {
			t.Errorf("k=%d: bisection = %v, want %v", k, got, wantBisect)
		}
		if got := f.Oversubscription(); got != 1 {
			t.Errorf("k=%d: oversubscription = %v, want 1", k, got)
		}
	}
}

func TestFatTreePathBounds(t *testing.T) {
	const k = 4
	f := NewFatTree(k, 50*units.Gbps, 50*units.Gbps)
	hosts := f.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			s, d := f.Nodes()[src], f.Nodes()[dst]
			wantLen := 6 // across pods: up, 2 up the tree, 2 down, down
			wantWidth := (k / 2) * (k / 2)
			switch {
			case s.Rack == d.Rack:
				wantLen, wantWidth = 2, 1
			case s.Pod == d.Pod:
				wantLen, wantWidth = 4, k/2
			}
			if got := f.ECMPWidth(src, dst); got != wantWidth {
				t.Fatalf("%s->%s: ECMP width %d, want %d", s.Name, d.Name, got, wantWidth)
			}
			// Every equal-cost choice yields a valid path of the bound
			// length, and distinct choices modulo the width coincide.
			for c := 0; c < wantWidth; c++ {
				p := f.Path(src, dst, uint64(c))
				if got := checkPath(t, f, src, dst, p); got != wantLen {
					t.Fatalf("%s->%s choice %d: path length %d, want %d", s.Name, d.Name, c, got, wantLen)
				}
				if wrapped := f.Path(src, dst, uint64(c+wantWidth)); !reflect.DeepEqual(p, wrapped) {
					t.Fatalf("%s->%s: choice %d and %d disagree", s.Name, d.Name, c, c+wantWidth)
				}
			}
		}
	}
}

func TestFatTreeECMPChoicesDistinct(t *testing.T) {
	f := NewFatTree(4, 50*units.Gbps, 50*units.Gbps)
	// Hosts in different pods: the 4 equal-cost choices must be 4
	// distinct paths (each picks a different core switch).
	src, dst := f.Hosts()[0], f.Hosts()[len(f.Hosts())-1]
	seen := map[string]bool{}
	for c := 0; c < f.ECMPWidth(src, dst); c++ {
		p := f.Path(src, dst, uint64(c))
		key := ""
		for _, id := range p {
			key += f.Links()[id].Name + "|"
		}
		if seen[key] {
			t.Fatalf("choice %d repeats path %s", c, key)
		}
		seen[key] = true
	}
}

func TestLeafSpineStructure(t *testing.T) {
	const leaves, spines, hostsPer = 6, 3, 4
	f := NewLeafSpine(leaves, spines, hostsPer, 100*units.Gbps, 200*units.Gbps)
	if got := f.CountByRole(RoleHost); got != leaves*hostsPer {
		t.Errorf("hosts = %d, want %d", got, leaves*hostsPer)
	}
	if got := f.CountByRole(RoleEdge); got != leaves {
		t.Errorf("leaves = %d, want %d", got, leaves)
	}
	if got := f.CountByRole(RoleCore); got != spines {
		t.Errorf("spines = %d, want %d", got, spines)
	}
	if got, want := len(f.Links()), 2*(leaves*hostsPer+leaves*spines); got != want {
		t.Errorf("directed links = %d, want %d", got, want)
	}
	// Oversubscription: 4×100 / (3×200) = 2/3.
	if got, want := f.Oversubscription(), 4.0*100/(3*200); got != want { //lint:allow simunits ratio of exact integer-valued rates; both sides compute the same expression
		t.Errorf("oversubscription = %v, want %v", got, want)
	}
	wantBisect := units.Rate(float64(leaves/2*spines) * float64(200*units.Gbps))
	if got := f.BisectionBandwidth(); got != wantBisect {
		t.Errorf("bisection = %v, want %v", got, wantBisect)
	}
	// Cross-rack paths: 4 links, one per spine choice; same-rack: 2.
	src, dst := f.RackHosts(0)[0], f.RackHosts(3)[1]
	if got := f.ECMPWidth(src, dst); got != spines {
		t.Errorf("cross-rack ECMP width = %d, want %d", got, spines)
	}
	for c := 0; c < spines; c++ {
		if got := checkPath(t, f, src, dst, f.Path(src, dst, uint64(c))); got != 4 {
			t.Errorf("cross-rack path length = %d, want 4", got)
		}
	}
	same := f.RackHosts(0)[1]
	if got := checkPath(t, f, src, same, f.Path(src, same, 7)); got != 2 {
		t.Errorf("same-rack path length = %d, want 2", got)
	}
}

// TestFabricDeterminism pins that construction and path selection are pure
// functions: two builds are DeepEqual, and the seeded ECMP choice pattern
// a backend derives from (seed, flow) is reproducible.
func TestFabricDeterminism(t *testing.T) {
	build := func() *Fabric { return NewFatTree(6, 50*units.Gbps, 50*units.Gbps) }
	a, b := build(), build()
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) || !reflect.DeepEqual(a.Links(), b.Links()) {
		t.Fatal("two identical builds differ")
	}
	src, dst := a.Hosts()[2], a.Hosts()[40]
	for flow := 1; flow <= 32; flow++ {
		choice := sim.DeriveSeed(12345, uint64(flow))
		p1 := a.Path(src, dst, choice)
		p2 := b.Path(src, dst, choice)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("flow %d: path differs across builds", flow)
		}
	}
}

func TestFabricPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("odd k", func() { NewFatTree(5, units.Gbps, units.Gbps) })
	mustPanic("small k", func() { NewFatTree(2, units.Gbps, units.Gbps) })
	mustPanic("zero rate", func() { NewFatTree(4, 0, units.Gbps) })
	mustPanic("no leaves", func() { NewLeafSpine(0, 1, 1, units.Gbps, units.Gbps) })
	f := NewFatTree(4, units.Gbps, units.Gbps)
	mustPanic("same host", func() { f.Path(f.Hosts()[0], f.Hosts()[0], 0) })
	mustPanic("non-host", func() { f.Path(f.edges[0], f.Hosts()[0], 0) })
}
