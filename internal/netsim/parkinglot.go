package netsim

import (
	"fmt"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// ParkingLotConfig describes a chain of switches with hosts hanging off
// each one — the classic multi-bottleneck topology. A flow between hosts
// on different switches traverses every inter-switch link between them, so
// long flows compete with single-hop cross traffic on each segment.
type ParkingLotConfig struct {
	// Switches is the chain length (>= 2).
	Switches int
	// HostsPerSwitch attaches this many hosts to every switch.
	HostsPerSwitch int

	// HostRate is the edge-link rate; TrunkRate the inter-switch rate
	// (the contended links).
	HostRate  units.Rate
	TrunkRate units.Rate

	HostDelay  sim.Time
	TrunkDelay sim.Time

	// TrunkQueue builds each inter-switch queue (nil: drop-tail of
	// DefaultQueuePackets).
	TrunkQueue func() Queue
	// EdgeQueuePackets sizes the uncontended edge queues (0: 4096).
	EdgeQueuePackets int
}

// ParkingLot is the built chain.
type ParkingLot struct {
	// Switches in chain order.
	Switches []*Switch
	// Hosts[s][h] is host h on switch s.
	Hosts [][]*Host
	// Fwd[i] carries traffic from switch i to switch i+1; Rev[i] the
	// opposite direction. These are the contended trunks.
	Fwd []*Link
	Rev []*Link
}

// NewParkingLot builds the topology with any-to-any routing along the
// chain.
func NewParkingLot(eng *sim.Engine, cfg ParkingLotConfig) *ParkingLot {
	if cfg.Switches < 2 {
		panic("netsim: parking lot needs at least 2 switches")
	}
	if cfg.HostsPerSwitch < 1 {
		panic("netsim: parking lot needs at least 1 host per switch")
	}
	if cfg.EdgeQueuePackets == 0 {
		cfg.EdgeQueuePackets = 4096
	}
	edgeQueue := func() Queue { return NewDropTail(int64(cfg.EdgeQueuePackets) * DefaultMTU) }
	trunkQueue := cfg.TrunkQueue
	if trunkQueue == nil {
		trunkQueue = func() Queue { return NewDropTail(DefaultQueuePackets * DefaultMTU) }
	}

	p := &ParkingLot{}
	pool := NewPacketPool()
	nextID := NodeID(0)
	id := func() NodeID { nextID++; return nextID - 1 }
	pooled := func(l *Link) *Link { l.SetPool(pool); return l }

	for s := 0; s < cfg.Switches; s++ {
		p.Switches = append(p.Switches, NewSwitch(id(), fmt.Sprintf("sw-%d", s)))
	}
	for s := 0; s < cfg.Switches-1; s++ {
		p.Fwd = append(p.Fwd, pooled(NewLink(eng, fmt.Sprintf("trunk-%d-%d", s, s+1),
			cfg.TrunkRate, cfg.TrunkDelay, trunkQueue(), p.Switches[s+1])))
		p.Rev = append(p.Rev, pooled(NewLink(eng, fmt.Sprintf("trunk-%d-%d", s+1, s),
			cfg.TrunkRate, cfg.TrunkDelay, trunkQueue(), p.Switches[s])))
	}

	for s := 0; s < cfg.Switches; s++ {
		var hosts []*Host
		for h := 0; h < cfg.HostsPerSwitch; h++ {
			host := NewHost(id(), fmt.Sprintf("h%d-%d", s, h))
			host.SetPool(pool)
			host.SetUplink(pooled(NewLink(eng, host.Name()+"-up", cfg.HostRate, cfg.HostDelay, edgeQueue(), p.Switches[s])))
			p.Switches[s].AddRoute(host.ID(), pooled(NewLink(eng, host.Name()+"-down",
				cfg.HostRate, cfg.HostDelay, edgeQueue(), host)))
			hosts = append(hosts, host)
		}
		p.Hosts = append(p.Hosts, hosts)
	}

	// Chain routing: every switch forwards traffic for any non-local
	// host toward its segment (left or right along the chain).
	for s := 0; s < cfg.Switches; s++ {
		for other := 0; other < cfg.Switches; other++ {
			if other == s {
				continue
			}
			var next *Link
			if other > s {
				next = p.Fwd[s]
			} else {
				next = p.Rev[s-1]
			}
			for _, host := range hostsOf(p, other) {
				p.Switches[s].AddRoute(host.ID(), next)
			}
		}
	}
	return p
}

func hostsOf(p *ParkingLot, s int) []*Host { return p.Hosts[s] }

// Host returns host h on switch s.
func (p *ParkingLot) Host(s, h int) *Host { return p.Hosts[s][h] }
