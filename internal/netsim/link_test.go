package netsim

import (
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// sink records delivered packets with their delivery times.
type sink struct {
	pkts  []*Packet
	times []sim.Time
}

func (s *sink) Receive(eng *sim.Engine, p *Packet) {
	s.pkts = append(s.pkts, p)
	s.times = append(s.times, eng.Now())
}

func TestLinkSerializationAndDelay(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	l := NewLink(eng, "l", 1*units.Gbps, 100*sim.Microsecond, NewDropTail(1<<20), dst)
	p := &Packet{Payload: MaxPayload} // 1500B wire
	l.Send(p)
	eng.Run()
	// 1500B at 1Gbps = 12µs serialization + 100µs propagation.
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	if want := 112 * sim.Microsecond; dst.times[0] != want {
		t.Errorf("delivery at %v, want %v", dst.times[0], want)
	}
	st := l.Stats()
	if st.PacketsSent != 1 || st.BytesSent != DefaultMTU {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	l := NewLink(eng, "l", 1*units.Gbps, 0, NewDropTail(1<<20), dst)
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Seq: int64(i), Payload: MaxPayload})
	}
	eng.Run()
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.pkts))
	}
	// Deliveries spaced exactly one serialization time (12µs) apart.
	for i, want := range []sim.Time{12, 24, 36} {
		if dst.times[i] != want*sim.Microsecond {
			t.Errorf("delivery %d at %v, want %dµs", i, dst.times[i], want)
		}
		if dst.pkts[i].Seq != int64(i) {
			t.Errorf("delivery %d is seq %d", i, dst.pkts[i].Seq)
		}
	}
}

func TestLinkQueueDropsCounted(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	// Queue holds 2 packets; the first Send goes straight into
	// transmission, so sends 4..N overflow.
	l := NewLink(eng, "l", 1*units.Gbps, 0, NewDropTail(2*DefaultMTU), dst)
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Payload: MaxPayload})
	}
	eng.Run()
	st := l.Stats()
	if st.PacketsDropped != 2 {
		t.Errorf("dropped = %d, want 2", st.PacketsDropped)
	}
	if len(dst.pkts) != 3 {
		t.Errorf("delivered = %d, want 3", len(dst.pkts))
	}
}

func TestLinkRandomLoss(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	l := NewLink(eng, "l", 10*units.Gbps, 0, NewDropTail(1<<30), dst)
	l.LossProb = 0.3
	l.RNG = sim.NewRNG(1)
	const n = 20000
	var send func(e *sim.Engine)
	i := 0
	send = func(e *sim.Engine) {
		if i >= n {
			return
		}
		i++
		l.Send(&Packet{Payload: 100})
		e.After(sim.Microsecond, send)
	}
	eng.At(0, send)
	eng.Run()
	st := l.Stats()
	if st.PacketsSent != n {
		t.Fatalf("sent = %d, want %d", st.PacketsSent, n)
	}
	lossRate := float64(st.PacketsLost) / n
	if lossRate < 0.27 || lossRate > 0.33 {
		t.Errorf("loss rate = %v, want ~0.3", lossRate)
	}
	if int64(len(dst.pkts))+st.PacketsLost != n {
		t.Errorf("delivered %d + lost %d != sent %d", len(dst.pkts), st.PacketsLost, n)
	}
}

func TestLinkTapSeesSerializedPackets(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	l := NewLink(eng, "l", 1*units.Gbps, sim.Millisecond, NewDropTail(1<<20), dst)
	var tapped int
	l.AddTap(func(now sim.Time, p *Packet) {
		tapped++
		if now != 12*sim.Microsecond {
			t.Errorf("tap at %v, want 12µs (serialization end, before propagation)", now)
		}
	})
	l.Send(&Packet{Payload: MaxPayload})
	eng.Run()
	if tapped != 1 {
		t.Errorf("tapped = %d, want 1", tapped)
	}
}

func TestBandwidthMonitor(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	l := NewLink(eng, "l", 1*units.Gbps, 0, NewDropTail(1<<30), dst)
	m := NewBandwidthMonitor(l, 10*sim.Millisecond)
	// Flow 1 sends 100 packets immediately; flow 2 sends 50 at t=15ms.
	for i := 0; i < 100; i++ {
		l.Send(&Packet{Flow: 1, Payload: MaxPayload})
	}
	eng.At(15*sim.Millisecond, func(*sim.Engine) {
		for i := 0; i < 50; i++ {
			l.Send(&Packet{Flow: 2, Payload: MaxPayload})
		}
	})
	// ACKs should be invisible to the monitor.
	l.Send(&Packet{Flow: 3, Ack: true})
	eng.Run()

	if got := m.FlowBytes(1); got != 100*DefaultMTU {
		t.Errorf("flow 1 bytes = %d, want %d", got, 100*DefaultMTU)
	}
	if got := m.FlowBytes(2); got != 50*DefaultMTU {
		t.Errorf("flow 2 bytes = %d, want %d", got, 50*DefaultMTU)
	}
	if got := m.FlowBytes(3); got != 0 {
		t.Errorf("ACK flow bytes = %d, want 0", got)
	}
	flows := m.Flows()
	if len(flows) != 2 || flows[0] != 1 || flows[1] != 2 {
		t.Errorf("Flows() = %v, want [1 2]", flows)
	}
	// Flow 1's 100 packets take 1.2ms, all inside bucket 0.
	s1 := m.FlowSeries(1)
	if len(s1) == 0 || s1[0] == 0 {
		t.Fatalf("flow 1 series empty: %v", s1)
	}
	wantRate := units.Rate(float64(100*DefaultMTU*8) / 0.010)
	if s1[0] != wantRate {
		t.Errorf("flow 1 bucket 0 = %v, want %v", s1[0], wantRate)
	}
	// Flow 2's traffic lands in bucket 1 (15ms..16ms area).
	s2 := m.FlowSeries(2)
	if len(s2) < 2 || s2[1] == 0 {
		t.Errorf("flow 2 series = %v, want traffic in bucket 1", s2)
	}
	total := m.TotalSeries()
	if total[0] != s1[0] {
		t.Errorf("total bucket 0 = %v, want %v", total[0], s1[0])
	}
}

func TestLinkConstructorPanics(t *testing.T) {
	eng := sim.New()
	for name, fn := range map[string]func(){
		"zero-rate":      func() { NewLink(eng, "x", 0, 0, NewDropTail(1), &sink{}) },
		"negative-delay": func() { NewLink(eng, "x", 1, -1, NewDropTail(1), &sink{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLinkHeavyJitterNeverReorders(t *testing.T) {
	eng := sim.New()
	dst := &sink{}
	// Jitter std 100x the serialization gap: only the monotone-arrival
	// clamp prevents reordering on this FIFO link.
	l := NewLink(eng, "l", 1*units.Gbps, 100*sim.Microsecond, NewDropTail(1<<30), dst)
	l.JitterStd = 2 * sim.Millisecond
	l.RNG = sim.NewRNG(3)
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Seq: int64(i), Payload: 100})
	}
	eng.Run()
	if len(dst.pkts) != n {
		t.Fatalf("delivered %d, want %d", len(dst.pkts), n)
	}
	for i, p := range dst.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("reordered at %d: got seq %d", i, p.Seq)
		}
	}
	// Arrival times strictly increase.
	for i := 1; i < len(dst.times); i++ {
		if dst.times[i] <= dst.times[i-1] {
			t.Fatalf("non-monotone arrivals at %d", i)
		}
	}
	// And jitter actually perturbed delays: arrival gaps must vary.
	varies := false
	base := dst.times[1] - dst.times[0]
	for i := 2; i < len(dst.times); i++ {
		if dst.times[i]-dst.times[i-1] != base {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("jitter had no effect on arrival gaps")
	}
}
