package netsim

import (
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

func testParkingLot(eng *sim.Engine, switches, hosts int) *ParkingLot {
	return NewParkingLot(eng, ParkingLotConfig{
		Switches:       switches,
		HostsPerSwitch: hosts,
		HostRate:       10 * units.Gbps,
		TrunkRate:      1 * units.Gbps,
		HostDelay:      5 * sim.Microsecond,
		TrunkDelay:     20 * sim.Microsecond,
	})
}

func TestParkingLotMultiHopDelivery(t *testing.T) {
	eng := sim.New()
	p := testParkingLot(eng, 4, 2)
	ep := &echoEndpoint{}
	p.Host(3, 1).Attach(9, ep)
	// From the first switch's host to the last: traverses 3 trunks.
	p.Host(0, 0).Send(&Packet{Flow: 9, Dst: p.Host(3, 1).ID(), Payload: 1000})
	eng.Run()
	if ep.got != 1 {
		t.Fatalf("delivered %d, want 1", ep.got)
	}
	for i, l := range p.Fwd {
		if l.Stats().PacketsSent != 1 {
			t.Errorf("trunk %d carried %d packets, want 1", i, l.Stats().PacketsSent)
		}
	}
}

func TestParkingLotReverseDelivery(t *testing.T) {
	eng := sim.New()
	p := testParkingLot(eng, 3, 1)
	ep := &echoEndpoint{}
	p.Host(0, 0).Attach(5, ep)
	p.Host(2, 0).Send(&Packet{Flow: 5, Dst: p.Host(0, 0).ID(), Ack: true})
	eng.Run()
	if ep.got != 1 {
		t.Fatalf("delivered %d, want 1", ep.got)
	}
	for i, l := range p.Rev {
		if l.Stats().PacketsSent != 1 {
			t.Errorf("reverse trunk %d carried %d, want 1", i, l.Stats().PacketsSent)
		}
	}
}

func TestParkingLotLocalTrafficStaysLocal(t *testing.T) {
	eng := sim.New()
	p := testParkingLot(eng, 3, 2)
	ep := &echoEndpoint{}
	p.Host(1, 1).Attach(3, ep)
	p.Host(1, 0).Send(&Packet{Flow: 3, Dst: p.Host(1, 1).ID(), Payload: 100})
	eng.Run()
	if ep.got != 1 {
		t.Fatal("local delivery failed")
	}
	for i, l := range append(append([]*Link{}, p.Fwd...), p.Rev...) {
		if l.Stats().PacketsSent != 0 {
			t.Errorf("trunk %d carried local traffic", i)
		}
	}
}

func TestParkingLotSegmentIsolation(t *testing.T) {
	eng := sim.New()
	p := testParkingLot(eng, 3, 2)
	// Flow A: sw0 -> sw1 (first trunk only). Flow B: sw1 -> sw2
	// (second trunk only).
	p.Host(1, 0).Attach(1, &echoEndpoint{})
	p.Host(2, 0).Attach(2, &echoEndpoint{})
	for i := 0; i < 10; i++ {
		p.Host(0, 0).Send(&Packet{Flow: 1, Dst: p.Host(1, 0).ID(), Payload: 1000})
		p.Host(1, 1).Send(&Packet{Flow: 2, Dst: p.Host(2, 0).ID(), Payload: 1000})
	}
	eng.Run()
	if got := p.Fwd[0].Stats().PacketsSent; got != 10 {
		t.Errorf("trunk 0 carried %d, want 10", got)
	}
	if got := p.Fwd[1].Stats().PacketsSent; got != 10 {
		t.Errorf("trunk 1 carried %d, want 10", got)
	}
}

func TestParkingLotValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"one-switch": func() { testParkingLot(sim.New(), 1, 1) },
		"no-hosts":   func() { testParkingLot(sim.New(), 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
