package netsim

import (
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// BandwidthMonitor samples a link's transmitted bytes into fixed-width time
// buckets, per flow and in total. It reproduces the paper's bandwidth-
// allocation plots (Figures 2, 4, 6). Accumulation is a thin adapter over
// telemetry.BucketSeries; EmitTo replays the series as trace events.
type BandwidthMonitor struct {
	bucket  sim.Time
	perFlow map[FlowID]*telemetry.BucketSeries
	total   *telemetry.BucketSeries
}

// NewBandwidthMonitor attaches a monitor to the link with the given bucket
// width.
func NewBandwidthMonitor(l *Link, bucket sim.Time) *BandwidthMonitor {
	if bucket <= 0 {
		panic("netsim: monitor bucket must be positive")
	}
	m := &BandwidthMonitor{
		bucket:  bucket,
		perFlow: make(map[FlowID]*telemetry.BucketSeries),
		total:   telemetry.NewBucketSeries(bucket),
	}
	l.AddTap(func(now sim.Time, p *Packet) {
		if p.Ack {
			return // ACK bytes are noise on bandwidth plots
		}
		s, ok := m.perFlow[p.Flow]
		if !ok {
			s = telemetry.NewBucketSeries(bucket)
			m.perFlow[p.Flow] = s
		}
		s.Add(now, int64(p.WireSize()))
		m.total.Add(now, int64(p.WireSize()))
	})
	return m
}

// Bucket returns the bucket width.
func (m *BandwidthMonitor) Bucket() sim.Time { return m.bucket }

// Flows returns the flow IDs observed, in ascending order.
func (m *BandwidthMonitor) Flows() []FlowID {
	var ids []FlowID
	for id := range m.perFlow {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// FlowSeries returns the flow's throughput per bucket, in bits per second.
func (m *BandwidthMonitor) FlowSeries(f FlowID) []units.Rate {
	if s, ok := m.perFlow[f]; ok {
		return toRates(s.Buckets(), m.bucket)
	}
	return nil
}

// TotalSeries returns the link's total throughput per bucket.
func (m *BandwidthMonitor) TotalSeries() []units.Rate {
	return toRates(m.total.Buckets(), m.bucket)
}

func toRates(bytes []int64, bucket sim.Time) []units.Rate {
	out := make([]units.Rate, len(bytes))
	for i, b := range bytes {
		out[i] = units.Rate(float64(b) * 8 / bucket.Seconds())
	}
	return out
}

// FlowBytes returns the cumulative non-ACK bytes the link carried for f.
func (m *BandwidthMonitor) FlowBytes(f FlowID) int64 {
	if s, ok := m.perFlow[f]; ok {
		return s.Sum()
	}
	return 0
}

// EmitTo replays the monitor's per-flow buckets as KindBandwidth events
// (one per non-empty bucket, timestamped at the bucket's end). Call after
// the run; telemetry.Write's stable sort interleaves them with the live
// event stream deterministically.
func (m *BandwidthMonitor) EmitTo(rec *telemetry.Recorder) {
	if !rec.Enabled() {
		return
	}
	for _, f := range m.Flows() {
		for i, b := range m.perFlow[f].Buckets() {
			if b == 0 {
				continue
			}
			rec.Bandwidth(sim.Time(i+1)*m.bucket, int(f), m.bucket, float64(b))
		}
	}
}
