package netsim

import (
	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// BandwidthMonitor samples a link's transmitted bytes into fixed-width time
// buckets, per flow and in total. It reproduces the paper's bandwidth-
// allocation plots (Figures 2, 4, 6).
type BandwidthMonitor struct {
	bucket  sim.Time
	perFlow map[FlowID][]int64
	total   []int64
}

// NewBandwidthMonitor attaches a monitor to the link with the given bucket
// width.
func NewBandwidthMonitor(l *Link, bucket sim.Time) *BandwidthMonitor {
	if bucket <= 0 {
		panic("netsim: monitor bucket must be positive")
	}
	m := &BandwidthMonitor{bucket: bucket, perFlow: make(map[FlowID][]int64)}
	l.AddTap(func(now sim.Time, p *Packet) {
		if p.Ack {
			return // ACK bytes are noise on bandwidth plots
		}
		idx := int(now / m.bucket)
		m.perFlow[p.Flow] = grow(m.perFlow[p.Flow], idx)
		m.perFlow[p.Flow][idx] += int64(p.WireSize())
		m.total = grow(m.total, idx)
		m.total[idx] += int64(p.WireSize())
	})
	return m
}

func grow(s []int64, idx int) []int64 {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

// Bucket returns the bucket width.
func (m *BandwidthMonitor) Bucket() sim.Time { return m.bucket }

// Flows returns the flow IDs observed, in ascending order.
func (m *BandwidthMonitor) Flows() []FlowID {
	var ids []FlowID
	for id := range m.perFlow {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// FlowSeries returns the flow's throughput per bucket, in bits per second.
func (m *BandwidthMonitor) FlowSeries(f FlowID) []units.Rate {
	return toRates(m.perFlow[f], m.bucket)
}

// TotalSeries returns the link's total throughput per bucket.
func (m *BandwidthMonitor) TotalSeries() []units.Rate {
	return toRates(m.total, m.bucket)
}

func toRates(bytes []int64, bucket sim.Time) []units.Rate {
	out := make([]units.Rate, len(bytes))
	for i, b := range bytes {
		out[i] = units.Rate(float64(b) * 8 / bucket.Seconds())
	}
	return out
}

// FlowBytes returns the cumulative non-ACK bytes the link carried for f.
func (m *BandwidthMonitor) FlowBytes(f FlowID) int64 {
	var sum int64
	for _, b := range m.perFlow[f] {
		sum += b
	}
	return sum
}
