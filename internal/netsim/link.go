package netsim

import (
	"fmt"

	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// LinkStats are cumulative counters for one link.
type LinkStats struct {
	PacketsSent    int64
	PacketsDropped int64
	PacketsLost    int64 // random wire loss (LossProb), distinct from queue drops
	BytesSent      int64
}

// Link is a unidirectional link: packets entering via Send are queued by the
// discipline, serialized one at a time at Rate, and delivered to the
// destination Receiver after the propagation Delay. An optional i.i.d. loss
// probability models a lossy wire for the §5 fairness experiment.
type Link struct {
	eng   *sim.Engine
	name  string
	rate  units.Rate
	delay sim.Time
	queue Queue
	dst   Receiver

	// LossProb is the probability that a serialized packet is lost on
	// the wire. Requires a non-nil RNG when positive.
	LossProb float64
	// JitterStd adds zero-mean Gaussian jitter to each packet's
	// propagation delay (|delay + noise|, floored at zero), modeling
	// the RTT variation §3.1's requirement (i) says the aggressiveness
	// function's range must absorb. Arrival order is preserved: a FIFO
	// link never reorders, so jittered arrivals are clamped monotone.
	JitterStd sim.Time
	// RNG drives random loss and jitter; per-link so streams are
	// independent.
	RNG *sim.RNG

	busy        bool
	lastArrival sim.Time
	stats       LinkStats
	taps        []Tap
	rec         *telemetry.Recorder
}

// Tap observes every packet the link finishes serializing (before any
// random loss), with the time serialization completed. Bandwidth monitors
// attach here.
type Tap func(now sim.Time, p *Packet)

// NewLink creates a link feeding dst. The queue discipline must not be
// shared between links.
func NewLink(eng *sim.Engine, name string, rate units.Rate, delay sim.Time, queue Queue, dst Receiver) *Link {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: link %s with non-positive rate", name))
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: link %s with negative delay", name))
	}
	l := &Link{eng: eng, name: name, rate: rate, delay: delay, queue: queue, dst: dst}
	queue.SetDropCallback(func(p *Packet) {
		l.stats.PacketsDropped++
		l.rec.Drop(l.eng.Now(), l.name, int(p.Flow), l.queue.Bytes())
	})
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Rate returns the link's serialization rate.
func (l *Link) Rate() units.Rate { return l.rate }

// Delay returns the link's propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// Queue exposes the link's queue discipline (read-mostly; used by tests and
// monitors).
func (l *Link) Queue() Queue { return l.queue }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// AddTap registers an observer for serialized packets.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetTelemetry attaches a recorder: queue drops and ECN marks on this link
// are emitted as events (and counted in the recorder's registry). A nil
// recorder detaches.
func (l *Link) SetTelemetry(rec *telemetry.Recorder) { l.rec = rec }

// Send implements Receiver so that links can be targets of other components
// directly; it enqueues the packet and kicks serialization if idle.
func (l *Link) Send(p *Packet) {
	wasMarked := p.ECNMarked
	if !l.queue.Enqueue(p) {
		return // dropped; counted via the queue's callback
	}
	if l.rec.Enabled() && p.ECNMarked && !wasMarked {
		l.rec.ECNMark(l.eng.Now(), l.name, int(p.Flow), l.queue.Bytes())
	}
	if !l.busy {
		l.startTransmission()
	}
}

// Receive implements Receiver.
func (l *Link) Receive(_ *sim.Engine, p *Packet) { l.Send(p) }

func (l *Link) startTransmission() {
	p := l.queue.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := l.rate.TransmissionTime(int64(p.WireSize()))
	l.eng.After(txTime, func(e *sim.Engine) {
		l.stats.PacketsSent++
		l.stats.BytesSent += int64(p.WireSize())
		for _, tap := range l.taps {
			tap(e.Now(), p)
		}
		if l.LossProb > 0 && l.RNG != nil && l.RNG.Float64() < l.LossProb {
			l.stats.PacketsLost++
		} else {
			delay := l.delay
			if l.JitterStd > 0 && l.RNG != nil {
				delay = l.RNG.NormDuration(l.delay, l.JitterStd, 0)
			}
			arrival := e.Now() + delay
			if arrival <= l.lastArrival {
				arrival = l.lastArrival + 1
			}
			l.lastArrival = arrival
			e.At(arrival, func(e2 *sim.Engine) {
				l.dst.Receive(e2, p)
			})
		}
		l.startTransmission()
	})
}
