package netsim

import (
	"fmt"

	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// LinkStats are cumulative counters for one link.
type LinkStats struct {
	PacketsSent    int64
	PacketsDropped int64
	PacketsLost    int64 // random wire loss (LossProb), distinct from queue drops
	BytesSent      int64
}

// Link is a unidirectional link: packets entering via Send are queued by the
// discipline, serialized one at a time at Rate, and delivered to the
// destination Receiver after the propagation Delay. An optional i.i.d. loss
// probability models a lossy wire for the §5 fairness experiment.
type Link struct {
	eng   *sim.Engine
	name  string
	rate  units.Rate
	delay sim.Time
	queue Queue
	dst   Receiver

	// LossProb is the probability that a serialized packet is lost on
	// the wire. Requires a non-nil RNG when positive.
	LossProb float64
	// JitterStd adds zero-mean Gaussian jitter to each packet's
	// propagation delay (|delay + noise|, floored at zero), modeling
	// the RTT variation §3.1's requirement (i) says the aggressiveness
	// function's range must absorb. Arrival order is preserved: a FIFO
	// link never reorders, so jittered arrivals are clamped monotone.
	JitterStd sim.Time
	// RNG drives random loss and jitter; per-link so streams are
	// independent.
	RNG *sim.RNG

	busy        bool
	lastArrival sim.Time
	stats       LinkStats
	taps        []Tap
	rec         *telemetry.Recorder

	pool    *PacketPool // shared terminal-event recycler (nil: no recycling)
	tx      txDone      // the one in-flight serialization-complete handler
	freeDel *delivery   // free list of propagation-delivery handlers
}

// txDone is the pre-bound serialization-complete handler. A link
// serializes one packet at a time (guarded by busy), so a single record
// embedded in the Link replaces the closure the old code allocated per
// transmission.
type txDone struct {
	l *Link
	p *Packet
}

// HandleEvent implements sim.EventHandler.
func (t *txDone) HandleEvent(e *sim.Engine) {
	p := t.p
	t.p = nil
	t.l.finishTransmission(e, p)
}

// delivery carries one packet across the propagation delay. Multiple
// deliveries are in flight at once (the wire is a pipeline), so these are
// free-listed per link rather than embedded.
type delivery struct {
	l    *Link
	p    *Packet
	next *delivery
}

// HandleEvent implements sim.EventHandler. The record is recycled before
// dispatching: the engine has already released the event, so nothing
// references d, and the receive path may immediately reuse it.
//
//hot
func (d *delivery) HandleEvent(e *sim.Engine) {
	l, p := d.l, d.p
	d.p = nil
	d.next = l.freeDel
	l.freeDel = d
	l.dst.Receive(e, p)
}

// Tap observes every packet the link finishes serializing (before any
// random loss), with the time serialization completed. Bandwidth monitors
// attach here.
type Tap func(now sim.Time, p *Packet)

// NewLink creates a link feeding dst. The queue discipline must not be
// shared between links.
func NewLink(eng *sim.Engine, name string, rate units.Rate, delay sim.Time, queue Queue, dst Receiver) *Link {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: link %s with non-positive rate", name))
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: link %s with negative delay", name))
	}
	l := &Link{eng: eng, name: name, rate: rate, delay: delay, queue: queue, dst: dst}
	l.tx.l = l
	queue.SetDropCallback(func(p *Packet) {
		l.stats.PacketsDropped++
		l.rec.Drop(l.eng.Now(), l.name, int(p.Flow), l.queue.Bytes())
		l.pool.Put(p) // a dropped packet's terminal event
	})
	return l
}

// SetPool attaches the topology's packet recycler: packets dropped by the
// queue or lost on the wire are returned to it. Nil (the default) leaves
// them to the garbage collector.
func (l *Link) SetPool(pp *PacketPool) { l.pool = pp }

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Rate returns the link's serialization rate.
func (l *Link) Rate() units.Rate { return l.rate }

// Delay returns the link's propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// Queue exposes the link's queue discipline (read-mostly; used by tests and
// monitors).
func (l *Link) Queue() Queue { return l.queue }

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// AddTap registers an observer for serialized packets.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetTelemetry attaches a recorder: queue drops and ECN marks on this link
// are emitted as events (and counted in the recorder's registry). A nil
// recorder detaches.
func (l *Link) SetTelemetry(rec *telemetry.Recorder) { l.rec = rec }

// Send implements Receiver so that links can be targets of other components
// directly; it enqueues the packet and kicks serialization if idle.
func (l *Link) Send(p *Packet) {
	wasMarked := p.ECNMarked
	if !l.queue.Enqueue(p) {
		return // dropped; counted via the queue's callback
	}
	if l.rec.Enabled() && p.ECNMarked && !wasMarked {
		l.rec.ECNMark(l.eng.Now(), l.name, int(p.Flow), l.queue.Bytes())
	}
	if !l.busy {
		l.startTransmission()
	}
}

// Receive implements Receiver.
func (l *Link) Receive(_ *sim.Engine, p *Packet) { l.Send(p) }

//hot
func (l *Link) startTransmission() {
	p := l.queue.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := l.rate.TransmissionTime(int64(p.WireSize()))
	l.tx.p = p
	l.eng.AfterHandler(txTime, &l.tx)
}

//hot
func (l *Link) finishTransmission(e *sim.Engine, p *Packet) {
	l.stats.PacketsSent++
	l.stats.BytesSent += int64(p.WireSize())
	for _, tap := range l.taps {
		tap(e.Now(), p)
	}
	if l.LossProb > 0 && l.RNG != nil && l.RNG.Float64() < l.LossProb {
		l.stats.PacketsLost++
		l.pool.Put(p) // lost on the wire: terminal event
	} else {
		delay := l.delay
		if l.JitterStd > 0 && l.RNG != nil {
			delay = l.RNG.NormDuration(l.delay, l.JitterStd, 0)
		}
		arrival := e.Now() + delay
		if arrival <= l.lastArrival {
			arrival = l.lastArrival + 1
		}
		l.lastArrival = arrival
		d := l.freeDel
		if d == nil {
			d = &delivery{l: l}
		} else {
			l.freeDel = d.next
			d.next = nil
		}
		d.p = p
		e.AtHandler(arrival, d)
	}
	l.startTransmission()
}
