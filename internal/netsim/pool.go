package netsim

// PacketPool is an explicit free list of Packet structs. Topologies own
// one pool shared by every host and link, so the per-hop lifecycle
// (sender emit → queue → wire → receiver dispatch) recycles a bounded
// working set instead of allocating each segment.
//
// It is deliberately not a sync.Pool: the simulator is single-threaded
// per engine, and sync.Pool's GC-driven eviction would make allocation
// counts (which the benchmark suite gates on) nondeterministic.
//
// A nil *PacketPool is valid and falls back to plain allocation with no
// recycling — standalone component tests that wire links by hand keep
// the old semantics without any setup.
type PacketPool struct {
	free []*Packet
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, reusing a recycled one when available.
//
//hot
func (pp *PacketPool) Get() *Packet {
	if pp == nil || len(pp.free) == 0 {
		return &Packet{}
	}
	n := len(pp.free) - 1
	p := pp.free[n]
	pp.free[n] = nil
	pp.free = pp.free[:n]
	return p
}

// Put recycles a packet the caller no longer references. The packet is
// zeroed immediately so stale header fields can never leak into a reused
// segment. Exactly one component owns a packet at its terminal event
// (endpoint dispatch, queue drop, or wire loss); only that owner may Put.
//
//hot
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	*p = Packet{}
	pp.free = append(pp.free, p)
}
