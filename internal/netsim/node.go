package netsim

import (
	"fmt"

	"mltcp/internal/sim"
)

// Switch forwards packets by destination NodeID over per-destination links.
type Switch struct {
	id     NodeID
	name   string
	routes map[NodeID]*Link
}

// NewSwitch creates an empty switch.
func NewSwitch(id NodeID, name string) *Switch {
	return &Switch{id: id, name: name, routes: make(map[NodeID]*Link)}
}

// ID returns the switch's node ID.
func (s *Switch) ID() NodeID { return s.id }

// AddRoute directs traffic for dst out of the given link. Later calls for
// the same destination replace the route.
func (s *Switch) AddRoute(dst NodeID, l *Link) { s.routes[dst] = l }

// Receive implements Receiver.
func (s *Switch) Receive(_ *sim.Engine, p *Packet) {
	l, ok := s.routes[p.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: switch %s has no route to node %d (flow %d)", s.name, p.Dst, p.Flow))
	}
	l.Send(p)
}

// Endpoint is a transport-layer attachment on a host: the host dispatches
// arriving packets for the endpoint's flow to it.
type Endpoint interface {
	HandlePacket(eng *sim.Engine, p *Packet)
}

// Host is an end node. Outbound packets go out its uplink; inbound packets
// are dispatched to the endpoint registered for their flow.
type Host struct {
	id        NodeID
	name      string
	uplink    *Link
	endpoints map[FlowID]Endpoint
	pool      *PacketPool // shared with the topology; nil disables recycling
}

// NewHost creates a host. The uplink is attached later with SetUplink so
// hosts and links (which need a destination Receiver) can be built in
// either order.
func NewHost(id NodeID, name string) *Host {
	return &Host{id: id, name: name, endpoints: make(map[FlowID]Endpoint)}
}

// ID returns the host's node ID.
func (h *Host) ID() NodeID { return h.id }

// Name returns the host's diagnostic name.
func (h *Host) Name() string { return h.name }

// SetUplink attaches the host's outbound link.
func (h *Host) SetUplink(l *Link) { h.uplink = l }

// Uplink returns the host's outbound link.
func (h *Host) Uplink() *Link { return h.uplink }

// SetPool attaches the topology's packet recycler. Endpoints obtain
// outbound packets from NewPacket and the host returns every dispatched
// inbound packet to the pool.
func (h *Host) SetPool(pp *PacketPool) { h.pool = pp }

// NewPacket returns a zeroed packet for an endpoint to populate and Send,
// drawn from the topology pool when one is attached.
//
//hot
func (h *Host) NewPacket() *Packet { return h.pool.Get() }

// Attach registers the endpoint handling the given flow. Attaching a second
// endpoint for the same flow panics: it is always a wiring bug.
func (h *Host) Attach(flow FlowID, ep Endpoint) {
	if _, dup := h.endpoints[flow]; dup {
		panic(fmt.Sprintf("netsim: host %s already has an endpoint for flow %d", h.name, flow))
	}
	h.endpoints[flow] = ep
}

// Send transmits a packet out the host's uplink, stamping the source.
func (h *Host) Send(p *Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netsim: host %s has no uplink", h.name))
	}
	p.Src = h.id
	h.uplink.Send(p)
}

// Receive implements Receiver, dispatching to the flow's endpoint. Packets
// for unknown flows panic: the simulator never produces stray traffic, so
// an unknown flow is a wiring bug. Dispatch is a packet's terminal event:
// endpoints consume fields synchronously and never retain the struct, so
// it is recycled as soon as HandlePacket returns.
//
//hot
func (h *Host) Receive(eng *sim.Engine, p *Packet) {
	ep, ok := h.endpoints[p.Flow]
	if !ok {
		h.panicUnknownFlow(p)
	}
	ep.HandlePacket(eng, p)
	h.pool.Put(p)
}

// panicUnknownFlow keeps the panic formatting (whose fmt arguments box)
// out of the //hot dispatch body.
func (h *Host) panicUnknownFlow(p *Packet) {
	panic(fmt.Sprintf("netsim: host %s received packet for unknown flow %d", h.name, p.Flow))
}
