package netsim

import (
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// QueueMonitor samples a link's queue occupancy at a fixed interval —
// the instrument behind "DCTCP/Swift keep the queue short" style results.
// It is a thin adapter over the telemetry sampler: each sample is
// optionally forwarded to a Recorder as a KindQueue event.
type QueueMonitor struct {
	samples []int64
}

// NewQueueMonitor samples the link's queue every interval from `from`
// until `until` (exclusive).
func NewQueueMonitor(eng *sim.Engine, l *Link, interval, from, until sim.Time) *QueueMonitor {
	return NewQueueSampler(eng, l, interval, from, until, nil)
}

// NewQueueSampler is NewQueueMonitor with a telemetry recorder: every
// sample is also emitted as a queue-occupancy event on the link (a nil
// recorder makes it identical to NewQueueMonitor).
func NewQueueSampler(eng *sim.Engine, l *Link, interval, from, until sim.Time, rec *telemetry.Recorder) *QueueMonitor {
	if interval <= 0 {
		panic("netsim: queue monitor interval must be positive")
	}
	if until <= from {
		panic("netsim: queue monitor window is empty")
	}
	m := &QueueMonitor{}
	for ts := from; ts < until; ts += interval {
		eng.At(ts, func(e *sim.Engine) {
			q := l.Queue()
			m.samples = append(m.samples, q.Bytes())
			rec.QueueSample(e.Now(), l.Name(), q.Bytes(), q.Len())
		})
	}
	return m
}

// Samples returns the recorded occupancies in bytes.
func (m *QueueMonitor) Samples() []int64 { return m.samples }

// Max returns the largest sample (0 when empty).
func (m *QueueMonitor) Max() int64 {
	var mx int64
	for _, s := range m.samples {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Mean returns the average occupancy in bytes (0 when empty).
func (m *QueueMonitor) Mean() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range m.samples {
		sum += s
	}
	return float64(sum) / float64(len(m.samples))
}
