package netsim

import (
	"testing"
	"testing/quick"
)

func dataPkt(flow FlowID, payload int, prio int64) *Packet {
	return &Packet{Flow: flow, Payload: payload, Prio: prio}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(10 * DefaultMTU)
	for i := 0; i < 3; i++ {
		if !q.Enqueue(dataPkt(FlowID(i), 100, 0)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := 0; i < 3; i++ {
		p := q.Dequeue()
		if p == nil || p.Flow != FlowID(i) {
			t.Fatalf("dequeue %d = %v, want flow %d", i, p, i)
		}
	}
	if q.Dequeue() != nil {
		t.Error("dequeue of empty queue returned a packet")
	}
}

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(2 * DefaultMTU)
	drops := 0
	q.SetDropCallback(func(*Packet) { drops++ })
	full := dataPkt(1, MaxPayload, 0)
	if !q.Enqueue(full) || !q.Enqueue(dataPkt(1, MaxPayload, 0)) {
		t.Fatal("first two MTU packets rejected")
	}
	if q.Enqueue(dataPkt(1, MaxPayload, 0)) {
		t.Error("third packet accepted beyond capacity")
	}
	if drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
	if q.Len() != 2 || q.Bytes() != 2*DefaultMTU {
		t.Errorf("Len=%d Bytes=%d, want 2/%d", q.Len(), q.Bytes(), 2*DefaultMTU)
	}
}

func TestDropTailByteAccounting(t *testing.T) {
	q := NewDropTail(100 * DefaultMTU)
	q.Enqueue(dataPkt(1, 500, 0))
	q.Enqueue(dataPkt(1, 960, 0))
	want := int64(500+HeaderBytes) + int64(960+HeaderBytes)
	if q.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", q.Bytes(), want)
	}
	q.Dequeue()
	if q.Bytes() != int64(960+HeaderBytes) {
		t.Errorf("Bytes after dequeue = %d", q.Bytes())
	}
}

func TestECNQueueMarksOverThreshold(t *testing.T) {
	q := NewECNQueue(NewDropTail(100*DefaultMTU), 2*DefaultMTU)
	// Below threshold: no mark.
	p1 := dataPkt(1, MaxPayload, 0)
	p1.ECNCapable = true
	q.Enqueue(p1)
	if p1.ECNMarked {
		t.Error("packet marked below threshold")
	}
	p2 := dataPkt(1, MaxPayload, 0)
	p2.ECNCapable = true
	q.Enqueue(p2)
	if p2.ECNMarked {
		t.Error("packet marked below threshold (1 queued)")
	}
	// Now occupancy = 2 MTU >= threshold: mark.
	p3 := dataPkt(1, MaxPayload, 0)
	p3.ECNCapable = true
	q.Enqueue(p3)
	if !p3.ECNMarked {
		t.Error("packet not marked at threshold")
	}
	// Non-capable packets are never marked.
	p4 := dataPkt(1, MaxPayload, 0)
	q.Enqueue(p4)
	if p4.ECNMarked {
		t.Error("non-ECN-capable packet marked")
	}
}

func TestPFabricDequeuesSmallestRemaining(t *testing.T) {
	q := NewPFabricQueue(100 * DefaultMTU)
	q.Enqueue(dataPkt(1, 100, 5000))
	q.Enqueue(dataPkt(2, 100, 100))
	q.Enqueue(dataPkt(3, 100, 2000))
	order := []FlowID{2, 3, 1}
	for _, want := range order {
		p := q.Dequeue()
		if p.Flow != want {
			t.Fatalf("dequeue = flow %d, want %d", p.Flow, want)
		}
	}
}

func TestPFabricFIFOAmongEqualPriority(t *testing.T) {
	q := NewPFabricQueue(100 * DefaultMTU)
	for i := 0; i < 5; i++ {
		p := dataPkt(7, 100, 1000)
		p.Seq = int64(i)
		q.Enqueue(p)
	}
	for i := 0; i < 5; i++ {
		if p := q.Dequeue(); p.Seq != int64(i) {
			t.Fatalf("equal-priority order broken: got seq %d, want %d", p.Seq, i)
		}
	}
}

func TestPFabricPreemptiveDrop(t *testing.T) {
	q := NewPFabricQueue(2 * DefaultMTU)
	var dropped []FlowID
	q.SetDropCallback(func(p *Packet) { dropped = append(dropped, p.Flow) })
	q.Enqueue(dataPkt(1, MaxPayload, 9000)) // big remaining
	q.Enqueue(dataPkt(2, MaxPayload, 100))  // urgent
	// Queue full. An even more urgent arrival must evict flow 1.
	if !q.Enqueue(dataPkt(3, MaxPayload, 50)) {
		t.Fatal("urgent arrival rejected; should evict the least-urgent queued packet")
	}
	if len(dropped) != 1 || dropped[0] != 1 {
		t.Fatalf("dropped = %v, want [1]", dropped)
	}
	// A less urgent arrival than everything queued is itself dropped.
	if q.Enqueue(dataPkt(4, MaxPayload, 99999)) {
		t.Error("least-urgent arrival accepted into a full queue")
	}
	if got := q.Dequeue().Flow; got != 3 {
		t.Errorf("head = flow %d, want 3", got)
	}
}

func TestStrictPriorityBands(t *testing.T) {
	q := NewStrictPriorityQueue(3, 100*DefaultMTU)
	low := dataPkt(1, 100, 0)
	low.Band = 2
	mid := dataPkt(2, 100, 0)
	mid.Band = 1
	high := dataPkt(3, 100, 0)
	high.Band = 0
	q.Enqueue(low)
	q.Enqueue(mid)
	q.Enqueue(high)
	for _, want := range []FlowID{3, 2, 1} {
		if p := q.Dequeue(); p.Flow != want {
			t.Fatalf("got flow %d, want %d", p.Flow, want)
		}
	}
}

func TestStrictPriorityBandClamping(t *testing.T) {
	q := NewStrictPriorityQueue(2, 100*DefaultMTU)
	p := dataPkt(1, 100, 0)
	p.Band = 99
	if !q.Enqueue(p) {
		t.Fatal("out-of-range band rejected")
	}
	neg := dataPkt(2, 100, 0)
	neg.Band = -1
	q.Enqueue(neg)
	if got := q.Dequeue().Flow; got != 2 {
		t.Errorf("negative band should clamp to band 0 (highest), got flow %d first", got)
	}
}

func TestStrictPriorityOverflow(t *testing.T) {
	q := NewStrictPriorityQueue(2, 1*DefaultMTU)
	drops := 0
	q.SetDropCallback(func(*Packet) { drops++ })
	q.Enqueue(dataPkt(1, MaxPayload, 0))
	if q.Enqueue(dataPkt(2, MaxPayload, 0)) {
		t.Error("overflow packet accepted")
	}
	if drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
}

// Property: for any enqueue pattern within capacity, pFabric conserves
// packets and Bytes() matches the sum of queued wire sizes.
func TestPFabricConservationProperty(t *testing.T) {
	prop := func(prios []uint16) bool {
		q := NewPFabricQueue(1 << 30)
		for i, pr := range prios {
			q.Enqueue(dataPkt(FlowID(i), 100, int64(pr)))
		}
		if q.Len() != len(prios) {
			return false
		}
		var want int64 = int64(len(prios)) * int64(100+HeaderBytes)
		if q.Bytes() != want {
			return false
		}
		// Dequeue all: priorities must come out nondecreasing.
		last := int64(-1)
		for q.Len() > 0 {
			p := q.Dequeue()
			if p.Prio < last {
				return false
			}
			last = p.Prio
		}
		return q.Bytes() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQueueConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"droptail-zero":  func() { NewDropTail(0) },
		"pfabric-zero":   func() { NewPFabricQueue(0) },
		"strict-0-bands": func() { NewStrictPriorityQueue(0, 100) },
		"strict-0-cap":   func() { NewStrictPriorityQueue(2, 0) },
		"ecn-0-thresh":   func() { NewECNQueue(NewDropTail(1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
