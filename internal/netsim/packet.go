// Package netsim is a packet-level network simulator: hosts and switches
// connected by unidirectional links with finite rate, propagation delay, and
// a pluggable queue discipline (drop-tail FIFO, pFabric remaining-size
// priority, strict-priority bands for PIAS, with optional ECN marking and
// random loss). It provides the substrate over which the transport layer
// (internal/tcp) and MLTCP (internal/core) run.
package netsim

import "mltcp/internal/sim"

// HeaderBytes is the protocol overhead carried by every packet (IP + TCP
// headers, as on the paper's testbed with a 1500-byte MTU).
const HeaderBytes = 40

// DefaultMTU is the maximum packet size on the wire, matching Algorithm 1's
// MTU constant.
const DefaultMTU = 1500

// MaxPayload is the data payload that fits in one MTU-sized packet.
const MaxPayload = DefaultMTU - HeaderBytes

// NodeID identifies a host or switch within one topology.
type NodeID int

// FlowID identifies a transport flow end to end. IDs are assigned by the
// transport layer and are unique within a simulation.
type FlowID int

// Packet is a simulated segment. Packets are allocated per transmission and
// never mutated after being handed to a link, except by explicit queue
// disciplines (ECN marking).
type Packet struct {
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Seq is the byte offset of the first payload byte (data packets).
	Seq int64
	// Payload is the number of data bytes carried (0 for pure ACKs).
	Payload int
	// Ack indicates a pure acknowledgment.
	Ack bool
	// AckNo is the cumulative acknowledgment: the next byte expected.
	AckNo int64
	// AckedPackets is the number of full packets newly acknowledged by
	// this ACK, the num_acks input to Algorithm 1 (cumulative ACKs may
	// cover several packets).
	AckedPackets int

	// Prio is the scheduling priority used by priority queue disciplines.
	// For pFabric it is the flow's remaining bytes in the current
	// iteration: lower values dequeue first.
	Prio int64
	// Band is the strict-priority band for PIAS-style MLFQ tagging
	// (0 = highest priority).
	Band int

	// ECNCapable marks the flow as ECN-capable; only such packets are
	// marked rather than dropped by ECN-enabled queues.
	ECNCapable bool
	// ECNMarked is set by a queue whose occupancy exceeded its marking
	// threshold (congestion experienced).
	ECNMarked bool
	// ECNEcho is set on ACKs echoing a mark back to the sender.
	ECNEcho bool

	// SentAt is the time the sender originated the packet; the receiver
	// copies it into the ACK so the sender can measure RTT without a
	// global map.
	SentAt sim.Time
}

// WireSize returns the packet's size on the wire in bytes.
func (p *Packet) WireSize() int { return p.Payload + HeaderBytes }

// Receiver is anything that can accept a delivered packet: hosts, switches,
// and transport endpoints all implement it.
type Receiver interface {
	Receive(eng *sim.Engine, p *Packet)
}
