package netsim

// Queue is an egress queue discipline for a link. Enqueue reports whether
// the packet was accepted; a false return means it was dropped. Dequeue
// returns nil when empty. Disciplines with preemptive drop (pFabric) may
// evict an already-queued packet instead of the arriving one; such evictions
// are reported through the Dropped callback so link statistics stay
// accurate.
type Queue interface {
	Enqueue(p *Packet) bool
	Dequeue() *Packet
	Len() int
	Bytes() int64
	// SetDropCallback installs a function invoked for every packet the
	// discipline drops, whether arriving or evicted.
	SetDropCallback(func(*Packet))
}

// pktRing is a growable circular FIFO of packets. Unlike the slice-append /
// reslice idiom (`q.pkts = q.pkts[1:]`), the backing array is reused in
// place, so a steady-state queue performs zero allocations: capacity grows
// to the high-water mark once and every later push lands in a recycled
// slot. Capacity is kept a power of two so the wrap is a mask.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

//hot
func (r *pktRing) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *pktRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

//hot
func (r *pktRing) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) len() int { return r.n }

// DropTail is the classic FIFO queue with a byte capacity: arriving packets
// that do not fit are dropped.
type DropTail struct {
	capacity int64
	bytes    int64
	pkts     pktRing
	onDrop   func(*Packet)
}

// NewDropTail returns a FIFO queue holding at most capacity bytes.
func NewDropTail(capacity int64) *DropTail {
	if capacity <= 0 {
		panic("netsim: DropTail capacity must be positive")
	}
	return &DropTail{capacity: capacity}
}

// Enqueue implements Queue.
//
//hot
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+int64(p.WireSize()) > q.capacity {
		q.drop(p)
		return false
	}
	q.pkts.push(p)
	q.bytes += int64(p.WireSize())
	return true
}

// Dequeue implements Queue.
//
//hot
func (q *DropTail) Dequeue() *Packet {
	p := q.pkts.pop()
	if p == nil {
		return nil
	}
	q.bytes -= int64(p.WireSize())
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return q.pkts.len() }

// Bytes implements Queue.
func (q *DropTail) Bytes() int64 { return q.bytes }

// SetDropCallback implements Queue.
func (q *DropTail) SetDropCallback(fn func(*Packet)) { q.onDrop = fn }

func (q *DropTail) drop(p *Packet) {
	if q.onDrop != nil {
		q.onDrop(p)
	}
}

// ECNQueue wraps another queue with DCTCP-style threshold marking: a packet
// admitted while the instantaneous queue occupancy exceeds the threshold is
// marked (if ECN-capable).
type ECNQueue struct {
	Queue
	threshold int64
}

// NewECNQueue wraps inner with a marking threshold in bytes.
func NewECNQueue(inner Queue, threshold int64) *ECNQueue {
	if threshold <= 0 {
		panic("netsim: ECN threshold must be positive")
	}
	return &ECNQueue{Queue: inner, threshold: threshold}
}

// Enqueue implements Queue, marking over-threshold arrivals.
func (q *ECNQueue) Enqueue(p *Packet) bool {
	if p.ECNCapable && q.Bytes() >= q.threshold {
		p.ECNMarked = true
	}
	return q.Queue.Enqueue(p)
}

// PFabricQueue implements pFabric's switch behaviour: dequeue the packet
// with the lowest priority value (remaining flow size, so shortest-
// remaining-first), FIFO among equal priorities, and on overflow drop the
// packet with the highest priority value — possibly evicting a queued
// packet to admit a more urgent arrival.
type PFabricQueue struct {
	capacity int64
	bytes    int64
	pkts     []*Packet // kept in arrival order; scans are O(n), queues are small
	onDrop   func(*Packet)
}

// NewPFabricQueue returns a pFabric priority queue with a byte capacity.
func NewPFabricQueue(capacity int64) *PFabricQueue {
	if capacity <= 0 {
		panic("netsim: PFabricQueue capacity must be positive")
	}
	return &PFabricQueue{capacity: capacity}
}

// Enqueue implements Queue with preemptive drop of the least-urgent packet.
func (q *PFabricQueue) Enqueue(p *Packet) bool {
	q.pkts = append(q.pkts, p)
	q.bytes += int64(p.WireSize())
	accepted := true
	for q.bytes > q.capacity {
		// Evict the packet with the largest remaining size (latest
		// arrival among ties, so earlier packets of the same flow
		// survive).
		worst := 0
		for i, c := range q.pkts {
			if c.Prio >= q.pkts[worst].Prio {
				worst = i
			}
		}
		victim := q.pkts[worst]
		q.pkts = append(q.pkts[:worst], q.pkts[worst+1:]...)
		q.bytes -= int64(victim.WireSize())
		if victim == p {
			accepted = false
		}
		if q.onDrop != nil {
			q.onDrop(victim)
		}
	}
	return accepted
}

// Dequeue implements Queue: lowest Prio first, FIFO among equals.
func (q *PFabricQueue) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	best := 0
	for i, c := range q.pkts {
		if c.Prio < q.pkts[best].Prio {
			best = i
		}
	}
	p := q.pkts[best]
	q.pkts = append(q.pkts[:best], q.pkts[best+1:]...)
	q.bytes -= int64(p.WireSize())
	return p
}

// Len implements Queue.
func (q *PFabricQueue) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *PFabricQueue) Bytes() int64 { return q.bytes }

// SetDropCallback implements Queue.
func (q *PFabricQueue) SetDropCallback(fn func(*Packet)) { q.onDrop = fn }

// StrictPriorityQueue implements PIAS-style strict priority with K bands:
// band 0 always dequeues before band 1, and so on; FIFO within a band. The
// byte capacity is shared; overflow drops the arriving packet.
type StrictPriorityQueue struct {
	capacity int64
	bytes    int64
	bands    []pktRing
	onDrop   func(*Packet)
}

// NewStrictPriorityQueue returns a strict-priority queue with the given
// number of bands and shared byte capacity.
func NewStrictPriorityQueue(bands int, capacity int64) *StrictPriorityQueue {
	if bands <= 0 {
		panic("netsim: StrictPriorityQueue needs at least one band")
	}
	if capacity <= 0 {
		panic("netsim: StrictPriorityQueue capacity must be positive")
	}
	return &StrictPriorityQueue{capacity: capacity, bands: make([]pktRing, bands)}
}

// Enqueue implements Queue. Packets with out-of-range bands are clamped to
// the lowest-priority band rather than dropped, since band assignment is a
// host-side tagging policy.
//
//hot
func (q *StrictPriorityQueue) Enqueue(p *Packet) bool {
	if q.bytes+int64(p.WireSize()) > q.capacity {
		if q.onDrop != nil {
			q.onDrop(p)
		}
		return false
	}
	b := p.Band
	if b < 0 {
		b = 0
	}
	if b >= len(q.bands) {
		b = len(q.bands) - 1
	}
	q.bands[b].push(p)
	q.bytes += int64(p.WireSize())
	return true
}

// Dequeue implements Queue.
//
//hot
func (q *StrictPriorityQueue) Dequeue() *Packet {
	for b := range q.bands {
		if p := q.bands[b].pop(); p != nil {
			q.bytes -= int64(p.WireSize())
			return p
		}
	}
	return nil
}

// Len implements Queue.
func (q *StrictPriorityQueue) Len() int {
	n := 0
	for i := range q.bands {
		n += q.bands[i].len()
	}
	return n
}

// Bytes implements Queue.
func (q *StrictPriorityQueue) Bytes() int64 { return q.bytes }

// SetDropCallback implements Queue.
func (q *StrictPriorityQueue) SetDropCallback(fn func(*Packet)) { q.onDrop = fn }
