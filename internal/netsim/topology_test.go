package netsim

import (
	"testing"

	"mltcp/internal/sim"
	"mltcp/internal/units"
)

// echoEndpoint counts received data packets and acks nothing.
type echoEndpoint struct {
	got int
	eng *sim.Engine
}

func (e *echoEndpoint) HandlePacket(_ *sim.Engine, p *Packet) { e.got++ }

func testDumbbell(eng *sim.Engine, pairs int) *Dumbbell {
	return NewDumbbell(eng, DumbbellConfig{
		HostPairs:       pairs,
		HostRate:        10 * units.Gbps,
		BottleneckRate:  1 * units.Gbps,
		HostDelay:       5 * sim.Microsecond,
		BottleneckDelay: 20 * sim.Microsecond,
	})
}

func TestDumbbellForwardDelivery(t *testing.T) {
	eng := sim.New()
	d := testDumbbell(eng, 2)
	ep := &echoEndpoint{}
	d.Right[1].Attach(42, ep)
	d.Left[0].Send(&Packet{Flow: 42, Dst: d.Right[1].ID(), Payload: 1000})
	eng.Run()
	if ep.got != 1 {
		t.Fatalf("endpoint received %d packets, want 1", ep.got)
	}
	if d.Forward.Stats().PacketsSent != 1 {
		t.Errorf("bottleneck carried %d packets, want 1", d.Forward.Stats().PacketsSent)
	}
}

func TestDumbbellReverseDelivery(t *testing.T) {
	eng := sim.New()
	d := testDumbbell(eng, 1)
	ep := &echoEndpoint{}
	d.Left[0].Attach(7, ep)
	d.Right[0].Send(&Packet{Flow: 7, Dst: d.Left[0].ID(), Ack: true})
	eng.Run()
	if ep.got != 1 {
		t.Fatalf("left endpoint received %d, want 1", ep.got)
	}
	if d.Reverse.Stats().PacketsSent != 1 {
		t.Errorf("reverse bottleneck carried %d, want 1", d.Reverse.Stats().PacketsSent)
	}
}

func TestDumbbellEndToEndLatency(t *testing.T) {
	eng := sim.New()
	d := testDumbbell(eng, 1)
	var arrival sim.Time
	done := func(e *sim.Engine, p *Packet) { arrival = e.Now() }
	d.Right[0].Attach(1, endpointFunc(done))
	d.Left[0].Send(&Packet{Flow: 1, Dst: d.Right[0].ID(), Payload: MaxPayload})
	eng.Run()
	// Path: host uplink (10G: 1.2µs + 5µs) -> bottleneck (1G: 12µs +
	// 20µs) -> host downlink (10G: 1.2µs + 5µs) = 44.4µs.
	want := sim.Time(44400)
	if arrival != want {
		t.Errorf("arrival = %v, want %v", arrival, want)
	}
}

type endpointFunc func(*sim.Engine, *Packet)

func (f endpointFunc) HandlePacket(e *sim.Engine, p *Packet) { f(e, p) }

func TestDumbbellSharedBottleneck(t *testing.T) {
	eng := sim.New()
	d := testDumbbell(eng, 3)
	for i := 0; i < 3; i++ {
		d.Right[i].Attach(FlowID(i), &echoEndpoint{})
	}
	// All three left hosts blast packets; everything funnels through the
	// single forward bottleneck.
	for i := 0; i < 3; i++ {
		for k := 0; k < 10; k++ {
			d.Left[i].Send(&Packet{Flow: FlowID(i), Dst: d.Right[i].ID(), Payload: 1000})
		}
	}
	eng.Run()
	if got := d.Forward.Stats().PacketsSent; got != 30 {
		t.Errorf("bottleneck carried %d packets, want 30", got)
	}
}

func TestHostAttachDuplicatePanics(t *testing.T) {
	h := NewHost(1, "h")
	h.Attach(1, &echoEndpoint{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	h.Attach(1, &echoEndpoint{})
}

func TestHostUnknownFlowPanics(t *testing.T) {
	eng := sim.New()
	h := NewHost(1, "h")
	defer func() {
		if recover() == nil {
			t.Error("unknown flow did not panic")
		}
	}()
	h.Receive(eng, &Packet{Flow: 99})
}

func TestSwitchNoRoutePanics(t *testing.T) {
	eng := sim.New()
	s := NewSwitch(1, "s")
	defer func() {
		if recover() == nil {
			t.Error("missing route did not panic")
		}
	}()
	s.Receive(eng, &Packet{Dst: 5})
}

func TestDumbbellConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero host pairs did not panic")
		}
	}()
	NewDumbbell(sim.New(), DumbbellConfig{HostPairs: 0, HostRate: 1, BottleneckRate: 1})
}
