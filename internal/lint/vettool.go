// The `go vet -vettool` driver. cmd/go invokes a vettool in two ways:
//
//	tool -V=full            # version string, used as the cache key
//	tool [flags] pkg.cfg    # analyze one package described by a JSON config
//
// This file implements that protocol (the same one x/tools' unitchecker
// speaks) so the suite runs under `go vet -vettool=$(which mltcp-lint)`
// with vet's caching and package graph, in addition to the standalone
// `mltcp-lint ./...` driver in load.go.

package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON config cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VettoolArgs reports whether the process was invoked by `go vet`: the
// -V=full version query, the -flags capability query, or a single *.cfg
// argument naming the package to analyze.
func VettoolArgs(args []string) bool {
	if len(args) != 1 {
		return false
	}
	return args[0] == "-V=full" || args[0] == "-flags" || strings.HasSuffix(args[0], ".cfg")
}

// VettoolMain handles a `go vet` invocation and returns the process exit
// code: 0 for success, 1 for driver errors, 2 when diagnostics were
// reported (vet's convention).
func VettoolMain(progname string, args []string, analyzers []*Analyzer, stdout, stderr io.Writer) int {
	if args[0] == "-V=full" {
		// cmd/go folds this line into its action cache key. A "devel"
		// version must carry buildID=<content hash of the executable>,
		// so rebuilding the tool invalidates vet's cache.
		id, err := executableID()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s version devel buildID=%s\n", progname, id)
		return 0
	}
	if args[0] == "-flags" {
		// cmd/go asks which flags the tool supports so it can forward
		// vet's own; this suite defines none.
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	diags, err := vetPackage(args[0], analyzers)
	if err != nil {
		if err == errTypecheckTolerated {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}

// executableID returns a hex content hash of the running binary, the
// cache-busting component of the -V=full version line.
func executableID() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", fmt.Errorf("lint: locating executable: %w", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", fmt.Errorf("lint: opening executable: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("lint: hashing executable: %w", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// errTypecheckTolerated signals a type-check failure on a package whose
// config asked for success anyway (cmd/go sets SucceedOnTypecheckFailure
// for packages it knows are incomplete).
var errTypecheckTolerated = fmt.Errorf("lint: tolerated type-check failure")

func vetPackage(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("lint: reading vet config: %w", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing vet config %s: %w", cfgPath, err)
	}

	// Facts input: merge the vetx files of every dependency cmd/go
	// lists. A dependency vetted by an older tool build decodes as an
	// empty store (DecodeFacts accepts empty input), so mixed caches
	// degrade to fewer facts, never to errors.
	store := NewFactStore()
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("lint: reading facts for %s: %w", path, err)
		}
		dep, err := DecodeFacts(data)
		if err != nil {
			return nil, fmt.Errorf("lint: facts for %s: %w", path, err)
		}
		store.Merge(dep)
	}

	base := cfg.ImportPath
	if i := strings.Index(base, " ["); i >= 0 {
		base = base[:i]
	}
	if !modulePath(base) {
		// Non-module packages carry no facts: write the empty stub
		// downstream invocations expect and skip straight out of
		// facts-only mode (stdlib sources may not even parse cleanly
		// with a plain go/parser pass).
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				return nil, fmt.Errorf("lint: writing vetx output: %w", err)
			}
		}
		if cfg.VetxOnly {
			return nil, nil
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, tolerate(&cfg)
			}
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	// Import resolution: source import path -> canonical package ->
	// export data file, as recorded by cmd/go in the config.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}
	imp := ExportImporter(fset, exports)
	pkg, info, soft, err := Check(fset, imp, cfg.ImportPath, files)
	if err != nil || len(soft) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, tolerate(&cfg)
		}
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("lint: type-checking %s: %v", cfg.ImportPath, soft[0])
	}

	// Facts output: the package's own summary plus everything imported,
	// re-exported so transitive facts survive even if cmd/go hands a
	// dependent only its direct deps' vetx files. Encode is sorted and
	// canonical, so repeated runs write byte-identical files — vet's
	// action cache depends on that.
	if modulePath(base) {
		Summarize(fset, files, pkg, info, store)
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, store.Encode(), 0o666); err != nil {
				return nil, fmt.Errorf("lint: writing vetx output: %w", err)
			}
		}
		if cfg.VetxOnly {
			return nil, nil
		}
	}
	return AnalyzeFacts(fset, files, pkg, info, analyzers, store)
}

// tolerate honors SucceedOnTypecheckFailure: the vetx stub must still
// be written so downstream invocations find their input file.
func tolerate(cfg *vetConfig) error {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return fmt.Errorf("lint: writing vetx output: %w", err)
		}
	}
	return errTypecheckTolerated
}
