// HotCall: the interprocedural successor to hotalloc. The leaf half is
// identical — closure literals and interface boxing inside a //hot
// function, reported with hotalloc's exact messages — so every finding
// hotalloc's fixtures pin is reproduced (the superset is proven by
// TestHotCallSupersetOfHotAlloc). On top, hotcall consults the fact
// store: a //hot function calling a module function that carries
// FactAllocates — anywhere in the repo, any number of hops away — is
// flagged with the allocation's witness chain. A //lint:allow at the
// allocating leaf kills the fact and therefore every transitive
// finding, which keeps the audit at one justified marker per cold site.

package lint

import (
	"go/ast"
	"go/types"
)

// HotCall enforces the allocation-free discipline for //hot functions
// across call boundaries.
var HotCall = &Analyzer{
	Name: "hotcall",
	Doc: `keep //hot functions allocation-free, transitively

The leaf rules are hotalloc's: no closure literals, no value-to-
interface boxing inside a //hot function. Additionally, calling a
module function whose fact store entry says it allocates per call
(directly or through its own callees) is flagged, with the witness
chain pointing at the root allocation. Justify genuinely cold sites
with //lint:allow hotcall at the allocating line — the suppression
removes the fact, so callers are cleared too.`,
	AppliesTo: isHotPathPackage,
	Run:       runHotCall,
}

func runHotCall(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotMarked(fd) {
				continue
			}
			reportAllocSites(pass, fd)

			selfKey := ""
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				selfKey = FuncKey(fn)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// The literal is already a leaf finding; its body
					// runs as a different function.
					return false
				case *ast.CallExpr:
					f := funcObj(pass.TypesInfo, n)
					if f == nil || !moduleFunc(f) || FuncKey(f) == selfKey {
						return true
					}
					fact := pass.Facts.Lookup(f)
					if fact.Flags.Has(FactAllocates) {
						pass.Reportf(n.Pos(),
							"//hot function %s calls %s, which allocates per call (%s); make the callee allocation-free or lift the call off the hot path",
							fd.Name.Name, shortFuncName(f), fact.AllocWhy)
					}
				}
				return true
			})
		}
	}
	return nil
}
