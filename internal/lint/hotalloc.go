package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotAllocPaths are the packages whose //hot-marked functions form the
// simulator's dispatch-rate-critical path: the event engine, the fluid
// integrator, and the packet fabric.
var hotAllocPaths = []string{
	"mltcp/internal/sim",
	"mltcp/internal/fluid",
	"mltcp/internal/netsim",
}

// HotAlloc enforces the hot-path allocation discipline: functions marked
// with a standalone `//hot` doc-comment line must not allocate per call.
// The two allocation shapes the compiler cannot always elide — and which
// this repo's refactors specifically removed — are closure literals
// (each evaluation heap-allocates the captured environment) and value-to-
// interface conversions (boxing copies the value to the heap). Pointer,
// map, channel, and func values convert without allocating, so passing
// `&handler` into an interface parameter stays clean.
//
// The check is syntactic per call site, deliberately stricter than the
// escape analyzer: a finding on a genuinely cold line inside a hot
// function (panic formatting, error paths) is justified with
// `//lint:allow hotalloc <reason>` rather than restructured.
//
// HotAlloc is retired from the default roster: hotcall reports the same
// leaf findings and additionally follows calls through the fact store,
// so it strictly supersedes this analyzer (proven by test). The
// definition stays as the leaf-case reference and fixture anchor.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `keep //hot functions allocation-free

Functions whose doc comment contains a standalone //hot line are on the
per-event dispatch path. Closure literals and non-pointer value-to-
interface conversions inside them allocate on every call; hoist captured
state into a pre-bound handler struct, or pass pointers. Cold lines
inside hot functions (panic messages) carry a justified //lint:allow.`,
	AppliesTo: isHotPathPackage,
	Run:       runHotAlloc,
}

func isHotPathPackage(path string) bool {
	for _, p := range hotAllocPaths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotMarked(fd) {
				continue
			}
			reportAllocSites(pass, fd)
		}
	}
	return nil
}

// hotMarked reports whether the function's doc comment contains a
// standalone //hot line (the convention: last line of the doc block).
func hotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//hot" {
			return true
		}
	}
	return false
}

// reportAllocSites emits the leaf allocation findings for one //hot
// function; shared by hotalloc (whose whole job this is) and hotcall
// (which layers call-graph propagation on top).
func reportAllocSites(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	forEachAllocSite(pass.TypesInfo, fd.Body, func(s allocSite) {
		switch s.kind {
		case allocClosure:
			pass.Reportf(s.pos,
				"closure literal in //hot function %s allocates its capture environment per call; hoist state into a pre-bound handler struct", name)
		case allocConvert:
			pass.Reportf(s.pos,
				"%s in //hot function %s boxes the value per call", s.detail, name)
		case allocArg:
			pass.Reportf(s.pos,
				"%s passed to interface parameter in //hot function %s boxes per call; pass a pointer or pre-bind the handler", s.detail, name)
		}
	})
}

// An allocSite is one per-call allocation the discipline bans: a closure
// literal, an explicit conversion to an interface, or a value argument
// boxed into an interface parameter.
type allocKind int

const (
	allocClosure allocKind = iota
	allocConvert
	allocArg
)

type allocSite struct {
	pos    token.Pos
	kind   allocKind
	detail string // type description for the box kinds, "" for closures
}

func (s allocSite) describe(fset *token.FileSet) string {
	p := fset.Position(s.pos)
	loc := fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
	if s.kind == allocClosure {
		return "closure literal at " + loc
	}
	return "interface boxing at " + loc
}

// forEachAllocSite enumerates the banned allocation shapes in body, in
// source order. It does not descend into nested function literals: the
// literal itself is the allocation, and its body runs as a different
// function.
func forEachAllocSite(info *types.Info, body ast.Node, report func(allocSite)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(allocSite{pos: n.Pos(), kind: allocClosure})
			return false
		case *ast.CallExpr:
			callAllocSites(info, n, report)
		}
		return true
	})
}

// callAllocSites flags interface boxing at a call: an explicit
// conversion to an interface type, or a concrete non-pointer argument
// passed to an interface-typed parameter (including the variadic ...any
// of the fmt functions).
func callAllocSites(info *types.Info, call *ast.CallExpr, report func(allocSite)) {
	if target, ok := isConversion(info, call); ok {
		if !types.IsInterface(target.Underlying()) {
			return
		}
		if tv, ok := info.Types[call.Args[0]]; ok && boxes(tv.Type) && tv.Value == nil {
			report(allocSite{
				pos:    call.Pos(),
				kind:   allocConvert,
				detail: fmt.Sprintf("conversion of %s to interface %s", tv.Type, target),
			})
		}
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return // builtins (append, panic) have no signature here
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // a []T passed whole: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || !boxes(atv.Type) {
			continue
		}
		if atv.Value != nil {
			continue // constants box into static interface data, no allocation
		}
		report(allocSite{
			pos:    arg.Pos(),
			kind:   allocArg,
			detail: fmt.Sprintf("value of type %s", atv.Type),
		})
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates. Interface values hold one word directly, so pointer-shaped
// types (pointers, maps, chans, funcs) and nil convert for free;
// everything else is copied to the heap.
func boxes(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	}
	return true
}
