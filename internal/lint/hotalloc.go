package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotAllocPaths are the packages whose //hot-marked functions form the
// simulator's dispatch-rate-critical path: the event engine, the fluid
// integrator, and the packet fabric.
var hotAllocPaths = []string{
	"mltcp/internal/sim",
	"mltcp/internal/fluid",
	"mltcp/internal/netsim",
}

// HotAlloc enforces the hot-path allocation discipline: functions marked
// with a standalone `//hot` doc-comment line must not allocate per call.
// The two allocation shapes the compiler cannot always elide — and which
// this repo's refactors specifically removed — are closure literals
// (each evaluation heap-allocates the captured environment) and value-to-
// interface conversions (boxing copies the value to the heap). Pointer,
// map, channel, and func values convert without allocating, so passing
// `&handler` into an interface parameter stays clean.
//
// The check is syntactic per call site, deliberately stricter than the
// escape analyzer: a finding on a genuinely cold line inside a hot
// function (panic formatting, error paths) is justified with
// `//lint:allow hotalloc <reason>` rather than restructured.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `keep //hot functions allocation-free

Functions whose doc comment contains a standalone //hot line are on the
per-event dispatch path. Closure literals and non-pointer value-to-
interface conversions inside them allocate on every call; hoist captured
state into a pre-bound handler struct, or pass pointers. Cold lines
inside hot functions (panic messages) carry a justified //lint:allow.`,
	AppliesTo: func(path string) bool {
		for _, p := range hotAllocPaths {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	},
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotMarked(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// hotMarked reports whether the function's doc comment contains a
// standalone //hot line (the convention: last line of the doc block).
func hotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//hot" {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in //hot function %s allocates its capture environment per call; hoist state into a pre-bound handler struct", name)
			return false // the literal's own body is a different function
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		}
		return true
	})
}

// checkHotCall flags interface boxing at a call: an explicit conversion
// to an interface type, or a concrete non-pointer argument passed to an
// interface-typed parameter (including the variadic ...any of the fmt
// functions).
func checkHotCall(pass *Pass, fnName string, call *ast.CallExpr) {
	if target, ok := isConversion(pass.TypesInfo, call); ok {
		if !types.IsInterface(target.Underlying()) {
			return
		}
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && boxes(tv.Type) && tv.Value == nil {
			pass.Reportf(call.Pos(),
				"conversion of %s to interface %s in //hot function %s boxes the value per call", tv.Type, target, fnName)
		}
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return // builtins (append, panic) have no signature here
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // a []T passed whole: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || !boxes(atv.Type) {
			continue
		}
		if atv.Value != nil {
			continue // constants box into static interface data, no allocation
		}
		pass.Reportf(arg.Pos(),
			"value of type %s passed to interface parameter in //hot function %s boxes per call; pass a pointer or pre-bind the handler", atv.Type, fnName)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates. Interface values hold one word directly, so pointer-shaped
// types (pointers, maps, channels, funcs) and nil convert for free;
// everything else is copied to the heap.
func boxes(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	}
	return true
}
