package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"mltcp/internal/lint"
	"mltcp/internal/lint/linttest"
)

// The fixture tests run each analyzer through the full pipeline —
// type-checking against real export data, AppliesTo scoping under an
// impersonated package path, //lint:allow suppression — and require the
// diagnostics to match the fixtures' `// want` expectations exactly.
// Each fixture contains at least one violation, so these tests fail if
// an analyzer stops firing.

func TestSimDeterminismFixture(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "mltcp/internal/tcp",
		"testdata/simdeterminism/fixture.go")
}

func TestSimUnitsFixture(t *testing.T) {
	linttest.Run(t, lint.SimUnits, "mltcp/internal/fixture",
		"testdata/simunits/fixture.go")
}

func TestTelemetryEmitGuardFixture(t *testing.T) {
	linttest.Run(t, lint.TelemetryEmit, "mltcp/internal/telemetry",
		"testdata/telemetryemit/guard.go")
}

func TestTelemetryEmitCallSiteFixture(t *testing.T) {
	linttest.Run(t, lint.TelemetryEmit, "mltcp/internal/fixture",
		"testdata/telemetryemit/emit.go")
}

func TestRegistryNameFixture(t *testing.T) {
	linttest.Run(t, lint.RegistryName, "mltcp/cmd/fixture",
		"testdata/registryname/fixture.go")
}

func TestHotAllocFixture(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "mltcp/internal/sim",
		"testdata/hotalloc/fixture.go")
}

// The interprocedural fixtures are multi-package: earlier fixture
// packages are summarized into the shared fact store and imported by the
// later ones, so every finding below a package boundary is reached
// through facts alone.

func TestSeedFlowFixture(t *testing.T) {
	linttest.RunPkgs(t, lint.SeedFlow,
		linttest.PkgFixture{Path: "mltcp/internal/sim", Files: []string{"testdata/seedflow/sim.go"}},
		linttest.PkgFixture{Path: "mltcp/internal/lint/seedlib", Files: []string{"testdata/seedflow/seedlib.go"}},
		linttest.PkgFixture{Path: "mltcp/internal/user", Files: []string{"testdata/seedflow/user.go"}},
	)
}

func TestHotCallFixture(t *testing.T) {
	linttest.RunPkgs(t, lint.HotCall,
		linttest.PkgFixture{Path: "mltcp/internal/lint/helper", Files: []string{"testdata/hotcall/helper.go"}},
		linttest.PkgFixture{Path: "mltcp/internal/sim", Files: []string{"testdata/hotcall/fixture.go"}},
	)
}

func TestConcGuardFixture(t *testing.T) {
	linttest.Run(t, lint.ConcGuard, "mltcp/internal/fixture",
		"testdata/concguard/fixture.go")
}

// TestClockFactFixture exercises simdeterminism's interprocedural half:
// the consumer package never imports time, so its finding can only come
// from the FactUsesWallClock record the helper package published.
func TestClockFactFixture(t *testing.T) {
	linttest.RunPkgs(t, lint.SimDeterminism,
		linttest.PkgFixture{Path: "mltcp/internal/lint/clockdep", Files: []string{"testdata/clockfact/clockdep.go"}},
		linttest.PkgFixture{Path: "mltcp/internal/lint/consumer", Files: []string{"testdata/clockfact/consumer.go"}},
	)
}

// TestHotCallSupersetOfHotAlloc pins the retirement contract: over the
// retired analyzer's own fixture, hotcall must report every finding
// hotalloc reports — same position, same message — so dropping hotalloc
// from the roster loses nothing.
func TestHotCallSupersetOfHotAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	exp, err := lint.Exports("", "fmt")
	if err != nil {
		t.Fatalf("loading export data: %v", err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "testdata/hotalloc/fixture.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	files := []*ast.File{f}
	pkg, info, soft, err := lint.Check(fset, lint.ExportImporter(fset, exp), "mltcp/internal/sim", files)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	if len(soft) > 0 {
		t.Fatalf("fixture type errors: %v", soft)
	}
	store := lint.NewFactStore()
	lint.Summarize(fset, files, pkg, info, store)

	run := func(a *lint.Analyzer) map[string]bool {
		diags, err := lint.AnalyzeFacts(fset, files, pkg, info, []*lint.Analyzer{a}, store)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		set := make(map[string]bool)
		for _, d := range diags {
			if d.Analyzer == a.Name {
				set[d.Pos.String()+": "+d.Message] = true
			}
		}
		return set
	}
	old := run(lint.HotAlloc)
	now := run(lint.HotCall)
	if len(old) == 0 {
		t.Fatal("hotalloc reported nothing on its own fixture; superset check is vacuous")
	}
	for finding := range old {
		if !now[finding] {
			t.Errorf("hotalloc finding missing from hotcall: %s", finding)
		}
	}
}

// TestScoping pins each analyzer's package-path scope: simulation rules
// stay out of cmd/*, the conversion-defining packages stay exempt, and
// registry-name checks never fire inside internal/*.
func TestScoping(t *testing.T) {
	cases := []struct {
		a    *lint.Analyzer
		path string
		want bool
	}{
		{lint.SimDeterminism, "mltcp/internal/tcp", true},
		{lint.SimDeterminism, "mltcp/cmd/mltcpsim", false},
		{lint.SimUnits, "mltcp/internal/fluid", true},
		{lint.SimUnits, "mltcp/cmd/mltcpsim", true},
		{lint.SimUnits, "mltcp/internal/sim", false},
		{lint.SimUnits, "mltcp/internal/units", false},
		{lint.TelemetryEmit, "mltcp/internal/backend", true},
		{lint.RegistryName, "mltcp/cmd/mltcp-trace", true},
		{lint.RegistryName, "mltcp/internal/backend", false},
		{lint.HotAlloc, "mltcp/internal/sim", true},
		{lint.HotAlloc, "mltcp/internal/netsim", true},
		{lint.HotAlloc, "mltcp/internal/tcp", false},
		{lint.HotAlloc, "mltcp/internal/backend", false},
		{lint.HotCall, "mltcp/internal/sim", true},
		{lint.HotCall, "mltcp/internal/netsim", true},
		{lint.HotCall, "mltcp/internal/backend", false},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	// seedflow and concguard guard whole-repo invariants (seed hygiene,
	// goroutine joining), so they scope to every package.
	for _, a := range []*lint.Analyzer{lint.SeedFlow, lint.ConcGuard} {
		if a.AppliesTo != nil {
			t.Errorf("%s.AppliesTo should be nil (every package)", a.Name)
		}
	}
}

// TestRepositoryClean is the integration gate: the full suite over the
// entire module must report zero unsuppressed diagnostics. Inserting a
// time.Now() into internal/tcp (or any other violation) fails this test
// before it fails CI.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := lint.Run("", []string{"mltcp/..."}, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestVettoolProtocol exercises the `go vet -vettool` integration end to
// end: build the multichecker, then let go vet drive it over a real
// package through the unitchecker protocol (version query, .cfg files,
// facts plumbing).
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool binary")
	}
	bin := filepath.Join(t.TempDir(), "mltcp-lint")
	build := exec.Command("go", "build", "-o", bin, "mltcp/cmd/mltcp-lint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "mltcp/internal/sim", "mltcp/internal/tcp")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages: %v\n%s", err, out)
	}
}

// TestVettoolArgs pins the protocol detection that routes go vet's
// invocations away from the standalone flag parser.
func TestVettoolArgs(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"/tmp/pkg.cfg"}, true},
		{[]string{"./..."}, false},
		{[]string{"-list"}, false},
		{[]string{}, false},
		{[]string{"/tmp/a.cfg", "/tmp/b.cfg"}, false},
	}
	for _, c := range cases {
		if got := lint.VettoolArgs(c.args); got != c.want {
			t.Errorf("VettoolArgs(%v) = %v, want %v", c.args, got, c.want)
		}
	}
}

// TestStandaloneRunScoped runs the standalone driver over one small
// clean package as a smoke test of the go list + export-data loader.
func TestStandaloneRunScoped(t *testing.T) {
	diags, err := lint.Run("", []string{"mltcp/internal/units"}, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("internal/units should be clean, got %v", diags)
	}
}

// TestMain keeps fixture paths stable regardless of where the test
// binary runs from.
func TestMain(m *testing.M) {
	if _, err := os.Stat("testdata"); err != nil {
		panic("lint tests must run from the internal/lint package directory")
	}
	os.Exit(m.Run())
}
