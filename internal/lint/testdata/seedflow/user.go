// Fixture for the seedflow analyzer: consumes the fake sim and seedlib
// packages so the taint classifier and the cross-package fact
// obligations (SeedParams, FactSpawnsGoroutine, FactDerivesSeed) are
// all exercised through real imports.
package user

import (
	"mltcp/internal/sim"
	"mltcp/internal/lint/seedlib"
)

// Package-level RNG state: single-owner violation regardless of seed.
var shared = sim.NewRNGAt(1, 2) // want "RNG stored in package-level variable shared"

func derivedRoots(base uint64) {
	_ = sim.NewRNG(sim.DeriveSeed(base, 1)) // derivation call: clean
	_ = sim.NewRNGAt(base, 2)               // sanctioned combined helper: clean
	s := sim.DeriveSeed(base, 3)
	_ = sim.NewRNG(s)         // derived local: clean
	_ = sim.NewRNG(s ^ 0x9e)  // derived operand in arithmetic: clean
	_ = sim.NewRNG(base)      // parameter: clean here, obligation on callers
	var runSeed uint64 = 42   // named seed declaration: a reviewable root
	_ = sim.NewRNG(runSeed)   // clean
	r := sim.NewRNGAt(base, 4)
	_ = sim.NewRNG(r.Uint64()) // stream output: clean
}

func badRoots() {
	_ = sim.NewRNG(42) // want "seed for sim.NewRNG is not derived"
	for i := 0; i < 3; i++ {
		_ = sim.NewRNG(uint64(i)) // want "seed for sim.NewRNG is not derived"
	}
	x := uint64(7)
	_ = sim.NewRNG(x) // want "seed for sim.NewRNG is not derived"
	//lint:allow seedflow fixture: justified raw seed
	_ = sim.NewRNG(9)
}

// localStream seeds from its parameter, so the obligation propagates to
// its callers through the in-package fact.
func localStream(s uint64) *sim.RNG { return sim.NewRNG(s) }

func obligations(base uint64) {
	_ = localStream(base)             // parameter: clean
	_ = localStream(11)               // want "argument 0 of user.localStream seeds an RNG but is not derived"
	_ = seedlib.Stream(base)          // cross-package, derived: clean
	_ = seedlib.Stream(13)            // want "argument 0 of seedlib.Stream seeds an RNG but is not derived"
	_ = sim.NewRNG(seedlib.ChildSeed(5)) // FactDerivesSeed callee: clean
}

func escapes(base uint64) {
	r := sim.NewRNGAt(base, 1)
	go func() {
		_ = r.Uint64() // want "RNG r captured by goroutine closure"
	}()
	r2 := sim.NewRNGAt(base, 2)
	go consume(r2) // want "RNG passed into a goroutine"
	seedlib.SpawnWork(1, sim.NewRNGAt(base, 3)) // want "RNG passed to seedlib.SpawnWork, which spawns goroutines"
	r3 := sim.NewRNGAt(base, 4)
	_ = r3.Uint64() // same-scope use: clean
}

func consume(r *sim.RNG) { _ = r.Uint64() }
