// Fixture stand-in for mltcp/internal/sim: RunPkgs type-checks this
// package first under the impersonated path, so the dependent fixture
// packages resolve their sim import here instead of the real export
// data. Only the RNG surface seedflow cares about is reproduced.
package sim

// RNG is the fixture stream type; seedflow recognizes it by its
// (path, name) pair.
type RNG struct{ state uint64 }

// NewRNG builds a stream from raw seed material: the construction
// seedflow polices.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// DeriveSeed is the sanctioned derivation root.
func DeriveSeed(base, index uint64) uint64 { return base*0x9e3779b97f4a7c15 + index }

// NewRNGAt is the sanctioned combined derive-and-construct helper.
func NewRNGAt(base, index uint64) *RNG { return NewRNG(DeriveSeed(base, index)) }

// Uint64 draws from the stream; its output is derived by definition.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}
