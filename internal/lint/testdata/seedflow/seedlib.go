// Fixture helper package: exports functions whose facts (SeedParams,
// FactSpawnsGoroutine, FactDerivesSeed) the user-package fixture must
// see across the package boundary.
package seedlib

import "mltcp/internal/sim"

// Stream seeds an RNG from its parameter: Summarize publishes
// SeedParams=[0], so every caller owes a derived value at position 0.
func Stream(s uint64) *sim.RNG { return sim.NewRNG(s) }

// ChildSeed derives unconditionally: callers may treat its result as
// derived (FactDerivesSeed).
func ChildSeed(index uint64) uint64 { return sim.DeriveSeed(7, index) }

// SpawnWork spawns a goroutine (FactSpawnsGoroutine); passing an RNG to
// it is an ownership escape seedflow flags at the call site.
func SpawnWork(n int, r *sim.RNG) {
	done := make(chan int, 1)
	go func() { done <- n }()
	<-done
	_ = r
}
