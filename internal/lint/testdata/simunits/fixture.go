// Fixture for the simunits analyzer, type-checked under an impersonated
// mltcp/internal/... package path (internal/sim and internal/units
// themselves are exempt as the conversion-defining packages).
package fixture

import (
	"time"

	"mltcp/internal/sim"
)

func conversions(d sim.Time, w time.Duration, f float64) {
	_ = float64(d)       // want `float64\(duration\) bypasses the canonical conversion`
	_ = float64(w)       // want `float64\(duration\) bypasses the canonical conversion`
	_ = sim.Time(f)      // want `duration built from a float`
	_ = time.Duration(f) // want `duration built from a float`
	_ = d.Seconds()      // canonical conversion: clean
	_ = sim.FromSeconds(f)
	_ = d.Scale(f) // canonical scaling: clean
}

func division(d, e sim.Time) {
	_ = d / e          // want `duration ÷ duration truncates to a dimensionless count`
	_ = d / 4          // scalar division by an untyped constant: clean
	_ = d / sim.Second // want `duration ÷ duration truncates to a dimensionless count`
	_ = int(d / e)     // int(...) annotates an intentional count: clean
	parts := 3
	_ = d / sim.Time(parts) // explicit conversion from an integer: clean
}

func equality(a, b float64) bool {
	if a == 0 { // constant-zero sentinel: clean
		return false
	}
	if a != a { // NaN test: clean
		return true
	}
	return a == b // want `exact float comparison`
}

func suppressedDivision(d, e sim.Time) sim.Time {
	return d / e //lint:allow simunits fixture demonstrates a justified suppression
}
