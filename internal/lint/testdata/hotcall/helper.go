// Fixture helper package for hotcall: lives outside the hot-path
// package set, so nothing here is reported directly — but Summarize
// records which of these functions allocate, and the //hot fixture
// package must see those facts through its import.
package helper

import "fmt"

func sink(x any) {}

// Boxy boxes its argument into an interface parameter: FactAllocates
// with a leaf witness.
func Boxy(v int) { sink(v) }

// Wrapped allocates only transitively, via Boxy.
func Wrapped(v int) { Boxy(v) }

// Clean does arithmetic; no fact.
func Clean(v int) int { return v + 1 }

// Explode panics on every path: the fmt.Sprintf boxing is cold by
// construction, so no FactAllocates is published (the panic-helper
// exemption hot code relies on).
func Explode(v int) {
	panic(fmt.Sprintf("helper: exploded at %d", v))
}

// Justified boxes, but the site carries a reviewed suppression: the
// fact is killed at the leaf, so hot callers anywhere stay clean.
func Justified(v int) {
	sink(v) //lint:allow hotcall fixture: justified cold-path boxing
}
