// Fixture for the hotcall analyzer, type-checked under an impersonated
// mltcp/internal/sim path (hot-path scope) and importing the helper
// fixture package so cross-package facts are exercised.
package fixture

import "mltcp/internal/lint/helper"

func localSink(x any) {}

// localAlloc allocates in this package: in-package facts must propagate
// without any serialization round-trip.
func localAlloc(v int) { localSink(v) }

// localDeep reaches localAlloc through one more in-package hop.
func localDeep(v int) { localAlloc(v) }

//hot
func hotLeaf(v int) {
	f := func() int { return v } // want "closure literal in //hot function hotLeaf"
	_ = f
	localSink(v) // want "value of type int passed to interface parameter in //hot function hotLeaf"
}

//hot
func hotCrossPackage(v int) {
	helper.Boxy(v)    // want "//hot function hotCrossPackage calls helper.Boxy, which allocates per call"
	helper.Wrapped(v) // want "//hot function hotCrossPackage calls helper.Wrapped, which allocates per call"
	_ = helper.Clean(v)
	helper.Justified(v) // suppression at the leaf killed the fact: clean
	if v < 0 {
		helper.Explode(v) // panic helper: exempt, clean
	}
}

//hot
func hotInPackage(v int) {
	localAlloc(v) // want "//hot function hotInPackage calls fixture.localAlloc, which allocates per call"
	localDeep(v)  // want "//hot function hotInPackage calls fixture.localDeep, which allocates per call"
}

//hot
func hotJustifiedCall(v int) {
	helper.Boxy(v) //lint:allow hotcall fixture: justified cold call on a hot path
}

// coldCaller is unmarked: the same calls pass untouched.
func coldCaller(v int) {
	helper.Boxy(v)
	localAlloc(v)
	_ = func() int { return v }
}
