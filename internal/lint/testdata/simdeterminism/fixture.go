// Fixture for the simdeterminism analyzer, type-checked under an
// impersonated mltcp/internal/... package path. Each `// want` comment
// is an expected diagnostic; unmarked lines must stay clean.
package fixture

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	r := rand.New(rand.NewSource(1)) // constructors build a private stream: clean
	_ = r.Int()
	return rand.Int() // want `global rand\.Int draws from a shared unseeded source`
}

func appendValues(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `map iteration order leaks into an append`
		vals = append(vals, v)
	}
	return vals
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order leaks into a WriteString call`
		b.WriteString(k)
	}
	return b.String()
}

func encodeValues(m map[string]int) {
	enc := json.NewEncoder(os.Stdout)
	for _, v := range m { // want `map iteration order leaks into a Encode call`
		_ = enc.Encode(v)
	}
}

func printValues(m map[string]int) {
	for k, v := range m { // want `map iteration order leaks into fmt\.Println`
		fmt.Println(k, v)
	}
}

func sliceIndexWrite(m map[int]int, out []int) {
	i := 0
	for _, v := range m { // want `map iteration order leaks into a slice-index write`
		out[i] = v
		i++
	}
}

// sortedIdiom is the canonical fix: collecting bare keys is clean.
func sortedIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapToMap copies between maps; no ordered output, clean.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func suppressed() time.Time {
	return time.Now() //lint:allow simdeterminism fixture demonstrates a justified suppression
}
