// Fixture helper for simdeterminism's interprocedural half: functions
// here reach the wall clock (or are sanctioned), and the consuming
// fixture package must see that through FactUsesWallClock alone.
package clockdep

import "time"

// now reads the wall clock directly: leaf finding here, and the fact
// that taints every caller.
func now() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Stamp reaches the clock through now: flagged at the call, and
// republished as its own fact for the next package over.
func Stamp() int64 {
	return now() // want "clockdep.now reaches the wall clock"
}

// Sanctioned reads the clock under a reviewed suppression: the marker
// kills both the finding and the fact, so callers stay clean.
func Sanctioned() int64 {
	return time.Now().UnixNano() //lint:allow simdeterminism fixture: the one sanctioned clock read
}
