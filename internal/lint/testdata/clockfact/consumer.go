// Fixture consumer: no time import anywhere, yet calls into clockdep
// must be flagged purely from the facts the helper package published.
package consumer

import "mltcp/internal/lint/clockdep"

func tainted() int64 {
	return clockdep.Stamp() // want "clockdep.Stamp reaches the wall clock"
}

func clean() int64 {
	return clockdep.Sanctioned() // suppression killed the fact upstream
}
