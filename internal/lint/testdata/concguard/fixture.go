// Fixture for the concguard analyzer: every go statement needs join
// evidence — a completion signal (WaitGroup Done, channel send/close)
// that the spawning scope itself waits on (Wait, receive, select
// receive, range). Path does not matter; concguard applies everywhere.
package fixture

import "sync"

func work() {}

func producer(ch chan int) { ch <- 1 }

// --- joined correctly: no findings ---

func joinedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func joinedChannel() int {
	done := make(chan int, 1)
	go func() {
		done <- 1
	}()
	return <-done
}

func joinedDeferredSend() int {
	done := make(chan int, 1)
	go func() {
		defer func() { done <- 2 }() // signal from a deferred literal still counts
		work()
	}()
	return <-done
}

func joinedSelect(stop chan struct{}) int {
	done := make(chan int, 1)
	go func() { done <- 3 }()
	select {
	case v := <-done:
		return v
	case <-stop:
		return 0
	}
}

func joinedRange() int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		ch <- 4
	}()
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

func joinedNamedFunc() int {
	ch := make(chan int, 1)
	go producer(ch) // the channel argument is the callee's signal
	return <-ch
}

type server struct{ wg sync.WaitGroup }

func (s *server) joinedField() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
	s.wg.Wait()
}

// --- violations ---

func leakNoSignal() {
	go work() // want "goroutine in leakNoSignal has no completion signal"
}

func leakLiteralNoSignal() {
	go func() { // want "goroutine in leakLiteralNoSignal has no completion signal"
		work()
	}()
}

func leakUnjoined() chan int {
	ch := make(chan int, 1)
	go func() { // want "goroutine in leakUnjoined is not joined before the scope returns"
		ch <- 1
	}()
	return ch // returned, but this scope never receives
}

func leakWaitGroupNoWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine in leakWaitGroupNoWait is not joined before the scope returns"
		defer wg.Done()
		work()
	}()
}

func leakInNestedLiteral() func() {
	return func() { // the literal is its own spawning scope
		go work() // want "goroutine in leakInNestedLiteral .func literal. has no completion signal"
	}
}

func justifiedLeak() {
	//lint:allow concguard fixture: fire-and-forget justified, joined at process exit
	go work()
}
