// Fixture for the hotalloc analyzer, type-checked under an impersonated
// mltcp/internal/sim path so the scope check passes.
package fixture

import "fmt"

type handler interface{ handle() }

type box struct{ n int }

func (box) handle() {}

func takes(h handler) {}

//hot
func hotClosure(n int) func() int {
	f := func() int { return n } // want "closure literal in //hot function hotClosure"
	return f
}

//hot
func hotBoxing(h handler, v box) {
	takes(v)            // want "value of type .*box passed to interface parameter in //hot function hotBoxing"
	takes(h)            // already an interface: no boxing
	takes(&v)           // pointer-shaped: converts without allocating
	fmt.Println(v.n)    // want "value of type int passed to interface parameter in //hot function hotBoxing"
	_ = handler(v)      // want "conversion of .*box to interface .*handler in //hot function hotBoxing"
	_ = handler(&v)     // pointer conversion: free
	_ = []handler{nil}  // nil needs no boxing
	takes(nil)          // nil needs no boxing
}

//hot
func hotJustified(v box) {
	takes(v) //lint:allow hotalloc fixture: justified cold-path boxing
}

// coldFn has no //hot marker: the same shapes pass untouched.
func coldFn() {
	_ = func() int { return 1 }
	takes(box{})
	fmt.Println(3)
}
