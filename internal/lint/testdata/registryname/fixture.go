// Fixture for the registryname analyzer, type-checked under an
// impersonated mltcp/cmd/... package path. "fluid", "packet", "learned",
// and "centralized" are live registry names; "other" is not.
package fixture

func dispatch(name string) int {
	switch name {
	case "fluid": // want `registry name .fluid. hand-written in a case clause`
		return 1
	case "other": // not a registry name: clean
		return 2
	case "learned": // want `registry name .learned. hand-written in a case clause`
		return 5
	}
	if name == "packet" { // want `registry name .packet. hand-written in a comparison`
		return 3
	}
	if name != "centralized" { //lint:allow registryname fixture demonstrates a justified suppression
		return 4
	}
	return 0
}
