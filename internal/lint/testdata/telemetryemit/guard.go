// Fixture for the telemetryemit nil-guard rule, type-checked under the
// impersonated mltcp/internal/telemetry path so the in-package rule
// fires. The Recorder type here stands in for the real one.
package telemetry

type Recorder struct{ n int }

// Guarded has the required shape: the nil-receiver guard comes first.
func (r *Recorder) Guarded(v int64) {
	if r == nil {
		return
	}
	r.n++
}

// GuardedOr keeps the guard as the first operand of an || chain.
func (r *Recorder) GuardedOr(v int64) {
	if r == nil || v < 0 {
		return
	}
	r.n++
}

func (r *Recorder) Unguarded(v int64) { // want `exported Recorder method Unguarded must start with the nil-receiver guard`
	r.n++
}

// unexported methods are internal plumbing; callers already hold a
// non-nil receiver.
func (r *Recorder) unexported(v int64) { r.n++ }

//lint:allow telemetryemit fixture demonstrates a justified suppression
func (r *Recorder) Suppressed(v int64) { r.n++ }
