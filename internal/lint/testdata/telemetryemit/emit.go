// Fixture for the telemetryemit call-site rule: arguments fed to the
// real *telemetry.Recorder must not smuggle floats into the integer-ns
// schema.
package fixture

import (
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

func emit(r *telemetry.Recorder, at sim.Time, f float64) {
	r.Retransmit(sim.Time(f*1e9), 0, int64(f)) // want `float-derived value converted into the integer-ns telemetry schema` `float-derived value converted into the integer-ns telemetry schema`
	r.Retransmit(at, 0, 7)                     // integer end to end: clean
	r.IterEnd(at, 0, 1, at.Scale(f))           // canonical scaling helper: clean
}
