package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const telemetryPath = "mltcp/internal/telemetry"

// TelemetryEmit enforces the telemetry subsystem's two emission
// contracts: inside internal/telemetry, every exported *Recorder method
// opens with the nil-receiver fast path (a nil *Recorder is the
// documented disabled state, so an unguarded method is a latent panic in
// every untraced run); and at every call site, values fed into the
// schema's integer-nanosecond fields must not be derived from floats
// (no float64(t)*1e9-style timestamps — the trace format's byte
// determinism depends on exact integer arithmetic).
var TelemetryEmit = &Analyzer{
	Name: "telemetryemit",
	Doc: `enforce telemetry emission hygiene

A nil *telemetry.Recorder must stay a near-free no-op: exported Recorder
methods start with "if r == nil { return ... }". Emission arguments must
keep the schema integral: converting a float expression into sim.Time,
time.Duration, or int64 on the way into a Recorder call reintroduces the
float-seconds rounding the integer-ns schema exists to prevent.`,
	AppliesTo: func(path string) bool {
		return strings.HasPrefix(path, "mltcp/internal/") || strings.HasPrefix(path, "mltcp/cmd/")
	},
	Run: runTelemetryEmit,
}

func runTelemetryEmit(pass *Pass) error {
	inTelemetry := pass.Pkg.Path() == telemetryPath
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if inTelemetry {
					checkNilGuard(pass, n)
				}
			case *ast.CallExpr:
				checkEmitArgs(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkNilGuard requires exported pointer-receiver Recorder methods to
// open with the nil-receiver guard.
func checkNilGuard(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
		return
	}
	recv := fd.Recv.List[0]
	star, ok := recv.Type.(*ast.StarExpr)
	if !ok {
		return
	}
	base, ok := star.X.(*ast.Ident)
	if !ok || base.Name != "Recorder" {
		return
	}
	recvName := ""
	if len(recv.Names) > 0 {
		recvName = recv.Names[0].Name
	}
	if len(fd.Body.List) > 0 && isNilGuard(fd.Body.List[0], recvName) {
		return
	}
	pass.Reportf(fd.Pos(),
		"exported Recorder method %s must start with the nil-receiver guard (a nil *Recorder is the documented disabled state)", fd.Name.Name)
}

// isNilGuard reports whether stmt is `if recv == nil [|| ...] { ... return ... }`.
func isNilGuard(stmt ast.Stmt, recvName string) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condTestsNil(ifs.Cond, recvName) {
		return false
	}
	for _, s := range ifs.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

// condTestsNil looks for `recvName == nil` in cond, allowing it to be an
// operand of || chains (e.g. `r == nil || !r.sampled(...)`).
func condTestsNil(cond ast.Expr, recvName string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "==":
			x, okX := ast.Unparen(c.X).(*ast.Ident)
			y, okY := ast.Unparen(c.Y).(*ast.Ident)
			return okX && okY && x.Name == recvName && y.Name == "nil"
		case "||":
			return condTestsNil(c.X, recvName) || condTestsNil(c.Y, recvName)
		}
	}
	return false
}

// checkEmitArgs flags float-derived integer-ns values in the arguments
// of any *telemetry.Recorder method call.
func checkEmitArgs(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	pkg, name, ok := namedType(selection.Recv())
	if !ok || pkg != telemetryPath || name != "Recorder" {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			conv, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			target, isConv := isConversion(pass.TypesInfo, conv)
			if !isConv || !isIntegerNS(target) {
				return true
			}
			if opTV, ok := pass.TypesInfo.Types[conv.Args[0]]; ok && isFloat(opTV.Type) {
				pass.Reportf(conv.Pos(),
					"float-derived value converted into the integer-ns telemetry schema; carry sim.Time end to end (no float64(t)*1e9 conversions)")
				return false
			}
			return true
		})
	}
}

// isIntegerNS reports whether t is one of the schema's integer
// nanosecond carriers: sim.Time, time.Duration, or int64.
func isIntegerNS(t types.Type) bool {
	if isDurationType(t) {
		return true
	}
	b, ok := types.Unalias(t).(*types.Basic)
	return ok && b.Kind() == types.Int64
}
