// SeedFlow: seed-provenance taint analysis. Byte-identical replay
// requires every RNG stream in the simulator to be rooted in the run's
// seed tree (sim.DeriveSeed / sim.NewRNGAt); an RNG seeded from a bare
// literal, a loop counter, or the wall clock replays differently — or
// worse, identically across points that must differ. The classifier
// here is shared with Summarize, which uses it to publish two fact
// kinds: FactDerivesSeed for functions whose integer result is always
// derivation-rooted, and SeedParams for functions that feed a parameter
// into an RNG seed (turning the local obligation into one on every
// caller, across packages).

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow reports RNG constructions whose seed material is not
// derivation-rooted, and RNG values escaping into goroutines or
// package-level state (an RNG stream has exactly one owner; sharing it
// makes draw order depend on scheduling).
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: `root every RNG in the derived-seed tree, keep streams single-owner

Seeds reaching sim.NewRNG (or math/rand sources) must be rooted in
sim.DeriveSeed/sim.NewRNGAt output, a *Seed* field, a seed parameter
(which propagates the obligation to callers via function facts), or
another RNG's output. RNG values must not be captured by goroutine
closures, passed into goroutines or goroutine-spawning functions, or
stored in package-level state.`,
	Run: runSeedFlow,
}

// seedClass is the classifier verdict for one expression: ok means the
// value is derivation-rooted; params lists the enclosing function's
// parameter indices the rooting depends on (empty when unconditional).
type seedClass struct {
	ok     bool
	params []int
}

// seedScope classifies expressions inside one function: it knows the
// function's seed-capable parameters and the local variables assigned
// from derived material.
type seedScope struct {
	info    *types.Info
	lookup  func(*types.Func) FuncFact
	params  map[types.Object]int
	derived map[types.Object]seedClass
}

// newSeedScope builds the scope for fd (nil fd gives the empty scope
// used for package-level initializers). Local single-assignments are
// classified once, in source order, so `s := sim.DeriveSeed(base, i)`
// makes s derived for the rest of the body.
func newSeedScope(info *types.Info, lookup func(*types.Func) FuncFact, fd *ast.FuncDecl) *seedScope {
	sc := &seedScope{
		info:    info,
		lookup:  lookup,
		params:  make(map[types.Object]int),
		derived: make(map[types.Object]seedClass),
	}
	if fd == nil {
		return sc
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					sc.derived[obj] = seedClass{ok: true}
				}
			}
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					sc.params[obj] = idx
				}
				idx++
			}
		}
	}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil {
						sc.derived[obj] = sc.classify(n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, id := range n.Names {
					if id.Name == "_" {
						continue
					}
					if obj := info.Defs[id]; obj != nil {
						sc.derived[obj] = sc.classify(n.Values[i])
					}
				}
			}
			return true
		})
	}
	return sc
}

// classify decides whether e is derivation-rooted seed material.
func (sc *seedScope) classify(e ast.Expr) seedClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if _, ok := isConversion(sc.info, e); ok && len(e.Args) == 1 {
			return sc.classify(e.Args[0])
		}
		f := funcObj(sc.info, e)
		if f == nil {
			return seedClass{}
		}
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			// An RNG stream's own output is derived by definition
			// (rng.Uint64() feeding a child seed).
			if isRNGType(sig.Recv().Type()) {
				return seedClass{ok: true}
			}
			return seedClass{}
		}
		if f.Pkg() != nil && f.Pkg().Path() == "mltcp/internal/sim" {
			switch f.Name() {
			case "DeriveSeed", "NewRNGAt":
				return seedClass{ok: true}
			}
		}
		if moduleFunc(f) && sc.lookup != nil && sc.lookup(f).Flags.Has(FactDerivesSeed) {
			return seedClass{ok: true}
		}
		return seedClass{}
	case *ast.Ident:
		obj := sc.info.Uses[e]
		if obj == nil {
			return seedClass{}
		}
		if idx, ok := sc.params[obj]; ok {
			return seedClass{ok: true, params: []int{idx}}
		}
		// A variable or constant explicitly named *seed* is a declared
		// root of the seed tree, same as a *Seed* field: the name is
		// the reviewable declaration of intent.
		if strings.Contains(strings.ToLower(e.Name), "seed") {
			return seedClass{ok: true}
		}
		if c, ok := sc.derived[obj]; ok {
			return c
		}
		return seedClass{}
	case *ast.SelectorExpr:
		// Named seed storage (Point.Seed, JobSpec.Seed, cfg.BaseSeed):
		// filling such a field is where derivation is enforced, so
		// reading one back is sanctioned.
		if strings.Contains(strings.ToLower(e.Sel.Name), "seed") {
			return seedClass{ok: true}
		}
		return seedClass{}
	case *ast.BinaryExpr:
		// Mixing a derived value with anything (XOR a constant, add an
		// index) keeps it derived.
		l, r := sc.classify(e.X), sc.classify(e.Y)
		if !l.ok && !r.ok {
			return seedClass{}
		}
		c := seedClass{ok: true}
		c.params = append(c.params, l.params...)
		c.params = append(c.params, r.params...)
		return c
	case *ast.UnaryExpr:
		return sc.classify(e.X)
	}
	return seedClass{}
}

// rngConstruction reports whether call builds an RNG or Source from raw
// seed material, returning a display name and the seed arguments to
// classify. sim.NewRNGAt and sim.DeriveSeed are not listed: they ARE
// the sanctioned derivation API.
func rngConstruction(info *types.Info, call *ast.CallExpr) (string, []ast.Expr) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil {
		return "", nil
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", nil
	}
	switch f.Pkg().Path() {
	case "mltcp/internal/sim":
		if f.Name() == "NewRNG" && len(call.Args) == 1 {
			return "sim.NewRNG", call.Args[:1]
		}
	case "math/rand":
		if f.Name() == "NewSource" && len(call.Args) == 1 {
			return "rand.NewSource", call.Args[:1]
		}
	case "math/rand/v2":
		switch f.Name() {
		case "NewPCG":
			if len(call.Args) == 2 {
				return "rand.NewPCG", call.Args[:2]
			}
		case "NewChaCha8":
			if len(call.Args) == 1 {
				return "rand.NewChaCha8", call.Args[:1]
			}
		}
	}
	return "", nil
}

// isRNGType reports whether t is (a pointer to) one of the RNG stream
// types the single-owner rule covers.
func isRNGType(t types.Type) bool {
	path, name, ok := namedType(t)
	if !ok {
		return false
	}
	switch path {
	case "mltcp/internal/sim":
		return name == "RNG"
	case "math/rand":
		return name == "Rand" || name == "Source" || name == "Zipf"
	case "math/rand/v2":
		return name == "Rand" || name == "Source" || name == "PCG" ||
			name == "ChaCha8" || name == "Zipf"
	}
	return false
}

func runSeedFlow(pass *Pass) error {
	lookup := func(f *types.Func) FuncFact { return pass.Facts.Lookup(f) }
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				sc := newSeedScope(pass.TypesInfo, lookup, d)
				seedFlowWalk(pass, sc, d.Body)
			case *ast.GenDecl:
				sc := newSeedScope(pass.TypesInfo, lookup, nil)
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, v := range vs.Values {
						seedFlowWalk(pass, sc, v)
						if i < len(vs.Names) && isRNGType(pass.TypesInfo.TypeOf(v)) {
							pass.Reportf(vs.Names[i].Pos(),
								"RNG stored in package-level variable %s; streams are single-owner — construct one per scope from a derived seed", vs.Names[i].Name)
						}
					}
				}
			}
		}
	}
	return nil
}

// seedFlowWalk checks one function body (or initializer expression).
func seedFlowWalk(pass *Pass, sc *seedScope, root ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, seeds := rngConstruction(info, n); name != "" {
				for _, arg := range seeds {
					if !sc.classify(arg).ok {
						pass.Reportf(arg.Pos(),
							"seed for %s is not derived; root it in sim.DeriveSeed/sim.NewRNGAt, a *Seed* field, or a seed parameter so replays stay byte-identical", name)
					}
				}
			}
			if f := funcObj(info, n); f != nil && moduleFunc(f) {
				fact := pass.Facts.Lookup(f)
				for _, idx := range fact.SeedParams {
					if idx < len(n.Args) && !sc.classify(n.Args[idx]).ok {
						pass.Reportf(n.Args[idx].Pos(),
							"argument %d of %s seeds an RNG but is not derived; pass sim.DeriveSeed output or thread a seed parameter", idx, shortFuncName(f))
					}
				}
				if fact.Flags.Has(FactSpawnsGoroutine) {
					for _, arg := range n.Args {
						if isRNGType(info.TypeOf(arg)) {
							pass.Reportf(arg.Pos(),
								"RNG passed to %s, which spawns goroutines (%s); streams are single-owner — pass a derived seed instead", shortFuncName(f), fact.SpawnWhy)
						}
					}
				}
			}
		case *ast.GoStmt:
			checkGoRNG(pass, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				if !isPackageLevelRef(info, pass.Pkg, lhs) {
					continue
				}
				if isRNGType(info.TypeOf(lhs)) {
					pass.Reportf(lhs.Pos(),
						"RNG stored in package-level state; streams are single-owner — construct one per scope from a derived seed")
				}
			}
		}
		return true
	})
}

// checkGoRNG flags RNG values crossing into a spawned goroutine, either
// as call arguments or captured by the closure literal.
func checkGoRNG(pass *Pass, g *ast.GoStmt) {
	info := pass.TypesInfo
	for _, arg := range g.Call.Args {
		if isRNGType(info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(),
				"RNG passed into a goroutine; streams are single-owner — pass a derived seed and construct the RNG inside")
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || reported[obj] || !isRNGType(obj.Type()) {
			return true
		}
		// Free variable: declared outside the literal's span.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"RNG %s captured by goroutine closure; streams are single-owner — pass a derived seed and construct the RNG inside", id.Name)
		return true
	})
}

// isPackageLevelRef reports whether expr refers to (a field chain of) a
// package-level variable of pkg.
func isPackageLevelRef(info *types.Info, pkg *types.Package, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			return ok && v.Parent() == pkg.Scope()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return false
		}
	}
}
