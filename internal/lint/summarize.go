// Summarize computes the function facts for one package: the bottom-up
// half of the interprocedural tier. Drivers call it for every module
// package in dependency order — facts for a package's callees are
// already in the store (merged from vetx files under `go vet`, or
// accumulated in memory by the standalone driver) by the time the
// package itself is summarized — and intra-package call chains,
// including recursion, converge through a fixed-point iteration.
//
// Facts respect //lint:allow: a suppressed leaf site (a justified
// boxing line, the sanctioned wall-clock read in internal/obs) produces
// no fact, so justification at the leaf stops propagation to every
// caller. That is the audit contract: one reviewed marker, not one per
// transitive call site.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// A CallGraph records the statically resolved module-function callees
// of each function declared in one summarized package. Analyzers mostly
// consume facts instead, but the graph is exposed for tests and
// tooling.
type CallGraph struct {
	edges map[string][]string
}

// Callees returns the sorted module-function keys called (directly) by
// the function with the given key.
func (g *CallGraph) Callees(key string) []string {
	if g == nil {
		return nil
	}
	return g.edges[key]
}

// Funcs returns the sorted keys of all functions in the graph.
func (g *CallGraph) Funcs() []string {
	if g == nil {
		return nil
	}
	keys := make([]string, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// factSite is one local fact witness: a position plus its description.
type factSite struct {
	pos token.Pos
	why string
}

// factCall is one statically resolved call site.
type factCall struct {
	call *ast.CallExpr
	fn   *types.Func // nil when the callee is not a named function
}

// declState carries one function declaration through the fixed point.
type declState struct {
	fd     *ast.FuncDecl
	fn     *types.Func
	key    string
	panics bool

	localAllocs []allocSite
	localClock  []factSite
	localSpawn  []factSite
	calls       []factCall
	ctorSeeds   []ctorSeed
	returns     []ast.Expr // top-level single-value return expressions
	intResult   bool       // exactly one integer-kind result
	returnsRNG  bool       // some result is an RNG type

	fact FuncFact
}

// ctorSeed is one RNG-construction seed argument awaiting
// classification.
type ctorSeed struct {
	name string // constructor name for diagnostics, e.g. "sim.NewRNG"
	arg  ast.Expr
}

// suppressedBy reports whether pos carries a //lint:allow for any of
// the named analyzers.
type suppressFn func(pos token.Pos, analyzers ...string) bool

// Summarize computes and stores facts for every function declared in
// the package (test files excluded — the invariants govern shipped
// simulation code) and returns the package's call graph. It must run
// after the package's dependencies have been summarized or their fact
// files merged into store.
func Summarize(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, store *FactStore) *CallGraph {

	allowed, _ := suppressions(fset, files)
	supp := func(pos token.Pos, analyzers ...string) bool {
		p := fset.Position(pos)
		for _, name := range analyzers {
			if allowed[allowKey{p.Filename, p.Line, name}] {
				return true
			}
		}
		return false
	}

	var decls []*declState
	byKey := make(map[string]*declState)
	for _, file := range files {
		if isTestFile(fset, file) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ds := &declState{fd: fd, fn: fn, key: FuncKey(fn), panics: alwaysPanics(info, fd.Body)}
			collectLocal(fset, info, supp, ds)
			decls = append(decls, ds)
			byKey[ds.key] = ds
		}
	}

	lookup := func(f *types.Func) FuncFact {
		if ds, ok := byKey[FuncKey(f)]; ok {
			return ds.fact
		}
		return store.Lookup(f)
	}

	// Fixed point over the package's functions: facts only ever gain
	// bits, so the loop terminates; the bound covers the longest
	// possible intra-package chain.
	for round := 0; round <= len(decls)+1; round++ {
		changed := false
		for _, ds := range decls {
			nf := computeFact(fset, info, supp, lookup, ds)
			if !nf.Equal(ds.fact) {
				ds.fact = nf
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	graph := &CallGraph{edges: make(map[string][]string)}
	for _, ds := range decls {
		set := make(map[string]bool)
		for _, c := range ds.calls {
			if c.fn != nil && moduleFunc(c.fn) {
				set[FuncKey(c.fn)] = true
			}
		}
		callees := make([]string, 0, len(set))
		for k := range set {
			callees = append(callees, k)
		}
		sort.Strings(callees)
		graph.edges[ds.key] = callees
		store.Set(ds.key, ds.fact)
	}
	return graph
}

// collectLocal gathers the round-invariant raw material for one
// declaration: allocation sites, wall-clock reads, go statements, call
// sites, RNG constructions, and return expressions.
func collectLocal(fset *token.FileSet, info *types.Info, supp suppressFn, ds *declState) {
	forEachAllocSite(info, ds.fd.Body, func(s allocSite) {
		if !supp(s.pos, HotCall.Name, HotAlloc.Name) {
			ds.localAllocs = append(ds.localAllocs, s)
		}
	})
	ast.Inspect(ds.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ds.calls = append(ds.calls, factCall{call: n, fn: funcObj(info, n)})
			if name, ok := isPkgFunc(info, n, "time"); ok && (name == "Now" || name == "Since") {
				if !supp(n.Pos(), SimDeterminism.Name) {
					ds.localClock = append(ds.localClock, factSite{
						pos: n.Pos(),
						why: "time." + name + " at " + shortPos(fset, n.Pos()),
					})
				}
			}
			if name, seeds := rngConstruction(info, n); name != "" {
				for _, arg := range seeds {
					ds.ctorSeeds = append(ds.ctorSeeds, ctorSeed{name: name, arg: arg})
				}
			}
		case *ast.GoStmt:
			ds.localSpawn = append(ds.localSpawn, factSite{
				pos: n.Pos(),
				why: "go statement at " + shortPos(fset, n.Pos()),
			})
		}
		return true
	})

	sig := ds.fn.Type().(*types.Signature)
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isRNGType(results.At(i).Type()) {
			ds.returnsRNG = true
		}
	}
	if results.Len() == 1 {
		if b, ok := results.At(0).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			ds.intResult = true
			// Top-level returns only: returns inside nested literals
			// belong to the literal.
			ast.Inspect(ds.fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					if len(n.Results) == 1 {
						ds.returns = append(ds.returns, n.Results[0])
					} else {
						ds.intResult = false // bare return of a named result: opaque
					}
				}
				return true
			})
		}
	}
}

// computeFact evaluates one declaration against the current fact state.
// Witness selection is by earliest source position, so the result is
// deterministic regardless of map or package order.
func computeFact(fset *token.FileSet, info *types.Info, supp suppressFn,
	lookup func(*types.Func) FuncFact, ds *declState) FuncFact {

	var f FuncFact

	type candidate struct {
		pos token.Pos
		why string
	}
	pick := func(best *candidate, pos token.Pos, why string) *candidate {
		if best == nil || pos < best.pos {
			return &candidate{pos, why}
		}
		return best
	}

	var alloc, clock, spawn *candidate
	if !ds.panics {
		for _, s := range ds.localAllocs {
			alloc = pick(alloc, s.pos, s.describe(fset))
		}
	}
	for _, s := range ds.localClock {
		clock = pick(clock, s.pos, s.why)
	}
	for _, s := range ds.localSpawn {
		spawn = pick(spawn, s.pos, s.why)
	}

	sc := newSeedScope(info, lookup, ds.fd)
	seedParams := map[int]bool{}
	noteParams := func(c seedClass) {
		if c.ok {
			for _, p := range c.params {
				seedParams[p] = true
			}
		}
	}
	for _, cs := range ds.ctorSeeds {
		noteParams(sc.classify(cs.arg))
	}

	for _, c := range ds.calls {
		if c.fn == nil || !moduleFunc(c.fn) || FuncKey(c.fn) == ds.key {
			continue
		}
		cf := lookup(c.fn)
		if !ds.panics && cf.Flags.Has(FactAllocates) && !supp(c.call.Pos(), HotCall.Name, HotAlloc.Name) {
			alloc = pick(alloc, c.call.Pos(), transWhy(c.fn, cf.AllocWhy))
		}
		if cf.Flags.Has(FactUsesWallClock) && !supp(c.call.Pos(), SimDeterminism.Name) {
			clock = pick(clock, c.call.Pos(), transWhy(c.fn, cf.ClockWhy))
		}
		if cf.Flags.Has(FactSpawnsGoroutine) {
			spawn = pick(spawn, c.call.Pos(), transWhy(c.fn, cf.SpawnWhy))
		}
		for _, idx := range cf.SeedParams {
			if idx < len(c.call.Args) {
				noteParams(sc.classify(c.call.Args[idx]))
			}
		}
	}

	if alloc != nil {
		f.Flags |= FactAllocates
		f.AllocWhy = alloc.why
	}
	if clock != nil {
		f.Flags |= FactUsesWallClock
		f.ClockWhy = clock.why
	}
	if spawn != nil {
		f.Flags |= FactSpawnsGoroutine
		f.SpawnWhy = spawn.why
	}
	if len(seedParams) > 0 {
		for p := range seedParams {
			f.SeedParams = append(f.SeedParams, p)
		}
		sort.Ints(f.SeedParams)
	}
	if ds.returnsRNG || len(f.SeedParams) > 0 {
		f.Flags |= FactRNGSource
	}
	if ds.intResult && len(ds.returns) > 0 {
		all := true
		for _, e := range ds.returns {
			c := sc.classify(e)
			if !c.ok || len(c.params) > 0 {
				all = false
				break
			}
		}
		if all {
			f.Flags |= FactDerivesSeed
		}
	}
	return f
}

// transWhy renders a transitive witness: the callee plus its own
// witness, truncated so chains stay one readable line.
func transWhy(fn *types.Func, calleeWhy string) string {
	why := "calls " + shortFuncName(fn)
	if calleeWhy != "" {
		why += " (" + calleeWhy + ")"
	}
	if len(why) > 160 {
		why = why[:157] + "..."
	}
	return why
}

// alwaysPanics reports whether body panics on every path: no top-level
// return statements and a final statement that is a builtin panic call.
// Such functions are cold by construction (panic formatting), so their
// allocations do not become facts.
func alwaysPanics(info *types.Info, body *ast.BlockStmt) bool {
	n := len(body.List)
	if n == 0 {
		return false
	}
	hasReturn := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			hasReturn = true
		}
		return true
	})
	if hasReturn {
		return false
	}
	es, ok := body.List[n-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isTestFile reports whether the file is a _test.go file (excluded from
// fact computation: facts describe shipped code).
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}

// shortFile trims a path to its base name: fact witnesses must not
// embed machine-specific absolute paths (byte-identical files across
// checkouts) and stay readable in diagnostics.
func shortFile(name string) string {
	return filepath.Base(name)
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return shortFile(p.Filename) + ":" + strconv.Itoa(p.Line)
}
