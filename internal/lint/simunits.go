package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SimUnits enforces the integer-nanosecond time discipline: durations
// (sim.Time, time.Duration) cross into float seconds only through the
// canonical helpers in internal/sim and internal/units, never via ad-hoc
// float64(d) / Duration(f) conversions or truncating duration÷duration
// division; and scoring code never compares floats for exact equality.
var SimUnits = &Analyzer{
	Name: "simunits",
	Doc: `enforce integer-nanosecond unit discipline

sim.Time and time.Duration are integer nanoseconds by contract; the trace
schema, the engine clock, and the golden tests all depend on it. Ad-hoc
float64(d) conversions, Duration-from-float constructions, and
duration÷duration divisions silently change rounding behavior between
call sites. Convert through sim.Time.Seconds / sim.FromSeconds /
sim.Time.Scale (internal/sim and internal/units are the exempt defining
packages). Exact float equality in scoring code is flagged because two
mathematically equal scores can differ in the last ulp.`,
	AppliesTo: func(path string) bool {
		if path == "mltcp/internal/sim" || path == "mltcp/internal/units" {
			return false // the packages that define the conversions
		}
		return strings.HasPrefix(path, "mltcp/internal/") || strings.HasPrefix(path, "mltcp/cmd/")
	},
	Run: runSimUnits,
}

// isDurationType reports whether t is one of the integer-nanosecond
// duration types.
func isDurationType(t types.Type) bool {
	pkg, name, ok := namedType(t)
	if !ok {
		return false
	}
	return (pkg == "time" && name == "Duration") ||
		(pkg == "mltcp/internal/sim" && name == "Time")
}

func runSimUnits(pass *Pass) error {
	for _, file := range pass.Files {
		// int(d1/d2) is the explicit "this quotient is a count"
		// annotation (bucket indexing, loop bounds); collect those
		// divisions before flagging. Preorder traversal visits the
		// conversion before the division it wraps.
		countedQuo := make(map[ast.Node]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, n)
				if target, ok := isConversion(pass.TypesInfo, n); ok &&
					isIntegerKind(target) && !isDurationType(target) {
					if q, ok := ast.Unparen(n.Args[0]).(*ast.BinaryExpr); ok && q.Op == token.QUO {
						countedQuo[q] = true
					}
				}
			case *ast.BinaryExpr:
				if !countedQuo[n] {
					checkDurationDivision(pass, n)
				}
				checkFloatEquality(pass, n)
			}
			return true
		})
	}
	return nil
}

// isIntegerKind reports whether t's underlying type is an integer.
func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func checkUnitConversion(pass *Pass, call *ast.CallExpr) {
	target, ok := isConversion(pass.TypesInfo, call)
	if !ok {
		return
	}
	opTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	switch {
	case isFloat(target) && isDurationType(opTV.Type):
		pass.Reportf(call.Pos(),
			"float64(duration) bypasses the canonical conversion; use .Seconds() (or keep integer ns)")
	case isDurationType(target) && isFloat(opTV.Type):
		pass.Reportf(call.Pos(),
			"duration built from a float; use sim.FromSeconds for seconds or sim.Time.Scale/Div for scaling")
	}
}

// checkDurationDivision flags duration ÷ duration, which truncates to a
// dimensionless count. Dividing by an untyped constant, a literal, or an
// explicit conversion from an integer expression is scalar division and
// stays legal.
func checkDurationDivision(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.QUO {
		return
	}
	xt, okX := pass.TypesInfo.Types[b.X]
	yt, okY := pass.TypesInfo.Types[b.Y]
	if !okX || !okY || !isDurationType(xt.Type) || !isDurationType(yt.Type) {
		return
	}
	y := ast.Unparen(b.Y)
	if yt.Value != nil {
		// A constant denominator is scalar division (d / 4) unless it
		// references a declared duration constant (d / sim.Second),
		// which is the classic silent unit truncation.
		if !mentionsDurationConst(pass.TypesInfo, y) {
			return
		}
	} else if conv, ok := y.(*ast.CallExpr); ok {
		if target, isConv := isConversion(pass.TypesInfo, conv); isConv && isDurationType(target) {
			if opTV, ok := pass.TypesInfo.Types[conv.Args[0]]; ok && !isDurationType(opTV.Type) && !isFloat(opTV.Type) {
				return // duration / duration(int) is explicit scalar division
			}
		}
	}
	pass.Reportf(b.OpPos,
		"duration ÷ duration truncates to a dimensionless count; compare .Seconds() values or annotate intentional integer division")
}

// mentionsDurationConst reports whether any identifier in e resolves to
// a constant whose declared type is a duration (sim.Second,
// time.Millisecond, ...), as opposed to an untyped numeric constant.
func mentionsDurationConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := info.Uses[id].(*types.Const); ok && isDurationType(c.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// isZeroConst reports whether tv is a numeric constant equal to zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func checkFloatEquality(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	xt, okX := pass.TypesInfo.Types[b.X]
	yt, okY := pass.TypesInfo.Types[b.Y]
	if !okX || !okY || !isFloat(xt.Type) || !isFloat(yt.Type) {
		return
	}
	// Comparing against a constant zero is the exact-by-construction
	// sentinel/division-guard idiom (unset config fields, empty
	// accumulators); it stays legal.
	if isZeroConst(xt) || isZeroConst(yt) {
		return
	}
	// x != x is the NaN test; leave it alone.
	if xid, ok := ast.Unparen(b.X).(*ast.Ident); ok {
		if yid, ok := ast.Unparen(b.Y).(*ast.Ident); ok && xid.Name == yid.Name {
			return
		}
	}
	pass.Reportf(b.OpPos,
		"exact float comparison; scores that are mathematically equal can differ in the last ulp — compare with a tolerance or restructure to integer units")
}
