package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionCoversMarkerLineAndNext(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:allow simunits reason one
var a = 1

var b = 2 //lint:allow simdeterminism reason two
`)
	allowed, malformed := suppressions(fset, files)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed markers: %v", malformed)
	}
	for _, want := range []allowKey{
		{"x.go", 3, "simunits"},       // the marker's own line
		{"x.go", 4, "simunits"},       // the line below (standalone marker)
		{"x.go", 6, "simdeterminism"}, // trailing marker on the offending line
	} {
		if !allowed[want] {
			t.Errorf("missing suppression %+v", want)
		}
	}
	if allowed[allowKey{"x.go", 4, "simdeterminism"}] {
		t.Error("suppression leaked across analyzers")
	}
	if allowed[allowKey{"x.go", 5, "simunits"}] {
		t.Error("suppression extends past one line below the marker")
	}
}

func TestSuppressionWithoutReasonIsMalformed(t *testing.T) {
	fset, files := parseSrc(t, `package p

//lint:allow simunits
var a = 1

//lint:allow
var b = 2
`)
	allowed, malformed := suppressions(fset, files)
	if len(allowed) != 0 {
		t.Errorf("malformed markers must not suppress anything, got %v", allowed)
	}
	if len(malformed) != 2 {
		t.Fatalf("want 2 malformed diagnostics, got %v", malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed") {
			t.Errorf("unexpected malformed diagnostic: %s", d)
		}
	}
}

// TestAnalyzeDropsTestFileFindings pins the rule that the invariants
// govern simulation code, not its tests.
func TestAnalyzeDropsTestFileFindings(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pkg_test.go", `package p
func f() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	reportAll := &Analyzer{
		Name: "reportall",
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				pass.Reportf(file.Pos(), "finding")
			}
			return nil
		},
	}
	pkg, info, _, err := Check(fset, nil, "mltcp/internal/p", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Analyze(fset, []*ast.File{f}, pkg, info, []*Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("findings in _test.go files must be dropped, got %v", diags)
	}
}

// TestAnalyzeStripsTestVariantPath pins the handling of go vet's
// "path [path.test]" package variants: scope decisions use the base path.
func TestAnalyzeStripsTestVariantPath(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pkg.go", `package p
func f() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var sawPath string
	scoped := &Analyzer{
		Name:      "scoped",
		AppliesTo: func(path string) bool { sawPath = path; return true },
		Run:       func(*Pass) error { return nil },
	}
	pkg, info, _, err := Check(fset, nil, "mltcp/internal/p [mltcp/internal/p.test]", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(fset, []*ast.File{f}, pkg, info, []*Analyzer{scoped}); err != nil {
		t.Fatal(err)
	}
	if sawPath != "mltcp/internal/p" {
		t.Errorf("AppliesTo saw %q, want the stripped base path", sawPath)
	}
}
