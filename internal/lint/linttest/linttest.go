// Package linttest runs lint analyzers over fixture source files,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture lines
// carry `// want "regexp"` comments naming the diagnostics the analyzer
// must report on that line, and the runner fails the test on any
// unexpected or missing finding.
//
// Fixtures live under testdata (so the go tool never builds them) and
// are type-checked against the repository's real dependency graph via
// export data, so they can import mltcp/internal/sim, the telemetry
// package, and the standard library exactly like production code.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mltcp/internal/lint"
)

// fixtureDeps are the import paths fixtures may use, beyond whatever
// mltcp/... already pulls in. Listing them explicitly makes `go list
// -export` materialize their export data even if no repo package imports
// them.
var fixtureDeps = []string{
	"mltcp/...", "time", "math/rand", "math/rand/v2",
	"fmt", "strings", "sort", "encoding/json", "os",
}

var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

func depExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		exports, exportsErr = lint.Exports("", fixtureDeps...)
	})
	return exports, exportsErr
}

// Run type-checks the fixture files as one package under pkgPath (so the
// analyzer's AppliesTo scoping sees the path the fixture impersonates),
// runs exactly the given analyzer through the full pipeline —
// fact summarization and suppressions included — and matches the
// resulting diagnostics against the fixtures' `// want "regexp"`
// expectations.
func Run(t *testing.T, a *lint.Analyzer, pkgPath string, fixtures ...string) {
	t.Helper()
	RunPkgs(t, a, PkgFixture{Path: pkgPath, Files: fixtures})
}

// A PkgFixture is one fixture package for RunPkgs: the import path it
// impersonates and its source files.
type PkgFixture struct {
	Path  string
	Files []string
}

// RunPkgs runs the analyzer over a chain of fixture packages, in order.
// Earlier packages are importable by later ones under their fixture
// paths (shadowing real export data, so a fixture can impersonate
// mltcp/internal/sim and be imported by a second fixture package), and
// each package is summarized into a shared fact store before the next
// is checked — exactly the standalone driver's dependency-order
// pipeline. Diagnostics from every package are matched against `// want`
// expectations across all files.
func RunPkgs(t *testing.T, a *lint.Analyzer, pkgs ...PkgFixture) {
	t.Helper()
	exp, err := depExports()
	if err != nil {
		t.Fatalf("loading dependency export data: %v", err)
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		mem:      make(map[string]*types.Package),
		fallback: lint.ExportImporter(fset, exp),
	}
	store := lint.NewFactStore()
	wants := make(map[token.Position][]*expectation) // keyed by file:line via Position{Filename,Line}
	var diags []lint.Diagnostic
	for _, p := range pkgs {
		var files []*ast.File
		for _, name := range p.Files {
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", name, err)
			}
			files = append(files, f)
			for line, exps := range parseWants(t, name, string(src)) {
				wants[token.Position{Filename: name, Line: line}] = exps
			}
		}

		pkg, info, soft, err := lint.Check(fset, imp, p.Path, files)
		if err != nil {
			t.Fatalf("type-checking fixtures: %v", err)
		}
		// A fixture with type errors silently produces no findings,
		// which would let a broken fixture masquerade as a passing test.
		for _, e := range soft {
			t.Errorf("fixture type error: %v", e)
		}
		if t.Failed() {
			t.FailNow()
		}
		imp.mem[p.Path] = pkg

		lint.Summarize(fset, files, pkg, info, store)
		ds, err := lint.AnalyzeFacts(fset, files, pkg, info, []*lint.Analyzer{a}, store)
		if err != nil {
			t.Fatalf("analysis: %v", err)
		}
		diags = append(diags, ds...)
	}

	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		if !claim(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", key.Filename, key.Line, e.re.String())
			}
		}
	}
}

// chainImporter resolves fixture package paths from memory first, then
// falls back to real export data; in-memory entries shadow the
// repository's packages so fixtures can impersonate module paths.
type chainImporter struct {
	mem      map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mem[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation whose regexp matches msg
// (falling back to an already-matched one, so a line may legitimately
// produce two findings with the same message shape).
func claim(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	for _, e := range exps {
		if e.re.MatchString(msg) {
			return true
		}
	}
	return false
}

var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.+)$`)
	quoteRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
)

// parseWants extracts `// want "re" ["re" ...]` expectations, keyed by
// 1-based line number.
func parseWants(t *testing.T, name, src string) map[int][]*expectation {
	t.Helper()
	wants := make(map[int][]*expectation)
	for i, line := range strings.Split(src, "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range quoteRE.FindAllString(m[1], -1) {
			pat, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", name, i+1, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, pat, err)
			}
			wants[i+1] = append(wants[i+1], &expectation{re: re})
		}
		if len(wants[i+1]) == 0 {
			t.Fatalf("%s:%d: want comment with no quoted regexp", name, i+1)
		}
	}
	return wants
}
