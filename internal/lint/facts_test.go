package lint_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"mltcp/internal/lint"
)

// sampleFacts is a small store's worth of records covering every field
// shape: flags only, seed params, and all three witness strings.
var sampleFacts = []struct {
	key string
	f   lint.FuncFact
}{
	{"mltcp/internal/a.Alloc", lint.FuncFact{
		Flags:    lint.FactAllocates,
		AllocWhy: "closure literal at a.go:3",
	}},
	{"mltcp/internal/b.Clocky", lint.FuncFact{
		Flags:    lint.FactUsesWallClock | lint.FactSpawnsGoroutine,
		ClockWhy: "time.Now at b.go:9",
		SpawnWhy: "go statement at b.go:12",
	}},
	{"mltcp/internal/c.Stream", lint.FuncFact{
		Flags:      lint.FactRNGSource,
		SeedParams: []int{2, 0},
	}},
	{"(*mltcp/internal/c.Gen).Child", lint.FuncFact{
		Flags: lint.FactDerivesSeed,
	}},
}

// TestFactEncodeDeterministic pins the byte-identical-output contract
// vet's action cache depends on: insertion order must not matter, and
// decode(encode) must re-encode to the same bytes.
func TestFactEncodeDeterministic(t *testing.T) {
	encode := func(order []int) []byte {
		s := lint.NewFactStore()
		for _, i := range order {
			s.Set(sampleFacts[i].key, sampleFacts[i].f)
		}
		return s.Encode()
	}
	a := encode([]int{0, 1, 2, 3})
	b := encode([]int{3, 1, 0, 2})
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding depends on insertion order:\n%s\nvs\n%s", a, b)
	}

	dec, err := lint.DecodeFacts(a)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if dec.Len() != len(sampleFacts) {
		t.Fatalf("decoded %d records, want %d", dec.Len(), len(sampleFacts))
	}
	if got := dec.Encode(); !bytes.Equal(got, a) {
		t.Fatalf("decode/re-encode not byte-identical:\n%s\nvs\n%s", got, a)
	}
	// Set sorts seed params, so the round-tripped record is canonical.
	f, ok := dec.Get("mltcp/internal/c.Stream")
	if !ok || len(f.SeedParams) != 2 || f.SeedParams[0] != 0 || f.SeedParams[1] != 2 {
		t.Errorf("seed params not canonicalized: %v", f.SeedParams)
	}
}

func TestFactDecodeEdges(t *testing.T) {
	// Empty input is the vetx stub for non-module packages and the shape
	// of files written before this tier existed: an empty store, no error.
	s, err := lint.DecodeFacts(nil)
	if err != nil || s.Len() != 0 {
		t.Errorf("DecodeFacts(nil) = %d records, %v; want empty, nil", s.Len(), err)
	}

	bad := []string{
		"mltcp-facts/v0\n",                            // unknown version
		"mltcp-facts/v1\nk\t1\t-\t-\t-\n",             // five columns
		"mltcp-facts/v1\nk\tx\t-\t-\t-\t-\n",          // non-numeric flags
		"mltcp-facts/v1\nk\t1\tzero\t-\t-\t-\n",       // bad seed param
		"mltcp-facts/v1\nk\t0\t-\t-\t-\t-\n",          // zero record
	}
	for _, in := range bad {
		if _, err := lint.DecodeFacts([]byte(in)); err == nil {
			t.Errorf("DecodeFacts(%q) succeeded, want error", in)
		}
	}
}

// TestFactWitnessSanitized pins that Set keeps witnesses single-line and
// tab-free, so a hostile or buggy witness cannot corrupt the row format.
func TestFactWitnessSanitized(t *testing.T) {
	s := lint.NewFactStore()
	s.Set("mltcp/internal/x.F", lint.FuncFact{
		Flags:    lint.FactAllocates,
		AllocWhy: "tab\there\nand newline",
	})
	enc := s.Encode()
	if lines := bytes.Count(enc, []byte("\n")); lines != 2 {
		t.Fatalf("encoding has %d newlines, want 2 (header + one row):\n%q", lines, enc)
	}
	dec, err := lint.DecodeFacts(enc)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	f, _ := dec.Get("mltcp/internal/x.F")
	if strings.ContainsAny(f.AllocWhy, "\t\n\r") {
		t.Errorf("witness not sanitized: %q", f.AllocWhy)
	}
}

// TestSummarizeDeterministic runs Summarize twice over the same fixture
// package — fresh file sets, fresh type info — and requires the encoded
// stores to be byte-identical, the property the vetx channel needs.
func TestSummarizeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads export data via go list")
	}
	exp, err := lint.Exports("", "fmt")
	if err != nil {
		t.Fatalf("loading export data: %v", err)
	}
	summarize := func() []byte {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "testdata/hotcall/helper.go", nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files := []*ast.File{f}
		pkg, info, soft, err := lint.Check(fset, lint.ExportImporter(fset, exp), "mltcp/internal/lint/helper", files)
		if err != nil {
			t.Fatalf("type-checking fixture: %v", err)
		}
		if len(soft) > 0 {
			t.Fatalf("fixture type errors: %v", soft)
		}
		store := lint.NewFactStore()
		lint.Summarize(fset, files, pkg, info, store)
		return store.Encode()
	}
	a := summarize()
	b := summarize()
	if !bytes.Equal(a, b) {
		t.Fatalf("Summarize not deterministic:\n%s\nvs\n%s", a, b)
	}
	// The fixture's facts must actually be there, or determinism is
	// trivially true: Boxy allocates locally, Wrapped transitively,
	// Justified's suppression and Explode's panic exemption kill theirs.
	dec, err := lint.DecodeFacts(a)
	if err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	for _, key := range []string{"mltcp/internal/lint/helper.Boxy", "mltcp/internal/lint/helper.Wrapped"} {
		f, ok := dec.Get(key)
		if !ok || !f.Flags.Has(lint.FactAllocates) {
			t.Errorf("%s: missing allocates fact (got %v, present=%v)", key, f.Flags, ok)
		}
	}
	for _, key := range []string{"mltcp/internal/lint/helper.Justified", "mltcp/internal/lint/helper.Explode"} {
		if f, ok := dec.Get(key); ok && f.Flags.Has(lint.FactAllocates) {
			t.Errorf("%s: allocates fact should be killed (suppression / panic exemption)", key)
		}
	}
}
