package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimDeterminism enforces the repo's byte-identical-replay contract in
// simulation code: no wall clock, no global (shared, unseeded) random
// source, and no map-iteration order leaking into ordered output.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: `forbid nondeterminism sources in simulation packages

Simulation code must be a pure function of (scenario, seed): time.Now and
time.Since read the wall clock; the global math/rand functions draw from a
process-wide source shared across goroutines; and ranging over a map while
appending values, building strings, or encoding emits results in a
different order every run. Use the engine clock (sim.Engine.Now), RNG
streams derived from the run seed (sim.NewRNG / sim.DeriveSeed), and
sorted-key iteration. Collecting just the keys of a map into a slice is
allowed — that is the first half of the sorted-iteration idiom.`,
	AppliesTo: func(path string) bool { return strings.HasPrefix(path, "mltcp/internal/") },
	Run:       runSimDeterminism,
}

// randConstructors are the math/rand package functions that build a
// private generator rather than touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runSimDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(pass, n)
				checkGlobalRand(pass, n)
				checkClockFact(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkWallClock(pass *Pass, call *ast.CallExpr) {
	name, ok := isPkgFunc(pass.TypesInfo, call, "time")
	if !ok {
		return
	}
	if name == "Now" || name == "Since" {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock; simulation code must use the engine clock (sim.Engine.Now)", name)
	}
}

// checkClockFact is the interprocedural half of the wall-clock rule:
// calling a module function whose fact record says it reaches
// time.Now/Since — through any number of hops in other packages — is
// as nondeterministic as the direct read.
func checkClockFact(pass *Pass, call *ast.CallExpr) {
	f := funcObj(pass.TypesInfo, call)
	if f == nil || !moduleFunc(f) {
		return
	}
	fact := pass.Facts.Lookup(f)
	if fact.Flags.Has(FactUsesWallClock) {
		pass.Reportf(call.Pos(),
			"%s reaches the wall clock (%s); simulation code must use the engine clock (sim.Engine.Now)",
			shortFuncName(f), fact.ClockWhy)
	}
}

func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	for _, path := range []string{"math/rand", "math/rand/v2"} {
		name, ok := isPkgFunc(pass.TypesInfo, call, path)
		if !ok || randConstructors[name] {
			continue
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from a shared unseeded source; derive a per-run stream with sim.NewRNG/sim.DeriveSeed", "rand", name)
	}
}

// checkMapRange flags map-range loops whose body performs an
// order-dependent write: appending anything but the bare key to a slice,
// assigning through a slice index, writing to a builder/buffer/encoder,
// or printing. Map-to-map copies and key collection stay legal.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = pass.TypesInfo.Defs[id]
		if keyObj == nil {
			keyObj = pass.TypesInfo.Uses[id]
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if reason := orderedWrite(pass, n, keyObj); reason != "" {
				pass.Reportf(rs.Pos(),
					"map iteration order leaks into %s; iterate over sorted keys", reason)
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if bt, ok := pass.TypesInfo.Types[ix.X]; ok {
					if _, isSlice := bt.Type.Underlying().(*types.Slice); isSlice {
						pass.Reportf(rs.Pos(),
							"map iteration order leaks into a slice-index write; iterate over sorted keys")
						return false
					}
				}
			}
		}
		return true
	})
}

// orderedWrite classifies a call inside a map-range body, returning a
// description of the order-dependent write it performs ("" when benign).
func orderedWrite(pass *Pass, call *ast.CallExpr, keyObj types.Object) string {
	// append(dst, elems...): benign only when every element is the
	// range key itself (key collection for later sorting).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			if call.Ellipsis.IsValid() {
				return "an append"
			}
			for _, arg := range call.Args[1:] {
				argID, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok || keyObj == nil || pass.TypesInfo.Uses[argID] != keyObj {
					return "an append"
				}
			}
			return ""
		}
	}
	if f := funcObj(pass.TypesInfo, call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if strings.HasPrefix(f.Name(), "Write") || strings.HasPrefix(f.Name(), "Encode") {
				return "a " + f.Name() + " call"
			}
		}
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(f.Name(), "Print") || strings.HasPrefix(f.Name(), "Fprint")) {
			return "fmt." + f.Name()
		}
	}
	return ""
}
