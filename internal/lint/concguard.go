// ConcGuard: goroutine-lifecycle discipline. A deterministic harness
// cannot tolerate goroutines that outlive their spawner — a straggler
// writing telemetry after the run "finished" corrupts traces in a
// schedule-dependent way. The rule: every go statement must carry join
// evidence in its spawning scope, i.e. the spawned work must signal
// completion through a sync.WaitGroup or a channel that the SAME scope
// waits on (wg.Wait, a receive — possibly inside a ctx-bound select —
// or a range over the channel) before returning.
//
// The check is deliberately scope-local and strict: a WaitGroup handed
// to another function for joining, or a field waited on elsewhere, is
// still a finding. Lifecycle obligations that genuinely cross function
// boundaries are the reviewed exception — //lint:allow concguard with
// the reason naming where the join happens.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcGuard requires every go statement to be joined before its
// spawning scope returns.
var ConcGuard = &Analyzer{
	Name: "concguard",
	Doc: `join every goroutine before its spawner returns

Each go statement must have join evidence in the scope that spawns it:
the goroutine signals completion via sync.WaitGroup.Done or a channel
send/close, and the same scope calls Wait on that WaitGroup or receives
from that channel (directly, in a select, or by ranging). Goroutines
with no completion signal at all, or whose signal nothing in the scope
waits for, are flagged. Spawn helpers that publish FactSpawnsGoroutine
make callers visible to seedflow's RNG-escape check.`,
	Run: runConcGuard,
}

func runConcGuard(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, fd.Name.Name, fd.Body)
			// Nested literals are their own spawning scopes.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkScope(pass, fd.Name.Name+" (func literal)", lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkScope verifies every go statement directly inside body (not in
// nested literals) against the join evidence of the same body.
func checkScope(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var spawns []*ast.GoStmt
	joined := make(map[types.Object]bool) // WaitGroups Waited, channels received

	walkScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = append(spawns, n)
		case *ast.CallExpr:
			if recv, ok := waitGroupMethod(info, n, "Wait"); ok {
				if obj := rootObj(info, recv); obj != nil {
					joined[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := rootObj(info, n.X); obj != nil {
					joined[obj] = true
				}
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				if obj := rootObj(info, n.X); obj != nil {
					joined[obj] = true
				}
			}
		}
	})

	for _, g := range spawns {
		signals := spawnSignals(info, g)
		if len(signals) == 0 {
			pass.Reportf(g.Pos(),
				"goroutine in %s has no completion signal (WaitGroup Done or channel send/close); the spawner cannot join it", name)
			continue
		}
		ok := false
		for _, obj := range signals {
			if joined[obj] {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(g.Pos(),
				"goroutine in %s is not joined before the scope returns; Wait on its WaitGroup or receive from its channel in this scope", name)
		}
	}
}

// walkScope visits body without descending into nested function
// literals (which are separate spawning scopes).
func walkScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// spawnSignals returns the objects through which the spawned goroutine
// can signal completion: WaitGroups it calls Done on, channels it sends
// on or closes (anywhere in its body, including deferred literals), and
// — for go calls to named functions — WaitGroup/channel arguments.
func spawnSignals(info *types.Info, g *ast.GoStmt) []types.Object {
	var sigs []types.Object
	add := func(obj types.Object) {
		if obj != nil {
			sigs = append(sigs, obj)
		}
	}
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		// Full descent: a send inside `defer func(){ done <- r }()`
		// still runs within the goroutine's lifetime.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				add(rootObj(info, n.Chan))
			case *ast.CallExpr:
				if recv, ok := waitGroupMethod(info, n, "Done"); ok {
					add(rootObj(info, recv))
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						add(rootObj(info, n.Args[0]))
					}
				}
			}
			return true
		})
	}
	// Arguments of the go call itself: `go worker(jobs, &wg)` hands the
	// callee its signaling capability.
	for _, arg := range g.Call.Args {
		t := info.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Chan); ok {
			add(rootObj(info, arg))
			continue
		}
		if path, tname, ok := namedType(t); ok && path == "sync" && tname == "WaitGroup" {
			add(rootObj(info, arg))
		}
	}
	return sigs
}

// waitGroupMethod reports whether call is recv.<name>() on a
// sync.WaitGroup, returning the receiver expression.
func waitGroupMethod(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if path, tname, ok := namedType(sig.Recv().Type()); !ok || path != "sync" || tname != "WaitGroup" {
		return nil, false
	}
	return sel.X, true
}

// rootObj resolves an expression to the object that identifies its
// storage: the variable for identifiers (through & and parens), the
// field object for selector chains. Distinct instances sharing a field
// are conflated deliberately — join evidence is matched structurally.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok {
				return sel.Obj()
			}
			e = x.X
		default:
			return nil
		}
	}
}
