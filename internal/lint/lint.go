// Package lint is mltcp's static-analysis suite: seven analyzers that
// enforce the invariants the simulator's tests can only spot-check —
// determinism (no wall clock, no global randomness, no map-order leaks),
// unit discipline (integer-nanosecond time never silently mixed with
// float seconds), telemetry emission hygiene (nil-receiver-safe
// recorders, integer-ns timestamps), registry-sourced CLI names,
// seed-provenance taint (seedflow), a transitive allocation-free
// discipline for //hot-marked event-path functions (hotcall), and
// goroutine-lifecycle joining (concguard).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library
// alone: packages are enumerated with `go list -export`, type-checked
// with go/types against compiler export data, and driven either
// standalone (cmd/mltcp-lint ./...) or as a `go vet -vettool`
// unitchecker (see vettool.go).
//
// Since PR 9 the suite is interprocedural: Summarize computes per-
// function facts (facts.go) bottom-up over each package's call graph,
// and analyzers read them through Pass.Facts. The standalone driver
// accumulates facts in memory across `go list -deps` order; the vettool
// driver serializes them through vet's vetx facts channel.
//
// Findings are suppressed with a justified marker on the offending line
// or the line above:
//
//	//lint:allow <analyzer> <reason...>
//
// A marker without a reason is itself a diagnostic: suppressions are
// part of the audit trail, not an escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint rule.
type Analyzer struct {
	// Name identifies the analyzer in output and //lint:allow markers.
	Name string
	// Doc is a one-paragraph description shown by -help.
	Doc string
	// AppliesTo reports whether the analyzer runs on a package path.
	// Nil means every package.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the function facts visible to this package: its own
	// (Summarize runs before analysis) plus everything merged from its
	// dependencies. Never nil in driver-constructed passes; FactStore's
	// methods are nil-safe regardless.
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// AllowPrefix is the suppression marker syntax.
const AllowPrefix = "//lint:allow"

// allowKey locates a suppression: one analyzer on one line of one file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions scans the files' comments for //lint:allow markers. Each
// well-formed marker suppresses its analyzer on the marker's line and
// the line below (so a marker can sit on the offending line or stand
// alone above it). Malformed markers — missing the analyzer name or the
// reason — are returned as diagnostics under the "lint" analyzer.
func suppressions(fset *token.FileSet, files []*ast.File) (map[allowKey]bool, []Diagnostic) {
	allowed := make(map[allowKey]bool)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed %s: need an analyzer name and a reason", AllowPrefix),
					})
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					allowed[allowKey{pos.Filename, line, fields[0]}] = true
				}
			}
		}
	}
	return allowed, malformed
}

// Analyze runs the analyzers over one type-checked package with an
// empty fact store: the legacy single-package entry point, kept for
// callers that exercise only intraprocedural rules.
func Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return AnalyzeFacts(fset, files, pkg, info, analyzers, NewFactStore())
}

// AnalyzeFacts runs the analyzers over one type-checked package and
// returns the surviving findings: scope-filtered by AppliesTo, with
// _test.go positions dropped (the invariants govern simulation code,
// not its tests) and //lint:allow suppressions applied. Facts for the
// package and its dependencies are read from store (the driver runs
// Summarize first). The result is sorted by position so output is
// deterministic regardless of analyzer order.
//
// Suppressions are part of the audit trail, so they are themselves
// checked: a marker naming an analyzer nobody knows, or one in the run
// set that suppresses nothing (neither a diagnostic nor a fact-bearing
// site), is reported under the "lint" analyzer.
func AnalyzeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {

	path := pkg.Path()
	// go vet presents test variants as "path [path.test]"; scope
	// decisions use the base path.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}

	ran := make(map[string]bool)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(path) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     store,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, path, err)
		}
	}

	allowed, malformed := suppressions(fset, files)
	used := make(map[allowKey]bool)
	kept := malformed
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		k := allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}
		if allowed[k] {
			used[k] = true
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, auditAllows(fset, files, info, ran, used)...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// Analyzers returns the default suite in presentation order. HotAlloc
// is retired: hotcall subsumes its leaf findings and adds call-graph
// propagation.
func Analyzers() []*Analyzer {
	return []*Analyzer{SimDeterminism, SimUnits, TelemetryEmit, RegistryName, SeedFlow, HotCall, ConcGuard}
}

// knownAnalyzerNames are every name //lint:allow may legitimately cite:
// the default roster, the retired-but-referenceable hotalloc, and the
// framework's own "lint" channel.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{"lint": true, HotAlloc.Name: true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// auditAllows checks the package's well-formed //lint:allow markers:
// unknown analyzer names are findings, and markers for analyzers that
// ran here but suppressed nothing — no diagnostic, and no fact-bearing
// site on the covered lines — are stale findings.
func auditAllows(fset *token.FileSet, files []*ast.File, info *types.Info,
	ran map[string]bool, used map[allowKey]bool) []Diagnostic {

	known := knownAnalyzerNames()
	var out []Diagnostic
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(fileName, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, AllowPrefix))
				if len(fields) < 2 {
					continue // already reported as malformed
				}
				name := fields[0]
				pos := fset.Position(c.Pos())
				if !known[name] {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("%s names unknown analyzer %q", AllowPrefix, name),
					})
					continue
				}
				if !ran[name] {
					continue // scoped out here; cannot judge staleness
				}
				usedHere := used[allowKey{pos.Filename, pos.Line, name}] ||
					used[allowKey{pos.Filename, pos.Line + 1, name}]
				if !usedHere && !factSuppressionAt(fset, f, info, name, pos.Line) {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("stale %s %s: nothing suppressed on this line or the next", AllowPrefix, name),
					})
				}
			}
		}
	}
	return out
}

// factSuppressionAt reports whether a //lint:allow on the given line
// suppresses a fact instead of a diagnostic: an allocation site (for
// hotcall/hotalloc, which may sit in a non-//hot function and so never
// produce a local finding, while still killing FactAllocates) or a
// wall-clock read (for simdeterminism, killing FactUsesWallClock).
// Such markers are load-bearing even when no diagnostic consumed them.
func factSuppressionAt(fset *token.FileSet, file *ast.File, info *types.Info,
	name string, line int) bool {

	covers := func(pos token.Pos) bool {
		l := fset.Position(pos).Line
		return l == line || l == line+1
	}
	found := false
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		switch name {
		case HotCall.Name, HotAlloc.Name:
			forEachAllocSite(info, fd.Body, func(s allocSite) {
				if covers(s.pos) {
					found = true
				}
			})
		case SimDeterminism.Name:
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, ok := isPkgFunc(info, call, "time"); ok &&
					(fn == "Now" || fn == "Since") && covers(call.Pos()) {
					found = true
				}
				return true
			})
		}
		if found {
			return true
		}
	}
	return found
}

// --- shared type/AST helpers used by the analyzers ---

// funcObj resolves a call's callee to a *types.Func, nil when the callee
// is not a named function or method (e.g. a conversion or func value).
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isPkgFunc reports whether call invokes a package-level function (not a
// method) of pkgPath, returning its name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	return f.Name(), true
}

// namedType returns the defining package path and name of t's core named
// type, unwrapping pointers and aliases; ok is false for unnamed types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	n, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil {
		return "", "", false
	}
	return n.Obj().Pkg().Path(), n.Obj().Name(), true
}

// isConversion reports whether call is a type conversion, returning the
// target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// isFloat reports whether t's underlying type is a floating-point type
// (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
