package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/workload"
)

// RegistryName keeps CLI name dispatch sourced from the shared
// registries. The analyzer imports the registries themselves —
// backend.Names, config.PolicyNames, workload.Names — so the flagged set
// is always the live one: a name added to a registry is instantly
// protected without touching the linter.
var RegistryName = &Analyzer{
	Name: "registryname",
	Doc: `forbid hand-written registry names in cmd/*

Backend, policy, and workload-profile names have one source of truth:
the registries in internal/backend, internal/config, and
internal/workload. A cmd/* switch or comparison against a hand-written
copy of one of those strings silently diverges when the registry grows
or renames. Compare against the exported constant (backend.NameFluid,
...) or iterate the registry instead.`,
	AppliesTo: func(path string) bool { return strings.HasPrefix(path, "mltcp/cmd/") },
	Run:       runRegistryName,
}

// registryNames is the live union of every registry-managed name.
var registryNames = func() map[string]bool {
	set := make(map[string]bool)
	for _, names := range [][]string{backend.Names(), config.PolicyNames(), workload.Names()} {
		for _, n := range names {
			set[n] = true
		}
	}
	return set
}()

func runRegistryName(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					checkNameLiteral(pass, e, "case clause")
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkNameLiteral(pass, n.X, "comparison")
					checkNameLiteral(pass, n.Y, "comparison")
				}
			}
			return true
		})
	}
	return nil
}

func checkNameLiteral(pass *Pass, e ast.Expr, context string) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || !registryNames[val] {
		return
	}
	pass.Reportf(lit.Pos(),
		"registry name %q hand-written in a %s; source it from the shared registry (backend.Names/config.PolicyNames/workload.Names) or its exported constant", val, context)
}
