// Package loading for the standalone driver: enumerate packages with
// `go list -export`, then type-check from source against the compiler's
// export data. This reproduces the part of golang.org/x/tools/go/packages
// the suite needs, with no dependency outside the standard library and no
// network access — export data comes from the local build cache.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// DepOnly marks a module package loaded only because a target
	// depends on it: it is summarized for facts but not analyzed.
	DepOnly bool
	// TypeErrors holds soft type-check failures. Analysis still runs on
	// whatever was resolved; the driver surfaces these separately.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// list runs `go list -export -deps` over patterns, returning the
// target packages plus every module package in their dependency closure
// (in go list's dependencies-first order, which lets the driver
// summarize facts before their consumers), and the export-data index
// for the whole closure.
func list(dir string, patterns []string) ([]listedPackage, map[string]string, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		if p.DepOnly && !modulePath(p.ImportPath) {
			continue // facts are only computed for module packages
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	return targets, exports, nil
}

// Exports returns the export-data index (import path → export file) for
// the packages matching patterns and their full dependency closure. It
// exists for fixture-based tests, which type-check detached source files
// against the repository's real dependencies.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	_, exports, err := list(dir, patterns)
	return exports, err
}

// Load enumerates the packages matching patterns (resolved relative to
// dir, "" = current directory) and type-checks each non-dependency
// match. The returned FileSet is shared by all packages.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	targets, exports, err := list(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		pkg, info, softErrs, err := Check(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, &Package{
			Path:       t.ImportPath,
			Dir:        t.Dir,
			Files:      files,
			Types:      pkg,
			Info:       info,
			DepOnly:    t.DepOnly,
			TypeErrors: softErrs,
		})
	}
	return fset, pkgs, nil
}

// ExportImporter returns a go/types importer resolving import paths
// through compiler export data files (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Check type-checks one package's parsed files under the given import
// path. Type errors are collected softly: analysis proceeds on whatever
// resolved, mirroring `go vet`'s tolerance of in-progress trees.
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, []error, error) {
	var soft []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { soft = append(soft, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if pkg == nil {
		return nil, nil, nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return pkg, info, soft, nil
}

// modulePath reports whether an import path belongs to this module.
func modulePath(path string) bool {
	return path == "mltcp" || strings.HasPrefix(path, "mltcp/")
}

// Run loads the packages matching patterns and applies the analyzers,
// returning every surviving diagnostic across all packages. Because
// Load yields the module dependency closure in dependencies-first
// order, each package is summarized into a shared in-memory fact store
// before any of its dependents is analyzed — the standalone equivalent
// of the vetx fact files `go vet` threads between vettool invocations.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset, pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	store := NewFactStore()
	var all []Diagnostic
	for _, p := range pkgs {
		if modulePath(p.Path) {
			Summarize(fset, p.Files, p.Types, p.Info, store)
		}
		if p.DepOnly {
			continue
		}
		diags, err := AnalyzeFacts(fset, p.Files, p.Types, p.Info, analyzers, store)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
