package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mltcp/internal/lint"
)

// TestVettoolFacts drives the vetx facts channel by hand, playing the
// role of cmd/go: a facts-only pass over internal/sim, a dependent pass
// over internal/units that consumes sim's vetx file and emits its own,
// and finally a synthetic //hot package whose only violation is visible
// through the units facts — proving the tool both emits and consumes
// serialized facts across process boundaries.
func TestVettoolFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool binary and loads export data")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "mltcp-lint")
	if out, err := exec.Command("go", "build", "-o", bin, "mltcp/cmd/mltcp-lint").CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	// The package graph, as cmd/go would see it: export files for the
	// full dependency closure plus source locations for the two module
	// packages we vet directly.
	type listPkg struct {
		ImportPath string
		Dir        string
		Export     string
		GoFiles    []string
	}
	out, err := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles",
		"mltcp/internal/units", "mltcp/internal/sim").Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	pkgs := make(map[string]listPkg)
	pkgFile := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		pkgs[p.ImportPath] = p
		if p.Export != "" {
			pkgFile[p.ImportPath] = p.Export
		}
	}

	// runTool writes a vet config and invokes the binary on it the way
	// cmd/go would, returning the exit code and combined output.
	runTool := func(name string, cfg map[string]any) (int, string) {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("marshaling config: %v", err)
		}
		path := filepath.Join(tmp, name+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatalf("writing config: %v", err)
		}
		cmd := exec.Command(bin, path)
		out, err := cmd.CombinedOutput()
		if err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				t.Fatalf("running vettool: %v\n%s", err, out)
			}
		}
		return cmd.ProcessState.ExitCode(), string(out)
	}

	absFiles := func(p listPkg) []string {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		return files
	}

	// Pass 1: sim, facts-only (VetxOnly), no dependency facts. Twice,
	// into separate files: the vetx output must be byte-identical or
	// vet's action cache would thrash.
	sim := pkgs["mltcp/internal/sim"]
	simVetx := filepath.Join(tmp, "sim.vetx")
	simCfg := func(output string) map[string]any {
		return map[string]any{
			"ID": "mltcp/internal/sim", "Compiler": "gc", "Dir": sim.Dir,
			"ImportPath": "mltcp/internal/sim", "GoFiles": absFiles(sim),
			"PackageFile": pkgFile, "PackageVetx": map[string]string{},
			"VetxOnly": true, "VetxOutput": output,
		}
	}
	if code, out := runTool("sim", simCfg(simVetx)); code != 0 {
		t.Fatalf("facts-only pass over sim: exit %d\n%s", code, out)
	}
	simVetx2 := filepath.Join(tmp, "sim2.vetx")
	if code, out := runTool("sim2", simCfg(simVetx2)); code != 0 {
		t.Fatalf("second facts-only pass over sim: exit %d\n%s", code, out)
	}
	a, err1 := os.ReadFile(simVetx)
	b, err2 := os.ReadFile(simVetx2)
	if err1 != nil || err2 != nil {
		t.Fatalf("reading vetx outputs: %v, %v", err1, err2)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("sim vetx not byte-identical across runs:\n%s\nvs\n%s", a, b)
	}
	simFacts, err := lint.DecodeFacts(a)
	if err != nil {
		t.Fatalf("decoding sim vetx: %v", err)
	}
	if simFacts.Len() == 0 {
		t.Fatal("sim vetx is empty; expected at least the RNG-source facts")
	}

	// Pass 2: units, consuming sim's facts and emitting its own (which
	// must re-export sim's, so transitive deps survive direct-only
	// PackageVetx maps).
	units := pkgs["mltcp/internal/units"]
	unitsVetx := filepath.Join(tmp, "units.vetx")
	if code, out := runTool("units", map[string]any{
		"ID": "mltcp/internal/units", "Compiler": "gc", "Dir": units.Dir,
		"ImportPath": "mltcp/internal/units", "GoFiles": absFiles(units),
		"PackageFile": pkgFile,
		"PackageVetx": map[string]string{"mltcp/internal/sim": simVetx},
		"VetxOutput":  unitsVetx,
	}); code != 0 {
		t.Fatalf("vetting units: exit %d\n%s", code, out)
	}
	unitsData, err := os.ReadFile(unitsVetx)
	if err != nil {
		t.Fatalf("reading units vetx: %v", err)
	}
	unitsFacts, err := lint.DecodeFacts(unitsData)
	if err != nil {
		t.Fatalf("decoding units vetx: %v", err)
	}
	if f, ok := unitsFacts.Get("mltcp/internal/units.trimUnit"); !ok || !f.Flags.Has(lint.FactAllocates) {
		t.Errorf("units vetx missing allocates fact for trimUnit (got %v, present=%v)", f.Flags, ok)
	}
	reexported := false
	for _, key := range unitsFacts.Keys() {
		if strings.HasPrefix(key, "mltcp/internal/sim.") || strings.HasPrefix(key, "(*mltcp/internal/sim.") {
			reexported = true
			break
		}
	}
	if !reexported {
		t.Error("units vetx does not re-export sim facts")
	}

	// Pass 3: a synthetic hot-path package whose //hot function calls
	// units.Rate.String. With units facts supplied the boxing inside
	// trimUnit is visible two packages away; without them, nothing is —
	// the difference in exit codes is the consumption proof.
	probeDir := filepath.Join(tmp, "probe")
	if err := os.Mkdir(probeDir, 0o777); err != nil {
		t.Fatal(err)
	}
	probe := filepath.Join(probeDir, "probe.go")
	src := `package probe

import "mltcp/internal/units"

//hot
func hot(r units.Rate) string { return r.String() }

var _ = hot
`
	if err := os.WriteFile(probe, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	probeCfg := func(vetx map[string]string) map[string]any {
		return map[string]any{
			"ID": "mltcp/internal/netsim/probe", "Compiler": "gc", "Dir": probeDir,
			"ImportPath": "mltcp/internal/netsim/probe", "GoFiles": []string{probe},
			"PackageFile": pkgFile, "PackageVetx": vetx,
		}
	}
	code, probeOut := runTool("probe-facts", probeCfg(map[string]string{"mltcp/internal/units": unitsVetx}))
	if code != 2 {
		t.Fatalf("probe with facts: exit %d, want 2 (diagnostic)\n%s", code, probeOut)
	}
	if !strings.Contains(probeOut, "units.Rate.String, which allocates per call") {
		t.Errorf("probe diagnostic missing the fact-sourced witness:\n%s", probeOut)
	}
	if code, out := runTool("probe-blind", probeCfg(map[string]string{})); code != 0 {
		t.Fatalf("probe without facts: exit %d, want 0 (facts were the only evidence)\n%s", code, out)
	}
}
