// Function facts: the interprocedural layer of the suite. A fact is a
// small, serializable statement about one function — "allocates per
// call", "reads the wall clock", "is an RNG source", "spawns a
// goroutine" — computed bottom-up over the call graph (Summarize) and
// carried between packages either in memory (the standalone driver) or
// through the vetx facts channel of the `go vet -vettool` protocol
// (vettool.go). Downstream analyzers (hotcall, seedflow, concguard, and
// the interprocedural half of simdeterminism) consume facts instead of
// re-reading callee bodies, which is what lets a per-package driver see
// across package boundaries.
//
// The encoding is versioned and deterministic: rows are sorted by
// function key and every field is rendered canonically, so the same
// package summarized any number of times — under any worker count or
// package order — produces byte-identical fact files. vet's action
// cache depends on that.

package lint

import (
	"bytes"
	"fmt"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// FactSet is a bit set of per-function facts.
type FactSet uint8

const (
	// FactAllocates: the function body contains an unsuppressed
	// closure literal or value-to-interface boxing site (the two
	// allocation shapes the hot-path discipline bans), or it calls a
	// module function that does. Functions that panic on every path
	// are exempt — panic formatting is cold by construction.
	FactAllocates FactSet = 1 << iota
	// FactUsesWallClock: the function calls time.Now/time.Since
	// without a justified suppression, directly or transitively.
	FactUsesWallClock
	// FactRNGSource: the function returns an RNG value or constructs
	// one from a caller-supplied seed parameter (see SeedParams).
	FactRNGSource
	// FactSpawnsGoroutine: the function contains a go statement,
	// directly or transitively.
	FactSpawnsGoroutine
	// FactDerivesSeed: the function's integer result is always rooted
	// in sim.DeriveSeed (or an RNG stream's output), so it may be
	// passed wherever a derived seed is required.
	FactDerivesSeed
)

// Has reports whether every bit of f is set in s.
func (s FactSet) Has(f FactSet) bool { return s&f == f }

var factNames = []struct {
	bit  FactSet
	name string
}{
	{FactAllocates, "allocates"},
	{FactUsesWallClock, "usesWallClock"},
	{FactRNGSource, "rngSource"},
	{FactSpawnsGoroutine, "spawnsGoroutine"},
	{FactDerivesSeed, "derivesSeed"},
}

func (s FactSet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range factNames {
		if s.Has(fn.bit) {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "|")
}

// A FuncFact is the full fact record for one function.
type FuncFact struct {
	Flags FactSet
	// SeedParams are the (0-based) parameter indices that flow into an
	// RNG seed inside the function: call sites must pass derived seeds
	// at these positions. Sorted, deduplicated.
	SeedParams []int
	// AllocWhy, ClockWhy, SpawnWhy are one-line witnesses for the
	// corresponding flags: either a site ("closure literal at
	// fluid.go:42") or the first link of the call chain ("calls
	// fluid.helper (closure literal at alloc.go:17)"). Deterministic:
	// the earliest site by source position wins.
	AllocWhy string
	ClockWhy string
	SpawnWhy string
}

// IsZero reports whether the record carries no information (and so is
// omitted from the store and its encoding).
func (f FuncFact) IsZero() bool {
	return f.Flags == 0 && len(f.SeedParams) == 0
}

// Equal reports field-wise equality; the fixed-point loop in Summarize
// uses it to detect convergence.
func (f FuncFact) Equal(g FuncFact) bool {
	if f.Flags != g.Flags || f.AllocWhy != g.AllocWhy ||
		f.ClockWhy != g.ClockWhy || f.SpawnWhy != g.SpawnWhy ||
		len(f.SeedParams) != len(g.SeedParams) {
		return false
	}
	for i, p := range f.SeedParams {
		if g.SeedParams[i] != p {
			return false
		}
	}
	return true
}

// FuncKey returns the stable store key for a function: the origin
// (uninstantiated) object's full package-qualified name, e.g.
// "mltcp/internal/sim.DeriveSeed" or "(*mltcp/internal/sim.Engine).At".
func FuncKey(f *types.Func) string {
	return f.Origin().FullName()
}

// moduleFunc reports whether f is a function of this module (the only
// functions facts are recorded for; everything else — stdlib, interface
// methods, func values — is assumed clean).
func moduleFunc(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	return path == "mltcp" || strings.HasPrefix(path, "mltcp/")
}

// shortFuncName renders f compactly for diagnostics: package name,
// receiver type for methods, function name.
func shortFuncName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, name, ok := namedType(sig.Recv().Type()); ok {
			return fmt.Sprintf("%s.%s.%s", f.Pkg().Name(), name, f.Name())
		}
	}
	return fmt.Sprintf("%s.%s", f.Pkg().Name(), f.Name())
}

// A FactStore holds the facts known to one analysis run: the current
// package's plus everything merged from its dependencies.
type FactStore struct {
	funcs map[string]FuncFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{funcs: make(map[string]FuncFact)}
}

// Get returns the fact record for key, reporting whether one exists.
func (s *FactStore) Get(key string) (FuncFact, bool) {
	if s == nil {
		return FuncFact{}, false
	}
	f, ok := s.funcs[key]
	return f, ok
}

// Lookup returns the fact record for a function object, zero when the
// store holds none (including on a nil store, so analyzers need no
// guards).
func (s *FactStore) Lookup(f *types.Func) FuncFact {
	if s == nil || f == nil {
		return FuncFact{}
	}
	return s.funcs[FuncKey(f)]
}

// Set records a fact, sanitizing witness strings so the line-oriented
// encoding stays unambiguous. Zero records are dropped.
func (s *FactStore) Set(key string, f FuncFact) {
	if f.IsZero() {
		delete(s.funcs, key)
		return
	}
	f.AllocWhy = sanitizeWhy(f.AllocWhy)
	f.ClockWhy = sanitizeWhy(f.ClockWhy)
	f.SpawnWhy = sanitizeWhy(f.SpawnWhy)
	sort.Ints(f.SeedParams)
	s.funcs[key] = f
}

// Len returns the number of recorded functions.
func (s *FactStore) Len() int {
	if s == nil {
		return 0
	}
	return len(s.funcs)
}

// Keys returns the recorded function keys in sorted (encoding) order.
func (s *FactStore) Keys() []string {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.funcs))
	for k := range s.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge copies every record of o into s. Facts are write-once per
// function (each is computed exactly once, in its defining package), so
// merge order cannot change the result.
func (s *FactStore) Merge(o *FactStore) {
	if o == nil {
		return
	}
	for k, f := range o.funcs {
		s.funcs[k] = f
	}
}

// factsVersion heads every encoded fact file. Bump it on any format
// change: decoders reject unknown versions rather than misparse.
const factsVersion = "mltcp-facts/v1"

// sanitizeWhy keeps witness strings single-line and tab-free so they
// embed safely in the tab-separated row format.
func sanitizeWhy(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '\t', '\n', '\r':
			return ' '
		}
		return r
	}, s)
}

// encodeField renders a possibly-empty string field ("-" marks empty,
// and is unambiguous because witnesses always contain a space).
func encodeField(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func decodeField(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Encode renders the store in the versioned, deterministic row format:
//
//	mltcp-facts/v1
//	<func key> \t <flags> \t <seed params> \t <alloc> \t <clock> \t <spawn>
//
// Rows are sorted by key; repeated encodings of equal stores are
// byte-identical.
func (s *FactStore) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(factsVersion)
	buf.WriteByte('\n')
	for _, key := range s.Keys() {
		f := s.funcs[key]
		params := "-"
		if len(f.SeedParams) > 0 {
			parts := make([]string, len(f.SeedParams))
			for i, p := range f.SeedParams {
				parts[i] = strconv.Itoa(p)
			}
			params = strings.Join(parts, ",")
		}
		fmt.Fprintf(&buf, "%s\t%d\t%s\t%s\t%s\t%s\n",
			key, f.Flags, params,
			encodeField(f.AllocWhy), encodeField(f.ClockWhy), encodeField(f.SpawnWhy))
	}
	return buf.Bytes()
}

// DecodeFacts parses an encoded store. Empty input decodes to an empty
// store (the shape of a vetx file written before this tier existed, and
// of the stub emitted for non-module packages).
func DecodeFacts(data []byte) (*FactStore, error) {
	s := NewFactStore()
	if len(data) == 0 {
		return s, nil
	}
	lines := strings.Split(string(data), "\n")
	if lines[0] != factsVersion {
		return nil, fmt.Errorf("lint: unknown facts version %q (want %q)", lines[0], factsVersion)
	}
	for i, line := range lines[1:] {
		if line == "" {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) != 6 {
			return nil, fmt.Errorf("lint: facts row %d: %d columns, want 6", i+2, len(cols))
		}
		flags, err := strconv.ParseUint(cols[1], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("lint: facts row %d: bad flags %q: %v", i+2, cols[1], err)
		}
		f := FuncFact{
			Flags:    FactSet(flags),
			AllocWhy: decodeField(cols[3]),
			ClockWhy: decodeField(cols[4]),
			SpawnWhy: decodeField(cols[5]),
		}
		if cols[2] != "-" {
			for _, p := range strings.Split(cols[2], ",") {
				idx, err := strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("lint: facts row %d: bad seed param %q: %v", i+2, p, err)
				}
				f.SeedParams = append(f.SeedParams, idx)
			}
		}
		if f.IsZero() {
			return nil, fmt.Errorf("lint: facts row %d: empty record for %q", i+2, cols[0])
		}
		s.funcs[cols[0]] = f
	}
	return s, nil
}
