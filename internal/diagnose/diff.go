package diagnose

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// Class labels what kind of divergence the differ found. The values are
// the stable JSON encoding.
type Class string

const (
	// ClassIdentical: manifests, event streams, and metrics all equal.
	ClassIdentical Class = "identical"
	// ClassEquivalent: event streams and metrics equal; manifests differ
	// only in build metadata (the VCS revision). Two builds of the same
	// tree producing equivalent traces is the golden-gate contract.
	ClassEquivalent Class = "equivalent"
	// ClassSchema: the traces were written by different schema versions,
	// or one records event kinds the other's schema never emits.
	ClassSchema Class = "schema-change"
	// ClassSeedDrift: the runs were seeded differently — every downstream
	// event difference is explained by the manifest seeds.
	ClassSeedDrift Class = "seed-drift"
	// ClassTiming: the first divergent events carry the same payload but
	// happen at different times (or report different durations).
	ClassTiming Class = "timing"
	// ClassShare: a bandwidth/cwnd/aggressiveness/queue quantity diverged
	// — the runs allocated link capacity differently.
	ClassShare Class = "share-allocation"
	// ClassStructure: the traces disagree about what happened at all — a
	// stream is truncated or an event's identity fields differ.
	ClassStructure Class = "structure"
	// ClassMetadata: identical behaviour, but manifests disagree beyond
	// the revision (scenario name, capacity, topology, ...).
	ClassMetadata Class = "metadata"
)

// DiffSchema versions the diff report's JSON encoding.
const DiffSchema = 1

// DefaultContext is the default number of surrounding events shown on
// each side of the first divergence.
const DefaultContext = 3

// Options tunes Compare.
type Options struct {
	// Context is the number of events shown before and after the
	// divergence on each side (0 = DefaultContext).
	Context int
}

// Side is one trace's view of the first divergence.
type Side struct {
	// Event is the divergent event (nil when this side's stream ended
	// before the other's).
	Event *telemetry.Event
	// Index is the event's position in this trace's time-sorted event
	// list (-1 when absent).
	Index int
	// Iter is the flow's iteration at the event (-1 when unknown).
	Iter int
	// Line is the event's canonical trace line ("" when absent).
	Line string
	// Context holds decoded lines around the divergence, each prefixed
	// with its global index; the divergent line is prefixed with ">".
	Context []string
}

// Diff is the outcome of comparing two traces.
type Diff struct {
	Class  Class
	Reason string
	// Stream identifies the diverged (kind, flow, link) stream and
	// StreamIndex the diverged element within it (-1 when the traces
	// diverge without an event-level witness).
	Stream      string
	StreamIndex int
	A, B        Side
	// FieldDiffs lists the decoded payload fields that differ, rendered
	// "name: a vs b" ("t" is the event time).
	FieldDiffs []string
	// ManifestDiffs and MetricsDiffs list header/footer-level
	// disagreements, rendered "field: a vs b".
	ManifestDiffs []string
	MetricsDiffs  []string
	// EventsA and EventsB count each side's events.
	EventsA, EventsB int
}

// Identical reports byte-level agreement of everything compared.
func (d *Diff) Identical() bool { return d.Class == ClassIdentical }

// Equivalent reports behavioural agreement: identical events and
// metrics, manifests differing only in build metadata.
func (d *Diff) Equivalent() bool { return d.Class == ClassEquivalent }

// Divergent reports any disagreement beyond build metadata.
func (d *Diff) Divergent() bool { return !d.Identical() && !d.Equivalent() }

// Compare aligns two decoded traces and locates their first divergence.
// The result is a pure function of the inputs: equal traces in either
// order yield mirrored, deterministic reports.
func Compare(a, b *telemetry.Trace, opt Options) *Diff {
	ctxN := opt.Context
	if ctxN <= 0 {
		ctxN = DefaultContext
	}
	d := &Diff{
		StreamIndex: -1,
		A:           Side{Index: -1, Iter: -1},
		B:           Side{Index: -1, Iter: -1},
		EventsA:     len(a.Events),
		EventsB:     len(b.Events),
	}
	mdiffs, revisionOnly, seedDiffer, schemaDiffer := manifestDiffs(a.Manifest, b.Manifest)
	d.ManifestDiffs = mdiffs
	d.MetricsDiffs = metricsDiffs(a.Metrics, b.Metrics)

	ia, ib := indexTrace(a), indexTrace(b)
	key, pos, found := firstDivergence(ia, ib)
	if !found {
		switch {
		case schemaDiffer:
			d.Class = ClassSchema
			d.Reason = "identical events, but the manifests carry different schema versions"
		case len(d.MetricsDiffs) > 0:
			d.Class = ClassStructure
			d.Reason = fmt.Sprintf("metrics diverge over identical event streams (%s)", d.MetricsDiffs[0])
		case seedDiffer:
			d.Class = ClassSeedDrift
			d.Reason = "identical events despite different manifest seeds (seed not reaching the run)"
		case len(d.ManifestDiffs) == 0:
			d.Class = ClassIdentical
			d.Reason = "traces are identical"
		case revisionOnly:
			d.Class = ClassEquivalent
			d.Reason = "traces are equivalent: identical behaviour, manifests differ only in the build revision"
		default:
			d.Class = ClassMetadata
			d.Reason = fmt.Sprintf("identical behaviour, but manifests disagree (%s)", d.ManifestDiffs[0])
		}
		return d
	}

	d.Stream = key.String()
	d.StreamIndex = pos
	sa, sb := ia.streams[key], ib.streams[key]
	if pos < len(sa) {
		gi := sa[pos]
		e := ia.events[gi]
		d.A = Side{Event: &e, Index: gi, Iter: ia.iter[gi], Line: encodeLine(e)}
	}
	if pos < len(sb) {
		gi := sb[pos]
		e := ib.events[gi]
		d.B = Side{Event: &e, Index: gi, Iter: ib.iter[gi], Line: encodeLine(e)}
	}
	d.A.Context = contextLines(ia, d.A.Index, ctxN)
	d.B.Context = contextLines(ib, d.B.Index, ctxN)
	d.FieldDiffs = fieldDiffs(d.A.Event, d.B.Event)
	d.Class, d.Reason = classify(d, key, seedDiffer, schemaDiffer)
	return d
}

// firstDivergence scans every aligned stream and returns the diverged
// stream and element of the earliest-in-time mismatch. Streams are
// scanned in sorted key order, so ties resolve deterministically.
func firstDivergence(ia, ib *indexedTrace) (streamKey, int, bool) {
	keys := make([]streamKey, 0, len(ia.keys)+len(ib.keys))
	keys = append(keys, ia.keys...)
	for _, k := range ib.keys {
		if _, ok := ia.streams[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	var (
		bestKey  streamKey
		bestPos  int
		bestAt   sim.Time
		haveBest bool
	)
	for _, k := range keys {
		sa, sb := ia.streams[k], ib.streams[k]
		n := len(sa)
		if len(sb) < n {
			n = len(sb)
		}
		pos := -1
		for i := 0; i < n; i++ {
			if ia.events[sa[i]] != ib.events[sb[i]] {
				pos = i
				break
			}
		}
		if pos == -1 {
			if len(sa) == len(sb) {
				continue
			}
			pos = n
		}
		var at sim.Time
		switch {
		case pos < len(sa) && pos < len(sb):
			at = ia.events[sa[pos]].At
			if t := ib.events[sb[pos]].At; t < at {
				at = t
			}
		case pos < len(sa):
			at = ia.events[sa[pos]].At
		default:
			at = ib.events[sb[pos]].At
		}
		if !haveBest || at < bestAt {
			bestKey, bestPos, bestAt, haveBest = k, pos, at, true
		}
	}
	return bestKey, bestPos, haveBest
}

// contextLines renders the events around global index gi (the last ctxN
// events when gi is -1, i.e. this side's stream ended early).
func contextLines(ix *indexedTrace, gi, ctxN int) []string {
	lo, hi := gi-ctxN, gi+ctxN
	if gi < 0 {
		lo, hi = len(ix.events)-ctxN, len(ix.events)-1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(ix.events)-1 {
		hi = len(ix.events) - 1
	}
	var out []string
	for i := lo; i <= hi; i++ {
		marker := "  "
		if i == gi {
			marker = "> "
		}
		out = append(out, fmt.Sprintf("%s#%d %s", marker, i, encodeLine(ix.events[i])))
	}
	return out
}

// fieldDiffs lists the decoded fields on which two same-stream events
// disagree ("t" covers the event time).
func fieldDiffs(a, b *telemetry.Event) []string {
	if a == nil || b == nil {
		return nil
	}
	var out []string
	if a.At != b.At {
		out = append(out, fmt.Sprintf("t: %d vs %d", int64(a.At), int64(b.At)))
	}
	fa, fb := a.Fields(), b.Fields()
	for i := range fa {
		if i < len(fb) && fa[i].Value != fb[i].Value {
			out = append(out, fmt.Sprintf("%s: %s vs %s", fa[i].Name, fa[i].Value, fb[i].Value))
		}
	}
	return out
}

// payloadEqual reports whether two events agree on everything but time.
func payloadEqual(a, b *telemetry.Event) bool {
	//lint:allow simunits the differ's contract is bit-exact trace equality; a last-ulp drift IS a divergence
	return a.N == b.N && a.M == b.M && a.V0 == b.V0 && a.V1 == b.V1
}

// classify names the divergence. Precedence: schema mismatches trump
// everything (the traces speak different languages); seed drift trumps
// event-level detail (the manifest already explains it); then the
// diverged event pair decides between timing, share allocation, and
// structure.
func classify(d *Diff, key streamKey, seedDiffer, schemaDiffer bool) (Class, string) {
	if schemaDiffer {
		return ClassSchema, "the traces were written by different schema versions"
	}
	a, b := d.A.Event, d.B.Event
	if a == nil || b == nil {
		short, long := "A", "B"
		n := d.StreamIndex
		if b == nil {
			short, long = "B", "A"
		}
		reason := fmt.Sprintf("stream %s ends after %d events in %s but continues in %s",
			key, n, short, long)
		if seedDiffer {
			return ClassSeedDrift, reason + " (manifest seeds differ)"
		}
		return ClassStructure, reason
	}
	if seedDiffer {
		return ClassSeedDrift, fmt.Sprintf(
			"manifest seeds differ; first downstream divergence is %s element %d", key, d.StreamIndex)
	}
	if payloadEqual(a, b) {
		return ClassTiming, fmt.Sprintf(
			"%s element %d carries the same payload at different times (%v vs %v)",
			key, d.StreamIndex, a.At, b.At)
	}
	switch key.kind {
	case telemetry.KindCwnd, telemetry.KindAgg, telemetry.KindBandwidth,
		telemetry.KindQueue, telemetry.KindDrop, telemetry.KindECNMark,
		telemetry.KindFastRecovery:
		return ClassShare, fmt.Sprintf(
			"%s element %d allocates shares differently (%s)",
			key, d.StreamIndex, strings.Join(d.FieldDiffs, "; "))
	case telemetry.KindIterEnd:
		if a.N == b.N {
			return ClassTiming, fmt.Sprintf(
				"iteration %d of flow %d completed with a different duration (%s)",
				a.N, key.flow, strings.Join(d.FieldDiffs, "; "))
		}
	case telemetry.KindIterStart:
		if a.N == b.N {
			return ClassTiming, fmt.Sprintf(
				"iteration %d of flow %d starts at a different time", a.N, key.flow)
		}
	case telemetry.KindRTO:
		//lint:allow simunits classifying bit-exact recorded values, not computed scores
		if a.V0 == b.V0 {
			return ClassTiming, fmt.Sprintf(
				"%s element %d backed off differently (%s)",
				key, d.StreamIndex, strings.Join(d.FieldDiffs, "; "))
		}
		return ClassShare, fmt.Sprintf(
			"%s element %d reacted to a timeout with a different window (%s)",
			key, d.StreamIndex, strings.Join(d.FieldDiffs, "; "))
	}
	return ClassStructure, fmt.Sprintf(
		"%s element %d diverges (%s)", key, d.StreamIndex, strings.Join(d.FieldDiffs, "; "))
}

// WriteText renders the full report; labelA/labelB name the sides (file
// paths in cmd/mltcp-diff). Output is byte-deterministic.
func (d *Diff) WriteText(w io.Writer, labelA, labelB string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class: %s\n", d.Class)
	fmt.Fprintf(&sb, "reason: %s\n", d.Reason)
	fmt.Fprintf(&sb, "A: %s (%d events)\n", labelA, d.EventsA)
	fmt.Fprintf(&sb, "B: %s (%d events)\n", labelB, d.EventsB)
	if len(d.ManifestDiffs) > 0 {
		sb.WriteString("manifest:\n")
		for _, m := range d.ManifestDiffs {
			fmt.Fprintf(&sb, "  %s\n", m)
		}
	}
	if len(d.MetricsDiffs) > 0 {
		sb.WriteString("metrics:\n")
		for _, m := range d.MetricsDiffs {
			fmt.Fprintf(&sb, "  %s\n", m)
		}
	}
	if d.StreamIndex >= 0 {
		fmt.Fprintf(&sb, "first divergence: stream %s, element %d", d.Stream, d.StreamIndex)
		if it := d.divergenceIter(); it >= 0 {
			fmt.Fprintf(&sb, ", iteration %d", it)
		}
		sb.WriteByte('\n')
		writeSide := func(label string, s Side) {
			if s.Event == nil {
				fmt.Fprintf(&sb, "  %s: <stream ended>\n", label)
				return
			}
			fmt.Fprintf(&sb, "  %s #%d: %s\n", label, s.Index, s.Line)
		}
		writeSide("A", d.A)
		writeSide("B", d.B)
		if len(d.FieldDiffs) > 0 {
			fmt.Fprintf(&sb, "  fields: %s\n", strings.Join(d.FieldDiffs, "; "))
		}
		for _, side := range []struct {
			label string
			s     Side
		}{{"A", d.A}, {"B", d.B}} {
			if len(side.s.Context) == 0 {
				continue
			}
			fmt.Fprintf(&sb, "context %s:\n", side.label)
			for _, line := range side.s.Context {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// divergenceIter returns the iteration the divergence fell in (-1 when
// neither side knows).
func (d *Diff) divergenceIter() int {
	if d.A.Iter >= 0 {
		return d.A.Iter
	}
	return d.B.Iter
}

// AppendJSON appends the report as one stable JSON document. The event
// lines embed their canonical trace encodings verbatim.
func (d *Diff) AppendJSON(b []byte) []byte {
	b = append(b, `{"kind":"trace-diff","schema":`...)
	b = strconv.AppendInt(b, DiffSchema, 10)
	b = append(b, `,"class":`...)
	b = appendJSONString(b, string(d.Class))
	b = append(b, `,"reason":`...)
	b = appendJSONString(b, d.Reason)
	b = append(b, `,"events_a":`...)
	b = strconv.AppendInt(b, int64(d.EventsA), 10)
	b = append(b, `,"events_b":`...)
	b = strconv.AppendInt(b, int64(d.EventsB), 10)
	b = append(b, `,"manifest_diffs":`...)
	b = appendJSONStrings(b, d.ManifestDiffs)
	b = append(b, `,"metrics_diffs":`...)
	b = appendJSONStrings(b, d.MetricsDiffs)
	if d.StreamIndex >= 0 {
		b = append(b, `,"divergence":{"stream":`...)
		b = appendJSONString(b, d.Stream)
		b = append(b, `,"element":`...)
		b = strconv.AppendInt(b, int64(d.StreamIndex), 10)
		b = append(b, `,"iteration":`...)
		b = strconv.AppendInt(b, int64(d.divergenceIter()), 10)
		appendSide := func(b []byte, s Side) []byte {
			if s.Event == nil {
				return append(b, "null"...)
			}
			b = append(b, `{"index":`...)
			b = strconv.AppendInt(b, int64(s.Index), 10)
			b = append(b, `,"iter":`...)
			b = strconv.AppendInt(b, int64(s.Iter), 10)
			b = append(b, `,"event":`...)
			b = append(b, s.Line...) // canonical JSON line
			return append(b, '}')
		}
		b = append(b, `,"a":`...)
		b = appendSide(b, d.A)
		b = append(b, `,"b":`...)
		b = appendSide(b, d.B)
		b = append(b, `,"fields":`...)
		b = appendJSONStrings(b, d.FieldDiffs)
		b = append(b, `,"context_a":`...)
		b = appendJSONStrings(b, d.A.Context)
		b = append(b, `,"context_b":`...)
		b = appendJSONStrings(b, d.B.Context)
		b = append(b, '}')
	}
	return append(b, '}')
}

// manifestDiffs compares two manifests field by field. revisionOnly
// reports that the only disagreements are build revisions; seedDiffer
// and schemaDiffer surface the fields classification keys on.
func manifestDiffs(a, b *telemetry.Manifest) (diffs []string, revisionOnly, seedDiffer, schemaDiffer bool) {
	switch {
	case a == nil && b == nil:
		return nil, false, false, false
	case a == nil || b == nil:
		pa, pb := "present", "present"
		if a == nil {
			pa = "absent"
		}
		if b == nil {
			pb = "absent"
		}
		return []string{fmt.Sprintf("manifest: %s vs %s", pa, pb)}, false, false, false
	}
	add := func(name, va, vb string) {
		if va != vb {
			diffs = append(diffs, fmt.Sprintf("%s: %s vs %s", name, va, vb))
		}
	}
	add("schema", strconv.Itoa(a.Schema), strconv.Itoa(b.Schema))
	schemaDiffer = a.Schema != b.Schema
	add("scenario", a.Scenario, b.Scenario)
	add("backend", a.Backend, b.Backend)
	add("policy", a.Policy, b.Policy)
	add("seed", strconv.FormatUint(a.Seed, 10), strconv.FormatUint(b.Seed, 10))
	seedDiffer = a.Seed != b.Seed
	add("capacity_gbps", fmtFloat(a.CapacityGbps), fmtFloat(b.CapacityGbps))
	add("scale", fmtFloat(a.Scale), fmtFloat(b.Scale))
	add("duration_ns", strconv.FormatInt(a.DurationNS, 10), strconv.FormatInt(b.DurationNS, 10))
	add("revision", a.Revision, b.Revision)
	add("topology", a.Topology, b.Topology)
	add("racks", strconv.Itoa(a.Racks), strconv.Itoa(b.Racks))
	add("fabric_links", strconv.Itoa(a.FabricLinks), strconv.Itoa(b.FabricLinks))
	add("predicted", strconv.FormatBool(a.Predicted), strconv.FormatBool(b.Predicted))
	add("jobs", strconv.Itoa(len(a.Jobs)), strconv.Itoa(len(b.Jobs)))
	for i := 0; i < len(a.Jobs) && i < len(b.Jobs); i++ {
		ja, jb := a.Jobs[i], b.Jobs[i]
		pre := fmt.Sprintf("jobs[%d].", i)
		add(pre+"flow", strconv.Itoa(ja.Flow), strconv.Itoa(jb.Flow))
		add(pre+"name", ja.Name, jb.Name)
		add(pre+"profile", ja.Profile, jb.Profile)
		add(pre+"ideal_ns", strconv.FormatInt(ja.IdealNS, 10), strconv.FormatInt(jb.IdealNS, 10))
		add(pre+"bytes_per_iter", strconv.FormatInt(ja.BytesPerIter, 10), strconv.FormatInt(jb.BytesPerIter, 10))
		add(pre+"src_rack", ja.SrcRack, jb.SrcRack)
		add(pre+"dst_rack", ja.DstRack, jb.DstRack)
		add(pre+"links", strings.Join(ja.Links, ","), strings.Join(jb.Links, ","))
	}
	revisionOnly = len(diffs) > 0
	for _, d := range diffs {
		if !strings.HasPrefix(d, "revision: ") {
			revisionOnly = false
			break
		}
	}
	return diffs, revisionOnly, seedDiffer, schemaDiffer
}

// metricsDiffs compares two metrics snapshots, union-keyed and sorted.
func metricsDiffs(a, b *telemetry.Snapshot) []string {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		pa, pb := "present", "present"
		if a == nil {
			pa = "absent"
		}
		if b == nil {
			pb = "absent"
		}
		return []string{fmt.Sprintf("metrics line: %s vs %s", pa, pb)}
	}
	var diffs []string
	for _, name := range unionKeys(countersKeys(a.Counters), countersKeys(b.Counters)) {
		va, oka := a.Counters[name]
		vb, okb := b.Counters[name]
		if va != vb || oka != okb {
			diffs = append(diffs, fmt.Sprintf("counter %s: %s vs %s",
				name, presentInt(va, oka), presentInt(vb, okb)))
		}
	}
	for _, name := range unionKeys(gaugeKeys(a.Gauges), gaugeKeys(b.Gauges)) {
		va, oka := a.Gauges[name]
		vb, okb := b.Gauges[name]
		//lint:allow simunits diffing recorded snapshot values bit-exactly is the point
		if va != vb || oka != okb {
			diffs = append(diffs, fmt.Sprintf("gauge %s: %s vs %s",
				name, presentFloat(va, oka), presentFloat(vb, okb)))
		}
	}
	for _, name := range unionKeys(histKeys(a.Histograms), histKeys(b.Histograms)) {
		ha, oka := a.Histograms[name]
		hb, okb := b.Histograms[name]
		if oka != okb {
			diffs = append(diffs, fmt.Sprintf("histogram %s: %s vs %s",
				name, presentInt(ha.Count, oka), presentInt(hb.Count, okb)))
			continue
		}
		//lint:allow simunits diffing recorded snapshot values bit-exactly is the point
		if ha.Count != hb.Count || ha.Sum != hb.Sum {
			diffs = append(diffs, fmt.Sprintf("histogram %s: count %d sum %s vs count %d sum %s",
				name, ha.Count, fmtFloat(ha.Sum), hb.Count, fmtFloat(hb.Sum)))
		}
	}
	return diffs
}

func presentInt(v int64, ok bool) string {
	if !ok {
		return "absent"
	}
	return strconv.FormatInt(v, 10)
}

func presentFloat(v float64, ok bool) string {
	if !ok {
		return "absent"
	}
	return fmtFloat(v)
}

func countersKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func gaugeKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func histKeys(m map[string]telemetry.HistSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// unionKeys merges and sorts two key sets.
func unionKeys(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
