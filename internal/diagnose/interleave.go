package diagnose

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mltcp/internal/backend"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// ReportSchema versions the explain report's JSON encoding.
const ReportSchema = 1

// bandThreshold is the pairwise-overlap fraction above which two flows
// count as phase-locked: more than half of the shorter flow's
// communication time collides with the other's.
const bandThreshold = 0.5

// IterPoint is one iteration of the interleave timeline.
type IterPoint struct {
	Iter int
	// Overlap is the backend's overlap score over the iteration's
	// communication window (0 = fully interleaved).
	Overlap float64
	// Bands groups the flows whose communication phases collide this
	// iteration (>bandThreshold pairwise); singletons are omitted.
	Bands [][]int
}

// FlowBand is a set of flows that stayed phase-locked over the final
// quarter of the horizon, and the link they contend on.
type FlowBand struct {
	Flows []int
	// Overlap is the minimum normalized pairwise collision fraction
	// within the band (1 = the pair always collides).
	Overlap float64
	// Link is the first path link all band members share (DefaultLink
	// for non-topology runs, "" if they share none).
	Link string
}

// Report is the interleave explainer's verdict for one trace. Its
// convergence fields are recomputed through backend.ResultFromTrace, so
// they agree exactly with the producing run's backend.Result.
type Report struct {
	Scenario string
	Backend  string
	Policy   string
	// InterleavedAt and OverlapScore mirror backend.Result (InterleavedAt
	// -1 = never converged within the horizon).
	InterleavedAt int
	OverlapScore  float64
	// FinalQuarterOverlap is the overlap score over [3D/4, D) — the
	// steady state the locked-band detection looks at.
	FinalQuarterOverlap float64
	Converged           bool
	// Predicted marks a learned-backend trace: no per-iteration events,
	// so the timeline is empty and the verdict is manifest-only.
	Predicted   bool
	Timeline    []IterPoint
	LockedBands []FlowBand
	// Verdict is the one-line human conclusion.
	Verdict string
}

// Explain reconstructs a trace's interleaving story: the per-iteration
// overlap timeline, the phase bands, and a verdict on whether — and why
// — the flows converged to MLTCP's interleaved schedule.
func Explain(tr *telemetry.Trace) (*Report, error) {
	res, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		return nil, fmt.Errorf("diagnose: %w", err)
	}
	rep := &Report{
		Scenario:      res.Scenario,
		Backend:       res.Backend,
		Policy:        res.Policy,
		InterleavedAt: res.InterleavedAt,
		OverlapScore:  res.OverlapScore,
		Converged:     res.InterleavedAt >= 0,
		Predicted:     tr.Manifest.Predicted,
	}
	if rep.Predicted {
		rep.Verdict = fmt.Sprintf(
			"predicted run (%s backend): the trace carries model predictions, not per-iteration events; no interleave timeline to explain",
			res.Backend)
		return rep, nil
	}

	flows := make([]int, len(tr.Manifest.Jobs))
	paths := make(map[int][]string, len(flows))
	for i, jm := range tr.Manifest.Jobs {
		flows[i] = jm.Flow
		if len(jm.Links) > 0 {
			paths[jm.Flow] = jm.Links
		} else {
			paths[jm.Flow] = []string{DefaultLink}
		}
	}

	rep.FinalQuarterOverlap = backend.OverlapScoreOf(res.Jobs, res.Duration*3/4, res.Duration)
	rep.Timeline = timeline(res, flows)
	rep.LockedBands = lockedBands(res, flows, paths)
	rep.Verdict = verdict(rep)
	return rep, nil
}

// timeline computes the per-iteration overlap and phase bands.
func timeline(res *backend.Result, flows []int) []IterPoint {
	maxIters := 0
	for _, j := range res.Jobs {
		if len(j.CommStarts) > maxIters {
			maxIters = len(j.CommStarts)
		}
	}
	var out []IterPoint
	for k := 0; k < maxIters; k++ {
		from, until := sim.Time(-1), sim.Time(-1)
		for _, j := range res.Jobs {
			s, e, ok := phaseWindow(j, k, res.Duration)
			if !ok {
				continue
			}
			if from < 0 || s < from {
				from = s
			}
			if e > until {
				until = e
			}
		}
		if from < 0 || until <= from {
			continue
		}
		p := IterPoint{
			Iter:    k,
			Overlap: backend.OverlapScoreOf(res.Jobs, from, until),
			Bands:   iterBands(res, flows, k),
		}
		out = append(out, p)
	}
	return out
}

// phaseWindow returns job j's iteration-k communication window; an
// unfinished final phase runs to the horizon.
func phaseWindow(j backend.JobResult, k int, horizon sim.Time) (sim.Time, sim.Time, bool) {
	if k >= len(j.CommStarts) {
		return 0, 0, false
	}
	s := j.CommStarts[k]
	e := horizon
	if k < len(j.CommEnds) {
		e = j.CommEnds[k]
	}
	return s, e, e > s
}

// iterBands groups flows whose iteration-k phases pairwise collide for
// more than bandThreshold of the shorter phase. Singletons are dropped.
func iterBands(res *backend.Result, flows []int, k int) [][]int {
	uf := newUnionFind(len(flows))
	for i := range flows {
		si, ei, oki := phaseWindow(res.Jobs[i], k, res.Duration)
		if !oki {
			continue
		}
		for j := i + 1; j < len(flows); j++ {
			sj, ej, okj := phaseWindow(res.Jobs[j], k, res.Duration)
			if !okj {
				continue
			}
			if pairOverlap(si, ei, sj, ej) > bandThreshold {
				uf.union(i, j)
			}
		}
	}
	return uf.groups(flows)
}

// pairOverlap is the intersection of two windows as a fraction of the
// shorter one.
func pairOverlap(s1, e1, s2, e2 sim.Time) float64 {
	lo, hi := s1, e1
	if s2 > lo {
		lo = s2
	}
	if e2 < hi {
		hi = e2
	}
	if hi <= lo {
		return 0
	}
	min := e1 - s1
	if d := e2 - s2; d < min {
		min = d
	}
	if min <= 0 {
		return 0
	}
	return (hi - lo).Seconds() / min.Seconds()
}

// lockedBands finds flow sets still phase-locked over the final quarter
// of the horizon: normalized pairwise overlap above bandThreshold,
// grouped transitively, singletons dropped. The backend's two-job
// overlap score saturates at 1/2 (all-collide = (n-1)/n), so the
// pairwise score is doubled to a [0, 1] collision fraction first.
func lockedBands(res *backend.Result, flows []int, paths map[int][]string) []FlowBand {
	from, until := res.Duration*3/4, res.Duration
	n := len(flows)
	uf := newUnionFind(n)
	pair := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ov := 2 * backend.OverlapScoreOf(
				[]backend.JobResult{res.Jobs[i], res.Jobs[j]}, from, until)
			pair[[2]int{i, j}] = ov
			if ov > bandThreshold {
				uf.union(i, j)
			}
		}
	}
	var bands []FlowBand
	for _, members := range uf.groupIndices() {
		band := FlowBand{Overlap: 1}
		for _, i := range members {
			band.Flows = append(band.Flows, flows[i])
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				if ov := pair[[2]int{members[a], members[b]}]; ov < band.Overlap {
					band.Overlap = ov
				}
			}
		}
		band.Link = commonLink(band.Flows, paths)
		bands = append(bands, band)
	}
	return bands
}

// commonLink returns the first path link (in the first flow's path
// order) shared by every flow in the set, "" if none.
func commonLink(flowSet []int, paths map[int][]string) string {
	if len(flowSet) == 0 {
		return ""
	}
	for _, link := range paths[flowSet[0]] {
		shared := true
		for _, f := range flowSet[1:] {
			if !pathUses(paths[f], link) {
				shared = false
				break
			}
		}
		if shared {
			return link
		}
	}
	return ""
}

// verdict renders the one-line conclusion.
func verdict(r *Report) string {
	if r.Converged {
		return fmt.Sprintf(
			"interleaved at iter %d because from there every job's iteration times stay within %.0f%% of its ideal (overlap score %.2f over the second half)",
			r.InterleavedAt, 100*backend.InterleaveTol, r.OverlapScore)
	}
	if len(r.LockedBands) > 0 {
		var parts []string
		for _, b := range r.LockedBands {
			where := ""
			if b.Link != "" {
				where = " on link " + b.Link
			}
			parts = append(parts, fmt.Sprintf("flows %s locked in phase%s (pairwise overlap %.2f over the final quarter)",
				joinInts(b.Flows), where, b.Overlap))
		}
		return "failed: " + strings.Join(parts, "; ")
	}
	return fmt.Sprintf(
		"failed: no iteration from which all jobs stay within %.0f%% of ideal, but no flow pair stayed phase-locked either (final-quarter overlap %.2f) — likely still converging at the horizon",
		100*backend.InterleaveTol, r.FinalQuarterOverlap)
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// WriteText renders the report; the timeline is downsampled to at most
// maxRows rows (0 = 12). Output is byte-deterministic.
func (r *Report) WriteText(w io.Writer, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 12
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario: %s (%s backend, policy %s)\n", r.Scenario, r.Backend, r.Policy)
	fmt.Fprintf(&sb, "verdict: %s\n", r.Verdict)
	if r.Predicted {
		_, err := io.WriteString(w, sb.String())
		return err
	}
	at := "never"
	if r.InterleavedAt >= 0 {
		at = "iter " + strconv.Itoa(r.InterleavedAt)
	}
	fmt.Fprintf(&sb, "interleaved-at: %s   overlap: %.3f (second half)   %.3f (final quarter)\n",
		at, r.OverlapScore, r.FinalQuarterOverlap)
	if len(r.Timeline) > 0 {
		sb.WriteString("timeline:\n")
		for _, p := range sampleTimeline(r.Timeline, maxRows) {
			fmt.Fprintf(&sb, "  iter %-4d overlap %.3f", p.Iter, p.Overlap)
			if len(p.Bands) > 0 {
				var bands []string
				for _, b := range p.Bands {
					bands = append(bands, "{"+joinInts(b)+"}")
				}
				fmt.Fprintf(&sb, "  bands %s", strings.Join(bands, " "))
			}
			sb.WriteByte('\n')
		}
	}
	for _, b := range r.LockedBands {
		where := b.Link
		if where == "" {
			where = "(no shared link)"
		}
		fmt.Fprintf(&sb, "locked band: flows %s on %s, pairwise overlap %.2f\n",
			joinInts(b.Flows), where, b.Overlap)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// sampleTimeline picks at most n evenly spaced points, always keeping
// the first and last.
func sampleTimeline(tl []IterPoint, n int) []IterPoint {
	if len(tl) <= n || n < 2 {
		return tl
	}
	out := make([]IterPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tl[i*(len(tl)-1)/(n-1)])
	}
	return out
}

// AppendJSON appends the report as one stable JSON document.
func (r *Report) AppendJSON(b []byte) []byte {
	b = append(b, `{"kind":"interleave-report","schema":`...)
	b = strconv.AppendInt(b, ReportSchema, 10)
	b = append(b, `,"scenario":`...)
	b = appendJSONString(b, r.Scenario)
	b = append(b, `,"backend":`...)
	b = appendJSONString(b, r.Backend)
	b = append(b, `,"policy":`...)
	b = appendJSONString(b, r.Policy)
	b = append(b, `,"interleaved_at":`...)
	b = strconv.AppendInt(b, int64(r.InterleavedAt), 10)
	b = append(b, `,"overlap_score":`...)
	b = append(b, fmtFloat(r.OverlapScore)...)
	b = append(b, `,"final_quarter_overlap":`...)
	b = append(b, fmtFloat(r.FinalQuarterOverlap)...)
	b = append(b, `,"converged":`...)
	b = strconv.AppendBool(b, r.Converged)
	b = append(b, `,"predicted":`...)
	b = strconv.AppendBool(b, r.Predicted)
	b = append(b, `,"timeline":[`...)
	for i, p := range r.Timeline {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"iter":`...)
		b = strconv.AppendInt(b, int64(p.Iter), 10)
		b = append(b, `,"overlap":`...)
		b = append(b, fmtFloat(p.Overlap)...)
		b = append(b, `,"bands":[`...)
		for j, band := range p.Bands {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendJSONInts(b, band)
		}
		b = append(b, "]}"...)
	}
	b = append(b, `],"locked_bands":[`...)
	for i, band := range r.LockedBands {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"flows":`...)
		b = appendJSONInts(b, band.Flows)
		b = append(b, `,"overlap":`...)
		b = append(b, fmtFloat(band.Overlap)...)
		b = append(b, `,"link":`...)
		b = appendJSONString(b, band.Link)
		b = append(b, '}')
	}
	b = append(b, `],"verdict":`...)
	b = appendJSONString(b, r.Verdict)
	return append(b, '}')
}

func appendJSONInts(b []byte, xs []int) []byte {
	b = append(b, '[')
	for i, x := range xs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return append(b, ']')
}

// unionFind is a tiny deterministic disjoint-set over [0, n).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if rb < ra { // smallest index roots, for deterministic grouping
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

// groupIndices returns the non-singleton groups as sorted index slices,
// ordered by their smallest member.
func (u *unionFind) groupIndices() [][]int {
	byRoot := make(map[int][]int)
	for i := range u.parent {
		r := u.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r, members := range byRoot {
		if len(members) > 1 {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		sort.Ints(byRoot[r])
		out = append(out, byRoot[r])
	}
	return out
}

// groups maps groupIndices through a flow-ID table.
func (u *unionFind) groups(flows []int) [][]int {
	idx := u.groupIndices()
	if len(idx) == 0 {
		return nil
	}
	out := make([][]int, len(idx))
	for i, members := range idx {
		ids := make([]int, len(members))
		for j, m := range members {
			ids[j] = flows[m]
		}
		sort.Ints(ids)
		out[i] = ids
	}
	return out
}
