package diagnose

import (
	"bytes"
	"strings"
	"testing"
)

// TestExplainAgreesWithResult is the tentpole acceptance gate: on every
// checked-in scenario, the explainer's convergence diagnostics must
// equal the producing backend.Result's, exactly.
func TestExplainAgreesWithResult(t *testing.T) {
	files := []string{
		"fourjobs.json", "hetero.json", "noisy-six.json",
		"cluster-fattree.json", "learned-demo.json",
	}
	for _, file := range files {
		t.Run(strings.TrimSuffix(file, ".json"), func(t *testing.T) {
			tr, res := runTraced(t, loadScenario(t, file), "fluid", 1)
			rep, err := Explain(tr)
			if err != nil {
				t.Fatal(err)
			}
			if rep.InterleavedAt != res.InterleavedAt {
				t.Errorf("InterleavedAt = %d, Result says %d", rep.InterleavedAt, res.InterleavedAt)
			}
			if rep.OverlapScore != res.OverlapScore {
				t.Errorf("OverlapScore = %v, Result says %v", rep.OverlapScore, res.OverlapScore)
			}
			if rep.Converged != (res.InterleavedAt >= 0) {
				t.Errorf("Converged = %v with InterleavedAt %d", rep.Converged, res.InterleavedAt)
			}
			if rep.Converged && !strings.Contains(rep.Verdict, "interleaved at iter") {
				t.Errorf("converged verdict = %q", rep.Verdict)
			}
			if !rep.Converged && !strings.HasPrefix(rep.Verdict, "failed:") {
				t.Errorf("non-converged verdict = %q", rep.Verdict)
			}
		})
	}
}

// TestExplainLockedPair: the hand-built never-converging fixture must
// yield InterleavedAt -1 and name both flows as a locked band.
func TestExplainLockedPair(t *testing.T) {
	rep, err := Explain(lockedTrace())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged || rep.InterleavedAt != -1 {
		t.Fatalf("locked fixture converged: InterleavedAt=%d", rep.InterleavedAt)
	}
	if len(rep.LockedBands) != 1 {
		t.Fatalf("locked bands = %v, want one band", rep.LockedBands)
	}
	band := rep.LockedBands[0]
	if len(band.Flows) != 2 || band.Flows[0] != 1 || band.Flows[1] != 2 {
		t.Errorf("band flows = %v, want [1 2]", band.Flows)
	}
	if band.Link != DefaultLink {
		t.Errorf("band link = %q, want %q", band.Link, DefaultLink)
	}
	if band.Overlap <= bandThreshold {
		t.Errorf("band overlap = %v, want > %v", band.Overlap, bandThreshold)
	}
	if !strings.Contains(rep.Verdict, "failed: flows 1,2 locked in phase on link "+DefaultLink) {
		t.Errorf("verdict = %q", rep.Verdict)
	}
	// Timeline: every iteration has the two flows banded together.
	if len(rep.Timeline) == 0 {
		t.Fatal("empty timeline")
	}
	for _, p := range rep.Timeline {
		if len(p.Bands) != 1 || len(p.Bands[0]) != 2 {
			t.Errorf("iter %d bands = %v, want [[1 2]]", p.Iter, p.Bands)
		}
	}
}

func TestExplainPredicted(t *testing.T) {
	tr := lockedTrace()
	tr.Manifest.Predicted = true
	tr.Events = nil
	rep, err := Explain(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Predicted {
		t.Fatal("Predicted not set")
	}
	if !strings.Contains(rep.Verdict, "predicted run") {
		t.Errorf("verdict = %q", rep.Verdict)
	}
	if len(rep.Timeline) != 0 {
		t.Errorf("predicted report has a timeline (%d points)", len(rep.Timeline))
	}
}

// TestExplainByteDeterministic: text and JSON renderings are identical
// across repeated analyses of the same trace.
func TestExplainByteDeterministic(t *testing.T) {
	tr, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	render := func() (string, string) {
		rep, err := Explain(tr)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := rep.WriteText(&txt, 0); err != nil {
			t.Fatal(err)
		}
		return txt.String(), string(rep.AppendJSON(nil))
	}
	txt1, js1 := render()
	txt2, js2 := render()
	if txt1 != txt2 {
		t.Error("text report not byte-deterministic")
	}
	if js1 != js2 {
		t.Error("JSON report not byte-deterministic")
	}
	if !strings.HasPrefix(js1, `{"kind":"interleave-report","schema":1,`) {
		t.Errorf("JSON header = %.60s", js1)
	}
}

// TestExplainNeverConvergedText: the text report spells out a "never"
// interleaved-at rather than printing -1.
func TestExplainNeverConvergedText(t *testing.T) {
	rep, err := Explain(lockedTrace())
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := rep.WriteText(&txt, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "interleaved-at: never") {
		t.Errorf("report does not spell out never:\n%s", txt.String())
	}
	if !strings.Contains(txt.String(), "locked band: flows 1,2") {
		t.Errorf("report does not list the locked band:\n%s", txt.String())
	}
}

func TestSampleTimeline(t *testing.T) {
	tl := make([]IterPoint, 10)
	for i := range tl {
		tl[i].Iter = i
	}
	got := sampleTimeline(tl, 4)
	if len(got) != 4 || got[0].Iter != 0 || got[3].Iter != 9 {
		t.Errorf("sampleTimeline = %v", got)
	}
	if n := len(sampleTimeline(tl, 20)); n != 10 {
		t.Errorf("oversampling changed length to %d", n)
	}
	if n := len(sampleTimeline(nil, 4)); n != 0 {
		t.Errorf("empty timeline sampled to %d", n)
	}
}
