package diagnose

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"mltcp/internal/telemetry"
)

// cloneTrace deep-copies a trace so tests can perturb one side.
func cloneTrace(tr *telemetry.Trace) *telemetry.Trace {
	out := &telemetry.Trace{}
	if tr.Manifest != nil {
		m := *tr.Manifest
		m.Jobs = append([]telemetry.ManifestJob(nil), tr.Manifest.Jobs...)
		out.Manifest = &m
	}
	out.Events = append([]telemetry.Event(nil), tr.Events...)
	if tr.Metrics != nil {
		s := &telemetry.Snapshot{}
		if tr.Metrics.Counters != nil {
			s.Counters = make(map[string]int64, len(tr.Metrics.Counters))
			for k, v := range tr.Metrics.Counters {
				s.Counters[k] = v
			}
		}
		if tr.Metrics.Gauges != nil {
			s.Gauges = make(map[string]float64, len(tr.Metrics.Gauges))
			for k, v := range tr.Metrics.Gauges {
				s.Gauges[k] = v
			}
		}
		if tr.Metrics.Histograms != nil {
			s.Histograms = make(map[string]telemetry.HistSnapshot, len(tr.Metrics.Histograms))
			for k, v := range tr.Metrics.Histograms {
				s.Histograms[k] = v
			}
		}
		out.Metrics = s
	}
	return out
}

func TestCompareIdenticalSameSeed(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), backendName(t), 1)
	b, _ := runTraced(t, twoJobScenario(), backendName(t), 1)
	d := Compare(a, b, Options{})
	if !d.Identical() {
		t.Fatalf("same-seed traces not identical: class=%s reason=%s", d.Class, d.Reason)
	}
	if d.Divergent() {
		t.Fatal("identical diff reported divergent")
	}
}

func backendName(t *testing.T) string {
	t.Helper()
	return "fluid"
}

// TestCompareByteDeterministic: both renderings of the same diff are
// byte-identical across repeated runs.
func TestCompareByteDeterministic(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b, _ := runTraced(t, twoJobScenario(), "fluid", 2)
	render := func() (string, string) {
		d := Compare(a, b, Options{})
		var txt bytes.Buffer
		if err := d.WriteText(&txt, "a.jsonl", "b.jsonl"); err != nil {
			t.Fatal(err)
		}
		return txt.String(), string(d.AppendJSON(nil))
	}
	txt1, js1 := render()
	txt2, js2 := render()
	if txt1 != txt2 {
		t.Error("text report not byte-deterministic")
	}
	if js1 != js2 {
		t.Error("JSON report not byte-deterministic")
	}
	if !strings.HasPrefix(js1, `{"kind":"trace-diff","schema":1,`) {
		t.Errorf("JSON header = %.60s", js1)
	}
}

func TestCompareSeedDrift(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b, _ := runTraced(t, twoJobScenario(), "fluid", 2)
	d := Compare(a, b, Options{})
	if !d.Divergent() {
		t.Fatal("distinct seeds compared equal")
	}
	if d.Class != ClassSeedDrift {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassSeedDrift, d.Reason)
	}
	if !strings.Contains(strings.Join(d.ManifestDiffs, "\n"), "seed: 1 vs 2") {
		t.Errorf("manifest diffs missing seed line: %v", d.ManifestDiffs)
	}
}

// TestComparePerturbedEvent: flipping one event's payload mid-trace must
// pinpoint exactly that event, with its decoded field diff and context.
func TestComparePerturbedEvent(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	target := -1
	for i, e := range b.Events {
		if e.Kind == telemetry.KindIterEnd && e.N >= 3 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no iter_end event with N>=3 in fixture trace")
	}
	b.Events[target].M += 12345

	d := Compare(a, b, Options{Context: 2})
	if !d.Divergent() {
		t.Fatal("perturbed trace compared equal")
	}
	if d.A.Event == nil || d.B.Event == nil {
		t.Fatal("divergence sides not populated")
	}
	if d.B.Index != target {
		t.Errorf("divergence at index %d, perturbed %d", d.B.Index, target)
	}
	if *d.A.Event != a.Events[target] || *d.B.Event != b.Events[target] {
		t.Error("reported events are not the perturbed pair")
	}
	joined := strings.Join(d.FieldDiffs, "\n")
	if !strings.Contains(joined, "comm_ns:") {
		t.Errorf("field diffs missing comm_ns: %v", d.FieldDiffs)
	}
	// Context windows: 2 before + divergent + 2 after, divergent marked.
	if len(d.A.Context) != 5 {
		t.Errorf("context window = %d lines, want 5", len(d.A.Context))
	}
	marked := false
	for _, line := range d.A.Context {
		if strings.HasPrefix(line, "> ") {
			marked = true
		}
	}
	if !marked {
		t.Error("no context line marked as the divergence")
	}
	if d.Class != ClassTiming {
		t.Errorf("iter_end duration change classified %s, want %s", d.Class, ClassTiming)
	}
}

func TestCompareTimingShift(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	// Shift one event by 1ns without landing on another event's slot.
	for i := range b.Events {
		if b.Events[i].Kind == telemetry.KindIterStart && b.Events[i].N == 2 {
			b.Events[i].At++
			break
		}
	}
	d := Compare(a, b, Options{})
	if d.Class != ClassTiming {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassTiming, d.Reason)
	}
}

func TestCompareShareAllocation(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	perturbed := false
	for i := range b.Events {
		k := b.Events[i].Kind
		if k == telemetry.KindBandwidth || k == telemetry.KindAgg || k == telemetry.KindCwnd {
			b.Events[i].V0 = b.Events[i].V0*1.5 + 1
			perturbed = true
			break
		}
	}
	if !perturbed {
		t.Skip("fixture trace has no share-carrying events")
	}
	d := Compare(a, b, Options{})
	if d.Class != ClassShare {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassShare, d.Reason)
	}
}

func TestCompareTruncatedStream(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	b.Events = b.Events[:len(b.Events)-1]
	d := Compare(a, b, Options{})
	if !d.Divergent() {
		t.Fatal("truncated trace compared equal")
	}
	if d.Class != ClassStructure {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassStructure, d.Reason)
	}
	if d.B.Event != nil {
		t.Error("truncated side reported an event")
	}
	if d.A.Event == nil {
		t.Error("surviving side's extra event not reported")
	}
}

func TestCompareSchemaChange(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	b.Manifest.Schema = 2
	d := Compare(a, b, Options{})
	if d.Class != ClassSchema {
		t.Errorf("class = %s, want %s", d.Class, ClassSchema)
	}
}

// TestCompareRevisionOnly pins the golden-gate contract: two builds of
// the same tree differ only in the manifest revision and must compare
// equivalent, not divergent.
func TestCompareRevisionOnly(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	b.Manifest.Revision = "deadbeef"
	if a.Manifest.Revision == b.Manifest.Revision {
		b.Manifest.Revision = "cafef00d"
	}
	d := Compare(a, b, Options{})
	if !d.Equivalent() {
		t.Fatalf("revision-only difference: class=%s, want %s", d.Class, ClassEquivalent)
	}
	if d.Divergent() {
		t.Error("equivalent diff reported divergent")
	}
}

func TestCompareMetadata(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	b.Manifest.Scenario = "renamed"
	d := Compare(a, b, Options{})
	if d.Class != ClassMetadata {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassMetadata, d.Reason)
	}
}

func TestCompareMetricsOnly(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	if b.Metrics == nil || len(b.Metrics.Counters) == 0 {
		t.Skip("fixture trace has no counters")
	}
	keys := countersKeys(b.Metrics.Counters)
	sort.Strings(keys)
	b.Metrics.Counters[keys[0]]++
	d := Compare(a, b, Options{})
	if d.Class != ClassStructure {
		t.Errorf("class = %s, want %s (reason: %s)", d.Class, ClassStructure, d.Reason)
	}
	if len(d.MetricsDiffs) == 0 {
		t.Error("metrics diffs empty")
	}
}

// TestCompareEarliestDivergenceWins: with two perturbations, the report
// must point at the earlier one.
func TestCompareEarliestDivergenceWins(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	var early, late int
	picked := 0
	for i := range b.Events {
		if b.Events[i].Kind != telemetry.KindIterEnd {
			continue
		}
		if picked == 1 {
			early = i
			b.Events[i].M += 7
			picked++
		} else if picked == 2 && i > early {
			late = i
			b.Events[i].M += 7
			picked++
			break
		} else if picked == 0 {
			picked = 1 // skip the very first iter_end
		}
	}
	if picked != 3 {
		t.Skip("fixture trace too short for a double perturbation")
	}
	d := Compare(a, b, Options{})
	if d.B.Index != early {
		t.Errorf("divergence at %d, want earliest perturbation %d (late %d)", d.B.Index, early, late)
	}
}

func TestCompareSymmetry(t *testing.T) {
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	b.Events = b.Events[:len(b.Events)-1]
	ab := Compare(a, b, Options{})
	ba := Compare(b, a, Options{})
	if ab.Class != ba.Class {
		t.Errorf("class asymmetric: %s vs %s", ab.Class, ba.Class)
	}
	if ab.A.Index != ba.B.Index || ab.B.Index != ba.A.Index {
		t.Errorf("sides not mirrored: ab=(%d,%d) ba=(%d,%d)",
			ab.A.Index, ab.B.Index, ba.A.Index, ba.B.Index)
	}
}

func TestCompareNilManifests(t *testing.T) {
	// Hotpath golden traces are written without manifests; the differ
	// must handle both-nil and one-nil.
	a, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	b := cloneTrace(a)
	a2, b2 := cloneTrace(a), cloneTrace(b)
	a2.Manifest, b2.Manifest = nil, nil
	if d := Compare(a2, b2, Options{}); !d.Identical() {
		t.Errorf("both-nil manifests: class = %s", d.Class)
	}
	b2.Manifest = b.Manifest
	if d := Compare(a2, b2, Options{}); d.Class != ClassMetadata {
		t.Errorf("one-nil manifest: class = %s, want %s", d.Class, ClassMetadata)
	}
}
