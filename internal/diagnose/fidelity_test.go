package diagnose

import (
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/sim"
)

func fidelityFixture(fctsA, fctsB []sim.Time) (*backend.Result, *backend.Result) {
	mk := func(fcts []sim.Time) *backend.Result {
		return &backend.Result{Jobs: []backend.JobResult{{
			Name: "J1", Ideal: 100 * sim.Millisecond, FCTs: fcts,
		}}}
	}
	return mk(fctsA), mk(fctsB)
}

func TestCompareResultsAgreeing(t *testing.T) {
	a, b := fidelityFixture(
		[]sim.Time{50 * sim.Millisecond, 52 * sim.Millisecond},
		[]sim.Time{51 * sim.Millisecond, 50 * sim.Millisecond})
	if divs := CompareResults(a, b, 0.05); len(divs) != 0 {
		t.Errorf("within-tolerance results diverge: %+v", divs)
	}
}

func TestCompareResultsFirstDivergence(t *testing.T) {
	a, b := fidelityFixture(
		[]sim.Time{50 * sim.Millisecond, 52 * sim.Millisecond, 90 * sim.Millisecond},
		[]sim.Time{51 * sim.Millisecond, 53 * sim.Millisecond, 50 * sim.Millisecond})
	divs := CompareResults(a, b, 0.05)
	if len(divs) != 1 {
		t.Fatalf("divergences = %+v, want one", divs)
	}
	d := divs[0]
	if d.Iter != 2 || d.Job != 0 || d.Name != "J1" {
		t.Errorf("divergence = %+v, want job 0 iter 2", d)
	}
	if d.RelGap < 0.39 || d.RelGap > 0.41 {
		t.Errorf("rel gap = %v, want 0.4", d.RelGap)
	}
}

func TestCompareResultsCountMismatch(t *testing.T) {
	a, b := fidelityFixture(
		[]sim.Time{50 * sim.Millisecond, 52 * sim.Millisecond},
		[]sim.Time{50 * sim.Millisecond})
	divs := CompareResults(a, b, 0.05)
	if len(divs) != 1 || divs[0].Iter != -1 {
		t.Fatalf("divergences = %+v, want one count-mismatch entry", divs)
	}
	if divs[0].FCTA < 0 || divs[0].FCTB >= 0 {
		t.Errorf("sides = (%v, %v), want (next FCT, ended)", divs[0].FCTA, divs[0].FCTB)
	}
}

func TestFormatFidelityDivergences(t *testing.T) {
	a, b := fidelityFixture(
		[]sim.Time{90 * sim.Millisecond},
		[]sim.Time{50 * sim.Millisecond})
	msg := FormatFidelityDivergences(CompareResults(a, b, 0.05), "fluid", "packet")
	for _, want := range []string{"fluid vs packet", "job 0 (J1)", "iter 0"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	empty := FormatFidelityDivergences(nil, "fluid", "packet")
	if !strings.Contains(empty, "agree within tolerance") {
		t.Errorf("empty message = %q", empty)
	}
}
