package diagnose

import (
	"fmt"
	"strings"

	"mltcp/internal/backend"
)

// FidelityDivergence pinpoints where two fidelity tiers' views of the
// same job first disagree.
type FidelityDivergence struct {
	// Job indexes the job in scenario order; Name labels it.
	Job  int
	Name string
	// Iter is the first iteration whose flow completion times differ by
	// more than tol relative to the job's ideal (-1 when only the
	// iteration counts differ).
	Iter int
	// FCTA and FCTB are the diverged completion times in seconds (the
	// shorter side reports -1 past its last iteration).
	FCTA, FCTB float64
	// RelGap is |FCTA-FCTB| / ideal.
	RelGap float64
}

// CompareResults locates, per job, the first iteration where two
// backend results diverge beyond tol (relative to the job's ideal
// iteration time). Jobs that agree within tol produce no entry. Use it
// to turn a cross-fidelity tolerance failure ("MaxSlowdownGap too big")
// into an actionable "job 2 diverges from iteration 14 on".
func CompareResults(a, b *backend.Result, tol float64) []FidelityDivergence {
	var out []FidelityDivergence
	n := len(a.Jobs)
	if len(b.Jobs) < n {
		n = len(b.Jobs)
	}
	for ji := 0; ji < n; ji++ {
		ja, jb := a.Jobs[ji], b.Jobs[ji]
		ideal := ja.Ideal.Seconds()
		if ideal <= 0 {
			continue
		}
		iters := len(ja.FCTs)
		if len(jb.FCTs) < iters {
			iters = len(jb.FCTs)
		}
		found := false
		for k := 0; k < iters; k++ {
			fa, fb := ja.FCTs[k].Seconds(), jb.FCTs[k].Seconds()
			gap := fa - fb
			if gap < 0 {
				gap = -gap
			}
			if gap/ideal > tol {
				out = append(out, FidelityDivergence{
					Job: ji, Name: ja.Name, Iter: k,
					FCTA: fa, FCTB: fb, RelGap: gap / ideal,
				})
				found = true
				break
			}
		}
		if !found && len(ja.FCTs) != len(jb.FCTs) {
			fa, fb := -1.0, -1.0
			if iters < len(ja.FCTs) {
				fa = ja.FCTs[iters].Seconds()
			}
			if iters < len(jb.FCTs) {
				fb = jb.FCTs[iters].Seconds()
			}
			out = append(out, FidelityDivergence{
				Job: ji, Name: ja.Name, Iter: -1, FCTA: fa, FCTB: fb,
			})
		}
	}
	return out
}

// FormatFidelityDivergences renders CompareResults output for test
// failure messages, naming the sides.
func FormatFidelityDivergences(divs []FidelityDivergence, labelA, labelB string) string {
	if len(divs) == 0 {
		return fmt.Sprintf("%s and %s agree within tolerance on every per-iteration FCT", labelA, labelB)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s first per-iteration divergences:\n", labelA, labelB)
	for _, d := range divs {
		if d.Iter < 0 {
			fmt.Fprintf(&sb, "  job %d (%s): iteration counts differ (next FCT %s vs %s)\n",
				d.Job, d.Name, fmtSecondsOrEnd(d.FCTA), fmtSecondsOrEnd(d.FCTB))
			continue
		}
		fmt.Fprintf(&sb, "  job %d (%s): iter %d FCT %.6fs vs %.6fs (gap %.1f%% of ideal)\n",
			d.Job, d.Name, d.Iter, d.FCTA, d.FCTB, 100*d.RelGap)
	}
	return strings.TrimSuffix(sb.String(), "\n")
}

func fmtSecondsOrEnd(v float64) string {
	if v < 0 {
		return "<ended>"
	}
	return fmt.Sprintf("%.6fs", v)
}
