package diagnose

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// twoJobScenario is the short deterministic scenario the differ and
// attribution tests run.
func twoJobScenario() *config.Scenario {
	return &config.Scenario{
		Name:        "diag-two-gpt2",
		Policy:      "mltcp",
		DurationSec: 20,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
}

// runTraced runs the scenario under a recorder, serializes the trace,
// and decodes it back — the exact round trip cmd/mltcp-diff sees.
func runTraced(t testing.TB, scn *config.Scenario, backendName string, seed uint64) (*telemetry.Trace, *backend.Result) {
	t.Helper()
	b, err := backend.New(backendName)
	if err != nil {
		t.Fatal(err)
	}
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := b.Run(ctx, scn, seed)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// loadScenario decodes one checked-in example scenario.
func loadScenario(t *testing.T, file string) *config.Scenario {
	t.Helper()
	f, err := os.Open(filepath.FromSlash("../../examples/scenarios/" + file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scn, err := config.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return &scn
}

// lockedTrace is a hand-built fixture of two flows that never converge:
// every iteration takes twice its ideal, and both flows' communication
// phases coincide exactly for the whole horizon.
func lockedTrace() *telemetry.Trace {
	m := &telemetry.Manifest{
		Schema:       telemetry.SchemaVersion,
		Scenario:     "locked-pair",
		Backend:      "fluid",
		Policy:       "mltcp",
		Seed:         1,
		CapacityGbps: 50,
		Scale:        1,
		DurationNS:   int64(16 * sim.Millisecond),
		Jobs: []telemetry.ManifestJob{
			{Flow: 1, Name: "J1", IdealNS: int64(sim.Millisecond), BytesPerIter: 1 << 20},
			{Flow: 2, Name: "J2", IdealNS: int64(sim.Millisecond), BytesPerIter: 1 << 20},
		},
	}
	var ev []telemetry.Event
	for k := 0; k < 8; k++ {
		s := sim.Time(k) * 2 * sim.Millisecond
		e := s + 1900*sim.Microsecond
		for _, f := range []int{1, 2} {
			ev = append(ev,
				telemetry.Event{At: s, Kind: telemetry.KindIterStart, Flow: f, N: int64(k)},
				telemetry.Event{At: e, Kind: telemetry.KindIterEnd, Flow: f, N: int64(k), M: int64(e - s)})
		}
	}
	return &telemetry.Trace{Manifest: m, Events: ev}
}
