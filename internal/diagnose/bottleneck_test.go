package diagnose

import (
	"bytes"
	"strings"
	"testing"
)

func TestAttributeTwoJobs(t *testing.T) {
	tr, res := runTraced(t, twoJobScenario(), "fluid", 1)
	at, err := Attribute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if at.Scenario != res.Scenario || at.Backend != "fluid" {
		t.Errorf("identity = (%s, %s)", at.Scenario, at.Backend)
	}
	if len(at.Links) != 1 || at.Links[0].Link != DefaultLink {
		t.Fatalf("links = %+v, want the single %q", at.Links, DefaultLink)
	}
	if got := at.Links[0].Flows; len(got) != 2 {
		t.Errorf("link flows = %v, want both jobs", got)
	}
	if len(at.Iters) == 0 {
		t.Fatal("no iterations attributed")
	}
	for _, d := range at.Iters {
		if d.Binding != DefaultLink {
			t.Fatalf("iter (%d,%d) binding = %q", d.Flow, d.Iter, d.Binding)
		}
		if d.End <= d.Start || d.FCT != d.End-d.Start {
			t.Fatalf("iter (%d,%d) window [%v,%v) fct %v inconsistent", d.Flow, d.Iter, d.Start, d.End, d.FCT)
		}
		for _, lw := range d.Links {
			var wsum, fsum float64
			for _, fs := range lw.Flows {
				wsum += fs.WeightedBps
				fsum += fs.FairBps
			}
			// Fair and weighted shares each partition the capacity.
			if !approx(fsum, at.CapacityBps, 1e-6) || !approx(wsum, at.CapacityBps, 1e-6) {
				t.Fatalf("shares do not partition capacity: fair %v weighted %v cap %v",
					fsum, wsum, at.CapacityBps)
			}
		}
	}
}

func approx(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}

// TestAttributeTopology: a fabric scenario must attribute against the
// manifest's per-job path links, not the single-bottleneck default.
func TestAttributeTopology(t *testing.T) {
	tr, _ := runTraced(t, loadScenario(t, "cluster-fattree.json"), "fluid", 1)
	at, err := Attribute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if at.Topology == "" {
		t.Fatal("topology not propagated")
	}
	for _, ls := range at.Links {
		if ls.Link == DefaultLink {
			t.Fatalf("topology run attributed to %q", DefaultLink)
		}
	}
	// Every iteration's binding link must be on the flow's path.
	paths := map[int][]string{}
	for _, jm := range tr.Manifest.Jobs {
		paths[jm.Flow] = jm.Links
	}
	for _, d := range at.Iters {
		if !pathUses(paths[d.Flow], d.Binding) {
			t.Fatalf("flow %d bound by off-path link %q (path %v)", d.Flow, d.Binding, paths[d.Flow])
		}
		if len(d.Links) != len(paths[d.Flow]) {
			t.Fatalf("flow %d: %d link windows for a %d-link path", d.Flow, len(d.Links), len(paths[d.Flow]))
		}
	}
}

// TestAttributeLockedPairShares: on the hand-built fixture both flows
// always collide, so each window shows two flows at equal fair shares.
func TestAttributeLockedPairShares(t *testing.T) {
	at, err := Attribute(lockedTrace())
	if err != nil {
		t.Fatal(err)
	}
	capBps := 50.0 * 1e9
	if at.CapacityBps != capBps {
		t.Fatalf("capacity = %v", at.CapacityBps)
	}
	for _, d := range at.Iters {
		if len(d.Links) != 1 || len(d.Links[0].Flows) != 2 {
			t.Fatalf("iter (%d,%d): %+v, want 2 flows on one link", d.Flow, d.Iter, d.Links)
		}
		for _, fs := range d.Links[0].Flows {
			if fs.FairBps != capBps/2 {
				t.Errorf("fair share = %v, want %v", fs.FairBps, capBps/2)
			}
			// No agg events in the fixture: weights default to 1, so the
			// weighted share equals the fair share.
			if fs.Weight != 1 || fs.WeightedBps != fs.FairBps {
				t.Errorf("weighted share = %v (w=%v), want fair %v", fs.WeightedBps, fs.Weight, fs.FairBps)
			}
		}
	}
	if at.Links[0].BindingCount != len(at.Iters) {
		t.Errorf("binding count = %d over %d iters", at.Links[0].BindingCount, len(at.Iters))
	}
}

func TestAttributeByteDeterministic(t *testing.T) {
	tr, _ := runTraced(t, twoJobScenario(), "fluid", 1)
	render := func() string {
		at, err := Attribute(tr)
		if err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := at.WriteText(&txt, 8); err != nil {
			t.Fatal(err)
		}
		return txt.String()
	}
	r1, r2 := render(), render()
	if r1 != r2 {
		t.Error("attribution report not byte-deterministic")
	}
	if !strings.Contains(r1, "binding=") {
		t.Errorf("report missing binding column:\n%.400s", r1)
	}
}
