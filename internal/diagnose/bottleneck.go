package diagnose

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mltcp/internal/backend"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
)

// DefaultLink names the single shared link of the non-topology model.
// Attribution reports use it when the manifest carries no fabric paths.
const DefaultLink = "bottleneck"

// FlowShare is one flow's allocation on one link over one iteration
// window, against the two baselines the paper argues about: the fair
// (equal) share and the aggressiveness-weighted share.
type FlowShare struct {
	Flow   int
	Job    string
	Iter   int
	Weight float64
	// RateBps is the flow's achieved rate over its communication phase,
	// in bits/second; FairBps and WeightedBps are capacity/n and
	// capacity*w/Σw over the flows sharing the link in this window.
	RateBps     float64
	FairBps     float64
	WeightedBps float64
}

// LinkWindow is one link's state over one flow's iteration window.
type LinkWindow struct {
	Link string
	// DemandBps sums the achieved rates of every flow communicating on
	// the link during the window; Utilization is DemandBps/capacity.
	DemandBps   float64
	Utilization float64
	// Flows holds each concurrent flow's share, ascending by flow ID.
	Flows []FlowShare
}

// IterDiag attributes one (flow, iteration): which of the flow's path
// links bound it, and the competing shares on each.
type IterDiag struct {
	Flow       int
	Job        string
	Iter       int
	Start, End sim.Time
	FCT        sim.Time
	// Binding names the path link with the highest demand over the
	// window (ties break lexicographically). Every path link's window
	// is in Links, ascending by link name.
	Binding string
	Links   []LinkWindow
}

// LinkSummary aggregates one link across all attributed iterations.
type LinkSummary struct {
	Link  string
	Flows []int
	// PeakDemandBps and PeakUtilization are the busiest attributed
	// window; BindingCount counts the (flow, iteration) windows this
	// link bound.
	PeakDemandBps   float64
	PeakUtilization float64
	BindingCount    int
}

// Attribution is the per-iteration bottleneck report for one trace.
type Attribution struct {
	Scenario    string
	Backend     string
	Topology    string
	CapacityBps float64
	Iters       []IterDiag
	Links       []LinkSummary
}

// Attribute reconstructs which link was the binding constraint for each
// (flow, iteration) of a trace, and every competing flow's achieved
// share against its fair and weighted shares. It needs the manifest
// (flow identity, capacity, paths) and the iteration events.
func Attribute(tr *telemetry.Trace) (*Attribution, error) {
	res, err := backend.ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		return nil, fmt.Errorf("diagnose: %w", err)
	}
	capBps := tr.Manifest.CapacityGbps * 1e9
	at := &Attribution{
		Scenario:    res.Scenario,
		Backend:     res.Backend,
		Topology:    tr.Manifest.Topology,
		CapacityBps: capBps,
	}

	flows := make([]int, len(res.Jobs))
	weights := latestAggWeights(tr.Events)
	paths := make(map[int][]string, len(res.Jobs))
	jobName := make(map[int]string, len(res.Jobs))
	jobIdx := make(map[int]int, len(res.Jobs))
	for i, jm := range tr.Manifest.Jobs {
		flows[i] = jm.Flow
		jobName[jm.Flow] = jm.Name
		jobIdx[jm.Flow] = i
		if len(jm.Links) > 0 {
			paths[jm.Flow] = jm.Links
		} else {
			paths[jm.Flow] = []string{DefaultLink}
		}
	}

	// phase returns flow f's communication window for iteration it, and
	// its achieved rate; an unfinished final phase runs to the horizon.
	phase := func(f, it int) (start, end sim.Time, rate float64, ok bool) {
		j := res.Jobs[jobIdx[f]]
		if it >= len(j.CommStarts) {
			return 0, 0, 0, false
		}
		start = j.CommStarts[it]
		if it < len(j.CommEnds) {
			end = j.CommEnds[it]
		} else {
			end = res.Duration
		}
		if d := (end - start).Seconds(); d > 0 {
			rate = float64(j.BytesPerIter) * 8 / d
		}
		return start, end, rate, true
	}

	linkFlows := make(map[string]map[int]bool)
	linkSummaries := make(map[string]*LinkSummary)
	summary := func(link string) *LinkSummary {
		if s, ok := linkSummaries[link]; ok {
			return s
		}
		s := &LinkSummary{Link: link}
		linkSummaries[link] = s
		return s
	}

	for _, f := range flows {
		j := res.Jobs[jobIdx[f]]
		for it := 0; it < len(j.CommStarts); it++ {
			start, end, _, _ := phase(f, it)
			if end <= start {
				continue
			}
			diag := IterDiag{
				Flow: f, Job: jobName[f], Iter: it,
				Start: start, End: end, FCT: end - start,
			}
			for _, link := range paths[f] {
				lw := LinkWindow{Link: link}
				for _, g := range flows {
					if !pathUses(paths[g], link) {
						continue
					}
					gi := overlappingIter(res.Jobs[jobIdx[g]], start, end)
					if gi < 0 {
						continue
					}
					_, _, grate, ok := phase(g, gi)
					if !ok {
						continue
					}
					w := weights[g]
					if w <= 0 {
						w = 1
					}
					lw.Flows = append(lw.Flows, FlowShare{
						Flow: g, Job: jobName[g], Iter: gi,
						Weight: w, RateBps: grate,
					})
					lw.DemandBps += grate
					if lf, ok := linkFlows[link]; ok {
						lf[g] = true
					} else {
						linkFlows[link] = map[int]bool{g: true}
					}
				}
				sort.Slice(lw.Flows, func(i, j int) bool { return lw.Flows[i].Flow < lw.Flows[j].Flow })
				var wsum float64
				for _, fs := range lw.Flows {
					wsum += fs.Weight
				}
				n := float64(len(lw.Flows))
				for i := range lw.Flows {
					lw.Flows[i].FairBps = capBps / n
					lw.Flows[i].WeightedBps = capBps * lw.Flows[i].Weight / wsum
				}
				if capBps > 0 {
					lw.Utilization = lw.DemandBps / capBps
				}
				diag.Links = append(diag.Links, lw)
				s := summary(link)
				if lw.DemandBps > s.PeakDemandBps {
					s.PeakDemandBps = lw.DemandBps
					s.PeakUtilization = lw.Utilization
				}
			}
			sort.Slice(diag.Links, func(i, j int) bool { return diag.Links[i].Link < diag.Links[j].Link })
			diag.Binding = bindingLink(diag.Links)
			if diag.Binding != "" {
				summary(diag.Binding).BindingCount++
			}
			at.Iters = append(at.Iters, diag)
		}
	}
	sort.Slice(at.Iters, func(i, j int) bool {
		a, b := at.Iters[i], at.Iters[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return a.Iter < b.Iter
	})

	names := make([]string, 0, len(linkSummaries))
	for name := range linkSummaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := linkSummaries[name]
		for f := range linkFlows[name] {
			s.Flows = append(s.Flows, f)
		}
		sort.Ints(s.Flows)
		at.Links = append(at.Links, *s)
	}
	return at, nil
}

// bindingLink picks the highest-demand link (ties lexicographic, which
// the pre-sorted slice gives for free).
func bindingLink(links []LinkWindow) string {
	best, demand := "", -1.0
	for _, lw := range links {
		if lw.DemandBps > demand {
			best, demand = lw.Link, lw.DemandBps
		}
	}
	return best
}

// pathUses reports whether a path crosses a link.
func pathUses(path []string, link string) bool {
	for _, l := range path {
		if l == link {
			return true
		}
	}
	return false
}

// overlappingIter returns the index of j's communication phase that
// overlaps [start, end), or -1. With phases non-overlapping per job, at
// most one qualifies; ties (abutting phases) resolve to the earliest.
func overlappingIter(j backend.JobResult, start, end sim.Time) int {
	for i := 0; i < len(j.CommStarts); i++ {
		s := j.CommStarts[i]
		e := end // unfinished final phase: treat as running past the window
		if i < len(j.CommEnds) {
			e = j.CommEnds[i]
		}
		if s < end && e > start {
			return i
		}
		if s >= end {
			break
		}
	}
	return -1
}

// latestAggWeights maps each flow to its last recorded aggressiveness
// factor (KindAgg V1) anywhere in the trace.
func latestAggWeights(events []telemetry.Event) map[int]float64 {
	w := make(map[int]float64)
	for _, e := range events {
		if e.Kind == telemetry.KindAgg {
			w[e.Flow] = e.V1
		}
	}
	return w
}

// WriteText renders the attribution, capping the per-iteration table at
// maxIters rows (0 = all). Output is byte-deterministic.
func (at *Attribution) WriteText(w io.Writer, maxIters int) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario: %s (%s backend)\n", at.Scenario, at.Backend)
	topo := at.Topology
	if topo == "" {
		topo = "single bottleneck"
	}
	fmt.Fprintf(&sb, "topology: %s, capacity %s\n", topo, fmtBps(at.CapacityBps))
	sb.WriteString("links:\n")
	for _, ls := range at.Links {
		fmt.Fprintf(&sb, "  %-24s flows=%v binding in %d windows, peak demand %s (%.0f%% util)\n",
			ls.Link, ls.Flows, ls.BindingCount, fmtBps(ls.PeakDemandBps), 100*ls.PeakUtilization)
	}
	n := len(at.Iters)
	shown := n
	if maxIters > 0 && maxIters < n {
		shown = maxIters
	}
	fmt.Fprintf(&sb, "iterations (%d of %d):\n", shown, n)
	for _, d := range at.Iters[:shown] {
		fmt.Fprintf(&sb, "  flow %d (%s) iter %d: [%v, %v) fct=%v binding=%s\n",
			d.Flow, d.Job, d.Iter, d.Start, d.End, d.FCT, d.Binding)
		for _, lw := range d.Links {
			fmt.Fprintf(&sb, "    %s: demand %s (%.0f%% util)\n",
				lw.Link, fmtBps(lw.DemandBps), 100*lw.Utilization)
			for _, fs := range lw.Flows {
				fmt.Fprintf(&sb, "      flow %d (%s, iter %d, w=%s): %s achieved, fair %s, weighted %s\n",
					fs.Flow, fs.Job, fs.Iter, fmtFloat(fs.Weight),
					fmtBps(fs.RateBps), fmtBps(fs.FairBps), fmtBps(fs.WeightedBps))
			}
		}
	}
	if shown < n {
		fmt.Fprintf(&sb, "  ... %d more\n", n-shown)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// fmtBps renders a rate with a binary-free SI suffix (Gbps/Mbps/...).
func fmtBps(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fGbps", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fMbps", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fKbps", v/1e3)
	}
	return fmt.Sprintf("%.0fbps", v)
}
