// Package diagnose interprets telemetry traces: where internal/telemetry
// records what a run did, diagnose explains why two runs differ, which
// link constrained each flow, and whether — and why — the flows
// self-organized into MLTCP's interleaved bands.
//
// Three analyses share one indexed view of a telemetry.Trace:
//
//   - Compare aligns two traces by (kind, flow, iteration), reports the
//     first-divergence event with both sides' decoded fields and a
//     bounded context window, and classifies the divergence (seed drift,
//     schema change, timing, share allocation, ...). cmd/mltcp-diff and
//     the golden-trace test failures are built on it.
//   - Attribute reconstructs, per iteration and per flow, which link was
//     the binding constraint and what share each competing flow received
//     against its fair and aggressiveness-weighted shares, using the
//     fabric manifest fields for topology runs.
//   - Explain detects phase bands from the iteration and cwnd/agg
//     timelines and renders a convergence verdict ("interleaved at iter
//     k because ...", "failed: flows 2,5 locked in phase on link ...")
//     as both text and stable JSON, agreeing exactly with the producing
//     backend.Result's convergence diagnostics (it recomputes them
//     through backend.ResultFromTrace).
//
// Everything here is pure analysis over already-recorded traces: no
// telemetry is emitted, no simulation state is touched, and every output
// is a byte-deterministic function of its inputs (maps are only iterated
// through sorted key lists).
package diagnose

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"mltcp/internal/telemetry"
)

// streamKey identifies one aligned event stream: all events of one kind
// from one flow over one link. Alignment by stream (rather than by raw
// file position) is what lets the differ say "flow 2's 17th cwnd sample
// diverged" instead of "byte 48213 differs".
type streamKey struct {
	kind telemetry.Kind
	flow int
	link string
}

// String renders the stream identity for reports.
func (k streamKey) String() string {
	s := k.kind.String()
	if k.flow != 0 {
		s += " flow=" + strconv.Itoa(k.flow)
	}
	if k.link != "" {
		s += " link=" + strconv.Quote(k.link)
	}
	return s
}

func keyLess(a, b streamKey) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.flow != b.flow {
		return a.flow < b.flow
	}
	return a.link < b.link
}

// indexedTrace is the shared analysis view of one trace: events in time
// order, each annotated with its flow's iteration at emission, grouped
// into per-(kind, flow, link) streams.
type indexedTrace struct {
	events []telemetry.Event
	// iter[i] is the iteration events[i]'s flow was in when it was
	// emitted (-1 before the flow's first iter_start, and for events
	// that carry no flow).
	iter []int
	// streams maps each stream to the ascending global indices of its
	// events; keys holds the stream keys sorted.
	streams map[streamKey][]int
	keys    []streamKey
}

// indexTrace builds the analysis view. Traces written by telemetry.Write
// are already time-sorted; a stable re-sort keeps hand-assembled event
// slices (tests, perturbed fixtures) on the same footing.
func indexTrace(tr *telemetry.Trace) *indexedTrace {
	ix := &indexedTrace{
		events:  make([]telemetry.Event, len(tr.Events)),
		iter:    make([]int, len(tr.Events)),
		streams: make(map[streamKey][]int),
	}
	copy(ix.events, tr.Events)
	sort.SliceStable(ix.events, func(i, j int) bool { return ix.events[i].At < ix.events[j].At })
	cur := map[int]int{} // flow -> current iteration
	for i, e := range ix.events {
		it := -1
		if e.Flow != 0 {
			if e.Kind == telemetry.KindIterStart {
				cur[e.Flow] = int(e.N)
			}
			if v, ok := cur[e.Flow]; ok {
				it = v
			}
		}
		ix.iter[i] = it
		k := streamKey{e.Kind, e.Flow, e.Link}
		ix.streams[k] = append(ix.streams[k], i)
	}
	ix.keys = make([]streamKey, 0, len(ix.streams))
	for k := range ix.streams {
		ix.keys = append(ix.keys, k)
	}
	sort.Slice(ix.keys, func(i, j int) bool { return keyLess(ix.keys[i], ix.keys[j]) })
	return ix
}

// encodeLine renders an event as its canonical trace line, falling back
// to a Go-syntax dump for events the schema cannot encode (which a
// decoded trace never contains).
func encodeLine(e telemetry.Event) string {
	line, err := telemetry.EncodeEvent(e)
	if err != nil {
		return fmt.Sprintf("%+v", e)
	}
	return line
}

// appendJSONString appends a JSON-quoted string. encoding/json's string
// escaping is deterministic, so hand-rolled documents embedding it stay
// byte-stable.
func appendJSONString(b []byte, s string) []byte {
	q, err := json.Marshal(s)
	if err != nil { // a string never fails to marshal
		return strconv.AppendQuote(b, s)
	}
	return append(b, q...)
}

// appendJSONStrings appends a JSON array of strings.
func appendJSONStrings(b []byte, ss []string) []byte {
	b = append(b, '[')
	for i, s := range ss {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, s)
	}
	return append(b, ']')
}

// fmtFloat renders a float in its shortest exact form, matching the
// telemetry encoder's convention.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
