package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mltcp/internal/sim"
)

func TestFromTimes(t *testing.T) {
	s := FromTimes([]sim.Time{sim.Second, 500 * sim.Millisecond})
	if s[0] != 1.0 || s[1] != 0.5 {
		t.Errorf("FromTimes = %v", s)
	}
}

func TestMeanStd(t *testing.T) {
	s := Series{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); got != 2 {
		t.Errorf("Std = %v, want 2", got)
	}
	if (Series{}).Mean() != 0 || (Series{1}).Std() != 0 {
		t.Error("empty/singleton edge cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	s := Series{3, -1, 7, 0}
	if s.Min() != -1 || s.Max() != 7 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2, 75: 4}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := (Series{1, 2}).Percentile(50); got != 1.5 {
		t.Errorf("P50 of {1,2} = %v, want 1.5", got)
	}
	if got := (Series{42}).Percentile(99); got != 42 {
		t.Errorf("P99 of singleton = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { (Series{}).Percentile(50) },
		"out-of-range": func() { (Series{1}).Percentile(101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTail(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	if got := s.Tail(2); len(got) != 2 || got[0] != 4 {
		t.Errorf("Tail(2) = %v", got)
	}
	if got := s.Tail(99); len(got) != 5 {
		t.Errorf("Tail(99) = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	s := Series{5, 1, 3, 3, 2}
	cdf := s.CDF()
	if len(cdf) != 5 {
		t.Fatalf("CDF length = %d", len(cdf))
	}
	if cdf[0].Value != 1 || cdf[len(cdf)-1].Fraction != 1.0 {
		t.Errorf("CDF endpoints wrong: %+v", cdf)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Errorf("CDF not monotone at %d: %+v", i, cdf)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Series{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	sm := s.Summarize()
	if sm.N != 10 || sm.Mean != 5.5 || sm.Min != 1 || sm.Max != 10 {
		t.Errorf("Summary = %+v", sm)
	}
	if sm.P50 != 5.5 {
		t.Errorf("P50 = %v, want 5.5", sm.P50)
	}
	if (Series{}).Summarize().N != 0 {
		t.Error("empty summary not zero")
	}
	if sm.String() == "" {
		t.Error("empty String()")
	}
}

// Property: Percentile(0) == Min, Percentile(100) == Max, and percentiles
// are monotone in p.
func TestPercentileProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		var s Series
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		if s.Percentile(0) != s.Min() || s.Percentile(100) != s.Max() {
			return false
		}
		ps := []float64{10, 25, 50, 75, 90}
		vals := make([]float64, len(ps))
		for i, p := range ps {
			vals[i] = s.Percentile(p)
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
