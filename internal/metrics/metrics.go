// Package metrics provides the summary statistics the experiments report:
// means, percentiles, standard deviations, and empirical CDFs over
// iteration times and throughput samples.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"mltcp/internal/sim"
)

// Series is a sample collection with summary helpers.
type Series []float64

// FromTimes converts simulated durations to a Series in seconds.
func FromTimes(ts []sim.Time) Series {
	s := make(Series, len(ts))
	for i, t := range ts {
		s[i] = t.Seconds()
	}
	return s
}

// Mean returns the arithmetic mean (0 for an empty series).
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation.
func (s Series) Std() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)))
}

// Min returns the smallest sample (0 for an empty series).
func (s Series) Min() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (0 for an empty series).
func (s Series) Max() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics. It panics on an empty series or
// out-of-range p: asking for a percentile of nothing is a harness bug.
func (s Series) Percentile(p float64) float64 {
	if len(s) == 0 {
		panic("metrics: percentile of empty series")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	sorted := append(Series(nil), s...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Tail returns the last n samples (or all if fewer), for steady-state
// measurements that skip the convergence transient.
func (s Series) Tail(n int) Series {
	if n >= len(s) {
		return s
	}
	return s[len(s)-n:]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF returns the empirical distribution of the series, one point per
// sample, sorted ascending.
func (s Series) CDF() []CDFPoint {
	sorted := append(Series(nil), s...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Summary bundles the usual reporting statistics.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P50, P95, P99 float64
	Max                float64
}

// Summarize computes a Summary (zero Summary for an empty series).
func (s Series) Summarize() Summary {
	if len(s) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(s),
		Mean: s.Mean(),
		Std:  s.Std(),
		Min:  s.Min(),
		P50:  s.Percentile(50),
		P95:  s.Percentile(95),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

// String renders the summary on one line with seconds-scale values.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		sm.N, sm.Mean, sm.Std, sm.Min, sm.P50, sm.P95, sm.P99, sm.Max)
}
