package backend_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mltcp/internal/backend"
	"mltcp/internal/config"
	"mltcp/internal/diagnose"
	"mltcp/internal/telemetry"
)

var updateHotpathGolden = flag.Bool("update-hotpath", false,
	"re-bless testdata/hotpath_golden.json (forbidden during hot-path refactors; see the test comment)")

// hotpathDigest is the per-point fingerprint: a SHA-256 of the full
// telemetry event stream (the byte-identical contract) and of the
// JSON-encoded Result (the DeepEqual contract, via a deterministic
// encoding).
type hotpathDigest struct {
	Trace  string `json:"trace_sha256"`
	Result string `json:"result_sha256"`
}

// hotpathPoint is one golden scenario/backend pair. Packet points cap the
// horizon so the full suite stays test-fast; the cap is part of the
// pinned configuration.
type hotpathPoint struct {
	name        string
	backendName string
	load        func(t *testing.T) *config.Scenario
}

func loadScenarioFile(t *testing.T, file string) *config.Scenario {
	t.Helper()
	f, err := os.Open(filepath.FromSlash("../../examples/scenarios/" + file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scn, err := config.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return &scn
}

func hotpathPoints() []hotpathPoint {
	fileScenario := func(file string, cap float64) func(t *testing.T) *config.Scenario {
		return func(t *testing.T) *config.Scenario {
			scn := loadScenarioFile(t, file)
			if cap > 0 && scn.DurationSec > cap {
				scn.DurationSec = cap
			}
			return scn
		}
	}
	synth := func(policy string, durationSec float64, profiles ...string) func(t *testing.T) *config.Scenario {
		return func(*testing.T) *config.Scenario {
			scn := &config.Scenario{Name: "golden-" + policy, Policy: policy, DurationSec: durationSec}
			for i, p := range profiles {
				scn.Jobs = append(scn.Jobs, config.Job{Name: fmt.Sprintf("J%d", i+1), Profile: p})
			}
			return scn
		}
	}
	return []hotpathPoint{
		// Every checked-in scenario on the fluid backend, full horizon.
		{"fluid/cluster-fattree", backend.NameFluid, fileScenario("cluster-fattree.json", 0)},
		{"fluid/fourjobs", backend.NameFluid, fileScenario("fourjobs.json", 0)},
		{"fluid/hetero", backend.NameFluid, fileScenario("hetero.json", 0)},
		{"fluid/noisy-six", backend.NameFluid, fileScenario("noisy-six.json", 0)},
		// Non-topology scenarios on the packet backend, horizon capped at
		// 5 simulated seconds (full horizons cost minutes of wall time).
		{"packet/fourjobs", backend.NamePacket, fileScenario("fourjobs.json", 5)},
		{"packet/hetero", backend.NamePacket, fileScenario("hetero.json", 5)},
		{"packet/noisy-six", backend.NamePacket, fileScenario("noisy-six.json", 5)},
		// Synthetic points covering paths the examples miss: the ECN/DCTCP
		// marking pipeline, and the fluid SRPT/PIAS allocators.
		{"packet/dctcp-two-gpt2", backend.NamePacket, synth("dctcp", 5, "gpt2", "gpt2")},
		{"fluid/srpt-three", backend.NameFluid, synth("srpt", 60, "gpt3", "gpt2", "gpt2")},
		{"fluid/pias-three", backend.NameFluid, synth("pias", 60, "gpt3", "gpt2", "gpt2")},
	}
}

func runHotpathPoint(t *testing.T, pt hotpathPoint) (hotpathDigest, []byte) {
	t.Helper()
	b, err := backend.New(pt.backendName)
	if err != nil {
		t.Fatal(err)
	}
	scn := pt.load(t)
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	res, err := b.Run(telemetry.WithRecorder(context.Background(), rec), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The manifest is omitted on purpose: it embeds the build revision,
	// which legitimately changes between commits. Events and the metrics
	// registry are the simulation's observable behaviour.
	var trace bytes.Buffer
	if err := telemetry.Write(&trace, nil, buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	tsum := sha256.Sum256(trace.Bytes())
	rsum := sha256.Sum256(resJSON)
	return hotpathDigest{
		Trace:  hex.EncodeToString(tsum[:]),
		Result: hex.EncodeToString(rsum[:]),
	}, trace.Bytes()
}

// diagnoseHotpathDivergence narrows a golden-digest mismatch down to an
// event, using the trace differ. The golden file pins only hashes, so the
// pre-refactor events are gone — but rerunning the point in the current
// tree separates the two possible causes: if the rerun diverges from the
// first run, the tree is nondeterministic and the report pinpoints the
// first event that differs between the two same-seed runs; if the rerun
// is byte-identical, behaviour changed deterministically relative to the
// golden tree. Either way the report is logged, and also written to
// $MLTCP_DIAG_DIR/<point>.txt when that variable is set (CI uploads the
// directory as a failure artifact).
func diagnoseHotpathDivergence(t *testing.T, pt hotpathPoint, firstTrace []byte) {
	t.Helper()
	_, rerun := runHotpathPoint(t, pt)

	var report strings.Builder
	fmt.Fprintf(&report, "hotpath golden divergence: point %s\n", pt.name)
	if bytes.Equal(firstTrace, rerun) {
		report.WriteString(
			"rerun reproduces the new trace byte-for-byte: the current tree is\n" +
				"deterministic, but its behaviour differs from the golden tree.\n" +
				"If the change is intentional, re-bless with -update-hotpath;\n" +
				"diff against a pre-change trace with mltcp-diff to localize it.\n")
	} else {
		a, errA := telemetry.Read(bytes.NewReader(firstTrace))
		b, errB := telemetry.Read(bytes.NewReader(rerun))
		if errA != nil || errB != nil {
			t.Logf("cannot decode traces for diffing: %v / %v", errA, errB)
			return
		}
		report.WriteString(
			"two same-seed runs of the current tree produced different traces:\n" +
				"the tree is NONDETERMINISTIC. First divergence between runs:\n\n")
		d := diagnose.Compare(a, b, diagnose.Options{})
		if err := d.WriteText(&report, "run1", "run2"); err != nil {
			t.Fatal(err)
		}
	}
	t.Log(report.String())

	if dir := os.Getenv("MLTCP_DIAG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("MLTCP_DIAG_DIR: %v", err)
			return
		}
		name := strings.ReplaceAll(pt.name, "/", "_") + ".txt"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(report.String()), 0o644); err != nil {
			t.Logf("MLTCP_DIAG_DIR: %v", err)
		}
	}
}

// TestHotPathGoldenTraces is the correctness contract for the hot-path
// overhaul (timer wheel, pooled events and packets, SoA fluid state):
// every checked-in scenario must produce a byte-identical telemetry trace
// and a DeepEqual Result (compared through a deterministic JSON encoding)
// before and after the refactor. The golden digests were captured from
// the pre-refactor tree; re-blessing them with -update-hotpath is only
// legitimate for changes that intentionally alter simulation behaviour,
// never for performance work. On a digest mismatch the point is rerun and
// the two traces fed through internal/diagnose, so the failure names the
// first divergent event instead of two opaque hashes.
func TestHotPathGoldenTraces(t *testing.T) {
	goldenPath := filepath.FromSlash("testdata/hotpath_golden.json")
	golden := map[string]hotpathDigest{}
	if !*updateHotpathGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (generate once with -update-hotpath): %v", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]hotpathDigest{}
	for _, pt := range hotpathPoints() {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			d, traceBytes := runHotpathPoint(t, pt)
			got[pt.name] = d
			if *updateHotpathGolden {
				return
			}
			want, ok := golden[pt.name]
			if !ok {
				t.Fatalf("point %s has no golden digest; regenerate with -update-hotpath", pt.name)
			}
			if d.Trace != want.Trace {
				t.Errorf("telemetry trace diverged from the pre-refactor golden\n got  %s\n want %s", d.Trace, want.Trace)
			}
			if d.Result != want.Result {
				t.Errorf("Result diverged from the pre-refactor golden\n got  %s\n want %s", d.Result, want.Result)
			}
			if t.Failed() {
				diagnoseHotpathDivergence(t, pt, traceBytes)
			}
		})
	}

	if *updateHotpathGolden {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make(map[string]hotpathDigest, len(got))
		for _, n := range names {
			ordered[n] = got[n]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d points)", goldenPath, len(got))
	}
}
