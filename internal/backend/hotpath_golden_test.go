package backend

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/telemetry"
)

var updateHotpathGolden = flag.Bool("update-hotpath", false,
	"re-bless testdata/hotpath_golden.json (forbidden during hot-path refactors; see the test comment)")

// hotpathDigest is the per-point fingerprint: a SHA-256 of the full
// telemetry event stream (the byte-identical contract) and of the
// JSON-encoded Result (the DeepEqual contract, via a deterministic
// encoding).
type hotpathDigest struct {
	Trace  string `json:"trace_sha256"`
	Result string `json:"result_sha256"`
}

// hotpathPoint is one golden scenario/backend pair. Packet points cap the
// horizon so the full suite stays test-fast; the cap is part of the
// pinned configuration.
type hotpathPoint struct {
	name        string
	backendName string
	load        func(t *testing.T) *config.Scenario
}

func loadScenarioFile(t *testing.T, file string) *config.Scenario {
	t.Helper()
	f, err := os.Open(filepath.FromSlash("../../examples/scenarios/" + file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scn, err := config.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	return &scn
}

func hotpathPoints() []hotpathPoint {
	fileScenario := func(file string, cap float64) func(t *testing.T) *config.Scenario {
		return func(t *testing.T) *config.Scenario {
			scn := loadScenarioFile(t, file)
			if cap > 0 && scn.DurationSec > cap {
				scn.DurationSec = cap
			}
			return scn
		}
	}
	synth := func(policy string, durationSec float64, profiles ...string) func(t *testing.T) *config.Scenario {
		return func(*testing.T) *config.Scenario {
			scn := &config.Scenario{Name: "golden-" + policy, Policy: policy, DurationSec: durationSec}
			for i, p := range profiles {
				scn.Jobs = append(scn.Jobs, config.Job{Name: fmt.Sprintf("J%d", i+1), Profile: p})
			}
			return scn
		}
	}
	return []hotpathPoint{
		// Every checked-in scenario on the fluid backend, full horizon.
		{"fluid/cluster-fattree", NameFluid, fileScenario("cluster-fattree.json", 0)},
		{"fluid/fourjobs", NameFluid, fileScenario("fourjobs.json", 0)},
		{"fluid/hetero", NameFluid, fileScenario("hetero.json", 0)},
		{"fluid/noisy-six", NameFluid, fileScenario("noisy-six.json", 0)},
		// Non-topology scenarios on the packet backend, horizon capped at
		// 5 simulated seconds (full horizons cost minutes of wall time).
		{"packet/fourjobs", NamePacket, fileScenario("fourjobs.json", 5)},
		{"packet/hetero", NamePacket, fileScenario("hetero.json", 5)},
		{"packet/noisy-six", NamePacket, fileScenario("noisy-six.json", 5)},
		// Synthetic points covering paths the examples miss: the ECN/DCTCP
		// marking pipeline, and the fluid SRPT/PIAS allocators.
		{"packet/dctcp-two-gpt2", NamePacket, synth("dctcp", 5, "gpt2", "gpt2")},
		{"fluid/srpt-three", NameFluid, synth("srpt", 60, "gpt3", "gpt2", "gpt2")},
		{"fluid/pias-three", NameFluid, synth("pias", 60, "gpt3", "gpt2", "gpt2")},
	}
}

func runHotpathPoint(t *testing.T, pt hotpathPoint) hotpathDigest {
	t.Helper()
	b, err := New(pt.backendName)
	if err != nil {
		t.Fatal(err)
	}
	scn := pt.load(t)
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	res, err := b.Run(telemetry.WithRecorder(context.Background(), rec), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The manifest is omitted on purpose: it embeds the build revision,
	// which legitimately changes between commits. Events and the metrics
	// registry are the simulation's observable behaviour.
	var trace bytes.Buffer
	if err := telemetry.Write(&trace, nil, buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	tsum := sha256.Sum256(trace.Bytes())
	rsum := sha256.Sum256(resJSON)
	return hotpathDigest{
		Trace:  hex.EncodeToString(tsum[:]),
		Result: hex.EncodeToString(rsum[:]),
	}
}

// TestHotPathGoldenTraces is the correctness contract for the hot-path
// overhaul (timer wheel, pooled events and packets, SoA fluid state):
// every checked-in scenario must produce a byte-identical telemetry trace
// and a DeepEqual Result (compared through a deterministic JSON encoding)
// before and after the refactor. The golden digests were captured from
// the pre-refactor tree; re-blessing them with -update-hotpath is only
// legitimate for changes that intentionally alter simulation behaviour,
// never for performance work.
func TestHotPathGoldenTraces(t *testing.T) {
	goldenPath := filepath.FromSlash("testdata/hotpath_golden.json")
	golden := map[string]hotpathDigest{}
	if !*updateHotpathGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (generate once with -update-hotpath): %v", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
	}

	got := map[string]hotpathDigest{}
	for _, pt := range hotpathPoints() {
		pt := pt
		t.Run(pt.name, func(t *testing.T) {
			d := runHotpathPoint(t, pt)
			got[pt.name] = d
			if *updateHotpathGolden {
				return
			}
			want, ok := golden[pt.name]
			if !ok {
				t.Fatalf("point %s has no golden digest; regenerate with -update-hotpath", pt.name)
			}
			if d.Trace != want.Trace {
				t.Errorf("telemetry trace diverged from the pre-refactor golden\n got  %s\n want %s", d.Trace, want.Trace)
			}
			if d.Result != want.Result {
				t.Errorf("Result diverged from the pre-refactor golden\n got  %s\n want %s", d.Result, want.Result)
			}
		})
	}

	if *updateHotpathGolden {
		names := make([]string, 0, len(got))
		for n := range got {
			names = append(names, n)
		}
		sort.Strings(names)
		ordered := make(map[string]hotpathDigest, len(got))
		for _, n := range names {
			ordered[n] = got[n]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d points)", goldenPath, len(got))
	}
}
