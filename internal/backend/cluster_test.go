package backend

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/fluid"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// clusterScenario is a small fat-tree scenario mixing explicit and
// automatic placement, capped and uncapped jobs.
func clusterScenario() *config.Scenario {
	return &config.Scenario{
		Name:        "cluster-smoke",
		Policy:      "mltcp",
		DurationSec: 30,
		Topology:    &config.Topology{Kind: config.KindFatTree, K: 4},
		Jobs: []config.Job{
			{Name: "A", Profile: "gpt3", SrcRack: "rack0", DstRack: "rack7", Iters: 5},
			{Name: "B", Profile: "gpt2", SrcRack: "rack0", DstRack: "rack7"},
			{Name: "C", Profile: "bert", Count: 3},
		},
	}
}

func TestClusterFluidRun(t *testing.T) {
	scn := clusterScenario()
	res, err := (&Fluid{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cluster
	if c == nil {
		t.Fatal("topology run has no cluster summary")
	}
	if c.Topology != "fattree-4" || c.Racks != 8 || c.Links != 96 {
		t.Errorf("cluster identity = %+v", c)
	}
	if c.SharingPairs+c.DisjointPairs != len(res.Jobs)*(len(res.Jobs)-1)/2 {
		t.Errorf("pair classes %d+%d do not cover all pairs", c.SharingPairs, c.DisjointPairs)
	}
	// A and B share rack0->rack7; they must be a sharing pair, so the
	// class is populated.
	if c.SharingPairs == 0 {
		t.Error("no sharing pairs despite co-placed jobs")
	}
	for i, j := range res.Jobs {
		if len(j.PathLinks) == 0 {
			t.Errorf("job %s has no path", j.Name)
		}
		if j.SrcRack == "" || j.DstRack == "" {
			t.Errorf("job %s has no placement", j.Name)
		}
		if i == 0 {
			if j.SrcRack != "rack0" || j.DstRack != "rack7" {
				t.Errorf("explicit placement lost: %s->%s", j.SrcRack, j.DstRack)
			}
			// 30s fits far more than 5 GPT-3 iterations: the cap must bite.
			if got := j.Iterations(); got != 5 {
				t.Errorf("capped job completed %d iterations, want 5", got)
			}
		}
	}
	if res.Jobs[1].Iterations() < 10 {
		t.Errorf("uncapped job completed only %d iterations", res.Jobs[1].Iterations())
	}
	// Equal rack pair but distinct hosts: A and B must not share the
	// host uplink (their first links differ).
	if res.Jobs[0].PathLinks[0] == res.Jobs[1].PathLinks[0] {
		t.Errorf("co-placed jobs share a source host: %v vs %v",
			res.Jobs[0].PathLinks, res.Jobs[1].PathLinks)
	}
}

// TestClusterScoresRecomputableFromTrace pins the cluster analogue of the
// trace contract: ResultFromTrace rebuilds placement, paths, and the
// pairwise cluster scores exactly from the manifest and events.
func TestClusterScoresRecomputableFromTrace(t *testing.T) {
	scn := clusterScenario()
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := (&Fluid{}).Run(ctx, scn, 3)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResultFromTrace(tr.Manifest, tr.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cluster, res.Cluster) {
		t.Errorf("cluster scores from trace:\n got  %+v\n want %+v", got.Cluster, res.Cluster)
	}
	for i := range got.Jobs {
		if !reflect.DeepEqual(got.Jobs[i].PathLinks, res.Jobs[i].PathLinks) {
			t.Errorf("job %d path links diverge", i)
		}
		if got.Jobs[i].SrcRack != res.Jobs[i].SrcRack || got.Jobs[i].DstRack != res.Jobs[i].DstRack {
			t.Errorf("job %d placement diverges", i)
		}
		if got.Jobs[i].Ideal != res.Jobs[i].Ideal {
			t.Errorf("job %d ideal diverges: %v vs %v", i, got.Jobs[i].Ideal, res.Jobs[i].Ideal)
		}
	}
}

// TestClusterExampleScenario exercises the checked-in cluster example:
// it loads and validates, runs on the fluid backend, and reports a
// populated cluster summary with its explicit placements intact.
func TestClusterExampleScenario(t *testing.T) {
	f, err := os.Open(filepath.FromSlash("../../examples/scenarios/cluster-fattree.json"))
	if err != nil {
		t.Fatal(err)
	}
	scn, err := config.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if scn.Topology == nil {
		t.Fatal("cluster example has no topology")
	}
	scn.DurationSec = 20 // the checked-in horizon is sized for the CLI
	res, err := (&Fluid{}).Run(context.Background(), &scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cluster
	if c == nil || c.Topology != "fattree-4" {
		t.Fatalf("cluster summary = %+v", c)
	}
	if c.SharingPairs == 0 {
		t.Error("example has co-placed jobs but no sharing pairs")
	}
	byName := map[string]JobResult{}
	for _, j := range res.Jobs {
		byName[j.Name] = j
	}
	for _, name := range []string{"A1", "A2"} {
		if j := byName[name]; j.SrcRack != "rack0" || j.DstRack != "rack4" {
			t.Errorf("job %s placed %s->%s, want rack0->rack4", name, j.SrcRack, j.DstRack)
		}
	}
	if j := byName["C"]; j.SrcRack != "rack2" || j.DstRack != "rack2" {
		t.Errorf("intra-rack job placed %s->%s", j.SrcRack, j.DstRack)
	} else if len(j.PathLinks) != 2 {
		t.Errorf("intra-rack path crosses %d links, want 2", len(j.PathLinks))
	}
}

func TestPacketRejectsTopology(t *testing.T) {
	_, err := (&Packet{}).Run(context.Background(), clusterScenario(), 1)
	if err == nil {
		t.Fatal("packet backend accepted a topology scenario")
	}
	if want := "fattree-4"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the topology", err)
	}
}

// TestMaxMinMatchesLegacyOnGoldenScenarios is the allocator-substitution
// guarantee: every checked-in single-bottleneck scenario produces a
// byte-identical event trace and identical job timelines whether the
// fluid solver uses the legacy WeightedShare single-link model or the
// max-min allocator over a one-link network. This is what licenses
// making MaxMin the topology-mode allocator without re-blessing any
// golden artifact.
func TestMaxMinMatchesLegacyOnGoldenScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.FromSlash("../../examples/scenarios/*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			scn, err := config.Load(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if scn.Topology != nil {
				t.Skip("already a topology scenario")
			}
			if _, ok := scn.FluidPolicy().(fluid.WeightedShare); !ok {
				t.Skipf("policy %s is not the weighted-share model", scn.Policy)
			}
			run := func(network bool) ([]byte, []*fluid.Job) {
				agg := scn.Agg()
				specs := scn.Specs()
				jobs := make([]*fluid.Job, len(specs))
				for i, spec := range specs {
					spec.Seed = jobSeed(1, spec)
					jobs[i] = &fluid.Job{Spec: spec, Agg: agg, MaxIterations: spec.MaxIterations}
				}
				rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
				cfg := fluid.Config{
					Capacity:    scn.Capacity(),
					Policy:      fluid.WeightedShare{},
					TraceBucket: telemetry.DefaultSampleEvery,
					Telemetry:   rec,
				}
				if network {
					cfg.Network = fluid.NewNetwork([]units.Rate{scn.Capacity()}, []string{"bottleneck"})
					cfg.Policy = fluid.MaxMin{}
					for _, j := range jobs {
						j.Path = []int{0}
					}
				}
				fs := fluid.New(cfg, jobs)
				fs.Run(scn.Duration())
				fs.EmitTrace(rec)
				var out bytes.Buffer
				if err := telemetry.Write(&out, nil, buf.Events(), reg); err != nil {
					t.Fatal(err)
				}
				return out.Bytes(), jobs
			}
			legacyTrace, legacyJobs := run(false)
			mmTrace, mmJobs := run(true)
			if !bytes.Equal(legacyTrace, mmTrace) {
				t.Fatal("max-min over one link diverges from the legacy trace")
			}
			for i := range legacyJobs {
				if !reflect.DeepEqual(legacyJobs[i].CommStarts, mmJobs[i].CommStarts) ||
					!reflect.DeepEqual(legacyJobs[i].CommEnds, mmJobs[i].CommEnds) ||
					!reflect.DeepEqual(legacyJobs[i].IterDurations, mmJobs[i].IterDurations) {
					t.Fatalf("job %d timelines diverge between allocators", i)
				}
			}
		})
	}
}
