package backend

import (
	"context"
	"reflect"
	"testing"

	"mltcp/internal/config"
)

func learnedScenario(policy string, profiles ...string) *config.Scenario {
	s := &config.Scenario{Name: "learned-test-" + policy, Policy: policy, DurationSec: 30}
	for i, p := range profiles {
		s.Jobs = append(s.Jobs, config.Job{Name: string(rune('A' + i)), Profile: p})
	}
	return s
}

// TestLearnedDeterministic: Run is a pure function of (scenario, seed),
// including across the per-policy layout cache being cold and warm.
func TestLearnedDeterministic(t *testing.T) {
	scn := learnedScenario("mltcp", "gpt2", "gpt2")
	b := &Learned{}
	first, err := b.Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated learned runs diverged")
	}
	fresh, err := (&Learned{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fresh) {
		t.Fatal("warm layout cache changed the result")
	}
}

// TestLearnedResultShape: the synthesized Result must look like an exact
// backend's — named jobs with phase timelines, slowdowns ≥ 1, delivered
// bytes, and the standard IterTimes convention.
func TestLearnedResultShape(t *testing.T) {
	scn := learnedScenario("mltcp", "gpt2", "gpt3", "bert")
	res, err := (&Learned{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != NameLearned || len(res.Jobs) != 3 {
		t.Fatalf("result header %q with %d jobs", res.Backend, len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Iterations() == 0 {
			t.Errorf("%s: no iterations synthesized", j.Name)
		}
		if len(j.CommStarts) < len(j.CommEnds) {
			t.Errorf("%s: %d starts < %d ends", j.Name, len(j.CommStarts), len(j.CommEnds))
		}
		if len(j.IterTimes) != len(j.CommStarts)-1 {
			t.Errorf("%s: %d iter times for %d starts (want starts-1)",
				j.Name, len(j.IterTimes), len(j.CommStarts))
		}
		if s := j.Slowdown(20); s < 1 {
			t.Errorf("%s: slowdown %v < 1", j.Name, s)
		}
		if j.DeliveredBytes <= 0 {
			t.Errorf("%s: delivered %d bytes", j.Name, j.DeliveredBytes)
		}
	}
}

// TestLearnedLayoutCachePerPolicy: the layout cache is keyed by policy;
// interleaving runs of different policies and job counts must still match
// what a fresh backend computes for each.
func TestLearnedLayoutCachePerPolicy(t *testing.T) {
	warm := &Learned{}
	scns := []*config.Scenario{
		learnedScenario("mltcp", "gpt2", "gpt2"),
		learnedScenario("reno", "gpt2", "gpt2"),
		learnedScenario("mltcp", "gpt3", "gpt2", "gpt2", "bert"),
		learnedScenario("reno", "dlrm", "dlrm"),
	}
	for _, scn := range scns {
		got, err := warm.Run(context.Background(), scn, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&Learned{}).Run(context.Background(), scn, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: warm-cache result diverged from fresh backend", scn.Name)
		}
	}
}

// TestLearnedClusterResult: topology scenarios carry exact pair counts
// (from the compiled paths) with predicted overlaps.
func TestLearnedClusterResult(t *testing.T) {
	scn := &config.Scenario{
		Name: "learned-cluster-test", Policy: "mltcp", DurationSec: 10,
		Topology: &config.Topology{Kind: config.KindFatTree, K: 4},
		Jobs:     []config.Job{{Name: "J", Profile: "gpt2", Count: 6}},
	}
	res, err := (&Learned{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cluster
	if c == nil {
		t.Fatal("topology scenario produced no cluster result")
	}
	n := len(res.Jobs)
	if got, want := c.SharingPairs+c.DisjointPairs, n*(n-1)/2; got != want {
		t.Fatalf("pair split %d+%d covers %d pairs, want %d",
			c.SharingPairs, c.DisjointPairs, got, want)
	}
	if c.Topology == "" || c.Racks == 0 || c.Links == 0 {
		t.Fatalf("cluster header %+v", c)
	}
}
