package backend

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"mltcp/internal/obs"
	"mltcp/internal/telemetry"
)

// runObserved mirrors runTraced with an obs collector (and optionally
// pprof capture) attached alongside the recorder.
func runObserved(t testing.TB, b Backend, seed uint64, col *obs.Collector, profile bool) (*Result, []byte) {
	t.Helper()
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	ctx = obs.WithCollector(ctx, col)
	if profile {
		dir := t.TempDir()
		prof, err := obs.StartCPUProfile(filepath.Join(dir, "cpu.pprof"))
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := prof.Stop(); err != nil {
				t.Fatal(err)
			}
			if err := obs.WriteHeapProfile(filepath.Join(dir, "heap.pprof")); err != nil {
				t.Fatal(err)
			}
		}()
	}
	res, err := b.Run(ctx, traceScenario(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	return res, out.Bytes()
}

// TestObsIsOutOfBand is the tentpole's acceptance property: a run with
// self-metrics collection and profiling hooks enabled must produce a
// byte-identical golden trace and a DeepEqual Result to the same-seed
// run with observation off. Self-metrics observe the simulator; they
// must never steer it.
func TestObsIsOutOfBand(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			plainRes, plainTrace := runTraced(t, b, 1)
			col := obs.NewCollector()
			obsRes, obsTrace := runObserved(t, b, 1, col, true)
			if !bytes.Equal(plainTrace, obsTrace) {
				t.Fatal("enabling obs changed the serialized trace")
			}
			if !reflect.DeepEqual(plainRes, obsRes) {
				t.Fatalf("enabling obs changed the result:\nplain %+v\nobs   %+v", plainRes, obsRes)
			}
			if len(col.Runs()) != 1 {
				t.Fatalf("collector recorded %d runs, want 1", len(col.Runs()))
			}
		})
	}
}

// TestObsRunStatsPopulated checks each backend fills the self-metrics it
// is responsible for: work counts and wall time everywhere, event-heap
// depth and link totals on the packet engine only.
func TestObsRunStatsPopulated(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			col := obs.NewCollector()
			ctx := obs.WithCollector(context.Background(), col)
			res, err := b.Run(ctx, traceScenario(), 1)
			if err != nil {
				t.Fatal(err)
			}
			runs := col.Runs()
			if len(runs) != 1 {
				t.Fatalf("collector recorded %d runs, want 1", len(runs))
			}
			rs := runs[0]
			if rs.Backend != b.Name() {
				t.Fatalf("run attributed to %q", rs.Backend)
			}
			if rs.Events == 0 {
				t.Error("zero events")
			}
			if rs.Wall <= 0 {
				t.Errorf("wall %v", rs.Wall)
			}
			if rs.SimDuration != res.Duration {
				t.Errorf("sim duration %v, run covered %v", rs.SimDuration, res.Duration)
			}
			if rs.EventsPerSec() <= 0 || rs.SimWallRatio() <= 0 {
				t.Errorf("derived rates %v %v", rs.EventsPerSec(), rs.SimWallRatio())
			}
			if rs.PeakHeapBytes == 0 {
				t.Error("peak heap never sampled")
			}
			if b.Name() == NamePacket {
				if rs.MaxHeapDepth <= 0 {
					t.Error("packet run with empty event heap")
				}
				if rs.PacketsSent <= 0 || rs.BytesSent <= 0 {
					t.Errorf("packet run with no link traffic: %+v", rs)
				}
			} else if rs.MaxHeapDepth != 0 {
				t.Errorf("fluid run reports heap depth %d", rs.MaxHeapDepth)
			}
		})
	}
}

// TestObsEventsDeterministic pins that the work counters feeding
// BENCH.json are functions of (scenario, seed), not of scheduling.
func TestObsEventsDeterministic(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			count := func() (uint64, int) {
				col := obs.NewCollector()
				ctx := obs.WithCollector(context.Background(), col)
				if _, err := b.Run(ctx, traceScenario(), 1); err != nil {
					t.Fatal(err)
				}
				rs := col.Runs()[0]
				return rs.Events, rs.MaxHeapDepth
			}
			e1, d1 := count()
			e2, d2 := count()
			if e1 != e2 || d1 != d2 {
				t.Fatalf("self-metrics varied across identical runs: events %d/%d depth %d/%d",
					e1, e2, d1, d2)
			}
		})
	}
}
