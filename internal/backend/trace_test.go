package backend

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/harness"
	"mltcp/internal/telemetry"
)

// traceScenario is a short two-job MLTCP scenario exercised at both
// fidelities by the determinism tests.
func traceScenario() *config.Scenario {
	return &config.Scenario{
		Name:        "trace-two-gpt2",
		Policy:      "mltcp",
		DurationSec: 20,
		Jobs: []config.Job{
			{Name: "J1", Profile: "gpt2"},
			{Name: "J2", Profile: "gpt2"},
		},
	}
}

// runTraced runs the scenario with a fresh recorder and serializes the
// full trace.
func runTraced(t testing.TB, b Backend, seed uint64) (*Result, []byte) {
	t.Helper()
	rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
	ctx := telemetry.WithRecorder(context.Background(), rec)
	res, err := b.Run(ctx, traceScenario(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
		t.Fatal(err)
	}
	return res, out.Bytes()
}

func backendsUnderTest() []Backend {
	return []Backend{&Fluid{}, &Packet{}}
}

func TestTraceByteIdenticalSameSeed(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			_, first := runTraced(t, b, 1)
			_, second := runTraced(t, b, 1)
			if len(first) == 0 {
				t.Fatal("empty trace")
			}
			if !bytes.Equal(first, second) {
				t.Fatal("same (scenario, seed) produced different traces")
			}
			_, other := runTraced(t, b, 2)
			if bytes.Equal(first, other) {
				t.Fatal("distinct seeds produced identical traces (seed not reaching the run)")
			}
		})
	}
}

// TestTraceByteIdenticalAcrossWorkerCounts replicates the traced run over
// harness pools of 1 and 8 workers: every point's serialized trace must be
// byte-identical regardless of scheduling, the property that makes traces
// usable as golden artifacts from parallel sweeps.
func TestTraceByteIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			if testing.Short() && b.Name() == "packet" {
				t.Skip("short mode")
			}
			const points = 4
			run := func(workers int) [][]byte {
				results := harness.Run(context.Background(),
					harness.Config{Workers: workers, BaseSeed: 7}, points,
					func(ctx context.Context, pt harness.Point) ([]byte, error) {
						rec, buf, reg := telemetry.NewBuffered(telemetry.Options{})
						ctx = telemetry.WithRecorder(ctx, rec)
						if _, err := b.Run(ctx, traceScenario(), pt.Seed); err != nil {
							return nil, err
						}
						var out bytes.Buffer
						if err := telemetry.Write(&out, rec.Manifest(), buf.Events(), reg); err != nil {
							return nil, err
						}
						return out.Bytes(), nil
					})
				traces, err := harness.Values(results)
				if err != nil {
					t.Fatal(err)
				}
				return traces
			}
			serial := run(1)
			parallel := run(8)
			for i := range serial {
				if !bytes.Equal(serial[i], parallel[i]) {
					t.Fatalf("point %d: trace differs between workers=1 and workers=8", i)
				}
			}
		})
	}
}

// TestTracingDoesNotPerturbResult runs the same scenario with and without
// a recorder: the Result must be identical — telemetry observes the run,
// it must never steer it.
func TestTracingDoesNotPerturbResult(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			plain, err := b.Run(context.Background(), traceScenario(), 1)
			if err != nil {
				t.Fatal(err)
			}
			traced, _ := runTraced(t, b, 1)
			if !reflect.DeepEqual(plain, traced) {
				t.Fatalf("tracing changed the result:\nplain  %+v\ntraced %+v", plain, traced)
			}
		})
	}
}

// TestScoresRecomputableFromTrace decodes the serialized trace and checks
// that ResultFromTrace reproduces the run's interleaving scores exactly —
// the acceptance property behind cmd/mltcp-trace.
func TestScoresRecomputableFromTrace(t *testing.T) {
	for _, b := range backendsUnderTest() {
		t.Run(b.Name(), func(t *testing.T) {
			res, raw := runTraced(t, b, 1)
			tr, err := telemetry.Read(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ResultFromTrace(tr.Manifest, tr.Events)
			if err != nil {
				t.Fatal(err)
			}
			if got.InterleavedAt != res.InterleavedAt {
				t.Errorf("InterleavedAt from trace = %d, run reported %d",
					got.InterleavedAt, res.InterleavedAt)
			}
			if got.OverlapScore != res.OverlapScore {
				t.Errorf("OverlapScore from trace = %v, run reported %v",
					got.OverlapScore, res.OverlapScore)
			}
			if len(got.Jobs) != len(res.Jobs) {
				t.Fatalf("job count %d, want %d", len(got.Jobs), len(res.Jobs))
			}
			for i := range got.Jobs {
				if !reflect.DeepEqual(got.Jobs[i].CommStarts, res.Jobs[i].CommStarts) {
					t.Errorf("job %d CommStarts diverge", i)
				}
				if !reflect.DeepEqual(got.Jobs[i].CommEnds, res.Jobs[i].CommEnds) {
					t.Errorf("job %d CommEnds diverge", i)
				}
				if !reflect.DeepEqual(got.Jobs[i].IterTimes, res.Jobs[i].IterTimes) {
					t.Errorf("job %d IterTimes diverge", i)
				}
			}
		})
	}
}

func TestResultFromTraceRequiresManifest(t *testing.T) {
	if _, err := ResultFromTrace(nil, nil); err == nil {
		t.Fatal("nil manifest accepted")
	}
}

func TestNewBackendRegistry(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
