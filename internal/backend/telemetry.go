package backend

import (
	"fmt"
	"strings"

	"mltcp/internal/config"
	"mltcp/internal/sim"
	"mltcp/internal/telemetry"
	"mltcp/internal/units"
)

// Exported backend names — the single source of truth for name dispatch.
// Compare against these constants (or iterate Names) instead of
// hand-writing the strings.
const (
	NameFluid   = "fluid"
	NamePacket  = "packet"
	NameLearned = "learned"
)

// Names returns the backend names New accepts, in presentation order.
func Names() []string { return []string{NameFluid, NamePacket, NameLearned} }

// New builds a backend by name; unknown names list the valid set.
func New(name string) (Backend, error) {
	switch name {
	case NameFluid:
		return &Fluid{}, nil
	case NamePacket:
		return &Packet{}, nil
	case NameLearned:
		return &Learned{}, nil
	}
	return nil, fmt.Errorf("backend: unknown backend %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}

// InterleavedAtOf is the exported form of the InterleavedAt computation:
// the first iteration index from which every job's remaining iteration
// times stay within tol of its own ideal (-1 if never). Exported so trace
// consumers (cmd/mltcp-trace) reuse the backend's exact arithmetic.
func InterleavedAtOf(jobs []JobResult, tol float64) int {
	return interleavedAt(jobs, tol)
}

// OverlapScoreOf is the exported form of the OverlapScore computation over
// [from, until).
func OverlapScoreOf(jobs []JobResult, from, until sim.Time) float64 {
	return overlapScore(jobs, from, until)
}

// newManifest renders the run's identity for the trace header. Flow IDs
// are 1-based scenario positions in both backends.
func newManifest(s *config.Scenario, backendName string, seed uint64,
	capacity units.Rate, scale float64, jobs []telemetry.ManifestJob) *telemetry.Manifest {
	return &telemetry.Manifest{
		Schema:       telemetry.SchemaVersion,
		Scenario:     s.Name,
		Backend:      backendName,
		Policy:       s.Policy,
		Seed:         seed,
		CapacityGbps: float64(capacity) / 1e9,
		Scale:        scale,
		DurationNS:   int64(s.Duration()),
		Revision:     telemetry.Revision(),
		Jobs:         jobs,
	}
}

// ResultFromTrace reconstructs a Result's job timelines and interleaving
// scores from a trace's manifest and iteration events. Because manifests
// and events carry integer nanoseconds, the scores are computed by the
// same arithmetic over the same values as the producing run — a traced
// run's summary must agree exactly with the untraced Result.
func ResultFromTrace(m *telemetry.Manifest, events []telemetry.Event) (*Result, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: trace has no manifest")
	}
	res := &Result{
		Backend:  m.Backend,
		Scenario: m.Scenario,
		Policy:   m.Policy,
		Capacity: units.Rate(m.CapacityGbps * 1e9),
		Scale:    m.Scale,
		Duration: m.Duration(),
	}
	if m.Topology != "" {
		res.Cluster = &ClusterResult{
			Topology: m.Topology,
			Racks:    m.Racks,
			Links:    m.FabricLinks,
		}
	}
	res.Jobs = make([]JobResult, len(m.Jobs))
	byFlow := make(map[int]*JobResult, len(m.Jobs))
	for i, mj := range m.Jobs {
		res.Jobs[i] = JobResult{
			Name:         mj.Name,
			Profile:      mj.Profile,
			Ideal:        sim.Time(mj.IdealNS),
			BytesPerIter: mj.BytesPerIter,
			SrcRack:      mj.SrcRack,
			DstRack:      mj.DstRack,
			PathLinks:    mj.Links,
		}
		byFlow[mj.Flow] = &res.Jobs[i]
	}
	for _, e := range events {
		j, ok := byFlow[e.Flow]
		if !ok {
			continue
		}
		switch e.Kind {
		case telemetry.KindIterStart:
			j.CommStarts = append(j.CommStarts, e.At)
		case telemetry.KindIterEnd:
			j.CommEnds = append(j.CommEnds, e.At)
			j.FCTs = append(j.FCTs, sim.Time(e.M))
		case telemetry.KindCwnd:
			j.CwndTrace = append(j.CwndTrace, e.V0)
			j.FinalCwnd = e.V0
		}
	}
	for i := range res.Jobs {
		j := &res.Jobs[i]
		for k := 1; k < len(j.CommStarts); k++ {
			j.IterTimes = append(j.IterTimes, j.CommStarts[k]-j.CommStarts[k-1])
		}
	}
	finishResult(res)
	return res, nil
}
