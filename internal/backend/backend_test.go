package backend

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/fluid"
	"mltcp/internal/sim"
)

// smallScenario is a cheap heterogeneous two-job scenario: at the default
// 1/100 packet scale the bottleneck runs at 500 Mbps and an iteration
// takes a few hundred milliseconds, so a few seconds of horizon give
// double-digit iteration counts at packet level.
func smallScenario(policy string) *config.Scenario {
	return &config.Scenario{
		Name:        "small",
		Policy:      policy,
		DurationSec: 5,
		Jobs: []config.Job{
			{Name: "A", ComputeMS: 300, CommMB: 250},
			{Name: "B", ComputeMS: 150, CommMB: 125},
		},
	}
}

func TestPacketCompilationAllCCVariants(t *testing.T) {
	t.Parallel()
	for _, policy := range config.CCPolicyNames() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			res, err := (&Packet{}).Run(context.Background(), smallScenario(policy), 7)
			if err != nil {
				t.Fatal(err)
			}
			if res.Backend != "packet" || res.Scale != 0.01 {
				t.Fatalf("backend=%s scale=%v", res.Backend, res.Scale)
			}
			if len(res.Jobs) != 2 {
				t.Fatalf("expanded %d jobs", len(res.Jobs))
			}
			for _, j := range res.Jobs {
				if j.Iterations() < 3 {
					t.Errorf("job %s: only %d iterations", j.Name, j.Iterations())
				}
				if len(j.FCTs) != len(j.CommEnds) {
					t.Errorf("job %s: %d FCTs for %d completed phases", j.Name, len(j.FCTs), len(j.CommEnds))
				}
				if len(j.CwndTrace) == 0 || j.FinalCwnd <= 0 {
					t.Errorf("job %s: missing cwnd trace", j.Name)
				}
				// Every completed phase delivered exactly BytesPerIter.
				if min := int64(j.Iterations()) * j.BytesPerIter; j.DeliveredBytes < min {
					t.Errorf("job %s: delivered %d < %d completed-iteration bytes",
						j.Name, j.DeliveredBytes, min)
				}
			}
		})
	}
}

func TestPacketHeterogeneousByteVolumes(t *testing.T) {
	t.Parallel()
	scn := &config.Scenario{
		Name: "hetero", Policy: "mltcp", DurationSec: 4,
		Jobs: []config.Job{
			{Name: "big", ComputeMS: 200, CommMB: 400},
			{Name: "small", ComputeMS: 200, CommMB: 50},
		},
	}
	res, err := (&Packet{}).Run(context.Background(), scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Jobs[0].BytesPerIter, int64(400e6*0.01); got != want {
		t.Errorf("big job scaled bytes = %d, want %d", got, want)
	}
	if got, want := res.Jobs[1].BytesPerIter, int64(50e6*0.01); got != want {
		t.Errorf("small job scaled bytes = %d, want %d", got, want)
	}
	if res.Jobs[1].Iterations() <= res.Jobs[0].Iterations() {
		t.Errorf("small job (%d iters) should out-iterate big job (%d)",
			res.Jobs[1].Iterations(), res.Jobs[0].Iterations())
	}
}

func TestPacketRejectsFluidOnlyPolicies(t *testing.T) {
	t.Parallel()
	for _, policy := range config.FluidOnlyPolicyNames() {
		_, err := (&Packet{}).Run(context.Background(), smallScenario(policy), 1)
		if err == nil {
			t.Fatalf("policy %s: packet backend accepted a fluid-only policy", policy)
		}
		msg := err.Error()
		if !strings.Contains(msg, policy) || !strings.Contains(msg, "mltcp-swift") ||
			!strings.Contains(msg, "centralized") {
			t.Errorf("policy %s: error should name the policy and list supported ones, got %q", policy, msg)
		}
	}
}

func TestPacketInvalidScenarios(t *testing.T) {
	t.Parallel()
	cases := map[string]*config.Scenario{
		"unknown policy": {Name: "x", Policy: "bbr",
			Jobs: []config.Job{{Profile: "gpt2"}}},
		"no jobs": {Name: "x", Policy: "mltcp"},
		"scale rounds to zero": {Name: "x", Policy: "mltcp", PacketScale: 1e-9,
			Jobs: []config.Job{{Name: "j", ComputeMS: 100, CommMB: 1}}},
		"bad profile": {Name: "x", Policy: "mltcp",
			Jobs: []config.Job{{Profile: "gpt9"}}},
	}
	for name, scn := range cases {
		if _, err := (&Packet{}).Run(context.Background(), scn, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFluidRejectsInvalidScenario(t *testing.T) {
	t.Parallel()
	if _, err := (&Fluid{}).Run(context.Background(), &config.Scenario{Name: "x", Policy: "bbr",
		Jobs: []config.Job{{Profile: "gpt2"}}}, 1); err == nil {
		t.Error("fluid backend accepted unknown policy")
	}
}

// The fluid backend must reproduce a direct fluid simulation exactly: it
// is a wrapper, not a reimplementation.
func TestFluidBackendMatchesDirectFluid(t *testing.T) {
	t.Parallel()
	scn := &config.Scenario{
		Name: "direct", Policy: "mltcp", DurationSec: 60,
		Jobs: []config.Job{{Name: "J", Profile: "gpt2", Count: 3, NoiseMS: 15, Seed: 5}},
	}
	const seed = 42
	res, err := (&Fluid{}).Run(context.Background(), scn, seed)
	if err != nil {
		t.Fatal(err)
	}

	norm := *scn
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	agg := norm.Agg()
	var jobs []*fluid.Job
	for _, spec := range norm.Specs() {
		spec.Seed = sim.DeriveSeed(seed, spec.Seed)
		jobs = append(jobs, &fluid.Job{Spec: spec, Agg: agg})
	}
	s := fluid.New(fluid.Config{Capacity: norm.Capacity(), Policy: fluid.WeightedShare{}}, jobs)
	s.Run(norm.Duration())

	for i, j := range jobs {
		if !reflect.DeepEqual(res.Jobs[i].IterTimes, j.IterDurations) {
			t.Errorf("job %d: backend iteration times diverge from direct fluid run", i)
		}
	}
}

func TestCentralizedRunsAtBothFidelities(t *testing.T) {
	t.Parallel()
	scn := smallScenario("centralized")
	for _, b := range []Backend{&Fluid{}, &Packet{}} {
		res, err := b.Run(context.Background(), scn, 3)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		// The two jobs' aggregate duty is under 100%, so the optimizer
		// interleaves them and the overlap score must be near zero.
		if res.OverlapScore > 0.15 {
			t.Errorf("%s: centralized overlap score %.3f, want ~0", b.Name(), res.OverlapScore)
		}
	}
}

func TestBackendRunsAreDeterministic(t *testing.T) {
	t.Parallel()
	scn := smallScenario("mltcp")
	scn.Jobs[0].NoiseMS = 10
	scn.Jobs[1].NoiseMS = 10
	for _, b := range []Backend{&Fluid{}, &Packet{}} {
		r1, err1 := b.Run(context.Background(), scn, 9)
		r2, err2 := b.Run(context.Background(), scn, 9)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", b.Name(), err1, err2)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: same seed produced different results", b.Name())
		}
		r3, err := b.Run(context.Background(), scn, 10)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(r1.Jobs, r3.Jobs) {
			t.Errorf("%s: different seeds produced identical noisy results", b.Name())
		}
	}
}

func TestRunAbortsOnCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, b := range []Backend{&Fluid{}, &Packet{}} {
		if _, err := b.Run(ctx, smallScenario("reno"), 1); err == nil {
			t.Errorf("%s: cancelled context did not abort", b.Name())
		}
	}
}

func TestOverlapScore(t *testing.T) {
	t.Parallel()
	sec := func(s float64) sim.Time { return sim.FromSeconds(s) }
	disjoint := []JobResult{
		{CommStarts: []sim.Time{sec(0)}, CommEnds: []sim.Time{sec(1)}},
		{CommStarts: []sim.Time{sec(1)}, CommEnds: []sim.Time{sec(2)}},
	}
	if got := overlapScore(disjoint, 0, sec(2)); got != 0 {
		t.Errorf("disjoint phases: score %.3f, want 0", got)
	}
	identical := []JobResult{
		{CommStarts: []sim.Time{sec(0)}, CommEnds: []sim.Time{sec(2)}},
		{CommStarts: []sim.Time{sec(0)}, CommEnds: []sim.Time{sec(2)}},
	}
	if got := overlapScore(identical, 0, sec(2)); got < 0.49 || got > 0.51 {
		t.Errorf("fully overlapping pair: score %.3f, want 0.5", got)
	}
	// An unfinished phase extends to the window end.
	openEnded := []JobResult{
		{CommStarts: []sim.Time{sec(0)}, CommEnds: nil},
		{CommStarts: []sim.Time{sec(0)}, CommEnds: nil},
	}
	if got := overlapScore(openEnded, 0, sec(1)); got < 0.49 || got > 0.51 {
		t.Errorf("open-ended pair: score %.3f, want 0.5", got)
	}
	if got := overlapScore(nil, 0, sec(1)); got != 0 {
		t.Errorf("no jobs: score %.3f, want 0", got)
	}
}

func TestSteadyIterFallback(t *testing.T) {
	t.Parallel()
	j := JobResult{
		Ideal:     sim.Second,
		IterTimes: []sim.Time{4 * sim.Second, 2 * sim.Second, 2 * sim.Second, 2 * sim.Second},
	}
	if got := j.SteadyIter(2); got != 2*sim.Second {
		t.Errorf("SteadyIter(2) = %v", got)
	}
	// skip beyond the recorded iterations falls back to the second half.
	if got := j.SteadyIter(100); got != 2*sim.Second {
		t.Errorf("SteadyIter(100) = %v", got)
	}
	if got := (JobResult{}).SteadyIter(5); got != 0 {
		t.Errorf("empty SteadyIter = %v", got)
	}
	if got := j.Slowdown(2); got != 2 {
		t.Errorf("Slowdown = %v", got)
	}
}
