package backend

import (
	"context"
	"testing"

	"mltcp/internal/config"
	"mltcp/internal/obs"
)

func learnedBenchScenario() *config.Scenario {
	return &config.Scenario{Name: "bench-learned-two-gpt2", Policy: "mltcp", DurationSec: 120,
		Jobs: []config.Job{{Name: "A", Profile: "gpt2"}, {Name: "B", Profile: "gpt2"}}}
}

// BenchmarkLearnedCanonical is the learned serving hot path on the
// canonical scenario — the whole point of the tier is that this stays in
// single-digit microseconds, ≥100× under the fluid backend's wall time.
func BenchmarkLearnedCanonical(b *testing.B) {
	scn := learnedBenchScenario()
	lb := &Learned{}
	if _, err := lb.Run(context.Background(), scn, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Run(context.Background(), scn, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearnedCanonicalObs is the same run as mltcp-bench measures
// it: under an obs collector, so the span bookkeeping (two ReadMem
// snapshots) is part of the figure. Keeping this close to the raw
// benchmark above is what keeps the bench suite's learned speedup honest.
func BenchmarkLearnedCanonicalObs(b *testing.B) {
	scn := learnedBenchScenario()
	lb := &Learned{}
	ctx := obs.WithCollector(context.Background(), obs.NewCollector())
	if _, err := lb.Run(ctx, scn, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lb.Run(ctx, scn, 1); err != nil {
			b.Fatal(err)
		}
	}
}
